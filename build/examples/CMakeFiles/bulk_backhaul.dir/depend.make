# Empty dependencies file for bulk_backhaul.
# This may be replaced when dependencies are built.
