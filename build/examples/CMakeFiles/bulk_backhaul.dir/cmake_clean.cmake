file(REMOVE_RECURSE
  "CMakeFiles/bulk_backhaul.dir/bulk_backhaul.cpp.o"
  "CMakeFiles/bulk_backhaul.dir/bulk_backhaul.cpp.o.d"
  "bulk_backhaul"
  "bulk_backhaul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_backhaul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
