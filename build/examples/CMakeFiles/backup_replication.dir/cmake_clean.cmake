file(REMOVE_RECURSE
  "CMakeFiles/backup_replication.dir/backup_replication.cpp.o"
  "CMakeFiles/backup_replication.dir/backup_replication.cpp.o.d"
  "backup_replication"
  "backup_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
