# Empty compiler generated dependencies file for backup_replication.
# This may be replaced when dependencies are built.
