file(REMOVE_RECURSE
  "CMakeFiles/compare_policies.dir/compare_policies.cpp.o"
  "CMakeFiles/compare_policies.dir/compare_policies.cpp.o.d"
  "compare_policies"
  "compare_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
