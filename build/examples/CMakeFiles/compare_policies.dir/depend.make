# Empty dependencies file for compare_policies.
# This may be replaced when dependencies are built.
