file(REMOVE_RECURSE
  "CMakeFiles/mps_solve.dir/mps_solve.cpp.o"
  "CMakeFiles/mps_solve.dir/mps_solve.cpp.o.d"
  "mps_solve"
  "mps_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mps_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
