# Empty dependencies file for mps_solve.
# This may be replaced when dependencies are built.
