# Empty dependencies file for postcard_net.
# This may be replaced when dependencies are built.
