file(REMOVE_RECURSE
  "libpostcard_net.a"
)
