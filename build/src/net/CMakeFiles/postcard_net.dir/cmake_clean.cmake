file(REMOVE_RECURSE
  "CMakeFiles/postcard_net.dir/time_expanded.cc.o"
  "CMakeFiles/postcard_net.dir/time_expanded.cc.o.d"
  "CMakeFiles/postcard_net.dir/topology.cc.o"
  "CMakeFiles/postcard_net.dir/topology.cc.o.d"
  "libpostcard_net.a"
  "libpostcard_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
