# Empty dependencies file for postcard_sim.
# This may be replaced when dependencies are built.
