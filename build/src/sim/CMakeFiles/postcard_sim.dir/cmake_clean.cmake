file(REMOVE_RECURSE
  "CMakeFiles/postcard_sim.dir/csv.cc.o"
  "CMakeFiles/postcard_sim.dir/csv.cc.o.d"
  "CMakeFiles/postcard_sim.dir/metrics.cc.o"
  "CMakeFiles/postcard_sim.dir/metrics.cc.o.d"
  "CMakeFiles/postcard_sim.dir/simulator.cc.o"
  "CMakeFiles/postcard_sim.dir/simulator.cc.o.d"
  "CMakeFiles/postcard_sim.dir/workload.cc.o"
  "CMakeFiles/postcard_sim.dir/workload.cc.o.d"
  "libpostcard_sim.a"
  "libpostcard_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
