
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/csv.cc" "src/sim/CMakeFiles/postcard_sim.dir/csv.cc.o" "gcc" "src/sim/CMakeFiles/postcard_sim.dir/csv.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/postcard_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/postcard_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/sim/CMakeFiles/postcard_sim.dir/simulator.cc.o" "gcc" "src/sim/CMakeFiles/postcard_sim.dir/simulator.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/postcard_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/postcard_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/postcard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/charging/CMakeFiles/postcard_charging.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
