file(REMOVE_RECURSE
  "libpostcard_sim.a"
)
