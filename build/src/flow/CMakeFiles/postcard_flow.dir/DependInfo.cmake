
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flow/baseline.cc" "src/flow/CMakeFiles/postcard_flow.dir/baseline.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/baseline.cc.o.d"
  "/root/repo/src/flow/dynamic_flow.cc" "src/flow/CMakeFiles/postcard_flow.dir/dynamic_flow.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/dynamic_flow.cc.o.d"
  "/root/repo/src/flow/graph.cc" "src/flow/CMakeFiles/postcard_flow.dir/graph.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/graph.cc.o.d"
  "/root/repo/src/flow/maxflow.cc" "src/flow/CMakeFiles/postcard_flow.dir/maxflow.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/maxflow.cc.o.d"
  "/root/repo/src/flow/mincost.cc" "src/flow/CMakeFiles/postcard_flow.dir/mincost.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/mincost.cc.o.d"
  "/root/repo/src/flow/shortest_path.cc" "src/flow/CMakeFiles/postcard_flow.dir/shortest_path.cc.o" "gcc" "src/flow/CMakeFiles/postcard_flow.dir/shortest_path.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/postcard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/charging/CMakeFiles/postcard_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/postcard_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/postcard_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
