file(REMOVE_RECURSE
  "libpostcard_flow.a"
)
