# Empty dependencies file for postcard_flow.
# This may be replaced when dependencies are built.
