file(REMOVE_RECURSE
  "CMakeFiles/postcard_flow.dir/baseline.cc.o"
  "CMakeFiles/postcard_flow.dir/baseline.cc.o.d"
  "CMakeFiles/postcard_flow.dir/dynamic_flow.cc.o"
  "CMakeFiles/postcard_flow.dir/dynamic_flow.cc.o.d"
  "CMakeFiles/postcard_flow.dir/graph.cc.o"
  "CMakeFiles/postcard_flow.dir/graph.cc.o.d"
  "CMakeFiles/postcard_flow.dir/maxflow.cc.o"
  "CMakeFiles/postcard_flow.dir/maxflow.cc.o.d"
  "CMakeFiles/postcard_flow.dir/mincost.cc.o"
  "CMakeFiles/postcard_flow.dir/mincost.cc.o.d"
  "CMakeFiles/postcard_flow.dir/shortest_path.cc.o"
  "CMakeFiles/postcard_flow.dir/shortest_path.cc.o.d"
  "libpostcard_flow.a"
  "libpostcard_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
