
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charging/charge_state.cc" "src/charging/CMakeFiles/postcard_charging.dir/charge_state.cc.o" "gcc" "src/charging/CMakeFiles/postcard_charging.dir/charge_state.cc.o.d"
  "/root/repo/src/charging/cost_function.cc" "src/charging/CMakeFiles/postcard_charging.dir/cost_function.cc.o" "gcc" "src/charging/CMakeFiles/postcard_charging.dir/cost_function.cc.o.d"
  "/root/repo/src/charging/percentile.cc" "src/charging/CMakeFiles/postcard_charging.dir/percentile.cc.o" "gcc" "src/charging/CMakeFiles/postcard_charging.dir/percentile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/postcard_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
