file(REMOVE_RECURSE
  "CMakeFiles/postcard_charging.dir/charge_state.cc.o"
  "CMakeFiles/postcard_charging.dir/charge_state.cc.o.d"
  "CMakeFiles/postcard_charging.dir/cost_function.cc.o"
  "CMakeFiles/postcard_charging.dir/cost_function.cc.o.d"
  "CMakeFiles/postcard_charging.dir/percentile.cc.o"
  "CMakeFiles/postcard_charging.dir/percentile.cc.o.d"
  "libpostcard_charging.a"
  "libpostcard_charging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_charging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
