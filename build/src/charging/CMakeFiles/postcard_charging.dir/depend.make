# Empty dependencies file for postcard_charging.
# This may be replaced when dependencies are built.
