file(REMOVE_RECURSE
  "libpostcard_charging.a"
)
