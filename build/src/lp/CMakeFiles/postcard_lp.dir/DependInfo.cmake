
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/ipm.cc" "src/lp/CMakeFiles/postcard_lp.dir/ipm.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/ipm.cc.o.d"
  "/root/repo/src/lp/model.cc" "src/lp/CMakeFiles/postcard_lp.dir/model.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/model.cc.o.d"
  "/root/repo/src/lp/mps.cc" "src/lp/CMakeFiles/postcard_lp.dir/mps.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/mps.cc.o.d"
  "/root/repo/src/lp/presolve.cc" "src/lp/CMakeFiles/postcard_lp.dir/presolve.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/presolve.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/lp/CMakeFiles/postcard_lp.dir/simplex.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/simplex.cc.o.d"
  "/root/repo/src/lp/solver.cc" "src/lp/CMakeFiles/postcard_lp.dir/solver.cc.o" "gcc" "src/lp/CMakeFiles/postcard_lp.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/postcard_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
