file(REMOVE_RECURSE
  "CMakeFiles/postcard_lp.dir/ipm.cc.o"
  "CMakeFiles/postcard_lp.dir/ipm.cc.o.d"
  "CMakeFiles/postcard_lp.dir/model.cc.o"
  "CMakeFiles/postcard_lp.dir/model.cc.o.d"
  "CMakeFiles/postcard_lp.dir/mps.cc.o"
  "CMakeFiles/postcard_lp.dir/mps.cc.o.d"
  "CMakeFiles/postcard_lp.dir/presolve.cc.o"
  "CMakeFiles/postcard_lp.dir/presolve.cc.o.d"
  "CMakeFiles/postcard_lp.dir/simplex.cc.o"
  "CMakeFiles/postcard_lp.dir/simplex.cc.o.d"
  "CMakeFiles/postcard_lp.dir/solver.cc.o"
  "CMakeFiles/postcard_lp.dir/solver.cc.o.d"
  "libpostcard_lp.a"
  "libpostcard_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
