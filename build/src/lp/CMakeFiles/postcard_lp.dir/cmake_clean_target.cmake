file(REMOVE_RECURSE
  "libpostcard_lp.a"
)
