# Empty compiler generated dependencies file for postcard_lp.
# This may be replaced when dependencies are built.
