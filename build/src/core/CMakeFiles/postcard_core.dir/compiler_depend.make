# Empty compiler generated dependencies file for postcard_core.
# This may be replaced when dependencies are built.
