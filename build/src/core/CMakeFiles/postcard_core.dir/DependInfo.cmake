
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/column_generation.cc" "src/core/CMakeFiles/postcard_core.dir/column_generation.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/column_generation.cc.o.d"
  "/root/repo/src/core/extensions.cc" "src/core/CMakeFiles/postcard_core.dir/extensions.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/extensions.cc.o.d"
  "/root/repo/src/core/formulation.cc" "src/core/CMakeFiles/postcard_core.dir/formulation.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/formulation.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/core/CMakeFiles/postcard_core.dir/greedy.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/greedy.cc.o.d"
  "/root/repo/src/core/plan.cc" "src/core/CMakeFiles/postcard_core.dir/plan.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/plan.cc.o.d"
  "/root/repo/src/core/postcard.cc" "src/core/CMakeFiles/postcard_core.dir/postcard.cc.o" "gcc" "src/core/CMakeFiles/postcard_core.dir/postcard.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/postcard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/charging/CMakeFiles/postcard_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/postcard_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/postcard_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
