file(REMOVE_RECURSE
  "libpostcard_core.a"
)
