file(REMOVE_RECURSE
  "CMakeFiles/postcard_core.dir/column_generation.cc.o"
  "CMakeFiles/postcard_core.dir/column_generation.cc.o.d"
  "CMakeFiles/postcard_core.dir/extensions.cc.o"
  "CMakeFiles/postcard_core.dir/extensions.cc.o.d"
  "CMakeFiles/postcard_core.dir/formulation.cc.o"
  "CMakeFiles/postcard_core.dir/formulation.cc.o.d"
  "CMakeFiles/postcard_core.dir/greedy.cc.o"
  "CMakeFiles/postcard_core.dir/greedy.cc.o.d"
  "CMakeFiles/postcard_core.dir/plan.cc.o"
  "CMakeFiles/postcard_core.dir/plan.cc.o.d"
  "CMakeFiles/postcard_core.dir/postcard.cc.o"
  "CMakeFiles/postcard_core.dir/postcard.cc.o.d"
  "libpostcard_core.a"
  "libpostcard_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
