# Empty dependencies file for postcard_linalg.
# This may be replaced when dependencies are built.
