file(REMOVE_RECURSE
  "libpostcard_linalg.a"
)
