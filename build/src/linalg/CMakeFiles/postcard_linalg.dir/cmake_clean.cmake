file(REMOVE_RECURSE
  "CMakeFiles/postcard_linalg.dir/cholesky.cc.o"
  "CMakeFiles/postcard_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/postcard_linalg.dir/lu.cc.o"
  "CMakeFiles/postcard_linalg.dir/lu.cc.o.d"
  "CMakeFiles/postcard_linalg.dir/sparse.cc.o"
  "CMakeFiles/postcard_linalg.dir/sparse.cc.o.d"
  "libpostcard_linalg.a"
  "libpostcard_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postcard_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
