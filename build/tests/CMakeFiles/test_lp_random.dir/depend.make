# Empty dependencies file for test_lp_random.
# This may be replaced when dependencies are built.
