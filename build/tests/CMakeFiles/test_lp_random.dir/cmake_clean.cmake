file(REMOVE_RECURSE
  "CMakeFiles/test_lp_random.dir/lp/test_lp_random.cc.o"
  "CMakeFiles/test_lp_random.dir/lp/test_lp_random.cc.o.d"
  "test_lp_random"
  "test_lp_random.pdb"
  "test_lp_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
