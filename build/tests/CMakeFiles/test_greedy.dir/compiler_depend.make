# Empty compiler generated dependencies file for test_greedy.
# This may be replaced when dependencies are built.
