file(REMOVE_RECURSE
  "CMakeFiles/test_greedy.dir/core/test_greedy.cc.o"
  "CMakeFiles/test_greedy.dir/core/test_greedy.cc.o.d"
  "test_greedy"
  "test_greedy.pdb"
  "test_greedy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
