file(REMOVE_RECURSE
  "CMakeFiles/test_formulation.dir/core/test_formulation.cc.o"
  "CMakeFiles/test_formulation.dir/core/test_formulation.cc.o.d"
  "test_formulation"
  "test_formulation.pdb"
  "test_formulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
