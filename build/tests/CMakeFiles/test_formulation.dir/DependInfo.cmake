
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_formulation.cc" "tests/CMakeFiles/test_formulation.dir/core/test_formulation.cc.o" "gcc" "tests/CMakeFiles/test_formulation.dir/core/test_formulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/postcard_core.dir/DependInfo.cmake"
  "/root/repo/build/src/charging/CMakeFiles/postcard_charging.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/postcard_net.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/postcard_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/postcard_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
