# Empty dependencies file for test_formulation.
# This may be replaced when dependencies are built.
