file(REMOVE_RECURSE
  "CMakeFiles/test_charge_state.dir/charging/test_charge_state.cc.o"
  "CMakeFiles/test_charge_state.dir/charging/test_charge_state.cc.o.d"
  "test_charge_state"
  "test_charge_state.pdb"
  "test_charge_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_charge_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
