# Empty compiler generated dependencies file for test_charge_state.
# This may be replaced when dependencies are built.
