file(REMOVE_RECURSE
  "CMakeFiles/test_postcard.dir/core/test_postcard.cc.o"
  "CMakeFiles/test_postcard.dir/core/test_postcard.cc.o.d"
  "test_postcard"
  "test_postcard.pdb"
  "test_postcard[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postcard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
