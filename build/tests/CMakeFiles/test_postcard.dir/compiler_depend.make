# Empty compiler generated dependencies file for test_postcard.
# This may be replaced when dependencies are built.
