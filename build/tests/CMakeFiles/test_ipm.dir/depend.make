# Empty dependencies file for test_ipm.
# This may be replaced when dependencies are built.
