file(REMOVE_RECURSE
  "CMakeFiles/test_ipm.dir/lp/test_ipm.cc.o"
  "CMakeFiles/test_ipm.dir/lp/test_ipm.cc.o.d"
  "test_ipm"
  "test_ipm.pdb"
  "test_ipm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
