# Empty dependencies file for test_dynamic_flow.
# This may be replaced when dependencies are built.
