file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_flow.dir/flow/test_dynamic_flow.cc.o"
  "CMakeFiles/test_dynamic_flow.dir/flow/test_dynamic_flow.cc.o.d"
  "test_dynamic_flow"
  "test_dynamic_flow.pdb"
  "test_dynamic_flow[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
