# Empty compiler generated dependencies file for test_online_invariants.
# This may be replaced when dependencies are built.
