file(REMOVE_RECURSE
  "CMakeFiles/test_online_invariants.dir/core/test_online_invariants.cc.o"
  "CMakeFiles/test_online_invariants.dir/core/test_online_invariants.cc.o.d"
  "test_online_invariants"
  "test_online_invariants.pdb"
  "test_online_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_online_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
