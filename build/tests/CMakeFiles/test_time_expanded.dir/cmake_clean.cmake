file(REMOVE_RECURSE
  "CMakeFiles/test_time_expanded.dir/net/test_time_expanded.cc.o"
  "CMakeFiles/test_time_expanded.dir/net/test_time_expanded.cc.o.d"
  "test_time_expanded"
  "test_time_expanded.pdb"
  "test_time_expanded[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_time_expanded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
