# Empty dependencies file for test_time_expanded.
# This may be replaced when dependencies are built.
