file(REMOVE_RECURSE
  "CMakeFiles/test_solver_diagnostics.dir/lp/test_solver_diagnostics.cc.o"
  "CMakeFiles/test_solver_diagnostics.dir/lp/test_solver_diagnostics.cc.o.d"
  "test_solver_diagnostics"
  "test_solver_diagnostics.pdb"
  "test_solver_diagnostics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
