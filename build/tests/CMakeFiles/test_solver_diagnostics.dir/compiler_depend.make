# Empty compiler generated dependencies file for test_solver_diagnostics.
# This may be replaced when dependencies are built.
