file(REMOVE_RECURSE
  "CMakeFiles/test_presolve.dir/lp/test_presolve.cc.o"
  "CMakeFiles/test_presolve.dir/lp/test_presolve.cc.o.d"
  "test_presolve"
  "test_presolve.pdb"
  "test_presolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_presolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
