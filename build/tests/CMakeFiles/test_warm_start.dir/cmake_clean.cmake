file(REMOVE_RECURSE
  "CMakeFiles/test_warm_start.dir/lp/test_warm_start.cc.o"
  "CMakeFiles/test_warm_start.dir/lp/test_warm_start.cc.o.d"
  "test_warm_start"
  "test_warm_start.pdb"
  "test_warm_start[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_warm_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
