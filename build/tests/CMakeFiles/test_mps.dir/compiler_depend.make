# Empty compiler generated dependencies file for test_mps.
# This may be replaced when dependencies are built.
