file(REMOVE_RECURSE
  "CMakeFiles/test_mps.dir/lp/test_mps.cc.o"
  "CMakeFiles/test_mps.dir/lp/test_mps.cc.o.d"
  "test_mps"
  "test_mps.pdb"
  "test_mps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
