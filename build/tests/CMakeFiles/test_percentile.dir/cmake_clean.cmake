file(REMOVE_RECURSE
  "CMakeFiles/test_percentile.dir/charging/test_percentile.cc.o"
  "CMakeFiles/test_percentile.dir/charging/test_percentile.cc.o.d"
  "test_percentile"
  "test_percentile.pdb"
  "test_percentile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_percentile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
