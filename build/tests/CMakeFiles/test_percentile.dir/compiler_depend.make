# Empty compiler generated dependencies file for test_percentile.
# This may be replaced when dependencies are built.
