file(REMOVE_RECURSE
  "CMakeFiles/test_cost_function.dir/charging/test_cost_function.cc.o"
  "CMakeFiles/test_cost_function.dir/charging/test_cost_function.cc.o.d"
  "test_cost_function"
  "test_cost_function.pdb"
  "test_cost_function[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cost_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
