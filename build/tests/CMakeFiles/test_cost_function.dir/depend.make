# Empty dependencies file for test_cost_function.
# This may be replaced when dependencies are built.
