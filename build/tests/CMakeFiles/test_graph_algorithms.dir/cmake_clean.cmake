file(REMOVE_RECURSE
  "CMakeFiles/test_graph_algorithms.dir/flow/test_graph_algorithms.cc.o"
  "CMakeFiles/test_graph_algorithms.dir/flow/test_graph_algorithms.cc.o.d"
  "test_graph_algorithms"
  "test_graph_algorithms.pdb"
  "test_graph_algorithms[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
