# Empty compiler generated dependencies file for test_graph_algorithms.
# This may be replaced when dependencies are built.
