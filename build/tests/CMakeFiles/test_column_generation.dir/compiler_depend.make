# Empty compiler generated dependencies file for test_column_generation.
# This may be replaced when dependencies are built.
