file(REMOVE_RECURSE
  "CMakeFiles/test_column_generation.dir/core/test_column_generation.cc.o"
  "CMakeFiles/test_column_generation.dir/core/test_column_generation.cc.o.d"
  "test_column_generation"
  "test_column_generation.pdb"
  "test_column_generation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_column_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
