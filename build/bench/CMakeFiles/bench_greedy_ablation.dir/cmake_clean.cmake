file(REMOVE_RECURSE
  "CMakeFiles/bench_greedy_ablation.dir/bench_greedy_ablation.cc.o"
  "CMakeFiles/bench_greedy_ablation.dir/bench_greedy_ablation.cc.o.d"
  "bench_greedy_ablation"
  "bench_greedy_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
