# Empty compiler generated dependencies file for bench_greedy_ablation.
# This may be replaced when dependencies are built.
