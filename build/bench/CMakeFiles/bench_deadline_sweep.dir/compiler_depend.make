# Empty compiler generated dependencies file for bench_deadline_sweep.
# This may be replaced when dependencies are built.
