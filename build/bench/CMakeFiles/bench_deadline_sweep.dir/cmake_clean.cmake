file(REMOVE_RECURSE
  "CMakeFiles/bench_deadline_sweep.dir/bench_deadline_sweep.cc.o"
  "CMakeFiles/bench_deadline_sweep.dir/bench_deadline_sweep.cc.o.d"
  "bench_deadline_sweep"
  "bench_deadline_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deadline_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
