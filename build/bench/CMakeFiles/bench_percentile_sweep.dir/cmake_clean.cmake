file(REMOVE_RECURSE
  "CMakeFiles/bench_percentile_sweep.dir/bench_percentile_sweep.cc.o"
  "CMakeFiles/bench_percentile_sweep.dir/bench_percentile_sweep.cc.o.d"
  "bench_percentile_sweep"
  "bench_percentile_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_percentile_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
