# Empty compiler generated dependencies file for bench_percentile_sweep.
# This may be replaced when dependencies are built.
