file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_ablation.dir/bench_solver_ablation.cc.o"
  "CMakeFiles/bench_solver_ablation.dir/bench_solver_ablation.cc.o.d"
  "bench_solver_ablation"
  "bench_solver_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
