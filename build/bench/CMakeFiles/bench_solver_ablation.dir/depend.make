# Empty dependencies file for bench_solver_ablation.
# This may be replaced when dependencies are built.
