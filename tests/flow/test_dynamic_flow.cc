// Ford-Fulkerson temporally repeated flows, cross-checked against an LP
// maximum flow on the time-expanded graph — the classical theorem says the
// two coincide for a single commodity.
#include "flow/dynamic_flow.h"

#include <gtest/gtest.h>

#include <random>

#include "lp/solver.h"
#include "net/time_expanded.h"
#include "net/topology.h"

namespace postcard::flow {
namespace {

/// Max volume deliverable s->d within `horizon` intervals, via LP on the
/// time-expanded graph (storage allowed).
double lp_dynamic_max(const net::Topology& topology, int s, int d, int horizon) {
  const net::TimeExpandedGraph g(topology, 0, horizon);
  lp::LpModel m;
  std::vector<int> vars(g.num_arcs());
  for (int a = 0; a < g.num_arcs(); ++a) {
    vars[a] = m.add_variable(0.0, g.arcs()[a].capacity, 0.0);
  }
  const int supply = m.add_variable(0.0, lp::kInfinity, -1.0);  // max delivered
  const int n = topology.num_datacenters();
  // Conservation at every node copy.
  std::vector<int> rows;
  for (int layer = 0; layer <= horizon; ++layer) {
    for (int i = 0; i < n; ++i) {
      rows.push_back(m.add_constraint(0.0, 0.0));
    }
  }
  m.add_coefficient(rows[s], supply, -1.0);
  m.add_coefficient(rows[horizon * n + d], supply, 1.0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    const net::TimeArc& arc = g.arcs()[a];
    m.add_coefficient(rows[arc.layer * n + arc.from_node], vars[a], 1.0);
    m.add_coefficient(rows[(arc.layer + 1) * n + arc.to_node], vars[a], -1.0);
  }
  const auto sol = lp::solve(m);
  EXPECT_EQ(sol.status, lp::SolveStatus::kOptimal);
  return sol.x[supply];
}

FlowGraph unit_transit_graph(const net::Topology& t) {
  FlowGraph g(t.num_datacenters());
  for (const net::Link& link : t.links()) {
    g.add_arc(link.from, link.to, link.capacity, 1.0);  // 1 slot per hop
  }
  return g;
}

TEST(DynamicFlow, SingleLink) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  FlowGraph g = unit_transit_graph(t);
  const auto r = max_dynamic_flow(g, 0, 1, 3);
  // 3 intervals, 1 hop: 3 repetitions of rate 5.
  EXPECT_DOUBLE_EQ(r.value, 15.0);
  ASSERT_EQ(r.paths.size(), 1u);
  EXPECT_EQ(r.paths[0].transit, 1);
  EXPECT_EQ(r.paths[0].repetitions, 3);
}

TEST(DynamicFlow, TwoHopPathLosesOneRepetition) {
  net::Topology t(3);
  t.set_link(0, 1, 4.0, 1.0);
  t.set_link(1, 2, 4.0, 1.0);
  FlowGraph g = unit_transit_graph(t);
  const auto r = max_dynamic_flow(g, 0, 2, 3);
  // 2 hops within 3 intervals: 2 start slots, rate 4 -> 8.
  EXPECT_DOUBLE_EQ(r.value, 8.0);
}

TEST(DynamicFlow, PathLongerThanHorizonDeliversNothing) {
  net::Topology t(4);
  t.set_link(0, 1, 4.0, 1.0);
  t.set_link(1, 2, 4.0, 1.0);
  t.set_link(2, 3, 4.0, 1.0);
  FlowGraph g = unit_transit_graph(t);
  const auto r = max_dynamic_flow(g, 0, 3, 2);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_TRUE(r.paths.empty());
}

TEST(DynamicFlow, ParallelPathsWithDifferentLengths) {
  // Direct link (small) + 2-hop detour (large).
  net::Topology t(3);
  t.set_link(0, 2, 2.0, 1.0);
  t.set_link(0, 1, 6.0, 1.0);
  t.set_link(1, 2, 6.0, 1.0);
  FlowGraph g = unit_transit_graph(t);
  const int horizon = 4;
  const auto r = max_dynamic_flow(g, 0, 2, horizon);
  // Direct: 4 reps x 2 = 8; detour: 3 reps x 6 = 18; total 26.
  EXPECT_DOUBLE_EQ(r.value, 26.0);
}

TEST(DynamicFlow, MatchesTimeExpandedLpOnKnownInstances) {
  net::Topology t(3);
  t.set_link(0, 2, 2.0, 1.0);
  t.set_link(0, 1, 6.0, 1.0);
  t.set_link(1, 2, 6.0, 1.0);
  for (int horizon = 1; horizon <= 5; ++horizon) {
    FlowGraph g = unit_transit_graph(t);
    const auto r = max_dynamic_flow(g, 0, 2, horizon);
    EXPECT_NEAR(r.value, lp_dynamic_max(t, 0, 2, horizon), 1e-6)
        << "horizon " << horizon;
  }
}

TEST(DynamicFlow, MatchesTimeExpandedLpOnRandomGraphs) {
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> cap(1.0, 10.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4 + trial % 3;
    net::Topology t(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i != j && unif(rng) < 0.5) t.set_link(i, j, cap(rng), 1.0);
      }
    }
    const int horizon = 1 + trial % 4;
    FlowGraph g = unit_transit_graph(t);
    const auto r = max_dynamic_flow(g, 0, n - 1, horizon);
    EXPECT_NEAR(r.value, lp_dynamic_max(t, 0, n - 1, horizon), 1e-6)
        << "trial " << trial << " horizon " << horizon;
  }
}

TEST(DynamicFlow, RepetitionAccountingIsConsistent) {
  net::Topology t(3);
  t.set_link(0, 1, 3.0, 1.0);
  t.set_link(1, 2, 3.0, 1.0);
  t.set_link(0, 2, 1.0, 1.0);
  FlowGraph g = unit_transit_graph(t);
  const auto r = max_dynamic_flow(g, 0, 2, 5);
  double recomputed = 0.0;
  for (const auto& p : r.paths) {
    EXPECT_EQ(p.repetitions, 5 - p.transit + 1);
    EXPECT_EQ(static_cast<int>(p.arcs.size()), p.transit);  // unit transit arcs
    recomputed += p.rate * p.repetitions;
  }
  EXPECT_DOUBLE_EQ(recomputed, r.value);
}

}  // namespace
}  // namespace postcard::flow
