#include <gtest/gtest.h>

#include "flow/graph.h"
#include "flow/maxflow.h"
#include "flow/mincost.h"
#include "flow/shortest_path.h"

namespace postcard::flow {
namespace {

TEST(FlowGraph, ArcPairsAndResiduals) {
  FlowGraph g(2);
  const int a = g.add_arc(0, 1, 10.0, 3.0);
  EXPECT_EQ(g.head(a), 1);
  EXPECT_EQ(g.tail(a), 0);
  EXPECT_DOUBLE_EQ(g.residual(a), 10.0);
  EXPECT_DOUBLE_EQ(g.residual(a ^ 1), 0.0);
  EXPECT_DOUBLE_EQ(g.cost(a ^ 1), -3.0);
  g.push(a, 4.0);
  EXPECT_DOUBLE_EQ(g.residual(a), 6.0);
  EXPECT_DOUBLE_EQ(g.residual(a ^ 1), 4.0);
  EXPECT_DOUBLE_EQ(g.flow(a), 4.0);
  g.reset_flow();
  EXPECT_DOUBLE_EQ(g.flow(a), 0.0);
}

TEST(FlowGraph, Validation) {
  FlowGraph g(2);
  EXPECT_THROW(g.add_arc(0, 2, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_arc(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(g.add_arc(0, 1, -1.0), std::invalid_argument);
  EXPECT_THROW(FlowGraph(-1), std::invalid_argument);
}

TEST(Dijkstra, ShortestDistancesOnKnownGraph) {
  // 0 ->1 (1), 1->2 (2), 0->2 (5): dist(2) = 3 via 1.
  FlowGraph g(3);
  g.add_arc(0, 1, 1.0, 1.0);
  g.add_arc(1, 2, 1.0, 2.0);
  g.add_arc(0, 2, 1.0, 5.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(tree.distance[1], 1.0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 3.0);
  const auto path = tree_path(g, tree, 2);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(g.tail(path[0]), 0);
  EXPECT_EQ(g.head(path[0]), 1);
  EXPECT_EQ(g.head(path[1]), 2);
}

TEST(Dijkstra, IgnoresSaturatedArcs) {
  FlowGraph g(3);
  const int cheap = g.add_arc(0, 1, 1.0, 1.0);
  g.add_arc(1, 2, 5.0, 1.0);
  g.add_arc(0, 2, 5.0, 10.0);
  g.push(cheap, 1.0);  // saturate the cheap first hop
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.distance[2], 10.0);  // must go direct
}

TEST(Dijkstra, UnreachableNodes) {
  FlowGraph g(3);
  g.add_arc(0, 1, 1.0, 1.0);
  const auto tree = dijkstra(g, 0);
  EXPECT_FALSE(tree.reached(2));
  EXPECT_TRUE(tree_path(g, tree, 2).empty());
}

TEST(MaxFlow, ClassicDiamond) {
  // 0->1 (3), 0->2 (2), 1->3 (2), 2->3 (3), 1->2 (1): max flow 0->3 is 5.
  FlowGraph g(4);
  g.add_arc(0, 1, 3.0);
  g.add_arc(0, 2, 2.0);
  g.add_arc(1, 3, 2.0);
  g.add_arc(2, 3, 3.0);
  g.add_arc(1, 2, 1.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 3), 5.0);
}

TEST(MaxFlow, BottleneckSingleEdge) {
  FlowGraph g(3);
  g.add_arc(0, 1, 100.0);
  g.add_arc(1, 2, 7.5);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 2), 7.5);
}

TEST(MaxFlow, DisconnectedSinkGivesZero) {
  FlowGraph g(3);
  g.add_arc(0, 1, 10.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 2), 0.0);
}

TEST(MaxFlow, FlowConservationHolds) {
  FlowGraph g(5);
  g.add_arc(0, 1, 4.0);
  g.add_arc(0, 2, 3.0);
  g.add_arc(1, 3, 2.0);
  g.add_arc(2, 3, 5.0);
  g.add_arc(1, 4, 3.0);
  g.add_arc(3, 4, 4.0);
  const double value = max_flow(g, 0, 4);
  EXPECT_DOUBLE_EQ(value, 7.0);
  // Net outflow at each internal node is zero.
  for (int node = 1; node <= 3; ++node) {
    double net = 0.0;
    for (int arc = 0; arc < g.num_arcs(); arc += 2) {
      if (g.tail(arc) == node) net += g.flow(arc);
      if (g.head(arc) == node) net -= g.flow(arc);
    }
    EXPECT_NEAR(net, 0.0, 1e-12) << "node " << node;
  }
}

TEST(MinCostFlow, PrefersCheapPathUntilSaturated) {
  // Two parallel paths 0->1->3 (cost 2, cap 2) and 0->2->3 (cost 6, cap 10).
  FlowGraph g(4);
  g.add_arc(0, 1, 2.0, 1.0);
  g.add_arc(1, 3, 2.0, 1.0);
  g.add_arc(0, 2, 10.0, 3.0);
  g.add_arc(2, 3, 10.0, 3.0);
  const auto r = min_cost_flow(g, 0, 3, 5.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.flow, 5.0);
  EXPECT_DOUBLE_EQ(r.cost, 2.0 * 2.0 + 3.0 * 6.0);
}

TEST(MinCostFlow, StopsAtCapacityWhenDemandTooLarge) {
  FlowGraph g(2);
  g.add_arc(0, 1, 4.0, 2.0);
  const auto r = min_cost_flow(g, 0, 1, 10.0);
  EXPECT_FALSE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.flow, 4.0);
  EXPECT_DOUBLE_EQ(r.cost, 8.0);
}

TEST(MinCostFlow, ReroutesThroughResidualArcs) {
  // Classic instance where the second augmentation must undo part of the
  // first: 0->1 (cap 1, cost 1), 0->2 (1, 10), 1->2 (1, 1), 1->3 (1, 10),
  // 2->3 (1, 1). Demand 2: optimal cost = 1+1+1 + 10+10 ... compute:
  // path A: 0->1->2->3 cost 3; path B: 0->2 ... 0->2 saturated? cap 1 each.
  // Optimal: unit on 0->1->3 (11) + unit on 0->2->3 (11) = 22, or
  // 0->1->2->3 (3) + 0->2->3 blocked (2->3 saturated) -> 0->2? then 2->3 full
  // -> B must use 0->2..2->3 full => B: 0->2 then stuck unless rerouting
  // pushes 1->2 back: SSP finds 0->2, reverse 2->1 (-1), 1->3: 10+(-1)+10=19?
  // no: second path cost = 10 - 1 + 10 = 19, total 3 + 19 = 22. Same optimum.
  FlowGraph g(4);
  g.add_arc(0, 1, 1.0, 1.0);
  g.add_arc(0, 2, 1.0, 10.0);
  g.add_arc(1, 2, 1.0, 1.0);
  g.add_arc(1, 3, 1.0, 10.0);
  g.add_arc(2, 3, 1.0, 1.0);
  const auto r = min_cost_flow(g, 0, 3, 2.0);
  EXPECT_TRUE(r.satisfied);
  EXPECT_DOUBLE_EQ(r.cost, 22.0);
}

TEST(MinCostFlow, RejectsNegativeCosts) {
  FlowGraph g(2);
  g.add_arc(0, 1, 1.0, -2.0);
  EXPECT_THROW(min_cost_flow(g, 0, 1, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace postcard::flow
