#include "flow/baseline.h"

#include <gtest/gtest.h>

namespace postcard::flow {
namespace {

/// 3 DCs: expensive direct 0->2, cheap relay 0->1->2.
net::Topology relay_topology(double capacity) {
  net::Topology t(3);
  t.set_link(0, 2, capacity, 10.0);
  t.set_link(0, 1, capacity, 1.0);
  t.set_link(1, 2, capacity, 1.0);
  return t;
}

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

TEST(FlowBaseline, RoutesViaCheapRelay) {
  FlowBaseline policy(relay_topology(100.0));
  const auto outcome = policy.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  EXPECT_EQ(outcome.accepted_ids, std::vector<int>{1});
  EXPECT_TRUE(outcome.rejected_ids.empty());
  // Rate 5 on 0->1 and 1->2: X = 5 each, cost 5*1 + 5*1 = 10.
  EXPECT_NEAR(policy.cost_per_interval(), 10.0, 1e-6);
}

TEST(FlowBaseline, FlowOccupiesItsWholeLifetime) {
  FlowBaseline policy(relay_topology(100.0));
  policy.schedule(0, {file(1, 0, 2, 12.0, 3, 0)});  // rate 4, slots 0..2
  const auto& cs = policy.charge_state();
  const net::Topology t = relay_topology(100.0);
  const int cheap1 = t.link_index(0, 1);
  const int cheap2 = t.link_index(1, 2);
  for (int slot = 0; slot < 3; ++slot) {
    EXPECT_NEAR(cs.committed(cheap1, slot), 4.0, 1e-6) << "slot " << slot;
    EXPECT_NEAR(cs.committed(cheap2, slot), 4.0, 1e-6) << "slot " << slot;
  }
  EXPECT_NEAR(cs.committed(cheap1, 3), 0.0, 1e-9);
}

TEST(FlowBaseline, ReusesPaidCapacityForFree) {
  FlowBaseline policy(relay_topology(100.0));
  policy.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  const double cost_after_first = policy.cost_per_interval();
  EXPECT_NEAR(cost_after_first, 10.0, 1e-6);
  // Identical file later: the paid X = 5 on both cheap links covers the
  // whole rate, so stage 1 routes it at lambda = 1 and cost stays flat.
  const auto outcome = policy.schedule(2, {file(2, 0, 2, 10.0, 2, 2)});
  EXPECT_EQ(outcome.accepted_ids, std::vector<int>{2});
  EXPECT_NEAR(policy.cost_per_interval(), cost_after_first, 1e-6);
}

TEST(FlowBaseline, RejectsWhenNoCapacityFits) {
  // Deadline 1 slot -> rate 10, but every path has capacity 4.
  FlowBaseline policy(relay_topology(4.0));
  const auto outcome = policy.schedule(0, {file(7, 0, 2, 10.0, 1, 0)});
  EXPECT_TRUE(outcome.accepted_ids.empty());
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{7});
  EXPECT_NEAR(outcome.rejected_volume, 10.0, 1e-9);
  EXPECT_NEAR(policy.cost_per_interval(), 0.0, 1e-9);
}

TEST(FlowBaseline, SplitsAcrossParallelPaths) {
  // Both the direct link and the relay are needed: capacity 3 each, rate 5.
  FlowBaseline policy(relay_topology(3.0));
  const auto outcome = policy.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  const auto& a = policy.last_assignments()[0];
  EXPECT_NEAR(a.rate, 5.0, 1e-9);
  // Conservation: net rate out of the source equals r_k.
  const net::Topology t = relay_topology(3.0);
  double out = 0.0;
  for (const auto& [link, rate] : a.link_rates) {
    if (t.link(link).from == 0) out += rate;
    if (t.link(link).to == 0) out -= rate;
  }
  EXPECT_NEAR(out, 5.0, 1e-6);
  // No link above capacity.
  for (const auto& [link, rate] : a.link_rates) {
    EXPECT_LE(rate, 3.0 + 1e-6);
  }
}

TEST(FlowBaseline, DropsHeaviestFirstWhenOverloaded) {
  // Two files, capacity only fits the lighter one.
  net::Topology t(2);
  t.set_link(0, 1, 6.0, 1.0);
  FlowBaseline policy(t);
  const auto outcome = policy.schedule(0, {file(1, 0, 1, 10.0, 1, 0),    // rate 10
                                           file(2, 0, 1, 4.0, 1, 0)});  // rate 4
  EXPECT_EQ(outcome.accepted_ids, std::vector<int>{2});
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{1});
}

TEST(FlowBaseline, ExactModeNeverCostsMoreThanTwoStage) {
  for (double cap : {6.0, 12.0, 100.0}) {
    FlowBaselineOptions two_stage, exact;
    two_stage.two_stage = true;
    exact.two_stage = false;
    FlowBaseline p2(relay_topology(cap), two_stage);
    FlowBaseline p1(relay_topology(cap), exact);
    const std::vector<net::FileRequest> batch0 = {file(1, 0, 2, 10.0, 2, 0),
                                                  file(2, 1, 2, 6.0, 2, 0)};
    const std::vector<net::FileRequest> batch1 = {file(3, 0, 2, 8.0, 2, 1)};
    p2.schedule(0, batch0);
    p1.schedule(0, batch0);
    p2.schedule(1, batch1);
    p1.schedule(1, batch1);
    EXPECT_LE(p1.cost_per_interval(), p2.cost_per_interval() + 1e-6)
        << "capacity " << cap;
  }
}

TEST(FlowBaseline, EmptyBatchIsANoop) {
  FlowBaseline policy(relay_topology(10.0));
  const auto outcome = policy.schedule(0, {});
  EXPECT_TRUE(outcome.accepted_ids.empty());
  EXPECT_EQ(outcome.lp_solves, 0);
  EXPECT_NEAR(policy.cost_per_interval(), 0.0, 1e-12);
}

TEST(FlowBaseline, NameReflectsMode) {
  FlowBaselineOptions exact;
  exact.two_stage = false;
  EXPECT_EQ(FlowBaseline(relay_topology(1.0)).name(), "flow-based (two-stage)");
  EXPECT_EQ(FlowBaseline(relay_topology(1.0), exact).name(), "flow-based (exact)");
}

}  // namespace
}  // namespace postcard::flow
