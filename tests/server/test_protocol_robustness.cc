// Protocol abuse suite: every way a client can misbehave on the wire —
// garbage bytes, truncated frames, lying lengths, unknown types, wrong
// versions, dribbled partial frames, oversized batches — must cost that
// client its session (with an Error reply when the socket still works)
// and NOTHING else: the server stays up, concurrent well-behaved clients
// keep working, and the whole suite is sanitizer-clean (`server` label
// runs under ASan/UBSan/TSAN).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "server/client.h"
#include "server/server.h"
#include "sim/workload.h"

namespace postcard::server {
namespace {

sim::WorkloadParams tiny_workload(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 4;
  p.link_capacity = 100.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 2;
  p.size_min = 10.0;
  p.size_max = 50.0;
  p.deadline_min = 1;
  p.deadline_max = 2;
  p.num_slots = 4;
  p.seed = seed;
  return p;
}

/// Raw socket without any protocol smarts, for speaking garbage.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_bytes(const std::vector<std::uint8_t>& bytes) {
    write_all(fd_, bytes.data(), bytes.size());
  }
  /// Reads until EOF; returns everything the server sent.
  std::vector<std::uint8_t> drain() {
    std::vector<std::uint8_t> out;
    std::uint8_t buf[4096];
    for (;;) {
      const ssize_t r = ::recv(fd_, buf, sizeof(buf), 0);
      if (r <= 0) break;
      out.insert(out.end(), buf, buf + r);
    }
    return out;
  }
  void half_close() { ::shutdown(fd_, SHUT_WR); }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Asserts the drained bytes are exactly one kError frame.
void expect_error_frame(const std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 8u);
  ByteReader r(bytes);
  const std::uint32_t len = r.u32();
  EXPECT_EQ(r.u16(), kProtocolVersion);
  EXPECT_EQ(static_cast<MessageType>(r.u16()), MessageType::kError);
  EXPECT_EQ(len, r.remaining());
}

class RobustnessTest : public testing::Test {
 protected:
  RobustnessTest()
      : workload_(tiny_workload(41)),
        server_(net::Topology(workload_.topology()), ServerOptions{}) {
    server_.add_postcard_backend();
    server_.start();
  }
  ~RobustnessTest() override {
    server_.request_shutdown();
    server_.wait();
  }

  /// The healthy-client check every abuse case ends with: the server must
  /// still answer a well-formed session correctly.
  void expect_server_alive() {
    PostcardClient client("127.0.0.1", server_.port());
    net::FileRequest f;
    f.id = next_id_++;
    f.source = 0;
    f.destination = 1;
    f.size = 10.0;
    f.max_transfer_slots = 2;
    EXPECT_TRUE(client.submit_file(f).admitted);
  }

  sim::UniformWorkload workload_;
  PostcardServer server_;
  int next_id_ = 1000;
};

TEST_F(RobustnessTest, GarbageHeaderClosesSessionLoudly) {
  RawConn conn(server_.port());
  conn.send_bytes({0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef});
  conn.half_close();
  // Garbage decodes as an absurd length or alien version: Error + close.
  expect_error_frame(conn.drain());
  expect_server_alive();
  EXPECT_GE(server_.stats().server.protocol_errors, 1);
}

TEST_F(RobustnessTest, OversizedDeclaredLengthRejected) {
  RawConn conn(server_.port());
  ByteWriter header;
  header.u32(0xfffffff0u);
  header.u16(kProtocolVersion);
  header.u16(static_cast<std::uint16_t>(MessageType::kSubmitBatch));
  conn.send_bytes(header.take());
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, UnknownMessageTypeRejected) {
  RawConn conn(server_.port());
  conn.send_bytes(encode_frame(static_cast<MessageType>(0x7777), {}));
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, WrongProtocolVersionRejected) {
  RawConn conn(server_.port());
  ByteWriter header;
  header.u32(0);
  header.u16(kProtocolVersion + 7);
  header.u16(static_cast<std::uint16_t>(MessageType::kQueryStats));
  conn.send_bytes(header.take());
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, TruncatedFrameThenEofIsHandled) {
  RawConn conn(server_.port());
  const std::vector<std::uint8_t> full = encode_frame(
      MessageType::kSubmitFile, SubmitFileRequest{}.encode());
  std::vector<std::uint8_t> partial(full.begin(), full.end() - 5);
  conn.send_bytes(partial);
  conn.half_close();  // EOF mid-frame
  // Mid-frame EOF: the server logs a protocol error; no reply is owed.
  conn.drain();
  expect_server_alive();
  EXPECT_GE(server_.stats().server.protocol_errors, 1);
}

TEST_F(RobustnessTest, TruncatedPayloadInsideValidFrameRejected) {
  // The frame is well-formed, but the payload is one byte short for its
  // message type: the bounds-checked decoder must throw, not over-read.
  RawConn conn(server_.port());
  SubmitFileRequest req;
  req.file.id = 1;
  req.file.source = 0;
  req.file.destination = 1;
  req.file.size = 10.0;
  std::vector<std::uint8_t> payload = req.encode();
  payload.pop_back();
  conn.send_bytes(encode_frame(MessageType::kSubmitFile, payload));
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, TrailingGarbageAfterPayloadRejected) {
  RawConn conn(server_.port());
  std::vector<std::uint8_t> payload;  // QueryStats expects an empty payload
  payload.push_back(0x55);
  conn.send_bytes(encode_frame(MessageType::kQueryStats, payload));
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, LyingBatchCountRejected) {
  RawConn conn(server_.port());
  ByteWriter payload;
  payload.u32(1000000);  // declares a million files, delivers none
  conn.send_bytes(encode_frame(MessageType::kSubmitBatch, payload.take()));
  conn.half_close();
  expect_error_frame(conn.drain());
  expect_server_alive();
}

TEST_F(RobustnessTest, CleanCloseAtFrameBoundaryIsNotAProtocolError) {
  // The read_exact contract: a peer that finishes its last frame and
  // closes is a CLEAN departure (EOF at byte 0 of the next header), not a
  // truncation. It must never inflate protocol_errors — that counter is
  // the alarm the truncation cases below rely on.
  const long before = server_.stats().server.protocol_errors;
  RawConn conn(server_.port());
  conn.send_bytes(encode_frame(MessageType::kQueryStats, {}));
  Frame reply;
  ASSERT_TRUE(read_frame(conn.fd(), &reply));
  EXPECT_EQ(reply.type, MessageType::kStatsReply);
  conn.half_close();  // EOF exactly on the frame boundary
  conn.drain();       // wait for the server to close its side too
  expect_server_alive();
  EXPECT_EQ(server_.stats().server.protocol_errors, before);
}

TEST_F(RobustnessTest, TruncatedHeaderCountsAsProtocolError) {
  // Three of the eight header bytes then EOF: mid-frame truncation, the
  // loud sibling of the clean close above.
  const long before = server_.stats().server.protocol_errors;
  RawConn conn(server_.port());
  conn.send_bytes({0x01, 0x02, 0x03});
  conn.half_close();
  conn.drain();
  expect_server_alive();
  EXPECT_GE(server_.stats().server.protocol_errors, before + 1);
}

TEST_F(RobustnessTest, ByteByByteFrameStillParses) {
  // Slow-loris pacing is not a protocol violation: a frame dribbled one
  // byte at a time must be answered normally.
  RawConn conn(server_.port());
  net::FileRequest f;
  f.id = 7;
  f.source = 0;
  f.destination = 2;
  f.size = 12.0;
  f.max_transfer_slots = 2;
  SubmitFileRequest req;
  req.file = f;
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kSubmitFile, req.encode());
  for (std::uint8_t byte : frame) {
    conn.send_bytes({byte});
  }
  Frame reply;
  ASSERT_TRUE(read_frame(conn.fd(), &reply));
  EXPECT_EQ(reply.type, MessageType::kSubmitReply);
  EXPECT_TRUE(SubmitReply::decode(reply.payload).verdict.admitted);
}

TEST_F(RobustnessTest, AbuseDoesNotDisturbConcurrentClients) {
  // Four well-behaved clients submit while four abusers spray garbage;
  // every good submission must be answered correctly.
  std::atomic<int> admitted{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([this, c, &admitted] {
      PostcardClient client("127.0.0.1", server_.port());
      for (int i = 0; i < 10; ++i) {
        net::FileRequest f;
        f.id = 10000 + c * 100 + i;
        f.source = c % 4;
        f.destination = (c + 1) % 4;
        f.size = 5.0;
        f.max_transfer_slots = 2;
        if (client.submit_file(f).admitted) admitted.fetch_add(1);
      }
    });
    threads.emplace_back([this] {
      RawConn conn(server_.port());
      conn.send_bytes({0xff, 0xff, 0xff, 0xff, 0x00, 0x99, 0x12, 0x34});
      conn.half_close();
      conn.drain();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(admitted.load(), 40);
  const runtime::RuntimeStats stats = server_.stats();
  EXPECT_EQ(stats.server.submit_admitted, 40);
  EXPECT_GE(stats.server.protocol_errors, 4);
  expect_server_alive();
}

}  // namespace
}  // namespace postcard::server
