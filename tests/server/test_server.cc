// End-to-end server tests over real TCP sockets: submission and explicit
// backpressure, batch verdicts, slot advancement, plan and stats queries,
// snapshot-on-request, graceful shutdown, and the full server-level
// kill-and-restore equivalence (a restarted server restored from the
// snapshot finishes the workload with the identical cost series).
#include "server/server.h"

#include <arpa/inet.h>
#include <cstdio>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <unistd.h>

#include "server/client.h"
#include "server/metrics.h"
#include "server/snapshot.h"
#include "sim/workload.h"

namespace postcard::server {
namespace {

sim::WorkloadParams small_workload(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

std::string temp_snapshot_path(const char* tag) {
  return testing::TempDir() + "postcard_server_" + tag + "_" +
         std::to_string(::getpid()) + ".psnp";
}

TEST(Server, SubmitAdvanceQueryShutdown) {
  const sim::UniformWorkload w(small_workload(31));
  PostcardServer server{net::Topology(w.topology()), ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  ASSERT_GT(server.port(), 0);

  PostcardClient client("127.0.0.1", server.port());

  // A feasible file is admitted with its release slot.
  net::FileRequest file;
  file.id = 1;
  file.source = 0;
  file.destination = 1;
  file.size = 50.0;
  file.max_transfer_slots = 2;
  const SubmitVerdict ok = client.submit_file(file);
  EXPECT_TRUE(ok.admitted);
  EXPECT_EQ(ok.slot, 0);

  // An impossible file earns an explicit Backpressure reply with the
  // admission controller's reason — the connection stays open.
  net::FileRequest huge = file;
  huge.id = 2;
  huge.size = 1e9;
  const SubmitVerdict rejected = client.submit_file(huge);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_FALSE(rejected.reason.empty());

  // Batch: one good, one structurally invalid (source == destination).
  net::FileRequest good = file;
  good.id = 3;
  net::FileRequest bad = file;
  bad.id = 4;
  bad.destination = bad.source;
  const std::vector<SubmitVerdict> verdicts = client.submit_batch({good, bad});
  ASSERT_EQ(verdicts.size(), 2u);
  EXPECT_TRUE(verdicts[0].admitted);
  EXPECT_FALSE(verdicts[1].admitted);

  // Tick one slot: the admitted files get solved and committed.
  EXPECT_EQ(client.advance(1), 1);

  // The committed plan is queryable while in flight (deadline 2 slots, so
  // after 1 tick it has not retired yet).
  const PlanReply plan = client.query_plan(0, 1);
  EXPECT_TRUE(plan.found);
  EXPECT_EQ(plan.request.id, 1);
  EXPECT_FALSE(plan.plan.transfers.empty());
  EXPECT_FALSE(client.query_plan(0, 999).found);
  EXPECT_FALSE(client.query_plan(7, 1).found);  // backend out of range

  // Stats: ingress and server counters agree with what this session did.
  const runtime::RuntimeStats stats = client.query_stats();
  EXPECT_EQ(stats.slots_processed, 1);
  EXPECT_EQ(stats.server.submits, 4);
  EXPECT_EQ(stats.server.submit_admitted, 2);
  EXPECT_EQ(stats.server.backpressure_replies, 2);
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.admitted, 2);
  EXPECT_EQ(stats.server.sessions_opened, 1);
  EXPECT_EQ(stats.server.slots_advanced, 1);
  ASSERT_EQ(stats.backends.size(), 1u);
  EXPECT_TRUE(stats.backends[0].audit_armed);

  // The metrics text renders the same snapshot.
  const std::string metrics = format_metrics(stats);
  EXPECT_NE(metrics.find("postcard_server_submits 4"), std::string::npos);
  EXPECT_NE(metrics.find("postcard_backend_accepted_files"),
            std::string::npos);

  client.shutdown();
  server.wait();
  EXPECT_FALSE(server.running());
}

TEST(Server, IdleSessionsAreReapedWithoutDisturbingActiveOnes) {
  const sim::UniformWorkload w(small_workload(36));
  ServerOptions options;
  options.session_idle_timeout_ms = 100;
  PostcardServer server{net::Topology(w.topology()), options};
  server.add_postcard_backend();
  server.start();

  // A connection that never sends a byte: exactly what a wedged or
  // half-open client looks like. Without the reaper it would pin a
  // session thread forever.
  const int idle_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(idle_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(idle_fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // An active client on the same server, polling throughout: its own
  // session must survive the reaper sweeps.
  PostcardClient client("127.0.0.1", server.port());
  long reaped = 0;
  for (int i = 0; i < 3000 && reaped == 0; ++i) {
    reaped = client.query_stats().server.sessions_reaped;
    ::usleep(10 * 1000);
  }
  EXPECT_GE(reaped, 1) << "idle session was never reaped";
  ::close(idle_fd);

  // The active session kept its connection and still does real work.
  client.submit_batch(w.batch(0));
  client.advance(1);
  const runtime::RuntimeStats stats = client.query_stats();
  EXPECT_EQ(stats.backends[0].cost_series.size(), 1u);
  EXPECT_NE(format_metrics(stats).find("postcard_server_sessions_reaped"),
            std::string::npos);

  client.shutdown();
  server.wait();
}

TEST(Server, ShutdownWritesFinalSnapshotAndDrains) {
  const sim::UniformWorkload w(small_workload(32));
  const std::string path = temp_snapshot_path("final");
  ServerOptions options;
  options.snapshot_path = path;
  PostcardServer server{net::Topology(w.topology()), options};
  server.add_postcard_backend();
  server.start();

  PostcardClient client("127.0.0.1", server.port());
  for (int slot = 0; slot < 3; ++slot) {
    for (net::FileRequest f : w.batch(slot)) client.submit_file(f);
    client.advance(1);
  }
  // The ShutdownReply certifies the drain: snapshot written, in-flight
  // work retired.
  client.shutdown();
  server.wait();

  const runtime::RuntimeSnapshot snap = read_snapshot_file(path);
  EXPECT_EQ(snap.next_slot, 3);
  ASSERT_EQ(snap.backends.size(), 1u);
  EXPECT_EQ(snap.backends[0].kind,
            runtime::BackendSnapshot::Kind::kPostcard);
  std::remove(path.c_str());
}

TEST(Server, KillAndRestartReproducesTheUninterruptedRun) {
  const sim::UniformWorkload w(small_workload(33));
  const int kill_at = 4;

  // Uninterrupted server run over the whole workload.
  std::vector<double> reference_series;
  {
    PostcardServer server{net::Topology(w.topology()), ServerOptions{}};
    server.add_postcard_backend();
    server.start();
    PostcardClient client("127.0.0.1", server.port());
    for (int slot = 0; slot < w.num_slots(); ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
    client.shutdown();
    server.wait();
    const runtime::RuntimeStats stats = server.stats();
    reference_series = stats.backends[0].cost_series;
  }

  // Interrupted: drain at `kill_at` (graceful shutdown writes the final
  // snapshot), then a NEW server process-equivalent restores and finishes.
  const std::string path = temp_snapshot_path("restart");
  {
    ServerOptions options;
    options.snapshot_path = path;
    PostcardServer server{net::Topology(w.topology()), options};
    server.add_postcard_backend();
    server.start();
    PostcardClient client("127.0.0.1", server.port());
    for (int slot = 0; slot < kill_at; ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
    client.shutdown();
    server.wait();
  }
  std::vector<double> restarted_series;
  {
    PostcardServer server{net::Topology(w.topology()), ServerOptions{}};
    server.add_postcard_backend();
    server.restore_from(path);
    server.start();
    PostcardClient client("127.0.0.1", server.port());
    for (int slot = kill_at; slot < w.num_slots(); ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
    client.shutdown();
    server.wait();
    restarted_series = server.stats().backends[0].cost_series;
  }

  ASSERT_EQ(restarted_series.size(), reference_series.size());
  for (std::size_t i = 0; i < reference_series.size(); ++i) {
    EXPECT_EQ(restarted_series[i], reference_series[i]) << "slot " << i;
  }
  std::remove(path.c_str());
}

TEST(Server, SnapshotRequestWritesWhereAsked) {
  const sim::UniformWorkload w(small_workload(34));
  PostcardServer server{net::Topology(w.topology()), ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  PostcardClient client("127.0.0.1", server.port());

  client.submit_batch(w.batch(0));
  client.advance(2);
  const std::string path = temp_snapshot_path("explicit");
  EXPECT_EQ(client.snapshot(path), path);
  EXPECT_EQ(read_snapshot_file(path).next_slot, 2);

  // No configured path and none given: a truthful failure, not a crash.
  EXPECT_THROW(client.snapshot(), WireError);

  client.shutdown();
  server.wait();
  std::remove(path.c_str());
}

TEST(Server, SignalStyleShutdownFromAnotherThread) {
  // request_shutdown() is what the SIGINT/SIGTERM path in
  // examples/postcard_server.cpp calls: it must drain and join cleanly
  // even with a client connected and mid-conversation.
  const sim::UniformWorkload w(small_workload(35));
  PostcardServer server{net::Topology(w.topology()), ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  PostcardClient client("127.0.0.1", server.port());
  client.submit_batch(w.batch(0));
  client.advance(1);

  server.request_shutdown();
  server.wait();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.stats().slots_processed, 1);
}

}  // namespace
}  // namespace postcard::server
