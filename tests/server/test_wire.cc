// Wire-layer unit tests: codec round-trips, bounds-checked decoding, and
// framing over real fds. The truncation sweep decodes every message at
// every prefix length — each must throw WireError, never read out of
// bounds (the suite runs under ASan/UBSan via the `server` ctest label).
#include "server/wire.h"

#include <gtest/gtest.h>
#include <chrono>
#include <limits>
#include <sys/socket.h>
#include <sys/time.h>
#include <thread>
#include <unistd.h>

#include "server/protocol.h"

namespace postcard::server {
namespace {

TEST(ByteCodec, ScalarsRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159265358979312);
  w.boolean(true);
  w.str("postcard");
  w.str("");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.14159265358979312);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "postcard");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
  EXPECT_NO_THROW(r.require_done());
}

TEST(ByteCodec, DoublesAreBitExact) {
  // The snapshot's bit-for-bit guarantee rests on this: encode/decode must
  // preserve the exact bit pattern, including signed zero, denormals, inf
  // and NaN payloads.
  const double values[] = {0.0,
                           -0.0,
                           1e-310,  // denormal
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           0.1,
                           1.0 / 3.0};
  for (double v : values) {
    ByteWriter w;
    w.f64(v);
    ByteReader r(w.data());
    const double back = r.f64();
    std::uint64_t a, b;
    std::memcpy(&a, &v, 8);
    std::memcpy(&b, &back, 8);
    EXPECT_EQ(a, b);
  }
}

TEST(ByteCodec, TruncatedScalarThrows) {
  ByteWriter w;
  w.u64(7);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    ByteReader r(w.data().data(), cut);
    EXPECT_THROW(r.u64(), WireError) << "prefix " << cut;
  }
}

TEST(ByteCodec, LyingStringLengthThrows) {
  ByteWriter w;
  w.u32(1000);  // declares 1000 bytes...
  w.u8('x');    // ...delivers one
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), WireError);
}

TEST(ByteCodec, LyingElementCountThrows) {
  ByteWriter w;
  w.u32(0x40000000u);  // ~1 billion declared 8-byte elements
  ByteReader r(w.data());
  EXPECT_THROW(r.length(8), WireError);
}

TEST(ByteCodec, TrailingGarbageDetected) {
  ByteWriter w;
  w.u32(1);
  w.u8(0xff);
  ByteReader r(w.data());
  r.u32();
  EXPECT_THROW(r.require_done(), WireError);
}

net::FileRequest sample_file(int id) {
  net::FileRequest f;
  f.id = id;
  f.source = 1;
  f.destination = 3;
  f.size = 42.5;
  f.max_transfer_slots = 3;
  f.release_slot = 7;
  return f;
}

TEST(ProtocolCodec, SubmitBatchRoundTrip) {
  SubmitBatchRequest req;
  req.files = {sample_file(1), sample_file(2), sample_file(900)};
  const SubmitBatchRequest back = SubmitBatchRequest::decode(req.encode());
  ASSERT_EQ(back.files.size(), 3u);
  EXPECT_EQ(back.files[2].id, 900);
  EXPECT_EQ(back.files[0].size, 42.5);
  EXPECT_EQ(back.files[1].max_transfer_slots, 3);
}

TEST(ProtocolCodec, PlanReplyRoundTrip) {
  PlanReply reply;
  reply.found = true;
  reply.request = sample_file(5);
  reply.plan.file_id = 5;
  core::Transfer t;
  t.slot = 7;
  t.from = 1;
  t.to = 2;
  t.volume = 21.25;
  t.link = 4;
  reply.plan.transfers.push_back(t);
  t.link = -1;  // storage leg
  t.from = t.to = 2;
  reply.plan.transfers.push_back(t);

  const PlanReply back = PlanReply::decode(reply.encode());
  EXPECT_TRUE(back.found);
  EXPECT_EQ(back.request.id, 5);
  ASSERT_EQ(back.plan.transfers.size(), 2u);
  EXPECT_EQ(back.plan.transfers[0].volume, 21.25);
  EXPECT_TRUE(back.plan.transfers[1].storage());
}

TEST(ProtocolCodec, StatsReplyRoundTrip) {
  runtime::RuntimeStats stats;
  stats.slots_processed = 12;
  stats.queue_depth = 3;
  stats.submitted = 100;
  stats.admitted = 95;
  stats.ingress_rejected = 5;
  stats.ingress_rejected_volume = 123.75;
  stats.server.sessions_opened = 8;
  stats.server.backpressure_replies = 5;
  stats.slot_latency.add(0.001);
  stats.slot_latency.add(0.01);
  runtime::BackendStats b;
  b.name = "postcard";
  b.accepted_files = 90;
  b.warm_accepts = 11;
  b.cold_starts = 1;
  b.audit_armed = true;
  b.audit_checks = 90;
  b.audit_reports = {"slot 3: link 2 over capacity"};
  b.cost_series = {1.0, 2.5, 2.5, 3.0};
  b.last_solver_status = "optimal";
  stats.backends.push_back(b);

  StatsReply reply;
  reply.stats = stats;
  const StatsReply back = StatsReply::decode(reply.encode());
  EXPECT_EQ(back.stats.slots_processed, 12);
  EXPECT_EQ(back.stats.queue_depth, 3u);
  EXPECT_EQ(back.stats.ingress_rejected_volume, 123.75);
  EXPECT_EQ(back.stats.server.sessions_opened, 8);
  EXPECT_EQ(back.stats.slot_latency.count(), 2);
  EXPECT_EQ(back.stats.slot_latency.mean_seconds(),
            stats.slot_latency.mean_seconds());
  ASSERT_EQ(back.stats.backends.size(), 1u);
  EXPECT_EQ(back.stats.backends[0].name, "postcard");
  EXPECT_EQ(back.stats.backends[0].cost_series, b.cost_series);
  EXPECT_EQ(back.stats.backends[0].audit_reports, b.audit_reports);
  EXPECT_TRUE(back.stats.backends[0].audit_armed);
}

TEST(ProtocolCodec, EveryTruncationOfEveryMessageThrows) {
  // Build one payload per codec, then decode every strict prefix: all must
  // throw WireError (bounds respected), none may crash or succeed.
  std::vector<std::vector<std::uint8_t>> payloads;
  {
    SubmitFileRequest r;
    r.file = sample_file(1);
    payloads.push_back(r.encode());
  }
  {
    SubmitBatchRequest r;
    r.files = {sample_file(1), sample_file(2)};
    payloads.push_back(r.encode());
  }
  {
    QueryPlanRequest r;
    r.backend = 0;
    r.file_id = 17;
    payloads.push_back(r.encode());
  }
  {
    SnapshotRequest r;
    r.path = "/tmp/x.psnp";
    payloads.push_back(r.encode());
  }
  {
    BatchReply r;
    r.verdicts.resize(2);
    r.verdicts[1].reason = "no egress";
    payloads.push_back(r.encode());
  }
  {
    PlanReply r;
    r.found = true;
    r.request = sample_file(4);
    r.plan.file_id = 4;
    r.plan.transfers.resize(2);
    payloads.push_back(r.encode());
  }

  int decoder = 0;
  const auto try_decode = [&](const std::vector<std::uint8_t>& p) {
    switch (decoder) {
      case 0: SubmitFileRequest::decode(p); break;
      case 1: SubmitBatchRequest::decode(p); break;
      case 2: QueryPlanRequest::decode(p); break;
      case 3: SnapshotRequest::decode(p); break;
      case 4: BatchReply::decode(p); break;
      case 5: PlanReply::decode(p); break;
    }
  };
  for (const std::vector<std::uint8_t>& payload : payloads) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      std::vector<std::uint8_t> prefix(payload.begin(),
                                       payload.begin() + cut);
      EXPECT_THROW(try_decode(prefix), WireError)
          << "decoder " << decoder << " prefix " << cut;
    }
    // The full payload must decode cleanly.
    EXPECT_NO_THROW(try_decode(payload)) << "decoder " << decoder;
    ++decoder;
  }
}

// --- Framing over real fds ------------------------------------------------

struct FdPair {
  int a = -1, b = -1;
  FdPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(Framing, RoundTripAndCleanEof) {
  FdPair p;
  SubmitFileRequest req;
  req.file = sample_file(9);
  write_frame(p.a, MessageType::kSubmitFile, req.encode());
  ::shutdown(p.a, SHUT_WR);

  Frame frame;
  ASSERT_TRUE(read_frame(p.b, &frame));
  EXPECT_EQ(frame.type, MessageType::kSubmitFile);
  EXPECT_EQ(SubmitFileRequest::decode(frame.payload).file.id, 9);
  // Next read sees a clean EOF on the frame boundary: false, no throw.
  EXPECT_FALSE(read_frame(p.b, &frame));
}

TEST(Framing, MidFrameEofThrows) {
  FdPair p;
  const std::vector<std::uint8_t> full =
      encode_frame(MessageType::kQueryStats, {1, 2, 3, 4});
  // Deliver all but the last byte, then close.
  write_all(p.a, full.data(), full.size() - 1);
  ::shutdown(p.a, SHUT_WR);
  Frame frame;
  EXPECT_THROW(read_frame(p.b, &frame), WireError);
}

TEST(Framing, OversizedDeclaredLengthRejectedBeforeAllocation) {
  FdPair p;
  ByteWriter header;
  header.u32(0xffffffffu);  // 4 GB declared payload
  header.u16(kProtocolVersion);
  header.u16(static_cast<std::uint16_t>(MessageType::kSubmitFile));
  write_all(p.a, header.data().data(), header.size());
  Frame frame;
  EXPECT_THROW(read_frame(p.b, &frame), WireError);
}

TEST(Framing, WrongVersionRejected) {
  FdPair p;
  ByteWriter header;
  header.u32(0);
  header.u16(kProtocolVersion + 1);
  header.u16(static_cast<std::uint16_t>(MessageType::kQueryStats));
  write_all(p.a, header.data().data(), header.size());
  Frame frame;
  EXPECT_THROW(read_frame(p.b, &frame), WireError);
}

TEST(Framing, ReceiveDeadlineSurfacesAsWireTimeout) {
  FdPair p;
  timeval tv{};
  tv.tv_usec = 50 * 1000;
  ASSERT_EQ(::setsockopt(p.b, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);

  // A peer that is merely idle: the deadline trips ON the frame boundary,
  // which the session loop treats as "check idle budget, maybe keep
  // waiting" — not a protocol error.
  Frame frame;
  try {
    read_frame(p.b, &frame);
    FAIL() << "silent peer never timed out";
  } catch (const WireTimeout& t) {
    EXPECT_TRUE(t.at_frame_boundary());
  }

  // A peer that stalls INSIDE a frame (half-open or wedged): same
  // exception, but flagged mid-frame — resuming is not an option because
  // the stream position is torn.
  const std::vector<std::uint8_t> full =
      encode_frame(MessageType::kQueryStats, {1, 2, 3, 4});
  write_all(p.a, full.data(), 3);  // a fragment of the header, then silence
  try {
    read_frame(p.b, &frame);
    FAIL() << "mid-frame stall never timed out";
  } catch (const WireTimeout& t) {
    EXPECT_FALSE(t.at_frame_boundary());
  }
}

TEST(Framing, WriteDeadlineTripsWhenPeerStopsDraining) {
  // The replication primary's protection against a stalled standby: a
  // bounded write_frame must throw WireTimeout once the peer's buffers
  // fill, instead of blocking the slot driver forever. Both socket
  // buffers are shrunk to their kernel minimum and SO_SNDTIMEO makes the
  // blocking send surface EAGAIN for write_all's poll deadline — the same
  // arrangement the primary applies to accepted replication connections.
  FdPair p;
  const int tiny = 1;  // the kernel clamps this up to its minimum
  ::setsockopt(p.a, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  ::setsockopt(p.b, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  timeval tv{};
  tv.tv_usec = 20 * 1000;
  ASSERT_EQ(::setsockopt(p.a, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)), 0);

  const std::vector<std::uint8_t> payload(1 << 20, 0x5a);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(write_frame(p.a, MessageType::kSubmitBatch, payload, 250),
               WireTimeout);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The deadline bounds the WHOLE write: well under the time a megabyte
  // would take at one-buffer-per-20ms, and with slack over the 250ms ask.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);

  // The same write with a draining peer completes fine — the deadline
  // only ever fires on a genuine stall. Fresh pair: the timed-out write
  // above left a torn frame prefix in the old stream.
  FdPair q;
  ::setsockopt(q.a, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  ::setsockopt(q.b, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  ASSERT_EQ(::setsockopt(q.a, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)), 0);
  std::thread reader([&] {
    Frame frame;
    ASSERT_TRUE(read_frame(q.b, &frame));
    EXPECT_EQ(frame.payload.size(), payload.size());
  });
  write_frame(q.a, MessageType::kSubmitBatch, payload, 30000);
  reader.join();
}

TEST(Framing, PartialWritesReassemble) {
  // A peer dribbling one byte at a time must still produce a whole frame.
  FdPair p;
  const std::vector<std::uint8_t> full =
      encode_frame(MessageType::kAdvanceSlot, AdvanceSlotRequest{3}.encode());
  std::thread writer([&] {
    for (std::uint8_t byte : full) write_all(p.a, &byte, 1);
  });
  Frame frame;
  ASSERT_TRUE(read_frame(p.b, &frame));
  writer.join();
  EXPECT_EQ(frame.type, MessageType::kAdvanceSlot);
  EXPECT_EQ(AdvanceSlotRequest::decode(frame.payload).slots, 3);
}

}  // namespace
}  // namespace postcard::server
