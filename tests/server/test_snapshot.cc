// Snapshot/restore: the headline guarantee is that a runtime killed
// mid-run and restored from its snapshot file reproduces the remaining
// cost series BIT FOR BIT against an uninterrupted run — charge ledgers,
// warm caches, in-flight plans, carry-over files, the slot clock and the
// pending event queue (including scheduled failures and armed chaos) all
// survive the round trip through disk. Fail-fast audits stay armed, so
// the first post-restore slot re-verifies every committed plan.
#include "server/snapshot.h"

#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <unistd.h>

#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::server {
namespace {

using runtime::ControllerRuntime;
using runtime::RuntimeOptions;
using runtime::RuntimeSnapshot;
using runtime::RuntimeStats;

sim::WorkloadParams small_workload(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 12;
  p.seed = seed;
  return p;
}

std::string temp_snapshot_path(const char* tag) {
  return testing::TempDir() + "postcard_" + tag + "_" +
         std::to_string(::getpid()) + ".psnp";
}

/// Drives `runtime` through slots [from, to): submit the slot's batch,
/// then tick — the exact loop ControllerRuntime::replay runs.
void drive(ControllerRuntime& runtime, const sim::WorkloadGenerator& w,
           int from, int to) {
  for (int slot = from; slot < to; ++slot) {
    for (const net::FileRequest& f : w.batch(slot)) {
      runtime.ingress().submit(f);
    }
    runtime.tick();
  }
}

/// Schedules the failure/chaos script both runs share.
void inject_chaos(ControllerRuntime& runtime) {
  runtime.fail_link(6, 2);
  runtime.restore_link(8, 2);
  runtime.stall_solver(7, 50);
}

TEST(SnapshotRestore, KillAndRestoreReproducesCostSeriesBitForBit) {
  const sim::UniformWorkload w(small_workload(21));
  const int kill_at = 5;

  // Uninterrupted reference run (deterministic mode, fail-fast audits on
  // by default), with scheduled chaos crossing the kill point.
  ControllerRuntime reference{net::Topology(w.topology()), RuntimeOptions{}};
  reference.add_postcard_backend();
  reference.add_flow_backend();
  inject_chaos(reference);
  drive(reference, w, 0, w.num_slots());
  reference.flush_in_flight();
  const RuntimeStats ref_stats = reference.stats();

  // Interrupted run: same setup, killed at slot `kill_at` with the chaos
  // events still pending in the queue.
  const std::string path = temp_snapshot_path("restore");
  {
    ControllerRuntime victim{net::Topology(w.topology()), RuntimeOptions{}};
    victim.add_postcard_backend();
    victim.add_flow_backend();
    inject_chaos(victim);
    drive(victim, w, 0, kill_at);
    write_snapshot_file(path, victim.capture_snapshot());
    // The victim is destroyed here — the abrupt-kill half of the story is
    // the atomic-rename contract tested below.
  }

  // Restored run: fresh runtime, same registration sequence, state from
  // disk, then the remaining slots.
  ControllerRuntime restored{net::Topology(w.topology()), RuntimeOptions{}};
  restored.add_postcard_backend();
  restored.add_flow_backend();
  restored.restore_snapshot(read_snapshot_file(path));
  EXPECT_EQ(restored.current_slot(), kill_at);
  drive(restored, w, kill_at, w.num_slots());
  restored.flush_in_flight();
  const RuntimeStats new_stats = restored.stats();

  ASSERT_EQ(new_stats.backends.size(), ref_stats.backends.size());
  for (std::size_t b = 0; b < ref_stats.backends.size(); ++b) {
    const runtime::BackendStats& ref = ref_stats.backends[b];
    const runtime::BackendStats& got = new_stats.backends[b];
    // Bit-for-bit: EXPECT_EQ on doubles, element by element, full series
    // (the restored prefix plus every post-restore slot).
    ASSERT_EQ(got.cost_series.size(), ref.cost_series.size()) << ref.name;
    for (std::size_t i = 0; i < ref.cost_series.size(); ++i) {
      EXPECT_EQ(got.cost_series[i], ref.cost_series[i])
          << ref.name << " slot " << i;
    }
    // Fail-fast audits were armed the whole way; the post-restore slots
    // re-checked every commit and found nothing.
    EXPECT_TRUE(got.audit_armed) << ref.name;
    EXPECT_EQ(got.audit_violations, 0) << ref.name;
    EXPECT_EQ(got.accepted_files, ref.accepted_files) << ref.name;
    EXPECT_EQ(got.delivered_volume, ref.delivered_volume) << ref.name;
    EXPECT_EQ(got.failed_files, ref.failed_files) << ref.name;
    EXPECT_EQ(got.replans, ref.replans) << ref.name;
    EXPECT_EQ(got.warm_accepts, ref.warm_accepts) << ref.name;
  }
  EXPECT_EQ(new_stats.submitted, ref_stats.submitted);
  EXPECT_EQ(new_stats.admitted, ref_stats.admitted);
  EXPECT_EQ(new_stats.link_events, ref_stats.link_events);
  EXPECT_EQ(new_stats.solver_stalls, ref_stats.solver_stalls);
  std::remove(path.c_str());
}

TEST(SnapshotRestore, EncodeDecodeIsLossless) {
  const sim::UniformWorkload w(small_workload(22));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.fail_link(9, 1);
  drive(runtime, w, 0, 4);

  const RuntimeSnapshot snap = runtime.capture_snapshot();
  const std::vector<std::uint8_t> bytes = encode_snapshot(snap);
  const RuntimeSnapshot back = decode_snapshot(bytes);

  // Identical state must re-serialize to identical bytes (the ordered
  // plan/flow ledgers serialize ascending by id precisely so this holds).
  EXPECT_EQ(encode_snapshot(back), bytes);
  EXPECT_EQ(back.next_slot, snap.next_slot);
  EXPECT_EQ(back.pending_events.size(), snap.pending_events.size());
  ASSERT_EQ(back.backends.size(), 1u);
  EXPECT_EQ(back.backends[0].series, snap.backends[0].series);
  EXPECT_EQ(back.backends[0].charged, snap.backends[0].charged);
  EXPECT_EQ(back.backends[0].plans.size(), snap.backends[0].plans.size());
}

TEST(SnapshotRestore, TamperedFileIsRejected) {
  const sim::UniformWorkload w(small_workload(23));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  drive(runtime, w, 0, 3);
  std::vector<std::uint8_t> bytes = encode_snapshot(runtime.capture_snapshot());

  // Flip one byte in the middle: checksum mismatch.
  std::vector<std::uint8_t> tampered = bytes;
  tampered[tampered.size() / 2] ^= 0x01;
  EXPECT_THROW(decode_snapshot(tampered), WireError);

  // Truncate: length/checksum mismatch, never a crash.
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{17},
                          bytes.size() / 2, bytes.size() - 1}) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_snapshot(prefix), WireError) << "prefix " << cut;
  }

  // Wrong magic and unsupported version.
  std::vector<std::uint8_t> wrong_magic = bytes;
  wrong_magic[0] ^= 0xff;
  EXPECT_THROW(decode_snapshot(wrong_magic), WireError);
  std::vector<std::uint8_t> future_version = bytes;
  future_version[4] = 99;  // version field, little-endian low byte
  EXPECT_THROW(decode_snapshot(future_version), WireError);
}

TEST(SnapshotRestore, EachCorruptionClassFailsWithItsOwnError) {
  // Operators debugging a failed failover reseed need to know WHICH way a
  // snapshot is bad: never-written, damaged, stale-format or torn. Each
  // class must fail loudly with its own message — and none may partially
  // restore (decode throws before any state is produced).
  const sim::UniformWorkload w(small_workload(26));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  drive(runtime, w, 0, 3);
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(runtime.capture_snapshot());

  const auto error_of = [](const std::vector<std::uint8_t>& image) {
    try {
      decode_snapshot(image);
    } catch (const WireError& e) {
      return std::string(e.what());
    }
    return std::string("(no error)");
  };

  // Zero-length file: crash before the first byte, not damage.
  EXPECT_EQ(error_of({}), "snapshot file is empty");
  {
    const std::string path = temp_snapshot_path("empty");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    try {
      read_snapshot_file(path);
      FAIL() << "empty file restored";
    } catch (const WireError& e) {
      EXPECT_STREQ(e.what(), "snapshot file is empty");
    }
    std::remove(path.c_str());
  }

  // Single-bit flip in the body: the checksum trailer catches it.
  {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[16 + (flipped.size() - 24) / 2] ^= 0x40;
    EXPECT_EQ(error_of(flipped),
              "snapshot checksum mismatch (file corrupt or tampered)");
  }

  // Truncated mid-section: the declared body length no longer fits.
  {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() +
                                      static_cast<long>(bytes.size() / 2));
    EXPECT_NE(error_of(cut).find("snapshot body length mismatch"),
              std::string::npos);
  }
  // Truncated inside the header: a distinct, equally loud message.
  {
    std::vector<std::uint8_t> stub(bytes.begin(), bytes.begin() + 10);
    EXPECT_EQ(error_of(stub), "snapshot shorter than header + trailer");
  }

  // Version skew (a snapshot from a future build): rejected by version,
  // not misparsed — the check runs before any body field is touched.
  {
    std::vector<std::uint8_t> future = bytes;
    future[4] = 99;
    EXPECT_EQ(error_of(future), "unsupported snapshot version 99");
  }

  // And the intact image still restores, proving the classes above were
  // each caused by the injected damage alone.
  EXPECT_NO_THROW(decode_snapshot(bytes));
}

TEST(SnapshotRestore, MismatchedRestoreTargetsAreRefused) {
  const sim::UniformWorkload w(small_workload(24));
  ControllerRuntime source{net::Topology(w.topology()), RuntimeOptions{}};
  source.add_postcard_backend();
  source.add_flow_backend();
  drive(source, w, 0, 2);
  const RuntimeSnapshot snap = source.capture_snapshot();

  // Backend registration order differs.
  {
    ControllerRuntime target{net::Topology(w.topology()), RuntimeOptions{}};
    target.add_flow_backend();
    target.add_postcard_backend();
    EXPECT_THROW(target.restore_snapshot(snap), std::invalid_argument);
  }
  // Backend missing.
  {
    ControllerRuntime target{net::Topology(w.topology()), RuntimeOptions{}};
    target.add_postcard_backend();
    EXPECT_THROW(target.restore_snapshot(snap), std::invalid_argument);
  }
  // Different topology shape.
  {
    sim::WorkloadParams other = small_workload(24);
    other.num_datacenters = 4;
    const sim::UniformWorkload w2(other);
    ControllerRuntime target{net::Topology(w2.topology()), RuntimeOptions{}};
    target.add_postcard_backend();
    target.add_flow_backend();
    EXPECT_THROW(target.restore_snapshot(snap), std::invalid_argument);
  }
  // A runtime that already ticked cannot be restored into (caller misuse,
  // so logic_error rather than invalid_argument).
  {
    ControllerRuntime target{net::Topology(w.topology()), RuntimeOptions{}};
    target.add_postcard_backend();
    target.add_flow_backend();
    target.tick();
    EXPECT_THROW(target.restore_snapshot(snap), std::logic_error);
  }
}

TEST(SnapshotRestore, AtomicReplaceNeverLeavesATornFile) {
  const sim::UniformWorkload w(small_workload(25));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  drive(runtime, w, 0, 2);

  const std::string path = temp_snapshot_path("atomic");
  write_snapshot_file(path, runtime.capture_snapshot());
  const RuntimeSnapshot first = read_snapshot_file(path);

  // Overwrite with a later state: the file is replaced via rename, so a
  // reader opening `path` at any point sees one complete snapshot.
  drive(runtime, w, 2, 4);
  write_snapshot_file(path, runtime.capture_snapshot());
  const RuntimeSnapshot second = read_snapshot_file(path);
  EXPECT_EQ(first.next_slot, 2);
  EXPECT_EQ(second.next_slot, 4);

  // Simulate the abrupt-kill residue: a stray half-written .tmp next to a
  // complete snapshot must not confuse the reader.
  {
    FILE* f = std::fopen((path + ".tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("torn", f);
    std::fclose(f);
  }
  EXPECT_EQ(read_snapshot_file(path).next_slot, 4);
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace postcard::server
