// Concurrency soak: eight protocol clients hammer one server across 50+
// slots — submits racing the slot clock, plan and stats queries racing
// the driver's commits, periodic snapshots racing everything. Run under
// the TSAN preset via the `server` ctest label; the assertions close the
// books with the accounting identity (every admitted file is accepted,
// rejected or failed by the solver — none lost) and exact agreement
// between the server's session counters and the ingress's own tallies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <unistd.h>

#include "server/client.h"
#include "server/server.h"
#include "server/snapshot.h"

namespace postcard::server {
namespace {

constexpr int kClients = 8;
constexpr int kSlots = 52;
constexpr int kFilesPerClient = 60;

net::Topology soak_topology() {
  // Small 4-DC full mesh with ample capacity: solves stay cheap, so the
  // test exercises concurrency, not the LP.
  net::Topology t(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) t.set_link(a, b, 200.0, 1.0 + a + b);
    }
  }
  return t;
}

TEST(ServerSoak, EightClientsFiftySlotsNothingLost) {
  const std::string snap_path = testing::TempDir() + "postcard_soak_" +
                                std::to_string(::getpid()) + ".psnp";
  ServerOptions options;
  options.snapshot_path = snap_path;
  PostcardServer server{soak_topology(), options};
  server.add_postcard_backend();
  server.start();

  std::atomic<bool> done{false};
  std::atomic<long> admitted{0};
  std::atomic<long> backpressured{0};

  // Eight sessions: submit, query plans and stats, snapshot — all racing
  // the driver thread that is ticking the slot clock.
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      PostcardClient client("127.0.0.1", server.port());
      for (int i = 0; i < kFilesPerClient; ++i) {
        net::FileRequest f;
        f.id = (c + 1) * 100000 + i;
        f.source = c % 4;
        f.destination = (c + 1 + i) % 4;
        if (f.destination == f.source) f.destination = (f.destination + 1) % 4;
        f.size = 1.0 + (i % 7);
        f.max_transfer_slots = 1 + (i % 3);
        const SubmitVerdict v = client.submit_file(f);
        if (v.admitted) {
          admitted.fetch_add(1);
          if (i % 9 == 0) client.query_plan(0, f.id);
        } else {
          backpressured.fetch_add(1);
        }
        if (i % 17 == 0) client.query_stats();
        if (c == 0 && i % 25 == 10) client.snapshot(snap_path);
      }
    });
  }

  // The driver clock: tick until every client finished, then a tail long
  // enough for the longest deadline, totalling at least kSlots.
  std::thread clock([&] {
    PostcardClient driver("127.0.0.1", server.port());
    int slot = 0;
    while (slot < kSlots || !done.load(std::memory_order_acquire)) {
      slot = driver.advance(1);
    }
    driver.advance(4);  // drain the longest deadline
  });

  for (std::thread& t : clients) t.join();
  done.store(true, std::memory_order_release);
  clock.join();

  server.request_shutdown();
  server.wait();

  const runtime::RuntimeStats stats = server.stats();
  // Session-side and ingress-side books agree exactly.
  EXPECT_EQ(stats.server.submits, kClients * kFilesPerClient);
  EXPECT_EQ(stats.submitted, kClients * kFilesPerClient);
  EXPECT_EQ(stats.server.submit_admitted, admitted.load());
  EXPECT_EQ(stats.admitted, admitted.load());
  EXPECT_EQ(stats.server.backpressure_replies, backpressured.load());
  EXPECT_EQ(stats.ingress_rejected, backpressured.load());
  EXPECT_GE(stats.slots_processed, kSlots);
  EXPECT_EQ(stats.server.protocol_errors, 0);
  EXPECT_EQ(stats.server.sessions_opened, kClients + 1);

  // The accounting identity: every admitted file was accepted, rejected
  // or failed by the solver — none vanished into the concurrency.
  ASSERT_EQ(stats.backends.size(), 1u);
  const runtime::BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files + b.rejected_files + b.failed_files,
            stats.admitted);
  // Ample capacity and drained deadlines: everything accepted delivered.
  EXPECT_EQ(b.delivered_files, b.accepted_files);
  EXPECT_EQ(b.audit_violations, 0);
  EXPECT_TRUE(b.audit_armed);

  // The periodic snapshots and the final one were written and readable.
  EXPECT_GE(stats.server.snapshots_written, 1);
  EXPECT_GE(read_snapshot_file(snap_path).next_slot, kSlots);
  std::remove(snap_path.c_str());
}

}  // namespace
}  // namespace postcard::server
