// postcard-lint-fixture: src/core/fixture_clock.cc
// Two wall-clock reads in a determinism-scoped file: exactly two
// postcard-determinism-clock findings.
#include <chrono>

double fixture_bad_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::system_clock::now();
  return static_cast<double>(t0.time_since_epoch().count()) +
         static_cast<double>(t1.time_since_epoch().count());
}
