// postcard-lint-fixture: src/server/fixture_wire_count.cc
// A resize() sized by a raw wire integer, then the same shape with the
// count routed through ByteReader::length(): exactly one
// postcard-wire-unchecked-count finding.
#include <vector>

#include "server/wire.h"

void fixture_bad_alloc(postcard::server::ByteReader& r,
                       std::vector<int>* out) {
  const unsigned count = r.u32();
  out->resize(count);
}

void fixture_good_alloc(postcard::server::ByteReader& r,
                        std::vector<int>* out) {
  const unsigned count = static_cast<unsigned>(r.length(4));
  out->resize(count);
}
