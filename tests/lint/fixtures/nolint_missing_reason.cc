// postcard-lint-fixture: src/core/fixture_nolint_reason.cc
// A NOLINT without ': <reason>' does NOT suppress: the clock finding
// stands AND the bare suppression is its own finding — one
// postcard-determinism-clock plus one postcard-nolint-missing-reason.
#include <chrono>

double fixture_unjustified() {
  // NOLINTNEXTLINE(postcard-determinism)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}
