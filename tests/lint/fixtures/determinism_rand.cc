// postcard-lint-fixture: src/sim/fixture_rand.cc
// Three nondeterministic random sources (default-constructed engine,
// random_device, rand()); the seeded engine below is clean. Exactly three
// postcard-determinism-rand findings.
#include <cstdlib>
#include <random>

int fixture_bad_draw() {
  std::mt19937_64 rng;
  std::random_device rd;
  return rand() + static_cast<int>(rng() % 7) + static_cast<int>(rd() % 7);
}

int fixture_seeded_ok(unsigned seed) {
  std::mt19937_64 rng(seed);
  return static_cast<int>(rng() % 7);
}
