// postcard-lint-fixture: src/net/fixture_pointer.cc
// Pointer values used as keys: an address-to-integer cast and a
// std::hash over a pointer type. Exactly two
// postcard-determinism-pointer-order findings.
#include <cstddef>
#include <cstdint>
#include <functional>

struct FixtureNode {
  int id = 0;
};

std::size_t fixture_bad_key(const FixtureNode* n) {
  return static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(n));
}

std::size_t fixture_bad_hash(FixtureNode* n) {
  return std::hash<FixtureNode*>{}(n);
}
