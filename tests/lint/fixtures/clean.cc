// postcard-lint-fixture: src/core/fixture_clean.cc
// Representative deterministic code: ordered containers, a seeded engine,
// membership-only unordered lookups, downward includes. Zero findings —
// the no-false-positive baseline.
#include <map>
#include <random>
#include <unordered_set>
#include <vector>

#include "base/mutex.h"

struct FixtureState {
  std::map<int, double> committed_;
  std::unordered_set<int> seen_;  // membership tests only, never iterated
};

double fixture_total(const FixtureState& s) {
  double total = 0.0;
  for (const auto& [id, v] : s.committed_) total += v + id;
  return total;
}

bool fixture_known(const FixtureState& s, int id) {
  return s.seen_.count(id) > 0;
}

std::vector<int> fixture_shuffled(std::vector<int> v, unsigned seed) {
  std::mt19937_64 rng(seed);
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1], v[rng() % i]);
  }
  return v;
}
