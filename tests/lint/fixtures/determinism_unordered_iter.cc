// postcard-lint-fixture: src/core/fixture_unordered.cc
// Hash-order iteration two ways (range-for, explicit begin()); the ordered
// std::map walk is clean. Exactly two postcard-determinism-unordered-iter
// findings.
#include <map>
#include <unordered_map>

struct FixtureLedger {
  std::unordered_map<int, double> open_;
  std::map<int, double> closed_;
};

double fixture_bad_sum(const FixtureLedger& l) {
  double s = 0.0;
  for (const auto& [id, v] : l.open_) s += v + id;
  for (auto it = l.open_.begin(); it != l.open_.end(); ++it) s += it->second;
  return s;
}

double fixture_good_sum(const FixtureLedger& l) {
  double s = 0.0;
  for (const auto& [id, v] : l.closed_) s += v + id;
  return s;
}
