// postcard-lint-fixture: src/server/fixture_wire_done.cc
// One ByteReader that never proves full consumption, one that does:
// exactly one postcard-wire-require-done finding. ByteReader& parameters
// are decode helpers whose caller owns the obligation and are not
// flagged.
#include "server/wire.h"

int fixture_bad_decode(const unsigned char* bytes, unsigned long n) {
  postcard::server::ByteReader r(bytes, n);
  return static_cast<int>(r.u32());
}

int fixture_good_decode(const unsigned char* bytes, unsigned long n) {
  postcard::server::ByteReader r(bytes, n);
  const int v = static_cast<int>(r.u32());
  r.require_done();
  return v;
}
