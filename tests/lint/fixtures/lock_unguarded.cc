// postcard-lint-fixture: src/runtime/fixture_lock.cc
// A class owning a base::Mutex writes one annotated and one unannotated
// field under the lock: exactly one postcard-lock-unguarded finding (for
// total_).
#include "base/mutex.h"
#include "base/thread_annotations.h"

class FixtureCounter {
 public:
  void bump(double v) {
    postcard::base::MutexLock lock(mu_);
    total_ += v;
    count_ += 1;
  }

 private:
  postcard::base::Mutex mu_;
  double total_ = 0.0;
  long count_ GUARDED_BY(mu_) = 0;
};
