// postcard-lint-fixture: src/lp/budget.h
// The single sanctioned wall-clock site: lp::SolveBudget's deadline
// plumbing. Zero findings despite the steady_clock reads.
#include <chrono>

struct FixtureSolveBudget {
  std::chrono::steady_clock::time_point deadline;
  bool expired() const { return std::chrono::steady_clock::now() >= deadline; }
};
