// postcard-lint-fixture: src/core/fixture_nolint_unknown.cc
// A NOLINT naming a rule that does not exist: exactly one
// postcard-nolint-unknown-rule finding.
int fixture_v() {
  int x = 0;  // NOLINT(postcard-made-up-rule: not a real rule)
  return x;
}
