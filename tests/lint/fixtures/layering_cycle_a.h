// postcard-lint-fixture: src/net/fixture_cycle_a.h
// Half of an include cycle (see layering_cycle_b.h); registered together
// they produce exactly one postcard-layering-cycle finding.
#include "net/fixture_cycle_b.h"

struct FixtureCycleA {
  int a = 0;
};
