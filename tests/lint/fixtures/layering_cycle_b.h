// postcard-lint-fixture: src/net/fixture_cycle_b.h
// Second half of the include cycle rooted at layering_cycle_a.h.
#include "net/fixture_cycle_a.h"

struct FixtureCycleB {
  int b = 0;
};
