// postcard-lint-fixture: src/lp/fixture_back_edge.cc
// src/lp (layer 2) reaching up into src/core (layer 3): exactly one
// postcard-layering-back-edge finding. The base include is a legal
// downward edge.
#include "core/plan.h"

#include "base/mutex.h"
