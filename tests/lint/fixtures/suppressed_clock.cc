// postcard-lint-fixture: src/core/fixture_suppressed.cc
// A justified NOLINTNEXTLINE fully suppresses the clock finding: zero
// findings, one suppression counted.
#include <chrono>

double fixture_waived() {
  // NOLINTNEXTLINE(postcard-determinism-clock: fixture demonstrating a justified waiver)
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}
