// postcard_lint's own test suite (ctest label `lint`):
//
//  * one fixture TU per rule with EXACT diagnostic counts — a rule that
//    fires twice, or on the clean counterpart inside the same fixture, is
//    a bug in the linter, not noise;
//  * the suppression discipline (justified NOLINT suppresses, bare NOLINT
//    and unknown rules are findings themselves);
//  * the zero-findings gate over the real tree: src/ at HEAD must lint
//    clean, so any new violation fails ctest even before the CI scripts
//    run the standalone binary.
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace postcard::lint {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

fs::path fixture_dir() { return fs::path(POSTCARD_LINT_FIXTURES); }

/// Lints one fixture file (scoped by its `// postcard-lint-fixture:`
/// header) and returns the result.
LintResult lint_fixture(const std::string& name) {
  const fs::path path = fixture_dir() / name;
  const std::string content = read_file(path);
  const auto vpath = fixture_virtual_path(content);
  EXPECT_TRUE(vpath.has_value()) << name << " lacks a fixture header";
  Linter linter;
  linter.add_file(name, *vpath, content);
  return linter.run();
}

std::map<std::string, int> histogram(const LintResult& r) {
  std::map<std::string, int> h;
  for (const Diagnostic& d : r.findings) h[d.rule] += 1;
  return h;
}

struct FixtureCase {
  const char* file;
  std::map<std::string, int> expected;  // rule -> exact count
  int suppressed = 0;
};

// The table IS the contract: every rule family has a firing fixture and
// shares its file with (or pairs with) a clean no-false-positive case.
const FixtureCase kCases[] = {
    {"determinism_clock.cc", {{"postcard-determinism-clock", 2}}, 0},
    {"determinism_clock_budget_exempt.cc", {}, 0},
    {"determinism_rand.cc", {{"postcard-determinism-rand", 3}}, 0},
    {"determinism_unordered_iter.cc",
     {{"postcard-determinism-unordered-iter", 2}},
     0},
    {"determinism_pointer_order.cc",
     {{"postcard-determinism-pointer-order", 2}},
     0},
    {"layering_back_edge.cc", {{"postcard-layering-back-edge", 1}}, 0},
    {"wire_require_done.cc", {{"postcard-wire-require-done", 1}}, 0},
    {"wire_unchecked_count.cc", {{"postcard-wire-unchecked-count", 1}}, 0},
    {"lock_unguarded.cc", {{"postcard-lock-unguarded", 1}}, 0},
    {"nolint_missing_reason.cc",
     {{"postcard-nolint-missing-reason", 1}, {"postcard-determinism-clock", 1}},
     0},
    {"nolint_unknown_rule.cc", {{"postcard-nolint-unknown-rule", 1}}, 0},
    {"suppressed_clock.cc", {}, 1},
    {"clean.cc", {}, 0},
};

TEST(LintFixtures, EachFixtureTriggersExactlyItsIntendedDiagnostics) {
  for (const FixtureCase& c : kCases) {
    const LintResult r = lint_fixture(c.file);
    EXPECT_EQ(histogram(r), c.expected) << c.file;
    EXPECT_EQ(r.suppressed, c.suppressed) << c.file;
  }
}

TEST(LintFixtures, IncludeCyclePairIsReportedOnce) {
  Linter linter;
  for (const char* name : {"layering_cycle_a.h", "layering_cycle_b.h"}) {
    const std::string content = read_file(fixture_dir() / name);
    const auto vpath = fixture_virtual_path(content);
    ASSERT_TRUE(vpath.has_value()) << name;
    linter.add_file(name, *vpath, content);
  }
  const LintResult r = linter.run();
  const std::map<std::string, int> expected = {{"postcard-layering-cycle", 1}};
  EXPECT_EQ(histogram(r), expected);
}

TEST(LintFixtures, SameLineNolintWithReasonSuppresses) {
  Linter linter;
  linter.add_file(
      "inline", "src/core/inline.cc",
      "#include <chrono>\n"
      "double t() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch()"
      ".count();  // NOLINT(postcard-determinism-clock: telemetry only)\n"
      "}\n");
  const LintResult r = linter.run();
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.suppressed, 1);
}

TEST(LintFixtures, FamilyTagCoversItsSubRules) {
  EXPECT_TRUE(Linter::tag_covers("postcard-determinism",
                                 "postcard-determinism-clock"));
  EXPECT_TRUE(Linter::tag_covers("postcard-wire",
                                 "postcard-wire-require-done"));
  EXPECT_TRUE(Linter::tag_covers("postcard-determinism-clock",
                                 "postcard-determinism-clock"));
  EXPECT_FALSE(Linter::tag_covers("postcard-determinism",
                                  "postcard-wire-require-done"));
  // Prefix must align on a '-' boundary, not mid-word.
  EXPECT_FALSE(Linter::tag_covers("postcard-det",
                                  "postcard-determinism-clock"));
}

TEST(LintFixtures, RuleListIsStable) {
  const std::vector<std::string> rules = Linter::rule_ids();
  EXPECT_EQ(rules.size(), 11u);
  for (const std::string& r : rules) {
    EXPECT_EQ(r.rfind("postcard-", 0), 0u) << r;
  }
}

// The gate the whole PR leans on: the real tree must be clean. Every
// finding printed below is either a bug to fix or a site that needs a
// justified NOLINT.
TEST(LintRealTree, SrcLintsCleanAtHead) {
  const fs::path root = fs::path(POSTCARD_SOURCE_ROOT);
  const fs::path src = root / "src";
  ASSERT_TRUE(fs::is_directory(src));
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_GT(paths.size(), 50u) << "tree walk found suspiciously few files";

  Linter linter;
  for (const fs::path& p : paths) {
    const std::string vpath =
        fs::absolute(p).lexically_normal().lexically_relative(
            fs::absolute(root).lexically_normal()).generic_string();
    linter.add_file(p.string(), vpath, read_file(p));
  }
  const LintResult r = linter.run();
  for (const Diagnostic& d : r.findings) {
    ADD_FAILURE() << d.file << ":" << d.line << " [" << d.rule << "] "
                  << d.message;
  }
  EXPECT_GT(r.suppressed, 0) << "the tree carries justified NOLINTs; zero "
                                "suppressions means they stopped parsing";
}

}  // namespace
}  // namespace postcard::lint
