// Replication codec round-trips, truncation safety, and the divergence
// fingerprint's contract: deterministic over committed state, sensitive to
// one ULP of cost-series drift, blind to wall-clock noise.
#include "replication/repl_protocol.h"

#include <gtest/gtest.h>

#include "audit/fingerprint.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::replication {
namespace {

TEST(ReplCodec, HelloRoundTrip) {
  ReplHello msg;
  msg.last_commit_slot = 41;
  const ReplHello back = ReplHello::decode(msg.encode());
  EXPECT_EQ(back.last_commit_slot, 41);
  EXPECT_EQ(ReplHello{}.decode(ReplHello{}.encode()).last_commit_slot, -1);
}

TEST(ReplCodec, SnapshotImageRoundTrip) {
  ReplSnapshot msg;
  for (int i = 0; i < 1000; ++i) {
    msg.image.push_back(static_cast<std::uint8_t>(i * 37));
  }
  const ReplSnapshot back = ReplSnapshot::decode(msg.encode());
  EXPECT_EQ(back.image, msg.image);
}

TEST(ReplCodec, EventsRoundTripAllPayloadKinds) {
  ReplEvents msg;
  net::FileRequest file;
  file.id = 7;
  file.source = 1;
  file.destination = 2;
  file.size = 55.5;
  file.max_transfer_slots = 3;
  file.release_slot = 4;
  msg.events.push_back({4, 10, runtime::FileArrival{file}});
  msg.events.push_back({5, 11, runtime::LinkDown{3}});
  msg.events.push_back({6, 12, runtime::LinkUp{3}});
  msg.events.push_back({7, 13, runtime::CapacityChange{2, 42.25}});
  msg.events.push_back({8, 14, runtime::SolverStall{-1, 100}});
  msg.events.push_back({9, 15, runtime::SolverFault{0, 2}});

  const ReplEvents back = ReplEvents::decode(msg.encode());
  ASSERT_EQ(back.events.size(), msg.events.size());
  EXPECT_EQ(back.events[0].slot, 4);
  EXPECT_EQ(back.events[0].seq, 10u);
  const auto& arrival = std::get<runtime::FileArrival>(back.events[0].payload);
  EXPECT_EQ(arrival.file.id, 7);
  EXPECT_EQ(arrival.file.size, 55.5);
  EXPECT_EQ(std::get<runtime::LinkDown>(back.events[1].payload).link, 3);
  EXPECT_EQ(std::get<runtime::CapacityChange>(back.events[3].payload).capacity,
            42.25);
  EXPECT_EQ(std::get<runtime::SolverStall>(back.events[4].payload).pivot_budget,
            100);
  EXPECT_EQ(std::get<runtime::SolverFault>(back.events[5].payload).disable_rungs,
            2);
}

TEST(ReplCodec, CommitAckHeartbeatReseedRoundTrip) {
  const ReplCommit commit = ReplCommit::decode(
      ReplCommit{12, 0xdeadbeefcafef00dULL}.encode());
  EXPECT_EQ(commit.slot, 12);
  EXPECT_EQ(commit.fingerprint, 0xdeadbeefcafef00dULL);

  const ReplAck ack = ReplAck::decode(ReplAck{12, 99}.encode());
  EXPECT_EQ(ack.slot, 12);
  EXPECT_EQ(ack.fingerprint, 99u);

  EXPECT_EQ(ReplHeartbeat::decode(ReplHeartbeat{7}.encode()).next_slot, 7);
  EXPECT_EQ(ReplReseed::decode(ReplReseed{"gap at slot 3"}.encode()).reason,
            "gap at slot 3");
}

TEST(ReplCodec, EveryTruncationThrows) {
  std::vector<std::vector<std::uint8_t>> payloads;
  payloads.push_back(ReplHello{3}.encode());
  {
    ReplSnapshot s;
    s.image = {1, 2, 3, 4, 5};
    payloads.push_back(s.encode());
  }
  {
    ReplEvents e;
    net::FileRequest f;
    f.id = 1;
    f.source = 0;
    f.destination = 1;
    f.size = 1.0;
    e.events.push_back({0, 0, runtime::FileArrival{f}});
    e.events.push_back({1, 1, runtime::LinkDown{0}});
    payloads.push_back(e.encode());
  }
  payloads.push_back(ReplCommit{1, 2}.encode());
  payloads.push_back(ReplReseed{"diverged"}.encode());

  int decoder = 0;
  const auto try_decode = [&](const std::vector<std::uint8_t>& p) {
    switch (decoder) {
      case 0: ReplHello::decode(p); break;
      case 1: ReplSnapshot::decode(p); break;
      case 2: ReplEvents::decode(p); break;
      case 3: ReplCommit::decode(p); break;
      case 4: ReplReseed::decode(p); break;
    }
  };
  for (const std::vector<std::uint8_t>& payload : payloads) {
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      std::vector<std::uint8_t> prefix(payload.begin(), payload.begin() + cut);
      EXPECT_THROW(try_decode(prefix), server::WireError)
          << "decoder " << decoder << " prefix " << cut;
    }
    EXPECT_NO_THROW(try_decode(payload)) << "decoder " << decoder;
    ++decoder;
  }
}

// --- Fingerprint contract -------------------------------------------------

runtime::RuntimeStats driven_stats(std::uint64_t seed, int slots) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = slots;
  p.seed = seed;
  const sim::UniformWorkload w(p);
  runtime::ControllerRuntime rt{net::Topology(w.topology()),
                                runtime::RuntimeOptions{}};
  rt.add_postcard_backend();
  for (int slot = 0; slot < slots; ++slot) {
    for (const net::FileRequest& f : w.batch(slot)) rt.ingress().submit(f);
    rt.tick();
  }
  return rt.stats();
}

TEST(Fingerprint, DeterministicAcrossIdenticalRuns) {
  const std::uint64_t a = runtime_fingerprint(driven_stats(77, 5));
  const std::uint64_t b = runtime_fingerprint(driven_stats(77, 5));
  EXPECT_EQ(a, b);
  // And different state digests differently.
  EXPECT_NE(a, runtime_fingerprint(driven_stats(78, 5)));
  EXPECT_NE(a, runtime_fingerprint(driven_stats(77, 4)));
}

TEST(Fingerprint, OneUlpOfCostDivergenceFlipsTheDigest) {
  runtime::RuntimeStats stats = driven_stats(79, 4);
  const std::uint64_t before = runtime_fingerprint(stats);
  ASSERT_FALSE(stats.backends.empty());
  ASSERT_FALSE(stats.backends[0].cost_series.empty());
  double& cost = stats.backends[0].cost_series.back();
  cost = std::nextafter(cost, cost + 1.0);
  EXPECT_NE(runtime_fingerprint(stats), before);
}

TEST(Fingerprint, CounterDivergenceFlipsTheDigest) {
  runtime::RuntimeStats stats = driven_stats(80, 4);
  const std::uint64_t before = runtime_fingerprint(stats);
  stats.backends[0].accepted_files++;
  EXPECT_NE(runtime_fingerprint(stats), before);
}

TEST(Fingerprint, WallClockAndIngressNoiseAreExcluded) {
  runtime::RuntimeStats stats = driven_stats(81, 4);
  const std::uint64_t before = runtime_fingerprint(stats);
  // Timing varies run to run even in deterministic mode; a digest that
  // hashed it would reseed on every commit.
  stats.backends[0].pricing_seconds += 1.5;
  stats.backends[0].master_seconds += 0.5;
  stats.backends[0].last_solver_status = "something else";
  // Submissions race the commit boundary on a live primary.
  stats.submitted += 10;
  stats.admitted += 10;
  stats.queue_depth += 3;
  EXPECT_EQ(runtime_fingerprint(stats), before);
}

TEST(Fnv1a, KnownVectorsAndStreamingEquivalence) {
  // FNV-1a 64 reference values.
  EXPECT_EQ(audit::fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  const std::uint8_t a = 'a';
  EXPECT_EQ(audit::fnv1a64(&a, 1), 0xaf63dc4c8601ec8cULL);

  audit::Fnv1a64 h;
  h.u32(0x12345678u);
  h.f64(2.5);
  h.str("postcard");
  audit::Fnv1a64 manual;
  manual.u8(0x78);
  manual.u8(0x56);
  manual.u8(0x34);
  manual.u8(0x12);
  // f64 hashes the little-endian bit pattern; 2.5 = 0x4004000000000000.
  const std::uint8_t bits[] = {0, 0, 0, 0, 0, 0, 0x04, 0x40};
  manual.bytes(bits, 8);
  manual.u32(8);  // str() prefixes its length
  const std::string s = "postcard";
  manual.bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  EXPECT_EQ(h.digest(), manual.digest());
}

}  // namespace
}  // namespace postcard::replication
