// Replication chaos: injected divergence must be caught within one slot
// commit and healed by a reseed; a stalled (non-draining) standby must be
// dropped without wedging the primary's slot clock; reconnects and
// standby turnover must reseed cleanly.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <chrono>
#include <memory>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

#include "replication/primary.h"
#include "replication/standby.h"
#include "repl_test_util.h"
#include "server/client.h"
#include "server/server.h"

namespace postcard::replication {
namespace {

using server::PostcardClient;
using server::PostcardServer;
using server::ServerOptions;

struct ReplicatedPair {
  std::unique_ptr<PostcardServer> server;
  std::unique_ptr<ReplicationPrimary> primary;

  explicit ReplicatedPair(const net::Topology& topology,
                          PrimaryOptions popts = {}) {
    ServerOptions options;
    options.runtime = replicated_runtime_options();
    server = std::make_unique<PostcardServer>(net::Topology(topology), options);
    server->add_postcard_backend();
    popts.heartbeat_every_ms = 50;
    primary = std::make_unique<ReplicationPrimary>(popts);
    primary->attach(*server);
    server->start();
    primary->start();
  }
  ~ReplicatedPair() {
    if (primary) primary->stop();
    if (server) {
      server->request_shutdown();
      server->wait();
    }
  }
};

TEST(ReplicationChaos, InjectedDivergenceIsCaughtWithinOneCommitAndReseeded) {
  const sim::UniformWorkload w(repl_workload(71));
  ReplicatedPair pair(w.topology());
  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(pair.primary->port()));
  standby.start();
  ASSERT_TRUE(wait_standby_connected(*pair.primary));

  PostcardClient client("127.0.0.1", pair.server->port());
  client.submit_batch(w.batch(0));
  client.advance(1);
  ASSERT_TRUE(standby.wait_for_commit(0, kWaitMs));
  const long clean_seeds = standby.stats().snapshots_applied;

  // Corrupt the next replicated arrival: the standby's replay of slot 1
  // MUST digest differently from the primary's commit fingerprint.
  standby.corrupt_next_event();
  client.submit_batch(w.batch(1));
  client.advance(1);

  // Detection happens at that very commit: the standby reports the
  // mismatch and asks for a reseed before any further slot passes.
  ASSERT_TRUE(poll_until([&] {
    const StandbyStats s = standby.stats();
    return s.fingerprint_mismatches >= 1 && s.reseeds_sent >= 1;
  })) << "divergence never detected";
  ASSERT_TRUE(poll_until([&] {
    return pair.primary->stats().reseeds_requested >= 1;
  })) << "reseed request never reached the primary";

  // Recovery: the NEXT slot commit ships a fresh snapshot, and the
  // reseeded mirror tracks the primary's fingerprints again.
  client.submit_batch(w.batch(2));
  client.advance(1);
  ASSERT_TRUE(poll_until([&] {
    return standby.stats().snapshots_applied > clean_seeds;
  })) << "standby was never reseeded";
  client.submit_batch(w.batch(3));
  client.advance(1);
  ASSERT_TRUE(standby.wait_for_commit(3, kWaitMs));
  const StandbyStats healed = standby.stats();
  EXPECT_EQ(healed.fingerprint_mismatches, 1);
  standby.stop();
}

TEST(ReplicationChaos, StalledStandbyIsDroppedSlowNotWedgingTheSlotClock) {
  const sim::UniformWorkload w(repl_workload(72));
  PrimaryOptions popts;
  popts.send_timeout_ms = 300;
  popts.sndbuf_bytes = 2048;  // tiny socket buffer: a non-reader fills it fast
  ReplicatedPair pair(w.topology(), popts);

  PostcardClient client("127.0.0.1", pair.server->port());
  // Pile up pending far-future arrivals so the seed snapshot outgrows the
  // combined socket buffering by a wide margin.
  std::vector<net::FileRequest> future;
  for (int i = 0; i < 4000; ++i) {
    net::FileRequest f;
    f.id = 10000 + i;
    f.source = i % 5;
    f.destination = (i + 1) % 5;
    f.size = 10.0 + (i % 50);
    f.max_transfer_slots = 3;
    f.release_slot = 40 + (i % 5);
    future.push_back(f);
  }
  client.submit_batch(future);

  // A "standby" that connects and then never reads a byte. Its receive
  // buffer is shrunk BEFORE connect (so the window is negotiated small):
  // unread data otherwise parks in the peer's default ~128 KB rcvbuf and
  // the sender never blocks at all.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 2048;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(pair.primary->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_TRUE(poll_until([&] { return pair.primary->standby_connected(); }));

  // The next commit tries to seed it; the bounded send deadline must trip
  // and DROP the stall instead of blocking the driver forever. advance()
  // returning at all is the no-wedge assertion.
  const auto t0 = std::chrono::steady_clock::now();
  client.advance(1);
  ASSERT_TRUE(poll_until([&] {
    return pair.primary->stats().standbys_dropped_slow >= 1;
  })) << "stalled standby was never dropped";
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);
  ::close(fd);

  // A real standby connecting afterwards gets seeded normally. Seeds
  // ship at slot commits only, so the connection must be up before the
  // final advance — otherwise the standby would wait for a commit that
  // never comes.
  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(pair.primary->port()));
  standby.start();
  ASSERT_TRUE(poll_until([&] { return pair.primary->standby_connected(); }));
  client.advance(1);
  ASSERT_TRUE(standby.wait_for_commit(1, kWaitMs));
  standby.stop();
}

TEST(ReplicationChaos, StandbyTurnoverReseedsEachNewFollower) {
  const sim::UniformWorkload w(repl_workload(73));
  ReplicatedPair pair(w.topology());
  PostcardClient client("127.0.0.1", pair.server->port());

  client.submit_batch(w.batch(0));
  client.advance(1);

  {
    ReplicationStandby first(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(pair.primary->port()));
    first.start();
    ASSERT_TRUE(wait_standby_connected(*pair.primary));
    client.submit_batch(w.batch(1));
    client.advance(1);
    ASSERT_TRUE(first.wait_for_commit(1, kWaitMs));
    first.stop();  // clean departure, not a failover
  }

  ReplicationStandby second(net::Topology(w.topology()),
                            {BackendSpec::make_postcard()},
                            test_standby_options(pair.primary->port()));
  second.start();
  ASSERT_TRUE(poll_until([&] { return pair.primary->standby_connected(); }));
  client.submit_batch(w.batch(2));
  client.advance(1);
  ASSERT_TRUE(second.wait_for_commit(2, kWaitMs));
  // Each follower got its own seed; the second one's arrived with the
  // first's state already folded in (snapshot, not replay-from-genesis).
  EXPECT_GE(pair.primary->stats().snapshots_shipped, 2);
  EXPECT_EQ(second.stats().fingerprint_mismatches, 0);
  second.stop();
}

TEST(ReplicationChaos, PartitionedStandbyReconnectsAndResumes) {
  const sim::UniformWorkload w(repl_workload(74));
  ReplicatedPair pair(w.topology());
  StandbyOptions sopts = test_standby_options(pair.primary->port());
  sopts.reconnect_attempts = 100;  // partition heals before attempts run out
  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()}, sopts);
  standby.start();
  ASSERT_TRUE(wait_standby_connected(*pair.primary));

  PostcardClient client("127.0.0.1", pair.server->port());
  client.submit_batch(w.batch(0));
  client.advance(1);
  ASSERT_TRUE(standby.wait_for_commit(0, kWaitMs));

  // Sever the link WITHOUT stopping either party: the primary keeps one
  // standby, so a second connection evicts the followed one — which sees
  // exactly what a network partition looks like (a hard EOF mid-stream)
  // and must reconnect and get reseeded on its own.
  ASSERT_TRUE(poll_until([&] { return pair.primary->standby_connected(); }));
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(pair.primary->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // The primary keeps ONE standby: the new connection evicts the old —
    // the followed standby experiences exactly a partition (hard EOF).
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  }

  // The real standby reconnects on its own, is reseeded, and resumes
  // acking commits.
  ASSERT_TRUE(poll_until([&] { return standby.stats().reconnects >= 1; }))
      << "standby never noticed the partition";
  client.submit_batch(w.batch(1));
  client.advance(1);
  client.submit_batch(w.batch(2));
  client.advance(1);
  ASSERT_TRUE(standby.wait_for_commit(2, kWaitMs));
  EXPECT_GE(standby.stats().snapshots_applied, 2);
  standby.stop();
}

}  // namespace
}  // namespace postcard::replication
