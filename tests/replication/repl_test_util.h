// Shared fixtures for the replication suite: the deterministic workload
// both the reference and the replicated runs replay, and the primary /
// standby wiring every test repeats.
#pragma once

#include <chrono>
#include <string>
#include <thread>

#include <unistd.h>

#include "replication/primary.h"
#include "replication/standby.h"
#include "sim/workload.h"

namespace postcard::replication {

inline sim::WorkloadParams repl_workload(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

/// Runtime options both sides of a replicated pair must share:
/// deterministic mode plus idempotent submissions.
inline runtime::RuntimeOptions replicated_runtime_options() {
  runtime::RuntimeOptions options;
  options.worker_threads = 0;
  options.parallel_groups = 1;
  options.dedup_submissions = true;
  return options;
}

/// Standby options tuned for tests: a short heartbeat window and few
/// reconnect attempts so failover completes in well under a second on an
/// unloaded machine, with sanitizer headroom left in the poll deadlines.
inline StandbyOptions test_standby_options(int primary_port) {
  StandbyOptions options;
  options.primary_port = primary_port;
  options.runtime = replicated_runtime_options();
  options.heartbeat_timeout_ms = 400;
  options.reconnect_attempts = 2;
  options.backoff_base_ms = 10;
  options.backoff_max_ms = 50;
  return options;
}

/// Generous deadline for poll-style waits: sanitizers stretch wall time.
inline constexpr int kWaitMs = 30000;

/// Polls `pred` until it holds or `timeout_ms` elapses.
template <typename Pred>
bool poll_until(Pred&& pred, int timeout_ms = kWaitMs) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Blocks until the primary has accepted a standby connection. Seeds ship
/// only at slot commits, so every test must ensure the follower is
/// CONNECTED before driving the slots it expects the follower to see —
/// otherwise, under load, the last commit can pass before the connect
/// and the standby waits forever for a seed that never ships.
inline bool wait_standby_connected(const ReplicationPrimary& primary,
                                   int timeout_ms = kWaitMs) {
  return poll_until([&] { return primary.standby_connected(); }, timeout_ms);
}

}  // namespace postcard::replication
