// Real-crash failover: the primary runs in a CHILD PROCESS and dies by
// actual SIGKILL mid-run — no destructors, no goodbye frames, no flushed
// buffers. The standby in the parent must detect the silence, promote,
// and finish the workload with the cost series an unfailed run produces.
//
// The child is this very binary re-executed with --repl-child (spawned
// via posix_spawn, not fork: TSAN does not support multithreaded fork
// without exec). This file therefore supplies its own main() and links
// plain gtest instead of gtest_main.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <spawn.h>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "replication/failover_client.h"
#include "replication/primary.h"
#include "replication/standby.h"
#include "repl_test_util.h"
#include "server/client.h"
#include "server/server.h"

extern char** environ;

namespace postcard::replication {
namespace {

constexpr std::uint64_t kCrashSeed = 91;

/// Child-process body: a replicated primary that parks until SIGKILLed.
/// Publishes "<server_port> <repl_port>" via atomic rename so the parent
/// never reads a torn file.
int repl_child_main(const char* ports_path) {
  const sim::UniformWorkload w(repl_workload(kCrashSeed));
  server::ServerOptions options;
  options.runtime = replicated_runtime_options();
  server::PostcardServer server{net::Topology(w.topology()), options};
  server.add_postcard_backend();
  PrimaryOptions popts;
  popts.heartbeat_every_ms = 50;
  ReplicationPrimary primary(popts);
  primary.attach(server);
  server.start();
  primary.start();

  const std::string tmp = std::string(ports_path) + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return 3;
  std::fprintf(f, "%d %d\n", server.port(), primary.port());
  std::fclose(f);
  if (std::rename(tmp.c_str(), ports_path) != 0) return 4;

  // Park. SIGKILL is the only way out the test uses; the time cap stops a
  // leak if the parent dies first.
  for (int i = 0; i < 1200; ++i) {
    ::usleep(100 * 1000);
  }
  return 5;  // parent never killed us: fail loudly
}

struct ChildPrimary {
  pid_t pid = -1;
  int server_port = 0;
  int repl_port = 0;

  explicit ChildPrimary(const std::string& ports_path) {
    std::remove(ports_path.c_str());
    const char* exe = "/proc/self/exe";
    char arg0[] = "/proc/self/exe";
    char arg1[] = "--repl-child";
    std::vector<char> arg2(ports_path.begin(), ports_path.end());
    arg2.push_back('\0');
    char* argv[] = {arg0, arg1, arg2.data(), nullptr};
    if (::posix_spawn(&pid, exe, nullptr, nullptr, argv, environ) != 0) {
      pid = -1;
      return;
    }
    // Wait for the port publication.
    for (int i = 0; i < kWaitMs / 10; ++i) {
      std::FILE* f = std::fopen(ports_path.c_str(), "r");
      if (f != nullptr) {
        const int got = std::fscanf(f, "%d %d", &server_port, &repl_port);
        std::fclose(f);
        if (got == 2) break;
      }
      ::usleep(10 * 1000);
    }
    std::remove(ports_path.c_str());
  }

  void kill_hard() {
    if (pid <= 0) return;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
  }

  ~ChildPrimary() { kill_hard(); }
};

TEST(ReplicationCrash, SigkilledPrimaryFailsOverBitForBit) {
  const sim::UniformWorkload w(repl_workload(kCrashSeed));
  const int kill_at = 4;

  // Reference: unfailed run, in-process.
  runtime::RuntimeStats ref_stats;
  {
    server::ServerOptions options;
    options.runtime = replicated_runtime_options();
    server::PostcardServer server{net::Topology(w.topology()), options};
    server.add_postcard_backend();
    server.start();
    server::PostcardClient client("127.0.0.1", server.port());
    for (int slot = 0; slot < w.num_slots(); ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
    client.shutdown();
    server.wait();
    ref_stats = server.stats();
  }

  const std::string ports_path = testing::TempDir() + "repl_crash_ports_" +
                                 std::to_string(::getpid());
  ChildPrimary child(ports_path);
  ASSERT_GT(child.pid, 0) << "posix_spawn failed";
  ASSERT_GT(child.server_port, 0) << "child never published its ports";
  ASSERT_GT(child.repl_port, 0);

  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(child.repl_port));
  standby.start();
  // Seeds ship at slot commits only: before driving any, make sure the
  // child primary has accepted the standby (its first heartbeat proves
  // it), or under load every commit could pass before the accept.
  ASSERT_TRUE(poll_until([&] { return standby.stats().heartbeats_seen >= 1; }))
      << "child primary never heartbeat the standby";

  {
    server::PostcardClient client("127.0.0.1", child.server_port);
    for (int slot = 0; slot < kill_at; ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
  }
  ASSERT_TRUE(standby.wait_for_commit(kill_at - 1, kWaitMs));

  // The real thing: SIGKILL, mid-slot, no warning.
  child.kill_hard();

  ASSERT_TRUE(standby.wait_promoted(kWaitMs))
      << "standby did not take over after SIGKILL";
  ASSERT_FALSE(standby.failed());

  FailoverClientOptions fopts;
  fopts.endpoints = {{"127.0.0.1", child.server_port},
                     {"127.0.0.1", standby.serve_port()}};
  fopts.io_timeout_ms = 2000;
  FailoverClient client(fopts);
  for (int slot = kill_at; slot < w.num_slots(); ++slot) {
    client.submit_batch(w.batch(slot));
    client.advance_to(slot + 1);
  }
  const runtime::RuntimeStats got_stats = client.query_stats();

  ASSERT_EQ(got_stats.backends.size(), ref_stats.backends.size());
  const runtime::BackendStats& ref = ref_stats.backends[0];
  const runtime::BackendStats& got = got_stats.backends[0];
  ASSERT_EQ(got.cost_series.size(), ref.cost_series.size());
  for (std::size_t i = 0; i < ref.cost_series.size(); ++i) {
    EXPECT_EQ(got.cost_series[i], ref.cost_series[i]) << "slot " << i;
  }
  EXPECT_TRUE(got.audit_armed);
  EXPECT_EQ(got.audit_violations, 0);
  EXPECT_EQ(got_stats.admitted, ref_stats.admitted);
  EXPECT_EQ(got.accepted_files, ref.accepted_files);
  EXPECT_EQ(got.rejected_files, ref.rejected_files);
  standby.stop();
}

}  // namespace

int run_child(const char* ports_path) { return repl_child_main(ports_path); }

}  // namespace postcard::replication

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--repl-child") == 0) {
    return postcard::replication::run_child(argv[2]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
