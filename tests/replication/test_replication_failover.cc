// Deterministic-mode failover: a primary killed abruptly mid-run hands
// over to its standby, and the survivor's remaining cost series is
// bit-for-bit identical to an unfailed run — plus exactly-once client
// resubmission across the failover and the standby's refusal to promote
// when it was never seeded.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "replication/failover_client.h"
#include "replication/primary.h"
#include "replication/standby.h"
#include "repl_test_util.h"
#include "server/client.h"
#include "server/server.h"

namespace postcard::replication {
namespace {

using server::PostcardClient;
using server::PostcardServer;
using server::ServerOptions;

TEST(ReplicationFailover, SurvivorReproducesTheUnfailedRunBitForBit) {
  const sim::UniformWorkload w(repl_workload(61));
  const int kill_at = 4;

  // Reference: the same workload on a single uninterrupted server.
  runtime::RuntimeStats ref_stats;
  {
    ServerOptions options;
    options.runtime = replicated_runtime_options();
    PostcardServer server{net::Topology(w.topology()), options};
    server.add_postcard_backend();
    server.start();
    PostcardClient client("127.0.0.1", server.port());
    for (int slot = 0; slot < w.num_slots(); ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
    client.shutdown();
    server.wait();
    ref_stats = server.stats();
  }

  // Replicated pair.
  ServerOptions options;
  options.runtime = replicated_runtime_options();
  auto primary_server = std::make_unique<PostcardServer>(
      net::Topology(w.topology()), options);
  primary_server->add_postcard_backend();
  PrimaryOptions popts;
  popts.heartbeat_every_ms = 50;
  ReplicationPrimary primary(popts);
  primary.attach(*primary_server);
  primary_server->start();
  primary.start();
  const int primary_port = primary_server->port();

  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(primary.port()));
  standby.start();
  ASSERT_TRUE(wait_standby_connected(primary));

  // Drive the first half against the primary; the standby follows.
  {
    PostcardClient client("127.0.0.1", primary_port);
    for (int slot = 0; slot < kill_at; ++slot) {
      client.submit_batch(w.batch(slot));
      client.advance(1);
    }
  }
  ASSERT_TRUE(standby.wait_for_commit(kill_at - 1, kWaitMs))
      << "standby never caught up to slot " << kill_at - 1;
  {
    const StandbyStats s = standby.stats();
    EXPECT_GE(s.snapshots_applied, 1);
    EXPECT_EQ(s.fingerprint_mismatches, 0);
  }
  EXPECT_GE(primary.stats().acks_received, 1);

  // SIGKILL-equivalent: the replication stream dies with no goodbye, then
  // the primary process "vanishes" (its port stops answering).
  primary.kill_abruptly();
  primary_server->request_shutdown();
  primary_server->wait();
  primary.stop();
  primary_server.reset();

  ASSERT_TRUE(standby.wait_promoted(kWaitMs)) << "standby did not promote";
  ASSERT_FALSE(standby.failed());
  ASSERT_GT(standby.serve_port(), 0);

  // The failover client starts at the DEAD primary endpoint and must
  // rotate to the survivor on its own.
  FailoverClientOptions fopts;
  fopts.endpoints = {{"127.0.0.1", primary_port},
                     {"127.0.0.1", standby.serve_port()}};
  fopts.io_timeout_ms = 2000;
  FailoverClient client(fopts);

  // Exactly-once across the failover: a submit whose reply the caller
  // never saw is retried verbatim and deduplicated, not double-counted.
  const net::FileRequest retried = w.batch(0).at(0);
  const server::SubmitVerdict verdict = client.submit_file(retried);
  EXPECT_TRUE(verdict.admitted);
  EXPECT_TRUE(verdict.duplicate);
  EXPECT_GE(client.failovers(), 1) << "client never rotated endpoints";

  // Finish the workload against the survivor.
  for (int slot = kill_at; slot < w.num_slots(); ++slot) {
    client.submit_batch(w.batch(slot));
    client.advance_to(slot + 1);
  }
  const runtime::RuntimeStats got_stats = client.query_stats();

  ASSERT_EQ(got_stats.backends.size(), ref_stats.backends.size());
  const runtime::BackendStats& ref = ref_stats.backends[0];
  const runtime::BackendStats& got = got_stats.backends[0];
  ASSERT_EQ(got.cost_series.size(), ref.cost_series.size());
  for (std::size_t i = 0; i < ref.cost_series.size(); ++i) {
    EXPECT_EQ(got.cost_series[i], ref.cost_series[i]) << "slot " << i;
  }
  // Fail-fast audits are re-armed on the survivor and found nothing.
  EXPECT_TRUE(got.audit_armed);
  EXPECT_EQ(got.audit_violations, 0);
  EXPECT_GT(got.audit_checks, 0);
  // Admission identity survives the failover: every admitted file was
  // decided exactly once (the retried duplicate added a submit, never an
  // admit).
  EXPECT_EQ(got_stats.admitted, ref_stats.admitted);
  EXPECT_EQ(got.accepted_files, ref.accepted_files);
  EXPECT_EQ(got.rejected_files, ref.rejected_files);
  EXPECT_EQ(got.failed_files, ref.failed_files);
  EXPECT_EQ(got.accepted_files + got.rejected_files,
            ref.accepted_files + ref.rejected_files);

  standby.stop();
}

TEST(ReplicationFailover, NeverSeededStandbyFailsInsteadOfPromoting) {
  // Point the standby at a port nobody listens on: it must exhaust its
  // reconnect attempts and fail LOUDLY — serving an empty runtime as if it
  // held the primary's state would be silent data loss.
  int dead_port;
  {
    ServerOptions opts;
    sim::UniformWorkload w(repl_workload(62));
    PostcardServer probe{net::Topology(w.topology()), opts};
    probe.add_postcard_backend();
    probe.start();
    dead_port = probe.port();
    probe.request_shutdown();
    probe.wait();
  }
  const sim::UniformWorkload w(repl_workload(62));
  ReplicationStandby standby(net::Topology(w.topology()),
                             {BackendSpec::make_postcard()},
                             test_standby_options(dead_port));
  standby.start();
  ASSERT_TRUE(standby.wait_failed(kWaitMs));
  EXPECT_FALSE(standby.promoted());
  EXPECT_EQ(standby.server(), nullptr);
  standby.stop();
}

TEST(ReplicationFailover, NonDeterministicMirrorOptionsAreRefused) {
  const sim::UniformWorkload w(repl_workload(63));
  StandbyOptions options = test_standby_options(1);
  options.runtime.worker_threads = 2;
  EXPECT_THROW(ReplicationStandby(net::Topology(w.topology()),
                                  {BackendSpec::make_postcard()},
                                  std::move(options)),
               std::invalid_argument);
  StandbyOptions groups = test_standby_options(1);
  groups.runtime.parallel_groups = 4;
  EXPECT_THROW(ReplicationStandby(net::Topology(w.topology()),
                                  {BackendSpec::make_postcard()},
                                  std::move(groups)),
               std::invalid_argument);
}

}  // namespace
}  // namespace postcard::replication
