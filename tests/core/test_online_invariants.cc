// System-level invariants of the online controllers, checked over whole
// simulated runs: physical capacity is never exceeded in any slot, the
// charge state is exactly the running per-slot maximum, committed plans are
// valid store-and-forward schedules, and accepted+rejected covers the batch.
#include <gtest/gtest.h>

#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/simulator.h"

namespace postcard {
namespace {

struct OnlineCase {
  double capacity;
  int max_deadline;
  std::uint64_t seed;
};

sim::WorkloadParams params_for(const OnlineCase& c) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = c.capacity;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 5.0;
  p.size_max = 40.0;
  p.deadline_min = 1;
  p.deadline_max = c.max_deadline;
  p.num_slots = 10;
  p.seed = c.seed;
  return p;
}

void check_capacity_and_charge(const sim::SchedulingPolicy& policy,
                               const net::Topology& topology) {
  const auto& cs = policy.charge_state();
  const auto& rec = cs.recorder();
  for (int l = 0; l < topology.num_links(); ++l) {
    double max_slot = 0.0;
    for (int s = 0; s < rec.num_slots() + 16; ++s) {
      const double v = cs.committed(l, s);
      EXPECT_LE(v, topology.link(l).capacity + 1e-5)
          << policy.name() << " overcommits link " << l << " in slot " << s;
      max_slot = std::max(max_slot, v);
    }
    EXPECT_NEAR(cs.charged(l), max_slot, 1e-6)
        << policy.name() << " charge state drifted on link " << l;
  }
}

class OnlineInvariantsTest : public ::testing::TestWithParam<OnlineCase> {};

TEST_P(OnlineInvariantsTest, PostcardRespectsCapacityAndCharge) {
  const sim::UniformWorkload w(params_for(GetParam()));
  core::PostcardController policy{net::Topology(w.topology())};
  sim::run_simulation(policy, w);
  check_capacity_and_charge(policy, w.topology());
}

TEST_P(OnlineInvariantsTest, FlowBaselineRespectsCapacityAndCharge) {
  const sim::UniformWorkload w(params_for(GetParam()));
  flow::FlowBaseline policy{net::Topology(w.topology())};
  sim::run_simulation(policy, w);
  check_capacity_and_charge(policy, w.topology());
}

TEST_P(OnlineInvariantsTest, PostcardPlansVerifySlotBySlot) {
  const sim::UniformWorkload w(params_for(GetParam()));
  core::PostcardController policy{net::Topology(w.topology())};
  for (int slot = 0; slot < w.num_slots(); ++slot) {
    const auto files = w.batch(slot);
    const auto outcome = policy.schedule(slot, files);
    // Accepted + rejected partition the batch.
    EXPECT_EQ(outcome.accepted_ids.size() + outcome.rejected_ids.size(),
              files.size());
    for (const core::FilePlan& plan : policy.last_plans()) {
      const auto it =
          std::find_if(files.begin(), files.end(), [&](const auto& f) {
            return f.id == plan.file_id;
          });
      ASSERT_NE(it, files.end());
      std::string err;
      EXPECT_TRUE(core::verify_plan(plan, *it, policy.topology(), 1e-4, &err))
          << "slot " << slot << " file " << plan.file_id << ": " << err;
    }
  }
}

TEST_P(OnlineInvariantsTest, CostSeriesMonotoneAndConsistent) {
  const sim::UniformWorkload w(params_for(GetParam()));
  core::PostcardController postcard{net::Topology(w.topology())};
  const sim::RunResult r = sim::run_simulation(postcard, w);
  for (std::size_t i = 1; i < r.cost_series.size(); ++i) {
    EXPECT_GE(r.cost_series[i], r.cost_series[i - 1] - 1e-9);
  }
  EXPECT_NEAR(r.final_cost_per_interval,
              postcard.charge_state().cost_per_interval(w.topology()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, OnlineInvariantsTest,
    ::testing::Values(OnlineCase{100.0, 3, 11}, OnlineCase{100.0, 8, 12},
                      OnlineCase{30.0, 3, 13}, OnlineCase{30.0, 8, 14},
                      OnlineCase{15.0, 5, 15}),
    [](const ::testing::TestParamInfo<OnlineCase>& info) {
      return "c" + std::to_string(static_cast<int>(info.param.capacity)) + "T" +
             std::to_string(info.param.max_deadline) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace postcard
