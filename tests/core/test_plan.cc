#include "core/plan.h"

#include <gtest/gtest.h>

namespace postcard::core {
namespace {

net::Topology line() {
  net::Topology t(3);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(1, 2, 10.0, 1.0);
  return t;
}

net::FileRequest file_0_to_2(double size, int deadline, int release = 0) {
  return {1, 0, 2, size, deadline, release};
}

TEST(PlanVerify, AcceptsDirectTwoHopPlan) {
  FilePlan plan;
  plan.file_id = 1;
  plan.transfers = {{0, 0, 1, 6.0, 0}, {1, 1, 2, 6.0, 1}};
  std::string err;
  EXPECT_TRUE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err)) << err;
}

TEST(PlanVerify, AcceptsStoreAndForwardPlan) {
  // Half goes immediately, half waits one slot at the source, then both
  // halves relay through D1 (the second hop is slots 1 and 2).
  FilePlan plan;
  plan.file_id = 1;
  plan.transfers = {{0, 0, 1, 3.0, 0}, {0, 0, 0, 3.0, -1}, {1, 0, 1, 3.0, 0},
                    {1, 1, 2, 3.0, 1}, {2, 1, 2, 3.0, 1}};
  std::string err;
  EXPECT_TRUE(verify_plan(plan, file_0_to_2(6.0, 3), line(), 1e-9, &err)) << err;
}

TEST(PlanVerify, RejectsLateDelivery) {
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 6.0, 0}, {2, 1, 2, 6.0, 1}};  // slot 2 > deadline
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
  EXPECT_FALSE(err.empty());
}

TEST(PlanVerify, RejectsVanishingVolume) {
  // Volume parked at D1 without a storage transfer silently disappears.
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 6.0, 0}, {1, 1, 2, 3.0, 1}, {2, 1, 2, 3.0, 1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 3), line(), 1e-9, &err));
  EXPECT_NE(err.find("forward or store"), std::string::npos) << err;
}

TEST(PlanVerify, RejectsConjuredVolume) {
  FilePlan plan;  // moves more than the node holds
  plan.transfers = {{0, 0, 1, 9.0, 0}, {1, 1, 2, 9.0, 1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
}

TEST(PlanVerify, RejectsNonexistentLink) {
  FilePlan plan;  // 0 -> 2 has no direct link in the line topology
  plan.transfers = {{0, 0, 2, 6.0, 5}, {1, 2, 2, 6.0, -1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
  EXPECT_NE(err.find("non-existent"), std::string::npos) << err;
}

TEST(PlanVerify, RejectsShortDelivery) {
  // Only 4 of 6 GB ever leave the source: flagged at the source (volume
  // neither forwarded nor stored), which implies short delivery.
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 4.0, 0}, {1, 1, 2, 4.0, 1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
  EXPECT_FALSE(err.empty());
}

TEST(PlanVerify, RejectsShortDeliveryWithExplicitSourceStorage) {
  // The missing 2 GB are "stored" at the source forever: every per-slot
  // invariant holds, so the final delivered-volume check must catch it.
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 4.0, 0}, {0, 0, 0, 2.0, -1}, {1, 0, 0, 2.0, -1},
                    {1, 1, 2, 4.0, 1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
  EXPECT_NE(err.find("delivered"), std::string::npos) << err;
}

TEST(PlanVerify, RejectsStrandedVolumeAtDeadline) {
  // Entire file forwarded to D1 and stored there past the deadline...
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 6.0, 0}, {1, 1, 1, 6.0, -1}};
  std::string err;
  EXPECT_FALSE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-9, &err));
}

TEST(PlanVerify, ToleranceAbsorbsLpNoise) {
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 6.0 + 1e-8, 0}, {1, 1, 2, 6.0 - 1e-8, 1}};
  std::string err;
  EXPECT_TRUE(verify_plan(plan, file_0_to_2(6.0, 2), line(), 1e-5, &err)) << err;
}

TEST(PlanVerify, ArrivingHelper) {
  FilePlan plan;
  plan.transfers = {{0, 0, 1, 4.0, 0}, {0, 0, 0, 2.0, -1}};
  EXPECT_DOUBLE_EQ(plan.arriving(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(plan.arriving(0, 0), 0.0);  // storage does not "arrive"
}

}  // namespace
}  // namespace postcard::core
