// Column generation must agree with the direct arc-flow formulation: both
// optimize over the same polytope (any DAG flow decomposes into path flows).
#include "core/column_generation.h"

#include <gtest/gtest.h>

#include <random>

#include "core/formulation.h"
#include "lp/solver.h"

namespace postcard::core {
namespace {

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

double direct_optimum(const net::Topology& t, const charging::ChargeState& charge,
                      int slot, const std::vector<net::FileRequest>& files,
                      bool allow_storage = true) {
  FormulationOptions fo;
  fo.allow_storage = allow_storage;
  TimeExpandedFormulation f(t, charge, slot, files, fo);
  const auto sol = lp::solve(f.model());
  EXPECT_EQ(sol.status, lp::SolveStatus::kOptimal);
  return sol.objective;
}

PathSolveOptions tight_options() {
  PathSolveOptions po;
  po.relative_gap = 1e-9;  // run to (near) exactness on these small cases
  po.stall_rounds = 200;
  return po;
}

TEST(ColumnGeneration, MatchesDirectFormulationOnFig1) {
  net::Topology t(3);
  t.set_link(1, 2, 1000.0, 10.0);
  t.set_link(1, 0, 1000.0, 1.0);
  t.set_link(0, 2, 1000.0, 3.0);
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {file(1, 1, 2, 6.0, 3, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 12.0, 1e-5);
  EXPECT_NEAR(r.objective, direct_optimum(t, charge, 0, batch), 1e-5);
}

TEST(ColumnGeneration, MatchesDirectFormulationOnRandomInstances) {
  std::mt19937 rng(404);
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> size(5.0, 30.0);
  std::uniform_int_distribution<int> deadline(1, 4);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 4 + trial % 3;
    auto t = net::Topology::complete(n, 40.0, [&](int, int) { return cost(rng); });
    charging::ChargeState charge(t.num_links());
    // Prior traffic so free-capacity reuse matters.
    charge.commit(0, 0, 15.0);
    charge.commit(1, 0, 10.0);
    std::vector<net::FileRequest> batch;
    const int num_files = 2 + trial % 3;
    for (int k = 0; k < num_files; ++k) {
      const int s = static_cast<int>(rng() % n);
      int d = static_cast<int>(rng() % n);
      if (d == s) d = (d + 1) % n;
      batch.push_back(file(k, s, d, size(rng), deadline(rng), 1));
    }
    const auto r = solve_postcard_by_paths(t, charge, 1, batch, tight_options());
    ASSERT_TRUE(r.ok) << "trial " << trial;
    ASSERT_TRUE(r.feasible) << "trial " << trial;
    const double direct = direct_optimum(t, charge, 1, batch);
    EXPECT_NEAR(r.objective, direct, 1e-4 * (1.0 + direct)) << "trial " << trial;
    EXPECT_GE(r.objective + 1e-6, r.lower_bound) << "trial " << trial;
  }
}

TEST(ColumnGeneration, PlansAreValidStoreAndForwardSchedules) {
  auto t = net::Topology::complete(5, 20.0, [](int i, int j) {
    return 1.0 + ((i * 5 + j) % 7);
  });
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {
      file(1, 0, 4, 30.0, 3, 2), file(2, 1, 3, 25.0, 2, 2),
      file(3, 2, 0, 18.0, 4, 2)};
  const auto r = solve_postcard_by_paths(t, charge, 2, batch, tight_options());
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.plans.size(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    std::string err;
    EXPECT_TRUE(verify_plan(r.plans[k], batch[k], t, 1e-5, &err))
        << "file " << k << ": " << err;
  }
}

TEST(ColumnGeneration, DetectsUnroutableFile) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  charging::ChargeState charge(t.num_links());
  // 100 GB with a 2-slot deadline over a 5 GB/slot link: at most 10 route.
  const std::vector<net::FileRequest> batch = {file(7, 0, 1, 100.0, 2, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.unrouted.size(), 1u);
  EXPECT_NEAR(r.unrouted[0], 90.0, 1e-4);
}

TEST(ColumnGeneration, NoStorageAblationMatchesDirect) {
  auto t = net::Topology::complete(4, 15.0, [](int i, int j) {
    return 2.0 + ((i + 2 * j) % 5);
  });
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {file(1, 0, 3, 20.0, 3, 0),
                                               file(2, 1, 2, 12.0, 2, 0)};
  PathSolveOptions po = tight_options();
  po.allow_storage = false;
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, po);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  const double direct = direct_optimum(t, charge, 0, batch, false);
  EXPECT_NEAR(r.objective, direct, 1e-4 * (1.0 + direct));
}

TEST(ColumnGeneration, RespectsCommittedCapacity) {
  net::Topology t(2);
  t.set_link(0, 1, 10.0, 1.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);  // slot 0 fully committed
  const std::vector<net::FileRequest> batch = {file(1, 0, 1, 10.0, 1, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.feasible);  // no residual capacity in the only usable slot
}

TEST(ColumnGeneration, EmptyBatch) {
  net::Topology t(2);
  t.set_link(0, 1, 10.0, 2.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 4.0);
  const auto r = solve_postcard_by_paths(t, charge, 1, {});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 8.0, 1e-9);
}

// ---- Cross-slot warm cache -------------------------------------------------

void commit_plans(charging::ChargeState& charge,
                  const std::vector<FilePlan>& plans) {
  for (const FilePlan& plan : plans) {
    for (const Transfer& t : plan.transfers) {
      if (!t.storage()) charge.commit(t.link, t.slot, t.volume);
    }
  }
}

std::vector<net::FileRequest> slot_batch(int slot) {
  return {file(slot * 10 + 1, 0, 3, 22.0 + slot, 3, slot),
          file(slot * 10 + 2, 1, 3, 14.0, 2, slot),
          file(slot * 10 + 3, 2, 3, 9.0 + 2 * slot, 3, slot)};
}

TEST(ColumnGeneration, CrossSlotCacheIsTrajectoryIdenticalToColdStart) {
  auto t = net::Topology::complete(4, 60.0, [](int i, int j) {
    return 1.0 + ((3 * i + j) % 6);
  });
  // Two parallel controller histories over 4 slots, one threading a
  // MasterWarmCache through, one always cold. The canonical remap must
  // leave every plan bit-for-bit identical while skipping phase 1.
  charging::ChargeState warm_charge(t.num_links());
  charging::ChargeState cold_charge(t.num_links());
  MasterWarmCache cache;
  PathSolveOptions cold_opts;
  cold_opts.cross_slot_warm = false;
  long warm_iterations = 0, cold_iterations = 0;
  for (int slot = 0; slot < 4; ++slot) {
    const auto batch = slot_batch(slot);
    const auto warm = solve_postcard_by_paths(t, warm_charge, slot, batch,
                                              PathSolveOptions{}, &cache);
    const auto cold =
        solve_postcard_by_paths(t, cold_charge, slot, batch, cold_opts);
    ASSERT_TRUE(warm.ok && warm.feasible) << "slot " << slot;
    ASSERT_TRUE(cold.ok && cold.feasible) << "slot " << slot;
    EXPECT_EQ(warm.warm_attempted, slot > 0) << "slot " << slot;
    EXPECT_EQ(warm.warm_accepted, slot > 0) << "slot " << slot;
    EXPECT_FALSE(cold.warm_attempted);
    EXPECT_EQ(warm.objective, cold.objective) << "slot " << slot;
    ASSERT_EQ(warm.plans.size(), cold.plans.size()) << "slot " << slot;
    for (std::size_t k = 0; k < warm.plans.size(); ++k) {
      ASSERT_EQ(warm.plans[k].transfers.size(), cold.plans[k].transfers.size());
      for (std::size_t i = 0; i < warm.plans[k].transfers.size(); ++i) {
        const Transfer& a = warm.plans[k].transfers[i];
        const Transfer& b = cold.plans[k].transfers[i];
        EXPECT_EQ(a.slot, b.slot);
        EXPECT_EQ(a.link, b.link);
        EXPECT_EQ(a.volume, b.volume) << "slot " << slot << " file " << k;
      }
    }
    warm_iterations += warm.lp_iterations;
    cold_iterations += cold.lp_iterations;
    commit_plans(warm_charge, warm.plans);
    commit_plans(cold_charge, cold.plans);
  }
  EXPECT_TRUE(cache.valid);
  EXPECT_EQ(cache.captured_solves, 4);
  // Identical pivots minus phase 1: strictly less total work.
  EXPECT_LT(warm_iterations, cold_iterations);
}

TEST(ColumnGeneration, CarryBasisModeReachesTheSameOptimum) {
  // carry_basis restores surviving row states instead of the canonical
  // basis: on degenerate masters it may pick a different optimal vertex,
  // so the contract is objective equality, not plan equality.
  auto t = net::Topology::complete(4, 50.0, [](int i, int j) {
    return 2.0 + ((i + 2 * j) % 5);
  });
  charging::ChargeState carry_charge(t.num_links());
  charging::ChargeState cold_charge(t.num_links());
  MasterWarmCache cache;
  PathSolveOptions carry_opts = tight_options();
  carry_opts.carry_basis = true;
  PathSolveOptions cold_opts = tight_options();
  cold_opts.cross_slot_warm = false;
  for (int slot = 0; slot < 4; ++slot) {
    const auto batch = slot_batch(slot);
    const auto carry = solve_postcard_by_paths(t, carry_charge, slot, batch,
                                               carry_opts, &cache);
    const auto cold =
        solve_postcard_by_paths(t, cold_charge, slot, batch, cold_opts);
    ASSERT_TRUE(carry.ok && carry.feasible) << "slot " << slot;
    ASSERT_TRUE(cold.ok && cold.feasible) << "slot " << slot;
    EXPECT_NEAR(carry.objective, cold.objective,
                1e-5 * (1.0 + cold.objective))
        << "slot " << slot;
    // Histories must stay comparable for the next slot's assertion: commit
    // the *cold* plans into both charge states.
    commit_plans(carry_charge, cold.plans);
    commit_plans(cold_charge, cold.plans);
  }
}

TEST(ColumnGeneration, StaleCacheAfterTopologyChangeStillSolvesCorrectly) {
  // A capacity change between slots makes the cached basis stale (its
  // implied point may violate the new capacities). The solver verifies and
  // falls back silently; the result must match a cold solve exactly.
  net::Topology t(3);
  t.set_link(0, 1, 40.0, 1.0);
  t.set_link(1, 2, 40.0, 2.0);
  t.set_link(0, 2, 40.0, 6.0);
  charging::ChargeState charge(t.num_links());
  MasterWarmCache cache;
  const auto first = solve_postcard_by_paths(
      t, charge, 0, {file(1, 0, 2, 35.0, 2, 0)}, PathSolveOptions{}, &cache);
  ASSERT_TRUE(first.ok && first.feasible);
  ASSERT_TRUE(cache.valid);
  commit_plans(charge, first.plans);

  t.set_capacity(1, 5.0);  // link 1 -> 2 nearly gone
  const auto batch = std::vector<net::FileRequest>{file(2, 0, 2, 20.0, 2, 1)};
  const auto warm =
      solve_postcard_by_paths(t, charge, 1, batch, PathSolveOptions{}, &cache);
  PathSolveOptions cold_opts;
  cold_opts.cross_slot_warm = false;
  const auto cold = solve_postcard_by_paths(t, charge, 1, batch, cold_opts);
  ASSERT_TRUE(warm.ok);
  ASSERT_TRUE(cold.ok);
  EXPECT_EQ(warm.feasible, cold.feasible);
  EXPECT_EQ(warm.objective, cold.objective);
}

}  // namespace
}  // namespace postcard::core
