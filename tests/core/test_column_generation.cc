// Column generation must agree with the direct arc-flow formulation: both
// optimize over the same polytope (any DAG flow decomposes into path flows).
#include "core/column_generation.h"

#include <gtest/gtest.h>

#include <random>

#include "core/formulation.h"
#include "lp/solver.h"

namespace postcard::core {
namespace {

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

double direct_optimum(const net::Topology& t, const charging::ChargeState& charge,
                      int slot, const std::vector<net::FileRequest>& files,
                      bool allow_storage = true) {
  FormulationOptions fo;
  fo.allow_storage = allow_storage;
  TimeExpandedFormulation f(t, charge, slot, files, fo);
  const auto sol = lp::solve(f.model());
  EXPECT_EQ(sol.status, lp::SolveStatus::kOptimal);
  return sol.objective;
}

PathSolveOptions tight_options() {
  PathSolveOptions po;
  po.relative_gap = 1e-9;  // run to (near) exactness on these small cases
  po.stall_rounds = 200;
  return po;
}

TEST(ColumnGeneration, MatchesDirectFormulationOnFig1) {
  net::Topology t(3);
  t.set_link(1, 2, 1000.0, 10.0);
  t.set_link(1, 0, 1000.0, 1.0);
  t.set_link(0, 2, 1000.0, 3.0);
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {file(1, 1, 2, 6.0, 3, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 12.0, 1e-5);
  EXPECT_NEAR(r.objective, direct_optimum(t, charge, 0, batch), 1e-5);
}

TEST(ColumnGeneration, MatchesDirectFormulationOnRandomInstances) {
  std::mt19937 rng(404);
  std::uniform_real_distribution<double> cost(1.0, 10.0);
  std::uniform_real_distribution<double> size(5.0, 30.0);
  std::uniform_int_distribution<int> deadline(1, 4);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = 4 + trial % 3;
    auto t = net::Topology::complete(n, 40.0, [&](int, int) { return cost(rng); });
    charging::ChargeState charge(t.num_links());
    // Prior traffic so free-capacity reuse matters.
    charge.commit(0, 0, 15.0);
    charge.commit(1, 0, 10.0);
    std::vector<net::FileRequest> batch;
    const int num_files = 2 + trial % 3;
    for (int k = 0; k < num_files; ++k) {
      const int s = static_cast<int>(rng() % n);
      int d = static_cast<int>(rng() % n);
      if (d == s) d = (d + 1) % n;
      batch.push_back(file(k, s, d, size(rng), deadline(rng), 1));
    }
    const auto r = solve_postcard_by_paths(t, charge, 1, batch, tight_options());
    ASSERT_TRUE(r.ok) << "trial " << trial;
    ASSERT_TRUE(r.feasible) << "trial " << trial;
    const double direct = direct_optimum(t, charge, 1, batch);
    EXPECT_NEAR(r.objective, direct, 1e-4 * (1.0 + direct)) << "trial " << trial;
    EXPECT_GE(r.objective + 1e-6, r.lower_bound) << "trial " << trial;
  }
}

TEST(ColumnGeneration, PlansAreValidStoreAndForwardSchedules) {
  auto t = net::Topology::complete(5, 20.0, [](int i, int j) {
    return 1.0 + ((i * 5 + j) % 7);
  });
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {
      file(1, 0, 4, 30.0, 3, 2), file(2, 1, 3, 25.0, 2, 2),
      file(3, 2, 0, 18.0, 4, 2)};
  const auto r = solve_postcard_by_paths(t, charge, 2, batch, tight_options());
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.plans.size(), batch.size());
  for (std::size_t k = 0; k < batch.size(); ++k) {
    std::string err;
    EXPECT_TRUE(verify_plan(r.plans[k], batch[k], t, 1e-5, &err))
        << "file " << k << ": " << err;
  }
}

TEST(ColumnGeneration, DetectsUnroutableFile) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  charging::ChargeState charge(t.num_links());
  // 100 GB with a 2-slot deadline over a 5 GB/slot link: at most 10 route.
  const std::vector<net::FileRequest> batch = {file(7, 0, 1, 100.0, 2, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.feasible);
  ASSERT_EQ(r.unrouted.size(), 1u);
  EXPECT_NEAR(r.unrouted[0], 90.0, 1e-4);
}

TEST(ColumnGeneration, NoStorageAblationMatchesDirect) {
  auto t = net::Topology::complete(4, 15.0, [](int i, int j) {
    return 2.0 + ((i + 2 * j) % 5);
  });
  charging::ChargeState charge(t.num_links());
  const std::vector<net::FileRequest> batch = {file(1, 0, 3, 20.0, 3, 0),
                                               file(2, 1, 2, 12.0, 2, 0)};
  PathSolveOptions po = tight_options();
  po.allow_storage = false;
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, po);
  ASSERT_TRUE(r.ok);
  ASSERT_TRUE(r.feasible);
  const double direct = direct_optimum(t, charge, 0, batch, false);
  EXPECT_NEAR(r.objective, direct, 1e-4 * (1.0 + direct));
}

TEST(ColumnGeneration, RespectsCommittedCapacity) {
  net::Topology t(2);
  t.set_link(0, 1, 10.0, 1.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);  // slot 0 fully committed
  const std::vector<net::FileRequest> batch = {file(1, 0, 1, 10.0, 1, 0)};
  const auto r = solve_postcard_by_paths(t, charge, 0, batch, tight_options());
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.feasible);  // no residual capacity in the only usable slot
}

TEST(ColumnGeneration, EmptyBatch) {
  net::Topology t(2);
  t.set_link(0, 1, 10.0, 2.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 4.0);
  const auto r = solve_postcard_by_paths(t, charge, 1, {});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.feasible);
  EXPECT_NEAR(r.objective, 8.0, 1e-9);
}

}  // namespace
}  // namespace postcard::core
