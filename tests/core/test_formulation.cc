// Unit tests for the time-expanded LP construction (eqs. 6-10): variable
// layout, the structural deadline constraint, residual capacities, and the
// charge epigraph against prior state.
#include "core/formulation.h"

#include <gtest/gtest.h>

#include "lp/solver.h"

namespace postcard::core {
namespace {

net::Topology line3() {
  net::Topology t(3);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(1, 2, 10.0, 2.0);
  return t;
}

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

TEST(Formulation, DeadlineConstraintPrunesVariables) {
  charging::ChargeState charge(2);
  // Two files with deadlines 1 and 3: the horizon is 3 layers, but file 0
  // may only use layer-0 arcs (constraint 10 as structure, not rows).
  TimeExpandedFormulation f(line3(), charge, 0,
                            {file(1, 0, 1, 5.0, 1, 0), file(2, 0, 2, 5.0, 3, 0)},
                            {});
  EXPECT_EQ(f.graph().horizon(), 3);
  for (int a = 0; a < f.graph().num_arcs(); ++a) {
    const net::TimeArc& arc = f.graph().arcs()[a];
    if (arc.layer >= 1) {
      EXPECT_EQ(f.flow_var(0, a), -1) << "file 0 got a var beyond its deadline";
    }
    EXPECT_GE(f.flow_var(1, a), 0) << "file 1 must span the whole horizon";
  }
}

TEST(Formulation, ResidualCapacityReflectsCommitments) {
  charging::ChargeState charge(2);
  charge.commit(0, 0, 6.0);  // 6 of 10 GB already committed on link 0, slot 0
  TimeExpandedFormulation f(line3(), charge, 0, {file(1, 0, 2, 3.0, 2, 0)}, {});
  for (const net::TimeArc& arc : f.graph().arcs()) {
    if (arc.storage()) continue;
    if (arc.link_index == 0 && arc.layer == 0) {
      EXPECT_DOUBLE_EQ(arc.capacity, 4.0);
    } else {
      EXPECT_DOUBLE_EQ(arc.capacity, 10.0);
    }
  }
}

TEST(Formulation, ChargeVariablesStartAtPriorCharge) {
  charging::ChargeState charge(2);
  charge.commit(1, 0, 7.5);  // X of link 1 is 7.5 before this batch
  TimeExpandedFormulation f(line3(), charge, 1, {file(1, 0, 2, 2.0, 2, 1)}, {});
  const auto& m = f.model();
  EXPECT_DOUBLE_EQ(m.col_lower()[f.charge_var(0)], 0.0);
  EXPECT_DOUBLE_EQ(m.col_lower()[f.charge_var(1)], 7.5);
  // Objective prices each X with its link's unit cost.
  EXPECT_DOUBLE_EQ(m.objective()[f.charge_var(0)], 1.0);
  EXPECT_DOUBLE_EQ(m.objective()[f.charge_var(1)], 2.0);
}

TEST(Formulation, SolvedObjectiveIncludesPriorChargeAsConstant) {
  // An empty-ish batch on top of existing charges: optimum == prior cost.
  charging::ChargeState charge(2);
  charge.commit(0, 0, 4.0);  // cost 4 * 1
  charge.commit(1, 0, 3.0);  // cost 3 * 2
  // A tiny file whose whole route fits under the paid headroom at slot >= 1.
  TimeExpandedFormulation f(line3(), charge, 1, {file(1, 0, 2, 3.0, 2, 1)}, {});
  const auto sol = lp::solve(f.model());
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 4.0 + 6.0, 1e-7);  // no new charge needed
}

TEST(Formulation, RejectsMismatchedReleaseSlot) {
  charging::ChargeState charge(2);
  EXPECT_THROW(TimeExpandedFormulation(line3(), charge, 0,
                                       {file(1, 0, 2, 1.0, 2, 3)}, {}),
               std::invalid_argument);
}

TEST(Formulation, RejectsEmptyBatch) {
  charging::ChargeState charge(2);
  EXPECT_THROW(TimeExpandedFormulation(line3(), charge, 0, {}, {}),
               std::invalid_argument);
}

TEST(Formulation, StorageCapAddsRows) {
  charging::ChargeState charge(2);
  FormulationOptions capped;
  capped.storage_capacity = 5.0;
  TimeExpandedFormulation f(line3(), charge, 0, {file(1, 0, 2, 8.0, 3, 0)},
                            capped);
  // 8 GB flowing 0->1->2 within 3 slots: every holdover (including the
  // destination accumulating early arrivals) is capped at 5 GB per slot.
  const auto sol = lp::solve(f.model());
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  for (const FilePlan& plan : f.extract_plans(sol)) {
    for (const Transfer& t : plan.transfers) {
      if (t.storage()) {
        EXPECT_LE(t.volume, 5.0 + 1e-7);
      }
    }
  }
}

TEST(Formulation, StorageCapCanMakeInstancesInfeasible) {
  // Same instance with cap 2: the destination cannot buffer early arrivals
  // and no schedule exists (hand argument: at most 2 GB may arrive before
  // the deadline layer and node 1 cannot hold the rest).
  charging::ChargeState charge(2);
  FormulationOptions capped;
  capped.storage_capacity = 2.0;
  TimeExpandedFormulation f(line3(), charge, 0, {file(1, 0, 2, 8.0, 3, 0)},
                            capped);
  EXPECT_EQ(lp::solve(f.model()).status, lp::SolveStatus::kInfeasible);
}

TEST(Formulation, ElasticModeDeliversWhatFits) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  charging::ChargeState charge(1);
  FormulationOptions elastic;
  elastic.elastic_demand = true;
  TimeExpandedFormulation f(t, charge, 0, {file(1, 0, 1, 30.0, 2, 0)}, elastic);
  const auto sol = lp::solve(f.model());
  ASSERT_EQ(sol.status, lp::SolveStatus::kOptimal);
  // 2 slots x 5 GB move at most 10 of the 30 GB.
  EXPECT_LE(f.delivered(sol, 0), 10.0 + 1e-7);
}

TEST(Formulation, PruneUnreachableDropsVariablesKeepsOptimum) {
  // On the directed line 0->1->2 a file 0->2 with deadline 3 provably
  // cannot use, e.g., link 1->2 at layer 0 (node 1 is 1 hop away) or any
  // arc out of node 2's copies before the final layers. Pruning those M^k
  // variables must shrink the model without moving the optimum.
  const std::vector<net::FileRequest> batch = {file(1, 0, 2, 8.0, 3, 0)};
  charging::ChargeState charge_a(2);
  TimeExpandedFormulation full(line3(), charge_a, 0, batch, {});
  FormulationOptions opts;
  opts.prune_unreachable = true;
  charging::ChargeState charge_b(2);
  TimeExpandedFormulation pruned(line3(), charge_b, 0, batch, opts);

  int full_vars = 0;
  int pruned_vars = 0;
  for (int a = 0; a < full.graph().num_arcs(); ++a) {
    full_vars += full.flow_var(0, a) >= 0 ? 1 : 0;
    pruned_vars += pruned.flow_var(0, a) >= 0 ? 1 : 0;
  }
  EXPECT_LT(pruned_vars, full_vars);
  EXPECT_GT(pruned_vars, 0);

  const auto sol_full = lp::solve(full.model());
  const auto sol_pruned = lp::solve(pruned.model());
  ASSERT_EQ(sol_full.status, lp::SolveStatus::kOptimal);
  ASSERT_EQ(sol_pruned.status, lp::SolveStatus::kOptimal);
  // The charge epigraph prices the per-slot MAX: each link can spread its
  // 8 GB over its two usable layers, so X = 4 on both links and the
  // optimum is 4*1 + 4*2 = 12 — with or without pruning.
  EXPECT_NEAR(sol_pruned.objective, sol_full.objective, 1e-7);
  EXPECT_NEAR(sol_pruned.objective, 12.0, 1e-7);
}

}  // namespace
}  // namespace postcard::core
