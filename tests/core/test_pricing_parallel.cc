// Parallel pricing determinism: sharding the per-file pricing DP across a
// worker pool must reproduce the serial sweep bit for bit — same cost
// series, same per-slot simplex iteration counts, same admissions — at any
// thread count. The merge is file-index-ordered and shards write disjoint
// slots, so the only way this fails is a real data race or a
// non-deterministic merge; running it under TSAN (ctest -L scale on the
// tsan preset) checks exactly that.
//
// Two shapes: the paper's Fig. 4 shape (small — below the sharding
// work gate, pinning that the gate itself cannot change results) and a
// fat_tree(6) at 180 arrivals/slot, which clears the gate so the pool
// genuinely runs.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/postcard.h"
#include "net/generators.h"
#include "sim/workload.h"

namespace postcard::core {
namespace {

struct SlotTrace {
  std::vector<double> cost;       // cost_per_interval after each slot
  std::vector<long> iterations;   // lp_iterations per slot
  std::vector<std::size_t> accepted;
};

SlotTrace run(const sim::WorkloadGenerator& workload, PostcardOptions options,
              int slots) {
  PostcardController controller{net::Topology(workload.topology()), options};
  SlotTrace t;
  for (int s = 0; s < slots; ++s) {
    const auto outcome = controller.schedule(s, workload.batch(s));
    t.cost.push_back(controller.cost_per_interval());
    t.iterations.push_back(outcome.lp_iterations);
    t.accepted.push_back(outcome.accepted_ids.size());
  }
  return t;
}

void expect_identical(const SlotTrace& serial, const SlotTrace& parallel) {
  ASSERT_EQ(serial.cost.size(), parallel.cost.size());
  for (std::size_t s = 0; s < serial.cost.size(); ++s) {
    // Bit-for-bit: the deterministic-replay contract, not a tolerance.
    EXPECT_EQ(serial.cost[s], parallel.cost[s]) << "slot " << s;
    EXPECT_EQ(serial.iterations[s], parallel.iterations[s]) << "slot " << s;
    EXPECT_EQ(serial.accepted[s], parallel.accepted[s]) << "slot " << s;
  }
}

TEST(ParallelPricing, Fig4ShapeMatchesSerialExactly) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 400.0;
  p.files_per_slot_min = 8;
  p.files_per_slot_max = 20;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = 17;
  sim::UniformWorkload w(p);

  PostcardOptions serial;
  PostcardOptions parallel = serial;
  parallel.pricing_threads = 4;
  expect_identical(run(w, serial, p.num_slots),
                   run(w, parallel, p.num_slots));
}

TEST(ParallelPricing, FatTree6AboveWorkGateMatchesSerialExactly) {
  sim::WorkloadParams p;
  p.link_capacity = 100.0;
  p.files_per_slot_min = 180;  // 180 files x ~1.5k arcs clears the gate
  p.files_per_slot_max = 180;
  p.size_min = 10.0;
  p.size_max = 50.0;
  p.deadline_min = 4;  // Fat-Tree diameter
  p.deadline_max = 6;
  p.num_slots = 2;
  p.seed = 11;
  sim::TopologyWorkload w(
      net::fat_tree(6, p.link_capacity,
                    [](int a, int b) {
                      return 1.0 + ((a * 131 + b * 17) % 90) / 10.0;
                    }),
      p);

  // The solver hot-path configuration: factorization reuse and dual warm
  // starts on, so the resumed masters consume the parallel merge too.
  PostcardOptions serial;
  serial.cg_reuse_factorization = true;
  serial.cg_dual_warm = true;
  PostcardOptions parallel = serial;
  parallel.pricing_threads = 4;
  expect_identical(run(w, serial, p.num_slots),
                   run(w, parallel, p.num_slots));
}

TEST(ParallelPricing, ThreadCountsAgreeAmongThemselves) {
  // 2 and 8 shards chunk the file range differently; both must match.
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 400.0;
  p.files_per_slot_min = 8;
  p.files_per_slot_max = 20;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 4;
  p.seed = 23;
  sim::UniformWorkload w(p);
  PostcardOptions two;
  two.pricing_threads = 2;
  PostcardOptions eight;
  eight.pricing_threads = 8;
  expect_identical(run(w, two, p.num_slots), run(w, eight, p.num_slots));
}

}  // namespace
}  // namespace postcard::core
