// Sec. VI extensions: bulk backhaul over already-paid capacity and
// budget-constrained transfer maximization.
#include "core/extensions.h"

#include <gtest/gtest.h>

namespace postcard::core {
namespace {

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

net::Topology pair_topology(double capacity, double price) {
  net::Topology t(2);
  t.set_link(0, 1, capacity, price);
  return t;
}

TEST(BulkTransfer, NothingMovesOnUnpaidLinks) {
  const auto t = pair_topology(100.0, 2.0);
  charging::ChargeState charge(t.num_links());  // X = 0 everywhere
  const auto r = maximize_bulk_transfer(t, charge, 0,
                                        {file(1, 0, 1, 50.0, 3, 0)});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.delivered_total, 0.0, 1e-7);
  EXPECT_NEAR(r.cost_per_interval, 0.0, 1e-9);
}

TEST(BulkTransfer, UsesPaidHeadroomAcrossSlots) {
  const auto t = pair_topology(100.0, 2.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 20.0);  // X = 20 paid; slots 0.. all have headroom 20
  // 3-slot deadline, slot 0 already carries 20 -> free headroom 0 there,
  // slots 1 and 2 offer 20 each: deliver up to 40 of the 50 GB.
  const auto r = maximize_bulk_transfer(t, charge, 0,
                                        {file(1, 0, 1, 50.0, 3, 0)});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.delivered_total, 40.0, 1e-6);
  // Bulk mode never raises the charge.
  EXPECT_NEAR(r.cost_per_interval, charge.cost_per_interval(t), 1e-9);
}

TEST(BulkTransfer, CapacityStillBinds) {
  const auto t = pair_topology(10.0, 1.0);  // physical capacity 10
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);
  // Headroom is 10 in slot 1 but the file wants 30 within one extra slot.
  const auto r = maximize_bulk_transfer(t, charge, 1,
                                        {file(1, 0, 1, 30.0, 1, 1)});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.delivered_total, 10.0, 1e-6);
}

TEST(BulkTransfer, MultipleFilesShareHeadroomByTotalVolume) {
  // Two files with different deadlines compete for the same paid headroom;
  // the maximizer fills every free slot regardless of the split.
  const auto t = pair_topology(100.0, 1.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);
  const auto r = maximize_bulk_transfer(
      t, charge, 1,
      {file(1, 0, 1, 100.0, 2, 1), file(2, 0, 1, 100.0, 4, 1)});
  ASSERT_TRUE(r.ok);
  // Slots 1..4 each have headroom 10 -> 40 total deliverable.
  EXPECT_NEAR(r.delivered_total, 40.0, 1e-6);
  ASSERT_EQ(r.delivered.size(), 2u);
  EXPECT_NEAR(r.delivered[0] + r.delivered[1], 40.0, 1e-6);
}

TEST(BulkTransfer, RelayAcrossPaidPath) {
  // Paid volume on both hops lets bulk data relay through the middle DC
  // with storage, even though no single slot could carry it end-to-end.
  net::Topology t(3);
  t.set_link(0, 1, 100.0, 1.0);
  t.set_link(1, 2, 100.0, 1.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(t.link_index(0, 1), 0, 10.0);
  charge.commit(t.link_index(1, 2), 0, 10.0);
  const auto r = maximize_bulk_transfer(t, charge, 1,
                                        {file(1, 0, 2, 100.0, 3, 1)});
  ASSERT_TRUE(r.ok);
  // Hops: 0->1 in slots 1,2 (10+10), 1->2 in slots 2,3: 20 delivered.
  EXPECT_NEAR(r.delivered_total, 20.0, 1e-6);
}

TEST(BudgetConstrained, ZeroBudgetMeansNoNewCharges) {
  const auto t = pair_topology(100.0, 2.0);
  charging::ChargeState charge(t.num_links());
  const auto r = maximize_with_budget(t, charge, 0,
                                      {file(1, 0, 1, 50.0, 2, 0)}, 0.0);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.delivered_total, 0.0, 1e-7);
}

TEST(BudgetConstrained, BudgetBuysProportionalVolume) {
  // Price 2 per GB of charge; deadline 2 slots. Charge X allows 2X GB
  // delivered (X per slot over 2 slots) at per-interval cost 2X.
  const auto t = pair_topology(1000.0, 2.0);
  charging::ChargeState charge(t.num_links());
  const auto r = maximize_with_budget(t, charge, 0,
                                      {file(1, 0, 1, 100.0, 2, 0)}, 40.0);
  ASSERT_TRUE(r.ok);
  // Budget 40 -> X <= 20 -> at most 40 GB delivered.
  EXPECT_NEAR(r.delivered_total, 40.0, 1e-5);
  EXPECT_LE(r.cost_per_interval, 40.0 + 1e-6);
}

TEST(BudgetConstrained, LargeBudgetDeliversEverything) {
  const auto t = pair_topology(1000.0, 2.0);
  charging::ChargeState charge(t.num_links());
  const auto r = maximize_with_budget(t, charge, 0,
                                      {file(1, 0, 1, 100.0, 2, 0)}, 1e6);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.delivered_total, 100.0, 1e-5);
}

TEST(BudgetConstrained, ExistingChargesConsumeTheBudget) {
  const auto t = pair_topology(1000.0, 2.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);  // existing cost/interval = 20
  const auto r = maximize_with_budget(t, charge, 1,
                                      {file(1, 0, 1, 100.0, 1, 1)}, 30.0);
  ASSERT_TRUE(r.ok);
  // X may grow to 15 (cost 30); slot 1 is empty so 15 GB can move.
  EXPECT_NEAR(r.delivered_total, 15.0, 1e-5);
}

TEST(BudgetConstrained, BudgetBelowCurrentCostIsInfeasible) {
  const auto t = pair_topology(1000.0, 2.0);
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 10.0);  // cost 20 > budget 5
  const auto r = maximize_with_budget(t, charge, 1,
                                      {file(1, 0, 1, 10.0, 1, 1)}, 5.0);
  EXPECT_FALSE(r.ok);
}

TEST(Extensions, EmptyBatchIsTrivially0k) {
  const auto t = pair_topology(10.0, 1.0);
  charging::ChargeState charge(t.num_links());
  const auto r = maximize_bulk_transfer(t, charge, 0, {});
  EXPECT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.delivered_total, 0.0);
}

}  // namespace
}  // namespace postcard::core
