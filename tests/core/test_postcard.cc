// Integration tests for the Postcard controller, including the paper's
// worked examples: Fig. 1 (routing + scheduling beats direct transfer) and
// the Sec. VII burstiness discussion (store-and-forward doubles the peak on
// a relay path compared to the fluid flow model).
#include "core/postcard.h"

#include <gtest/gtest.h>

#include "flow/baseline.h"

namespace postcard::core {
namespace {

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

/// Fig. 1 topology: D1=0, D2=1, D3=2; prices recovered from the text:
/// a(D2->D3) = 10, a(D2->D1) = 1, a(D1->D3) = 3; ample capacity.
net::Topology fig1_topology() {
  net::Topology t(3);
  t.set_link(1, 2, 1000.0, 10.0);
  t.set_link(1, 0, 1000.0, 1.0);
  t.set_link(0, 2, 1000.0, 3.0);
  // Reverse links exist but are never attractive.
  t.set_link(2, 1, 1000.0, 10.0);
  t.set_link(0, 1, 1000.0, 1.0);
  t.set_link(2, 0, 1000.0, 3.0);
  return t;
}

TEST(Postcard, Fig1MotivatingExample) {
  // 6 MB from D2 to D3 within 3 slots. Direct transfer costs 10 * 2 = 20
  // per interval; the relayed, scheduled plan of Fig. 1(b) costs
  // 1*3 + 3*3 = 12. The LP must find 12 (it is the optimum).
  PostcardController controller(fig1_topology());
  const auto outcome = controller.schedule(0, {file(1, 1, 2, 6.0, 3, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  EXPECT_NEAR(controller.cost_per_interval(), 12.0, 1e-6);

  // The committed plan is a valid store-and-forward schedule.
  ASSERT_EQ(controller.last_plans().size(), 1u);
  std::string err;
  EXPECT_TRUE(verify_plan(controller.last_plans()[0],
                          file(1, 1, 2, 6.0, 3, 0), controller.topology(),
                          1e-6, &err))
      << err;
}

TEST(Postcard, Fig1DirectWhenDeadlineIsOneSlot) {
  // With T = 1 the relay (2 hops) is impossible: cost = 10 * 6 = 60.
  PostcardController controller(fig1_topology());
  controller.schedule(0, {file(1, 1, 2, 6.0, 1, 0)});
  EXPECT_NEAR(controller.cost_per_interval(), 60.0, 1e-6);
}

TEST(Postcard, BurstinessOnRelayPath) {
  // Sec. VII: file of size 10 over {D2 -> D1 -> D4} within 2 slots.
  // Store-and-forward must move the whole file each hop in one slot:
  // peak per link = 10. The flow model streams at rate 5: peak = 5.
  net::Topology t(3);  // 0 = D2, 1 = D1, 2 = D4
  t.set_link(0, 1, 1000.0, 1.0);
  t.set_link(1, 2, 1000.0, 1.0);

  PostcardController postcard{net::Topology(t)};
  postcard.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  EXPECT_NEAR(postcard.charge_state().charged(t.link_index(0, 1)), 10.0, 1e-6);
  EXPECT_NEAR(postcard.charge_state().charged(t.link_index(1, 2)), 10.0, 1e-6);

  flow::FlowBaseline baseline{net::Topology(t)};
  baseline.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  EXPECT_NEAR(baseline.charge_state().charged(t.link_index(0, 1)), 5.0, 1e-6);
  EXPECT_NEAR(baseline.charge_state().charged(t.link_index(1, 2)), 5.0, 1e-6);
  // Hence with ample capacity the flow model is cheaper here — the paper's
  // explanation for Figs. 4-5.
  EXPECT_LT(baseline.cost_per_interval(), postcard.cost_per_interval());
}

TEST(Postcard, TimeShiftingOntoPaidLink) {
  // Once a link is paid for X = 10, a later delay-tolerant file re-uses it
  // for free by storing at the source until slots open up.
  net::Topology t(2);
  t.set_link(0, 1, 1000.0, 5.0);
  PostcardController controller{net::Topology(t)};
  controller.schedule(0, {file(1, 0, 1, 10.0, 1, 0)});
  const double paid = controller.cost_per_interval();
  EXPECT_NEAR(paid, 50.0, 1e-6);
  // 20 GB within 2 slots: 10 per slot fits exactly under the paid volume.
  const auto outcome = controller.schedule(1, {file(2, 0, 1, 20.0, 2, 1)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  EXPECT_NEAR(controller.cost_per_interval(), paid, 1e-6);
}

TEST(Postcard, StorageDisabledForcesImmediateForwarding) {
  // Same scenario; without storage arcs the second file cannot wait, and a
  // 20 GB / 2 slot transfer still fits (10 per slot), so this particular
  // case stays free — but a 1-slot deadline burst must raise the charge.
  PostcardOptions no_storage;
  no_storage.formulation.allow_storage = false;
  net::Topology t(2);
  t.set_link(0, 1, 1000.0, 5.0);
  PostcardController controller{net::Topology(t), no_storage};
  EXPECT_EQ(controller.name(), "postcard (no storage)");
  controller.schedule(0, {file(1, 0, 1, 10.0, 1, 0)});
  controller.schedule(1, {file(2, 0, 1, 30.0, 2, 1)});
  // 30 GB in 2 slots -> 15 per slot minimum without storage skew? With
  // storage one could send 10 in slot 1 and 20 in slot 2... but that raises
  // the max to 20. Optimal without storage: even split 15/15 -> X = 15.
  EXPECT_NEAR(controller.charge_state().charged(0), 15.0, 1e-6);
}

TEST(Postcard, SplitsAcrossCheapPathsUnderCapacityPressure) {
  // Capacity 5 per link, file of 10 with deadline 2: the direct link alone
  // cannot carry it; the plan must split or relay, and remain valid.
  net::Topology t(3);
  t.set_link(0, 2, 5.0, 2.0);
  t.set_link(0, 1, 5.0, 1.0);
  t.set_link(1, 2, 5.0, 1.0);
  PostcardController controller{net::Topology(t)};
  const auto outcome = controller.schedule(0, {file(1, 0, 2, 10.0, 2, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  std::string err;
  EXPECT_TRUE(verify_plan(controller.last_plans()[0], file(1, 0, 2, 10.0, 2, 0),
                          controller.topology(), 1e-6, &err))
      << err;
}

TEST(Postcard, RejectsImpossibleFile) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  PostcardController controller{net::Topology(t)};
  const auto outcome = controller.schedule(0, {file(9, 0, 1, 100.0, 2, 0)});
  EXPECT_TRUE(outcome.accepted_ids.empty());
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{9});
  EXPECT_NEAR(outcome.rejected_volume, 100.0, 1e-9);
}

TEST(Postcard, KeepsFeasibleSubsetWhenOneFileIsImpossible) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  PostcardController controller{net::Topology(t)};
  const auto outcome = controller.schedule(
      0, {file(1, 0, 1, 100.0, 2, 0), file(2, 0, 1, 4.0, 1, 0)});
  EXPECT_EQ(outcome.accepted_ids, std::vector<int>{2});
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{1});
}

TEST(Postcard, MultiFileChargeSharing) {
  // Two files share the cheap link in different slots: the LP staggers them
  // so the peak (and thus the charge) stays at one file's volume.
  net::Topology t(2);
  t.set_link(0, 1, 1000.0, 1.0);
  PostcardController controller{net::Topology(t)};
  controller.schedule(0, {file(1, 0, 1, 10.0, 2, 0), file(2, 0, 1, 10.0, 2, 0)});
  EXPECT_NEAR(controller.charge_state().charged(0), 10.0, 1e-6);
  EXPECT_NEAR(controller.cost_per_interval(), 10.0, 1e-6);
}

TEST(Postcard, RejectsExtensionOptionsInOnlineController) {
  PostcardOptions bad;
  bad.formulation.elastic_demand = true;
  EXPECT_THROW(PostcardController(fig1_topology(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace postcard::core
