// The greedy store-and-forward heuristic: correct plans, sane admission,
// and never better than the LP (it optimizes the same objective over the
// same model, sequentially instead of jointly).
#include "core/greedy.h"

#include <gtest/gtest.h>

#include "core/postcard.h"

namespace postcard::core {
namespace {

net::FileRequest file(int id, int s, int d, double size, int deadline, int slot) {
  return {id, s, d, size, deadline, slot};
}

net::Topology fig1_topology() {
  net::Topology t(3);
  t.set_link(1, 2, 1000.0, 10.0);
  t.set_link(1, 0, 1000.0, 1.0);
  t.set_link(0, 2, 1000.0, 3.0);
  return t;
}

TEST(Greedy, RoutesViaCheapRelayOnFig1) {
  GreedyScheduler greedy{fig1_topology()};
  const auto outcome = greedy.schedule(0, {file(1, 1, 2, 6.0, 3, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  // The cheapest 1-GB path is D2->D1->D3 (cost 4 < 10 direct); chunking
  // cannot spread as cleverly as the LP but must still beat direct-only.
  EXPECT_LT(greedy.cost_per_interval(), 20.0 + 1e-9);
  std::string err;
  ASSERT_EQ(greedy.last_plans().size(), 1u);
  EXPECT_TRUE(verify_plan(greedy.last_plans()[0], file(1, 1, 2, 6.0, 3, 0),
                          fig1_topology(), 1e-6, &err))
      << err;
}

TEST(Greedy, NeverBeatsTheLp) {
  // Same batches through both; the LP jointly optimizes, greedy cannot win.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    auto topo = net::Topology::complete(
        5, 25.0, [&](int i, int j) { return 1.0 + ((i * 3 + j + seed) % 9); });
    GreedyScheduler greedy{net::Topology(topo)};
    PostcardController lp{net::Topology(topo)};
    std::vector<net::FileRequest> batch = {
        file(1, 0, 4, 20.0, 3, 0), file(2, 1, 3, 15.0, 2, 0),
        file(3, 2, 0, 10.0, 4, 0), file(4, 3, 1, 18.0, 3, 0)};
    const auto go = greedy.schedule(0, batch);
    const auto lo = lp.schedule(0, batch);
    ASSERT_EQ(go.accepted_ids.size(), 4u) << "seed " << seed;
    ASSERT_EQ(lo.accepted_ids.size(), 4u) << "seed " << seed;
    EXPECT_GE(greedy.cost_per_interval(), lp.cost_per_interval() - 1e-4)
        << "seed " << seed;
  }
}

TEST(Greedy, ReusesPaidHeadroomForFree) {
  net::Topology t(2);
  t.set_link(0, 1, 1000.0, 5.0);
  GreedyScheduler greedy{net::Topology(t)};
  greedy.schedule(0, {file(1, 0, 1, 10.0, 1, 0)});
  const double paid = greedy.cost_per_interval();
  EXPECT_NEAR(paid, 50.0, 1e-9);
  // 20 GB over 2 slots fits under the paid X = 10 exactly.
  greedy.schedule(1, {file(2, 0, 1, 20.0, 2, 1)});
  EXPECT_NEAR(greedy.cost_per_interval(), paid, 1e-9);
}

TEST(Greedy, SplitsAcrossSlotsWithStorageAtSource) {
  net::Topology t(2);
  t.set_link(0, 1, 6.0, 2.0);
  GreedyScheduler greedy{net::Topology(t)};
  const auto outcome = greedy.schedule(0, {file(1, 0, 1, 12.0, 2, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  // Capacity forces 6+6 over the two slots: X = 6, cost 12.
  EXPECT_NEAR(greedy.charge_state().charged(0), 6.0, 1e-9);
}

TEST(Greedy, RejectsImpossibleFileWithoutSideEffects) {
  net::Topology t(2);
  t.set_link(0, 1, 5.0, 1.0);
  GreedyScheduler greedy{net::Topology(t)};
  const auto outcome = greedy.schedule(0, {file(9, 0, 1, 100.0, 2, 0)});
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{9});
  EXPECT_NEAR(outcome.rejected_volume, 100.0, 1e-9);
  // Rollback: nothing was committed for the rejected file.
  EXPECT_NEAR(greedy.cost_per_interval(), 0.0, 1e-12);
  EXPECT_NEAR(greedy.charge_state().committed(0, 0), 0.0, 1e-12);
}

TEST(Greedy, UrgentFilesScheduledFirst) {
  // One link, capacity 10. A T=1 file (needs slot 0 fully) plus a T=2 file.
  // Urgency ordering must route the T=1 file first so both fit.
  net::Topology t(2);
  t.set_link(0, 1, 10.0, 1.0);
  GreedyScheduler greedy{net::Topology(t)};
  const auto outcome = greedy.schedule(
      0, {file(1, 0, 1, 10.0, 2, 0), file(2, 0, 1, 10.0, 1, 0)});
  EXPECT_EQ(outcome.accepted_ids.size(), 2u) << "urgent-first ordering failed";
}

TEST(Greedy, NoStorageOptionForbidsIntermediateHolding) {
  // Path 0->1->2 with a 2-slot deadline and capacity that forces the file
  // to stage at DC 1 for a slot; with storage disabled at intermediates the
  // route must still work (hop per slot needs no holdover here), but a
  // 3-slot deadline requiring a hold at DC 1 must fail over to... simply
  // verify plans contain no intermediate storage transfers.
  net::Topology t(3);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(1, 2, 10.0, 1.0);
  GreedyOptions opts;
  opts.allow_storage = false;
  GreedyScheduler greedy{net::Topology(t), opts};
  const auto outcome = greedy.schedule(0, {file(1, 0, 2, 8.0, 3, 0)});
  ASSERT_EQ(outcome.accepted_ids.size(), 1u);
  for (const Transfer& tr : greedy.last_plans()[0].transfers) {
    if (tr.storage()) {
      EXPECT_TRUE(tr.from == 0 || tr.from == 2)
          << "holdover at intermediate DC " << tr.from;
    }
  }
}

TEST(Greedy, ChunkBudgetExhaustionIsLoudAndRollsBack) {
  // One link, ample capacity, deadline 2: the spreading heuristic caps the
  // first (and only) chunk at remaining/2 = 25 GB, so a 1-chunk budget
  // abandons 25 GB — that volume must land in the gave_up counters, not be
  // folded into a plain capacity reject, and nothing may stay committed.
  net::Topology t(2);
  t.set_link(0, 1, 100.0, 1.0);
  GreedyOptions opts;
  opts.max_chunks_per_file = 1;
  GreedyScheduler greedy{net::Topology(t), opts};
  const auto outcome = greedy.schedule(0, {file(7, 0, 1, 50.0, 2, 0)});
  EXPECT_EQ(outcome.rejected_ids, std::vector<int>{7});
  EXPECT_NEAR(outcome.rejected_volume, 50.0, 1e-9);
  EXPECT_EQ(outcome.gave_up_files, 1);
  EXPECT_NEAR(outcome.gave_up_volume, 25.0, 1e-9);
  EXPECT_NEAR(greedy.cost_per_interval(), 0.0, 1e-12);
  EXPECT_NEAR(greedy.charge_state().committed(0, 0), 0.0, 1e-12);
}

TEST(Greedy, RouteFileFreeFunctionDistinguishesFailureModes) {
  net::Topology t(2);
  t.set_link(0, 1, 100.0, 1.0);
  GreedyOptions opts;
  opts.max_chunks_per_file = 1;
  charging::ChargeState state(t.num_links());
  FilePlan plan;
  double gave_up = 0.0;
  // Chunk budget exhaustion: reports the abandoned volume, state untouched.
  EXPECT_EQ(greedy_route_file(t, opts, file(1, 0, 1, 50.0, 2, 0), state, plan,
                              &gave_up),
            GreedyRoute::kChunkLimit);
  EXPECT_NEAR(gave_up, 25.0, 1e-9);
  EXPECT_NEAR(state.committed(0, 0), 0.0, 1e-12);
  // No path at all (wrong direction) is a different verdict.
  EXPECT_EQ(greedy_route_file(t, opts, file(2, 1, 0, 10.0, 2, 0), state, plan,
                              nullptr),
            GreedyRoute::kNoPath);
  // A routable file commits into the caller's state.
  GreedyOptions ample;
  EXPECT_EQ(greedy_route_file(t, ample, file(3, 0, 1, 50.0, 2, 0), state, plan,
                              nullptr),
            GreedyRoute::kRouted);
  EXPECT_GT(state.committed(0, 0) + state.committed(0, 1), 0.0);
}

}  // namespace
}  // namespace postcard::core
