// Acceptance gate for the sparse incremental time-expanded graph (DESIGN.md
// §12): toggling PostcardOptions::use_sparse_graph must not move a single
// bit of the trajectory — identical cost series, plans, and LP iteration
// counts — on the paper's 20-DC complete-graph workload, through LinkDown
// replans, and on the Fat-Tree shapes from net/generators.h. The fail-fast
// plan auditor stays armed throughout, so any committed-plan divergence
// throws instead of shifting a cost silently.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/postcard.h"
#include "net/generators.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::runtime {
namespace {

sim::WorkloadParams twenty_dc(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 20;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 5;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 6;
  p.seed = seed;
  return p;
}

struct Fault {
  int slot;
  int link;
};

/// One replay with the Postcard backend pinned to the requested graph
/// backend, plus the flow baseline riding along to prove the dispatch path
/// is unperturbed.
RuntimeStats replay(const sim::WorkloadGenerator& w, bool sparse,
                    const std::vector<Fault>& faults = {},
                    bool with_flow = true) {
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  core::PostcardOptions options;
  options.use_sparse_graph = sparse;
  runtime.add_postcard_backend(options);
  if (with_flow) runtime.add_flow_backend();
  for (const Fault& f : faults) runtime.fail_link(f.slot, f.link);
  return runtime.replay(w);
}

void expect_identical(const BackendStats& sparse, const BackendStats& dense) {
  ASSERT_EQ(sparse.cost_series.size(), dense.cost_series.size());
  for (std::size_t i = 0; i < dense.cost_series.size(); ++i) {
    EXPECT_EQ(sparse.cost_series[i], dense.cost_series[i]) << "slot " << i;
  }
  // Same plans implies the same everything downstream; pin the solver-side
  // counters too so a lucky cost tie cannot mask a divergent solve path.
  EXPECT_EQ(sparse.lp_iterations, dense.lp_iterations);
  EXPECT_EQ(sparse.lp_solves, dense.lp_solves);
  EXPECT_EQ(sparse.accepted_files, dense.accepted_files);
  EXPECT_EQ(sparse.rejected_files, dense.rejected_files);
  EXPECT_EQ(sparse.rejected_volume, dense.rejected_volume);
  EXPECT_EQ(sparse.replans, dense.replans);
  EXPECT_EQ(sparse.replanned_volume, dense.replanned_volume);
  EXPECT_EQ(sparse.failed_files, dense.failed_files);
  EXPECT_EQ(sparse.warm_accepts, dense.warm_accepts);
  EXPECT_EQ(sparse.audit_violations, 0);
  EXPECT_EQ(dense.audit_violations, 0);
}

TEST(SparseEquivalence, TwentyDcCostSeriesBitForBit) {
  const sim::UniformWorkload w(twenty_dc(21));
  const RuntimeStats s = replay(w, /*sparse=*/true);
  const RuntimeStats d = replay(w, /*sparse=*/false);
  ASSERT_EQ(s.backends.size(), 2u);
  expect_identical(s.backends[0], d.backends[0]);
  // The flow baseline never touches the sparse arena; its series must be
  // byte-identical across the two runs as a control.
  EXPECT_EQ(s.backends[1].cost_series, d.backends[1].cost_series);
}

TEST(SparseEquivalence, LinkDownReplanStaysBitForBit) {
  const sim::UniformWorkload w(twenty_dc(22));
  // Down a whole swath of links mid-run so committed in-flight plans are
  // invalidated and the LinkDown replan path actually fires, with a second
  // wave two slots later while the first replan's commits are still live.
  std::vector<Fault> faults;
  for (int link = 0; link < 40; ++link) faults.push_back({2, link});
  for (int link = 40; link < 80; ++link) faults.push_back({4, link});
  const RuntimeStats s = replay(w, /*sparse=*/true, faults);
  const RuntimeStats d = replay(w, /*sparse=*/false, faults);
  expect_identical(s.backends[0], d.backends[0]);
  EXPECT_EQ(s.backends[1].cost_series, d.backends[1].cost_series);
  // The faults must have perturbed the trajectory, or this test proves
  // nothing: compare against the fault-free run of the same seed.
  const RuntimeStats clean = replay(w, /*sparse=*/true);
  EXPECT_NE(s.backends[0].cost_series, clean.backends[0].cost_series);
}

TEST(SparseEquivalence, FatTreeWorkloadBitForBit) {
  // 45-site Fat-Tree (diameter 4): files are multi-hop by construction, so
  // the reachability pruning actually bites — unroutable (deadline < hops)
  // files must reject identically, routable ones must route identically.
  sim::WorkloadParams p = twenty_dc(23);
  p.files_per_slot_max = 3;
  p.deadline_min = 2;  // some structurally unroutable files on purpose
  p.deadline_max = 5;
  p.num_slots = 4;
  const sim::TopologyWorkload w(
      net::fat_tree(6, 100.0,
                    [](int a, int b) { return 1.0 + 0.05 * a + 0.001 * b; }),
      p);
  ASSERT_EQ(w.topology().num_datacenters(), 45);
  const RuntimeStats s = replay(w, /*sparse=*/true, {}, /*with_flow=*/false);
  const RuntimeStats d = replay(w, /*sparse=*/false, {}, /*with_flow=*/false);
  expect_identical(s.backends[0], d.backends[0]);
}

TEST(SparseEquivalence, RepeatedSparseRunsAreIdentical) {
  // The arena is per-controller state (plain vectors, nothing shared):
  // fresh controllers replaying the same workload may not see each other.
  const sim::UniformWorkload w(twenty_dc(24));
  const RuntimeStats s = replay(w, /*sparse=*/true);
  const RuntimeStats again = replay(w, /*sparse=*/true);
  EXPECT_EQ(s.backends[0].cost_series, again.backends[0].cost_series);
}

}  // namespace
}  // namespace postcard::runtime
