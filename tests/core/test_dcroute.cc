// DCRoute single-path rung (core/dcroute.h): unit coverage of the
// cheapest-path reservation itself, and the chaos posture — a pivot budget
// that truncates every slot must walk the ladder through the DCRoute rung
// with every admitted file still ending in exactly one terminal counter
// (accepted + rejected + failed == admitted).
#include "core/dcroute.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/plan.h"
#include "core/postcard.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::core {
namespace {

net::Topology small_topology() {
  return net::Topology::complete(
      4, /*capacity=*/100.0,
      [](int a, int b) { return 1.0 + ((a * 3 + b) % 5); });
}

net::FileRequest file(int id, int src, int dst, double size, int deadline,
                      int release = 0) {
  net::FileRequest f;
  f.id = id;
  f.source = src;
  f.destination = dst;
  f.size = size;
  f.max_transfer_slots = deadline;
  f.release_slot = release;
  return f;
}

TEST(DCRoute, RoutesAFileOnOnePathAndThePlanVerifies) {
  const net::Topology topo = small_topology();
  charging::ChargeState state{topo.num_links()};
  FilePlan plan;
  const net::FileRequest f = file(7, 0, 3, 50.0, 2);
  ASSERT_EQ(dcroute_route_file(topo, DCRouteOptions{}, f, state, plan),
            DCRouteResult::kRouted);
  std::string error;
  EXPECT_TRUE(verify_plan(plan, f, topo, 1e-9, &error)) << error;
  // Single-path: every transfer slot uses the same spatial hop sequence,
  // so all transfers share one (from, to) chain — no branching.
  EXPECT_EQ(plan.file_id, 7);
  EXPECT_FALSE(plan.transfers.empty());
}

TEST(DCRoute, RefusesWhenThePathCannotCarryTheVolume) {
  const net::Topology topo = net::Topology::complete(
      3, /*capacity=*/10.0, [](int, int) { return 1.0; });
  charging::ChargeState state{topo.num_links()};
  FilePlan plan;
  // 100 GB through 10 GB/slot links in 2 slots: structurally impossible.
  const net::FileRequest f = file(1, 0, 2, 100.0, 2);
  EXPECT_EQ(dcroute_route_file(topo, DCRouteOptions{}, f, state, plan),
            DCRouteResult::kNoCapacity);
  EXPECT_TRUE(plan.transfers.empty());
  // A refusal must leave the charge ledger untouched.
  EXPECT_EQ(state.cost_per_interval(topo), 0.0);
}

TEST(DCRoute, SchedulerAccountsEveryFileAndPlansVerify) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 60.0;
  p.files_per_slot_min = 3;
  p.files_per_slot_max = 8;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 6;
  p.seed = 5;
  sim::UniformWorkload w(p);

  DCRouteScheduler scheduler{net::Topology(w.topology())};
  for (int s = 0; s < w.num_slots(); ++s) {
    const auto batch = w.batch(s);
    const auto outcome = scheduler.schedule(s, batch);
    EXPECT_EQ(outcome.accepted_ids.size() + outcome.rejected_ids.size(),
              batch.size());
    EXPECT_EQ(outcome.accepted_ids.size(), scheduler.last_plans().size());
    for (const FilePlan& plan : scheduler.last_plans()) {
      const auto it =
          std::find_if(batch.begin(), batch.end(),
                       [&](const net::FileRequest& f) {
                         return f.id == plan.file_id;
                       });
      ASSERT_NE(it, batch.end());
      std::string error;
      EXPECT_TRUE(verify_plan(plan, *it, w.topology(), 1e-9, &error)) << error;
    }
  }
  EXPECT_GE(scheduler.cost_per_interval(), 0.0);
}

// ---- Forced degradation through the runtime ladder -----------------------

TEST(DCRouteChaos, TruncatedSlotsWalkTheDCRouteRungFullyAccounted) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.files_per_slot_min = 4;
  p.files_per_slot_max = 8;
  p.size_min = 10.0;
  p.size_max = 60.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 8;
  p.seed = 33;
  sim::UniformWorkload w(p);

  // A pivot budget far below what the masters need: every slot truncates
  // and the leftover files fall to the rungs below.
  runtime::RuntimeOptions options;
  options.slot_pivot_budget = 5;

  PostcardOptions with_dcroute;
  with_dcroute.use_dcroute_rung = true;
  runtime::ControllerRuntime engine{net::Topology(w.topology()), options};
  engine.add_postcard_backend(with_dcroute);
  const runtime::RuntimeStats stats = engine.replay(w);

  ASSERT_EQ(stats.backends.size(), 1u);
  const runtime::BackendStats& b = stats.backends[0];
  // The rung genuinely fired...
  EXPECT_GT(b.rung_dcroute, 0);
  EXPECT_GT(b.degraded_slots, 0);
  // ...and the accounting identity holds: every admitted file ended in
  // exactly one terminal counter.
  EXPECT_EQ(stats.ingress_rejected, 0);
  EXPECT_EQ(b.accepted_files + b.rejected_files + b.failed_files,
            stats.admitted);
  double offered = 0.0;
  for (int s = 0; s < w.num_slots(); ++s) {
    for (const net::FileRequest& f : w.batch(s)) offered += f.size;
  }
  EXPECT_NEAR(b.accepted_volume + b.rejected_volume + b.failed_volume,
              offered, 1e-6);
}

TEST(DCRouteChaos, RungPlacesFilesTheGreedyChunkerWouldOtherwiseCarry) {
  // Same forced-truncation run with and without the rung: the DCRoute run
  // must satisfy the identity too, and files it places come out of the
  // greedy/carryover pool — total terminal files match.
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.files_per_slot_min = 4;
  p.files_per_slot_max = 8;
  p.size_min = 10.0;
  p.size_max = 60.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 8;
  p.seed = 41;
  sim::UniformWorkload w(p);
  runtime::RuntimeOptions options;
  options.slot_pivot_budget = 5;

  runtime::ControllerRuntime plain{net::Topology(w.topology()), options};
  plain.add_postcard_backend();
  const runtime::RuntimeStats without = plain.replay(w);

  PostcardOptions with_dcroute;
  with_dcroute.use_dcroute_rung = true;
  runtime::ControllerRuntime engine{net::Topology(w.topology()), options};
  engine.add_postcard_backend(with_dcroute);
  const runtime::RuntimeStats with = engine.replay(w);

  const runtime::BackendStats& a = without.backends[0];
  const runtime::BackendStats& b = with.backends[0];
  EXPECT_EQ(a.rung_dcroute, 0);
  EXPECT_GT(b.rung_dcroute, 0);
  EXPECT_EQ(a.accepted_files + a.rejected_files + a.failed_files,
            without.admitted);
  EXPECT_EQ(b.accepted_files + b.rejected_files + b.failed_files,
            with.admitted);
  EXPECT_EQ(without.admitted, with.admitted);
}

}  // namespace
}  // namespace postcard::core
