#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <random>

namespace postcard::linalg {
namespace {

// Builds a symmetric positive definite matrix A = M M^T + n*I from a random
// sparse M, returned with both triangles stored.
SparseMatrix random_spd(int n, std::mt19937& rng, double density) {
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (unif(rng) < density) m[i][j] = val(rng);
    }
  }
  std::vector<Triplet> ts;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double s = (i == j) ? static_cast<double>(n) : 0.0;
      for (int k = 0; k < n; ++k) s += m[i][k] * m[j][k];
      if (s != 0.0) ts.push_back({i, j, s});
    }
  }
  return SparseMatrix::from_triplets(n, n, ts);
}

double residual(const SparseMatrix& a, const Vector& x, const Vector& rhs) {
  Vector ax;
  a.multiply(x, ax);
  double r = 0.0;
  for (std::size_t i = 0; i < ax.size(); ++i) r = std::max(r, std::abs(ax[i] - rhs[i]));
  return r;
}

TEST(RcmOrdering, IsAPermutation) {
  std::mt19937 rng(5);
  const auto a = random_spd(25, rng, 0.1);
  const auto perm = rcm_ordering(a);
  ASSERT_EQ(perm.size(), 25u);
  std::vector<char> seen(25, 0);
  for (Index p : perm) {
    ASSERT_GE(p, 0);
    ASSERT_LT(p, 25);
    EXPECT_FALSE(seen[p]) << "duplicate label " << p;
    seen[p] = 1;
  }
}

TEST(RcmOrdering, HandlesDisconnectedComponents) {
  // Two disjoint 2-cliques plus an isolated node.
  const auto a = SparseMatrix::from_triplets(
      5, 5,
      {{0, 0, 2.0}, {1, 1, 2.0}, {0, 1, 1.0}, {1, 0, 1.0},
       {2, 2, 2.0}, {3, 3, 2.0}, {2, 3, 1.0}, {3, 2, 1.0},
       {4, 4, 2.0}});
  const auto perm = rcm_ordering(a);
  std::vector<char> seen(5, 0);
  for (Index p : perm) seen[p] = 1;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(seen[i]);
}

TEST(LdlSolver, SolvesDiagonal) {
  const auto a = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 2.0}, {1, 1, 4.0}, {2, 2, 8.0}});
  LdlSolver ldl;
  ldl.analyze(a);
  EXPECT_EQ(ldl.factorize(a), 0);
  Vector x = {2.0, 4.0, 8.0};
  ldl.solve(x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 1.0, 1e-12);
}

TEST(LdlSolver, SolvesSmallDenseSpd) {
  // [[4,1,0],[1,3,1],[0,1,2]]
  const auto a = SparseMatrix::from_triplets(
      3, 3,
      {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0},
       {1, 2, 1.0}, {2, 1, 1.0}, {2, 2, 2.0}});
  LdlSolver ldl;
  ldl.analyze(a);
  EXPECT_EQ(ldl.factorize(a), 0);
  Vector rhs = {1.0, 2.0, 3.0};
  Vector x = rhs;
  ldl.solve(x);
  EXPECT_LT(residual(a, x, rhs), 1e-12);
}

TEST(LdlSolver, RandomSpdMatrices) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 10 + 7 * trial;
    const auto a = random_spd(n, rng, 0.15);
    LdlSolver ldl;
    ldl.analyze(a);
    EXPECT_EQ(ldl.factorize(a), 0) << "trial " << trial;
    Vector rhs(static_cast<std::size_t>(n));
    for (double& v : rhs) v = val(rng);
    Vector x = rhs;
    ldl.solve(x);
    EXPECT_LT(residual(a, x, rhs), 1e-8) << "trial " << trial;
  }
}

TEST(LdlSolver, RefactorizeWithNewValuesSamePattern) {
  std::mt19937 rng(17);
  const auto a = random_spd(20, rng, 0.2);
  LdlSolver ldl;
  ldl.analyze(a);
  ASSERT_EQ(ldl.factorize(a), 0);

  // Scale all values by 3: same pattern, new numbers.
  std::vector<double> scaled(a.values());
  for (double& v : scaled) v *= 3.0;
  const auto a3 = SparseMatrix::from_csc(
      a.rows(), a.cols(), std::vector<Index>(a.col_ptr()),
      std::vector<Index>(a.row_idx()), scaled);
  ASSERT_EQ(ldl.factorize(a3), 0);
  Vector rhs(20, 1.0);
  Vector x = rhs;
  ldl.solve(x);
  EXPECT_LT(residual(a3, x, rhs), 1e-9);
}

TEST(LdlSolver, RegularizesIndefiniteDiagonal) {
  // Zero diagonal block triggers the regularization floor rather than a crash.
  const auto a = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 0.0}});
  LdlSolver ldl;
  ldl.analyze(a);
  EXPECT_GE(ldl.factorize(a), 1);
}

TEST(LdlSolver, RejectsDimensionMismatch) {
  const auto a = SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  const auto b = SparseMatrix::from_triplets(3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  LdlSolver ldl;
  ldl.analyze(a);
  EXPECT_THROW(ldl.factorize(b), std::invalid_argument);
}

}  // namespace
}  // namespace postcard::linalg
