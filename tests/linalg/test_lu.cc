#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <random>

namespace postcard::linalg {
namespace {

// Dense reference: residual ||B x - b||_inf after ftran.
double ftran_residual(const SparseMatrix& b, const Vector& x, const Vector& rhs) {
  Vector bx;
  b.multiply(x, bx);
  double r = 0.0;
  for (std::size_t i = 0; i < bx.size(); ++i) r = std::max(r, std::abs(bx[i] - rhs[i]));
  return r;
}

double btran_residual(const SparseMatrix& b, const Vector& x, const Vector& rhs) {
  Vector btx;
  b.multiply_transpose(x, btx);
  double r = 0.0;
  for (std::size_t i = 0; i < btx.size(); ++i) r = std::max(r, std::abs(btx[i] - rhs[i]));
  return r;
}

SparseMatrix random_nonsingular(int n, std::mt19937& rng, double density) {
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::vector<Triplet> ts;
  for (Index i = 0; i < n; ++i) {
    // Strong diagonal keeps the matrix comfortably nonsingular.
    ts.push_back({i, i, 4.0 + std::abs(val(rng))});
    for (Index j = 0; j < n; ++j) {
      if (i != j && unif(rng) < density) ts.push_back({i, j, val(rng)});
    }
  }
  return SparseMatrix::from_triplets(n, n, ts);
}

TEST(LuFactorization, IdentitySolves) {
  const auto eye = SparseMatrix::from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  LuFactorization lu;
  ASSERT_EQ(lu.factorize(eye), FactorStatus::kOk);
  Vector x = {1.0, -2.0, 3.0};
  lu.ftran(x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
  lu.btran(x);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(LuFactorization, NegatedIdentity) {
  const auto b = SparseMatrix::from_triplets(
      2, 2, {{0, 0, -1.0}, {1, 1, -1.0}});
  LuFactorization lu;
  ASSERT_EQ(lu.factorize(b), FactorStatus::kOk);
  Vector x = {2.0, -4.0};
  lu.ftran(x);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
}

TEST(LuFactorization, DetectsSingular) {
  const auto b = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}});  // second row empty
  LuFactorization lu;
  EXPECT_EQ(lu.factorize(b), FactorStatus::kSingular);
}

TEST(LuFactorization, DetectsNumericallySingular) {
  // Two identical columns.
  const auto b = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  LuFactorization lu;
  EXPECT_EQ(lu.factorize(b), FactorStatus::kSingular);
}

TEST(LuFactorization, SolvesPermutationMatrix) {
  // Pure row permutation exercises pivoting bookkeeping.
  const auto b = SparseMatrix::from_triplets(
      3, 3, {{1, 0, 1.0}, {2, 1, 1.0}, {0, 2, 1.0}});
  LuFactorization lu;
  ASSERT_EQ(lu.factorize(b), FactorStatus::kOk);
  Vector rhs = {5.0, 6.0, 7.0};
  Vector x = rhs;
  lu.ftran(x);
  EXPECT_LT(ftran_residual(b, x, rhs), 1e-12);
  Vector y = rhs;
  lu.btran(y);
  EXPECT_LT(btran_residual(b, y, rhs), 1e-12);
}

TEST(LuFactorization, RandomMatricesFtranBtran) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 5 + trial * 3;
    const auto b = random_nonsingular(n, rng, 0.2);
    LuFactorization lu;
    ASSERT_EQ(lu.factorize(b), FactorStatus::kOk) << "trial " << trial;
    Vector rhs(static_cast<std::size_t>(n));
    for (double& v : rhs) v = val(rng);
    Vector x = rhs;
    lu.ftran(x);
    EXPECT_LT(ftran_residual(b, x, rhs), 1e-9) << "trial " << trial;
    Vector y = rhs;
    lu.btran(y);
    EXPECT_LT(btran_residual(b, y, rhs), 1e-9) << "trial " << trial;
  }
}

TEST(LuFactorization, EtaUpdateMatchesRefactorization) {
  std::mt19937 rng(123);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  const int n = 20;
  auto b = random_nonsingular(n, rng, 0.3);
  LuFactorization lu;
  ASSERT_EQ(lu.factorize(b), FactorStatus::kOk);

  // Replace a handful of columns one at a time via eta updates, mirroring the
  // replacement in a dense copy of B, and check FTRAN/BTRAN stay accurate.
  std::vector<std::vector<double>> dense(n, std::vector<double>(n, 0.0));
  for (Index j = 0; j < n; ++j) {
    for (Index p = b.col_begin(j); p < b.col_end(j); ++p) {
      dense[b.row_idx()[p]][j] = b.values()[p];
    }
  }

  for (int step = 0; step < 8; ++step) {
    const Index pos = (3 * step + 1) % n;
    // New column: random with strong weight on `pos` to keep B nonsingular.
    Vector col(static_cast<std::size_t>(n), 0.0);
    for (int i = 0; i < n; ++i) {
      col[i] = (i == pos) ? 5.0 + std::abs(val(rng)) : (val(rng) > 0.6 ? val(rng) : 0.0);
    }
    Vector w = col;
    lu.ftran(w);
    ASSERT_TRUE(lu.update(w, pos));
    for (int i = 0; i < n; ++i) dense[i][pos] = col[i];

    // Rebuild the updated B for the residual check.
    std::vector<Triplet> ts;
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < n; ++j) {
        if (dense[i][j] != 0.0) ts.push_back({i, j, dense[i][j]});
      }
    }
    const auto b_now = SparseMatrix::from_triplets(n, n, ts);
    Vector rhs(static_cast<std::size_t>(n));
    for (double& v : rhs) v = val(rng);
    Vector x = rhs;
    lu.ftran(x);
    EXPECT_LT(ftran_residual(b_now, x, rhs), 1e-8) << "step " << step;
    Vector y = rhs;
    lu.btran(y);
    EXPECT_LT(btran_residual(b_now, y, rhs), 1e-8) << "step " << step;
  }
  EXPECT_EQ(lu.updates(), 8);
}

TEST(LuFactorization, UpdateRejectsTinyPivot) {
  const auto eye = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  LuFactorization lu;
  ASSERT_EQ(lu.factorize(eye), FactorStatus::kOk);
  Vector w = {1e-12, 1.0};  // pivot at position 0 far below tolerance
  EXPECT_FALSE(lu.update(w, 0));
  EXPECT_EQ(lu.updates(), 0);
}

TEST(LuFactorization, ShouldRefactorizeAfterBudget) {
  LuFactorization::Options opts;
  opts.max_updates = 2;
  const auto eye = SparseMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  LuFactorization lu(opts);
  ASSERT_EQ(lu.factorize(eye), FactorStatus::kOk);
  EXPECT_FALSE(lu.should_refactorize());
  Vector w = {1.0, 0.5};
  ASSERT_TRUE(lu.update(w, 0));
  EXPECT_FALSE(lu.should_refactorize());
  ASSERT_TRUE(lu.update(w, 0));
  EXPECT_TRUE(lu.should_refactorize());
  ASSERT_EQ(lu.factorize(eye), FactorStatus::kOk);
  EXPECT_EQ(lu.updates(), 0);
}

}  // namespace
}  // namespace postcard::linalg
