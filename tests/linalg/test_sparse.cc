#include "linalg/sparse.h"

#include <gtest/gtest.h>

#include <random>

namespace postcard::linalg {
namespace {

TEST(SparseMatrix, EmptyMatrix) {
  const auto a = SparseMatrix::from_triplets(0, 0, {});
  EXPECT_EQ(a.rows(), 0);
  EXPECT_EQ(a.cols(), 0);
  EXPECT_EQ(a.nonzeros(), 0);
}

TEST(SparseMatrix, BuildsCanonicalCscFromUnorderedTriplets) {
  const std::vector<Triplet> ts = {
      {2, 0, 3.0}, {0, 0, 1.0}, {1, 1, 4.0}, {0, 2, 5.0}, {2, 2, 6.0}};
  const auto a = SparseMatrix::from_triplets(3, 3, ts);
  EXPECT_EQ(a.nonzeros(), 5);
  EXPECT_DOUBLE_EQ(a.coeff(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.coeff(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.coeff(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.coeff(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(a.coeff(2, 2), 6.0);
  EXPECT_DOUBLE_EQ(a.coeff(1, 0), 0.0);
  // Rows strictly increasing within each column.
  for (Index j = 0; j < a.cols(); ++j) {
    for (Index p = a.col_begin(j); p + 1 < a.col_end(j); ++p) {
      EXPECT_LT(a.row_idx()[p], a.row_idx()[p + 1]);
    }
  }
}

TEST(SparseMatrix, SumsDuplicateTriplets) {
  const std::vector<Triplet> ts = {{1, 1, 2.0}, {1, 1, 3.5}, {1, 1, -1.0}};
  const auto a = SparseMatrix::from_triplets(2, 2, ts);
  EXPECT_EQ(a.nonzeros(), 1);
  EXPECT_DOUBLE_EQ(a.coeff(1, 1), 4.5);
}

TEST(SparseMatrix, DropsCancellingDuplicates) {
  const std::vector<Triplet> ts = {{0, 0, 2.0}, {0, 0, -2.0}, {1, 0, 1.0}};
  const auto a = SparseMatrix::from_triplets(2, 1, ts);
  EXPECT_EQ(a.nonzeros(), 1);
  EXPECT_DOUBLE_EQ(a.coeff(1, 0), 1.0);
}

TEST(SparseMatrix, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(SparseMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::out_of_range);
}

TEST(SparseMatrix, FromCscValidatesStructure) {
  EXPECT_NO_THROW(SparseMatrix::from_csc(2, 2, {0, 1, 2}, {0, 1}, {1.0, 2.0}));
  // Non-monotone col_ptr.
  EXPECT_THROW(SparseMatrix::from_csc(2, 2, {0, 2, 1}, {0, 1}, {1.0, 2.0}),
               std::invalid_argument);
  // Unsorted rows within a column.
  EXPECT_THROW(SparseMatrix::from_csc(2, 1, {0, 2}, {1, 0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  const auto a = SparseMatrix::from_triplets(
      2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, -3.0}, {1, 2, 4.0}});
  Vector y;
  a.multiply({1.0, 2.0, 3.0}, y);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 1.0 * 1 + 2.0 * 3);
  EXPECT_DOUBLE_EQ(y[1], -3.0 * 2 + 4.0 * 3);

  Vector z;
  a.multiply_transpose({1.0, 1.0}, z);
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], -3.0);
  EXPECT_DOUBLE_EQ(z[2], 6.0);
}

TEST(SparseMatrix, TransposeRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> coord(0, 9);
  std::uniform_real_distribution<double> val(-5.0, 5.0);
  std::vector<Triplet> ts;
  for (int k = 0; k < 40; ++k) {
    ts.push_back({coord(rng), coord(rng), val(rng)});
  }
  const auto a = SparseMatrix::from_triplets(10, 10, ts);
  const auto att = a.transpose().transpose();
  ASSERT_EQ(att.nonzeros(), a.nonzeros());
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(att.coeff(i, j), a.coeff(i, j));
    }
  }
}

TEST(SparseMatrix, TransposeAgreesWithMultiply) {
  const auto a = SparseMatrix::from_triplets(
      3, 2, {{0, 0, 1.0}, {2, 0, -2.0}, {1, 1, 3.0}});
  const auto at = a.transpose();
  const Vector x = {0.5, -1.5, 2.5};
  Vector via_transpose_mult, via_at;
  a.multiply_transpose(x, via_transpose_mult);
  at.multiply(x, via_at);
  ASSERT_EQ(via_transpose_mult.size(), via_at.size());
  for (std::size_t i = 0; i < via_at.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_transpose_mult[i], via_at[i]);
  }
}

// append_columns must produce exactly the matrix from_triplets builds over
// the full triplet set — same canonical structure, same arrays — so the
// incremental LP-master path is indistinguishable from a rebuild.
TEST(SparseMatrix, AppendColumnsMatchesFromTriplets) {
  const std::vector<Triplet> head = {
      {0, 0, 1.0}, {2, 0, -2.0}, {1, 1, 3.0}};
  const std::vector<Triplet> tail = {
      {2, 2, 5.0}, {0, 2, 4.0},              // unsorted rows within the column
      {1, 3, 1.5}, {1, 3, 0.5},              // duplicate coordinates: summed
      {0, 4, 2.0}, {0, 4, -2.0}, {2, 4, 7.0}  // cancelling pair: dropped
  };
  auto grown = SparseMatrix::from_triplets(3, 2, head);
  grown.append_columns(3, tail);

  std::vector<Triplet> all = head;
  all.insert(all.end(), tail.begin(), tail.end());
  const auto rebuilt = SparseMatrix::from_triplets(3, 5, all);

  EXPECT_EQ(grown.rows(), rebuilt.rows());
  EXPECT_EQ(grown.cols(), rebuilt.cols());
  EXPECT_EQ(grown.col_ptr(), rebuilt.col_ptr());
  EXPECT_EQ(grown.row_idx(), rebuilt.row_idx());
  EXPECT_EQ(grown.values(), rebuilt.values());
}

TEST(SparseMatrix, AppendColumnsHonorsFirstOffset) {
  // The LP model keeps one append-only triplet list; append_columns is told
  // where the new entries start and must ignore everything before.
  const std::vector<Triplet> log = {
      {0, 0, 1.0}, {1, 1, 2.0},  // already folded into the matrix
      {2, 2, 3.0}, {0, 2, 1.0}   // the appended column
  };
  auto grown = SparseMatrix::from_triplets(3, 2,
                                           {log.begin(), log.begin() + 2});
  grown.append_columns(1, log, 2);
  const auto rebuilt = SparseMatrix::from_triplets(3, 3, log);
  EXPECT_EQ(grown.col_ptr(), rebuilt.col_ptr());
  EXPECT_EQ(grown.row_idx(), rebuilt.row_idx());
  EXPECT_EQ(grown.values(), rebuilt.values());
}

TEST(SparseMatrix, AppendZeroColumnsIsStructural) {
  auto m = SparseMatrix::from_triplets(2, 1, {{0, 0, 1.0}});
  m.append_columns(2, {});  // two empty columns, no entries
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nonzeros(), 1);
  EXPECT_EQ(m.col_end(2), m.col_begin(1));
}

TEST(SparseMatrix, AppendColumnsRejectsEntriesInExistingColumns) {
  auto m = SparseMatrix::from_triplets(2, 2, {{0, 0, 1.0}});
  EXPECT_THROW(m.append_columns(1, {{1, 0, 2.0}}), std::out_of_range);
  EXPECT_THROW(m.append_columns(1, {{1, 3, 2.0}}), std::out_of_range);
}

TEST(DenseHelpers, DotAxpyNorms) {
  Vector x = {1.0, 2.0, -2.0};
  Vector y = {3.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 1.0);
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  EXPECT_DOUBLE_EQ(y[2], -3.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 2.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
}

}  // namespace
}  // namespace postcard::linalg
