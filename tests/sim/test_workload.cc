#include "sim/workload.h"

#include <gtest/gtest.h>

namespace postcard::sim {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 30.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 5;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 20;
  p.seed = 42;
  return p;
}

TEST(UniformWorkload, TopologyMatchesPaperSetup) {
  WorkloadParams p = small_params();
  p.num_datacenters = 20;
  p.link_capacity = 100.0;
  const UniformWorkload w(p);
  const auto& t = w.topology();
  EXPECT_EQ(t.num_datacenters(), 20);
  EXPECT_EQ(t.num_links(), 20 * 19);  // complete directed graph
  for (const net::Link& l : t.links()) {
    EXPECT_DOUBLE_EQ(l.capacity, 100.0);
    EXPECT_GE(l.unit_cost, 1.0);
    EXPECT_LE(l.unit_cost, 10.0);
  }
}

TEST(UniformWorkload, BatchesRespectParameterRanges) {
  const UniformWorkload w(small_params());
  for (int slot = 0; slot < 20; ++slot) {
    const auto files = w.batch(slot);
    EXPECT_GE(static_cast<int>(files.size()), 1);
    EXPECT_LE(static_cast<int>(files.size()), 5);
    for (const auto& f : files) {
      EXPECT_NE(f.source, f.destination);
      EXPECT_GE(f.source, 0);
      EXPECT_LT(f.source, 6);
      EXPECT_GE(f.size, 10.0);
      EXPECT_LE(f.size, 100.0);
      EXPECT_GE(f.max_transfer_slots, 1);
      EXPECT_LE(f.max_transfer_slots, 3);
      EXPECT_EQ(f.release_slot, slot);
      EXPECT_NO_THROW(validate(f, w.topology()));
    }
  }
}

TEST(UniformWorkload, DeterministicAndRandomAccess) {
  const UniformWorkload a(small_params());
  const UniformWorkload b(small_params());
  // Same seed -> identical batches, regardless of query order.
  const auto b7 = b.batch(7);
  const auto a7 = a.batch(7);
  ASSERT_EQ(a7.size(), b7.size());
  for (std::size_t i = 0; i < a7.size(); ++i) {
    EXPECT_EQ(a7[i].source, b7[i].source);
    EXPECT_EQ(a7[i].destination, b7[i].destination);
    EXPECT_DOUBLE_EQ(a7[i].size, b7[i].size);
    EXPECT_EQ(a7[i].max_transfer_slots, b7[i].max_transfer_slots);
  }
  // Repeated queries agree.
  const auto a7_again = a.batch(7);
  ASSERT_EQ(a7.size(), a7_again.size());
  for (std::size_t i = 0; i < a7.size(); ++i) {
    EXPECT_DOUBLE_EQ(a7[i].size, a7_again[i].size);
  }
}

TEST(UniformWorkload, DifferentSeedsDiffer) {
  WorkloadParams p1 = small_params();
  WorkloadParams p2 = small_params();
  p2.seed = 43;
  const UniformWorkload a(p1), b(p2);
  bool any_difference = false;
  for (int slot = 0; slot < 5 && !any_difference; ++slot) {
    const auto fa = a.batch(slot);
    const auto fb = b.batch(slot);
    if (fa.size() != fb.size()) {
      any_difference = true;
      break;
    }
    for (std::size_t i = 0; i < fa.size(); ++i) {
      if (fa[i].size != fb[i].size || fa[i].source != fb[i].source) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(UniformWorkload, ValidatesParameters) {
  WorkloadParams p = small_params();
  p.num_datacenters = 1;
  EXPECT_THROW(UniformWorkload{p}, std::invalid_argument);
  p = small_params();
  p.deadline_min = 0;
  EXPECT_THROW(UniformWorkload{p}, std::invalid_argument);
  p = small_params();
  p.files_per_slot_max = 0;
  EXPECT_THROW(UniformWorkload{p}, std::invalid_argument);
  p = small_params();
  p.size_min = -1.0;
  EXPECT_THROW(UniformWorkload{p}, std::invalid_argument);
}

TEST(DiurnalWorkload, TroughSlotsCarryFewerFiles) {
  WorkloadParams p = small_params();
  p.files_per_slot_min = 10;
  p.files_per_slot_max = 10;  // deterministic base load
  const DiurnalWorkload w(p, /*period_slots=*/20, /*trough_factor=*/0.2);
  // Peak of sin is at slot 5 (phase pi/2), trough at slot 15.
  const auto peak = w.batch(5);
  const auto trough = w.batch(15);
  EXPECT_GT(peak.size(), trough.size());
  EXPECT_NEAR(static_cast<double>(peak.size()), 10.0, 1.0);
  EXPECT_NEAR(static_cast<double>(trough.size()), 2.0, 1.0);
}

TEST(HotspotWorkload, SourcesAreSkewed) {
  WorkloadParams p = small_params();
  p.files_per_slot_min = 20;
  p.files_per_slot_max = 20;
  const HotspotWorkload w(p, /*alpha=*/2.0);
  std::vector<int> counts(6, 0);
  for (int slot = 0; slot < 50; ++slot) {
    for (const auto& f : w.batch(slot)) ++counts[f.source];
  }
  // DC 0 carries the bulk of the load under alpha = 2.
  EXPECT_GT(counts[0], counts[5] * 3);
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 50 * 20);
}

}  // namespace
}  // namespace postcard::sim
