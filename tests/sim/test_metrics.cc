#include "sim/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace postcard::sim {
namespace {

TEST(Metrics, EmptyAndSingleton) {
  const Summary empty = summarize({});
  EXPECT_EQ(empty.n, 0);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);

  const Summary one = summarize({7.5});
  EXPECT_EQ(one.n, 1);
  EXPECT_DOUBLE_EQ(one.mean, 7.5);
  EXPECT_DOUBLE_EQ(one.stddev, 0.0);
  EXPECT_DOUBLE_EQ(one.ci95_halfwidth, 0.0);
}

TEST(Metrics, KnownMeanAndStddev) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample variance = 32/7.
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Metrics, ConfidenceIntervalUsesStudentT) {
  // n = 10 samples, df = 9 -> t = 2.262.
  std::vector<double> samples;
  for (int i = 1; i <= 10; ++i) samples.push_back(static_cast<double>(i));
  const Summary s = summarize(samples);
  EXPECT_NEAR(s.ci95_halfwidth, 2.262 * s.stddev / std::sqrt(10.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.lower(), s.mean - s.ci95_halfwidth);
  EXPECT_DOUBLE_EQ(s.upper(), s.mean + s.ci95_halfwidth);
}

TEST(Metrics, StudentTTable) {
  EXPECT_NEAR(student_t_975(1), 12.706, 1e-9);
  EXPECT_NEAR(student_t_975(9), 2.262, 1e-9);
  EXPECT_NEAR(student_t_975(30), 2.042, 1e-9);
  EXPECT_NEAR(student_t_975(1000), 1.960, 1e-9);
  EXPECT_THROW(student_t_975(0), std::invalid_argument);
}

TEST(Metrics, ConstantSamplesHaveZeroWidth) {
  const Summary s = summarize({3.0, 3.0, 3.0, 3.0});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth, 0.0);
}

}  // namespace
}  // namespace postcard::sim
