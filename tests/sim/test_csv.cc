#include "sim/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace postcard::sim {
namespace {

TEST(Csv, PlainCells) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  csv.row({"1", "2", "3"});
  EXPECT_EQ(out.str(), "a,b,c\n1,2,3\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"plain", "has,comma", "has\"quote", "has\nnewline"});
  EXPECT_EQ(out.str(), "plain,\"has,comma\",\"has\"\"quote\",\"has\nnewline\"\n");
}

TEST(Csv, NumericCellsRoundTrip) {
  EXPECT_EQ(CsvWriter::cell(42L), "42");
  const std::string c = CsvWriter::cell(0.1);
  EXPECT_DOUBLE_EQ(std::stod(c), 0.1);
}

TEST(Csv, CostSeriesLayout) {
  RunResult a, b;
  a.cost_series = {1.0, 2.0, 3.0};
  b.cost_series = {10.0, 20.0, 30.0};
  std::ostringstream out;
  write_cost_series_csv(out, {"postcard", "flow"}, {&a, &b});
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "slot,postcard,flow");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,10");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2,20");
}

TEST(Csv, CostSeriesValidation) {
  RunResult a, b;
  a.cost_series = {1.0};
  b.cost_series = {1.0, 2.0};
  std::ostringstream out;
  EXPECT_THROW(write_cost_series_csv(out, {"x"}, {&a, &b}),
               std::invalid_argument);
  EXPECT_THROW(write_cost_series_csv(out, {"x", "y"}, {&a, &b}),
               std::invalid_argument);
}

}  // namespace
}  // namespace postcard::sim
