// End-to-end smoke tests: both policies replay the same workload through the
// simulation driver; invariants on the results tie the whole stack together.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "core/postcard.h"
#include "flow/baseline.h"

namespace postcard::sim {
namespace {

WorkloadParams tiny_params(double capacity, int max_deadline) {
  WorkloadParams p;
  p.num_datacenters = 4;
  p.link_capacity = capacity;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 5.0;
  p.size_max = 20.0;
  p.deadline_min = 1;
  p.deadline_max = max_deadline;
  p.num_slots = 8;
  p.seed = 7;
  return p;
}

TEST(Simulator, RunsPostcardEndToEnd) {
  const UniformWorkload w(tiny_params(100.0, 3));
  core::PostcardController policy{net::Topology(w.topology())};
  const RunResult r = run_simulation(policy, w);
  EXPECT_EQ(static_cast<int>(r.cost_series.size()), 8);
  EXPECT_GT(r.total_volume, 0.0);
  EXPECT_DOUBLE_EQ(r.rejected_volume, 0.0);  // ample capacity
  EXPECT_GT(r.final_cost_per_interval, 0.0);
  EXPECT_GT(r.lp_solves, 0);
}

TEST(Simulator, RunsFlowBaselineEndToEnd) {
  const UniformWorkload w(tiny_params(100.0, 3));
  flow::FlowBaseline policy{net::Topology(w.topology())};
  const RunResult r = run_simulation(policy, w);
  EXPECT_EQ(static_cast<int>(r.cost_series.size()), 8);
  EXPECT_DOUBLE_EQ(r.rejected_volume, 0.0);
  EXPECT_GT(r.final_cost_per_interval, 0.0);
}

TEST(Simulator, CostSeriesIsMonotoneUnder100thPercentile) {
  // X_ij(t) never decreases, so neither does sum a_ij X_ij(t).
  const UniformWorkload w(tiny_params(50.0, 3));
  core::PostcardController postcard{net::Topology(w.topology())};
  flow::FlowBaseline baseline{net::Topology(w.topology())};
  for (auto* policy :
       std::initializer_list<SchedulingPolicy*>{&postcard, &baseline}) {
    const RunResult r = run_simulation(*policy, w);
    for (std::size_t i = 1; i < r.cost_series.size(); ++i) {
      EXPECT_GE(r.cost_series[i], r.cost_series[i - 1] - 1e-9)
          << policy->name() << " slot " << i;
    }
  }
}

TEST(Simulator, MeanAndFinalCostAreConsistent) {
  const UniformWorkload w(tiny_params(100.0, 2));
  core::PostcardController policy{net::Topology(w.topology())};
  const RunResult r = run_simulation(policy, w);
  EXPECT_LE(r.mean_cost_per_interval, r.final_cost_per_interval + 1e-9);
  EXPECT_DOUBLE_EQ(r.cost_series.back(), r.final_cost_per_interval);
}

TEST(Simulator, SameWorkloadIsReplayableAcrossPolicies) {
  // The generator is pure; two policies see identical offered volume.
  const UniformWorkload w(tiny_params(100.0, 3));
  core::PostcardController postcard{net::Topology(w.topology())};
  flow::FlowBaseline baseline{net::Topology(w.topology())};
  const RunResult a = run_simulation(postcard, w);
  const RunResult b = run_simulation(baseline, w);
  EXPECT_DOUBLE_EQ(a.total_volume, b.total_volume);
}

TEST(Simulator, ChargeStateMatchesReportedCost) {
  const UniformWorkload w(tiny_params(60.0, 3));
  core::PostcardController policy{net::Topology(w.topology())};
  const RunResult r = run_simulation(policy, w);
  EXPECT_NEAR(r.final_cost_per_interval,
              policy.charge_state().cost_per_interval(w.topology()), 1e-9);
  // 100-th percentile accounting over the recorded history agrees with the
  // charge state's running maxima.
  const auto& rec = policy.charge_state().recorder();
  for (int l = 0; l < rec.num_links(); ++l) {
    if (rec.num_slots() == 0) continue;
    EXPECT_NEAR(rec.charged_volume(l, 100.0), policy.charge_state().charged(l),
                1e-9);
  }
}

}  // namespace
}  // namespace postcard::sim
