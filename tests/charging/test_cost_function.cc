#include "charging/cost_function.h"

#include <gtest/gtest.h>

namespace postcard::charging {
namespace {

TEST(CostFunction, LinearEvaluatesAsPriceTimesVolume) {
  const auto f = CostFunction::linear(2.5);
  EXPECT_TRUE(f.is_linear());
  EXPECT_DOUBLE_EQ(f.evaluate(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.evaluate(4.0), 10.0);
  EXPECT_DOUBLE_EQ(f.marginal(100.0), 2.5);
}

TEST(CostFunction, NegativeVolumeClampsToZero) {
  const auto f = CostFunction::linear(3.0);
  EXPECT_DOUBLE_EQ(f.evaluate(-5.0), 0.0);
}

TEST(CostFunction, PiecewiseVolumeDiscount) {
  // 10/GB up to 100 GB, 8/GB up to 500 GB, 5/GB beyond.
  const auto f = CostFunction::piecewise({{0.0, 10.0}, {100.0, 8.0}, {500.0, 5.0}});
  EXPECT_FALSE(f.is_linear());
  EXPECT_DOUBLE_EQ(f.evaluate(50.0), 500.0);
  EXPECT_DOUBLE_EQ(f.evaluate(100.0), 1000.0);
  EXPECT_DOUBLE_EQ(f.evaluate(200.0), 1000.0 + 800.0);
  EXPECT_DOUBLE_EQ(f.evaluate(600.0), 1000.0 + 3200.0 + 500.0);
  EXPECT_DOUBLE_EQ(f.marginal(50.0), 10.0);
  EXPECT_DOUBLE_EQ(f.marginal(100.0), 8.0);
  EXPECT_DOUBLE_EQ(f.marginal(1000.0), 5.0);
}

TEST(CostFunction, MonotoneNonDecreasing) {
  const auto f = CostFunction::piecewise({{0.0, 3.0}, {10.0, 0.0}, {20.0, 1.0}});
  double prev = -1.0;
  for (double v = 0.0; v <= 40.0; v += 0.5) {
    const double c = f.evaluate(v);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(CostFunction, RejectsMalformedBreakpoints) {
  EXPECT_THROW(CostFunction::piecewise({}), std::invalid_argument);
  EXPECT_THROW(CostFunction::piecewise({{1.0, 2.0}}), std::invalid_argument);
  EXPECT_THROW(CostFunction::piecewise({{0.0, -1.0}}), std::invalid_argument);
  EXPECT_THROW(CostFunction::piecewise({{0.0, 1.0}, {0.0, 2.0}}),
               std::invalid_argument);
  EXPECT_THROW(CostFunction::piecewise({{0.0, 1.0}, {5.0, 2.0}, {3.0, 1.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace postcard::charging
