#include "charging/percentile.h"

#include <gtest/gtest.h>

namespace postcard::charging {
namespace {

TEST(PercentileRecorder, HundredthPercentileIsMaximum) {
  PercentileRecorder r(1);
  r.record(0, 0, 5.0);
  r.record(0, 1, 12.0);
  r.record(0, 2, 3.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 100.0), 12.0);
}

TEST(PercentileRecorder, RecordAccumulatesWithinSlot) {
  PercentileRecorder r(1);
  r.record(0, 4, 2.0);
  r.record(0, 4, 3.5);
  EXPECT_DOUBLE_EQ(r.volume(0, 4), 5.5);
  EXPECT_EQ(r.num_slots(), 5);
  EXPECT_DOUBLE_EQ(r.volume(0, 3), 0.0);  // implicit zero slot
}

TEST(PercentileRecorder, PaperIndexConvention) {
  // Sec. II-A: 95-th percentile of a year of 5-minute slots charges the
  // 99864-th sorted interval: 0.95 * 365*24*60/5 = 99864.
  const int year = 365 * 24 * 60 / 5;
  EXPECT_EQ(static_cast<int>(0.95 * year), 99864);
  // Small-scale check of the same convention: 10 slots, q=95 -> index 9
  // (1-based), i.e. the second largest.
  PercentileRecorder r(1);
  for (int s = 0; s < 10; ++s) r.record(0, s, static_cast<double>(s + 1));
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 95.0), 9.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 10.0), 1.0);
}

TEST(PercentileRecorder, QuietSlotsInThePeriodCountAsZero) {
  PercentileRecorder r(1);
  r.record(0, 0, 10.0);
  // Over a 100-slot period with one busy slot, the 95-th percentile is 0.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 95.0, 100), 0.0);
  // ... but the 100-th percentile still catches the spike.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 100.0, 100), 10.0);
}

TEST(PercentileRecorder, PerLinkSeriesAreIndependent) {
  PercentileRecorder r(2);
  r.record(0, 0, 7.0);
  r.record(1, 0, 3.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 100.0), 7.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(1, 100.0), 3.0);
}

TEST(PercentileRecorder, TotalCostAppliesPerLinkCostFunctions) {
  PercentileRecorder r(2);
  r.record(0, 0, 10.0);
  r.record(1, 0, 20.0);
  const std::vector<CostFunction> costs = {CostFunction::linear(2.0),
                                           CostFunction::linear(0.5)};
  EXPECT_DOUBLE_EQ(r.total_cost(costs, 100.0, 1), 20.0 + 10.0);
}

TEST(PercentileRecorder, Validation) {
  PercentileRecorder r(1);
  EXPECT_THROW(r.record(1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(r.record(0, -1, 1.0), std::out_of_range);
  EXPECT_THROW(r.record(0, 0, -1.0), std::invalid_argument);
  r.record(0, 5, 1.0);
  EXPECT_THROW(r.charged_volume(0, 0.0), std::invalid_argument);
  EXPECT_THROW(r.charged_volume(0, 101.0), std::invalid_argument);
  EXPECT_THROW(r.charged_volume(0, 95.0, 3), std::invalid_argument);  // period < observed
}

}  // namespace
}  // namespace postcard::charging
