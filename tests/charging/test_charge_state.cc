#include "charging/charge_state.h"

#include <gtest/gtest.h>

namespace postcard::charging {
namespace {

net::Topology two_links() {
  net::Topology t(2);
  t.set_link(0, 1, 100.0, 3.0);
  t.set_link(1, 0, 100.0, 5.0);
  return t;
}

TEST(ChargeState, ChargedTracksMaxSlotVolume) {
  ChargeState cs(1);
  cs.commit(0, 0, 4.0);
  EXPECT_DOUBLE_EQ(cs.charged(0), 4.0);
  cs.commit(0, 1, 9.0);
  EXPECT_DOUBLE_EQ(cs.charged(0), 9.0);
  cs.commit(0, 2, 2.0);
  EXPECT_DOUBLE_EQ(cs.charged(0), 9.0);  // lower later slots are free
}

TEST(ChargeState, AccumulationWithinASlotRaisesCharge) {
  ChargeState cs(1);
  cs.commit(0, 3, 4.0);
  cs.commit(0, 3, 4.0);
  EXPECT_DOUBLE_EQ(cs.committed(0, 3), 8.0);
  EXPECT_DOUBLE_EQ(cs.charged(0), 8.0);
}

TEST(ChargeState, FreeHeadroomIsChargeMinusCommitted) {
  ChargeState cs(1);
  cs.commit(0, 0, 10.0);
  cs.commit(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(cs.free_headroom(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cs.free_headroom(0, 1), 6.0);
  EXPECT_DOUBLE_EQ(cs.free_headroom(0, 7), 10.0);  // untouched future slot
}

TEST(ChargeState, CostPerIntervalSumsChargedTimesUnitCost) {
  const auto t = two_links();
  ChargeState cs(t.num_links());
  cs.commit(t.link_index(0, 1), 0, 10.0);  // cost 3 -> 30
  cs.commit(t.link_index(1, 0), 0, 2.0);   // cost 5 -> 10
  EXPECT_DOUBLE_EQ(cs.cost_per_interval(t), 40.0);
}

TEST(ChargeState, ZeroCommitIsANoop) {
  ChargeState cs(1);
  cs.commit(0, 0, 0.0);
  EXPECT_DOUBLE_EQ(cs.charged(0), 0.0);
  EXPECT_EQ(cs.recorder().num_slots(), 0);
}

TEST(ChargeState, TopologyMismatchRejected) {
  const auto t = two_links();
  ChargeState cs(1);
  EXPECT_THROW(cs.cost_per_interval(t), std::invalid_argument);
}

TEST(ChargeState, RecorderExposesHistoryForPercentileAccounting) {
  ChargeState cs(1);
  cs.commit(0, 0, 5.0);
  cs.commit(0, 1, 10.0);
  cs.commit(0, 2, 1.0);
  // 100-th percentile agrees with charged(); lower percentiles are cheaper.
  EXPECT_DOUBLE_EQ(cs.recorder().charged_volume(0, 100.0), cs.charged(0));
  EXPECT_LE(cs.recorder().charged_volume(0, 67.0), cs.charged(0));
}

}  // namespace
}  // namespace postcard::charging
