// Edge conventions of the q-th percentile recorder (Sec. II-A), pinned as
// regression tests:
//   * rank k = floor(q% * period) == 0 charges nothing — the percentile
//     lies strictly below the first sorted sample and does NOT round up to
//     the minimum busy interval;
//   * single-sample windows: k == 1 charges that sample, smaller q charges
//     zero;
//   * the incremental order-statistic path agrees with the copy+sort oracle
//     sample for sample at charging-period scale (>= 10k slots per link)
//     under a record/reduce churn mix.
#include "charging/percentile.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace postcard::charging {
namespace {

TEST(PercentileEdges, RankZeroChargesZero) {
  PercentileRecorder r(1);
  r.set_cross_check(true);
  for (int slot = 0; slot < 10; ++slot) r.record(0, slot, 100.0 + slot);
  // q% of the period is under one whole interval: k = floor(0.009*100) = 0.
  EXPECT_EQ(r.charged_volume(0, 0.9, 100), 0.0);
  EXPECT_EQ(r.charged_volume_sorted(0, 0.9, 100), 0.0);
  // One interval more of q and the rank reaches the implicit-zero prefix.
  EXPECT_EQ(r.charged_volume(0, 1.0, 100), 0.0);   // k=1, 90 quiet slots
  EXPECT_EQ(r.charged_volume(0, 91.0, 100), 100.0);  // first busy sample
  EXPECT_EQ(r.charged_volume(0, 100.0, 100), 109.0);
}

TEST(PercentileEdges, QZeroIsRejectedNotZeroCharged) {
  PercentileRecorder r(1);
  r.record(0, 0, 5.0);
  EXPECT_THROW(r.charged_volume(0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(r.charged_volume(0, -1.0, 10), std::invalid_argument);
  EXPECT_THROW(r.charged_volume(0, 100.5, 10), std::invalid_argument);
}

TEST(PercentileEdges, SingleSampleWindow) {
  PercentileRecorder r(2);
  r.set_cross_check(true);
  r.record(0, 0, 42.0);
  // Period of exactly one interval: any q with floor(q%) == 1 charges the
  // sample — the 100th percentile of one interval is that interval.
  EXPECT_EQ(r.charged_volume(0, 100.0, 1), 42.0);
  // q < 100 over a single interval floors to rank 0: nothing to charge.
  EXPECT_EQ(r.charged_volume(0, 99.0, 1), 0.0);
  EXPECT_EQ(r.charged_volume(0, 50.0, 1), 0.0);
  // An idle link charges zero at every q regardless of the window.
  EXPECT_EQ(r.charged_volume(1, 100.0, 1), 0.0);
  // Reducing the lone sample away leaves an all-zero window, not a hole.
  r.reduce(0, 0, 42.0);
  EXPECT_EQ(r.charged_volume(0, 100.0, 1), 0.0);
  EXPECT_EQ(r.reduce_violations(), 0);
}

TEST(PercentileEdges, SingleSlotPeriodGrowsWithObservations) {
  PercentileRecorder r(1);
  r.set_cross_check(true);
  r.record(0, 0, 10.0);
  EXPECT_EQ(r.num_slots(), 1);
  EXPECT_EQ(r.charged_volume(0, 100.0), 10.0);  // period defaults to num_slots
  // A shorter explicit period than observed is an error, not a truncation.
  r.record(0, 1, 20.0);
  EXPECT_THROW(r.charged_volume(0, 100.0, 1), std::invalid_argument);
}

TEST(PercentileEdges, TreapMatchesSortOracleAtChargingPeriodScale) {
  // A charging period is ~8.6k five-minute slots per month; run past 10k
  // with a record/reduce churn mix and compare every rank convention the
  // schemes use against the copy+sort oracle.
  constexpr int kSlots = 10500;
  constexpr int kLinks = 2;
  PercentileRecorder r(kLinks);
  std::mt19937_64 rng(2012);
  std::uniform_real_distribution<double> volume(0.0, 1000.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (int slot = 0; slot < kSlots; ++slot) {
    for (int link = 0; link < kLinks; ++link) {
      if (unif(rng) < 0.1) continue;  // quiet slot
      const double v = volume(rng);
      r.record(link, slot, v);
      if (unif(rng) < 0.25) r.reduce(link, slot, v * unif(rng));
      if (unif(rng) < 0.02) r.reduce(link, slot, r.volume(link, slot));
    }
  }
  r.record(0, kSlots - 1, 1.0);  // pin the observed window length
  ASSERT_EQ(r.num_slots(), kSlots);
  EXPECT_EQ(r.reduce_violations(), 0);
  for (int link = 0; link < kLinks; ++link) {
    for (const double q : {0.003, 0.01, 5.0, 50.0, 95.0, 99.0, 99.99, 100.0}) {
      EXPECT_EQ(r.charged_volume(link, q, kSlots),
                r.charged_volume_sorted(link, q, kSlots))
          << "link " << link << " q " << q;
      // A longer period pads quiet intervals in front of the sort.
      EXPECT_EQ(r.charged_volume(link, q, kSlots + 5000),
                r.charged_volume_sorted(link, q, kSlots + 5000))
          << "link " << link << " q " << q << " padded";
    }
    EXPECT_EQ(r.max_volume(link), r.charged_volume(link, 100.0, kSlots));
  }
}

}  // namespace
}  // namespace postcard::charging
