// Property tests for the incremental percentile tracker: under random
// record/reduce interleavings the O(log T) order-statistic path must agree
// exactly with the copy+sort oracle (charged_volume_sorted) for every
// percentile and period, the k == 0 convention must return zero, and
// over-reduction must be counted, never silently clamped.
#include "charging/percentile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace postcard::charging {
namespace {

TEST(PercentilePropertyTest, IncrementalMatchesSortedOracleUnderRandomOps) {
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<int> link_of(0, 2);
  std::uniform_int_distribution<int> slot_of(0, 39);
  std::uniform_real_distribution<double> volume_of(0.1, 25.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const double qs[] = {5.0, 37.5, 50.0, 80.0, 95.0, 99.0, 100.0};

  for (int trial = 0; trial < 20; ++trial) {
    PercentileRecorder r(3);
    r.set_cross_check(true);  // every query self-verifies and throws on drift
    // Shadow ledger: per (link, slot) volume recorded so far, so reduces
    // can be drawn mostly within budget (legal) with occasional overdraws.
    std::vector<std::vector<double>> shadow(3, std::vector<double>(40, 0.0));
    for (int op = 0; op < 300; ++op) {
      const int link = link_of(rng);
      const int slot = slot_of(rng);
      if (coin(rng) < 0.65 || shadow[link][slot] <= 0.0) {
        const double v = volume_of(rng);
        r.record(link, slot, v);
        shadow[link][slot] += v;
      } else {
        const double v =
            std::min(shadow[link][slot], volume_of(rng));
        r.reduce(link, slot, v);
        shadow[link][slot] -= v;
      }
      if (op % 25 != 0) continue;
      for (int l = 0; l < 3; ++l) {
        for (const double q : qs) {
          for (const int period : {r.num_slots(), r.num_slots() + 13, 200}) {
            if (period < r.num_slots()) continue;
            const double fast = r.charged_volume(l, q, period);
            const double oracle = r.charged_volume_sorted(l, q, period);
            ASSERT_EQ(fast, oracle)
                << "trial " << trial << " op " << op << " link " << l
                << " q " << q << " period " << period;
          }
        }
      }
    }
    EXPECT_EQ(r.reduce_violations(), 0) << "all reduces were within budget";
  }
}

TEST(PercentilePropertyTest, MaxVolumeMatchesSeriesMaximumUnderReduces) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int> slot_of(0, 19);
  std::uniform_real_distribution<double> volume_of(0.5, 10.0);
  PercentileRecorder r(1);
  std::vector<double> shadow(20, 0.0);
  for (int op = 0; op < 200; ++op) {
    const int slot = slot_of(rng);
    if (op % 3 != 2 || shadow[slot] <= 0.0) {
      const double v = volume_of(rng);
      r.record(0, slot, v);
      shadow[slot] += v;
    } else {
      const double v = std::min(shadow[slot], volume_of(rng));
      r.reduce(0, slot, v);
      shadow[slot] -= v;
    }
    const double expect =
        *std::max_element(shadow.begin(), shadow.end());
    ASSERT_DOUBLE_EQ(r.max_volume(0), expect) << "op " << op;
  }
}

TEST(PercentilePropertyTest, RankZeroChargesNothing) {
  // k = floor(q% * period) == 0: the percentile lies strictly below the
  // first sorted interval, so nothing is charged — the rank must not be
  // rounded up to the smallest busy slot.
  PercentileRecorder r(1);
  r.record(0, 0, 42.0);
  r.record(0, 1, 7.0);
  // floor(0.04 * 20) = 0.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 4.0, 20), 0.0);
  EXPECT_DOUBLE_EQ(r.charged_volume_sorted(0, 4.0, 20), 0.0);
  // floor(0.05 * 20) = 1: the smallest of 20 slots, 18 of which are
  // implicit zeros.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 5.0, 20), 0.0);
  // Two busy slots out of two observed: 50% charges the smaller.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 50.0, 2), 7.0);
  // q small enough that even a fully busy period rounds to rank 0.
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 20.0, 2), 0.0);
}

TEST(PercentilePropertyTest, OverReductionIsCountedNotClamped) {
  PercentileRecorder r(2);
  r.record(0, 3, 5.0);
  EXPECT_EQ(r.reduce_violations(), 0);

  // Exact cancellation and epsilon-level noise are not violations.
  r.reduce(0, 3, 5.0);
  EXPECT_EQ(r.reduce_violations(), 0);
  EXPECT_DOUBLE_EQ(r.volume(0, 3), 0.0);

  // Reducing a slot that never held the volume is an accounting bug: it
  // must be reported, and the stored series stays at zero (well defined)
  // rather than going negative.
  r.record(0, 3, 2.0);
  r.reduce(0, 3, 3.0);
  EXPECT_EQ(r.reduce_violations(), 1);
  EXPECT_DOUBLE_EQ(r.volume(0, 3), 0.0);

  // A reduce against an untouched slot likewise counts.
  r.reduce(1, 0, 1.0);
  EXPECT_EQ(r.reduce_violations(), 2);
  EXPECT_DOUBLE_EQ(r.volume(1, 0), 0.0);

  // The tracker still answers queries consistently afterwards.
  r.set_cross_check(true);
  r.record(0, 0, 4.0);
  EXPECT_DOUBLE_EQ(r.charged_volume(0, 100.0), 4.0);
}

}  // namespace
}  // namespace postcard::charging
