// In-place resumes (RevisedSimplex::resolve) — the column-generation inner
// loop's hot restart. A resume must reach the cold solve's optimum while
// keeping the incumbent basis, LU factorization, and matrix (extended
// append-only); can_resume() must refuse every state the contract excludes.
// Also pins the Devex/refactorization interaction: forcing a
// refactorization every other pivot must not change the pivot trajectory.
#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace postcard::lp {
namespace {

LpModel base_model() {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (optimal -36).
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  return m;
}

TEST(Resolve, RefusesWithoutPriorSolve) {
  RevisedSimplex solver;
  EXPECT_FALSE(solver.can_resume(base_model()));
}

TEST(Resolve, ResumableAfterOptimalSolve) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  EXPECT_TRUE(solver.can_resume(m));
}

TEST(Resolve, AppendedColumnReachesColdOptimum) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);

  // Attractive appended column entering at zero: resumable.
  const int z = m.add_variable(0.0, 2.0, -10.0);
  m.add_coefficient(2, z, 1.0);
  ASSERT_TRUE(solver.can_resume(m));
  const Solution hot = solver.resolve(m);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);
  EXPECT_TRUE(hot.warm_started);
  EXPECT_EQ(hot.phase1_iterations, 0);

  RevisedSimplex cold_solver;
  const Solution cold = cold_solver.solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-8);
  EXPECT_LE(hot.iterations, cold.iterations);
}

TEST(Resolve, NoOpResumeCostsNoPivots) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  const Solution again = solver.resolve(m);
  ASSERT_EQ(again.status, SolveStatus::kOptimal);
  EXPECT_EQ(again.iterations, 0);
  EXPECT_NEAR(again.objective, -36.0, 1e-8);
}

TEST(Resolve, SequenceOfAppendsTracksOptimum) {
  // Column-generation shape: one solve, then a chain of resumes, each
  // appending one improving column. Every resume must match a from-scratch
  // solve of the same model.
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  for (int round = 0; round < 4; ++round) {
    const int v =
        m.add_variable(0.0, 1.0 + round, -8.0 - round);
    m.add_coefficient(round % 3, v, 1.0);
    ASSERT_TRUE(solver.can_resume(m)) << "round " << round;
    const Solution hot = solver.resolve(m);
    ASSERT_EQ(hot.status, SolveStatus::kOptimal) << "round " << round;

    RevisedSimplex fresh;
    const Solution cold = fresh.solve(m);
    ASSERT_EQ(cold.status, SolveStatus::kOptimal);
    EXPECT_NEAR(hot.objective, cold.objective, 1e-7) << "round " << round;
  }
}

TEST(Resolve, RefusesRowCountChange) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  LpModel wider = base_model();
  wider.add_constraint(-kInfinity, 50.0);
  EXPECT_FALSE(solver.can_resume(wider));
}

TEST(Resolve, RefusesColumnThatCannotEnterAtZero) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  // Lower bound 1 > 0: the incumbent basic point would turn infeasible.
  const int v = m.add_variable(1.0, 3.0, -1.0);
  m.add_coefficient(0, v, 1.0);
  EXPECT_FALSE(solver.can_resume(m));
  // resolve() still answers correctly via the cold fallback.
  const Solution s = solver.resolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  RevisedSimplex fresh;
  EXPECT_NEAR(s.objective, fresh.solve(m).objective, 1e-8);
}

TEST(Resolve, RefusesNarrowedModel) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  LpModel narrower;  // fewer columns than the solved model
  narrower.add_variable(0.0, kInfinity, -1.0);
  narrower.add_constraint(-kInfinity, 4.0);
  narrower.add_coefficient(0, 0, 1.0);
  EXPECT_FALSE(solver.can_resume(narrower));
}

TEST(Resolve, RefusesAfterNonOptimalOutcome) {
  // An unbounded outcome must clear resume eligibility.
  LpModel m;
  m.add_variable(0.0, kInfinity, -1.0);  // min -x, x unbounded above
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kUnbounded);
  EXPECT_FALSE(solver.can_resume(m));
}

// A triplet appended into a PRE-EXISTING column (not the append-only
// column-generation pattern) must take the full-rebuild path inside
// resolve() and still produce the right optimum.
TEST(Resolve, EntryIntoExistingColumnStillCorrect) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  const int z = m.add_variable(0.0, 2.0, -10.0);
  m.add_coefficient(2, z, 1.0);
  m.add_coefficient(0, 0, 0.0);  // watermark triplet landing in column 0
  const Solution s = solver.resolve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  RevisedSimplex fresh;
  EXPECT_NEAR(s.objective, fresh.solve(m).objective, 1e-8);
}

// Devex pricing maintains reduced costs incrementally and recomputes them
// at every refactorization. The two code paths must agree: forcing a
// refactorization every other pivot (interval 2) must reproduce the
// default-interval trajectory exactly — same pivots, objective, and point.
TEST(Devex, ForcedRefactorizationKeepsTrajectory) {
  // A shape with enough pivots for several forced refactorizations.
  LpModel m;
  const int kCols = 12;
  for (int j = 0; j < kCols; ++j) {
    m.add_variable(0.0, 3.0 + (j % 4), -1.0 - (j * 7) % 5);
  }
  for (int i = 0; i < 6; ++i) {
    const int r = m.add_constraint(-kInfinity, 10.0 + i);
    for (int j = 0; j < kCols; ++j) {
      if ((i + j) % 3 == 0) m.add_coefficient(r, j, 1.0 + (i + j) % 2);
    }
  }

  RevisedSimplex::Options often;
  often.refactor_interval = 2;
  RevisedSimplex::Options rarely;
  rarely.refactor_interval = 100;

  RevisedSimplex a{often}, b{rarely};
  const Solution sa = a.solve(m);
  const Solution sb = b.solve(m);
  ASSERT_EQ(sa.status, SolveStatus::kOptimal);
  ASSERT_EQ(sb.status, SolveStatus::kOptimal);
  EXPECT_EQ(sa.iterations, sb.iterations);
  EXPECT_EQ(sa.phase1_iterations, sb.phase1_iterations);
  EXPECT_EQ(sa.degenerate_pivots, sb.degenerate_pivots);
  EXPECT_DOUBLE_EQ(sa.objective, sb.objective);
  ASSERT_EQ(sa.x.size(), sb.x.size());
  for (std::size_t j = 0; j < sa.x.size(); ++j) {
    EXPECT_DOUBLE_EQ(sa.x[j], sb.x[j]) << "x[" << j << "]";
  }
}

// The same invariant on the resume path — within tolerance, not bit for
// bit: a resumed chain keeps the product-form updates alive, so the
// frequently-refactorizing solver reports refactorization-exact values
// while the other carries O(1e-9) PFI drift. What must hold is that both
// chains stay optimal at every round and agree to solver tolerance.
TEST(Devex, ForcedRefactorizationKeepsResumeOptimum) {
  RevisedSimplex::Options often;
  often.refactor_interval = 2;
  RevisedSimplex::Options rarely;
  rarely.refactor_interval = 100;
  RevisedSimplex a{often}, b{rarely};

  LpModel m = base_model();
  ASSERT_EQ(a.solve(m).status, SolveStatus::kOptimal);
  ASSERT_EQ(b.solve(m).status, SolveStatus::kOptimal);
  for (int round = 0; round < 4; ++round) {
    const int v = m.add_variable(0.0, 2.0, -6.0 - round);
    m.add_coefficient(round % 3, v, 1.0);
    const Solution sa = a.resolve(m);
    const Solution sb = b.resolve(m);
    ASSERT_EQ(sa.status, SolveStatus::kOptimal) << "round " << round;
    ASSERT_EQ(sb.status, SolveStatus::kOptimal) << "round " << round;
    EXPECT_NEAR(sa.objective, sb.objective, 1e-6) << "round " << round;
    // Short tails either way: a resume never re-runs phase 1.
    EXPECT_EQ(sa.phase1_iterations, 0) << "round " << round;
    EXPECT_EQ(sb.phase1_iterations, 0) << "round " << round;
  }
}

}  // namespace
}  // namespace postcard::lp
