// Solver diagnostics and facade behavior: statistics fields, method
// selection, and option plumbing.
#include <gtest/gtest.h>

#include "lp/simplex.h"
#include "lp/solver.h"

namespace postcard::lp {
namespace {

LpModel dantzig() {
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  return m;
}

TEST(SolverDiagnostics, IterationCountsAreReported) {
  const Solution s = RevisedSimplex().solve(dantzig());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(s.iterations, 0);
  EXPECT_GE(s.iterations, s.phase1_iterations);
  EXPECT_GE(s.degenerate_pivots, 0);
  EXPECT_GE(s.bound_flips, 0);
}

TEST(SolverDiagnostics, PhaseOneOnlyWhenNeeded) {
  // Pure <= rows from the origin need no artificials.
  const Solution s = RevisedSimplex().solve(dantzig());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.phase1_iterations, 0);

  // An equality away from the origin does.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int r = m.add_constraint(5.0, 5.0);
  m.add_coefficient(r, x, 1.0);
  const Solution s2 = RevisedSimplex().solve(m);
  ASSERT_EQ(s2.status, SolveStatus::kOptimal);
  EXPECT_GT(s2.phase1_iterations, 0);
}

TEST(SolverDiagnostics, IterationLimitIsHonored) {
  RevisedSimplex::Options opts;
  opts.max_iterations = 1;
  const Solution s = RevisedSimplex(opts).solve(dantzig());
  EXPECT_EQ(s.status, SolveStatus::kIterationLimit);
  EXPECT_LE(s.iterations, 1);
}

TEST(SolverDiagnostics, PerturbationCanBeDisabled) {
  RevisedSimplex::Options opts;
  opts.perturbation = 0.0;
  const Solution s = RevisedSimplex(opts).solve(dantzig());
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(SolverDiagnostics, FacadeMethodSelection) {
  SolverOptions simplex_opts;  // default
  SolverOptions ipm_opts;
  ipm_opts.method = Method::kInteriorPoint;
  const Solution a = solve(dantzig(), simplex_opts);
  const Solution b = solve(dantzig(), ipm_opts);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-5);
  // A simplex vertex solution is exact; the IPM is interior-accurate.
  EXPECT_NEAR(a.objective, -36.0, 1e-9);
}

TEST(SolverDiagnostics, StatusToStringCoversAllValues) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(SolveStatus::kIterationLimit), "iteration_limit");
  EXPECT_STREQ(to_string(SolveStatus::kNumericalFailure), "numerical_failure");
  EXPECT_STREQ(to_string(SolveStatus::kDeadlineExceeded), "deadline_exceeded");
}

TEST(SolveBudget, PivotLimitIsStickyAndDeterministic) {
  SolveBudget b = SolveBudget::pivot_limit(2);
  EXPECT_TRUE(b.limited());
  EXPECT_TRUE(b.charge());
  EXPECT_TRUE(b.charge());
  EXPECT_FALSE(b.charge());
  EXPECT_FALSE(b.charge());  // exhaustion is sticky
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.charged(), 2);
}

TEST(SolveBudget, UnlimitedByDefault) {
  SolveBudget b;
  EXPECT_FALSE(b.limited());
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(b.charge());
  EXPECT_FALSE(b.exhausted());
}

TEST(SolveBudget, ExpiredDeadlineExhaustsImmediately) {
  SolveBudget b = SolveBudget::deadline(0.0);
  EXPECT_TRUE(b.limited());
  EXPECT_FALSE(b.charge());
  EXPECT_TRUE(b.exhausted());
}

TEST(SolverDiagnostics, ZeroPivotBudgetCutsSimplexCooperatively) {
  SolveBudget b = SolveBudget::pivot_limit(0);
  const Solution s = RevisedSimplex().solve(dantzig(), nullptr, &b);
  EXPECT_EQ(s.status, SolveStatus::kDeadlineExceeded);
  EXPECT_EQ(s.iterations, 0);
}

TEST(SolverDiagnostics, GenerousBudgetLeavesSolveBitForBitIdentical) {
  const Solution reference = RevisedSimplex().solve(dantzig());
  SolveBudget b = SolveBudget::pivot_limit(100000);
  const Solution s = RevisedSimplex().solve(dantzig(), nullptr, &b);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_EQ(s.objective, reference.objective);
  EXPECT_EQ(s.x, reference.x);
  EXPECT_EQ(s.iterations, reference.iterations);
  EXPECT_GT(b.charged(), 0);
}

TEST(SolverDiagnostics, FacadeThreadsBudgetToBothMethods) {
  SolveBudget simplex_budget = SolveBudget::pivot_limit(0);
  const Solution a = solve(dantzig(), SolverOptions{}, &simplex_budget);
  EXPECT_EQ(a.status, SolveStatus::kDeadlineExceeded);

  SolverOptions ipm_opts;
  ipm_opts.method = Method::kInteriorPoint;
  SolveBudget ipm_budget = SolveBudget::pivot_limit(0);
  const Solution b = solve(dantzig(), ipm_opts, &ipm_budget);
  EXPECT_EQ(b.status, SolveStatus::kDeadlineExceeded);
}

}  // namespace
}  // namespace postcard::lp
