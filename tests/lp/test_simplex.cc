#include "lp/simplex.h"

#include <gtest/gtest.h>

namespace postcard::lp {
namespace {

Solution run(const LpModel& m) { return RevisedSimplex().solve(m); }

TEST(Simplex, TrivialBoundsOnlyProblem) {
  // min 2x - 3y, 0<=x<=5, 1<=y<=4: x=0, y=4.
  LpModel m;
  m.add_variable(0.0, 5.0, 2.0);
  m.add_variable(1.0, 4.0, -3.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 0.0, 1e-9);
  EXPECT_NEAR(s.x[1], 4.0, 1e-9);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0  (Dantzig's example)
  // => min -3x -5y; optimum x=2, y=6, obj=-36.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);

  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
  EXPECT_NEAR(s.x[y], 6.0, 1e-8);
}

TEST(Simplex, EqualityConstraintNeedsPhase1) {
  // min x + 2y s.t. x + y = 10, x,y >= 0 => x=10, y=0, obj=10.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 2.0);
  const int r = m.add_constraint(10.0, 10.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-8);
  EXPECT_NEAR(s.x[x], 10.0, 1e-8);
  EXPECT_NEAR(s.x[y], 0.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  // x >= 5 and x <= 2 via rows.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  int r1 = m.add_constraint(5.0, kInfinity);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 2.0);
  m.add_coefficient(r2, x, 1.0);
  EXPECT_EQ(run(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsInfeasibleEqualitySystem) {
  // x + y = 1 and x + y = 3.
  LpModel m;
  const int x = m.add_variable(-kInfinity, kInfinity, 0.0);
  const int y = m.add_variable(-kInfinity, kInfinity, 0.0);
  int r1 = m.add_constraint(1.0, 1.0);
  m.add_coefficient(r1, x, 1.0);
  m.add_coefficient(r1, y, 1.0);
  int r2 = m.add_constraint(3.0, 3.0);
  m.add_coefficient(r2, x, 1.0);
  m.add_coefficient(r2, y, 1.0);
  EXPECT_EQ(run(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x, x >= 0, no upper bound.
  LpModel m;
  m.add_variable(0.0, kInfinity, -1.0);
  EXPECT_EQ(run(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, DetectsUnboundedThroughConstraint) {
  // min -x s.t. x - y <= 1, x,y >= 0: ray (x,y)->(t+1,t).
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  const int y = m.add_variable(0.0, kInfinity, 0.0);
  int r = m.add_constraint(-kInfinity, 1.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, -1.0);
  EXPECT_EQ(run(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, FreeVariableEquality) {
  // min |structure|: free y. min y s.t. y = 3 by equality with free var.
  LpModel m;
  const int y = m.add_variable(-kInfinity, kInfinity, 1.0);
  const int r = m.add_constraint(3.0, 3.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[y], 3.0, 1e-9);
}

TEST(Simplex, RangedRowActsAsTwoSidedConstraint) {
  // min x + y s.t. 2 <= x + y <= 6, x,y in [0, 10] => obj 2.
  LpModel m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 1.0);
  const int r = m.add_constraint(2.0, 6.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y, x in [-5,-1], y in [-2, 3], x + y >= -6 => x+y=-6 on the row.
  LpModel m;
  const int x = m.add_variable(-5.0, -1.0, 1.0);
  const int y = m.add_variable(-2.0, 3.0, 1.0);
  const int r = m.add_constraint(-6.0, kInfinity);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-8);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (cap 20, 30) -> 3 consumers (demand 10, 25, 15).
  // costs: s0: [2, 4, 5], s1: [3, 1, 7].
  LpModel m;
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  const double cap[2] = {20, 30};
  const double dem[3] = {10, 25, 15};
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = m.add_variable(0.0, kInfinity, cost[i][j]);
    }
  }
  for (int i = 0; i < 2; ++i) {
    const int r = m.add_constraint(-kInfinity, cap[i]);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, v[i][j], 1.0);
  }
  for (int j = 0; j < 3; ++j) {
    const int r = m.add_constraint(dem[j], dem[j]);
    for (int i = 0; i < 2; ++i) m.add_coefficient(r, v[i][j], 1.0);
  }
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LT(m.max_violation(s.x), 1e-7);
  // Known optimum: s0 -> {c0:5, c2:15}, s1 -> {c0:5, c1:25}:
  // 10 + 75 + 15 + 25 = 125.
  EXPECT_NEAR(s.objective, 125.0, 1e-7);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Highly degenerate: many redundant identical rows.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -1.0);
  const int y = m.add_variable(0.0, kInfinity, -1.0);
  for (int k = 0; k < 12; ++k) {
    const int r = m.add_constraint(-kInfinity, 4.0);
    m.add_coefficient(r, x, 1.0);
    m.add_coefficient(r, y, 1.0);
  }
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
}

TEST(Simplex, DualValuesSatisfyComplementarySlackness) {
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.duals.size(), 2u);
  // Strong duality: c^T x == y^T b for binding rows (b = [12, 18]).
  EXPECT_NEAR(s.objective, s.duals[0] * 12.0 + s.duals[1] * 18.0, 1e-7);
  // Reduced costs of basic structurals are ~0.
  for (int j = 0; j < 2; ++j) {
    if (s.x[j] > 1e-6) {
      EXPECT_NEAR(s.reduced_costs[j], 0.0, 1e-7);
    }
  }
}

TEST(Simplex, EmptyModel) {
  LpModel m;
  const auto s = run(m);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, FixedVariablesRespected) {
  // x fixed at 2; min y s.t. y >= x.
  LpModel m;
  const int x = m.add_variable(2.0, 2.0, 0.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  const int r = m.add_constraint(0.0, kInfinity);  // y - x >= 0
  m.add_coefficient(r, y, 1.0);
  m.add_coefficient(r, x, -1.0);
  const auto s = run(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-9);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
}

}  // namespace
}  // namespace postcard::lp
