#include "lp/presolve.h"

#include <gtest/gtest.h>

#include "lp/solver.h"

namespace postcard::lp {
namespace {

TEST(Presolve, RemovesFixedVariablesAndShiftsRowBounds) {
  // x fixed at 3 inside x + y + z = 5: the reduced row must read y + z = 2.
  LpModel m;
  const int x = m.add_variable(3.0, 3.0, 1.0);  // fixed
  const int y = m.add_variable(0.0, 10.0, 1.0);
  const int z = m.add_variable(0.0, 10.0, 2.0);
  const int r = m.add_constraint(5.0, 5.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  m.add_coefficient(r, z, 1.0);

  Presolver p;
  auto red = p.reduce(m);
  ASSERT_FALSE(red.decided.has_value());
  EXPECT_EQ(red.reduced.num_variables(), 2);
  EXPECT_EQ(p.removed_cols(), 1);
  ASSERT_EQ(red.reduced.num_constraints(), 1);
  EXPECT_DOUBLE_EQ(red.reduced.row_lower()[0], 2.0);
  EXPECT_DOUBLE_EQ(red.reduced.row_upper()[0], 2.0);

  // End-to-end through the facade: y absorbs the remainder (cost 1 < 2).
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[x], 3.0);
  EXPECT_NEAR(s.x[y], 2.0, 1e-8);
  EXPECT_NEAR(s.objective, 3.0 + 2.0, 1e-8);
}

TEST(Presolve, DropsEmptyRowsAndDetectsContradiction) {
  LpModel feasible;
  feasible.add_variable(0.0, 1.0, 0.0);
  feasible.add_constraint(-1.0, 1.0);  // empty row containing 0
  Presolver p1;
  EXPECT_FALSE(p1.reduce(feasible).decided.has_value());

  LpModel infeasible;
  infeasible.add_variable(0.0, 1.0, 0.0);
  infeasible.add_constraint(2.0, 3.0);  // empty row excluding 0
  Presolver p2;
  auto red = p2.reduce(infeasible);
  ASSERT_TRUE(red.decided.has_value());
  EXPECT_EQ(*red.decided, SolveStatus::kInfeasible);
}

TEST(Presolve, SingletonRowTightensBound) {
  // max x (cost -1) with the singleton row x <= 7: the row becomes a bound,
  // the then-empty column is fixed at that bound, and postsolve reports 7.
  LpModel m;
  const int x = m.add_variable(0.0, 100.0, -1.0);
  const int r = m.add_constraint(-kInfinity, 7.0);
  m.add_coefficient(r, x, 1.0);
  Presolver p;
  auto red = p.reduce(m);
  ASSERT_FALSE(red.decided.has_value());
  EXPECT_EQ(red.reduced.num_constraints(), 0);
  EXPECT_EQ(red.reduced.num_variables(), 0);  // cascaded into an empty column

  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[x], 7.0);
  EXPECT_DOUBLE_EQ(s.objective, -7.0);
}

TEST(Presolve, SingletonRowWithNegativeCoefficient) {
  // max x with -2x >= -6 <=> x <= 3; free variable, so the implied upper
  // bound is the only thing keeping the problem bounded.
  LpModel m;
  const int x = m.add_variable(-kInfinity, kInfinity, -1.0);
  const int r = m.add_constraint(-6.0, kInfinity);
  m.add_coefficient(r, x, -2.0);
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(s.x[x], 3.0);
  EXPECT_DOUBLE_EQ(s.objective, -3.0);
}

TEST(Presolve, SingletonRowsCanProveInfeasibility) {
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  int r1 = m.add_constraint(5.0, kInfinity);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 2.0);
  m.add_coefficient(r2, x, 1.0);
  Presolver p;
  auto red = p.reduce(m);
  ASSERT_TRUE(red.decided.has_value());
  EXPECT_EQ(*red.decided, SolveStatus::kInfeasible);
}

TEST(Presolve, EmptyColumnFixedAtOptimalBound) {
  LpModel m;
  m.add_variable(1.0, 4.0, 2.0);    // cost>0 -> lower
  m.add_variable(1.0, 4.0, -2.0);   // cost<0 -> upper
  m.add_variable(-3.0, 5.0, 0.0);   // cost 0 -> any feasible value
  Presolver p;
  auto red = p.reduce(m);
  ASSERT_FALSE(red.decided.has_value());
  EXPECT_EQ(red.reduced.num_variables(), 0);

  Solution inner;
  inner.status = SolveStatus::kOptimal;
  const auto full = p.postsolve(m, inner);
  EXPECT_DOUBLE_EQ(full.x[0], 1.0);
  EXPECT_DOUBLE_EQ(full.x[1], 4.0);
  EXPECT_GE(full.x[2], -3.0);
  EXPECT_LE(full.x[2], 5.0);
  EXPECT_DOUBLE_EQ(full.objective, 2.0 - 8.0);
}

TEST(Presolve, EmptyColumnUnbounded) {
  LpModel m;
  m.add_variable(-kInfinity, kInfinity, 1.0);  // min x, x free, no rows
  Presolver p;
  auto red = p.reduce(m);
  ASSERT_TRUE(red.decided.has_value());
  EXPECT_EQ(*red.decided, SolveStatus::kUnbounded);
}

TEST(Presolve, PostsolveRestoresFullSolution) {
  // Mixed model: one fixed var, one singleton row, one real row.
  LpModel m;
  const int x = m.add_variable(2.0, 2.0, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 3.0);
  const int z = m.add_variable(0.0, kInfinity, 1.0);
  int r1 = m.add_constraint(-kInfinity, 8.0);  // singleton: y <= 8
  m.add_coefficient(r1, y, 1.0);
  int r2 = m.add_constraint(6.0, 6.0);  // x + y + z = 6
  m.add_coefficient(r2, x, 1.0);
  m.add_coefficient(r2, y, 1.0);
  m.add_coefficient(r2, z, 1.0);

  const auto s = solve(m);  // facade runs presolve + postsolve
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  ASSERT_EQ(s.x.size(), 3u);
  EXPECT_DOUBLE_EQ(s.x[x], 2.0);
  EXPECT_NEAR(s.x[y] + s.x[z], 4.0, 1e-8);
  EXPECT_NEAR(s.objective, 2.0 + 4.0, 1e-8);  // z takes the slack (cost 1 < 3)
  EXPECT_NEAR(s.x[z], 4.0, 1e-8);
  EXPECT_LT(m.max_violation(s.x), 1e-7);
}

TEST(Presolve, FacadeMatchesNoPresolveSolve) {
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);

  SolverOptions with, without;
  with.presolve = true;
  without.presolve = false;
  const auto a = solve(m, with);
  const auto b = solve(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-8);
}

}  // namespace
}  // namespace postcard::lp
