#include "lp/model.h"

#include <gtest/gtest.h>

namespace postcard::lp {
namespace {

TEST(LpModel, BuildsVariablesAndConstraints) {
  LpModel m;
  const int x = m.add_variable(0.0, 10.0, 1.5, "x");
  const int y = m.add_variable(-kInfinity, kInfinity, -2.0, "y");
  const int r = m.add_constraint(1.0, 1.0, "balance");
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, -1.0);

  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.num_constraints(), 1);
  EXPECT_EQ(m.num_entries(), 2);
  EXPECT_EQ(m.variable_name(x), "x");
  EXPECT_EQ(m.constraint_name(r), "balance");
  EXPECT_DOUBLE_EQ(m.objective()[y], -2.0);
}

TEST(LpModel, RejectsCrossedBounds) {
  LpModel m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(m.add_constraint(5.0, 2.0), std::invalid_argument);
}

TEST(LpModel, RejectsOutOfRangeCoefficients) {
  LpModel m;
  m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint(0.0, 1.0);
  EXPECT_THROW(m.add_coefficient(1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(m.add_coefficient(0, 1, 1.0), std::out_of_range);
}

TEST(LpModel, IgnoresZeroCoefficients) {
  LpModel m;
  m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint(0.0, 1.0);
  m.add_coefficient(0, 0, 0.0);
  EXPECT_EQ(m.num_entries(), 0);
}

TEST(LpModel, MatrixAccumulatesRepeatedCoefficients) {
  LpModel m;
  m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint(0.0, 1.0);
  m.add_coefficient(0, 0, 2.0);
  m.add_coefficient(0, 0, 3.0);
  const auto a = m.build_matrix();
  EXPECT_EQ(a.nonzeros(), 1);
  EXPECT_DOUBLE_EQ(a.coeff(0, 0), 5.0);
}

TEST(LpModel, ObjectiveValueAndViolation) {
  LpModel m;
  m.add_variable(0.0, 4.0, 2.0);
  m.add_variable(0.0, 4.0, -1.0);
  const int r = m.add_constraint(-kInfinity, 5.0);
  m.add_coefficient(r, 0, 1.0);
  m.add_coefficient(r, 1, 1.0);

  EXPECT_DOUBLE_EQ(m.objective_value({1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(m.max_violation({1.0, 2.0}), 0.0);
  // Row violated by 1, upper bound violated by 1.
  EXPECT_DOUBLE_EQ(m.max_violation({5.0, 1.0}), 1.0);
  // Lower bound violated by 2.
  EXPECT_DOUBLE_EQ(m.max_violation({-2.0, 0.0}), 2.0);
}

TEST(LpModel, BoundSetters) {
  LpModel m;
  m.add_variable(0.0, 1.0, 0.0);
  m.add_constraint(0.0, 1.0);
  m.set_variable_bounds(0, -1.0, 2.0);
  m.set_constraint_bounds(0, 0.5, 0.5);
  m.set_objective(0, 9.0);
  EXPECT_DOUBLE_EQ(m.col_lower()[0], -1.0);
  EXPECT_DOUBLE_EQ(m.col_upper()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.row_lower()[0], 0.5);
  EXPECT_DOUBLE_EQ(m.objective()[0], 9.0);
  EXPECT_THROW(m.set_variable_bounds(0, 3.0, 2.0), std::invalid_argument);
}

}  // namespace
}  // namespace postcard::lp
