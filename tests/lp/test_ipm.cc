#include "lp/ipm.h"

#include <gtest/gtest.h>

#include "lp/solver.h"

namespace postcard::lp {
namespace {

Solution run_ipm(const LpModel& m) {
  SolverOptions opts;
  opts.method = Method::kInteriorPoint;
  return solve(m, opts);
}

TEST(InteriorPoint, ClassicTwoVariableLp) {
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);

  const auto s = run_ipm(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-5);
  EXPECT_NEAR(s.x[x], 2.0, 1e-4);
  EXPECT_NEAR(s.x[y], 6.0, 1e-4);
}

TEST(InteriorPoint, EqualityConstraints) {
  // min x + 2y s.t. x + y = 10, x,y >= 0.
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, 1.0);
  const int y = m.add_variable(0.0, kInfinity, 2.0);
  const int r = m.add_constraint(10.0, 10.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run_ipm(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 10.0, 1e-5);
  EXPECT_NEAR(s.x[x], 10.0, 1e-4);
}

TEST(InteriorPoint, BoxBoundsBothSides) {
  // min -x - 2y, x in [0,3], y in [1,2], x + y <= 4 => x=2,y=2.
  LpModel m;
  const int x = m.add_variable(0.0, 3.0, -1.0);
  const int y = m.add_variable(1.0, 2.0, -2.0);
  const int r = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto s = run_ipm(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-5);
  EXPECT_NEAR(s.x[x], 2.0, 1e-4);
  EXPECT_NEAR(s.x[y], 2.0, 1e-4);
}

TEST(InteriorPoint, TransportationProblem) {
  LpModel m;
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  const double cap[2] = {20, 30};
  const double dem[3] = {10, 25, 15};
  int v[2][3];
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 3; ++j) {
      v[i][j] = m.add_variable(0.0, kInfinity, cost[i][j]);
    }
  }
  for (int i = 0; i < 2; ++i) {
    const int r = m.add_constraint(-kInfinity, cap[i]);
    for (int j = 0; j < 3; ++j) m.add_coefficient(r, v[i][j], 1.0);
  }
  for (int j = 0; j < 3; ++j) {
    const int r = m.add_constraint(dem[j], dem[j]);
    for (int i = 0; i < 2; ++i) m.add_coefficient(r, v[i][j], 1.0);
  }
  const auto s = run_ipm(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 125.0, 1e-4);
  EXPECT_LT(m.max_violation(s.x), 1e-5);
}

TEST(InteriorPoint, AgreesWithSimplexOnRangedRows) {
  LpModel m;
  const int x = m.add_variable(0.0, 10.0, 1.0);
  const int y = m.add_variable(0.0, 10.0, 2.5);
  const int r = m.add_constraint(2.0, 6.0);
  m.add_coefficient(r, x, 1.0);
  m.add_coefficient(r, y, 1.0);
  const auto ipm = run_ipm(m);
  const auto spx = solve(m);
  ASSERT_EQ(ipm.status, SolveStatus::kOptimal);
  ASSERT_EQ(spx.status, SolveStatus::kOptimal);
  EXPECT_NEAR(ipm.objective, spx.objective, 1e-5);
}

TEST(InteriorPoint, FixedVariableSurvivesViaPresolve) {
  LpModel m;
  const int x = m.add_variable(2.0, 2.0, 0.0);
  const int y = m.add_variable(0.0, kInfinity, 1.0);
  const int r = m.add_constraint(0.0, kInfinity);  // y >= x
  m.add_coefficient(r, y, 1.0);
  m.add_coefficient(r, x, -1.0);
  const auto s = run_ipm(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-6);
  EXPECT_NEAR(s.x[y], 2.0, 1e-4);
}

}  // namespace
}  // namespace postcard::lp
