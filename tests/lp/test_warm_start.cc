// Warm starts: reusing a basis on an extended model (the column-generation
// pattern) must reach the same optimum, typically in far fewer iterations,
// and incompatible snapshots must fall back to the cold start silently.
#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace postcard::lp {
namespace {

LpModel base_model() {
  // min -3x - 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (optimal -36).
  LpModel m;
  const int x = m.add_variable(0.0, kInfinity, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  int r2 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r2, y, 2.0);
  int r3 = m.add_constraint(-kInfinity, 18.0);
  m.add_coefficient(r3, x, 3.0);
  m.add_coefficient(r3, y, 2.0);
  return m;
}

TEST(WarmStart, ReuseOnIdenticalModelCostsNoPivots) {
  LpModel m = base_model();
  RevisedSimplex solver;
  const Solution cold = solver.solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  const auto warm = solver.extract_warm_start();
  ASSERT_FALSE(warm.basis.empty());

  RevisedSimplex second;
  const Solution hot = second.solve(m, &warm);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-9);
  EXPECT_EQ(hot.iterations, 0);
}

TEST(WarmStart, ExtendedModelWithNewColumn) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  const auto warm = solver.extract_warm_start();

  // Append an attractive new column touching row 3.
  const int z = m.add_variable(0.0, 2.0, -10.0);
  m.add_coefficient(2, z, 1.0);

  RevisedSimplex hot_solver;
  const Solution hot = hot_solver.solve(m, &warm);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);

  RevisedSimplex cold_solver;
  const Solution cold = cold_solver.solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_NEAR(hot.objective, cold.objective, 1e-8);
  EXPECT_LE(hot.iterations, cold.iterations);
}

TEST(WarmStart, IncompatibleSnapshotFallsBackToColdStart) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  auto warm = solver.extract_warm_start();
  warm.basis.pop_back();  // wrong row count -> rejected

  RevisedSimplex second;
  const Solution s = second.solve(m, &warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(WarmStart, GarbageBasisIsRejectedNotTrusted) {
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  auto warm = solver.extract_warm_start();
  // Duplicate the first basic variable across all rows: invalid.
  for (auto& b : warm.basis) b = warm.basis[0];
  RevisedSimplex second;
  const Solution s = second.solve(m, &warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(WarmStart, EmptySnapshotMeansCold) {
  LpModel m = base_model();
  RevisedSimplex::WarmStart empty;
  RevisedSimplex solver;
  const Solution s = solver.solve(m, &empty);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(WarmStart, SolutionReportsWarmStartedFlag) {
  LpModel m = base_model();
  RevisedSimplex solver;
  const Solution cold = solver.solve(m);
  ASSERT_EQ(cold.status, SolveStatus::kOptimal);
  EXPECT_FALSE(cold.warm_started);
  const auto warm = solver.extract_warm_start();

  RevisedSimplex second;
  const Solution hot = second.solve(m, &warm);
  ASSERT_EQ(hot.status, SolveStatus::kOptimal);
  EXPECT_TRUE(hot.warm_started);
  EXPECT_EQ(hot.phase1_iterations, 0);
}

TEST(WarmStart, SingularRestoredBasisFallsBackCleanly) {
  // x and y have identical columns, so a basis holding both is singular:
  // the statuses restore fine but the factorization must reject it and the
  // solve must fall back to a cold start, not divide by a zero pivot.
  LpModel m;
  const int x = m.add_variable(0.0, 10.0, -1.0);
  const int y = m.add_variable(0.0, 10.0, -1.0);
  const int r1 = m.add_constraint(-kInfinity, 4.0);
  m.add_coefficient(r1, x, 1.0);
  m.add_coefficient(r1, y, 1.0);
  const int r2 = m.add_constraint(-kInfinity, 6.0);
  m.add_coefficient(r2, x, 1.0);
  m.add_coefficient(r2, y, 1.0);

  RevisedSimplex::WarmStart warm;
  warm.col_status = {RevisedSimplex::WarmStart::kBasic,
                     RevisedSimplex::WarmStart::kBasic};
  warm.row_status = {RevisedSimplex::WarmStart::kAtUpper,
                     RevisedSimplex::WarmStart::kAtUpper};
  warm.basis = {x, y};  // basis matrix [[1,1],[1,1]]: singular

  RevisedSimplex solver;
  const Solution s = solver.solve(m, &warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, -4.0, 1e-8);
}

TEST(WarmStart, InfeasibleWarmPointFallsBackCleanly) {
  // A bound change between snapshot and reuse can make the restored basic
  // point violate its bounds. Phase 1 is skipped on warm starts, so the
  // solver must detect the infeasibility up front and start cold.
  LpModel m = base_model();
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(m).status, SolveStatus::kOptimal);
  const auto warm = solver.extract_warm_start();
  ASSERT_FALSE(warm.basis.empty());

  // Raise x's lower bound above its restored basic value: the snapshot
  // still restores and factorizes, but the implied point has x = 2 < 3.
  m.set_variable_bounds(0, 3.0, kInfinity);
  RevisedSimplex second;
  const Solution s = second.solve(m, &warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, -31.5, 1e-8);  // x = 3, y = 4.5
}

TEST(WarmStart, SnapshotFromWiderModelIsRejected) {
  // A snapshot taken on a model with extra columns (the cross-slot case:
  // last slot's master had path columns this slot's master lacks) cannot
  // be restored verbatim; it must be rejected, not read out of bounds.
  LpModel wide = base_model();
  const int extra = wide.add_variable(0.0, 2.0, -10.0);
  wide.add_coefficient(2, extra, 1.0);
  RevisedSimplex solver;
  ASSERT_EQ(solver.solve(wide).status, SolveStatus::kOptimal);
  const auto warm = solver.extract_warm_start();
  ASSERT_GT(warm.col_status.size(), 2u);

  LpModel narrow = base_model();
  RevisedSimplex second;
  const Solution s = second.solve(narrow, &warm);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_FALSE(s.warm_started);
  EXPECT_NEAR(s.objective, -36.0, 1e-8);
}

TEST(WarmStart, SequenceOfExtensionsTracksOptimum) {
  // Repeatedly add columns (CG pattern) and check the warm-started optimum
  // matches a cold solve every time.
  LpModel m;
  const int r = m.add_constraint(10.0, 10.0);
  const int x0 = m.add_variable(0.0, kInfinity, 5.0);
  m.add_coefficient(r, x0, 1.0);

  RevisedSimplex warm_solver;
  ASSERT_EQ(warm_solver.solve(m).status, SolveStatus::kOptimal);
  auto warm = warm_solver.extract_warm_start();

  for (int step = 0; step < 5; ++step) {
    const double cost = 4.0 - step;  // each new column is cheaper
    const int v = m.add_variable(0.0, kInfinity, cost);
    m.add_coefficient(r, v, 1.0);

    const Solution hot = warm_solver.solve(m, &warm);
    warm = warm_solver.extract_warm_start();
    ASSERT_EQ(hot.status, SolveStatus::kOptimal) << "step " << step;
    EXPECT_NEAR(hot.objective, cost * 10.0, 1e-8) << "step " << step;

    RevisedSimplex cold;
    EXPECT_NEAR(cold.solve(m).objective, hot.objective, 1e-8) << "step " << step;
  }
}

}  // namespace
}  // namespace postcard::lp
