// Property-based cross-checks: random feasible LPs solved by both the
// simplex and the interior-point method must agree on the optimal objective,
// and every reported optimum must be primal feasible.
#include <gtest/gtest.h>

#include <random>

#include "lp/solver.h"

namespace postcard::lp {
namespace {

struct RandomLpParams {
  int rows;
  int cols;
  double density;
  unsigned seed;
};

// Generates a random LP that is feasible by construction: bounds are placed
// around a known interior point x0 and row bounds bracket A x0.
LpModel random_feasible_lp(const RandomLpParams& p) {
  std::mt19937 rng(p.seed);
  std::uniform_real_distribution<double> val(-2.0, 2.0);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::uniform_real_distribution<double> width(0.5, 5.0);

  LpModel m;
  std::vector<double> x0(static_cast<std::size_t>(p.cols));
  for (int j = 0; j < p.cols; ++j) {
    x0[j] = val(rng);
    const double lo = x0[j] - width(rng);
    const double hi = x0[j] + width(rng);
    m.add_variable(lo, hi, val(rng));
  }
  for (int i = 0; i < p.rows; ++i) {
    std::vector<std::pair<int, double>> row;
    double activity = 0.0;
    for (int j = 0; j < p.cols; ++j) {
      if (unif(rng) < p.density) {
        const double a = val(rng);
        if (a != 0.0) {
          row.emplace_back(j, a);
          activity += a * x0[j];
        }
      }
    }
    const int kind = static_cast<int>(unif(rng) * 3.0);
    int r;
    if (kind == 0) {
      r = m.add_constraint(activity - width(rng), kInfinity);
    } else if (kind == 1) {
      r = m.add_constraint(-kInfinity, activity + width(rng));
    } else {
      r = m.add_constraint(activity - width(rng), activity + width(rng));
    }
    for (const auto& [j, a] : row) m.add_coefficient(r, j, a);
  }
  return m;
}

class RandomLpTest : public ::testing::TestWithParam<RandomLpParams> {};

TEST_P(RandomLpTest, SimplexFindsFeasibleOptimum) {
  const LpModel m = random_feasible_lp(GetParam());
  const auto s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LT(m.max_violation(s.x), 1e-6);
}

TEST_P(RandomLpTest, SimplexAndIpmAgree) {
  const LpModel m = random_feasible_lp(GetParam());
  const auto spx = solve(m);
  SolverOptions iopts;
  iopts.method = Method::kInteriorPoint;
  const auto ipm = solve(m, iopts);
  ASSERT_EQ(spx.status, SolveStatus::kOptimal);
  ASSERT_EQ(ipm.status, SolveStatus::kOptimal);
  const double scale = 1.0 + std::abs(spx.objective);
  EXPECT_LT(std::abs(spx.objective - ipm.objective) / scale, 1e-4);
  // IPM objective can only be >= the simplex optimum (both minimize).
  EXPECT_GT(ipm.objective - spx.objective, -1e-4 * scale);
}

TEST_P(RandomLpTest, PresolveDoesNotChangeOptimum) {
  const LpModel m = random_feasible_lp(GetParam());
  SolverOptions with, without;
  with.presolve = true;
  without.presolve = false;
  const auto a = solve(m, with);
  const auto b = solve(m, without);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-6 * (1.0 + std::abs(a.objective)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomLpTest,
    ::testing::Values(RandomLpParams{4, 6, 0.6, 1}, RandomLpParams{8, 12, 0.5, 2},
                      RandomLpParams{15, 25, 0.3, 3}, RandomLpParams{25, 40, 0.2, 4},
                      RandomLpParams{40, 60, 0.15, 5}, RandomLpParams{10, 10, 0.8, 6},
                      RandomLpParams{30, 20, 0.3, 7}, RandomLpParams{50, 80, 0.1, 8}),
    [](const ::testing::TestParamInfo<RandomLpParams>& info) {
      return "r" + std::to_string(info.param.rows) + "c" +
             std::to_string(info.param.cols) + "s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace postcard::lp
