// MPS round-trips: write_mps(read_mps(x)) must preserve the optimum, and
// hand-written MPS fixtures must parse into the expected model.
#include "lp/mps.h"

#include <gtest/gtest.h>

#include <sstream>

#include "lp/solver.h"

namespace postcard::lp {
namespace {

LpModel sample_model() {
  // min -3x - 5y + z, with a ranged row, an equality and mixed bounds.
  LpModel m;
  const int x = m.add_variable(0.0, 4.0, -3.0);
  const int y = m.add_variable(0.0, kInfinity, -5.0);
  const int z = m.add_variable(-kInfinity, kInfinity, 1.0);
  const int w = m.add_variable(2.5, 2.5, 0.0);  // fixed
  int r1 = m.add_constraint(-kInfinity, 12.0);
  m.add_coefficient(r1, y, 2.0);
  int r2 = m.add_constraint(2.0, 6.0);  // ranged
  m.add_coefficient(r2, x, 1.0);
  m.add_coefficient(r2, y, 1.0);
  int r3 = m.add_constraint(3.0, 3.0);  // equality
  m.add_coefficient(r3, z, 1.0);
  m.add_coefficient(r3, w, 2.0);
  int r4 = m.add_constraint(1.0, kInfinity);  // >=
  m.add_coefficient(r4, x, 1.0);
  return m;
}

TEST(Mps, RoundTripPreservesOptimum) {
  const LpModel original = sample_model();
  const Solution a = solve(original);
  ASSERT_EQ(a.status, SolveStatus::kOptimal);

  std::stringstream buffer;
  write_mps(original, buffer);
  const LpModel reread = read_mps(buffer);
  EXPECT_EQ(reread.num_variables(), original.num_variables());
  EXPECT_EQ(reread.num_constraints(), original.num_constraints());

  const Solution b = solve(reread);
  ASSERT_EQ(b.status, SolveStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-8);
}

TEST(Mps, DoubleRoundTripIsStable) {
  std::stringstream first, second;
  write_mps(sample_model(), first);
  write_mps(read_mps(first), second);
  // Re-reading the second dump still solves to the same optimum.
  const Solution s = solve(read_mps(second));
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, solve(sample_model()).objective, 1e-8);
}

TEST(Mps, ParsesHandWrittenFixture) {
  const char* text = R"(* a comment
NAME TINY
ROWS
 N COST
 L CAP
 E BAL
COLUMNS
    X COST -2 CAP 1
    X BAL 1
    Y COST -3 CAP 2
    Y BAL -1
RHS
    RHS1 CAP 10 BAL 0
BOUNDS
 UP BND1 X 6
ENDATA
)";
  std::istringstream in(text);
  const LpModel m = read_mps(in);
  ASSERT_EQ(m.num_variables(), 2);
  ASSERT_EQ(m.num_constraints(), 2);
  // min -2X -3Y, X + 2Y <= 10, X = Y, X in [0,6], Y >= 0:
  // X = Y = t, 3t <= 10 -> t = 10/3, obj = -50/3.
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -50.0 / 3.0, 1e-7);
}

TEST(Mps, RangesSemantics) {
  const char* text = R"(NAME RNG
ROWS
 N COST
 L ROW
COLUMNS
    X COST 1 ROW 1
RHS
    RHS1 ROW 8
RANGES
    RNG1 ROW 3
BOUNDS
 FR BND1 X
ENDATA
)";
  std::istringstream in(text);
  const LpModel m = read_mps(in);
  // L row 8 with range 3 covers [5, 8]; min X -> X = 5.
  const Solution s = solve(m);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
}

TEST(Mps, RejectsMalformedInput) {
  {
    std::istringstream in("GARBAGE SECTION\n");
    EXPECT_THROW(read_mps(in), std::runtime_error);
  }
  {
    std::istringstream in("ROWS\n Q BADTYPE\nENDATA\n");
    EXPECT_THROW(read_mps(in), std::runtime_error);
  }
  {
    // Unknown row referenced from COLUMNS.
    std::istringstream in(
        "ROWS\n N COST\nCOLUMNS\n    X NOPE 1\nENDATA\n");
    EXPECT_THROW(read_mps(in), std::runtime_error);
  }
  {
    // Missing ENDATA.
    std::istringstream in("ROWS\n N COST\n");
    EXPECT_THROW(read_mps(in), std::runtime_error);
  }
  {
    // Malformed number.
    std::istringstream in(
        "ROWS\n N COST\n E R\nCOLUMNS\n    X R abc\nENDATA\n");
    EXPECT_THROW(read_mps(in), std::runtime_error);
  }
}

TEST(Mps, WritesInfeasibleAndUnboundedModelsFaithfully) {
  // Unbounded: min -x, x free, no rows.
  LpModel unbounded;
  unbounded.add_variable(-kInfinity, kInfinity, -1.0);
  std::stringstream buf;
  write_mps(unbounded, buf);
  EXPECT_EQ(solve(read_mps(buf)).status, SolveStatus::kUnbounded);

  // Infeasible: 0 <= x <= 1 with x >= 5.
  LpModel infeasible;
  const int x = infeasible.add_variable(0.0, 1.0, 0.0);
  const int r = infeasible.add_constraint(5.0, kInfinity);
  infeasible.add_coefficient(r, x, 1.0);
  std::stringstream buf2;
  write_mps(infeasible, buf2);
  EXPECT_EQ(solve(read_mps(buf2)).status, SolveStatus::kInfeasible);
}

}  // namespace
}  // namespace postcard::lp
