#include "net/time_expanded.h"

#include <gtest/gtest.h>

#include <cmath>

namespace postcard::net {
namespace {

Topology square() {
  // 0 -> 1 -> 2, 0 -> 2 direct.
  Topology t(3);
  t.set_link(0, 1, 5.0, 1.0);
  t.set_link(1, 2, 5.0, 2.0);
  t.set_link(0, 2, 7.0, 9.0);
  return t;
}

TEST(TimeExpandedGraph, LayerStructure) {
  const auto g = TimeExpandedGraph(square(), 3, 4);
  EXPECT_EQ(g.num_layers(), 5);
  EXPECT_EQ(g.start_slot(), 3);
  // Per transition: 3 links + 3 storage arcs.
  EXPECT_EQ(g.num_arcs(), 4 * (3 + 3));
  for (int layer = 0; layer < 4; ++layer) {
    const auto [begin, end] = g.layer_arc_range(layer);
    EXPECT_EQ(end - begin, 6);
    for (int a = begin; a < end; ++a) {
      EXPECT_EQ(g.arcs()[a].layer, layer);
    }
  }
}

TEST(TimeExpandedGraph, StorageArcsAreFreeAndUncapped) {
  const auto g = TimeExpandedGraph(square(), 0, 2);
  int storage_count = 0;
  for (const TimeArc& arc : g.arcs()) {
    if (arc.storage()) {
      ++storage_count;
      EXPECT_EQ(arc.from_node, arc.to_node);
      EXPECT_EQ(arc.link_index, -1);
      EXPECT_DOUBLE_EQ(arc.unit_cost, 0.0);
      EXPECT_TRUE(std::isinf(arc.capacity));
    }
  }
  EXPECT_EQ(storage_count, 2 * 3);
}

TEST(TimeExpandedGraph, StorageCanBeDisabled) {
  const auto g = TimeExpandedGraph(square(), 0, 2, nullptr,
                                   std::numeric_limits<double>::infinity(),
                                   /*enable_storage=*/false);
  EXPECT_EQ(g.num_arcs(), 2 * 3);
  for (const TimeArc& arc : g.arcs()) EXPECT_FALSE(arc.storage());
}

TEST(TimeExpandedGraph, StorageCapacityCap) {
  const auto g = TimeExpandedGraph(square(), 0, 1, nullptr, 42.0);
  for (const TimeArc& arc : g.arcs()) {
    if (arc.storage()) {
      EXPECT_DOUBLE_EQ(arc.capacity, 42.0);
    }
  }
}

TEST(TimeExpandedGraph, ResidualCapacityCallbackPerSlot) {
  // Residual shrinks with the slot number: slot s leaves capacity 5 - s.
  const auto g = TimeExpandedGraph(
      square(), 2, 3, [](int /*link*/, int slot) { return 5.0 - slot; });
  for (const TimeArc& arc : g.arcs()) {
    if (!arc.storage()) {
      EXPECT_DOUBLE_EQ(arc.capacity, 5.0 - (2 + arc.layer)) << "layer " << arc.layer;
    }
  }
}

TEST(TimeExpandedGraph, NegativeResidualClampsToZero) {
  const auto g = TimeExpandedGraph(square(), 0, 1,
                                   [](int, int) { return -3.0; });
  for (const TimeArc& arc : g.arcs()) {
    if (!arc.storage()) {
      EXPECT_DOUBLE_EQ(arc.capacity, 0.0);
    }
  }
}

TEST(TimeExpandedGraph, LinkAttributesCarryOver) {
  const Topology t = square();
  const auto g = TimeExpandedGraph(t, 0, 1);
  for (const TimeArc& arc : g.arcs()) {
    if (arc.storage()) continue;
    EXPECT_DOUBLE_EQ(arc.unit_cost, t.link(arc.link_index).unit_cost);
    EXPECT_EQ(arc.from_node, t.link(arc.link_index).from);
    EXPECT_EQ(arc.to_node, t.link(arc.link_index).to);
  }
}

TEST(TimeExpandedGraph, NodeIdsAreUnique) {
  const auto g = TimeExpandedGraph(square(), 0, 3);
  std::vector<char> seen(static_cast<std::size_t>(g.num_nodes()), 0);
  for (int layer = 0; layer < g.num_layers(); ++layer) {
    for (int dc = 0; dc < g.num_datacenters(); ++dc) {
      const int id = g.node_id(dc, layer);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, g.num_nodes());
      EXPECT_FALSE(seen[id]);
      seen[id] = 1;
    }
  }
}

TEST(TimeExpandedGraph, RejectsBadArguments) {
  EXPECT_THROW(TimeExpandedGraph(square(), 0, 0), std::invalid_argument);
  EXPECT_THROW(TimeExpandedGraph(square(), -1, 2), std::invalid_argument);
}

}  // namespace
}  // namespace postcard::net
