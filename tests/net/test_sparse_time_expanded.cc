#include "net/sparse_time_expanded.h"

#include <gtest/gtest.h>

#include <limits>

#include "net/generators.h"
#include "net/time_expanded.h"
#include "net/topology.h"

namespace postcard::net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Topology five_dc() {
  return Topology::complete(5, 100.0, [](int i, int j) {
    return 1.0 + 0.1 * i + 0.01 * j;
  });
}

/// Field-for-field arc equality — the layout-parity contract every
/// bit-for-bit consumer (pricing, warm basis remap, plan extraction)
/// depends on.
void expect_matches_dense(const SparseTimeGraph& sparse,
                          const TimeExpandedGraph& dense) {
  ASSERT_EQ(sparse.num_arcs(), dense.num_arcs());
  ASSERT_EQ(sparse.num_layers(), dense.num_layers());
  ASSERT_EQ(sparse.start_slot(), dense.start_slot());
  ASSERT_EQ(sparse.num_nodes(), dense.num_nodes());
  for (int a = 0; a < dense.num_arcs(); ++a) {
    const TimeArc& s = sparse.arcs()[a];
    const TimeArc& d = dense.arcs()[a];
    ASSERT_EQ(s.from_node, d.from_node) << "arc " << a;
    ASSERT_EQ(s.to_node, d.to_node) << "arc " << a;
    ASSERT_EQ(s.layer, d.layer) << "arc " << a;
    ASSERT_EQ(s.link_index, d.link_index) << "arc " << a;
    ASSERT_EQ(s.capacity, d.capacity) << "arc " << a;  // exact, not near
    ASSERT_EQ(s.unit_cost, d.unit_cost) << "arc " << a;
  }
  for (int layer = 0; layer < dense.horizon(); ++layer) {
    EXPECT_EQ(sparse.layer_arc_range(layer), dense.layer_arc_range(layer));
  }
}

TEST(SparseTimeGraph, FreshBuildMatchesDense) {
  const Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, /*start_slot=*/3, /*horizon=*/4);
  expect_matches_dense(sparse, TimeExpandedGraph(t, 3, 4));
  EXPECT_EQ(sparse.layers_built(), 4);
  EXPECT_EQ(sparse.layers_reused(), 0);
  EXPECT_EQ(sparse.block_size(), t.num_links() + t.num_datacenters());
}

TEST(SparseTimeGraph, SameSlotRefreshPicksUpCapacityChanges) {
  Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 0, 3);
  const long built_before = sparse.layers_built();

  t.set_capacity(2, 0.0);   // LinkDown
  t.set_capacity(7, 55.0);  // CapacityChange
  sparse.advance_to(t, 0, 3);
  expect_matches_dense(sparse, TimeExpandedGraph(t, 0, 3));
  // Same window: pure refresh, no structural work.
  EXPECT_EQ(sparse.layers_built(), built_before);
  EXPECT_EQ(sparse.layers_reused(), 3);
}

TEST(SparseTimeGraph, ForwardAdvanceRetiresExpiredLayers) {
  const Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 3, 4);
  sparse.advance_to(t, 5, 4);  // 2 layers expire, 2 survive, 2 appended
  expect_matches_dense(sparse, TimeExpandedGraph(t, 5, 4));
  EXPECT_EQ(sparse.layers_built(), 6);
  EXPECT_EQ(sparse.layers_reused(), 2);

  // Advancing exactly one slot at a time, as the controller does.
  for (int slot = 6; slot <= 9; ++slot) {
    sparse.advance_to(t, slot, 4);
    expect_matches_dense(sparse, TimeExpandedGraph(t, slot, 4));
  }
}

TEST(SparseTimeGraph, HorizonGrowAndShrink) {
  const Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 2, 3);
  sparse.advance_to(t, 2, 6);  // grow in place
  expect_matches_dense(sparse, TimeExpandedGraph(t, 2, 6));
  sparse.advance_to(t, 2, 2);  // shrink in place
  expect_matches_dense(sparse, TimeExpandedGraph(t, 2, 2));
  sparse.advance_to(t, 3, 5);  // advance + grow past the trimmed frontier
  expect_matches_dense(sparse, TimeExpandedGraph(t, 3, 5));
}

TEST(SparseTimeGraph, BackwardJumpRebuilds) {
  const Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 8, 3);
  sparse.advance_to(t, 2, 3);  // snapshot restore / replay rewinds the clock
  expect_matches_dense(sparse, TimeExpandedGraph(t, 2, 3));
}

TEST(SparseTimeGraph, FarForwardJumpRebuilds) {
  const Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 0, 3);
  sparse.advance_to(t, 100, 3);  // beyond the window: nothing survives
  expect_matches_dense(sparse, TimeExpandedGraph(t, 100, 3));
}

TEST(SparseTimeGraph, ResidualsRefreshEveryAdvance) {
  const Topology t = five_dc();
  int epoch = 0;
  const ResidualCapacityFn residual = [&](int link, int slot) {
    return 100.0 - 10.0 * epoch - link - slot;  // may go negative -> clamp 0
  };
  SparseTimeGraph sparse;
  for (epoch = 0; epoch < 12; ++epoch) {
    sparse.advance_to(t, epoch, 3, residual);
    expect_matches_dense(sparse, TimeExpandedGraph(t, epoch, 3, residual));
  }
}

TEST(SparseTimeGraph, StorageCapAndDisableMatchDense) {
  const Topology t = five_dc();
  SparseTimeGraph capped;
  capped.advance_to(t, 1, 3, nullptr, /*storage_capacity=*/7.5);
  expect_matches_dense(capped, TimeExpandedGraph(t, 1, 3, nullptr, 7.5));

  SparseTimeGraph no_storage;
  no_storage.advance_to(t, 1, 3, nullptr, kInf, /*enable_storage=*/false);
  expect_matches_dense(no_storage,
                       TimeExpandedGraph(t, 1, 3, nullptr, kInf, false));
  EXPECT_EQ(no_storage.block_size(), t.num_links());

  // Toggling storage is a structural change: the arena must rebuild, not
  // reuse blocks of the wrong shape.
  no_storage.advance_to(t, 1, 3, nullptr, kInf, /*enable_storage=*/true);
  expect_matches_dense(no_storage, TimeExpandedGraph(t, 1, 3));
}

TEST(SparseTimeGraph, LinkCountChangeRebuildsAndRefreshesHops) {
  Topology t(4);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(1, 2, 10.0, 1.0);
  t.set_link(2, 3, 10.0, 1.0);
  SparseTimeGraph sparse;
  sparse.advance_to(t, 0, 2);
  EXPECT_EQ(sparse.hops(0, 3), 3);
  EXPECT_EQ(sparse.hops(3, 0), kUnreachableHops);

  t.set_link(3, 0, 10.0, 1.0);  // new link -> structural rebuild
  sparse.advance_to(t, 0, 2);
  expect_matches_dense(sparse, TimeExpandedGraph(t, 0, 2));
  EXPECT_EQ(sparse.hops(3, 0), 1);
  EXPECT_EQ(sparse.hops(3, 1), 2);
}

TEST(SparseTimeGraph, HopMatrixIsCapacityIndependent) {
  Topology t = five_dc();
  SparseTimeGraph sparse;
  sparse.advance_to(t, 0, 2);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(sparse.hops(i, j), i == j ? 0 : 1);
      EXPECT_EQ(sparse.hops_from(i)[j], sparse.hops(i, j));
    }
  }
  // A downed link (capacity 0) keeps its structural hop count: pruning must
  // not change shape mid-replay, only the LP's residual capacities do.
  t.set_capacity(0, 0.0);
  sparse.advance_to(t, 1, 2);
  EXPECT_EQ(sparse.hops(t.link(0).from, t.link(0).to), 1);
}

TEST(SparseTimeGraph, WorksOnGeneratedFatTree) {
  const Topology t = fat_tree(6, 100.0, [](int a, int b) {
    return 2.0 + 0.01 * a + 0.0001 * b;
  });
  SparseTimeGraph sparse;
  for (int slot = 0; slot < 4; ++slot) {
    sparse.advance_to(t, slot, 5);
    expect_matches_dense(sparse, TimeExpandedGraph(t, slot, 5));
  }
  EXPECT_EQ(sparse.layers_built(), 5 + 3);  // fresh build + one frontier/slot
}

}  // namespace
}  // namespace postcard::net
