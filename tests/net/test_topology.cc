#include "net/topology.h"

#include <gtest/gtest.h>

#include "net/file_request.h"

namespace postcard::net {
namespace {

TEST(Topology, CompleteGraphHasAllDirectedLinks) {
  const auto t = Topology::complete(4, 100.0, [](int i, int j) {
    return static_cast<double>(10 * i + j);
  });
  EXPECT_EQ(t.num_datacenters(), 4);
  EXPECT_EQ(t.num_links(), 12);  // 4 * 3 directed
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) {
        EXPECT_FALSE(t.has_link(i, j));
      } else {
        EXPECT_TRUE(t.has_link(i, j));
        EXPECT_DOUBLE_EQ(t.capacity(i, j), 100.0);
        EXPECT_DOUBLE_EQ(t.unit_cost(i, j), 10.0 * i + j);
      }
    }
  }
}

TEST(Topology, AsymmetricCostsAreIndependent) {
  Topology t(2);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(1, 0, 20.0, 9.0);
  EXPECT_DOUBLE_EQ(t.unit_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.unit_cost(1, 0), 9.0);
  EXPECT_DOUBLE_EQ(t.capacity(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(t.capacity(1, 0), 20.0);
}

TEST(Topology, SetLinkReplacesExisting) {
  Topology t(2);
  t.set_link(0, 1, 10.0, 1.0);
  t.set_link(0, 1, 50.0, 2.0);
  EXPECT_EQ(t.num_links(), 1);
  EXPECT_DOUBLE_EQ(t.capacity(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(t.unit_cost(0, 1), 2.0);
}

TEST(Topology, RejectsBadLinks) {
  Topology t(3);
  EXPECT_THROW(t.set_link(0, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.set_link(-1, 0, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(t.set_link(0, 3, 1.0, 1.0), std::out_of_range);
  EXPECT_THROW(t.set_link(0, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(t.set_link(0, 1, 1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(Topology(0), std::invalid_argument);
}

TEST(Topology, MissingLinkQueries) {
  Topology t(3);
  t.set_link(0, 1, 5.0, 1.0);
  EXPECT_FALSE(t.has_link(1, 0));
  EXPECT_EQ(t.link_index(1, 0), -1);
  EXPECT_DOUBLE_EQ(t.capacity(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(t.unit_cost(1, 0), 0.0);
  EXPECT_EQ(t.link_index(5, 0), -1);  // out of range is just "absent"
}

TEST(FileRequest, ValidationCatchesBadRequests) {
  const auto t = Topology::complete(3, 10.0, [](int, int) { return 1.0; });
  FileRequest ok{0, 0, 1, 5.0, 2, 0};
  EXPECT_NO_THROW(validate(ok, t));

  FileRequest self = ok;
  self.destination = self.source;
  EXPECT_THROW(validate(self, t), std::invalid_argument);

  FileRequest outside = ok;
  outside.destination = 7;
  EXPECT_THROW(validate(outside, t), std::invalid_argument);

  FileRequest empty = ok;
  empty.size = 0.0;
  EXPECT_THROW(validate(empty, t), std::invalid_argument);

  FileRequest rushed = ok;
  rushed.max_transfer_slots = 0;
  EXPECT_THROW(validate(rushed, t), std::invalid_argument);

  FileRequest early = ok;
  early.release_slot = -1;
  EXPECT_THROW(validate(early, t), std::invalid_argument);
}

TEST(FileRequest, BatchHelpers) {
  std::vector<FileRequest> files = {
      {0, 0, 1, 30.0, 3, 0},  // rate 10
      {1, 1, 2, 50.0, 2, 0},  // rate 25 <- heaviest
      {2, 2, 0, 8.0, 8, 0},   // rate 1
  };
  EXPECT_EQ(max_deadline(files), 8);
  EXPECT_EQ(heaviest_file(files), 1);
  EXPECT_EQ(max_deadline({}), 0);
  EXPECT_EQ(heaviest_file({}), -1);
}

}  // namespace
}  // namespace postcard::net
