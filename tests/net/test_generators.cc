#include "net/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "net/sparse_time_expanded.h"
#include "net/topology.h"

namespace postcard::net {
namespace {

double unit_cost(int, int) { return 1.0; }

/// Largest finite entry of the structural hop matrix (the diameter), or -1
/// if some ordered pair is unreachable.
int diameter(const Topology& t) {
  const std::vector<int> hops = all_pairs_hops(t);
  int best = 0;
  for (int h : hops) {
    if (h >= kUnreachableHops) return -1;
    best = std::max(best, h);
  }
  return best;
}

TEST(FatTree, NodeAndLinkCounts) {
  // k=4: 4 pods x (2 edge + 2 agg) + 4 cores = 20 sites. Per pod every edge
  // pairs with every agg (4 pairs), every agg with k/2 cores (4 pairs):
  // 8 pairs x 4 pods x 2 directions = 64 directed links.
  const Topology t4 = fat_tree(4, 100.0, unit_cost);
  EXPECT_EQ(t4.num_datacenters(), 20);
  EXPECT_EQ(t4.num_links(), 64);

  // k=10 is the 100+ DC acceptance shape: 125 sites, 1000 directed links.
  const Topology t10 = fat_tree(10, 100.0, unit_cost);
  EXPECT_EQ(t10.num_datacenters(), 125);
  EXPECT_EQ(t10.num_links(), 1000);
}

TEST(FatTree, StronglyConnectedWithDiameterFour) {
  // Worst case is edge -> agg -> core -> agg -> edge across pods.
  EXPECT_EQ(diameter(fat_tree(4, 100.0, unit_cost)), 4);
  EXPECT_EQ(diameter(fat_tree(6, 100.0, unit_cost)), 4);
}

TEST(FatTree, LinksAreBidirectionalWithUniformCapacity) {
  const Topology t = fat_tree(4, 42.0, [](int a, int b) {
    return 1.0 + 0.001 * a + 0.000001 * b;
  });
  for (int l = 0; l < t.num_links(); ++l) {
    const Link& link = t.link(l);
    EXPECT_DOUBLE_EQ(link.capacity, 42.0);
    ASSERT_TRUE(t.has_link(link.to, link.from))
        << link.from << "->" << link.to << " lacks its reverse";
    EXPECT_DOUBLE_EQ(link.unit_cost, 1.0 + 0.001 * link.from +
                                         0.000001 * link.to);
  }
}

TEST(FatTree, RejectsOddOrTinyArity) {
  EXPECT_THROW(fat_tree(3, 100.0, unit_cost), std::invalid_argument);
  EXPECT_THROW(fat_tree(0, 100.0, unit_cost), std::invalid_argument);
  EXPECT_THROW(fat_tree(-2, 100.0, unit_cost), std::invalid_argument);
}

TEST(L2Switch, CompleteBipartiteShape) {
  const Topology t = l2_switch(4, 2, 50.0, unit_cost);
  EXPECT_EQ(t.num_datacenters(), 6);
  EXPECT_EQ(t.num_links(), 16);  // 4 leaves x 2 spines x 2 directions
  // Leaf-leaf traffic transits a spine; no direct leaf-leaf links.
  const std::vector<int> hops = all_pairs_hops(t);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) {
        EXPECT_EQ(hops[a * 6 + b], 2);
      }
    }
    for (int s = 4; s < 6; ++s) {
      EXPECT_EQ(hops[a * 6 + s], 1);
      EXPECT_EQ(hops[s * 6 + a], 1);
    }
  }
  EXPECT_EQ(hops[4 * 6 + 5], 2);  // spine-spine via a leaf
}

TEST(L2Switch, RejectsEmptyTiers) {
  EXPECT_THROW(l2_switch(0, 2, 1.0, unit_cost), std::invalid_argument);
  EXPECT_THROW(l2_switch(2, 0, 1.0, unit_cost), std::invalid_argument);
}

TEST(RandomSparse, DeterministicForFixedSeed) {
  const Topology a = random_sparse(30, 4.0, 7, 100.0, unit_cost);
  const Topology b = random_sparse(30, 4.0, 7, 100.0, unit_cost);
  ASSERT_EQ(a.num_links(), b.num_links());
  for (int l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(l).from, b.link(l).from);
    EXPECT_EQ(a.link(l).to, b.link(l).to);
  }
}

TEST(RandomSparse, DifferentSeedsDiffer) {
  const Topology a = random_sparse(30, 4.0, 7, 100.0, unit_cost);
  const Topology b = random_sparse(30, 4.0, 8, 100.0, unit_cost);
  bool differ = a.num_links() != b.num_links();
  for (int l = 0; !differ && l < a.num_links(); ++l) {
    differ = a.link(l).from != b.link(l).from || a.link(l).to != b.link(l).to;
  }
  EXPECT_TRUE(differ);
}

TEST(RandomSparse, RingGuaranteesStrongConnectivity) {
  // Even at the minimum degree the ring alone connects everything.
  EXPECT_GE(diameter(random_sparse(25, 1.0, 3, 10.0, unit_cost)), 1);
  EXPECT_GE(diameter(random_sparse(25, 5.0, 3, 10.0, unit_cost)), 1);
}

TEST(RandomSparse, HitsTargetDegree) {
  const int n = 40;
  const double avg_degree = 4.0;
  const Topology t = random_sparse(n, avg_degree, 11, 10.0, unit_cost);
  // Rejection sampling may fall slightly short of the target; it must never
  // overshoot and should land close.
  EXPECT_LE(t.num_links(), static_cast<int>(avg_degree * n));
  EXPECT_GE(t.num_links(), static_cast<int>(avg_degree * n * 0.9));
}

TEST(Adjacency, OutLinksSortedByDestination) {
  const Topology t = fat_tree(4, 10.0, unit_cost);
  int total = 0;
  for (int from = 0; from < t.num_datacenters(); ++from) {
    const std::vector<int>& out = t.out_links(from);
    total += static_cast<int>(out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(t.link(out[i]).from, from);
      if (i > 0) {
        EXPECT_LT(t.link(out[i - 1]).to, t.link(out[i]).to);
      }
    }
  }
  EXPECT_EQ(total, t.num_links());
}

}  // namespace
}  // namespace postcard::net
