// Failure injection: LinkDown invalidates committed in-flight plans; the
// runtime uncommits their unexecuted tail, replans the stranded volume and
// accounts every accepted byte as delivered, replanned-then-delivered, or
// loudly failed — never silently dropped.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include "core/postcard.h"
#include "flow/baseline.h"

namespace postcard::runtime {
namespace {

constexpr double kTol = 1e-6;

// Diamond with a detour: the cheap path 0 -> 1 -> 3 carries everything;
// when link 1 -> 3 dies, stranded volume can still detour via 2.
net::Topology diamond() {
  net::Topology t(4);
  t.set_link(0, 1, 100.0, 1.0);   // cheap first hop
  t.set_link(1, 3, 100.0, 1.0);   // cheap second hop (the one we kill)
  t.set_link(1, 2, 100.0, 5.0);   // detour hop 1
  t.set_link(2, 3, 100.0, 5.0);   // detour hop 2
  t.set_link(0, 3, 100.0, 50.0);  // direct, prohibitively expensive
  return t;
}

// Chain 0 -> 1 -> 2 with no detour: killing 1 -> 2 makes delivery
// impossible, the file must fail loudly.
net::Topology chain() {
  net::Topology t(3);
  t.set_link(0, 1, 100.0, 1.0);
  t.set_link(1, 2, 100.0, 1.0);
  return t;
}

net::FileRequest file(int id, int src, int dst, double size, int deadline,
                      int release) {
  return net::FileRequest{id, src, dst, size, deadline, release};
}

TEST(RuntimeFailures, LinkDownReplansStrandedVolumeAndMeetsDeadline) {
  ControllerRuntime runtime{diamond(), RuntimeOptions{}};
  runtime.add_postcard_backend();

  // 12 GB, 3 slots: the controller routes 0 -> 1 -> 3 (cost 2/GB vs 50
  // direct); nothing can reach 3 before the end of slot 1.
  ASSERT_TRUE(runtime.ingress().submit(file(1, 0, 3, 12.0, 3, 0)).admitted);
  runtime.fail_link(1, 1);  // link index 1 is 1 -> 3 (insertion order)
  runtime.run(4);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files, 1);
  EXPECT_NEAR(b.accepted_volume, 12.0, kTol);
  EXPECT_GE(b.replans, 1);
  EXPECT_GT(b.replanned_volume, 0.0);
  EXPECT_EQ(b.failed_files, 0) << "detour exists; nothing may fail";
  // Every accepted byte is delivered by the deadline.
  EXPECT_NEAR(b.delivered_volume, 12.0, kTol);
  EXPECT_NEAR(b.failed_volume + b.delivered_volume, b.accepted_volume, kTol);
}

TEST(RuntimeFailures, LinkDownWithoutDetourFailsLoudly) {
  ControllerRuntime runtime{chain(), RuntimeOptions{}};
  runtime.add_postcard_backend();

  ASSERT_TRUE(runtime.ingress().submit(file(1, 0, 2, 10.0, 2, 0)).admitted);
  const int doomed_link = 1;  // 1 -> 2 (insertion order)
  runtime.fail_link(1, doomed_link);
  runtime.run(3);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files, 1);
  // The stranded volume could not be replanned: loud failure, exact
  // accounting, no silent drop.
  EXPECT_GE(b.replans + b.failed_files, 1);
  EXPECT_GT(b.failed_volume, 0.0);
  EXPECT_NEAR(b.failed_volume + b.delivered_volume, b.accepted_volume, kTol);
}

TEST(RuntimeFailures, UncommitRollsBackSpeculativeCharge) {
  // The plan's unexecuted tail raised X on the killed path; after the
  // failure that speculative charge must be rolled back (the ISP never saw
  // the volume), so the final cost prices only traffic that actually flowed
  // or was replanned.
  ControllerRuntime runtime{chain(), RuntimeOptions{}};
  runtime.add_postcard_backend();
  ASSERT_TRUE(runtime.ingress().submit(file(1, 0, 2, 10.0, 2, 0)).admitted);
  runtime.fail_link(1, 1);
  runtime.run(3);

  const auto& policy = runtime.policy(0);
  // Link 1 (1 -> 2) carried nothing: its committed tail was uncommitted and
  // the replan could not reroute, so X_12 must be back at zero.
  EXPECT_NEAR(policy.charge_state().charged(1), 0.0, kTol);
  // Link 0 (0 -> 1) really carried the first hop during slot 0.
  EXPECT_GT(policy.charge_state().charged(0), 0.0);
}

TEST(RuntimeFailures, FlowBackendReplansActiveFlows) {
  ControllerRuntime runtime{diamond(), RuntimeOptions{}};
  runtime.add_flow_backend();

  // Rate 4 GB/slot for 3 slots over the cheap path; the failure at slot 1
  // stops the flow after one slot (4 GB delivered, 8 GB to replan).
  ASSERT_TRUE(runtime.ingress().submit(file(1, 0, 3, 12.0, 3, 0)).admitted);
  runtime.fail_link(1, 1);  // link index 1 is 1 -> 3
  runtime.run(4);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files, 1);
  EXPECT_GE(b.replans, 1);
  EXPECT_NEAR(b.failed_volume + b.delivered_volume, b.accepted_volume, kTol);
  EXPECT_EQ(b.failed_files, 0) << "the detour keeps the flow schedulable";
  EXPECT_NEAR(b.delivered_volume, 12.0, kTol);
}

TEST(RuntimeFailures, LinkUpRestoresCapacityForNewArrivals) {
  ControllerRuntime runtime{chain(), RuntimeOptions{}};
  runtime.add_postcard_backend();

  runtime.fail_link(0, 1);     // 1 -> 2 down from slot 0
  runtime.restore_link(2, 1);  // back up at slot 2

  // While down, a 1-slot file over the dead link is rejected by the solve.
  ASSERT_TRUE(runtime.ingress().submit(file(1, 1, 2, 10.0, 1, 0)).admitted);
  // After recovery an identical file is accepted again.
  ASSERT_TRUE(runtime.ingress().submit(file(2, 1, 2, 10.0, 1, 2)).admitted);
  runtime.run(3);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.rejected_files, 1);
  EXPECT_EQ(b.accepted_files, 1);
  EXPECT_NEAR(b.delivered_volume, 10.0, kTol);
}

TEST(RuntimeFailures, CapacityChangeThrottlesFutureSolves) {
  ControllerRuntime runtime{chain(), RuntimeOptions{}};
  runtime.add_postcard_backend();

  runtime.change_capacity(0, 1, 5.0);  // 1 -> 2 shrinks to 5 GB/slot
  ASSERT_TRUE(runtime.ingress().submit(file(1, 1, 2, 10.0, 1, 0)).admitted);
  ASSERT_TRUE(runtime.ingress().submit(file(2, 1, 2, 4.0, 1, 1)).admitted);
  runtime.run(2);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.rejected_files, 1);  // 10 GB cannot fit 5 GB/slot with T=1
  EXPECT_EQ(b.accepted_files, 1);  // 4 GB can
}

TEST(RuntimeFailures, ReplanOptOutLeavesPlansUntouched) {
  RuntimeOptions options;
  options.replan_on_link_down = false;
  ControllerRuntime runtime{diamond(), options};
  runtime.add_postcard_backend();
  ASSERT_TRUE(runtime.ingress().submit(file(1, 0, 3, 12.0, 3, 0)).admitted);
  runtime.fail_link(1, 1);
  runtime.run(4);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.replans, 0);
  // Without replanning the ledger still retires the (now fictional) plan;
  // the option exists for measuring the value of failure handling, not for
  // production use.
  EXPECT_NEAR(b.delivered_volume, b.accepted_volume, kTol);
}

}  // namespace
}  // namespace postcard::runtime
