// Slot-deadline watchdog and degradation ladder (DESIGN.md §9): chaos
// events force each rung — budget-truncated CG, greedy fallback,
// store-in-place deferral — and every degraded slot must stay fully
// accounted (no silent drops), bit-for-bit replayable (pivot budgets are
// deterministic) and never cheaper than the full-LP run it degraded from.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include "core/postcard.h"
#include "sim/workload.h"

namespace postcard::runtime {
namespace {

// Fig. 4 shape at reduced scale (same parameters as the determinism suite).
sim::WorkloadParams fig4_shaped(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

double offered_volume(const sim::UniformWorkload& w) {
  double total = 0.0;
  for (int slot = 0; slot < w.num_slots(); ++slot) {
    for (const net::FileRequest& f : w.batch(slot)) total += f.size;
  }
  return total;
}

// Every admitted file must end in exactly one terminal counter: accepted,
// rejected, or failed (deferred files eventually resolve into one of them;
// flush fails leftovers loudly).
void expect_fully_accounted(const RuntimeStats& stats,
                            const sim::UniformWorkload& w) {
  ASSERT_EQ(stats.backends.size(), 1u);
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(stats.ingress_rejected, 0);
  EXPECT_EQ(b.accepted_files + b.rejected_files + b.failed_files,
            stats.admitted);
  EXPECT_NEAR(b.accepted_volume + b.rejected_volume + b.failed_volume,
              offered_volume(w), 1e-6);
}

TEST(RuntimeDegradation, InjectedStallFallsBackWithinTheSameSlot) {
  const sim::UniformWorkload w(fig4_shaped(21));

  ControllerRuntime full{net::Topology(w.topology()), RuntimeOptions{}};
  full.add_postcard_backend();
  const RuntimeStats reference = full.replay(w);

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.stall_solver(/*slot=*/3, /*pivot_budget=*/0);
  const RuntimeStats stats = runtime.replay(w);

  EXPECT_EQ(stats.solver_stalls, 1);
  EXPECT_EQ(stats.solver_faults, 0);
  const BackendStats& b = stats.backends[0];
  // The stalled slot committed a feasible fallback instead of blocking:
  // some rung below full LP fired exactly there. Rung counters track only
  // watchdog-armed slots, and the one-shot stall arms exactly slot 3 — the
  // other slots run the legacy (unarmed) path and count nowhere.
  EXPECT_GT(b.rung_truncated + b.rung_greedy + b.carryover_files, 0);
  EXPECT_EQ(b.rung_full, 0);
  EXPECT_GE(b.degraded_slots, 1);
  EXPECT_GE(b.degraded_cost_delta, -1e-9);
  // The cut-off solve is a loud solver failure, not a silent capacity drop.
  EXPECT_GE(b.solver_failures, 1);
  EXPECT_EQ(b.last_solver_status, "deadline_exceeded");
  expect_fully_accounted(stats, w);
  // Degradation never wins: with the same files placed, the sequential
  // fallback cannot beat the joint LP optimum.
  const BackendStats& rb = reference.backends[0];
  if (b.accepted_volume == rb.accepted_volume) {
    EXPECT_GE(b.cost_series.back(), rb.cost_series.back() - 1e-9);
  }
  EXPECT_EQ(rb.degraded_slots, 0);
  EXPECT_EQ(rb.rung_truncated + rb.rung_greedy, 0);
}

TEST(RuntimeDegradation, InjectedFaultForcesGreedyRung) {
  const sim::UniformWorkload w(fig4_shaped(22));

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.fault_solver(/*slot=*/2, /*disable_rungs=*/1);
  const RuntimeStats stats = runtime.replay(w);

  EXPECT_EQ(stats.solver_faults, 1);
  const BackendStats& b = stats.backends[0];
  EXPECT_GT(b.rung_greedy, 0);  // the whole slot-2 batch went greedy
  EXPECT_EQ(b.rung_truncated, 0);
  EXPECT_GE(b.degraded_slots, 1);
  EXPECT_GE(b.solver_failures, 1);
  EXPECT_EQ(b.last_solver_status, "fault_injected");
  expect_fully_accounted(stats, w);
}

TEST(RuntimeDegradation, InjectedFaultForcesStoreInPlaceCarryover) {
  const sim::UniformWorkload w(fig4_shaped(23));

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.fault_solver(/*slot=*/2, /*disable_rungs=*/2);
  const RuntimeStats stats = runtime.replay(w);

  const BackendStats& b = stats.backends[0];
  // Every slot-2 file was deferred: deadline slack permitting it carried
  // into slot 3 (one slot less to transfer), otherwise it failed loudly.
  EXPECT_EQ(b.rung_greedy, 0);
  EXPECT_GT(b.carryover_files + b.failed_files, 0);
  EXPECT_GE(b.degraded_slots, 1);
  expect_fully_accounted(stats, w);
}

TEST(RuntimeDegradation, StallScheduleReplaysBitForBit) {
  // Pivot budgets are pure arithmetic: the same chaos schedule degrades at
  // the same pivot and reproduces the entire cost series exactly.
  const sim::UniformWorkload w(fig4_shaped(24));

  auto run = [&] {
    ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
    runtime.add_postcard_backend();
    runtime.stall_solver(3, 25);
    runtime.stall_solver(6, 0);
    runtime.fault_solver(8, 1);
    return runtime.replay(w);
  };
  const RuntimeStats a = run();
  const RuntimeStats c = run();

  const BackendStats& ba = a.backends[0];
  const BackendStats& bc = c.backends[0];
  EXPECT_EQ(ba.cost_series, bc.cost_series);
  EXPECT_EQ(ba.rung_full, bc.rung_full);
  EXPECT_EQ(ba.rung_truncated, bc.rung_truncated);
  EXPECT_EQ(ba.rung_greedy, bc.rung_greedy);
  EXPECT_EQ(ba.carryover_files, bc.carryover_files);
  EXPECT_EQ(ba.degraded_slots, bc.degraded_slots);
  EXPECT_EQ(ba.degraded_cost_delta, bc.degraded_cost_delta);
  EXPECT_EQ(ba.accepted_volume, bc.accepted_volume);
  EXPECT_EQ(ba.failed_volume, bc.failed_volume);
  expect_fully_accounted(a, w);
}

TEST(RuntimeDegradation, SlotPivotBudgetTriggersTruncatedRung) {
  // Scanning budgets upward must hit a point where some slot's first
  // master finishes but column generation is cut off — the truncated-CG
  // rung commits the incumbent master instead of dropping to greedy.
  const sim::UniformWorkload w(fig4_shaped(25));
  bool saw_truncated = false;
  for (long budget = 1; budget <= 120 && !saw_truncated; ++budget) {
    RuntimeOptions options;
    options.slot_pivot_budget = budget;
    ControllerRuntime runtime{net::Topology(w.topology()), options};
    runtime.add_postcard_backend();
    const RuntimeStats stats = runtime.replay(w);
    expect_fully_accounted(stats, w);
    if (stats.backends[0].rung_truncated > 0) saw_truncated = true;
  }
  EXPECT_TRUE(saw_truncated);
}

TEST(RuntimeDegradation, GenerousBudgetLeavesTheRunUntouched) {
  // An armed but never-exhausted watchdog must not perturb the solve: same
  // cost series as the unbudgeted run, all slots on the full-LP rung.
  const sim::UniformWorkload w(fig4_shaped(26));

  ControllerRuntime plain{net::Topology(w.topology()), RuntimeOptions{}};
  plain.add_postcard_backend();
  const RuntimeStats reference = plain.replay(w);

  RuntimeOptions options;
  options.slot_pivot_budget = 1'000'000;
  ControllerRuntime runtime{net::Topology(w.topology()), options};
  runtime.add_postcard_backend();
  const RuntimeStats stats = runtime.replay(w);

  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.cost_series, reference.backends[0].cost_series);
  EXPECT_EQ(b.rung_full, stats.slots_processed);
  EXPECT_EQ(b.rung_truncated, 0);
  EXPECT_EQ(b.rung_greedy, 0);
  EXPECT_EQ(b.degraded_slots, 0);
}

TEST(RuntimeDegradation, FlowBaselineDefersUnderFault) {
  // The baseline has no greedy rung: a fault defers its whole batch, which
  // carries over (or fails loudly) but never vanishes.
  const sim::UniformWorkload w(fig4_shaped(27));

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_flow_backend();
  runtime.fault_solver(/*slot=*/1, /*disable_rungs=*/1);
  const RuntimeStats stats = runtime.replay(w);

  const BackendStats& b = stats.backends[0];
  EXPECT_GT(b.carryover_files + b.failed_files, 0);
  EXPECT_EQ(b.last_solver_status, "fault_injected");
  expect_fully_accounted(stats, w);
}

TEST(RuntimeDegradation, ThreeSlotCarryChainStaysFullyAccounted) {
  // Forced multi-slot carry-over chain: deferral faults at three
  // consecutive slots push the same files through carry_batch three times
  // (release_slot + 1, max_transfer_slots - 1 each hop). Every admitted
  // file must still land in exactly one terminal counter, and a file's
  // volume must not be re-counted per hop.
  sim::WorkloadParams p = fig4_shaped(31);
  p.deadline_min = 4;  // survives three deferrals, accepted on the fourth
  p.deadline_max = 5;
  const sim::UniformWorkload w(p);

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  for (int slot : {2, 3, 4}) {
    runtime.fault_solver(slot, /*disable_rungs=*/2);
  }
  const RuntimeStats stats = runtime.replay(w);

  EXPECT_EQ(stats.solver_faults, 3);
  const BackendStats& b = stats.backends[0];
  // The slot-2 batch was deferred three times: at least one file made
  // three carry hops (deadline_min = 4 leaves slack for all three).
  EXPECT_GE(b.carryover_files, 3);
  EXPECT_GE(b.degraded_slots, 3);
  expect_fully_accounted(stats, w);
  // Chain-length accounting: carryover_files counts hops; the number of
  // distinct files that ever entered the carry state is tracked
  // separately and can never exceed the hop count.
  EXPECT_GT(b.carryover_entered_files, 0);
  EXPECT_LE(b.carryover_entered_files, b.carryover_files);
  EXPECT_LE(b.carryover_entered_volume, b.carryover_volume + 1e-9);
}

TEST(RuntimeDegradation, CarryChainAccountedUnderSplitBatchWorkers) {
  // Same chain with worker threads + split-batch groups: carried files are
  // striped across snapshot-clone groups and may bounce through the
  // single-writer conflict re-solve; the identity must survive all of it.
  sim::WorkloadParams p = fig4_shaped(32);
  p.deadline_min = 4;
  p.deadline_max = 5;
  const sim::UniformWorkload w(p);

  RuntimeOptions options;
  options.worker_threads = 2;
  options.parallel_groups = 2;
  ControllerRuntime runtime{net::Topology(w.topology()), options};
  runtime.add_postcard_backend();
  for (int slot : {2, 3, 4}) {
    runtime.fault_solver(slot, /*disable_rungs=*/2);
  }
  const RuntimeStats stats = runtime.replay(w);

  const BackendStats& b = stats.backends[0];
  EXPECT_GE(b.carryover_files, 3);
  expect_fully_accounted(stats, w);
  EXPECT_LE(b.carryover_entered_files, b.carryover_files);
}

}  // namespace
}  // namespace postcard::runtime
