// Worker pool: inline mode ordering, parallel execution, exception
// propagation.
#include "runtime/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace postcard::runtime {
namespace {

TEST(WorkerPool, InlinePoolRunsTasksInOrder) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  std::vector<int> order;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i] { order.push_back(i); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(WorkerPool, ThreadedPoolRunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kTasks = 200;
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.run_all(std::move(tasks));  // blocks until all ran
  EXPECT_EQ(count.load(), kTasks);
}

TEST(WorkerPool, ExceptionsPropagateThroughFutures) {
  WorkerPool pool(2);
  auto future = pool.submit([] { throw std::runtime_error("solver blew up"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(WorkerPool, ResultsWrittenByWorkersAreVisibleAfterJoin) {
  WorkerPool pool(4);
  constexpr int kTasks = 64;
  std::vector<int> results(kTasks, 0);  // disjoint slots, no locking needed
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&results, i] { results[static_cast<std::size_t>(i)] = i + 1; });
  }
  pool.run_all(std::move(tasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], i + 1);
  }
}

TEST(WorkerPool, DestructorJoinsCleanlyWithQueuedWork) {
  std::atomic<int> count{0};
  {
    WorkerPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1); });
    }
  }  // destructor drains nothing it shouldn't; submitted futures may or may
     // not have run, but the pool must not crash or leak threads
  SUCCEED();
}

}  // namespace
}  // namespace postcard::runtime
