// Cross-slot warm starts must be a pure performance optimisation: in
// deterministic mode the canonical remap (PostcardOptions::warm_start, on
// by default) reproduces the cold-start cost series bit for bit — on the
// plain Fig. 4 replay, side by side with the flow baseline, and through a
// LinkDown replan — while the stats report a nonzero warm-accept rate and
// per-start-type solve histograms.
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/workload.h"

namespace postcard::runtime {
namespace {

constexpr double kTol = 1e-6;

sim::WorkloadParams fig4_shaped(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 12;
  p.seed = seed;
  return p;
}

core::PostcardOptions warm_off() {
  core::PostcardOptions o;
  o.warm_start = false;
  return o;
}

RuntimeStats replay_postcard(const sim::UniformWorkload& w,
                             core::PostcardOptions options,
                             RuntimeOptions runtime_options = {}) {
  ControllerRuntime runtime{net::Topology(w.topology()), runtime_options};
  runtime.add_postcard_backend(options);
  return runtime.replay(w);
}

TEST(RuntimeWarmStart, CostSeriesMatchesColdStartBitForBit) {
  const sim::UniformWorkload w(fig4_shaped(21));
  const RuntimeStats warm = replay_postcard(w, core::PostcardOptions{});
  const RuntimeStats cold = replay_postcard(w, warm_off());

  const BackendStats& bw = warm.backends[0];
  const BackendStats& bc = cold.backends[0];
  ASSERT_EQ(bw.cost_series.size(), bc.cost_series.size());
  for (std::size_t i = 0; i < bw.cost_series.size(); ++i) {
    EXPECT_EQ(bw.cost_series[i], bc.cost_series[i]) << "slot " << i;
  }
  // Same plans means identical admission and delivery accounting too.
  EXPECT_EQ(bw.accepted_volume, bc.accepted_volume);
  EXPECT_EQ(bw.rejected_volume, bc.rejected_volume);
  EXPECT_EQ(bw.delivered_volume, bc.delivered_volume);
  // The optimisation actually engaged: after the cold first slot every
  // master solve should start from the remapped basis.
  EXPECT_GT(bw.warm_accepts, 0);
  EXPECT_LT(bw.cold_starts, bw.warm_accepts);
  EXPECT_EQ(bc.warm_accepts, 0);
  // ... and it saved simplex work (phase 1 skipped on every warm solve).
  EXPECT_LT(bw.lp_iterations, bc.lp_iterations);
}

TEST(RuntimeWarmStart, FlowBaselineSideBySideIsUnaffected) {
  const sim::UniformWorkload w(fig4_shaped(22));

  std::vector<double> series[2];
  for (int pass = 0; pass < 2; ++pass) {
    ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
    runtime.add_postcard_backend(pass == 0 ? core::PostcardOptions{}
                                           : warm_off());
    runtime.add_flow_backend();
    const RuntimeStats stats = runtime.replay(w);
    ASSERT_EQ(stats.backends.size(), 2u);
    series[pass] = stats.backends[1].cost_series;
    // The flow baseline has no master LP and therefore no warm starts.
    EXPECT_EQ(stats.backends[1].warm_accepts, 0);
    EXPECT_EQ(stats.backends[1].cold_starts, 0);
    if (pass == 1) {
      EXPECT_EQ(stats.backends[0].warm_accepts, 0);
    } else {
      EXPECT_GT(stats.backends[0].warm_accepts, 0);
    }
  }
  EXPECT_EQ(series[0], series[1]);
}

TEST(RuntimeWarmStart, LinkDownReplanMatchesColdStartBitForBit) {
  // Diamond with a detour (test_runtime_failures idiom): the cheap path
  // 0 -> 1 -> 3 carries everything until link 1 -> 3 dies mid-flight and
  // the replan reroutes via 2. The warm cache sees uncommits, capacity
  // changes and synthetic re-requests — and must still be invisible.
  net::Topology t(4);
  t.set_link(0, 1, 100.0, 1.0);
  t.set_link(1, 3, 100.0, 1.0);  // link index 1: killed at slot 1
  t.set_link(1, 2, 100.0, 5.0);
  t.set_link(2, 3, 100.0, 5.0);
  t.set_link(0, 3, 100.0, 50.0);

  std::vector<double> series[2];
  BackendStats backend[2];
  for (int pass = 0; pass < 2; ++pass) {
    ControllerRuntime runtime{net::Topology(t), RuntimeOptions{}};
    runtime.add_postcard_backend(pass == 0 ? core::PostcardOptions{}
                                           : warm_off());
    ASSERT_TRUE(
        runtime.ingress().submit({1, 0, 3, 12.0, 3, 0}).admitted);
    ASSERT_TRUE(
        runtime.ingress().submit({2, 0, 3, 8.0, 3, 1}).admitted);
    ASSERT_TRUE(
        runtime.ingress().submit({3, 1, 3, 6.0, 2, 2}).admitted);
    runtime.fail_link(1, 1);
    runtime.restore_link(3, 1);
    runtime.run(5);
    const RuntimeStats stats = runtime.stats();
    backend[pass] = stats.backends[0];
    series[pass] = backend[pass].cost_series;
  }
  EXPECT_EQ(series[0], series[1]);
  EXPECT_EQ(backend[0].delivered_volume, backend[1].delivered_volume);
  EXPECT_EQ(backend[0].failed_volume, backend[1].failed_volume);
  EXPECT_EQ(backend[0].replans, backend[1].replans);
  EXPECT_GT(backend[0].warm_accepts, 0);
  // The replan rollback ran clean: every uncommit subtracted volume that
  // was actually committed.
  EXPECT_EQ(backend[0].charge_reduce_violations, 0);
  EXPECT_EQ(backend[1].charge_reduce_violations, 0);
  // Accounting stays loud and exact in both modes.
  EXPECT_NEAR(backend[0].delivered_volume + backend[0].failed_volume,
              backend[0].accepted_volume, kTol);
}

TEST(RuntimeWarmStart, SplitBatchGroupCachesWarmAcceptAndStayReproducible) {
  const sim::UniformWorkload w(fig4_shaped(23));
  RuntimeOptions options;
  options.worker_threads = 4;
  options.parallel_groups = 3;

  std::vector<double> warm_series;
  for (int repeat = 0; repeat < 2; ++repeat) {
    const RuntimeStats stats =
        replay_postcard(w, core::PostcardOptions{}, options);
    const BackendStats& b = stats.backends[0];
    if (repeat == 0) {
      warm_series = b.cost_series;
      // Each group keeps its own cache, so warm accepts accumulate across
      // all groups after the first slot.
      EXPECT_GT(b.warm_accepts, 0);
      EXPECT_EQ(b.charge_reduce_violations, 0);
    } else {
      EXPECT_EQ(b.cost_series, warm_series);
    }
  }
  // The canonical remap is trajectory-identical per master solve, so even
  // the split-batch series must match the warm-off split-batch series.
  const RuntimeStats cold = replay_postcard(w, warm_off(), options);
  EXPECT_EQ(cold.backends[0].cost_series, warm_series);
}

TEST(RuntimeWarmStart, SolveHistogramsSplitByStartType) {
  const sim::UniformWorkload w(fig4_shaped(24));
  const RuntimeStats warm = replay_postcard(w, core::PostcardOptions{});

  const BackendStats& b = warm.backends[0];
  // Every LP solve lands in exactly one of the split histograms, and all
  // solves (LP or not) land in the combined one.
  EXPECT_EQ(warm.solve_latency_warm.count() + warm.solve_latency_cold.count(),
            warm.solve_latency.count());
  EXPECT_GT(warm.solve_latency_warm.count(), 0);
  EXPECT_GE(warm.solve_latency_cold.count(), 1);  // at least the first slot
  EXPECT_EQ(b.warm_accepts + b.cold_starts, b.lp_solves);

  const RuntimeStats cold = replay_postcard(w, warm_off());
  EXPECT_EQ(cold.solve_latency_warm.count(), 0);
  EXPECT_EQ(cold.solve_latency_cold.count(), cold.solve_latency.count());
}

}  // namespace
}  // namespace postcard::runtime
