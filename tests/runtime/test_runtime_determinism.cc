// Determinism guarantee: the event-driven runtime in deterministic mode
// (no worker threads, one solve group) reproduces the offline batch replay
// of sim::run_simulation bit-for-bit — same schedule() call sequence, so
// identical cost series for both Postcard and the flow-based baseline on a
// Fig. 4-shaped workload (paper Sec. VII parameters at reduced scale).
#include "runtime/runtime.h"

#include <gtest/gtest.h>

#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace postcard::runtime {
namespace {

// Fig. 4 shape: ample capacity (c = 100 GB/tbar), deadlines U[1,3], unit
// costs U[1,10], sizes U[10,100] GB — scaled down in node/slot count so the
// test stays fast (the bench covers the full figure).
sim::WorkloadParams fig4_shaped(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

TEST(RuntimeDeterminism, PostcardMatchesRunSimulationBitForBit) {
  const sim::UniformWorkload w(fig4_shaped(11));

  core::PostcardController offline{net::Topology(w.topology())};
  const sim::RunResult reference = sim::run_simulation(offline, w);

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  const RuntimeStats stats = runtime.replay(w);

  ASSERT_EQ(stats.backends.size(), 1u);
  const BackendStats& b = stats.backends[0];
  ASSERT_EQ(b.cost_series.size(), reference.cost_series.size());
  for (std::size_t i = 0; i < b.cost_series.size(); ++i) {
    EXPECT_EQ(b.cost_series[i], reference.cost_series[i]) << "slot " << i;
  }
  EXPECT_EQ(b.cost_series.back(), reference.final_cost_per_interval);
  EXPECT_EQ(b.lp_iterations, reference.lp_iterations);
  EXPECT_EQ(b.lp_solves, reference.lp_solves);
  EXPECT_EQ(b.rejected_volume, reference.rejected_volume);
  // Nothing was rejected at the ingress (the structural test is strictly
  // weaker than the solver's admission), so the policies saw identical
  // batches.
  EXPECT_EQ(stats.ingress_rejected, 0);
  EXPECT_EQ(stats.admitted, stats.submitted);
}

TEST(RuntimeDeterminism, FlowBaselineMatchesRunSimulationBitForBit) {
  const sim::UniformWorkload w(fig4_shaped(12));

  flow::FlowBaseline offline{net::Topology(w.topology())};
  const sim::RunResult reference = sim::run_simulation(offline, w);

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_flow_backend();
  const RuntimeStats stats = runtime.replay(w);

  const BackendStats& b = stats.backends[0];
  ASSERT_EQ(b.cost_series.size(), reference.cost_series.size());
  for (std::size_t i = 0; i < b.cost_series.size(); ++i) {
    EXPECT_EQ(b.cost_series[i], reference.cost_series[i]) << "slot " << i;
  }
  EXPECT_EQ(b.cost_series.back(), reference.final_cost_per_interval);
  EXPECT_EQ(b.rejected_volume, reference.rejected_volume);
}

TEST(RuntimeDeterminism, BothPoliciesSideBySideStillMatch) {
  // Per-policy dispatch must not perturb either backend's solve sequence.
  const sim::UniformWorkload w(fig4_shaped(13));

  core::PostcardController offline_pc{net::Topology(w.topology())};
  flow::FlowBaseline offline_fb{net::Topology(w.topology())};
  const sim::RunResult ref_pc = sim::run_simulation(offline_pc, w);
  const sim::RunResult ref_fb = sim::run_simulation(offline_fb, w);

  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.add_flow_backend();
  const RuntimeStats stats = runtime.replay(w);

  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_EQ(stats.backends[0].cost_series, ref_pc.cost_series);
  EXPECT_EQ(stats.backends[1].cost_series, ref_fb.cost_series);
}

TEST(RuntimeDeterminism, RepeatedRunsAreIdenticalWithWorkerThreads) {
  // Worker threads change who executes the solves, not their inputs or the
  // commit order: runs must be reproducible (and, with one group per
  // backend, equal to the offline replay).
  const sim::UniformWorkload w(fig4_shaped(14));
  core::PostcardController offline{net::Topology(w.topology())};
  const sim::RunResult reference = sim::run_simulation(offline, w);

  RuntimeOptions options;
  options.worker_threads = 4;
  for (int repeat = 0; repeat < 2; ++repeat) {
    ControllerRuntime runtime{net::Topology(w.topology()), options};
    runtime.add_postcard_backend();
    runtime.add_flow_backend();
    const RuntimeStats stats = runtime.replay(w);
    EXPECT_EQ(stats.backends[0].cost_series, reference.cost_series);
  }
}

TEST(RuntimeDeterminism, SplitBatchModeIsReproducible) {
  // parallel_groups > 1 trades joint optimality for latency; the result may
  // differ from the joint solve but must be identical run to run, and every
  // file must still be accounted for.
  const sim::UniformWorkload w(fig4_shaped(15));
  RuntimeOptions options;
  options.worker_threads = 4;
  options.parallel_groups = 4;

  std::vector<double> first_series;
  for (int repeat = 0; repeat < 2; ++repeat) {
    ControllerRuntime runtime{net::Topology(w.topology()), options};
    runtime.add_postcard_backend();
    const RuntimeStats stats = runtime.replay(w);
    const BackendStats& b = stats.backends[0];
    if (repeat == 0) {
      first_series = b.cost_series;
      // Accounting identity: everything admitted is accepted or rejected...
      EXPECT_EQ(b.accepted_files + b.rejected_files, stats.admitted);
      // ...and everything accepted is delivered (no failures injected).
      EXPECT_EQ(b.failed_files, 0);
      EXPECT_NEAR(b.delivered_volume, b.accepted_volume, 1e-6);
    } else {
      EXPECT_EQ(b.cost_series, first_series);
    }
  }
}

}  // namespace
}  // namespace postcard::runtime
