// Multi-producer ingress: admission control, counter consistency and
// concurrent submission while the driver ticks (the TSAN target).
#include "runtime/ingress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

namespace postcard::runtime {
namespace {

net::Topology square() {
  return net::Topology::complete(4, 100.0, [](int, int) { return 2.0; });
}

net::FileRequest file(int id, int src, int dst, double size, int deadline,
                      int release) {
  return net::FileRequest{id, src, dst, size, deadline, release};
}

// Accepts everything and charges nothing: isolates the ingress/queue/driver
// machinery from LP solve cost in the stress tests.
class AcceptAllPolicy : public sim::SchedulingPolicy {
 public:
  explicit AcceptAllPolicy(int num_links) : charge_(num_links) {}
  sim::ScheduleOutcome schedule(
      int, const std::vector<net::FileRequest>& files) override {
    sim::ScheduleOutcome outcome;
    for (const net::FileRequest& f : files) outcome.accepted_ids.push_back(f.id);
    return outcome;
  }
  double cost_per_interval() const override { return 0.0; }
  const charging::ChargeState& charge_state() const override { return charge_; }
  std::string name() const override { return "accept-all"; }

 private:
  charging::ChargeState charge_;
};

TEST(RequestIngress, RejectsMalformedAndStructurallyHopelessRequests) {
  EventQueue queue;
  const net::Topology t = square();
  RequestIngress ingress(t, queue);

  EXPECT_FALSE(ingress.submit(file(1, 0, 0, 5.0, 1, 0)).admitted);   // src==dst
  EXPECT_FALSE(ingress.submit(file(2, 0, 9, 5.0, 1, 0)).admitted);   // bad node
  EXPECT_FALSE(ingress.submit(file(3, 0, 1, -1.0, 1, 0)).admitted);  // size<=0
  // 3 egress links x 100 GB x 2 slots = 600 GB is the hard ceiling.
  EXPECT_FALSE(ingress.submit(file(4, 0, 1, 601.0, 2, 0)).admitted);
  EXPECT_TRUE(ingress.submit(file(5, 0, 1, 599.0, 2, 0)).admitted);

  EXPECT_EQ(ingress.submitted(), 5);
  EXPECT_EQ(ingress.admitted(), 1);
  EXPECT_EQ(ingress.rejected(), 4);
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(RequestIngress, LinkFailureTightensAdmission) {
  EventQueue queue;
  net::Topology t(2);
  t.set_link(0, 1, 50.0, 1.0);
  RequestIngress ingress(t, queue);

  EXPECT_TRUE(ingress.submit(file(1, 0, 1, 40.0, 1, 0)).admitted);
  ingress.set_link_capacity(0, 0.0);  // the only egress dies
  const AdmissionResult r = ingress.submit(file(2, 0, 1, 40.0, 1, 0));
  EXPECT_FALSE(r.admitted);
  EXPECT_FALSE(r.reason.empty());
  ingress.set_link_capacity(0, 50.0);
  EXPECT_TRUE(ingress.submit(file(3, 0, 1, 40.0, 1, 0)).admitted);
}

TEST(RequestIngress, PastReleaseSlotsAreRestamped) {
  EventQueue queue;
  RequestIngress ingress(square(), queue);
  ingress.set_now(5);
  const AdmissionResult r = ingress.submit(file(1, 0, 1, 5.0, 1, 2));
  ASSERT_TRUE(r.admitted);
  EXPECT_EQ(r.slot, 5);  // never joins a batch in the past
}

TEST(RequestIngress, CountersAreExactUnderConcurrentProducers) {
  EventQueue queue;
  RequestIngress ingress(square(), queue);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 400;
  std::atomic<long> expect_admitted{0};

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&ingress, &expect_admitted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = t * kPerThread + i;
        // Every 5th request is malformed (src == dst) and must be rejected.
        const int dst = (i % 5 == 0) ? 1 : 1 + (id % 3);
        const int src = (i % 5 == 0) ? 1 : 0;
        const auto r =
            ingress.submit(file(id, src, dst, 5.0, 1 + id % 3, id % 7));
        if (r.admitted) expect_admitted.fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();

  EXPECT_EQ(ingress.submitted(), kThreads * kPerThread);
  EXPECT_EQ(ingress.admitted(), expect_admitted.load());
  EXPECT_EQ(ingress.admitted() + ingress.rejected(), ingress.submitted());
  EXPECT_EQ(queue.depth(), static_cast<std::size_t>(ingress.admitted()));
}

TEST(RuntimeIngress, ProducersSubmitWhileDriverTicks) {
  // The end-to-end concurrency scenario: producers hammer the ingress while
  // the driver thread ticks slots and a worker pool runs the solves. After
  // the queue drains, every admitted file is accounted exactly once.
  const net::Topology t = square();
  RuntimeOptions options;
  options.worker_threads = 2;
  ControllerRuntime runtime{net::Topology(t), options};
  runtime.add_backend(std::make_unique<AcceptAllPolicy>(t.num_links()));

  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> producers;
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&runtime, p] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = p * kPerThread + i;
        runtime.ingress().submit(file(id, id % 4, (id + 1) % 4, 1.0, 2, i % 8));
      }
    });
  }
  // Tick concurrently with the producers, then drain what is left.
  for (int slot = 0; slot < 8; ++slot) runtime.tick();
  for (auto& p : producers) p.join();
  while (runtime.events().depth() > 0) runtime.tick();
  runtime.flush_in_flight();

  const RuntimeStats stats = runtime.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.admitted, stats.submitted);  // all requests well-formed
  EXPECT_EQ(stats.queue_depth, 0u);
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files, stats.admitted);
  EXPECT_EQ(b.rejected_files, 0);
  EXPECT_GT(stats.slots_processed, 7);
  EXPECT_GT(stats.slot_latency.count(), 0);
}

TEST(RuntimeIngress, RealPostcardBackendUnderConcurrentSubmission) {
  // Same shape with the real controller and split-batch solving — small
  // volume so the LP work stays light; this is the TSAN hot path.
  RuntimeOptions options;
  options.worker_threads = 4;
  options.parallel_groups = 2;
  ControllerRuntime runtime{square(), options};
  runtime.add_postcard_backend();

  constexpr int kThreads = 2;
  constexpr int kPerThread = 10;
  std::vector<std::thread> producers;
  for (int p = 0; p < kThreads; ++p) {
    producers.emplace_back([&runtime, p] {
      for (int i = 0; i < kPerThread; ++i) {
        const int id = p * kPerThread + i;
        runtime.ingress().submit(
            file(id, id % 4, (id + 2) % 4, 8.0, 1 + id % 3, i % 4));
      }
    });
  }
  for (auto& p : producers) p.join();
  runtime.run(5);

  const RuntimeStats stats = runtime.stats();
  const BackendStats& b = stats.backends[0];
  EXPECT_EQ(b.accepted_files + b.rejected_files, stats.admitted);
  EXPECT_EQ(b.failed_files, 0);
  EXPECT_NEAR(b.delivered_volume, b.accepted_volume, 1e-6);
}

}  // namespace
}  // namespace postcard::runtime
