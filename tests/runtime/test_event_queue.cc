// Event queue ordering and thread-safety.
#include "runtime/event.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace postcard::runtime {
namespace {

net::FileRequest file(int id) {
  net::FileRequest f;
  f.id = id;
  f.source = 0;
  f.destination = 1;
  f.size = 1.0;
  f.max_transfer_slots = 1;
  return f;
}

TEST(EventQueue, OrdersBySlotThenPhaseThenSequence) {
  EventQueue q;
  // Push deliberately out of order: tick first, then arrivals, then a link
  // failure, all at slot 0, plus a slot-1 arrival.
  q.push(0, SlotTick{0});
  q.push(1, FileArrival{file(9)});
  q.push(0, FileArrival{file(1)});
  q.push(0, FileArrival{file(2)});
  q.push(0, LinkDown{3});

  Event e;
  ASSERT_TRUE(q.pop_due(0, &e));
  EXPECT_TRUE(std::holds_alternative<LinkDown>(e.payload));  // phase 0 first
  ASSERT_TRUE(q.pop_due(0, &e));
  ASSERT_TRUE(std::holds_alternative<FileArrival>(e.payload));
  EXPECT_EQ(std::get<FileArrival>(e.payload).file.id, 1);  // submission order
  ASSERT_TRUE(q.pop_due(0, &e));
  EXPECT_EQ(std::get<FileArrival>(e.payload).file.id, 2);
  ASSERT_TRUE(q.pop_due(0, &e));
  EXPECT_TRUE(std::holds_alternative<SlotTick>(e.payload));  // tick last
  EXPECT_FALSE(q.pop_due(0, &e));  // slot-1 arrival is not due yet
  EXPECT_EQ(q.next_slot(), 1);
  ASSERT_TRUE(q.pop_due(1, &e));
  EXPECT_EQ(std::get<FileArrival>(e.payload).file.id, 9);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(EventQueue, PastSlotEventsAreStillPopped) {
  EventQueue q;
  q.push(2, FileArrival{file(1)});
  Event e;
  ASSERT_TRUE(q.pop_due(5, &e));  // due at any slot >= 2
  EXPECT_EQ(e.slot, 2);
}

TEST(EventQueue, SequenceNumbersAreUniqueUnderConcurrentPush) {
  EventQueue q;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<std::uint64_t>> seqs(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&q, &seqs, t] {
      for (int i = 0; i < kPerThread; ++i) {
        seqs[t].push_back(q.push(i % 4, FileArrival{file(t * kPerThread + i)}));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (const auto& s : seqs) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_TRUE(std::adjacent_find(all.begin(), all.end()) == all.end());
  EXPECT_EQ(q.depth(), all.size());
  EXPECT_EQ(q.pushed_total(), all.size());

  // Per-thread sequences must be increasing (each push happens-after the
  // previous one on that thread).
  for (const auto& s : seqs) {
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }

  // Draining yields events in (slot, phase, seq) order.
  Event e;
  int last_slot = -1;
  std::uint64_t last_seq = 0;
  bool first = true;
  while (q.pop_due(4, &e)) {
    if (!first && e.slot == last_slot) {
      EXPECT_GT(e.seq, last_seq);
    }
    EXPECT_GE(e.slot, last_slot);
    last_slot = e.slot;
    last_seq = e.seq;
    first = false;
  }
  EXPECT_EQ(q.depth(), 0u);
}

}  // namespace
}  // namespace postcard::runtime
