// Ledger-order determinism: Backend::plans / Backend::flows are std::map
// keyed by request id, so every walk that commits state — the
// invalidate_plans/invalidate_flows re-request sweep (which draws synthetic
// ids as it goes), retire_completed's stats accumulation, and
// capture_snapshot's serialization — sees ascending id order regardless of
// how entries were inserted. These tests pin that property with ids mixing
// small submission ids and synthetic-range ids (>= kSyntheticIdBase), the
// exact mix a replay-after-failover produces and the one where hash-bucket
// order diverges hardest from value order.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/runtime.h"
#include "server/snapshot.h"

namespace postcard::runtime {
namespace {

// Diamond with a detour (mirrors test_runtime_failures): the cheap path
// 0 -> 1 -> 3 carries everything; when link 1 -> 3 dies, stranded volume
// can still detour via 2, so invalidated plans are re-requested rather
// than failed.
net::Topology diamond() {
  net::Topology t(4);
  t.set_link(0, 1, 100.0, 1.0);   // cheap first hop
  t.set_link(1, 3, 100.0, 1.0);   // cheap second hop (the one we kill)
  t.set_link(1, 2, 100.0, 5.0);   // detour hop 1
  t.set_link(2, 3, 100.0, 5.0);   // detour hop 2
  t.set_link(0, 3, 100.0, 50.0);  // direct, prohibitively expensive
  return t;
}

net::FileRequest file(int id, int src, int dst, double size, int deadline,
                      int release) {
  return net::FileRequest{id, src, dst, size, deadline, release};
}

constexpr int kBase = 1 << 28;  // runtime's synthetic-id base

// Submission order is deliberately NOT id order, and the id magnitudes
// straddle the synthetic base so identity-hash bucket order (id mod
// bucket count) interleaves them differently than value order.
const int kIds[] = {4, 9, 2, kBase + 6, kBase + 1};

std::vector<int> plan_ids(const BackendSnapshot& bs) {
  std::vector<int> ids;
  for (const PlanLedgerEntry& e : bs.plans) ids.push_back(e.request.id);
  return ids;
}

// Zeroes the wall-clock telemetry (latency histograms, solve-seconds
// counters) that legitimately differs between two runs of identical
// logical state, so the remaining snapshot bytes must match exactly.
RuntimeSnapshot scrub_timing(RuntimeSnapshot snap) {
  snap.slot_latency = LatencyHistogram{};
  snap.solve_latency = LatencyHistogram{};
  snap.solve_latency_warm = LatencyHistogram{};
  snap.solve_latency_cold = LatencyHistogram{};
  for (BackendSnapshot& bs : snap.backends) {
    bs.stats.pricing_seconds = 0.0;
    bs.stats.master_seconds = 0.0;
    bs.stats.audit_seconds = 0.0;
  }
  return snap;
}

// Five multi-slot files committed in slot 0, captured mid-flight: the
// serialized plan ledger must ascend by request id even though submission
// order (and hence ledger insertion order) was shuffled.
TEST(ReplanOrder, SnapshotPlanLedgerAscendsById) {
  ControllerRuntime runtime{diamond(), RuntimeOptions{}};
  runtime.add_postcard_backend();
  for (int id : kIds) {
    ASSERT_TRUE(runtime.ingress().submit(file(id, 0, 3, 30.0, 5, 0)).admitted)
        << "id " << id;
  }
  runtime.tick();  // run() would flush_in_flight(); tick() keeps the ledger

  const RuntimeSnapshot snap = runtime.capture_snapshot();
  ASSERT_EQ(snap.backends.size(), 1u);
  const std::vector<int> ids = plan_ids(snap.backends[0]);
  ASSERT_GE(ids.size(), 3u) << "plans must still be in flight after slot 0";
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end())
      << "duplicate id in snapshot ledger";
}

// Same property for the flow-baseline ledger.
TEST(ReplanOrder, SnapshotFlowLedgerAscendsById) {
  ControllerRuntime runtime{diamond(), RuntimeOptions{}};
  runtime.add_flow_backend();
  for (int id : kIds) {
    ASSERT_TRUE(runtime.ingress().submit(file(id, 0, 3, 30.0, 5, 0)).admitted)
        << "id " << id;
  }
  runtime.tick();  // run() would flush_in_flight(); tick() keeps the ledger

  const RuntimeSnapshot snap = runtime.capture_snapshot();
  ASSERT_EQ(snap.backends.size(), 1u);
  std::vector<int> ids;
  for (const FlowLedgerEntry& e : snap.backends[0].flows) {
    ids.push_back(e.request.id);
  }
  ASSERT_GE(ids.size(), 3u) << "flows must still be in flight after slot 0";
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

// The load-bearing test: two runtimes restored from the SAME snapshot with
// the plan-ledger vector in opposite orders must behave identically through
// a link failure — same re-request sweep, same synthetic-id draws, same
// double-accumulation order in the stats, and finally identical snapshot
// bytes. Under a hash ledger, insertion order could leak into all four.
TEST(ReplanOrder, RestoreOrderNeverLeaksIntoReplanOrSnapshotBytes) {
  ControllerRuntime seed{diamond(), RuntimeOptions{}};
  seed.add_postcard_backend();
  for (int id : kIds) {
    ASSERT_TRUE(seed.ingress().submit(file(id, 0, 3, 30.0, 5, 0)).admitted);
  }
  seed.tick();
  const RuntimeSnapshot snap = seed.capture_snapshot();
  ASSERT_GE(snap.backends[0].plans.size(), 3u);

  RuntimeSnapshot reversed = snap;
  std::reverse(reversed.backends[0].plans.begin(),
               reversed.backends[0].plans.end());

  ControllerRuntime a{diamond(), RuntimeOptions{}};
  a.add_postcard_backend();
  a.restore_snapshot(snap);
  ControllerRuntime b{diamond(), RuntimeOptions{}};
  b.add_postcard_backend();
  b.restore_snapshot(reversed);

  for (ControllerRuntime* r : {&a, &b}) {
    r->fail_link(1, 1);  // link index 1 is 1 -> 3 (insertion order)
    for (int slot = 1; slot < 6; ++slot) r->tick();
  }

  const RuntimeStats sa = a.stats();
  const RuntimeStats sb = b.stats();
  ASSERT_GE(sa.backends[0].replans, 1) << "link-down must trigger a replan";
  EXPECT_EQ(sa.backends[0].replans, sb.backends[0].replans);
  EXPECT_EQ(sa.backends[0].delivered_volume, sb.backends[0].delivered_volume);
  EXPECT_EQ(sa.backends[0].failed_volume, sb.backends[0].failed_volume);

  const std::vector<std::uint8_t> bytes_a =
      server::encode_snapshot(scrub_timing(a.capture_snapshot()));
  const std::vector<std::uint8_t> bytes_b =
      server::encode_snapshot(scrub_timing(b.capture_snapshot()));
  EXPECT_EQ(bytes_a, bytes_b)
      << "ledger insertion order leaked into committed state";
}

}  // namespace
}  // namespace postcard::runtime
