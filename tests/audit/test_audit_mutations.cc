// Mutation tests for the plan auditor (src/audit): each test seeds exactly
// one class of paper-invariant violation into an otherwise valid plan or
// charge state and asserts the auditor reports that class — and, where the
// mutation is isolatable, ONLY that class. A detector that cannot tell its
// violation classes apart is as useless as one that misses them.
#include "audit/audit.h"

#include <gtest/gtest.h>

#include "audit/flow_audit.h"
#include "charging/charge_state.h"
#include "core/plan.h"
#include "flow/baseline.h"
#include "net/topology.h"

namespace postcard::audit {
namespace {

// D0 -> D1 -> D2 chain, capacity 20 GB/slot per link.
net::Topology chain_topology(double capacity = 20.0) {
  net::Topology t(3);
  t.set_link(0, 1, capacity, 1.0);
  t.set_link(1, 2, capacity, 1.0);
  return t;
}

net::FileRequest two_hop_file() {
  net::FileRequest f;
  f.id = 7;
  f.source = 0;
  f.destination = 2;
  f.size = 10.0;
  f.max_transfer_slots = 2;
  f.release_slot = 0;
  return f;
}

// The valid reference plan: slot 0 moves the file D0->D1, slot 1 D1->D2.
core::FilePlan two_hop_plan(const net::Topology& t) {
  core::FilePlan plan;
  plan.file_id = 7;
  plan.transfers.push_back({0, 0, 1, 10.0, t.link_index(0, 1)});
  plan.transfers.push_back({1, 1, 2, 10.0, t.link_index(1, 2)});
  return plan;
}

// Charge state matching the reference plan's commits.
charging::ChargeState committed_state(const net::Topology& t,
                                      const core::FilePlan& plan) {
  charging::ChargeState charge(t.num_links());
  for (const core::Transfer& tr : plan.transfers) {
    // The ledger itself rejects negative volumes, so the negative-volume
    // mutation stays a plan-level defect for the auditor to catch.
    if (!tr.storage() && tr.volume > 0.0) {
      charge.commit(tr.link, tr.slot, tr.volume);
    }
  }
  return charge;
}

AuditReport audit(const net::Topology& t, const net::FileRequest& f,
                  const core::FilePlan& plan) {
  const charging::ChargeState charge = committed_state(t, plan);
  return audit_slot_plans(0, {{f, &plan}}, t, charge, AuditOptions{});
}

// Every violation in `report` is of class `cls`, and there is at least one.
void expect_exactly(const AuditReport& report, ViolationClass cls) {
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.count(cls), 1) << report.summary();
  EXPECT_EQ(report.count(cls), static_cast<long>(report.violations.size()))
      << report.summary();
}

TEST(AuditMutations, ValidPlanPassesCleanly) {
  const net::Topology t = chain_topology();
  const AuditReport report = audit(t, two_hop_file(), two_hop_plan(t));
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.files_checked, 1);
  EXPECT_EQ(report.transfers_checked, 2);
}

TEST(AuditMutations, DroppedConservationUnitIsFlowConservation) {
  const net::Topology t = chain_topology();
  core::FilePlan plan = two_hop_plan(t);
  // D1 forwards 10 GB in slot 1 but only ever received 8: the slot-0 hop
  // lost 2 GB. Both re-simulation checks that fire (moves > held, and the
  // unforwarded holding) are conservation violations.
  plan.transfers[0].volume = 8.0;
  expect_exactly(audit(t, two_hop_file(), plan),
                 ViolationClass::kFlowConservation);
}

TEST(AuditMutations, ExceededArcCapacityIsArcCapacity) {
  // Same plan, but the links only carry 5 GB/slot: each 10 GB hop
  // oversubscribes its arc (eq. 9). The plan itself conserves flow.
  const net::Topology t = chain_topology(/*capacity=*/5.0);
  const core::FilePlan plan = two_hop_plan(t);
  const AuditReport report = audit(t, two_hop_file(), plan);
  expect_exactly(report, ViolationClass::kArcCapacity);
  EXPECT_EQ(report.count(ViolationClass::kArcCapacity), 2);
}

TEST(AuditMutations, TransferPastDeadlineIsDeadline) {
  const net::Topology t = chain_topology();
  const net::FileRequest f = two_hop_file();
  core::FilePlan plan = two_hop_plan(t);
  // A spurious transfer at slot 2 = release + T_k, the first slot eq. 10
  // forces to zero. The in-window plan still delivers everything, so the
  // out-of-window traffic is the only defect.
  plan.transfers.push_back({2, 0, 1, 5.0, t.link_index(0, 1)});
  expect_exactly(audit(t, f, plan), ViolationClass::kDeadline);
}

TEST(AuditMutations, NegativeVolumeIsNonNegativity) {
  const net::Topology t = chain_topology();
  core::FilePlan plan = two_hop_plan(t);
  // An LP-rounding failure mode: a negative component masked by a larger
  // positive one on the same arc. Aggregate flow still conserves and
  // delivers, so only nonnegativity fires.
  plan.transfers.push_back({0, 0, 1, 2.0, t.link_index(0, 1)});
  plan.transfers.push_back({0, 0, 1, -2.0, t.link_index(0, 1)});
  expect_exactly(audit(t, two_hop_file(), plan),
                 ViolationClass::kNonNegativity);
}

TEST(AuditMutations, StoredRemainderIsDemandSatisfaction) {
  const net::Topology t = chain_topology();
  core::FilePlan plan;
  plan.file_id = 7;
  // 8 of 10 GB make the two hops; 2 GB sit in storage at the source until
  // the deadline. Conservation holds at every node (everything held is
  // stored), but the file is under-delivered and the remainder stranded.
  plan.transfers.push_back({0, 0, 1, 8.0, t.link_index(0, 1)});
  plan.transfers.push_back({0, 0, 0, 2.0, -1});
  plan.transfers.push_back({1, 1, 2, 8.0, t.link_index(1, 2)});
  plan.transfers.push_back({1, 0, 0, 2.0, -1});
  expect_exactly(audit(t, two_hop_file(), plan),
                 ViolationClass::kDemandSatisfaction);
}

TEST(AuditMutations, WrongLinkIndexIsUnknownLink) {
  const net::Topology t = chain_topology();
  core::FilePlan plan = two_hop_plan(t);
  // The transfer claims the D1->D2 link while moving D0->D1 volume.
  plan.transfers[0].link = t.link_index(1, 2);
  expect_exactly(audit(t, two_hop_file(), plan),
                 ViolationClass::kUnknownLink);
}

TEST(AuditMutations, OverUncommitIsChargeLedger) {
  const net::Topology t = chain_topology();
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 5.0);
  // The rollback path asks for more volume than the slot ever held: the
  // recorder counts the mismatch, and the auditor surfaces it.
  charge.uncommit(0, 0, 8.0);
  const AuditReport report = audit_charge_state(charge, t, AuditOptions{});
  expect_exactly(report, ViolationClass::kChargeLedger);
}

TEST(AuditMutations, DesyncedTreapIsChargeConsistency) {
  const net::Topology t = chain_topology();
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 5.0);
  charge.commit(0, 1, 7.0);
  charge.commit(1, 0, 3.0);
  ASSERT_TRUE(audit_charge_state(charge, t, AuditOptions{}).ok());
  // Corrupt the raw series behind the order-statistic treap's back: the
  // incremental percentile and the copy+sort oracle now disagree.
  charge.mutable_recorder_for_test().corrupt_series_for_test(0, 1, 999.0);
  const AuditReport report = audit_charge_state(charge, t, AuditOptions{});
  expect_exactly(report, ViolationClass::kChargeConsistency);
}

TEST(AuditMutations, ConsistentChargeStatePasses) {
  const net::Topology t = chain_topology();
  charging::ChargeState charge(t.num_links());
  charge.commit(0, 0, 5.0);
  charge.uncommit(0, 0, 5.0);
  charge.commit(1, 2, 4.0);
  EXPECT_TRUE(audit_charge_state(charge, t, AuditOptions{}).ok());
}

// ---- Flow-assignment auditor (audit/flow_audit.h) ----------------------

net::FileRequest flow_file() {
  net::FileRequest f;
  f.id = 11;
  f.source = 0;
  f.destination = 2;
  f.size = 12.0;
  f.max_transfer_slots = 2;
  f.release_slot = 0;
  return f;
}

flow::FlowAssignment flow_assignment(const net::Topology& t) {
  flow::FlowAssignment a;
  a.file_id = 11;
  a.rate = 6.0;  // 12 GB over 2 slots
  a.start_slot = 0;
  a.duration = 2;
  a.link_rates.emplace_back(t.link_index(0, 1), 6.0);
  a.link_rates.emplace_back(t.link_index(1, 2), 6.0);
  return a;
}

AuditReport audit_flow(const net::Topology& t, const net::FileRequest& f,
                       const flow::FlowAssignment& a) {
  charging::ChargeState charge(t.num_links());
  for (const auto& [link, rate] : a.link_rates) {
    for (int n = a.start_slot; n < a.start_slot + a.duration; ++n) {
      if (link >= 0 && link < t.num_links() && rate > 0.0) {
        charge.commit(link, n, rate);
      }
    }
  }
  return audit_flow_assignments(0, {{f, &a}}, t, charge, AuditOptions{});
}

TEST(AuditMutations, ValidFlowAssignmentPasses) {
  const net::Topology t = chain_topology();
  const AuditReport report = audit_flow(t, flow_file(), flow_assignment(t));
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(AuditMutations, FlowOutlivingDeadlineIsDeadline) {
  const net::Topology t = chain_topology();
  flow::FlowAssignment a = flow_assignment(t);
  a.duration = 3;  // lives one slot past T_k = 2
  // rate * duration now over-delivers, which is fine; the long lifetime is
  // the defect. (Capacity still holds: 6 GB/slot on 20 GB links.)
  expect_exactly(audit_flow(t, flow_file(), a), ViolationClass::kDeadline);
}

TEST(AuditMutations, FlowRateImbalanceIsFlowConservation) {
  const net::Topology t = chain_topology();
  flow::FlowAssignment a = flow_assignment(t);
  a.link_rates[1].second = 4.0;  // D1 receives 6 GB/slot, forwards 4
  const AuditReport report = audit_flow(t, flow_file(), a);
  EXPECT_GE(report.count(ViolationClass::kFlowConservation), 1)
      << report.summary();
}

TEST(AuditMutations, FlowUnderDeliveryIsDemandSatisfaction) {
  const net::Topology t = chain_topology();
  flow::FlowAssignment a = flow_assignment(t);
  a.rate = 5.0;  // 10 of 12 GB over the lifetime
  a.link_rates[0].second = 5.0;
  a.link_rates[1].second = 5.0;
  expect_exactly(audit_flow(t, flow_file(), a),
                 ViolationClass::kDemandSatisfaction);
}

}  // namespace
}  // namespace postcard::audit
