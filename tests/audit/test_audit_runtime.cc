// No-false-positive guarantee for the plan auditor: with fail-fast audits
// armed (the runtime default) every legitimate Fig. 4-shaped run — both
// backends, chaos injections, every forced degradation rung, split-batch
// parallel mode — must complete with audit_checks > 0 and zero violations.
// A single false positive would throw std::logic_error and fail the replay.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/postcard.h"
#include "flow/baseline.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::runtime {
namespace {

// Fig. 4 shape at reduced scale (same parameters as the degradation suite).
sim::WorkloadParams fig4_shaped(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

void expect_audited_clean(const RuntimeStats& stats) {
  ASSERT_FALSE(stats.backends.empty());
  for (const BackendStats& b : stats.backends) {
    EXPECT_TRUE(b.audit_armed) << b.name;
    EXPECT_GT(b.audit_checks, 0) << b.name;
    EXPECT_EQ(b.audit_violations, 0) << b.name;
    EXPECT_TRUE(b.audit_reports.empty()) << b.name;
    EXPECT_GE(b.audit_seconds, 0.0) << b.name;
  }
}

TEST(AuditRuntime, FailFastIsArmedByDefaultOnBothBackends) {
  const sim::UniformWorkload w(fig4_shaped(3));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.add_flow_backend();
  expect_audited_clean(runtime.replay(w));
}

TEST(AuditRuntime, CleanUnderLinkFailuresAndRecovery) {
  const sim::UniformWorkload w(fig4_shaped(5));
  ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
  runtime.add_postcard_backend();
  runtime.add_flow_backend();
  runtime.fail_link(/*slot=*/2, /*link=*/0);
  runtime.restore_link(/*slot=*/5, /*link=*/0);
  runtime.fail_link(/*slot=*/6, /*link=*/3);
  const RuntimeStats stats = runtime.replay(w);
  EXPECT_EQ(stats.link_events, 3);
  expect_audited_clean(stats);
}

TEST(AuditRuntime, CleanAcrossEveryForcedDegradationRung) {
  // One run per rung: budget-truncated CG (stall), greedy fallback
  // (fault >= 1), store-in-place deferral (fault >= 2). Plans committed by
  // ANY rung must satisfy the same invariants as the full LP's.
  for (int scenario = 0; scenario < 3; ++scenario) {
    const sim::UniformWorkload w(fig4_shaped(21));
    ControllerRuntime runtime{net::Topology(w.topology()), RuntimeOptions{}};
    runtime.add_postcard_backend();
    switch (scenario) {
      case 0: runtime.stall_solver(/*slot=*/3, /*pivot_budget=*/0); break;
      case 1: runtime.fault_solver(/*slot=*/3, /*disable_rungs=*/1); break;
      case 2: runtime.fault_solver(/*slot=*/3, /*disable_rungs=*/2); break;
    }
    const RuntimeStats stats = runtime.replay(w);
    expect_audited_clean(stats);
    EXPECT_GE(stats.backends[0].degraded_slots, 1) << "scenario " << scenario;
  }
}

TEST(AuditRuntime, WriterAuditsSplitBatchGroupCommits) {
  sim::WorkloadParams p = fig4_shaped(9);
  p.files_per_slot_min = 4;  // enough files that split mode actually splits
  p.files_per_slot_max = 8;
  const sim::UniformWorkload w(p);
  RuntimeOptions options;
  options.worker_threads = 2;
  options.parallel_groups = 2;
  ControllerRuntime runtime{net::Topology(w.topology()), options};
  runtime.add_postcard_backend();
  const RuntimeStats stats = runtime.replay(w);
  expect_audited_clean(stats);
  // The writer audits each committed group on top of the clones'
  // self-audits, so there are more checks than slots.
  EXPECT_GT(stats.backends[0].audit_checks, stats.slots_processed);
}

TEST(AuditRuntime, AuditOffDisarmsAndSkipsChecks) {
  const sim::UniformWorkload w(fig4_shaped(3));
  RuntimeOptions options;
  options.audit = sim::AuditControls{};  // kOff
  ControllerRuntime runtime{net::Topology(w.topology()), options};
  runtime.add_postcard_backend();
  const RuntimeStats stats = runtime.replay(w);
  EXPECT_FALSE(stats.backends[0].audit_armed);
  EXPECT_EQ(stats.backends[0].audit_checks, 0);
}

// ---- Offline controllers, driven directly -----------------------------

TEST(AuditRuntime, OfflinePostcardControllerCleanUnderFailFast) {
  const sim::UniformWorkload w(fig4_shaped(13));
  core::PostcardController controller{net::Topology(w.topology())};
  sim::AuditControls controls;
  controls.mode = sim::AuditControls::Mode::kFailFast;
  ASSERT_TRUE(controller.set_audit_controls(controls));
  long checks = 0, violations = 0;
  for (int slot = 0; slot < w.num_slots(); ++slot) {
    const sim::ScheduleOutcome outcome =
        controller.schedule(slot, w.batch(slot));
    checks += outcome.audit_checks;
    violations += outcome.audit_violations;
  }
  EXPECT_EQ(checks, w.num_slots());
  EXPECT_EQ(violations, 0);
}

TEST(AuditRuntime, OfflineFlowBaselineCleanUnderFailFast) {
  const sim::UniformWorkload w(fig4_shaped(13));
  flow::FlowBaseline baseline{net::Topology(w.topology())};
  sim::AuditControls controls;
  controls.mode = sim::AuditControls::Mode::kFailFast;
  ASSERT_TRUE(baseline.set_audit_controls(controls));
  long checks = 0, violations = 0;
  for (int slot = 0; slot < w.num_slots(); ++slot) {
    const sim::ScheduleOutcome outcome = baseline.schedule(slot, w.batch(slot));
    checks += outcome.audit_checks;
    violations += outcome.audit_violations;
  }
  EXPECT_EQ(checks, w.num_slots());
  EXPECT_EQ(violations, 0);
}

TEST(AuditRuntime, AuditsAreOffByDefaultOnOfflineControllers) {
  const sim::UniformWorkload w(fig4_shaped(3));
  core::PostcardController controller{net::Topology(w.topology())};
  const sim::ScheduleOutcome outcome = controller.schedule(0, w.batch(0));
  EXPECT_EQ(outcome.audit_checks, 0);
}

}  // namespace
}  // namespace postcard::runtime
