// Cost of the plan auditor (src/audit) on the Fig. 4 workload shape.
//
// Two benchmark families answer "can fail-fast audits stay on in
// production?":
//
//   * AuditedReplay/audit:{0,1} — a full ControllerRuntime replay with a
//     Postcard backend, audits off vs fail-fast. The `audit_share_pct`
//     counter reports the auditor's self-measured seconds as a percentage
//     of mean solve time; the acceptance bar (DESIGN.md §10) is < ~5%.
//   * AuditedOfflineSlot/backend:{0,1} — a single offline controller
//     (0 = Postcard, 1 = flow baseline) driven slot by slot with fail-fast
//     audits, isolating the per-slot audit cost from the runtime's event
//     machinery.
//
// The auditor re-simulates every committed plan against the topology and
// charge ledger (flow conservation, arc capacity, deadlines, demand) and
// cross-checks the percentile treap against a copy+sort oracle, so its cost
// scales with transfers per slot plus links x slots — both small next to a
// column-generation solve over the same time-expanded graph.
//
// Build & run:  cmake --build build && ./build/bench/bench_audit
#include <benchmark/benchmark.h>

#include "bench_json.h"
#include "core/postcard.h"
#include "flow/baseline.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

// Fig. 4 shape at the reduced scale the runtime suites use: 6 DCs, 1-4
// files/slot, deadlines 1-3 slots, 10 slots.
sim::WorkloadParams fig4_params(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

void AuditedReplay(benchmark::State& state) {
  const bool audited = state.range(0) != 0;
  const sim::UniformWorkload workload(fig4_params(17));
  double audit_seconds = 0.0;
  double audit_checks = 0.0;
  double audit_violations = 0.0;
  double mean_solve_s = 0.0;

  for (auto _ : state) {
    runtime::RuntimeOptions options;
    if (!audited) options.audit = sim::AuditControls{};  // kOff
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      options};
    engine.add_postcard_backend();
    const runtime::RuntimeStats stats = engine.replay(workload);
    audit_seconds = stats.backends[0].audit_seconds;
    audit_checks = static_cast<double>(stats.backends[0].audit_checks);
    audit_violations = static_cast<double>(stats.backends[0].audit_violations);
    mean_solve_s = stats.solve_latency.mean_seconds();
  }
  state.counters["audit_checks"] = audit_checks;
  state.counters["audit_violations"] = audit_violations;
  state.counters["audit_ms"] = 1e3 * audit_seconds;
  // Auditor seconds per check vs mean slot solve time: the headline number.
  state.counters["audit_share_pct"] =
      (audit_checks > 0 && mean_solve_s > 0)
          ? 100.0 * (audit_seconds / audit_checks) / mean_solve_s
          : 0.0;
  if (audited) {
    record_json_metric("audit_ms", 1e3 * audit_seconds);
    record_json_metric("audit_share_pct", state.counters["audit_share_pct"]);
    record_json_metric("audit_violations", audit_violations);
  }
}

void AuditedOfflineSlot(benchmark::State& state) {
  const bool flow_backend = state.range(0) != 0;
  const sim::UniformWorkload workload(fig4_params(23));
  sim::AuditControls controls;
  controls.mode = sim::AuditControls::Mode::kFailFast;
  double audit_seconds = 0.0;
  double audit_checks = 0.0;

  for (auto _ : state) {
    audit_seconds = 0.0;
    audit_checks = 0.0;
    core::PostcardController postcard{net::Topology(workload.topology())};
    flow::FlowBaseline baseline{net::Topology(workload.topology())};
    sim::SchedulingPolicy& policy =
        flow_backend ? static_cast<sim::SchedulingPolicy&>(baseline)
                     : static_cast<sim::SchedulingPolicy&>(postcard);
    policy.set_audit_controls(controls);
    for (int slot = 0; slot < workload.num_slots(); ++slot) {
      const sim::ScheduleOutcome outcome =
          policy.schedule(slot, workload.batch(slot));
      audit_seconds += outcome.audit_seconds;
      audit_checks += static_cast<double>(outcome.audit_checks);
    }
  }
  state.counters["audit_checks"] = audit_checks;
  state.counters["audit_us_per_slot"] =
      audit_checks > 0 ? 1e6 * audit_seconds / audit_checks : 0.0;
  record_json_metric(
      flow_backend ? "flow_audit_us_per_slot" : "postcard_audit_us_per_slot",
      static_cast<double>(state.counters["audit_us_per_slot"]));
}

BENCHMARK(AuditedReplay)->Arg(0)->Arg(1)->ArgName("audit")->UseRealTime();
BENCHMARK(AuditedOfflineSlot)->Arg(0)->Arg(1)->ArgName("backend");

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("audit");
