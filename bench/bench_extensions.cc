// Sec. VI extensions: bulk backhaul throughput over already-paid capacity
// and the delivered-volume-vs-budget curve.
#include <benchmark/benchmark.h>

#include "core/extensions.h"
#include "sim/workload.h"

namespace {

using namespace postcard;

struct Scenario {
  net::Topology topology;
  charging::ChargeState charge;
  std::vector<net::FileRequest> files;
};

Scenario bulk_scenario() {
  sim::WorkloadParams p;
  p.num_datacenters = 8;
  p.link_capacity = 60.0;
  p.files_per_slot_min = 10;
  p.files_per_slot_max = 10;
  p.deadline_min = 2;
  p.deadline_max = 6;
  p.size_min = 60.0;
  p.size_max = 150.0;
  p.num_slots = 1;
  p.seed = 33;
  sim::UniformWorkload w(p);
  Scenario s{net::Topology(w.topology()),
             charging::ChargeState(w.topology().num_links()),
             w.batch(0)};
  // The bulk jobs are planned for slot 1, after the daytime traffic below.
  for (auto& f : s.files) f.release_slot = 1;
  // Daytime traffic paid for a fraction of SOME links only, so the free
  // headroom is scarce and the budget knob actually binds.
  for (int l = 0; l < s.topology.num_links(); l += 4) {
    s.charge.commit(l, 0, 8.0 + (l % 3) * 4.0);
  }
  return s;
}

void BM_BulkBackhaul_FreeCapacity(benchmark::State& state) {
  Scenario s = bulk_scenario();
  core::ExtensionResult r;
  for (auto _ : state) {
    r = core::maximize_bulk_transfer(s.topology, s.charge, 1, s.files);
    benchmark::DoNotOptimize(r.delivered_total);
  }
  double offered = 0.0;
  for (const auto& f : s.files) offered += f.size;
  state.counters["delivered_gb"] = r.delivered_total;
  state.counters["offered_gb"] = offered;
  state.counters["extra_cost"] = r.cost_per_interval -
                                 s.charge.cost_per_interval(s.topology);
}
BENCHMARK(BM_BulkBackhaul_FreeCapacity)->Unit(benchmark::kMillisecond);

void BM_BudgetCurve(benchmark::State& state) {
  Scenario s = bulk_scenario();
  const double base = s.charge.cost_per_interval(s.topology);
  const double budget = base * (1.0 + 0.05 * static_cast<double>(state.range(0)));
  core::ExtensionResult r;
  for (auto _ : state) {
    r = core::maximize_with_budget(s.topology, s.charge, 1, s.files, budget);
    benchmark::DoNotOptimize(r.delivered_total);
  }
  state.counters["budget"] = budget;
  state.counters["delivered_gb"] = r.delivered_total;
  state.counters["cost_after"] = r.cost_per_interval;
}
BENCHMARK(BM_BudgetCurve)
    ->ArgName("budget_pct_over_base")
    ->Arg(0)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
