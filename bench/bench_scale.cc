// Scaling: wall time of one Postcard slot solve (column generation) as the
// datacenter count and batch size grow, plus the flow baseline for contrast.
// This is the bench that justifies the reduced default figure scale on a
// single core (EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "core/column_generation.h"
#include "flow/baseline.h"
#include "sim/workload.h"

namespace {

using namespace postcard;

sim::UniformWorkload scale_workload(int dcs, int files) {
  sim::WorkloadParams p;
  p.num_datacenters = dcs;
  p.link_capacity = 30.0;
  p.files_per_slot_min = files;
  p.files_per_slot_max = files;
  p.deadline_min = 1;
  p.deadline_max = 8;
  p.size_min = 5.0;
  p.size_max = 25.0;
  p.num_slots = 1;
  p.seed = 21;
  return sim::UniformWorkload(p);
}

void BM_Scale_PostcardSlot(benchmark::State& state) {
  const sim::UniformWorkload w(
      scale_workload(static_cast<int>(state.range(0)),
                     static_cast<int>(state.range(1))));
  const auto files = w.batch(0);
  double obj = 0.0;
  for (auto _ : state) {
    charging::ChargeState charge(w.topology().num_links());
    const auto r = core::solve_postcard_by_paths(w.topology(), charge, 0, files);
    obj = r.objective;
    benchmark::ClobberMemory();
  }
  state.counters["objective"] = obj;
}
BENCHMARK(BM_Scale_PostcardSlot)
    ->ArgNames({"dcs", "files"})
    ->Args({4, 4})
    ->Args({6, 4})
    ->Args({8, 6})
    ->Args({10, 6})
    ->Args({12, 8})
    ->Unit(benchmark::kMillisecond);

void BM_Scale_FlowBaselineSlot(benchmark::State& state) {
  const sim::UniformWorkload w(
      scale_workload(static_cast<int>(state.range(0)),
                     static_cast<int>(state.range(1))));
  const auto files = w.batch(0);
  double cost = 0.0;
  for (auto _ : state) {
    flow::FlowBaseline baseline{net::Topology(w.topology())};
    baseline.schedule(0, files);
    cost = baseline.cost_per_interval();
    benchmark::ClobberMemory();
  }
  state.counters["cost"] = cost;
}
BENCHMARK(BM_Scale_FlowBaselineSlot)
    ->ArgNames({"dcs", "files"})
    ->Args({4, 4})
    ->Args({8, 6})
    ->Args({12, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
