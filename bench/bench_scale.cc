// Scale sweep: datacenter count x arrivals per slot (100+ DCs at 1k
// arrivals/slot), across every topology generator of src/net/generators.h
// — complete graph, Fat-Trees, leaf-spine (l2_switch), and random_sparse.
//
// Each configuration replays a seeded workload through the full runtime —
// sparse incremental time-expanded graph, split-batch sharding floor, the
// fail-fast plan auditor armed — under a fixed per-slot pivot budget, the
// production watchdog posture. Reported per config:
//
//   scale_<cfg>_slot_p50_ms / _slot_p99_ms   whole-slot latency
//   scale_<cfg>_degraded_slots               slots the ladder fired in
//   scale_<cfg>_rejected_share               admission pressure
//
// plus one sweep-wide marker, scale_ladder_first_engaged_dcs: the smallest
// datacenter count whose run engaged the degradation ladder (0 = never).
// The trajectory gate (scripts/summarize_benches.py) latches the latency
// keys by suffix and degraded_slots by name, so a scaling regression or the
// ladder engaging earlier in the sweep fails the build loudly.
//
// A completed run is itself an acceptance check: the auditor is in
// kFailFast mode, so an invalid committed plan at scale would throw
// instead of finishing.
//
// Build & run:  cmake --build build && ./build/bench/bench_scale
#include <benchmark/benchmark.h>

#include <iterator>
#include <memory>
#include <string>

#include "bench_json.h"
#include "net/generators.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

// Deterministic stand-in for the paper's U[1,10] per-link unit costs.
double link_cost(int a, int b) {
  return 1.0 + ((a * 131 + b * 17) % 90) / 10.0;
}

enum class Topo { kComplete, kFatTree, kLeafSpine, kRandomSparse };

struct ScaleConfig {
  const char* name;  // metric key stem
  Topo topo;
  int param_a;       // fat_tree k / leaf count / node count
  int param_b;       // spine count / average out-degree
  std::uint64_t seed;
  int arrivals;      // files per slot
  int deadline_min;  // >= topology diameter, else most files are
  int deadline_max;  //   structurally unroutable
  int num_slots;
};

// DC count rises 20 -> 45 -> 48 -> 80 -> 100 -> 125 while arrivals rise
// 50 -> 1000, across every generator family: the paper's complete overlay,
// Fat-Trees, a leaf-spine fabric (diameter 2), and a seeded sparse digraph
// (ring + chords; the longest deadlines in the sweep). Seeds for the
// original four configs are unchanged so their metrics stay comparable
// across commits.
constexpr ScaleConfig kConfigs[] = {
    {"complete20_a50", Topo::kComplete, 20, 0, 100, 50, 1, 3, 4},
    {"fat6_a200", Topo::kFatTree, 6, 0, 106, 200, 4, 6, 3},
    {"leafspine48_a400", Topo::kLeafSpine, 32, 16, 148, 400, 2, 4, 3},
    {"fat8_a500", Topo::kFatTree, 8, 0, 108, 500, 4, 6, 3},
    {"sparse100_a600", Topo::kRandomSparse, 100, 5, 200, 600, 5, 8, 3},
    {"fat10_a1000", Topo::kFatTree, 10, 0, 110, 1000, 4, 6, 3},
};
constexpr int kNumConfigs = static_cast<int>(std::size(kConfigs));

// Pivot budget per slot: generous for the small shapes, a hard wall the
// 100+ DC masters run into — which is the point: the bench reports where
// in the sweep the degradation ladder starts carrying the load.
constexpr long kPivotBudget = 20000;

std::unique_ptr<sim::WorkloadGenerator> make_workload(const ScaleConfig& c) {
  sim::WorkloadParams p;
  p.num_datacenters = c.param_a;
  p.link_capacity = 100.0;
  p.files_per_slot_min = c.arrivals;
  p.files_per_slot_max = c.arrivals;
  p.size_min = 10.0;
  p.size_max = 50.0;
  p.deadline_min = c.deadline_min;
  p.deadline_max = c.deadline_max;
  p.num_slots = c.num_slots;
  p.seed = c.seed;
  switch (c.topo) {
    case Topo::kComplete:
      return std::make_unique<sim::UniformWorkload>(p);
    case Topo::kFatTree:
      return std::make_unique<sim::TopologyWorkload>(
          net::fat_tree(c.param_a, p.link_capacity, link_cost), p);
    case Topo::kLeafSpine:
      return std::make_unique<sim::TopologyWorkload>(
          net::l2_switch(c.param_a, c.param_b, p.link_capacity, link_cost),
          p);
    case Topo::kRandomSparse:
      return std::make_unique<sim::TopologyWorkload>(
          net::random_sparse(c.param_a, c.param_b, c.seed, p.link_capacity,
                             link_cost),
          p);
  }
  return nullptr;
}

// Smallest DC count whose run degraded, latched across the sweep (the
// configs run in registration order within one process).
int g_first_ladder_dcs = 0;

void BM_Scale(benchmark::State& state) {
  const ScaleConfig& config = kConfigs[state.range(0)];
  const std::unique_ptr<sim::WorkloadGenerator> workload =
      make_workload(config);
  const int num_dcs = workload->topology().num_datacenters();

  runtime::RuntimeStats stats;
  for (auto _ : state) {
    runtime::RuntimeOptions options;
    options.slot_pivot_budget = kPivotBudget;
    // At this scale every group clone copies a 100+ DC charge ledger and
    // graph arena; the sharding floor keeps tiny stripes from paying it.
    options.min_group_files = 64;
    runtime::ControllerRuntime engine{net::Topology(workload->topology()),
                                      options};
    engine.add_postcard_backend();
    stats = engine.replay(*workload);
    benchmark::DoNotOptimize(stats.slots_processed);
  }

  const runtime::BackendStats& b = stats.backends[0];
  const double p50_ms = 1e3 * stats.slot_latency.quantile(0.5);
  const double p99_ms = 1e3 * stats.slot_latency.quantile(0.99);
  const long total = b.accepted_files + b.rejected_files;
  const double rejected_share =
      total > 0 ? static_cast<double>(b.rejected_files) / total : 0.0;
  if (b.degraded_slots > 0 && g_first_ladder_dcs == 0) {
    g_first_ladder_dcs = num_dcs;
  }

  state.counters["dcs"] = num_dcs;
  state.counters["arrivals"] = config.arrivals;
  state.counters["slot_p99_ms"] = p99_ms;
  state.counters["degraded_slots"] = static_cast<double>(b.degraded_slots);
  state.counters["rejected_share"] = rejected_share;
  const std::string key = std::string("scale_") + config.name;
  record_json_metric(key + "_slot_p50_ms", p50_ms);
  record_json_metric(key + "_slot_p99_ms", p99_ms);
  record_json_metric(key + "_degraded_slots",
                     static_cast<double>(b.degraded_slots));
  record_json_metric(key + "_rejected_share", rejected_share);
  if (state.range(0) == kNumConfigs - 1) {
    record_json_metric("scale_ladder_first_engaged_dcs",
                       static_cast<double>(g_first_ladder_dcs));
  }
}

BENCHMARK(BM_Scale)
    ->DenseRange(0, kNumConfigs - 1)
    ->ArgName("config")
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("scale");
