// Throughput and latency of the online controller runtime (src/runtime).
//
// Two questions, two benchmark families:
//
//   * IngressAdmission/threads:N — how many requests per second can the
//     thread-safe ingress admit with 1..16 concurrent producers hammering
//     submit()? Pure admission-control throughput: no LP solves.
//   * RuntimeReplay/workers:W — end-to-end slot engine with a real Postcard
//     backend replaying a seeded workload. W = 0 is the deterministic
//     inline mode; W >= 1 dispatches split-batch group solves onto the
//     worker pool (parallel_groups = max(2, W)). Counters report the mean
//     requests/sec and the p99 slot latency; `conflicts` counts group plans
//     the single writer had to re-solve against live state.
//   * RuntimeMultiPolicy/workers:W — Postcard + flow baseline on the same
//     slot clock; the pool solves the two policies concurrently, so slot
//     wall time drops from sum to max of the per-policy solve times.
//
// Interpreting worker scaling: google-benchmark's header prints the host's
// core count. On a single-core host (such as the CI container this repo is
// developed in) every worker count necessarily lands within a few percent
// of the inline mode — that parity is the expected result there, and the
// benchmark's value is confirming the pool adds no more than that overhead.
// Speedup claims require the multi-core readings.
//
// Build & run:  cmake --build build && ./build/bench/bench_runtime_throughput
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

sim::WorkloadParams runtime_params(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 400.0;
  // Batches large enough that the per-slot LP work dominates the slot
  // budget, so worker scaling (not queue bookkeeping) is what's measured.
  // Capacity is generous: a congested workload makes split-batch groups
  // oversubscribe links and the conflict re-solves drown the parallelism.
  p.files_per_slot_min = 8;
  p.files_per_slot_max = 20;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

net::FileRequest make_file(int id, int num_dcs) {
  net::FileRequest f;
  f.id = id;
  f.source = id % num_dcs;
  f.destination = (id + 1 + id / num_dcs) % num_dcs;
  if (f.destination == f.source) f.destination = (f.source + 1) % num_dcs;
  f.size = 10.0 + (id % 90);
  f.max_transfer_slots = 1 + id % 3;
  f.release_slot = id % 16;
  return f;
}

/// N producer threads race submissions into a bare ingress; measures the
/// admission-control path (validation + capacity check + queue push) alone.
void IngressAdmission(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kPerThread = 2000;
  constexpr int kDcs = 8;
  const net::Topology topology =
      net::Topology::complete(kDcs, 100.0, [](int, int) { return 2.0; });

  for (auto _ : state) {
    runtime::EventQueue queue;
    runtime::RequestIngress ingress(topology, queue);
    std::vector<std::thread> producers;
    producers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      producers.emplace_back([&ingress, t] {
        for (int i = 0; i < kPerThread; ++i) {
          ingress.submit(make_file(t * kPerThread + i, kDcs));
        }
      });
    }
    for (auto& p : producers) p.join();
    benchmark::DoNotOptimize(ingress.admitted());
  }
  state.SetItemsProcessed(state.iterations() * threads * kPerThread);
}

/// Full engine: replay a seeded workload through a Postcard backend with W
/// worker threads. Wall time is dominated by the per-slot LP solves, which
/// is exactly what the worker pool parallelises in split-batch mode.
void RuntimeReplay(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const sim::UniformWorkload workload(runtime_params(17));
  long requests = 0;
  double p99_slot = 0.0;
  double mean_slot = 0.0;
  double conflicts = 0.0;

  for (auto _ : state) {
    runtime::RuntimeOptions options;
    options.worker_threads = workers;
    options.parallel_groups = workers <= 1 ? 1 : std::max(2, workers);
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      options};
    engine.add_postcard_backend();
    const runtime::RuntimeStats stats = engine.replay(workload);
    requests += stats.submitted;
    p99_slot = stats.slot_latency.quantile(0.99);
    mean_slot = stats.slot_latency.mean_seconds();
    conflicts = static_cast<double>(stats.backends[0].conflict_resolves);
  }
  state.SetItemsProcessed(requests);
  state.counters["p99_slot_ms"] = 1e3 * p99_slot;
  state.counters["conflicts"] = conflicts;
  const std::string key = "replay_w" + std::to_string(workers);
  record_json_metric(key + "_p99_slot_ms", 1e3 * p99_slot);
  record_json_metric(key + "_mean_slot_ms", 1e3 * mean_slot);
}

/// RuntimeWarmStart/warm:{0,1} — the same deterministic replay with the
/// cross-slot basis cache off vs on. The deterministic-mode contract makes
/// both runs produce bit-identical cost series (asserted in the runtime
/// warm-start tests), so the delta in mean solve latency is attributable to
/// the warm starts alone: each accepted basis skips the first master's
/// phase 1. Counters expose the accept rate so a regression in remap
/// coverage (warm_accepts collapsing toward zero) shows up here even before
/// the latency delta does.
void RuntimeWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  const sim::UniformWorkload workload(runtime_params(17));
  double mean_solve_ms = 0.0;
  double accepts = 0.0;
  double colds = 0.0;

  for (auto _ : state) {
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      runtime::RuntimeOptions{}};
    core::PostcardOptions popts;
    popts.warm_start = warm;
    engine.add_postcard_backend(popts);
    const runtime::RuntimeStats stats = engine.replay(workload);
    mean_solve_ms = 1e3 * stats.solve_latency.mean_seconds();
    accepts = static_cast<double>(stats.backends[0].warm_accepts);
    colds = static_cast<double>(stats.backends[0].cold_starts);
  }
  state.counters["mean_solve_ms"] = mean_solve_ms;
  state.counters["warm_accepts"] = accepts;
  state.counters["cold_starts"] = colds;
  const std::string key = warm ? "warm" : "cold";
  record_json_metric(key + std::string("_mean_solve_ms"), mean_solve_ms);
  if (warm) {
    record_json_metric("warm_accept_rate",
                       (accepts + colds) > 0 ? accepts / (accepts + colds)
                                             : 0.0);
  }
}

/// Per-policy dispatch: Postcard and the flow baseline ride the same slot
/// clock; with workers the pool solves them concurrently, so the slot wall
/// time drops from sum to max of the two solve times.
void RuntimeMultiPolicy(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  const sim::UniformWorkload workload(runtime_params(17));
  long requests = 0;
  double p99_slot = 0.0;

  for (auto _ : state) {
    runtime::RuntimeOptions options;
    options.worker_threads = workers;
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      options};
    engine.add_postcard_backend();
    engine.add_flow_backend();
    const runtime::RuntimeStats stats = engine.replay(workload);
    requests += stats.submitted;
    p99_slot = stats.slot_latency.quantile(0.99);
  }
  state.SetItemsProcessed(requests);
  state.counters["p99_slot_ms"] = 1e3 * p99_slot;
}

// UseRealTime: rate counters must reflect wall clock — with worker threads
// the driver's CPU time is near zero while the pool does the solving.
BENCHMARK(IngressAdmission)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->UseRealTime();
BENCHMARK(RuntimeReplay)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();
BENCHMARK(RuntimeWarmStart)
    ->Arg(0)->Arg(1)
    ->ArgName("warm")
    ->UseRealTime();
BENCHMARK(RuntimeMultiPolicy)->Arg(0)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("runtime_throughput");
