// Fig. 7: average cost per time interval, throttled capacity (c = 30
// GB/tbar) and delay-tolerant files (max T_k = 8). Expected shape: the
// largest Postcard advantage of the four settings — tight capacity plus
// slack deadlines is exactly where time-shifting onto paid links pays off
// (Sec. VII). Read rejected_share alongside cost (see bench_fig6.cc).
#include "bench_common.h"

POSTCARD_FIGURE_BENCH(Fig7_c30_T8, 30.0, 8);
// Apples-to-apples: sizes U[10, 30] keep every file individually schedulable.
POSTCARD_FIGURE_BENCH_SMALL(Fig7_c30_T8, 30.0, 8, 30.0);

BENCHMARK_MAIN();
