// Deadline sweep: cost per interval as a function of the deadline spread
// max T_k, at both capacity levels. Interpolates between the four paper
// settings: the Postcard-vs-flow crossover should move with capacity, and
// both policies should get cheaper as files become more delay-tolerant.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace postcard;

void BM_DeadlineSweep_Postcard(benchmark::State& state) {
  const double capacity = static_cast<double>(state.range(0));
  const int max_deadline = static_cast<int>(state.range(1));
  bench::FigureSeries s;
  for (auto _ : state) {
    s = bench::run_figure_series(bench::Policy::kPostcard, capacity, max_deadline);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_DeadlineSweep_Postcard)
    ->ArgNames({"capacity", "maxT"})
    ->Args({30, 1})
    ->Args({30, 2})
    ->Args({30, 4})
    ->Args({30, 8})
    ->Args({100, 1})
    ->Args({100, 4})  // the {100, 8} corner duplicates Fig. 5
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_DeadlineSweep_FlowBased(benchmark::State& state) {
  const double capacity = static_cast<double>(state.range(0));
  const int max_deadline = static_cast<int>(state.range(1));
  bench::FigureSeries s;
  for (auto _ : state) {
    s = bench::run_figure_series(bench::Policy::kFlowBased, capacity,
                                 max_deadline);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_DeadlineSweep_FlowBased)
    ->ArgNames({"capacity", "maxT"})
    ->Args({30, 1})
    ->Args({30, 2})
    ->Args({30, 4})
    ->Args({30, 8})
    ->Args({100, 1})
    ->Args({100, 4})  // the {100, 8} corner duplicates Fig. 5
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
