// Fig. 5: average cost per time interval, ample capacity (c = 100 GB/tbar)
// and delay-tolerant files (max T_k = 8). Expected shape: flow-based still
// wins, but both policies get cheaper than in Fig. 4 — more slack means
// more opportunity to time-shift (Sec. VII).
#include "bench_common.h"

POSTCARD_FIGURE_BENCH(Fig5_c100_T8, 100.0, 8);

BENCHMARK_MAIN();
