// Percentile accounting ablation: both policies optimize against the
// 100-th percentile surrogate (the paper's simplification), but ISPs often
// charge the 95-th. This bench replays one Fig. 7 style run and re-accounts
// the recorded per-slot traffic at several percentiles over a longer billing
// period (idle slots count as zero traffic, so lower percentiles forgive
// bursts that occupy less than (100-q)% of the period).
#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_common.h"

namespace {

using namespace postcard;

// The simulation is expensive and identical across percentiles, so each
// policy's run is executed once and its recorded traffic reused.
const sim::SchedulingPolicy& simulated_policy(bench::Policy which) {
  static std::map<int, std::unique_ptr<sim::SchedulingPolicy>> cache;
  auto& slot = cache[static_cast<int>(which)];
  if (!slot) {
    const sim::UniformWorkload workload(bench::figure_params(30.0, 8, 1000));
    slot = bench::make_policy(which, workload.topology());
    sim::run_simulation(*slot, workload);
  }
  return *slot;
}

void account(benchmark::State& state, bench::Policy which, double q) {
  const sim::UniformWorkload workload(bench::figure_params(30.0, 8, 1000));
  const sim::SchedulingPolicy& policy = simulated_policy(which);
  double cost = 0.0;
  for (auto _ : state) {
    // Billing period: 4x the simulated horizon (the rest of the period is
    // quiet), mirroring a provider that bursts for part of a billing cycle.
    const auto& recorder = policy.charge_state().recorder();
    const int period = std::max(1, recorder.num_slots()) * 4;
    cost = 0.0;
    for (int l = 0; l < workload.topology().num_links(); ++l) {
      cost += workload.topology().link(l).unit_cost *
              recorder.charged_volume(l, q, period);
    }
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_per_interval"] = cost;
  state.counters["percentile"] = q;
}

void BM_Percentile_Postcard(benchmark::State& state) {
  account(state, bench::Policy::kPostcard, static_cast<double>(state.range(0)));
}
BENCHMARK(BM_Percentile_Postcard)
    ->Arg(80)
    ->Arg(90)
    ->Arg(95)
    ->Arg(100)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_Percentile_FlowBased(benchmark::State& state) {
  account(state, bench::Policy::kFlowBased, static_cast<double>(state.range(0)));
}
BENCHMARK(BM_Percentile_FlowBased)
    ->Arg(80)
    ->Arg(90)
    ->Arg(95)
    ->Arg(100)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
