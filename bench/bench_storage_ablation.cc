// Storage ablation: how much of Postcard's advantage comes from holdovers at
// *intermediate* datacenters? "postcard (no storage)" keeps source pacing
// and destination accumulation but forbids intermediate holdovers; the gap
// to full Postcard isolates the value of the paper's store-and-forward idea
// in the tight-capacity regime of Figs. 6-7.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace postcard;

bench::FigureSeries run_no_storage_series(double capacity, int max_deadline) {
  std::vector<double> costs, rejected;
  bench::FigureSeries series;
  for (int run = 0; run < bench::figure_runs(); ++run) {
    const sim::UniformWorkload workload(
        bench::figure_params(capacity, max_deadline, 1000 + 17 * run));
    core::PostcardOptions opts;
    opts.formulation.allow_storage = false;
    core::PostcardController policy{net::Topology(workload.topology()), opts};
    const sim::RunResult r = sim::run_simulation(policy, workload);
    costs.push_back(r.final_cost_per_interval);
    rejected.push_back(r.total_volume > 0.0 ? r.rejected_volume / r.total_volume
                                            : 0.0);
    series.lp_iterations += r.lp_iterations;
  }
  series.cost = sim::summarize(costs);
  series.rejected_share = sim::summarize(rejected);
  return series;
}

void BM_StorageAblation_Full(benchmark::State& state) {
  bench::FigureSeries s;
  for (auto _ : state) {
    s = bench::run_figure_series(bench::Policy::kPostcard, 30.0, 8);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_StorageAblation_Full)->Unit(benchmark::kSecond)->Iterations(1);

void BM_StorageAblation_NoIntermediateStorage(benchmark::State& state) {
  bench::FigureSeries s;
  for (auto _ : state) {
    s = run_no_storage_series(30.0, 8);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_StorageAblation_NoIntermediateStorage)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
