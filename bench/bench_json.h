// Structured benchmark output: BENCH_<name>.json at the repo root.
//
// Google-benchmark counters are great on a terminal but awkward to diff
// between runs; the regression gate (scripts/summarize_benches.py
// --check-trajectory, invoked by scripts/run_all.sh) wants a flat
// {metric: number} map per bench binary. Benches call
// record_json_metric() next to their state.counters[...] lines and end
// with POSTCARD_BENCHMARK_MAIN_WITH_JSON("name") instead of
// BENCHMARK_MAIN(); the macro runs the benchmarks and then writes
// BENCH_<name>.json into POSTCARD_BENCH_JSON_DIR (default: the current
// working directory — run_all.sh runs benches from the repo root, so the
// files land there and are committed as the trajectory baseline).
//
// The registry is process-global and last-write-wins per key, so a bench
// family that runs several times (google-benchmark's estimation passes)
// publishes its final reading.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include <benchmark/benchmark.h>

namespace postcard::bench {

inline std::map<std::string, double>& bench_json_metrics() {
  static std::map<std::string, double> metrics;
  return metrics;
}

inline void record_json_metric(const std::string& key, double value) {
  bench_json_metrics()[key] = value;
}

/// Writes BENCH_<bench_name>.json; returns false (after a loud stderr
/// line) on I/O failure so the bench binary exits nonzero.
inline bool write_bench_json(const std::string& bench_name) {
  const char* dir = std::getenv("POSTCARD_BENCH_JSON_DIR");
  const std::string path = (dir != nullptr && dir[0] != '\0')
                               ? std::string(dir) + "/BENCH_" + bench_name + ".json"
                               : "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_JSON_WRITE_FAILED %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"metrics\": {", bench_name.c_str());
  bool first = true;
  for (const auto& [key, value] : bench_json_metrics()) {
    if (!std::isfinite(value)) continue;  // inf/nan are not JSON numbers
    std::fprintf(f, "%s\n    \"%s\": %.17g", first ? "" : ",", key.c_str(),
                 value);
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  const bool ok = std::fclose(f) == 0;
  if (!ok) std::fprintf(stderr, "BENCH_JSON_WRITE_FAILED %s\n", path.c_str());
  return ok;
}

}  // namespace postcard::bench

/// Drop-in replacement for BENCHMARK_MAIN() that also writes
/// BENCH_<name>.json from whatever the benches record_json_metric()'d.
#define POSTCARD_BENCHMARK_MAIN_WITH_JSON(bench_name)                    \
  int main(int argc, char** argv) {                                      \
    ::benchmark::Initialize(&argc, argv);                                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;  \
    ::benchmark::RunSpecifiedBenchmarks();                               \
    ::benchmark::Shutdown();                                             \
    return ::postcard::bench::write_bench_json(bench_name) ? 0 : 1;      \
  }                                                                      \
  static_assert(true, "require a trailing semicolon")
