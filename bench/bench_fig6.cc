// Fig. 6: average cost per time interval, throttled capacity (c = 30
// GB/tbar) and urgent files (max T_k = 3). Expected shape: Postcard takes
// the lead — cheap links saturate, and only store-and-forward can shift
// traffic into their already-paid later slots (Sec. VII).
//
// Note (EXPERIMENTS.md discusses this): with c = 30 the workload contains
// files that are unschedulable in the slotted model (> 30 GB with a 1-slot
// deadline needs more than one slot per hop), so the rejected_share counter
// must be read together with the cost.
#include "bench_common.h"

POSTCARD_FIGURE_BENCH(Fig6_c30_T3, 30.0, 3);
// Apples-to-apples: sizes U[10, 30] keep every file individually schedulable.
POSTCARD_FIGURE_BENCH_SMALL(Fig6_c30_T3, 30.0, 3, 30.0);

BENCHMARK_MAIN();
