// Solver ablation: the same Postcard slot problem solved three ways —
// direct arc-flow LP via the revised simplex, via the interior-point
// method, and via path-based column generation (the controller's default).
// DESIGN.md calls out the CG reformulation as the load-bearing design
// choice; this bench quantifies it.
#include <benchmark/benchmark.h>

#include "core/column_generation.h"
#include "core/formulation.h"
#include "lp/solver.h"
#include "sim/workload.h"

namespace {

using namespace postcard;

struct Instance {
  net::Topology topology;
  charging::ChargeState charge;
  std::vector<net::FileRequest> files;
};

Instance make_instance(int dcs, int files) {
  sim::WorkloadParams p;
  p.num_datacenters = dcs;
  p.link_capacity = 30.0;
  p.files_per_slot_min = files;
  p.files_per_slot_max = files;
  p.deadline_min = 1;
  p.deadline_max = 4;
  p.size_min = 5.0;
  p.size_max = 25.0;  // sizes that keep every file schedulable at c = 30
  p.num_slots = 1;
  p.seed = 11;
  sim::UniformWorkload w(p);
  return {net::Topology(w.topology()),
          charging::ChargeState(w.topology().num_links()), w.batch(0)};
}

void BM_DirectSimplex(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  double obj = 0.0;
  long iters = 0;
  for (auto _ : state) {
    core::TimeExpandedFormulation f(inst.topology, inst.charge, 0, inst.files,
                                    {});
    const auto sol = lp::solve(f.model());
    obj = sol.objective;
    iters = sol.iterations;
    benchmark::ClobberMemory();
  }
  state.counters["objective"] = obj;
  state.counters["lp_iterations"] = static_cast<double>(iters);
}
BENCHMARK(BM_DirectSimplex)
    ->Args({6, 4})
    ->Args({8, 6})
    ->Args({10, 8})
    ->Unit(benchmark::kMillisecond);

void BM_DirectInteriorPoint(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  lp::SolverOptions opts;
  opts.method = lp::Method::kInteriorPoint;
  double obj = 0.0;
  for (auto _ : state) {
    core::TimeExpandedFormulation f(inst.topology, inst.charge, 0, inst.files,
                                    {});
    const auto sol = lp::solve(f.model(), opts);
    obj = sol.objective;
    benchmark::ClobberMemory();
  }
  state.counters["objective"] = obj;
}
BENCHMARK(BM_DirectInteriorPoint)
    ->Args({6, 4})
    ->Args({8, 6})
    ->Unit(benchmark::kMillisecond);

void BM_ColumnGeneration(benchmark::State& state) {
  const Instance inst = make_instance(static_cast<int>(state.range(0)),
                                      static_cast<int>(state.range(1)));
  double obj = 0.0;
  int cols = 0;
  for (auto _ : state) {
    const auto r =
        core::solve_postcard_by_paths(inst.topology, inst.charge, 0, inst.files);
    obj = r.objective;
    cols = r.path_columns;
    benchmark::ClobberMemory();
  }
  state.counters["objective"] = obj;
  state.counters["path_columns"] = cols;
}
BENCHMARK(BM_ColumnGeneration)
    ->Args({6, 4})
    ->Args({8, 6})
    ->Args({10, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
