// Cost of graceful degradation (DESIGN.md §9) on the Fig. 4 workload.
//
// Two families:
//
//   * DegradationCost/budget:B — replay the workload with a per-slot pivot
//     budget of B (0 = unlimited, the full-LP reference). As B shrinks the
//     watchdog cuts column generation earlier and more slots land on the
//     truncated-CG / greedy rungs; counters report where the ladder settled
//     and what the degradation cost relative to the slots' entry charge
//     (`cost_delta` = BackendStats::degraded_cost_delta). Budgets are pure
//     pivot counts, so every reading is deterministic.
//   * DegradationChaos/slots:K — a clean run except for K injected one-shot
//     stalls (pivot budget 0 at evenly spaced slots): the price of riding
//     the greedy rung through K solver outages while every file stays
//     accounted (accepted + rejected + failed == admitted, asserted in the
//     chaos test suite; the bench reports the delta against the clean run).
//
// Build & run:  cmake --build build && ./build/bench/bench_degradation
#include <benchmark/benchmark.h>

#include <string>

#include "bench_json.h"
#include "runtime/runtime.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

// Fig. 4 shape (paper Sec. VII): ample capacity, deadlines U[1,3], unit
// costs U[1,10], sizes U[10,100] GB; more slots than the test suite so the
// per-rung distribution has room to spread.
sim::WorkloadParams fig4_params(std::uint64_t seed) {
  sim::WorkloadParams p;
  p.num_datacenters = 6;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 4;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 20;
  p.seed = seed;
  return p;
}

void BM_DegradationCost(benchmark::State& state) {
  const long budget = state.range(0);
  const sim::UniformWorkload workload(fig4_params(42));
  runtime::RuntimeStats stats;

  for (auto _ : state) {
    runtime::RuntimeOptions options;
    options.slot_pivot_budget = budget;
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      options};
    engine.add_postcard_backend();
    stats = engine.replay(workload);
    benchmark::DoNotOptimize(stats.slots_processed);
  }

  const runtime::BackendStats& b = stats.backends[0];
  state.counters["budget"] = static_cast<double>(budget);
  state.counters["cost_per_interval"] = b.cost_series.back();
  state.counters["cost_delta"] = b.degraded_cost_delta;
  state.counters["degraded_slots"] = static_cast<double>(b.degraded_slots);
  state.counters["rung_truncated"] = static_cast<double>(b.rung_truncated);
  state.counters["rung_greedy"] = static_cast<double>(b.rung_greedy);
  state.counters["carryover"] = static_cast<double>(b.carryover_files);
  state.counters["failed"] = static_cast<double>(b.failed_files);
  const std::string key = "budget" + std::to_string(budget);
  record_json_metric(key + "_degraded_slots",
                     static_cast<double>(b.degraded_slots));
  record_json_metric(key + "_cost_delta", b.degraded_cost_delta);
}

void BM_DegradationChaos(benchmark::State& state) {
  const int stalls = static_cast<int>(state.range(0));
  const sim::UniformWorkload workload(fig4_params(42));
  const int num_slots = workload.num_slots();

  // Clean reference once, outside the timed loop.
  double clean_cost = 0.0;
  {
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      runtime::RuntimeOptions{}};
    engine.add_postcard_backend();
    clean_cost = engine.replay(workload).backends[0].cost_series.back();
  }

  runtime::RuntimeStats stats;
  for (auto _ : state) {
    runtime::ControllerRuntime engine{net::Topology(workload.topology()),
                                      runtime::RuntimeOptions{}};
    engine.add_postcard_backend();
    for (int k = 0; k < stalls; ++k) {
      engine.stall_solver(1 + k * num_slots / (stalls + 1), 0);
    }
    stats = engine.replay(workload);
    benchmark::DoNotOptimize(stats.slots_processed);
  }

  const runtime::BackendStats& b = stats.backends[0];
  state.counters["cost_per_interval"] = b.cost_series.back();
  state.counters["cost_vs_clean"] = b.cost_series.back() - clean_cost;
  state.counters["rung_greedy"] = static_cast<double>(b.rung_greedy);
  state.counters["carryover"] = static_cast<double>(b.carryover_files);
  state.counters["failed"] = static_cast<double>(b.failed_files);
  record_json_metric("chaos" + std::to_string(stalls) + "_cost_vs_clean",
                     b.cost_series.back() - clean_cost);
}

BENCHMARK(BM_DegradationCost)
    ->Arg(0)->Arg(10)->Arg(25)->Arg(50)->Arg(100)->Arg(400)
    ->ArgName("budget");
BENCHMARK(BM_DegradationChaos)->Arg(1)->Arg(3)->Arg(6)->ArgName("slots");

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("degradation");
