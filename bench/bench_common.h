// Shared harness for the figure-reproduction benchmarks.
//
// Each Fig. 4-7 binary replays `runs` seeded workloads through a policy and
// reports the mean final cost per interval with its 95% confidence interval
// (the paper's metric) as google-benchmark counters, one benchmark per
// policy. Absolute wall time of the benchmark is the LP solving effort and
// is interesting in its own right, but the scientific output is the
// counters.
//
// Default scale is reduced so a full `for b in build/bench/*; do $b; done`
// sweep finishes on one core (the paper's 20 DCs x 10 runs x 100 slots
// needs hours of LP solves); set POSTCARD_PAPER_SCALE=1 for the paper's
// exact parameters. EXPERIMENTS.md records both configurations.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace postcard::bench {

inline bool paper_scale() {
  const char* env = std::getenv("POSTCARD_PAPER_SCALE");
  return env != nullptr && env[0] == '1';
}

/// Workload parameters of Sec. VII with the given capacity / deadline knobs.
/// Reduced scale unless POSTCARD_PAPER_SCALE=1.
inline sim::WorkloadParams figure_params(double capacity, int max_deadline,
                                         std::uint64_t seed) {
  sim::WorkloadParams p;
  p.link_capacity = capacity;
  p.deadline_min = 1;
  p.deadline_max = max_deadline;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.seed = seed;
  if (paper_scale()) {
    p.num_datacenters = 20;
    p.files_per_slot_min = 1;
    p.files_per_slot_max = 20;
    p.num_slots = 100;
  } else {
    p.num_datacenters = 10;
    p.files_per_slot_min = 1;
    p.files_per_slot_max = 6;
    p.num_slots = 16;
  }
  return p;
}

inline int figure_runs() { return paper_scale() ? 10 : 3; }

enum class Policy { kPostcard, kFlowBased };

inline std::unique_ptr<sim::SchedulingPolicy> make_policy(
    Policy which, const net::Topology& topology) {
  if (which == Policy::kPostcard) {
    core::PostcardOptions opts;
    // Bench stopping: a ~0.2% column-generation gap is far below the
    // run-to-run confidence intervals and several times faster to reach.
    opts.cg_relative_gap = 2e-3;
    opts.cg_stall_rounds = 15;
    return std::make_unique<core::PostcardController>(net::Topology(topology),
                                                      opts);
  }
  return std::make_unique<flow::FlowBaseline>(net::Topology(topology));
}

struct FigureSeries {
  sim::Summary cost;            // final cost per interval across runs
  sim::Summary rejected_share;  // rejected volume / offered volume
  long lp_iterations = 0;
};

/// Runs `figure_runs()` independent seeded simulations of one policy.
/// `size_max` caps the file-size distribution: the paper's U[10,100], or
/// U[10, capacity] for the apples-to-apples series of Figs. 6-7 where every
/// file satisfies the Sec. III single-slot-per-hop validity assumption.
inline FigureSeries run_figure_series(Policy which, double capacity,
                                      int max_deadline,
                                      double size_max = 100.0) {
  std::vector<double> costs;
  std::vector<double> rejected;
  FigureSeries series;
  for (int run = 0; run < figure_runs(); ++run) {
    sim::WorkloadParams params =
        figure_params(capacity, max_deadline, 1000 + 17 * run);
    params.size_max = size_max;
    params.size_min = std::min(params.size_min, size_max);
    const sim::UniformWorkload workload(params);
    auto policy = make_policy(which, workload.topology());
    const sim::RunResult r = sim::run_simulation(*policy, workload);
    costs.push_back(r.final_cost_per_interval);
    rejected.push_back(r.total_volume > 0.0 ? r.rejected_volume / r.total_volume
                                            : 0.0);
    series.lp_iterations += r.lp_iterations;
  }
  series.cost = sim::summarize(costs);
  series.rejected_share = sim::summarize(rejected);
  return series;
}

/// Publishes a series on a benchmark state as counters. When `json_key` is
/// non-empty the headline numbers also land in the BENCH_<name>.json
/// registry (a no-op unless the binary's main writes it — see
/// bench_json.h).
inline void report_series(::benchmark::State& state, const FigureSeries& s,
                          const std::string& json_key = "") {
  state.counters["cost_mean"] = s.cost.mean;
  state.counters["cost_ci95"] = s.cost.ci95_halfwidth;
  state.counters["rejected_share"] = s.rejected_share.mean;
  state.counters["runs"] = s.cost.n;
  if (!json_key.empty()) {
    record_json_metric(json_key + "_cost_mean", s.cost.mean);
    record_json_metric(json_key + "_rejected_share", s.rejected_share.mean);
  }
}

/// Registers the Postcard and flow-based series of one figure, plus (when
/// `small_size_max` > 0) an apples-to-apples pair whose file sizes respect
/// the single-slot validity assumption so neither policy rejects.
#define POSTCARD_FIGURE_BENCH_SMALL(fig, capacity, max_deadline, small_max)    \
  static void BM_##fig##_Postcard_SmallFiles(::benchmark::State& state) {      \
    postcard::bench::FigureSeries series;                                      \
    for (auto _ : state) {                                                     \
      series = postcard::bench::run_figure_series(                             \
          postcard::bench::Policy::kPostcard, capacity, max_deadline,          \
          small_max);                                                          \
    }                                                                          \
    postcard::bench::report_series(state, series,                              \
                                   #fig "_Postcard_SmallFiles");               \
  }                                                                            \
  BENCHMARK(BM_##fig##_Postcard_SmallFiles)                                    \
      ->Unit(benchmark::kSecond)                                               \
      ->Iterations(1);                                                         \
  static void BM_##fig##_FlowBased_SmallFiles(::benchmark::State& state) {     \
    postcard::bench::FigureSeries series;                                      \
    for (auto _ : state) {                                                     \
      series = postcard::bench::run_figure_series(                             \
          postcard::bench::Policy::kFlowBased, capacity, max_deadline,         \
          small_max);                                                          \
    }                                                                          \
    postcard::bench::report_series(state, series,                              \
                                   #fig "_FlowBased_SmallFiles");              \
  }                                                                            \
  BENCHMARK(BM_##fig##_FlowBased_SmallFiles)                                   \
      ->Unit(benchmark::kSecond)                                               \
      ->Iterations(1)

/// Registers the Postcard and flow-based series of one figure.
#define POSTCARD_FIGURE_BENCH(fig, capacity, max_deadline)                     \
  static void BM_##fig##_Postcard(::benchmark::State& state) {                 \
    postcard::bench::FigureSeries series;                                      \
    for (auto _ : state) {                                                     \
      series = postcard::bench::run_figure_series(                             \
          postcard::bench::Policy::kPostcard, capacity, max_deadline);         \
    }                                                                          \
    postcard::bench::report_series(state, series, #fig "_Postcard");           \
  }                                                                            \
  BENCHMARK(BM_##fig##_Postcard)->Unit(benchmark::kSecond)->Iterations(1);     \
  static void BM_##fig##_FlowBased(::benchmark::State& state) {                \
    postcard::bench::FigureSeries series;                                      \
    for (auto _ : state) {                                                     \
      series = postcard::bench::run_figure_series(                             \
          postcard::bench::Policy::kFlowBased, capacity, max_deadline);        \
    }                                                                          \
    postcard::bench::report_series(state, series, #fig "_FlowBased");          \
  }                                                                            \
  BENCHMARK(BM_##fig##_FlowBased)->Unit(benchmark::kSecond)->Iterations(1)

}  // namespace postcard::bench
