// Fig. 4: average cost per time interval, ample capacity (c = 100 GB/tbar)
// and urgent files (max T_k = 3). Expected shape: the flow-based approach
// beats Postcard — store-and-forward is bursty and capacity is not the
// bottleneck (Sec. VII).
#include "bench_common.h"

POSTCARD_FIGURE_BENCH(Fig4_c100_T3, 100.0, 3);

POSTCARD_BENCHMARK_MAIN_WITH_JSON("fig4");
