// Solver hot-path split: where does a slot solve spend its time, and how
// much do the hot-path optimizations buy?
//
// Three benchmark families over the same Fig. 4-shaped workload (6 DCs,
// generous capacity, 8-20 files/slot, deadlines 1-3 — the
// bench_runtime_throughput replay shape, seed 17):
//
//   * HotpathSlotSolve/opt:{0,1} — PostcardController::schedule per slot.
//     opt:0 is the pre-optimization configuration (no in-place master
//     resumes, no dual warm starts, serial pricing); opt:1 resumes the
//     master on the incumbent factorization, seeds each slot from the
//     previous slot's duals and shards pricing across 4 worker threads.
//     The mean/p99 slot solve, the pricing-vs-master wall split and the
//     warm/dual-warm accept rates land in BENCH_solver_hotpath.json.
//   * HotpathColumnGeneration — solve_postcard_by_paths directly (no
//     controller admission around it), for the columns/sec rate and the
//     resumed-solve share of the pure column-generation loop.
//   * HotpathDCRoute — the DCRoute single-path rung as a speed yardstick:
//     one DP + one reservation sweep per file, no LP at all, with the cost
//     premium over the LP-optimal controller reported alongside.
//
// Single-core note: on a 1-core host the 4 pricing threads only add pool
// overhead — the opt:1 gains there come from the serial wins (factorization
// reuse above all). Thread scaling needs a multi-core reading.
//
// Build & run:  cmake --build build && ./build/bench/bench_solver_hotpath
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "base/worker_pool.h"
#include "bench_json.h"
#include "core/column_generation.h"
#include "core/dcroute.h"
#include "core/postcard.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

sim::WorkloadParams fig4_shape(std::uint64_t seed) {
  sim::WorkloadParams p;  // the bench_runtime_throughput replay shape
  p.num_datacenters = 6;
  p.link_capacity = 400.0;
  p.files_per_slot_min = 8;
  p.files_per_slot_max = 20;
  p.size_min = 10.0;
  p.size_max = 100.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = 10;
  p.seed = seed;
  return p;
}

/// Drives one controller over every workload slot; returns the per-slot
/// schedule() wall times and folds the outcome counters into `total`.
std::vector<double> run_slots(core::PostcardController& controller,
                              const sim::UniformWorkload& workload,
                              sim::ScheduleOutcome& total) {
  std::vector<double> slot_seconds;
  slot_seconds.reserve(static_cast<std::size_t>(workload.num_slots()));
  for (int slot = 0; slot < workload.num_slots(); ++slot) {
    const auto batch = workload.batch(slot);
    const auto t0 = std::chrono::steady_clock::now();
    const sim::ScheduleOutcome o = controller.schedule(slot, batch);
    slot_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    total.lp_iterations += o.lp_iterations;
    total.lp_solves += o.lp_solves;
    total.warm_accepts += o.warm_accepts;
    total.cold_starts += o.cold_starts;
    total.pricing_seconds += o.pricing_seconds;
    total.master_seconds += o.master_seconds;
    total.resumed_solves += o.resumed_solves;
    total.dual_warm_attempts += o.dual_warm_attempts;
    total.dual_seed_columns += o.dual_seed_columns;
  }
  return slot_seconds;
}

double mean_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

double p99_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank =
      std::min(v.size() - 1,
               static_cast<std::size_t>(0.99 * static_cast<double>(v.size())));
  return v[rank];
}

/// Whole-controller slot solves, baseline vs optimized hot path.
void HotpathSlotSolve(benchmark::State& state) {
  const bool opt = state.range(0) != 0;
  const sim::UniformWorkload workload(fig4_shape(17));
  double mean_ms = 0.0, p99_ms = 0.0, cost = 0.0;
  sim::ScheduleOutcome total;

  // The JSON metrics keep the best (minimum-mean) iteration as one
  // consistent snapshot: the replay is deterministic, so iteration-to-
  // iteration spread is pure host noise and the minimum is the stable
  // steady-state estimate (this box swings tens of percent between runs).
  double best_mean_ms = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    sim::ScheduleOutcome iter_total;
    core::PostcardOptions popts;
    popts.cg_reuse_factorization = opt;
    popts.cg_dual_warm = opt;
    popts.pricing_threads = opt ? 4 : 0;
    core::PostcardController controller{net::Topology(workload.topology()),
                                        popts};
    const std::vector<double> seconds =
        run_slots(controller, workload, iter_total);
    const double iter_mean_ms = 1e3 * mean_of(seconds);
    if (iter_mean_ms < best_mean_ms) {
      best_mean_ms = iter_mean_ms;
      mean_ms = iter_mean_ms;
      p99_ms = 1e3 * p99_of(seconds);
      cost = controller.cost_per_interval();
      total = iter_total;
    }
  }
  state.counters["mean_slot_ms"] = mean_ms;
  state.counters["p99_slot_ms"] = p99_ms;
  state.counters["resumed"] = static_cast<double>(total.resumed_solves);

  const std::string key = opt ? "hotpath_opt" : "hotpath_baseline";
  record_json_metric(key + "_mean_slot_solve_ms", mean_ms);
  record_json_metric(key + "_p99_slot_solve_ms", p99_ms);
  record_json_metric(key + "_cost_per_interval", cost);
  const double lp_wall = total.pricing_seconds + total.master_seconds;
  record_json_metric(key + "_pricing_seconds", total.pricing_seconds);
  record_json_metric(key + "_master_seconds", total.master_seconds);
  record_json_metric(
      key + "_pricing_share",
      lp_wall > 0.0 ? total.pricing_seconds / lp_wall : 0.0);
  if (opt) {
    const double starts = total.warm_accepts + total.cold_starts;
    record_json_metric("hotpath_warm_accept_rate",
                       starts > 0 ? total.warm_accepts / starts : 0.0);
    // Slot 0 has no previous duals, so attempts top out at slots - 1.
    record_json_metric(
        "hotpath_dual_warm_attempt_rate",
        total.lp_solves > 1
            ? static_cast<double>(total.dual_warm_attempts) /
                  static_cast<double>(total.lp_solves - 1)
            : 0.0);
    record_json_metric("hotpath_dual_seed_columns",
                       static_cast<double>(total.dual_seed_columns));
    record_json_metric("hotpath_resumed_solves",
                       static_cast<double>(total.resumed_solves));
  }
}

/// The pure column-generation loop, for columns/sec and the resume share of
/// all master solves (rounds). Commits each slot's plans so later slots
/// price against the accumulated charge state, like the controller does.
void HotpathColumnGeneration(benchmark::State& state) {
  const sim::UniformWorkload workload(fig4_shape(17));
  base::WorkerPool pool(4);
  double columns_per_sec = 0.0, resumed_share = 0.0;

  for (auto _ : state) {
    charging::ChargeState charge(workload.topology().num_links());
    core::MasterWarmCache cache;
    core::PathSolveOptions popts;
    popts.dual_warm = true;
    popts.pricing_pool = &pool;
    long columns = 0, rounds = 0, resumed = 0;
    double lp_seconds = 0.0;
    for (int slot = 0; slot < workload.num_slots(); ++slot) {
      const core::PathSolveResult r = core::solve_postcard_by_paths(
          workload.topology(), charge, slot, workload.batch(slot), popts,
          &cache);
      columns += r.path_columns;
      rounds += r.rounds;
      resumed += r.resumed_solves;
      lp_seconds += r.pricing_seconds + r.master_seconds;
      for (const core::FilePlan& plan : r.plans) {
        for (const core::Transfer& t : plan.transfers) {
          if (!t.storage()) charge.commit(t.link, t.slot, t.volume);
        }
      }
    }
    // Best iteration again (max rate == min wall): see HotpathSlotSolve.
    columns_per_sec = std::max(
        columns_per_sec,
        lp_seconds > 0.0 ? static_cast<double>(columns) / lp_seconds : 0.0);
    resumed_share = rounds > 0 ? static_cast<double>(resumed) /
                                     static_cast<double>(rounds)
                               : 0.0;
  }
  state.counters["columns_per_sec"] = columns_per_sec;
  state.counters["resumed_share"] = resumed_share;
  record_json_metric("hotpath_columns_per_sec", columns_per_sec);
  record_json_metric("hotpath_cg_resumed_share", resumed_share);
}

/// DCRoute as the speed yardstick: no LP anywhere, one DP + one reservation
/// sweep per file. The cost premium over the LP controller quantifies what
/// the ladder gives up when this rung fires.
void HotpathDCRoute(benchmark::State& state) {
  const sim::UniformWorkload workload(fig4_shape(17));
  double mean_ms = 0.0, cost = 0.0;
  double rejected = 0.0;

  double best_mean_ms = std::numeric_limits<double>::infinity();
  for (auto _ : state) {
    core::DCRouteScheduler scheduler{net::Topology(workload.topology())};
    std::vector<double> seconds;
    double iter_rejected = 0.0;
    for (int slot = 0; slot < workload.num_slots(); ++slot) {
      const auto batch = workload.batch(slot);
      const auto t0 = std::chrono::steady_clock::now();
      const sim::ScheduleOutcome o = scheduler.schedule(slot, batch);
      seconds.push_back(
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
      iter_rejected += static_cast<double>(o.rejected_ids.size());
    }
    const double iter_mean_ms = 1e3 * mean_of(seconds);
    if (iter_mean_ms < best_mean_ms) {  // min across iterations, as above
      best_mean_ms = iter_mean_ms;
      mean_ms = iter_mean_ms;
      cost = scheduler.cost_per_interval();
      rejected = iter_rejected;
    }
  }
  state.counters["mean_slot_ms"] = mean_ms;
  state.counters["rejected"] = rejected;
  record_json_metric("hotpath_dcroute_mean_slot_solve_ms", mean_ms);
  record_json_metric("hotpath_dcroute_cost_per_interval", cost);
  record_json_metric("hotpath_dcroute_rejected_files", rejected);
}

BENCHMARK(HotpathSlotSolve)->Arg(0)->Arg(1)->ArgName("opt")->UseRealTime();
BENCHMARK(HotpathColumnGeneration)->UseRealTime();
BENCHMARK(HotpathDCRoute)->UseRealTime();

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("solver_hotpath");
