// Fig. 3 (time-expanded example): 4 datacenters, link capacity 5, two files
// released at slot 3 — File 1 (D2 -> D4, size 8, T = 4) and File 2
// (D1 -> D4, size 10, T = 2).
//
// The paper's per-link prices are only shown in the figure artwork and are
// not recoverable from the text (DESIGN.md documents this substitution), so
// this bench uses prices that preserve the story: D1->D4 is the cheapest
// link and File 2 saturates it for the first two slots. The flow-based
// model, needing constant rates over File 1's whole lifetime, finds it
// blocked and pays for the expensive detour; Postcard stores File 1 and
// rides the already-paid D1->D4 slots afterwards.
#include <benchmark/benchmark.h>

#include "core/postcard.h"
#include "flow/baseline.h"

namespace {

postcard::net::Topology fig3_topology() {
  // D1=0, D2=1, D3=2, D4=3; capacity 5 everywhere.
  postcard::net::Topology t(4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) t.set_link(i, j, 5.0, 6.0);
    }
  }
  t.set_link(0, 3, 5.0, 1.0);   // D1 -> D4: cheapest
  t.set_link(1, 0, 5.0, 2.0);   // D2 -> D1
  t.set_link(1, 2, 5.0, 4.0);   // D2 -> D3
  t.set_link(2, 3, 5.0, 4.0);   // D3 -> D4
  t.set_link(1, 3, 5.0, 10.0);  // D2 -> D4: expensive direct
  return t;
}

std::vector<postcard::net::FileRequest> fig3_files() {
  return {{1, 1, 3, 8.0, 4, 3},   // File 1: D2 -> D4, size 8, T = 4
          {2, 0, 3, 10.0, 2, 3}};  // File 2: D1 -> D4, size 10, T = 2
}

void BM_Fig3_Postcard(benchmark::State& state) {
  double cost = 0.0;
  for (auto _ : state) {
    postcard::core::PostcardController controller{fig3_topology()};
    controller.schedule(3, fig3_files());
    cost = controller.cost_per_interval();
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_per_interval"] = cost;
}
BENCHMARK(BM_Fig3_Postcard);

void BM_Fig3_FlowBased(benchmark::State& state) {
  double cost = 0.0;
  for (auto _ : state) {
    postcard::flow::FlowBaseline baseline{fig3_topology()};
    baseline.schedule(3, fig3_files());
    cost = baseline.cost_per_interval();
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_per_interval"] = cost;
}
BENCHMARK(BM_Fig3_FlowBased);

}  // namespace

BENCHMARK_MAIN();
