// Fig. 1 (motivating example): 6 MB from D2 to D3 within three intervals.
// Direct transfer costs 20 per interval; routed + scheduled costs 12. Also
// times the per-slot Postcard solve on this minimal instance.
#include <benchmark/benchmark.h>

#include "core/postcard.h"

namespace {

postcard::net::Topology fig1_topology() {
  postcard::net::Topology t(3);  // D1=0, D2=1, D3=2
  t.set_link(1, 2, 1000.0, 10.0);
  t.set_link(1, 0, 1000.0, 1.0);
  t.set_link(0, 2, 1000.0, 3.0);
  return t;
}

void BM_Fig1_PostcardPlan(benchmark::State& state) {
  double cost = 0.0;
  for (auto _ : state) {
    postcard::core::PostcardController controller{fig1_topology()};
    controller.schedule(0, {{1, 1, 2, 6.0, 3, 0}});
    cost = controller.cost_per_interval();
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_per_interval"] = cost;    // paper: 12
  state.counters["paper_direct_cost"] = 20.0;    // paper: 10 * 2 MB/interval
}
BENCHMARK(BM_Fig1_PostcardPlan);

void BM_Fig1_DirectOnly(benchmark::State& state) {
  // Deadline 1 forbids the relay: the direct link carries all 6 MB in one
  // slot, charging 10 * 6 = 60 per interval (the "no strategy" upper bound
  // is 20 when spread over three slots; 60 when sent at once).
  double cost = 0.0;
  for (auto _ : state) {
    postcard::core::PostcardController controller{fig1_topology()};
    controller.schedule(0, {{1, 1, 2, 6.0, 1, 0}});
    cost = controller.cost_per_interval();
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost_per_interval"] = cost;
}
BENCHMARK(BM_Fig1_DirectOnly);

}  // namespace

BENCHMARK_MAIN();
