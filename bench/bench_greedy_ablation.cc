// Optimization-value ablation: Postcard's per-slot LP vs the greedy
// chunked-shortest-path heuristic (same slotted store-and-forward model,
// no joint optimization) vs the flow baseline, in the tight-capacity
// delay-tolerant regime where coordination matters most.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/greedy.h"

namespace {

using namespace postcard;

bench::FigureSeries run_greedy_series(double capacity, int max_deadline) {
  std::vector<double> costs, rejected;
  bench::FigureSeries series;
  for (int run = 0; run < bench::figure_runs(); ++run) {
    const sim::UniformWorkload workload(
        bench::figure_params(capacity, max_deadline, 1000 + 17 * run));
    core::GreedyScheduler policy{net::Topology(workload.topology())};
    const sim::RunResult r = sim::run_simulation(policy, workload);
    costs.push_back(r.final_cost_per_interval);
    rejected.push_back(r.total_volume > 0.0 ? r.rejected_volume / r.total_volume
                                            : 0.0);
  }
  series.cost = sim::summarize(costs);
  series.rejected_share = sim::summarize(rejected);
  return series;
}

void BM_GreedyAblation_PostcardLp(benchmark::State& state) {
  bench::FigureSeries s;
  for (auto _ : state) {
    s = bench::run_figure_series(bench::Policy::kPostcard, 30.0, 8);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_GreedyAblation_PostcardLp)->Unit(benchmark::kSecond)->Iterations(1);

void BM_GreedyAblation_GreedyHeuristic(benchmark::State& state) {
  bench::FigureSeries s;
  for (auto _ : state) {
    s = run_greedy_series(30.0, 8);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_GreedyAblation_GreedyHeuristic)
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_GreedyAblation_FlowBased(benchmark::State& state) {
  bench::FigureSeries s;
  for (auto _ : state) {
    s = bench::run_figure_series(bench::Policy::kFlowBased, 30.0, 8);
  }
  bench::report_series(state, s);
}
BENCHMARK(BM_GreedyAblation_FlowBased)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
