// Latency of the socket front end (src/server) — what a protocol client
// actually observes, loopback TCP included.
//
// Three families, each a fresh server + blocking client per run:
//
//   * ServerSubmitRoundTrip — one SubmitFile frame per iteration; the
//     counters (and BENCH_server.json) report the mean and p99 round-trip
//     through framing, decode, admission control and the reply path. The
//     slot clock advances every 64 submits so the ingress window never
//     saturates and every iteration measures the same admitted path.
//   * ServerAdvanceSlot — one AdvanceSlot(1) per iteration with a small
//     batch submitted first: the wire-level view of a slot solve, i.e.
//     command handoff to the driver thread + the LP + the reply.
//   * ServerSnapshotWrite — one Snapshot command per iteration against a
//     warmed-up runtime: capture under the ledger lock, encode, tmp +
//     fsync + rename.
//
// Build & run:  cmake --build build && ./build/bench/bench_server
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_json.h"
#include "server/client.h"
#include "server/server.h"

namespace postcard::bench {
namespace {

using Clock = std::chrono::steady_clock;

net::Topology bench_topology() {
  // 4-DC full mesh with ample capacity: solves stay cheap, so the framing
  // and thread-handoff costs are visible instead of drowned by the LP.
  net::Topology t(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) {
      if (a != b) t.set_link(a, b, 200.0, 1.0 + a + b);
    }
  }
  return t;
}

net::FileRequest bench_file(long id) {
  net::FileRequest f;
  f.id = id;
  f.source = static_cast<int>(id % 4);
  f.destination = static_cast<int>((id + 1) % 4);
  f.size = 1.0 + static_cast<double>(id % 5);
  f.max_transfer_slots = 2;
  return f;
}

double quantile(std::vector<double>& samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(idx, samples.size() - 1)];
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

void ServerSubmitRoundTrip(benchmark::State& state) {
  server::PostcardServer server{bench_topology(), server::ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  server::PostcardClient client("127.0.0.1", server.port());

  std::vector<double> rtt_ms;
  long id = 1;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(client.submit_file(bench_file(id)));
    rtt_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    if (++id % 64 == 0) client.advance(1);
  }
  client.advance(4);
  server.request_shutdown();
  server.wait();

  state.SetItemsProcessed(state.iterations());
  state.counters["rtt_mean_ms"] = mean(rtt_ms);
  state.counters["rtt_p99_ms"] = quantile(rtt_ms, 0.99);
  record_json_metric("submit_rtt_mean_ms", mean(rtt_ms));
  record_json_metric("submit_rtt_p99_ms", quantile(rtt_ms, 0.99));
}

void ServerAdvanceSlot(benchmark::State& state) {
  server::PostcardServer server{bench_topology(), server::ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  server::PostcardClient client("127.0.0.1", server.port());

  std::vector<double> slot_ms;
  long id = 1;
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) client.submit_file(bench_file(id++));
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(client.advance(1));
    slot_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  client.advance(4);
  server.request_shutdown();
  server.wait();

  state.counters["slot_mean_ms"] = mean(slot_ms);
  state.counters["slot_p99_ms"] = quantile(slot_ms, 0.99);
  record_json_metric("slot_solve_mean_ms", mean(slot_ms));
  record_json_metric("slot_solve_p99_ms", quantile(slot_ms, 0.99));
}

void ServerSnapshotWrite(benchmark::State& state) {
  server::PostcardServer server{bench_topology(), server::ServerOptions{}};
  server.add_postcard_backend();
  server.start();
  server::PostcardClient client("127.0.0.1", server.port());
  const std::string path = "/tmp/postcard_bench_snapshot_" +
                           std::to_string(::getpid()) + ".psnp";

  // Warm the runtime so the snapshot has real ledgers and plans in it.
  long id = 1;
  for (int slot = 0; slot < 8; ++slot) {
    for (int i = 0; i < 4; ++i) client.submit_file(bench_file(id++));
    client.advance(1);
  }

  std::vector<double> write_ms;
  for (auto _ : state) {
    const Clock::time_point t0 = Clock::now();
    client.snapshot(path);
    write_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  server.request_shutdown();
  server.wait();
  std::remove(path.c_str());

  state.counters["snapshot_mean_ms"] = mean(write_ms);
  record_json_metric("snapshot_write_mean_ms", mean(write_ms));
}

BENCHMARK(ServerSubmitRoundTrip)->UseRealTime();
BENCHMARK(ServerAdvanceSlot)->UseRealTime();
BENCHMARK(ServerSnapshotWrite)->UseRealTime();

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("server");
