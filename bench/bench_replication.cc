// Replication costs an operator actually cares about (src/replication):
//
//   * ReplFailoverTime — primary killed abruptly mid-run; measures the
//     wall time from the kill to the standby serving (heartbeat silence
//     detection + reconnect exhaustion + mirror snapshot + server start).
//   * ReplCatchupReplay — the standby mirror's deterministic replay rate,
//     in slots/second: how fast a reseeded follower chews through a
//     backlog of committed slots.
//   * ReplSlotBaseline / ReplSlotWithStandby — mean slot-advance latency
//     without and with an attached, seeded standby; the difference is the
//     steady-state shipping overhead (tap + event frames + commit
//     fingerprint on the driver thread).
//
// BENCH_replication.json feeds the trajectory gate
// (scripts/summarize_benches.py --check-trajectory via run_all.sh):
// failover time and slot latencies gate on the 1.5x _ms rule.
//
// Build & run:  cmake --build build && ./build/bench/bench_replication
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "replication/primary.h"
#include "replication/standby.h"
#include "runtime/runtime.h"
#include "server/client.h"
#include "server/server.h"
#include "sim/workload.h"

namespace postcard::bench {
namespace {

using Clock = std::chrono::steady_clock;

sim::WorkloadParams repl_bench_workload(std::uint64_t seed, int slots) {
  sim::WorkloadParams p;
  p.num_datacenters = 5;
  p.link_capacity = 100.0;
  p.cost_min = 1.0;
  p.cost_max = 10.0;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = 3;
  p.size_min = 10.0;
  p.size_max = 80.0;
  p.deadline_min = 1;
  p.deadline_max = 3;
  p.num_slots = slots;
  p.seed = seed;
  return p;
}

runtime::RuntimeOptions replicated_options() {
  runtime::RuntimeOptions o;
  o.worker_threads = 0;  // the standby mirror requires deterministic mode
  o.parallel_groups = 1;
  o.dedup_submissions = true;
  return o;
}

template <typename Pred>
bool poll_until(Pred&& pred, int timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

double mean(const std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples) sum += s;
  return sum / static_cast<double>(samples.size());
}

void ReplFailoverTime(benchmark::State& state) {
  const sim::UniformWorkload w(repl_bench_workload(7, 10));
  std::vector<double> failover_ms;
  for (auto _ : state) {
    server::ServerOptions sopts;
    sopts.runtime = replicated_options();
    auto server = std::make_unique<server::PostcardServer>(
        net::Topology(w.topology()), sopts);
    server->add_postcard_backend();
    replication::PrimaryOptions popts;
    popts.heartbeat_every_ms = 50;
    replication::ReplicationPrimary primary(popts);
    primary.attach(*server);
    server->start();
    primary.start();

    replication::StandbyOptions stopts;
    stopts.primary_port = primary.port();
    stopts.runtime = replicated_options();
    stopts.heartbeat_timeout_ms = 100;
    stopts.reconnect_attempts = 1;
    stopts.backoff_base_ms = 10;
    stopts.backoff_max_ms = 20;
    replication::ReplicationStandby standby(
        net::Topology(w.topology()),
        {replication::BackendSpec::make_postcard()}, stopts);
    standby.start();

    {
      server::PostcardClient client("127.0.0.1", server->port());
      for (int slot = 0; slot < 3; ++slot) {
        client.submit_batch(w.batch(slot));
        client.advance(1);
      }
    }
    standby.wait_for_commit(2, 30000);

    // The measured span: primary dies with no goodbye, standby notices,
    // exhausts its reconnects and comes up serving.
    const Clock::time_point t0 = Clock::now();
    primary.kill_abruptly();
    server->request_shutdown();
    server->wait();
    primary.stop();
    server.reset();
    standby.wait_promoted(30000);
    failover_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    standby.stop();
  }
  state.counters["failover_mean_ms"] = mean(failover_ms);
  record_json_metric("repl_failover_mean_ms", mean(failover_ms));
}

void ReplCatchupReplay(benchmark::State& state) {
  // Exactly the work a reseeded standby does per backlog slot: the
  // deterministic replay the mirror runs between snapshot and live tail.
  const sim::UniformWorkload w(repl_bench_workload(8, 40));
  std::vector<double> slots_per_sec;
  for (auto _ : state) {
    runtime::ControllerRuntime mirror{net::Topology(w.topology()),
                                      replicated_options()};
    mirror.add_postcard_backend();
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(mirror.replay(w));
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    slots_per_sec.push_back(static_cast<double>(w.num_slots()) / secs);
  }
  state.counters["catchup_slots_per_sec"] = mean(slots_per_sec);
  record_json_metric("repl_catchup_slots_per_sec", mean(slots_per_sec));
}

double g_baseline_slot_ms = 0.0;

void ReplSlotBaseline(benchmark::State& state) {
  const sim::UniformWorkload w(repl_bench_workload(9, 1000));
  server::ServerOptions sopts;
  sopts.runtime = replicated_options();
  server::PostcardServer server{net::Topology(w.topology()), sopts};
  server.add_postcard_backend();
  server.start();
  server::PostcardClient client("127.0.0.1", server.port());

  std::vector<double> slot_ms;
  int slot = 0;
  for (auto _ : state) {
    client.submit_batch(w.batch(slot++ % w.num_slots()));
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(client.advance(1));
    slot_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  server.request_shutdown();
  server.wait();
  g_baseline_slot_ms = mean(slot_ms);
  state.counters["slot_mean_ms"] = g_baseline_slot_ms;
  record_json_metric("repl_slot_baseline_mean_ms", g_baseline_slot_ms);
}

void ReplSlotWithStandby(benchmark::State& state) {
  const sim::UniformWorkload w(repl_bench_workload(9, 1000));
  server::ServerOptions sopts;
  sopts.runtime = replicated_options();
  server::PostcardServer server{net::Topology(w.topology()), sopts};
  server.add_postcard_backend();
  replication::PrimaryOptions popts;
  popts.heartbeat_every_ms = 50;
  replication::ReplicationPrimary primary(popts);
  primary.attach(server);
  server.start();
  primary.start();

  replication::StandbyOptions stopts;
  stopts.primary_port = primary.port();
  stopts.runtime = replicated_options();
  replication::ReplicationStandby standby(
      net::Topology(w.topology()), {replication::BackendSpec::make_postcard()},
      stopts);
  standby.start();

  server::PostcardClient client("127.0.0.1", server.port());
  // Seed the standby before measuring: steady-state shipping only.
  client.advance(1);
  poll_until([&] { return standby.stats().snapshots_applied >= 1; }, 30000);

  std::vector<double> slot_ms;
  int slot = 0;
  for (auto _ : state) {
    client.submit_batch(w.batch(slot++ % w.num_slots()));
    const Clock::time_point t0 = Clock::now();
    benchmark::DoNotOptimize(client.advance(1));
    slot_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  standby.stop();
  primary.stop();
  server.request_shutdown();
  server.wait();

  const double with_standby = mean(slot_ms);
  state.counters["slot_mean_ms"] = with_standby;
  record_json_metric("repl_slot_with_standby_mean_ms", with_standby);
  // Negative deltas are measurement noise; report shipping overhead as a
  // floor-at-zero so the trajectory gate sees a stable small number.
  const double overhead = with_standby - g_baseline_slot_ms;
  record_json_metric("repl_shipping_overhead_ms",
                     overhead > 0.0 ? overhead : 0.0);
}

BENCHMARK(ReplFailoverTime)->Iterations(3)->UseRealTime();
BENCHMARK(ReplCatchupReplay)->Iterations(3)->UseRealTime();
BENCHMARK(ReplSlotBaseline)->UseRealTime();
BENCHMARK(ReplSlotWithStandby)->UseRealTime();

}  // namespace
}  // namespace postcard::bench

POSTCARD_BENCHMARK_MAIN_WITH_JSON("replication");
