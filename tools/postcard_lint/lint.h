// postcard_lint — project-specific invariant checker.
//
// Four rule families protect guarantees the repo ships and tests
// dynamically (warm-vs-cold bit-for-bit replays, sparse-vs-dense
// equivalence, deterministic-replay failover) by making their
// preconditions machine-checked on every build:
//
//   postcard-determinism-*  (src/core, lp, linalg, charging, net, sim,
//                            flow, audit, runtime)
//     -clock          wall-clock reads (steady_clock/system_clock/...)
//                     outside lp::SolveBudget's deadline plumbing
//                     (src/lp/budget.h is the single sanctioned site)
//     -rand           rand()/srand()/std::random_device/random_shuffle
//                     and unseeded random engines
//     -unordered-iter iteration (range-for, .begin()) over
//                     std::unordered_{map,set} — hash order must never
//                     feed committed state or column/arc ordering
//     -pointer-order  pointer values used as ordering/hash keys
//                     (std::hash<T*>, std::less<T*>,
//                      reinterpret_cast<uintptr_t>)
//
//   postcard-layering-*  (all of src/)
//     -back-edge      #include against the layer order
//                     base < linalg < lp < {core,charging,net} <
//                     {sim,flow,audit} < runtime < {server,replication};
//                     sim/policy.h is a sanctioned interface header (it
//                     only includes downward and exists so policies in
//                     src/core can implement the scheduling interface)
//     -cycle          any include cycle between first-party files
//
//   postcard-wire-*  (src/server, src/replication)
//     -require-done   a function that constructs a ByteReader over a
//                     payload must reach require_done() before the
//                     reader goes out of scope (trailing garbage is a
//                     protocol violation, not noise)
//     -unchecked-count a raw reader.u16/u32/u64() result used as a
//                     reserve()/resize() size — counts must flow
//                     through ByteReader::length(min_element_bytes)
//
//   postcard-lock-*  (all of src/)
//     -unguarded      a data member of a class that owns a base::Mutex,
//                     written while a MutexLock is held, without a
//                     GUARDED_BY annotation
//
//   postcard-nolint-*  (suppression discipline; never suppressible)
//     -missing-reason // NOLINT(postcard-x) without ": <reason>"
//     -unknown-rule   // NOLINT(postcard-x: r) naming no known rule
//
// Suppression: `// NOLINT(postcard-<rule-or-family>: <reason>)` on the
// offending line, or `// NOLINTNEXTLINE(...)` on the line above. A family
// tag (e.g. postcard-determinism) suppresses every rule in the family.
// The reason is mandatory — an unexplained suppression is itself a
// finding, so every waiver in the tree documents why it is safe.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lexer.h"

namespace postcard::lint {

struct Diagnostic {
  std::string file;  // display path, as given to add_file
  int line = 0;
  std::string rule;  // e.g. "postcard-determinism-clock"
  std::string message;
};

struct LintResult {
  std::vector<Diagnostic> findings;   // unsuppressed, file/line ordered
  int suppressed = 0;                 // findings silenced by a valid NOLINT
  int files = 0;
};

class Linter {
 public:
  /// Registers a file. `display_path` is used in diagnostics;
  /// `virtual_path` is the repo-relative path ("src/core/foo.cc") used for
  /// rule scoping and include resolution — for real files they agree, for
  /// fixtures the virtual path places the file in the tree under test.
  void add_file(const std::string& display_path,
                const std::string& virtual_path, const std::string& content);

  /// Runs every rule over every registered file.
  LintResult run() const;

  /// All rule identifiers, for --list-rules and the fixture tests.
  static std::vector<std::string> rule_ids();

  /// True when `tag` (a NOLINT argument) covers `rule`: exact match or a
  /// family prefix (postcard-determinism covers postcard-determinism-*).
  static bool tag_covers(const std::string& tag, const std::string& rule);

 private:
  struct File {
    std::string display;
    std::string vpath;
    std::string dir;  // first-level directory under src/, or ""
    LexResult lx;
  };
  std::vector<File> files_;
};

/// Reads a `// postcard-lint-fixture: <virtual path>` header from the
/// first line of a fixture file.
std::optional<std::string> fixture_virtual_path(const std::string& content);

}  // namespace postcard::lint
