#include "lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace postcard::lint {
namespace {

using Toks = std::vector<Token>;

// ---------------------------------------------------------------------------
// Scoping.

const std::set<std::string> kDeterminismDirs = {
    "core", "lp", "linalg", "charging", "net", "sim", "flow", "audit",
    "runtime"};
const std::set<std::string> kWireDirs = {"server", "replication"};

/// Layer ranks; an include may only point at an equal or lower rank.
const std::map<std::string, int> kLayerRank = {
    {"base", 0},    {"linalg", 1}, {"lp", 2},      {"net", 3},
    {"charging", 3}, {"core", 3},  {"sim", 4},     {"flow", 4},
    {"audit", 4},   {"runtime", 5}, {"server", 6}, {"replication", 6},
};

/// Interface headers exempt from the back-edge rule: sim/policy.h is the
/// scheduling-policy interface (SchedulingPolicy, SolveControls,
/// AuditControls). It only includes downward (charging/, net/) — which the
/// layering rules themselves verify — and exists precisely so that the
/// policies in src/core can implement it without src/core depending on
/// the simulator.
const std::set<std::string> kInterfaceHeaders = {"sim/policy.h"};

/// The single sanctioned wall-clock site: lp::SolveBudget's deadline
/// plumbing. Everything else in the deterministic core must either be
/// pivot-counted (deterministic) or carry a justified NOLINT.
const std::string kClockExemptFile = "src/lp/budget.h";

const std::set<std::string> kClockIdents = {
    "steady_clock", "system_clock", "high_resolution_clock", "gettimeofday",
    "clock_gettime", "timespec_get"};

const std::set<std::string> kRandomEngines = {
    "mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
    "default_random_engine", "ranlux24", "ranlux48", "knuth_b"};

const std::set<std::string> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kRuleFamilies = {
    "postcard-determinism", "postcard-layering", "postcard-wire",
    "postcard-lock"};

std::string dir_of(const std::string& vpath) {
  if (vpath.rfind("src/", 0) != 0) return "";
  const std::size_t slash = vpath.find('/', 4);
  if (slash == std::string::npos) return "";
  return vpath.substr(4, slash - 4);
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

/// Index just past a balanced `<...>` starting at `i` (toks[i] == "<").
/// `>>` closes two levels. Returns `i` unchanged if toks[i] is not "<".
std::size_t skip_angles(const Toks& t, std::size_t i) {
  if (i >= t.size() || !is_punct(t[i], "<")) return i;
  int depth = 0;
  while (i < t.size()) {
    if (is_punct(t[i], "<")) depth += 1;
    else if (is_punct(t[i], ">")) depth -= 1;
    else if (is_punct(t[i], ">>")) depth -= 2;
    else if (is_punct(t[i], ";")) return i;  // malformed; bail
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

/// Index just past a balanced `(...)` starting at `i` (toks[i] == "(").
std::size_t skip_parens(const Toks& t, std::size_t i) {
  if (i >= t.size() || !is_punct(t[i], "(")) return i;
  int depth = 0;
  while (i < t.size()) {
    if (is_punct(t[i], "(")) depth += 1;
    else if (is_punct(t[i], ")")) depth -= 1;
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

/// Index just past a balanced `{...}` starting at `i` (toks[i] == "{").
std::size_t skip_braces(const Toks& t, std::size_t i) {
  if (i >= t.size() || !is_punct(t[i], "{")) return i;
  int depth = 0;
  while (i < t.size()) {
    if (is_punct(t[i], "{")) depth += 1;
    else if (is_punct(t[i], "}")) depth -= 1;
    ++i;
    if (depth <= 0) return i;
  }
  return i;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  std::size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

// ---------------------------------------------------------------------------
// Suppressions.

struct Suppression {
  int line = 0;  // line the suppression applies to
  std::string tag;
};

/// Parses NOLINT / NOLINTNEXTLINE comments. Valid postcard suppressions go
/// to `out`; malformed ones become diagnostics (never suppressible).
void collect_suppressions(const std::string& file,
                          const std::vector<Comment>& comments,
                          std::vector<Suppression>* out,
                          std::vector<Diagnostic>* diags) {
  const std::vector<std::string> known = Linter::rule_ids();
  for (const Comment& c : comments) {
    for (const char* marker : {"NOLINTNEXTLINE(", "NOLINT("}) {
      const std::size_t at = c.text.find(marker);
      if (at == std::string::npos) continue;
      const bool next_line = std::string(marker).rfind("NOLINTNEXT", 0) == 0;
      const std::size_t open = at + std::string(marker).size();
      const std::size_t close = c.text.find(')', open);
      if (close == std::string::npos) break;
      const std::string body = c.text.substr(open, close - open);
      if (body.rfind("postcard-", 0) != 0) break;  // clang-tidy's domain
      const std::size_t colon = body.find(':');
      const std::string tag = trim(colon == std::string::npos
                                       ? body
                                       : body.substr(0, colon));
      const std::string reason =
          colon == std::string::npos ? "" : trim(body.substr(colon + 1));
      if (reason.empty()) {
        diags->push_back({file, c.line, "postcard-nolint-missing-reason",
                          "NOLINT(" + tag +
                              ") has no ': <reason>' — every postcard "
                              "suppression must say why it is safe"});
        break;
      }
      const bool family = kRuleFamilies.count(tag) > 0;
      const bool exact =
          std::find(known.begin(), known.end(), tag) != known.end();
      if (!family && !exact) {
        diags->push_back({file, c.line, "postcard-nolint-unknown-rule",
                          "NOLINT names unknown rule '" + tag +
                              "' (see postcard_lint --list-rules)"});
        break;
      }
      out->push_back({next_line ? c.line + 1 : c.line, tag});
      break;  // one suppression per comment
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism rules.

void check_clocks(const std::string& file, const std::string& vpath,
                  const Toks& t, std::vector<Diagnostic>* diags) {
  if (vpath == kClockExemptFile) return;
  for (const Token& tok : t) {
    if (tok.kind == TokKind::kIdent && kClockIdents.count(tok.text) > 0) {
      diags->push_back(
          {file, tok.line, "postcard-determinism-clock",
           "wall-clock read '" + tok.text +
               "' in the deterministic core; route deadlines through "
               "lp::SolveBudget (src/lp/budget.h) or justify with "
               "NOLINT(postcard-determinism: <reason>)"});
    }
  }
}

void check_rand(const std::string& file, const Toks& t,
                std::vector<Diagnostic>* diags) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind != TokKind::kIdent) continue;
    const bool member_access =
        i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"));
    if ((tok.text == "rand" || tok.text == "srand") && !member_access &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      diags->push_back({file, tok.line, "postcard-determinism-rand",
                        "'" + tok.text +
                            "()' draws from hidden global state; use a "
                            "seeded std::mt19937_64"});
      continue;
    }
    if (tok.text == "random_device" && !member_access) {
      diags->push_back({file, tok.line, "postcard-determinism-rand",
                        "std::random_device is nondeterministic by design; "
                        "seed engines from workload/config seeds"});
      continue;
    }
    if (tok.text == "random_shuffle" && !member_access) {
      diags->push_back({file, tok.line, "postcard-determinism-rand",
                        "random_shuffle uses an unspecified source; use "
                        "std::shuffle with a seeded engine"});
      continue;
    }
    if (kRandomEngines.count(tok.text) > 0 && !member_access) {
      // `mt19937_64 rng(seed)` is fine; `mt19937_64 rng;` seeds from the
      // default constant but reads as "I didn't think about the seed".
      if (i + 2 < t.size() && t[i + 1].kind == TokKind::kIdent &&
          is_punct(t[i + 2], ";")) {
        diags->push_back({file, tok.line, "postcard-determinism-rand",
                          "default-constructed random engine '" +
                              t[i + 1].text +
                              "'; pass an explicit workload-derived seed"});
      }
    }
  }
}

/// Names declared with an unordered container type in this file.
std::set<std::string> unordered_decls(const Toks& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent ||
        kUnorderedContainers.count(t[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < t.size() && is_punct(t[j], "<")) j = skip_angles(t, j);
    while (j < t.size() &&
           (is_punct(t[j], "&") || is_punct(t[j], "*") ||
            is_ident(t[j], "const"))) {
      ++j;
    }
    if (j < t.size() && t[j].kind == TokKind::kIdent) {
      // `unordered_map<...> foo(` is a function returning the container,
      // not a variable; skip those.
      if (j + 1 < t.size() && is_punct(t[j + 1], "(")) continue;
      names.insert(t[j].text);
    }
  }
  return names;
}

void check_unordered_iter(const std::string& file, const Toks& t,
                          const std::set<std::string>& visible,
                          std::vector<Diagnostic>* diags) {
  auto flag = [&](int line, const std::string& what) {
    diags->push_back(
        {file, line, "postcard-determinism-unordered-iter",
         "iteration over unordered container " + what +
             " — hash order must never reach committed state, column/arc "
             "ordering, or serialized bytes; use std::map / a sorted "
             "vector, or justify with NOLINT(postcard-determinism: ...)"});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose sequence mentions an unordered-declared name.
    if (is_ident(t[i], "for") && i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      const std::size_t end = skip_parens(t, i + 1);
      // Find the range-for ':' at paren depth 1.
      int depth = 0;
      std::size_t colon = 0;
      for (std::size_t j = i + 1; j < end; ++j) {
        if (is_punct(t[j], "(")) depth += 1;
        else if (is_punct(t[j], ")")) depth -= 1;
        else if (is_punct(t[j], ";")) { colon = 0; break; }  // classic for
        else if (is_punct(t[j], ":") && depth == 1) { colon = j; break; }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j < end; ++j) {
          if (t[j].kind == TokKind::kIdent &&
              (visible.count(t[j].text) > 0 ||
               kUnorderedContainers.count(t[j].text) > 0)) {
            flag(t[i].line, "'" + t[j].text + "'");
            break;
          }
        }
      }
      continue;
    }
    // name.begin() / name.cbegin() on an unordered-declared name.
    if (t[i].kind == TokKind::kIdent && visible.count(t[i].text) > 0 &&
        i + 3 < t.size() &&
        (is_punct(t[i + 1], ".") || is_punct(t[i + 1], "->")) &&
        (is_ident(t[i + 2], "begin") || is_ident(t[i + 2], "cbegin")) &&
        is_punct(t[i + 3], "(")) {
      flag(t[i].line, "'" + t[i].text + "' via begin()");
    }
  }
}

void check_pointer_order(const std::string& file, const Toks& t,
                         std::vector<Diagnostic>* diags) {
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (is_ident(t[i], "reinterpret_cast") && is_punct(t[i + 1], "<")) {
      const std::size_t end = skip_angles(t, i + 1);
      for (std::size_t j = i + 2; j < end; ++j) {
        if (is_ident(t[j], "uintptr_t") || is_ident(t[j], "intptr_t")) {
          diags->push_back(
              {file, t[i].line, "postcard-determinism-pointer-order",
               "pointer value converted to an integer; addresses vary "
               "run to run and must never order or key committed state"});
          break;
        }
      }
      continue;
    }
    if ((is_ident(t[i], "hash") || is_ident(t[i], "less")) &&
        is_punct(t[i + 1], "<") && i >= 2 && is_punct(t[i - 1], "::") &&
        is_ident(t[i - 2], "std")) {
      const std::size_t end = skip_angles(t, i + 1);
      for (std::size_t j = i + 2; j + 1 < end; ++j) {
        if (is_punct(t[j], "*") &&
            (is_punct(t[j + 1], ">") || is_punct(t[j + 1], ">>") ||
             is_punct(t[j + 1], ","))) {
          diags->push_back(
              {file, t[i].line, "postcard-determinism-pointer-order",
               "std::" + t[i].text +
                   " over a pointer type hashes/orders by address — "
                   "nondeterministic across runs"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Wire rules.

void check_wire_require_done(const std::string& file, const Toks& t,
                             std::vector<Diagnostic>* diags) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "ByteReader")) continue;
    // A declaration `ByteReader name(...)` or `ByteReader name{...}`;
    // `ByteReader&` parameters are decode helpers whose caller owns the
    // require_done obligation, and `ByteReader(` is the class's own ctor.
    if (t[i + 1].kind != TokKind::kIdent) continue;
    if (!is_punct(t[i + 2], "(") && !is_punct(t[i + 2], "{")) continue;
    const std::string name = t[i + 1].text;
    // Scan to the end of the enclosing scope for `name.require_done()`.
    // The check is bound to THIS reader's name on purpose: a different
    // reader's require_done() in the same function must not satisfy it.
    int depth = 0;
    bool found = false;
    for (std::size_t j = i + 2; j + 2 < t.size(); ++j) {
      if (is_punct(t[j], "{")) depth += 1;
      else if (is_punct(t[j], "}")) {
        depth -= 1;
        if (depth < 0) break;  // declaration scope closed
      } else if (t[j].kind == TokKind::kIdent && t[j].text == name &&
                 is_punct(t[j + 1], ".") &&
                 is_ident(t[j + 2], "require_done")) {
        found = true;
        break;
      }
    }
    if (!found) {
      diags->push_back(
          {file, t[i].line, "postcard-wire-require-done",
           "ByteReader '" + name +
               "' never reaches require_done() in this scope — trailing "
               "bytes after a payload are a protocol violation and must "
               "be rejected"});
    }
  }
}

void check_wire_unchecked_count(const std::string& file, const Toks& t,
                                std::vector<Diagnostic>* diags) {
  const std::set<std::string> raw_reads = {"u16", "u32", "u64"};
  // Linear taint scan: names assigned from a raw fixed-width read are
  // tainted counts until reassigned from length() or anything else.
  std::set<std::string> tainted;
  auto rhs_kind = [&](std::size_t from) {
    // Examines tokens until ';': 1 = raw read, 2 = length(), 0 = other.
    for (std::size_t j = from; j < t.size() && !is_punct(t[j], ";"); ++j) {
      if ((is_punct(t[j], ".") || is_punct(t[j], "->")) && j + 2 < t.size() &&
          t[j + 1].kind == TokKind::kIdent && is_punct(t[j + 2], "(")) {
        if (raw_reads.count(t[j + 1].text) > 0) return 1;
        if (t[j + 1].text == "length") return 2;
      }
    }
    return 0;
  };
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent && is_punct(t[i + 1], "=")) {
      if (rhs_kind(i + 2) == 1) tainted.insert(t[i].text);
      else tainted.erase(t[i].text);
    }
    // .reserve( / .resize( with a tainted or raw-read argument.
    if ((is_punct(t[i], ".") || is_punct(t[i], "->")) && i + 2 < t.size() &&
        (is_ident(t[i + 1], "reserve") || is_ident(t[i + 1], "resize")) &&
        is_punct(t[i + 2], "(")) {
      const std::size_t end = skip_parens(t, i + 2);
      for (std::size_t j = i + 3; j < end; ++j) {
        const bool raw_call =
            (is_punct(t[j], ".") || is_punct(t[j], "->")) &&
            j + 2 < end && t[j + 1].kind == TokKind::kIdent &&
            raw_reads.count(t[j + 1].text) > 0 && is_punct(t[j + 2], "(");
        const bool tainted_name =
            t[j].kind == TokKind::kIdent && tainted.count(t[j].text) > 0;
        if (raw_call || tainted_name) {
          diags->push_back(
              {file, t[i + 1].line, "postcard-wire-unchecked-count",
               t[i + 1].text +
                   "() sized by a raw wire integer; counts must flow "
                   "through ByteReader::length(min_element_bytes) so a "
                   "lying frame cannot trigger a huge allocation"});
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lock rule.

struct ClassInfo {
  std::string name;
  std::string file;  // display path of the defining file
  bool has_mutex = false;
  std::set<std::string> unguarded;  // mutable fields without GUARDED_BY
  std::set<std::string> guarded;
};

const std::set<std::string> kLockExemptTypes = {
    "Mutex",  "MutexLock", "atomic",   "thread", "jthread",
    "CondVar", "condition_variable",   "once_flag", "future", "promise"};

/// Collects field information for classes/structs that own a base::Mutex.
/// Inline method bodies are returned for the write scan.
struct MethodBody {
  const ClassInfo* cls = nullptr;
  std::size_t begin = 0;  // token index of '{'
  std::size_t end = 0;    // one past matching '}'
};

void collect_classes(const std::string& file, const Toks& t,
                     std::map<std::string, ClassInfo>* classes,
                     std::vector<std::pair<std::string, std::pair<std::size_t,
                                                                  std::size_t>>>*
                         inline_bodies) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!(is_ident(t[i], "class") || is_ident(t[i], "struct"))) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    const std::string name = t[i + 1].text;
    // Find the body '{' before any ';' (skip base clause tokens).
    std::size_t j = i + 2;
    while (j < t.size() && !is_punct(t[j], "{") && !is_punct(t[j], ";")) ++j;
    if (j >= t.size() || is_punct(t[j], ";")) continue;  // forward decl
    const std::size_t body_end = skip_braces(t, j);

    ClassInfo info;
    info.name = name;
    info.file = file;
    std::vector<std::pair<std::size_t, std::size_t>> bodies;

    // Walk statements at body depth 1.
    std::size_t k = j + 1;
    while (k + 1 < body_end) {
      const std::size_t stmt_begin = k;
      bool is_function = false;
      std::size_t brace_at = 0;
      int angle = 0;
      std::size_t guard_at = 0;  // GUARDED_BY position, if any
      // Scan one statement.
      while (k < body_end - 1) {
        const Token& tok = t[k];
        if (is_punct(tok, "<") && k > stmt_begin &&
            t[k - 1].kind == TokKind::kIdent) {
          angle += 1;
        } else if (angle > 0 && is_punct(tok, ">")) {
          angle -= 1;
        } else if (angle > 0 && is_punct(tok, ">>")) {
          angle -= 2;
          if (angle < 0) angle = 0;
        } else if (is_ident(tok, "GUARDED_BY") ||
                   is_ident(tok, "PT_GUARDED_BY")) {
          guard_at = k;
          k = skip_parens(t, k + 1);
          continue;
        } else if (angle == 0 && is_punct(tok, "(") && guard_at == 0) {
          // Top-level parens before '=' mean a function (or ctor).
          bool saw_eq = false;
          for (std::size_t b = stmt_begin; b < k; ++b) {
            if (is_punct(t[b], "=")) { saw_eq = true; break; }
          }
          if (!saw_eq) is_function = true;
          k = skip_parens(t, k);
          continue;
        } else if (is_punct(tok, "{")) {
          brace_at = k;
          const std::size_t after = skip_braces(t, k);
          k = after;
          if (is_function) {
            bodies.push_back({brace_at, after});
            // A method body ends its statement without ';'.
            break;
          }
          continue;
        } else if (is_punct(tok, ";")) {
          k += 1;
          break;
        }
        k += 1;
      }
      const std::size_t stmt_end = k;
      if (is_function) continue;
      // Field statement: find the declarator name.
      std::string field;
      bool exempt = false;
      for (std::size_t b = stmt_begin; b < stmt_end; ++b) {
        if (t[b].kind == TokKind::kIdent) {
          if (kLockExemptTypes.count(t[b].text) > 0 ||
              t[b].text == "static" || t[b].text == "constexpr" ||
              t[b].text == "const" || t[b].text == "using" ||
              t[b].text == "typedef" || t[b].text == "friend" ||
              t[b].text == "enum") {
            exempt = true;
          }
          if (t[b].text == "Mutex") info.has_mutex = true;
          const bool at_decl_end =
              b + 1 < stmt_end &&
              (is_punct(t[b + 1], ";") || is_punct(t[b + 1], "=") ||
               is_punct(t[b + 1], "{") || is_punct(t[b + 1], "[") ||
               is_ident(t[b + 1], "GUARDED_BY") ||
               is_ident(t[b + 1], "PT_GUARDED_BY"));
          if (at_decl_end && field.empty() &&
              t[b].text.size() > 1 && t[b].text.back() == '_') {
            field = t[b].text;
          }
        } else if (is_punct(t[b], "&")) {
          exempt = true;  // reference members cannot be reseated
        }
      }
      if (field.empty() || exempt) continue;
      if (guard_at != 0) info.guarded.insert(field);
      else info.unguarded.insert(field);
    }

    if (info.has_mutex) {
      (*classes)[name] = info;
      for (const auto& b : bodies) {
        inline_bodies->push_back({name, b});
      }
    }
    // Do not skip the body: nested classes are found by the same loop.
  }
}

/// Scans one method body of `cls` for writes to unguarded fields while a
/// MutexLock (or std lock guard) is held.
void scan_body_for_unguarded_writes(const std::string& file, const Toks& t,
                                    std::size_t begin, std::size_t end,
                                    const ClassInfo& cls,
                                    std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kLockDecls = {
      "MutexLock", "lock_guard", "unique_lock", "scoped_lock"};
  static const std::set<std::string> kWriteOps = {
      "=", "+=", "-=", "*=", "/=", "%=", "|=", "&=", "^=", "<<=", ">>=",
      "++", "--"};
  int depth = 0;
  std::vector<int> lock_depths;  // depth at each active lock's declaration
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(t[i], "{")) {
      depth += 1;
    } else if (is_punct(t[i], "}")) {
      depth -= 1;
      while (!lock_depths.empty() && lock_depths.back() > depth) {
        lock_depths.pop_back();
      }
    } else if (t[i].kind == TokKind::kIdent &&
               kLockDecls.count(t[i].text) > 0 && i + 1 < end) {
      // `MutexLock lock(mu_)` or `std::unique_lock<std::mutex> lk(...)`.
      std::size_t j = i + 1;
      if (is_punct(t[j], "<")) j = skip_angles(t, j);
      if (j < end && t[j].kind == TokKind::kIdent) {
        lock_depths.push_back(depth);
      }
    } else if (!lock_depths.empty() && t[i].kind == TokKind::kIdent &&
               cls.unguarded.count(t[i].text) > 0) {
      const bool self_field =
          i == begin || (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->")) ||
          (i >= 2 && is_punct(t[i - 1], "->") && is_ident(t[i - 2], "this"));
      if (!self_field) continue;
      const bool written =
          (i + 1 < end && t[i + 1].kind == TokKind::kPunct &&
           kWriteOps.count(t[i + 1].text) > 0) ||
          (i > begin && t[i - 1].kind == TokKind::kPunct &&
           (t[i - 1].text == "++" || t[i - 1].text == "--"));
      if (written) {
        diags->push_back(
            {file, t[i].line, "postcard-lock-unguarded",
             "field '" + t[i].text + "' of " + cls.name +
                 " is written while a lock is held but carries no "
                 "GUARDED_BY annotation (see "
                 "src/base/thread_annotations.h)"});
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Linter.

void Linter::add_file(const std::string& display_path,
                      const std::string& virtual_path,
                      const std::string& content) {
  File f;
  f.display = display_path;
  f.vpath = virtual_path;
  f.dir = dir_of(virtual_path);
  f.lx = lex(content);
  files_.push_back(std::move(f));
}

std::vector<std::string> Linter::rule_ids() {
  return {
      "postcard-determinism-clock",
      "postcard-determinism-rand",
      "postcard-determinism-unordered-iter",
      "postcard-determinism-pointer-order",
      "postcard-layering-back-edge",
      "postcard-layering-cycle",
      "postcard-wire-require-done",
      "postcard-wire-unchecked-count",
      "postcard-lock-unguarded",
      "postcard-nolint-missing-reason",
      "postcard-nolint-unknown-rule",
  };
}

bool Linter::tag_covers(const std::string& tag, const std::string& rule) {
  if (tag == rule) return true;
  return rule.size() > tag.size() && rule.rfind(tag + "-", 0) == 0;
}

LintResult Linter::run() const {
  std::vector<Diagnostic> raw;      // suppressible findings
  std::vector<Diagnostic> always;   // NOLINT-discipline findings

  // --- Cross-file state.
  std::map<std::string, std::size_t> by_vpath;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    by_vpath[files_[i].vpath] = i;
  }
  // Include graph over registered files (project includes resolve against
  // src/ the way the build's -Isrc does).
  std::vector<std::vector<std::size_t>> adj(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    for (const Include& inc : files_[i].lx.includes) {
      if (inc.angled) continue;
      const auto it = by_vpath.find("src/" + inc.path);
      if (it != by_vpath.end()) adj[i].push_back(it->second);
    }
  }
  // Per-file unordered-container declarations, then the transitive closure
  // over includes (a member declared in a header is iterated in the .cc).
  std::vector<std::set<std::string>> own(files_.size());
  for (std::size_t i = 0; i < files_.size(); ++i) {
    own[i] = unordered_decls(files_[i].lx.tokens);
  }
  auto visible_for = [&](std::size_t i) {
    std::set<std::string> vis = own[i];
    std::vector<std::size_t> stack = {i};
    std::set<std::size_t> seen = {i};
    while (!stack.empty()) {
      const std::size_t f = stack.back();
      stack.pop_back();
      for (std::size_t nb : adj[f]) {
        if (seen.insert(nb).second) {
          vis.insert(own[nb].begin(), own[nb].end());
          stack.push_back(nb);
        }
      }
    }
    return vis;
  };

  // Lock rule: classes are collected globally (headers define them, .cc
  // files hold the method bodies).
  std::map<std::string, ClassInfo> classes;
  std::vector<std::pair<std::size_t,
                        std::vector<std::pair<std::string,
                                              std::pair<std::size_t,
                                                        std::size_t>>>>>
      inline_bodies_per_file;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (files_[i].dir.empty()) continue;
    std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
        bodies;
    collect_classes(files_[i].display, files_[i].lx.tokens, &classes,
                    &bodies);
    inline_bodies_per_file.push_back({i, std::move(bodies)});
  }

  // --- Per-file rules.
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const File& f = files_[i];
    const Toks& t = f.lx.tokens;
    if (kDeterminismDirs.count(f.dir) > 0) {
      check_clocks(f.display, f.vpath, t, &raw);
      check_rand(f.display, t, &raw);
      check_unordered_iter(f.display, t, visible_for(i), &raw);
      check_pointer_order(f.display, t, &raw);
    }
    if (kWireDirs.count(f.dir) > 0) {
      check_wire_require_done(f.display, t, &raw);
      check_wire_unchecked_count(f.display, t, &raw);
    }
    // Layering back-edges.
    const auto rank_it = kLayerRank.find(f.dir);
    if (rank_it != kLayerRank.end()) {
      for (const Include& inc : f.lx.includes) {
        if (inc.angled) continue;
        if (kInterfaceHeaders.count(inc.path) > 0) continue;
        const std::size_t slash = inc.path.find('/');
        if (slash == std::string::npos) continue;
        const auto target = kLayerRank.find(inc.path.substr(0, slash));
        if (target == kLayerRank.end()) continue;
        if (target->second > rank_it->second) {
          raw.push_back(
              {f.display, inc.line, "postcard-layering-back-edge",
               "src/" + f.dir + " (layer " +
                   std::to_string(rank_it->second) + ") must not include '" +
                   inc.path + "' (layer " + std::to_string(target->second) +
                   "); the layer order is base < linalg < lp < "
                   "core/charging/net < sim/flow/audit < runtime < "
                   "server/replication"});
        }
      }
    }
  }

  // --- Include cycles (iterative three-color DFS over project includes).
  {
    std::vector<int> color(files_.size(), 0);  // 0 white, 1 gray, 2 black
    std::vector<std::size_t> parent(files_.size(), SIZE_MAX);
    for (std::size_t root = 0; root < files_.size(); ++root) {
      if (color[root] != 0) continue;
      std::vector<std::pair<std::size_t, std::size_t>> stack;  // node, edge
      stack.push_back({root, 0});
      color[root] = 1;
      while (!stack.empty()) {
        auto& [node, edge] = stack.back();
        if (edge < adj[node].size()) {
          const std::size_t next = adj[node][edge];
          edge += 1;
          if (color[next] == 0) {
            color[next] = 1;
            parent[next] = node;
            stack.push_back({next, 0});
          } else if (color[next] == 1) {
            // Found a cycle: walk parents back to `next`.
            std::string members = files_[next].vpath;
            for (std::size_t w = node; w != next && w != SIZE_MAX;
                 w = parent[w]) {
              members += " -> " + files_[w].vpath;
            }
            raw.push_back({files_[node].display, 1, "postcard-layering-cycle",
                           "include cycle between first-party files: " +
                               members});
          }
        } else {
          color[node] = 2;
          stack.pop_back();
        }
      }
    }
  }

  // --- Lock rule bodies: inline methods, then out-of-line definitions.
  for (const auto& [fi, bodies] : inline_bodies_per_file) {
    for (const auto& [cls_name, range] : bodies) {
      const auto it = classes.find(cls_name);
      if (it == classes.end()) continue;
      scan_body_for_unguarded_writes(files_[fi].display,
                                     files_[fi].lx.tokens, range.first,
                                     range.second, it->second, &raw);
    }
  }
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const Toks& t = files_[i].lx.tokens;
    for (std::size_t j = 0; j + 3 < t.size(); ++j) {
      if (t[j].kind != TokKind::kIdent || !is_punct(t[j + 1], "::")) continue;
      const auto it = classes.find(t[j].text);
      if (it == classes.end()) continue;
      if (t[j + 2].kind != TokKind::kIdent) continue;
      std::size_t k = j + 3;
      if (!is_punct(t[k], "(")) continue;  // member fn definitions only
      k = skip_parens(t, k);
      // Skip const/noexcept/annotations/ctor-initializers up to '{' or ';'.
      int guard = 0;
      while (k < t.size() && !is_punct(t[k], "{") && !is_punct(t[k], ";") &&
             guard < 256) {
        if (is_punct(t[k], "(")) k = skip_parens(t, k);
        else ++k;
        ++guard;
      }
      if (k >= t.size() || !is_punct(t[k], "{")) continue;
      const std::size_t end = skip_braces(t, k);
      scan_body_for_unguarded_writes(files_[i].display, t, k, end,
                                     it->second, &raw);
      j = end - 1;
    }
  }

  // --- Suppressions.
  LintResult result;
  result.files = static_cast<int>(files_.size());
  std::map<std::string, std::vector<Suppression>> supp;
  for (const File& f : files_) {
    collect_suppressions(f.display, f.lx.comments, &supp[f.display], &always);
  }
  for (const Diagnostic& d : raw) {
    bool suppressed = false;
    const auto it = supp.find(d.file);
    if (it != supp.end()) {
      for (const Suppression& s : it->second) {
        if (s.line == d.line && tag_covers(s.tag, d.rule)) {
          suppressed = true;
          break;
        }
      }
    }
    if (suppressed) result.suppressed += 1;
    else result.findings.push_back(d);
  }
  for (const Diagnostic& d : always) result.findings.push_back(d);
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return result;
}

std::optional<std::string> fixture_virtual_path(const std::string& content) {
  const std::string marker = "// postcard-lint-fixture:";
  if (content.rfind(marker, 0) != 0) return std::nullopt;
  const std::size_t eol = content.find('\n');
  const std::string line =
      content.substr(marker.size(),
                     (eol == std::string::npos ? content.size() : eol) -
                         marker.size());
  const std::string path = trim(line);
  if (path.empty()) return std::nullopt;
  return path;
}

}  // namespace postcard::lint
