// postcard_lint_ast — optional clang LibTooling frontend (LLVM/Clang 14+).
//
// The token engine (lint.cc) is the authoritative gate and runs under any
// compiler; this frontend is an ADDITIVE second pass that re-checks the
// determinism family with real AST information, catching spellings the
// token scan cannot see through (aliases, `using namespace std::chrono`,
// template indirection). It is built only with -DPOSTCARD_LINT_AST=ON and
// is deliberately conservative: a finding here is always a finding, but
// silence here proves nothing the token pass did not already prove.
//
//   postcard_lint_ast -p <build dir> <src/...cc files>
//
// Suppression honors the same `// NOLINT(postcard-...: <reason>)`
// discipline, matched textually against the finding's line and the line
// above it (the reason discipline itself is enforced by the token pass).
#include <string>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;
using namespace clang::ast_matchers;

namespace {

llvm::cl::OptionCategory kCategory("postcard_lint_ast options");

int g_findings = 0;

/// True when `line` (1-based) or the line above carries a postcard NOLINT
/// marker. Reason validation is the token pass's job.
bool suppressed_at(const SourceManager& sm, SourceLocation loc) {
  if (!loc.isValid() || !loc.isFileID()) return false;
  const FileID fid = sm.getFileID(loc);
  const unsigned line = sm.getSpellingLineNumber(loc);
  bool invalid = false;
  const llvm::StringRef buffer = sm.getBufferData(fid, &invalid);
  if (invalid) return false;
  llvm::SmallVector<llvm::StringRef, 0> lines;
  buffer.split(lines, '\n');
  for (unsigned l : {line, line > 1 ? line - 1 : line}) {
    if (l == 0 || l > lines.size()) continue;
    if (lines[l - 1].contains("NOLINT(postcard-") ||
        lines[l - 1].contains("NOLINTNEXTLINE(postcard-")) {
      return true;
    }
  }
  return false;
}

void report(const SourceManager& sm, SourceLocation loc, llvm::StringRef rule,
            llvm::StringRef message) {
  if (!loc.isValid() || !sm.isInMainFile(loc)) return;
  if (suppressed_at(sm, loc)) return;
  g_findings += 1;
  llvm::errs() << sm.getFilename(loc) << ":" << sm.getSpellingLineNumber(loc)
               << ": error: [" << rule << "] " << message << "\n";
}

class ClockCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr) return;
    report(*result.SourceManager, call->getBeginLoc(),
           "postcard-determinism-clock",
           "wall-clock read in the deterministic core (AST pass); route "
           "deadlines through lp::SolveBudget");
  }
};

class RandCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* call = result.Nodes.getNodeAs<CallExpr>("call");
    if (call == nullptr) return;
    report(*result.SourceManager, call->getBeginLoc(),
           "postcard-determinism-rand",
           "hidden-state random source (AST pass); use a seeded "
           "std::mt19937_64");
  }
};

class UnorderedIterCallback : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const auto* loop = result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
    if (loop == nullptr) return;
    report(*result.SourceManager, loop->getBeginLoc(),
           "postcard-determinism-unordered-iter",
           "range-for over std::unordered_{map,set} (AST pass); hash order "
           "must never reach committed state");
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto expected =
      tooling::CommonOptionsParser::create(argc, argv, kCategory);
  if (!expected) {
    llvm::errs() << llvm::toString(expected.takeError()) << "\n";
    return 2;
  }
  tooling::ClangTool tool(expected->getCompilations(),
                          expected->getSourcePathList());

  MatchFinder finder;
  ClockCallback clock_cb;
  RandCallback rand_cb;
  UnorderedIterCallback iter_cb;

  // steady_clock/system_clock/high_resolution_clock::now().
  finder.addMatcher(
      callExpr(callee(functionDecl(
                   hasName("now"),
                   hasDeclContext(recordDecl(hasAnyName(
                       "::std::chrono::steady_clock",
                       "::std::chrono::system_clock",
                       "::std::chrono::high_resolution_clock"))))))
          .bind("call"),
      &clock_cb);
  // rand()/srand() and random_device::operator().
  finder.addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand"))))
          .bind("call"),
      &rand_cb);
  finder.addMatcher(
      cxxOperatorCallExpr(
          callee(cxxMethodDecl(ofClass(hasName("::std::random_device")))))
          .bind("call"),
      &rand_cb);
  // Range-for whose range is an unordered container (possibly behind
  // references/aliases — hasUnqualifiedDesugaredType sees through both).
  finder.addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(qualType(hasUnqualifiedDesugaredType(
              recordType(hasDeclaration(classTemplateSpecializationDecl(
                  hasAnyName("::std::unordered_map", "::std::unordered_set",
                             "::std::unordered_multimap",
                             "::std::unordered_multiset"))))))))))
          .bind("loop"),
      &iter_cb);

  const int run_status = tool.run(
      tooling::newFrontendActionFactory(&finder).get());
  if (run_status != 0) return run_status;
  llvm::errs() << "postcard_lint_ast: " << g_findings << " finding"
               << (g_findings == 1 ? "" : "s") << "\n";
  return g_findings == 0 ? 0 : 1;
}
