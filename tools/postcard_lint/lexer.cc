#include "lexer.h"

#include <cctype>
#include <cstddef>

namespace postcard::lint {
namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character punctuation, longest first so the scan is greedy.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=",  "%=",  "|=",  "&=",  "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<",  ">>",
};

}  // namespace

LexResult lex(const std::string& content) {
  LexResult out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') line += 1;
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      at_line_start = true;
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const int start_line = line;
      std::size_t j = i;
      while (j < n && content[j] != '\n') ++j;
      out.comments.push_back({start_line, content.substr(i, j - i)});
      advance(j - i);
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) ++j;
      const std::size_t end = (j + 1 < n) ? j + 2 : n;
      out.comments.push_back({start_line, content.substr(i, end - i)});
      advance(end - i);
      continue;
    }

    // Preprocessor directive (only at the start of a line).
    if (c == '#' && at_line_start) {
      std::size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      std::size_t d = j;
      while (d < n && is_ident_char(content[d])) ++d;
      const std::string directive = content.substr(j, d - j);
      if (directive == "include") {
        std::size_t k = d;
        while (k < n && (content[k] == ' ' || content[k] == '\t')) ++k;
        if (k < n && (content[k] == '"' || content[k] == '<')) {
          const char close = content[k] == '"' ? '"' : '>';
          std::size_t e = k + 1;
          while (e < n && content[e] != close && content[e] != '\n') ++e;
          out.includes.push_back(
              {line, content.substr(k + 1, e - k - 1), close == '>'});
        }
      }
      // Skip the directive body, honoring backslash continuations.
      std::size_t e = i;
      while (e < n) {
        if (content[e] == '\n') {
          std::size_t b = e;
          while (b > i && (content[b - 1] == ' ' || content[b - 1] == '\t')) {
            --b;
          }
          if (b == i || content[b - 1] != '\\') break;
        }
        ++e;
      }
      advance(e - i);
      continue;
    }
    at_line_start = false;

    // Raw string literal: R"tag( ... )tag"  (optionally u8R / LR / uR / UR).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t t = i + 2;
      while (t < n && content[t] != '(' && content[t] != '\n' &&
             t - (i + 2) <= 16) {
        ++t;
      }
      if (t < n && content[t] == '(') {
        const std::string tag = content.substr(i + 2, t - (i + 2));
        const std::string close = ")" + tag + "\"";
        const std::size_t e = content.find(close, t + 1);
        const std::size_t end = (e == std::string::npos) ? n : e + close.size();
        out.tokens.push_back({TokKind::kString, "<raw>", line});
        advance(end - i);
        continue;
      }
    }

    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') break;  // unterminated; recover at newline
        ++j;
      }
      const std::size_t end = (j < n && content[j] == quote) ? j + 1 : j;
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            content.substr(i, end - i), start_line});
      advance(end - i);
      continue;
    }

    // Identifier.
    if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < n && is_ident_char(content[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Number (digits plus pp-number tail; good enough for rule matching).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      std::size_t j = i + 1;
      while (j < n && (is_ident_char(content[j]) || content[j] == '.' ||
                       content[j] == '\'' ||
                       ((content[j] == '+' || content[j] == '-') &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E' ||
                         content[j - 1] == 'p' || content[j - 1] == 'P')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, content.substr(i, j - i), line});
      advance(j - i);
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::string(p).size();
      if (content.compare(i, len, p) == 0) {
        out.tokens.push_back({TokKind::kPunct, p, line});
        advance(len);
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }
  return out;
}

}  // namespace postcard::lint
