// Minimal C++ lexer for postcard_lint.
//
// The lint rules (see lint.h) work on a token stream, the comment list and
// the include directives of each translation unit — enough to enforce the
// project's determinism, layering, wire and lock invariants without a full
// frontend. The optional clang AST frontend (ast_main.cc, gated behind
// POSTCARD_LINT_AST) covers the cases a lexer cannot see, e.g. types
// hidden behind aliases; this lexer is the engine that runs on every
// build, clang or not.
//
// What it understands:
//   - line and block comments (captured separately for NOLINT parsing)
//   - string/char literals with escapes, and raw strings R"tag(...)tag"
//   - preprocessor lines, including backslash continuations; #include
//     targets are captured, the rest of the directive is skipped
//   - multi-char punctuation emitted as single tokens (::, ->, +=, ==, ...)
//
// What it deliberately does not understand: macro expansion and template
// instantiation. Rules are written so that the repo's idioms are visible
// without either; the limits are documented in tools/postcard_lint/README.
#pragma once

#include <string>
#include <vector>

namespace postcard::lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
};

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;  // line the comment starts on
  std::string text;
};

struct Include {
  int line = 0;
  std::string path;
  bool angled = false;  // <system> vs "project"
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<Include> includes;
};

/// Lexes `content`; never fails (unterminated literals are closed at EOF).
LexResult lex(const std::string& content);

}  // namespace postcard::lint
