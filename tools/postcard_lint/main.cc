// postcard_lint CLI.
//
// Default mode walks <root>/src for every first-party .h/.cc, runs all
// rule families (lint.h documents them) and exits 1 on any unsuppressed
// finding. With --compdb it is driven by the build's compile database:
// every src/ translation unit must appear there, so a new library that was
// never wired into CMake fails the gate loudly instead of silently
// escaping analysis (the same trap scripts/check_tidy.sh sets for the
// clang-tidy file list).
//
// Fixture mode (--fixture) lints standalone files whose first line names
// the virtual path they should be scoped as:
//   // postcard-lint-fixture: src/core/bad_clock.cc
//
// Usage:
//   postcard_lint [--root DIR] [--compdb FILE]        # lint the tree
//   postcard_lint --fixture FILE...                   # lint fixtures
//   postcard_lint --list-rules
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;
using postcard::lint::Linter;
using postcard::lint::LintResult;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "postcard_lint: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Extracts the "file" entries of a compile_commands.json. A loose scan is
/// enough: entries are absolute paths and the values never contain escaped
/// quotes in this repo's build trees.
std::set<std::string> compdb_files(const std::string& path) {
  const std::string text = read_file(path);
  std::set<std::string> files;
  const std::string key = "\"file\"";
  std::size_t at = 0;
  while ((at = text.find(key, at)) != std::string::npos) {
    at += key.size();
    const std::size_t open = text.find('"', text.find(':', at));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    files.insert(text.substr(open + 1, close - open - 1));
    at = close + 1;
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compdb;
  std::vector<std::string> fixtures;
  bool fixture_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& r : Linter::rule_ids()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compdb" && i + 1 < argc) {
      compdb = argv[++i];
    } else if (arg == "--fixture") {
      fixture_mode = true;
    } else if (!arg.empty() && arg[0] != '-') {
      fixtures.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: postcard_lint [--root DIR] [--compdb FILE] |"
                   " --fixture FILE... | --list-rules\n");
      return 2;
    }
  }

  Linter linter;
  if (fixture_mode) {
    for (const std::string& f : fixtures) {
      const std::string content = read_file(f);
      const auto vpath = postcard::lint::fixture_virtual_path(content);
      if (!vpath) {
        std::fprintf(stderr,
                     "postcard_lint: %s lacks a '// postcard-lint-fixture: "
                     "<virtual path>' first line\n",
                     f.c_str());
        return 2;
      }
      linter.add_file(f, *vpath, content);
    }
  } else {
    const fs::path src = fs::path(root) / "src";
    if (!fs::is_directory(src)) {
      std::fprintf(stderr, "postcard_lint: %s is not a directory\n",
                   src.string().c_str());
      return 2;
    }
    std::vector<fs::path> paths;
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());  // deterministic report order

    // compile_commands completeness: every src/ TU must be built (and
    // therefore visible to clang-tidy and any AST-based tooling).
    if (!compdb.empty()) {
      const std::set<std::string> built = compdb_files(compdb);
      int missing = 0;
      for (const fs::path& p : paths) {
        if (p.extension() != ".cc") continue;
        const std::string abs = fs::absolute(p).lexically_normal().string();
        if (built.count(abs) == 0) {
          std::fprintf(stderr,
                       "%s:1: error: [postcard-compdb-missing] translation "
                       "unit absent from %s — wire the library into CMake "
                       "so every gate sees it\n",
                       p.string().c_str(), compdb.c_str());
          missing += 1;
        }
      }
      if (missing > 0) return 1;
    }

    const fs::path rootp = fs::absolute(root).lexically_normal();
    for (const fs::path& p : paths) {
      const std::string vpath =
          fs::absolute(p).lexically_normal().lexically_relative(rootp)
              .generic_string();
      linter.add_file(p.string(), vpath, read_file(p.string()));
    }
  }

  const LintResult result = linter.run();
  for (const auto& d : result.findings) {
    std::printf("%s:%d: error: [%s] %s\n", d.file.c_str(), d.line,
                d.rule.c_str(), d.message.c_str());
  }
  std::printf(
      "postcard_lint: %zu finding%s (%d suppressed by justified NOLINTs) "
      "over %d files\n",
      result.findings.size(), result.findings.size() == 1 ? "" : "s",
      result.suppressed, result.files);
  return result.findings.empty() ? 0 : 1;
}
