#!/usr/bin/env bash
# Static-analysis gate: clang thread-safety analysis + clang-tidy.
#
# 1. Configures and builds the `tidy` preset (clang++ with
#    -Wthread-safety -Werror=thread-safety), so any lock-discipline
#    regression against the GUARDED_BY/REQUIRES/EXCLUDES annotations in
#    src/base, src/runtime and src/server fails the build.
# 2. Runs clang-tidy (checks in .clang-tidy, warnings-as-errors) over every
#    first-party translation unit using the preset's compile database.
#
# Both steps need clang. On a box without it (the default container ships
# GCC only) the gate SKIPS LOUDLY and exits 0 — the annotations still
# compile away to nothing under GCC, and TSAN covers the lock contracts at
# runtime. CI images with clang run the full gate.
#
# JOBS controls build parallelism (default: all cores).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

# File-list completeness: every first-level src/ subdirectory must
# contribute at least one .cc to the tidy file list below, so a new
# library added after this script was written cannot silently escape the
# gate. This runs BEFORE the clang detection — a GCC-only box still fails
# loudly on an uncovered subsystem.
mapfile -t tidy_sources < <(git ls-files 'src/**/*.cc')
for subdir in src/*/; do
  name="${subdir#src/}"
  name="${name%/}"
  case " ${tidy_sources[*]} " in
    *" src/${name}/"*) ;;
    *)
      echo "===================================================================" >&2
      echo "TIDY GATE FAILED: src/${name}/ contributes no .cc to the tidy" >&2
      echo "file list (git ls-files 'src/**/*.cc'). Either the new library" >&2
      echo "is header-only (add a .cc or an explicit exemption here) or its" >&2
      echo "files were never committed — both must be decided, not ignored." >&2
      echo "===================================================================" >&2
      exit 1
      ;;
  esac
done

if ! command -v clang++ >/dev/null 2>&1; then
  echo "==================================================================="
  echo "TIDY GATE SKIPPED: clang++ not found on PATH."
  echo "The thread-safety analysis and clang-tidy need clang; this tree was"
  echo "checked with GCC warnings only. Install clang/clang-tidy and re-run"
  echo "  scripts/check_tidy.sh"
  echo "to enforce the annotations in src/base/thread_annotations.h."
  echo "==================================================================="
  exit 0
fi

echo "== thread-safety analysis (clang -Wthread-safety -Werror) =="
cmake --preset tidy
cmake --build build-tidy -j "${JOBS}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "==================================================================="
  echo "CLANG-TIDY SKIPPED: clang-tidy not found on PATH (thread-safety"
  echo "analysis above DID run). Install clang-tidy for the full gate."
  echo "==================================================================="
  exit 0
fi

echo "== clang-tidy (checks from .clang-tidy, warnings as errors) =="
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tests/**/*.cc' \
  'bench/**/*.cc' 'examples/**/*.cpp')
clang-tidy -p build-tidy --quiet "${sources[@]}"
echo "tidy gate passed: ${#sources[@]} translation units clean"
