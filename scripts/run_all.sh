#!/usr/bin/env bash
# Final verification driver: configure + build, full test suite, a
# ThreadSanitizer pass over the `runtime`-labeled concurrency tests, an
# ASan+UBSan pass over the `charging` and `runtime` labels, and every
# benchmark binary, teeing into the repository-root output files.
#
# JOBS controls build/test parallelism (default: all cores).
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}" 2>&1 | tee test_output.txt

# Concurrency suite under TSAN: the preset configures build-tsan/ with
# -DPOSTCARD_TSAN=ON; any data race fails the run. `chaos` labels the
# fault-injection suites (link failures, solver stalls/faults, the
# degradation ladder).
cmake --preset tsan
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan -L "runtime|chaos|server|scale|replication" --output-on-failure \
  -j "${JOBS}" 2>&1 | tee -a test_output.txt

# Memory-safety pass: ASan + UBSan (fail-fast on UB) over the charging
# ledgers and the runtime + chaos engines — the subsystems with hand-rolled
# pointer structures (the order-statistic treap) and cross-thread handoff.
cmake --preset asan
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan -L "charging|runtime|chaos|audit|server|scale|replication" \
  --output-on-failure -j "${JOBS}" 2>&1 | tee -a test_output.txt

# Standalone UBSan pass (works under GCC; +float-divide-by-zero, which the
# combined ASan preset does not enable): charging, runtime, chaos, the LP
# kernels, and the plan-audit suites.
cmake --preset ubsan
cmake --build build-ubsan -j "${JOBS}"
ctest --test-dir build-ubsan -L "charging|runtime|chaos|lp|audit|server|scale|replication" \
  --output-on-failure -j "${JOBS}" 2>&1 | tee -a test_output.txt

# Project-invariant lint (tools/postcard_lint): determinism, layering,
# wire-decode and lock discipline over src/, driven by the compile
# database. Needs no clang — this gate runs on every box; any unsuppressed
# finding fails the run.
scripts/check_lint.sh 2>&1 | tee -a test_output.txt

# Static-analysis gate: clang thread-safety analysis + clang-tidy. Skips
# loudly (exit 0) when clang is not installed — see the script header.
scripts/check_tidy.sh 2>&1 | tee -a test_output.txt

# Stash the committed BENCH_*.json baseline before the benches overwrite
# it: the trajectory gate below diffs new-vs-previous metric by metric.
mkdir -p build/bench_prev
rm -f build/bench_prev/BENCH_*.json
cp BENCH_*.json build/bench_prev/ 2>/dev/null || true

for b in build/bench/bench_*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  "$b"
done 2>&1 | tee bench_output.txt

# Loud regression gate over the structured bench output: latency > 1.5x,
# cost > 1.10x, warm-accept rate dropping > 0.15 etc. fail the run (see
# scripts/summarize_benches.py --check-trajectory).
python3 scripts/summarize_benches.py --check-trajectory build/bench_prev . \
  2>&1 | tee -a bench_output.txt
echo "ALL_RUNS_COMPLETE"
