#!/bin/sh
# Final verification driver: full test suite + every benchmark binary,
# teeing into the repository-root output files.
cd /root/repo || exit 1
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
for b in build/bench/*; do "$b"; done 2>&1 | tee /root/repo/bench_output.txt
echo "ALL_RUNS_COMPLETE"
