#!/usr/bin/env bash
# Crash-recovery torture loop for the replicated controller.
#
# Repeats the two hardest replication suites back to back:
#
#   * test_replication_crash — the primary runs as a CHILD PROCESS and is
#     killed with a real `kill -9` mid-run; the standby must promote and
#     finish the workload with the bit-for-bit cost series of an unfailed
#     run, every single iteration.
#   * test_replication_chaos — injected divergence (caught within one
#     slot commit + reseeded), a stalled standby (dropped, never wedging
#     the slot clock), partitions and standby turnover.
#
# Flakes in failover logic love timing luck; one pass proves little. The
# loop surfaces the rare interleavings: any failed iteration stops the
# run immediately (set -e) with the iteration number on stderr.
#
#   ITERS=50 BUILD=build-tsan scripts/torture_replication.sh
#
# ITERS: iterations (default 20). BUILD: build dir (default build) — use
# build-tsan for the race-hunting variant.
set -euo pipefail

cd "$(dirname "$0")/.."
ITERS="${ITERS:-20}"
BUILD="${BUILD:-build}"

if [ ! -x "${BUILD}/tests/test_replication_crash" ] ||
   [ ! -x "${BUILD}/tests/test_replication_chaos" ]; then
  echo "replication test binaries missing under ${BUILD}/ — building" >&2
  cmake -B "${BUILD}" -S .
  cmake --build "${BUILD}" -j "$(nproc)" \
    --target test_replication_crash test_replication_chaos
fi

for i in $(seq 1 "${ITERS}"); do
  echo "=== torture iteration ${i}/${ITERS} ==="
  "${BUILD}/tests/test_replication_crash" --gtest_brief=1 ||
    { echo "CRASH SUITE FAILED at iteration ${i}" >&2; exit 1; }
  "${BUILD}/tests/test_replication_chaos" --gtest_brief=1 ||
    { echo "CHAOS SUITE FAILED at iteration ${i}" >&2; exit 1; }
done
echo "TORTURE_OK ${ITERS} iterations"
