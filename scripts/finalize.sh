#!/bin/sh
# Post-sweep finalization:
#  1. bench_extensions crashed during the sweep (fixed since) and the
#     solver/scale benches carried a counter bug (fixed since): re-run those
#     three binaries and splice their sections into bench_output.txt.
#  2. Refresh test_output.txt with the full (grown) test suite.
cd /root/repo || exit 1
python3 - <<'PY'
import re, subprocess

with open("bench_output.txt") as f:
    text = f.read()

# Sections start with an ISO date line; keep only sections that do NOT
# belong to the three re-run binaries.
parts = re.split(r"(?=^20\d\d-\d\d-\d\dT)", text, flags=re.M)
drop = ("BM_BulkBackhaul", "BM_BudgetCurve", "BM_Scale_", "BM_DirectSimplex",
        "BM_DirectInteriorPoint", "BM_ColumnGeneration")
kept = [p for p in parts if not any(d in p for d in drop)]

fresh = []
for binary in ("bench_extensions", "bench_scale", "bench_solver_ablation"):
    out = subprocess.run(["build/bench/" + binary], capture_output=True,
                         text=True)
    fresh.append(out.stdout + out.stderr)

with open("bench_output.txt", "w") as f:
    f.write("".join(kept))
    f.write("".join(fresh))
print("bench_output.txt spliced")
PY
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
echo FINALIZE_COMPLETE
