#!/usr/bin/env bash
# postcard_lint gate: the project-specific invariant checker
# (tools/postcard_lint — determinism, layering, wire-decode and lock
# discipline; the rule catalog is in tools/postcard_lint/lint.h).
#
# Unlike the tidy gate (scripts/check_tidy.sh), the core engine is plain
# C++ and builds with whatever compiler builds the tree, so this gate runs
# EVERYWHERE — a GCC-only container gets full enforcement. The binary is
# driven by the build's compile database: a src/ translation unit that was
# never wired into CMake fails loudly ([postcard-compdb-missing]) instead
# of silently escaping every compile-based gate.
#
# The optional clang LibTooling frontend (-DPOSTCARD_LINT_AST=ON) is an
# additive second pass; its absence is noted, never an error.
#
# BUILD_DIR selects the build tree (default: build). JOBS controls build
# parallelism (default: all cores).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

if [ ! -d "${BUILD_DIR}" ]; then
  cmake -B "${BUILD_DIR}" -S .
fi
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target postcard_lint

LINT_BIN="${BUILD_DIR}/tools/postcard_lint/postcard_lint"
if [ ! -x "${LINT_BIN}" ]; then
  echo "==================================================================="
  echo "LINT GATE FAILED: ${LINT_BIN} did not build."
  echo "The postcard_lint core needs no clang — a build failure here is a"
  echo "real break, not a missing dependency. See tools/postcard_lint/."
  echo "==================================================================="
  exit 1
fi

COMPDB="${BUILD_DIR}/compile_commands.json"
if [ ! -f "${COMPDB}" ]; then
  echo "==================================================================="
  echo "LINT GATE: ${COMPDB} missing — the compdb completeness check"
  echo "(unwired-translation-unit trap) cannot run. The build tree predates"
  echo "CMAKE_EXPORT_COMPILE_COMMANDS; re-run cmake -B ${BUILD_DIR} -S ."
  echo "==================================================================="
  exit 1
fi

echo "== postcard_lint (determinism / layering / wire / lock) =="
"${LINT_BIN}" --root . --compdb "${COMPDB}"

if [ -x "${BUILD_DIR}/tools/postcard_lint/postcard_lint_ast" ]; then
  echo "== postcard_lint AST frontend (clang LibTooling) =="
  "${BUILD_DIR}/tools/postcard_lint/postcard_lint_ast" -p "${BUILD_DIR}" \
    $(git ls-files 'src/**/*.cc')
else
  echo "note: AST frontend not built (needs clang dev headers +"
  echo "      -DPOSTCARD_LINT_AST=ON); the token-engine pass above is the"
  echo "      authoritative gate and DID run."
fi
echo "lint gate passed"
