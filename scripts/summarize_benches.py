#!/usr/bin/env python3
"""Bench post-processing, two modes.

Text mode (default):
    summarize_benches.py [bench_output.txt]
condenses google-benchmark console output into the EXPERIMENTS.md summary
table rows, exactly as before.

Trajectory mode:
    summarize_benches.py --check-trajectory PREV_DIR NEW_DIR
loads every BENCH_<name>.json pair (the bench binaries write them, see
bench/bench_json.h) and compares metric by metric against per-kind
thresholds. Any breach prints a loud REGRESSION line and the script exits
nonzero — run_all.sh stashes the previous repo-root BENCH_*.json under
build/bench_prev/ and runs this gate after the bench sweep. Metrics only
present on one side are reported informationally, never fatally, so adding
or retiring a metric does not wedge the gate.

    summarize_benches.py --self-test
runs the built-in threshold tests (registered as a ctest entry, label
`tools`).

Thresholds by metric-name suffix/kind:
  * latency (ends in _ms or _seconds): fail if new > 1.5x old AND the
    absolute growth exceeds a noise floor (2 ms / 0.002 s) — single-core CI
    timing jitter on sub-millisecond readings must not fail the build.
  * throughput (ends in _per_sec): the mirror image — fail if new < old /
    1.5; growth is always fine.
  * warm_accept_rate (suffix match, so hotpath_warm_accept_rate gates too):
    fail if it drops by more than 0.15 absolute.
  * cost (contains cost_mean / cost_per_interval / cost_delta /
    cost_vs_clean): fail if new > 1.10x old + 1e-9 (deterministic solves;
    any real growth is a behavior change).
  * counts (degraded_slots / audit_violations / protocol_errors /
    rejected_files; rejected_share as a rate): fail if new > old + 1
    (rates: + 0.02).
  * everything else: informational only.
"""
import json
import os
import re
import shutil
import sys
import tempfile


# --------------------------------------------------------------------------
# Text mode (legacy): bench_output.txt -> summary rows.
def summarize_text(path):
    rows = []
    for line in open(path):
        # BM_-prefixed rows are the paper-figure benches; the bare-named rows
        # (RuntimeReplay/..., AuditedReplay/audit:1, ...) are the runtime and
        # audit benches — accept either as long as it is a timing row.
        m = re.match(r"(BM_\S+)\s", line) or (
            re.search(r"\d\s+ns\s", line) and re.match(r"([A-Za-z]\w*\S*)\s", line)
        )
        if not m:
            continue
        name = m.group(1)
        counters = dict(re.findall(r"(\w+)=([\d.]+[kmun]?)", line))

        def num(key):
            v = counters.get(key)
            if v is None:
                return None
            scale = 1.0
            if v[-1] in "kmun":
                scale = {"k": 1e3, "m": 1e-3, "u": 1e-6, "n": 1e-9}[v[-1]]
                v = v[:-1]
            return float(v) * scale

        cost = num("cost_mean") or num("cost_per_interval")
        ci = num("cost_ci95")
        rej = num("rejected_share")
        cells = [name]
        if cost is not None:
            cells.append(f"cost {cost:.0f}" + (f" ± {ci:.0f}" if ci is not None else ""))
        if rej is not None:
            cells.append(f"rej {100*rej:.1f}%")
        for extra in ("delivered_gb", "objective", "percentile", "budget",
                      "cost_delta", "degraded_slots", "rung_truncated",
                      "rung_greedy", "carryover", "cost_vs_clean",
                      "audit_checks", "audit_violations", "audit_ms",
                      "audit_share_pct", "audit_us_per_slot",
                      "rtt_mean_ms", "rtt_p99_ms", "slot_mean_ms",
                      "slot_p99_ms", "snapshot_mean_ms"):
            v = num(extra)
            if v is not None:
                cells.append(f"{extra}={v:.1f}")
        rows.append("  ".join(cells))
    return "\n".join(rows)


# --------------------------------------------------------------------------
# Trajectory mode: BENCH_*.json old-vs-new with loud thresholds.

LATENCY_RATIO = 1.5
LATENCY_FLOOR_MS = 2.0       # absolute growth below this is jitter, not real
WARM_RATE_DROP = 0.15
COST_RATIO = 1.10
COUNT_SLACK = 1
RATE_SLACK = 0.02

COST_KEYS = ("cost_mean", "cost_per_interval", "cost_delta", "cost_vs_clean")
COUNT_KEYS = ("degraded_slots", "audit_violations", "protocol_errors",
              "rejected_files")
RATE_KEYS = ("rejected_share",)


def check_metric(key, old, new):
    """Returns None if OK, else a human-readable reason string."""
    if key.endswith("_ms") or key.endswith("_seconds"):
        floor = LATENCY_FLOOR_MS if key.endswith("_ms") else LATENCY_FLOOR_MS / 1e3
        if new > old * LATENCY_RATIO and new - old > floor:
            return f"latency {old:.3f} -> {new:.3f} (> {LATENCY_RATIO}x)"
        return None
    if key.endswith("_per_sec"):
        # Throughput is latency upside down: shrinking by more than the
        # latency ratio is the same class of regression as latency growing
        # by it. Growth never fails.
        if new * LATENCY_RATIO < old:
            return f"throughput {old:.6g} -> {new:.6g} (< 1/{LATENCY_RATIO}x)"
        return None
    if key.endswith("warm_accept_rate"):
        if new < old - WARM_RATE_DROP:
            return f"warm-accept rate {old:.3f} -> {new:.3f} (dropped > {WARM_RATE_DROP})"
        return None
    if any(k in key for k in COST_KEYS):
        if new > old * COST_RATIO + 1e-9:
            return f"cost {old:.6g} -> {new:.6g} (> {COST_RATIO}x)"
        return None
    if any(k in key for k in COUNT_KEYS):
        if new > old + COUNT_SLACK:
            return f"count {old:.0f} -> {new:.0f} (> +{COUNT_SLACK})"
        return None
    if any(k in key for k in RATE_KEYS):
        if new > old + RATE_SLACK:
            return f"rate {old:.4f} -> {new:.4f} (> +{RATE_SLACK})"
        return None
    return None  # informational metric: never fatal


def load_bench_jsons(directory):
    """{bench_name: {metric: value}} for every BENCH_*.json in directory."""
    out = {}
    if not os.path.isdir(directory):
        return out
    for entry in sorted(os.listdir(directory)):
        m = re.fullmatch(r"BENCH_(.+)\.json", entry)
        if not m:
            continue
        try:
            with open(os.path.join(directory, entry)) as f:
                doc = json.load(f)
            metrics = doc.get("metrics", {})
            out[m.group(1)] = {k: float(v) for k, v in metrics.items()}
        except (OSError, ValueError) as exc:
            print(f"TRAJECTORY_WARNING unreadable {entry}: {exc}")
    return out


def record_baseline(prev_dir, new_dir):
    """Copies every BENCH_*.json from new_dir into prev_dir (creating it);
    returns the recorded file names."""
    os.makedirs(prev_dir, exist_ok=True)
    recorded = []
    for entry in sorted(os.listdir(new_dir)):
        if re.fullmatch(r"BENCH_(.+)\.json", entry):
            shutil.copyfile(os.path.join(new_dir, entry),
                            os.path.join(prev_dir, entry))
            recorded.append(entry)
    return recorded


def check_trajectory(prev_dir, new_dir):
    prev = load_bench_jsons(prev_dir)
    new = load_bench_jsons(new_dir)
    if not prev:
        # First run in this workspace: there is nothing to compare against.
        # Record the fresh results AS the baseline (so the very next run is
        # gated) instead of silently passing with no baseline in place.
        if not new:
            print(f"TRAJECTORY_SKIPPED no BENCH_*.json in {prev_dir} or "
                  f"{new_dir} — nothing to record or compare")
            return 0
        recorded = record_baseline(prev_dir, new_dir)
        print(f"TRAJECTORY_BASELINE no baseline in {prev_dir}; recorded "
              f"{len(recorded)} BENCH_*.json file(s) from {new_dir} as the "
              "baseline (nothing compared, gate passes)")
        return 0
    if not new:
        print(f"REGRESSION no new BENCH_*.json in {new_dir} — benches stopped "
              "emitting JSON")
        return 1
    regressions = 0
    compared = 0
    for bench, old_metrics in sorted(prev.items()):
        if bench not in new:
            print(f"REGRESSION bench '{bench}' vanished: BENCH_{bench}.json "
                  f"was in {prev_dir} but not in {new_dir}")
            regressions += 1
            continue
        new_metrics = new[bench]
        for key, old_value in sorted(old_metrics.items()):
            if key not in new_metrics:
                print(f"TRAJECTORY_INFO {bench}.{key} no longer emitted")
                continue
            compared += 1
            reason = check_metric(key, old_value, new_metrics[key])
            if reason is not None:
                print(f"REGRESSION {bench}.{key}: {reason}")
                regressions += 1
        for key in sorted(set(new_metrics) - set(old_metrics)):
            print(f"TRAJECTORY_INFO new metric {bench}.{key} = "
                  f"{new_metrics[key]:.6g}")
    for bench in sorted(set(new) - set(prev)):
        print(f"TRAJECTORY_INFO new bench '{bench}' "
              f"({len(new[bench])} metrics) enters the baseline")
    if regressions:
        print(f"TRAJECTORY_FAILED {regressions} regression(s) across "
              f"{compared} compared metric(s)")
        return 1
    print(f"TRAJECTORY_OK {compared} metric(s) within thresholds")
    return 0


# --------------------------------------------------------------------------
def self_test():
    cases = [
        # (key, old, new, expect_regression)
        ("submit_rtt_mean_ms", 10.0, 20.0, True),       # 2x and > +2ms
        ("submit_rtt_mean_ms", 0.1, 0.3, False),        # 3x but under floor
        ("submit_rtt_mean_ms", 10.0, 14.0, False),      # +4ms but < 1.5x
        ("mean_seconds", 0.010, 0.020, True),
        ("warm_accept_rate", 0.9, 0.8, False),
        ("warm_accept_rate", 0.9, 0.5, True),
        ("Fig4_c100_T3_Postcard_cost_mean", 100.0, 105.0, False),
        ("Fig4_c100_T3_Postcard_cost_mean", 100.0, 120.0, True),
        ("budget50_cost_delta", 5.0, 5.0, False),
        ("budget50_cost_delta", 5.0, 6.0, True),
        ("budget50_degraded_slots", 3.0, 4.0, False),
        ("budget50_degraded_slots", 3.0, 5.0, True),
        ("audit_violations", 0.0, 2.0, True),
        ("Fig4_c100_T3_Postcard_rejected_share", 0.10, 0.11, False),
        ("Fig4_c100_T3_Postcard_rejected_share", 0.10, 0.20, True),
        ("cold_starts", 4.0, 400.0, False),             # informational only
        # bench_scale emits per-config slot latencies and ladder counts; the
        # existing suffix/kind rules must gate them without special-casing.
        ("scale_fat10_a1000_slot_p99_ms", 80.0, 300.0, True),
        ("scale_fat10_a1000_slot_p50_ms", 0.5, 1.2, False),  # under floor
        ("scale_fat10_a1000_degraded_slots", 2.0, 3.0, False),
        ("scale_fat10_a1000_degraded_slots", 2.0, 9.0, True),
        ("scale_complete20_a50_first_degraded_slot", 3.0, 1.0, False),  # info
        # bench_solver_hotpath: latency splits, a throughput rate, and the
        # deterministic DCRoute rejection count.
        ("hotpath_opt_mean_slot_solve_ms", 1.0, 1.4, False),   # under floor
        ("hotpath_opt_master_seconds", 0.010, 0.030, True),
        ("hotpath_columns_per_sec", 1000.0, 500.0, True),      # halved
        ("hotpath_columns_per_sec", 1000.0, 800.0, False),     # within ratio
        ("hotpath_columns_per_sec", 1000.0, 2000.0, False),    # growth is fine
        ("hotpath_warm_accept_rate", 0.9, 0.5, True),          # suffix match
        ("hotpath_warm_accept_rate", 0.9, 0.8, False),
        ("hotpath_dcroute_rejected_files", 3.0, 4.0, False),
        ("hotpath_dcroute_rejected_files", 3.0, 10.0, True),
        ("hotpath_cg_resumed_share", 0.9, 0.1, False),         # informational
    ]
    failures = 0
    for key, old, new, expect in cases:
        got = check_metric(key, old, new) is not None
        if got != expect:
            print(f"SELF_TEST_FAILED {key} old={old} new={new} "
                  f"expected regression={expect} got={got}")
            failures += 1

    # First-run trajectory behavior: an empty baseline directory records the
    # new results and passes; the recorded baseline then gates the next run.
    with tempfile.TemporaryDirectory() as tmp:
        prev_dir = os.path.join(tmp, "prev")
        new_dir = os.path.join(tmp, "new")
        os.makedirs(new_dir)
        with open(os.path.join(new_dir, "BENCH_scale.json"), "w") as f:
            json.dump({"metrics": {"scale_fat10_a1000_slot_p99_ms": 12.0}}, f)
        if check_trajectory(prev_dir, new_dir) != 0:
            print("SELF_TEST_FAILED first run without a baseline must pass")
            failures += 1
        if not os.path.isfile(os.path.join(prev_dir, "BENCH_scale.json")):
            print("SELF_TEST_FAILED first run must record the baseline")
            failures += 1
        if check_trajectory(prev_dir, new_dir) != 0:
            print("SELF_TEST_FAILED identical re-run against the recorded "
                  "baseline must pass")
            failures += 1
        with open(os.path.join(new_dir, "BENCH_scale.json"), "w") as f:
            json.dump({"metrics": {"scale_fat10_a1000_slot_p99_ms": 500.0}}, f)
        if check_trajectory(prev_dir, new_dir) == 0:
            print("SELF_TEST_FAILED regression vs the recorded baseline "
                  "must fail the gate")
            failures += 1

    if failures:
        return 1
    print(f"SELF_TEST_OK {len(cases)} threshold cases + baseline recording")
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) >= 2 and argv[1] == "--check-trajectory":
        if len(argv) != 4:
            print("usage: summarize_benches.py --check-trajectory PREV_DIR NEW_DIR")
            return 2
        return check_trajectory(argv[2], argv[3])
    path = argv[1] if len(argv) > 1 else "bench_output.txt"
    print(summarize_text(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
