#!/usr/bin/env python3
"""Condenses bench_output.txt into the EXPERIMENTS.md summary table rows."""
import re
import sys

path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
rows = []
for line in open(path):
    # BM_-prefixed rows are the paper-figure benches; the bare-named rows
    # (RuntimeReplay/..., AuditedReplay/audit:1, ...) are the runtime and
    # audit benches — accept either as long as it is a timing row.
    m = re.match(r"(BM_\S+)\s", line) or (
        re.search(r"\d\s+ns\s", line) and re.match(r"([A-Za-z]\w*\S*)\s", line)
    )
    if not m:
        continue
    name = m.group(1)
    counters = dict(re.findall(r"(\w+)=([\d.]+[kmun]?)", line))
    def num(key):
        v = counters.get(key)
        if v is None:
            return None
        scale = 1.0
        if v[-1] in "kmun":
            scale = {"k": 1e3, "m": 1e-3, "u": 1e-6, "n": 1e-9}[v[-1]]
            v = v[:-1]
        return float(v) * scale
    cost = num("cost_mean") or num("cost_per_interval")
    ci = num("cost_ci95")
    rej = num("rejected_share")
    cells = [name]
    if cost is not None:
        cells.append(f"cost {cost:.0f}" + (f" ± {ci:.0f}" if ci is not None else ""))
    if rej is not None:
        cells.append(f"rej {100*rej:.1f}%")
    for extra in ("delivered_gb", "objective", "percentile", "budget",
                  "cost_delta", "degraded_slots", "rung_truncated",
                  "rung_greedy", "carryover", "cost_vs_clean",
                  "audit_checks", "audit_violations", "audit_ms",
                  "audit_share_pct", "audit_us_per_slot"):
        v = num(extra)
        if v is not None:
            cells.append(f"{extra}={v:.1f}")
    rows.append("  ".join(cells))
print("\n".join(rows))
