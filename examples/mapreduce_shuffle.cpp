// Geo-distributed MapReduce shuffle: urgent inter-DC transfers.
//
// A "file" in the paper's generic sense can be a batch of intermediate
// MapReduce results (Sec. III). Shuffle data is the opposite of backups:
// deadlines are tight (1-2 slots), so there is little room to time-shift.
// With ample capacity the fluid flow model streams through relays without
// paying the store-and-forward burstiness penalty (Sec. VII's discussion) —
// this example shows exactly that regime and prints both policies' link
// peaks for one batch.
#include <cstdio>

#include "core/postcard.h"
#include "flow/baseline.h"

using namespace postcard;

int main() {
  // Four regions; the aggregation site is DC 3. Prices favor relaying
  // through DC 2 (a provider backbone hub).
  net::Topology topology(4);
  const double kCap = 500.0;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      const double price = (i == 2 || j == 2) ? 2.0 : 8.0;
      topology.set_link(i, j, kCap, price);
    }
  }

  // Mappers in DCs 0 and 1 ship intermediate results to the reducer DC 3.
  std::vector<net::FileRequest> shuffle = {
      {1, 0, 3, 120.0, 2, 0},  // 120 GB within 2 slots
      {2, 1, 3, 90.0, 2, 0},   // 90 GB within 2 slots
      {3, 0, 3, 40.0, 1, 0},   // a straggler partition, due immediately
  };

  core::PostcardController postcard{net::Topology(topology)};
  flow::FlowBaseline baseline{net::Topology(topology)};
  const auto po = postcard.schedule(0, shuffle);
  const auto fo = baseline.schedule(0, shuffle);

  std::printf("accepted: postcard %zu/3, flow-based %zu/3\n",
              po.accepted_ids.size(), fo.accepted_ids.size());
  std::printf("cost per interval: postcard %.1f, flow-based %.1f\n\n",
              postcard.cost_per_interval(), baseline.cost_per_interval());

  std::puts("per-link charged volume X_ij (only links that carried traffic):");
  std::puts("  link      postcard    flow-based");
  for (int l = 0; l < topology.num_links(); ++l) {
    const double xp = postcard.charge_state().charged(l);
    const double xf = baseline.charge_state().charged(l);
    if (xp < 1e-6 && xf < 1e-6) continue;
    const net::Link& link = topology.link(l);
    std::printf("  D%d->D%d %10.1f %12.1f\n", link.from, link.to, xp, xf);
  }
  std::puts("\nWith abundant capacity and tight deadlines the fluid flow model");
  std::puts("streams through the hub at half the peak rate of store-and-forward");
  std::puts("(a relayed file crosses each hop in full within one slot), so the");
  std::puts("flow-based approach is the cheaper choice here - Figs. 4-5's regime.");
  return 0;
}
