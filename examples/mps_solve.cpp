// mps_solve: solve any (free-format) MPS file with this library's LP stack.
//
// Usage:  mps_solve FILE.mps [--method simplex|ipm] [--no-presolve]
//                   [--print-solution]
//
// A tiny clone of `clp file.mps -solve`: useful for debugging models dumped
// via lp::write_mps and for exercising the solver on external instances.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "lp/mps.h"
#include "lp/solver.h"

using namespace postcard;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE.mps [--method simplex|ipm] [--no-presolve] "
                 "[--print-solution]\n",
                 argv[0]);
    return 2;
  }
  const char* path = argv[1];
  lp::SolverOptions options;
  bool print_solution = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--method" && i + 1 < argc) {
      const std::string method = argv[++i];
      if (method == "ipm") {
        options.method = lp::Method::kInteriorPoint;
      } else if (method != "simplex") {
        std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
        return 2;
      }
    } else if (flag == "--no-presolve") {
      options.presolve = false;
    } else if (flag == "--print-solution") {
      print_solution = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return 2;
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  lp::LpModel model;
  try {
    model = lp::read_mps(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  std::printf("%s: %d rows, %d columns, %d nonzeros\n", path,
              model.num_constraints(), model.num_variables(),
              model.num_entries());

  const lp::Solution solution = lp::solve(model, options);
  std::printf("status: %s\n", lp::to_string(solution.status));
  if (solution.status == lp::SolveStatus::kOptimal) {
    std::printf("objective: %.10g\n", solution.objective);
    std::printf("iterations: %ld\n", solution.iterations);
    std::printf("max violation: %.3g\n", model.max_violation(solution.x));
  }
  if (print_solution && !solution.x.empty()) {
    for (int j = 0; j < model.num_variables(); ++j) {
      if (solution.x[j] != 0.0) {
        std::string name = model.variable_name(j);
        if (name.empty()) name = "C" + std::to_string(j);
        std::printf("  %s = %.10g\n", name.c_str(), solution.x[j]);
      }
    }
  }
  return solution.status == lp::SolveStatus::kOptimal ? 0 : 3;
}
