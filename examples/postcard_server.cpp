// Serving-mode entry point: a PostcardServer on a real TCP port, wired
// for operations — SIGINT/SIGTERM trigger the graceful drain (finish the
// current slot, write the final snapshot, retire in-flight work, exit 0),
// and a previous snapshot on disk is restored on boot so a crash-restart
// cycle resumes the cost series exactly where it stopped.
//
//   ./build/examples/postcard_server [--port P] [--snapshot FILE]
//                                    [--slot-ms MS] [--snapshot-every N]
//                                    [--repl-listen P]
//
// Defaults: ephemeral port (printed on stdout), snapshot to
// ./postcard_server.psnp, slots advance every 2000 ms, periodic snapshot
// every 10 slots. Talk to it with examples/postcard_client.
//
// --repl-listen P makes the server a replication PRIMARY: a standby
// (examples/postcard_standby) connecting to port P is seeded with a
// snapshot and then follows the committed event log slot by slot, ready
// to take over if this process dies (DESIGN.md §14). Replication needs
// the deterministic runtime, which these options already are.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include "replication/primary.h"
#include "server/server.h"
#include "server/snapshot.h"

using namespace postcard;

namespace {

// Signal handlers may only touch lock-free state: set the flag, let main
// poll it and run the actual drain outside signal context.
volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

bool file_exists(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  server::ServerOptions options;
  options.snapshot_path = "postcard_server.psnp";
  options.slot_every_ms = 2000;
  options.snapshot_every_slots = 10;
  int repl_port = -1;  // -1: replication off; 0: ephemeral
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      options.snapshot_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--slot-ms") == 0) {
      options.slot_every_ms = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--snapshot-every") == 0) {
      options.snapshot_every_slots = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--repl-listen") == 0) {
      repl_port = std::atoi(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  // A standby rejects a primary whose submissions are not deduplicated:
  // idempotent resubmission across a failover depends on it.
  if (repl_port >= 0) options.runtime.dedup_submissions = true;

  // Six datacenters, complete graph, 100 GB per slot per link, unit costs
  // 1..10 — the Fig. 4 shape the offline examples use.
  net::Topology topology = net::Topology::complete(
      6, 100.0,
      [](int i, int j) { return 1.0 + static_cast<double>((3 * i + 5 * j) % 10); });

  server::PostcardServer server{std::move(topology), options};
  server.add_postcard_backend();

  // The primary must be attached BEFORE the server starts so its event
  // tap sees every submission from the first byte on.
  std::unique_ptr<replication::ReplicationPrimary> primary;
  if (repl_port >= 0) {
    replication::PrimaryOptions popts;
    popts.port = repl_port;
    primary = std::make_unique<replication::ReplicationPrimary>(popts);
    primary->attach(server);
  }

  // Crash-restart: a snapshot on disk means a previous incarnation was
  // killed; resume its slot clock, ledgers and in-flight plans. The
  // deterministic-mode contract makes the resumed cost series bit-for-bit
  // identical to an uninterrupted run (tests/server/test_server.cc).
  if (!options.snapshot_path.empty() && file_exists(options.snapshot_path.c_str())) {
    server.restore_from(options.snapshot_path);
    std::printf("restored state from %s\n", options.snapshot_path.c_str());
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  server.start();
  if (primary) primary->start();
  std::printf("postcard_server listening on port %d (snapshot: %s)\n",
              server.port(),
              options.snapshot_path.empty() ? "disabled"
                                            : options.snapshot_path.c_str());
  if (primary) {
    std::printf("replicating to standbys on port %d\n", primary->port());
  }
  std::fflush(stdout);

  // Main thread parks until a signal or a protocol Shutdown drains the
  // server; both paths run the same drain inside the driver thread.
  while (!g_stop && !server.drained()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (g_stop) {
    std::printf("signal received, draining...\n");
    server.request_shutdown();
  }
  server.wait();
  if (primary) primary->stop();

  const runtime::RuntimeStats stats = server.stats();
  std::printf("drained after %d slots: %ld sessions, %ld submits "
              "(%ld admitted), %ld snapshots written\n",
              stats.slots_processed, stats.server.sessions_opened,
              stats.server.submits, stats.server.submit_admitted,
              stats.server.snapshots_written);
  return 0;
}
