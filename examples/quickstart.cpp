// Quickstart: schedule one delay-tolerant transfer with Postcard.
//
// Reproduces the paper's Fig. 1 motivating example: datacenter D2 must send
// a 6 MB file to D3 within three 5-minute intervals. Sending directly costs
// 10 per MB; relaying through D1 (prices 1 and 3) with store-and-forward
// scheduling drops the per-interval cost from 20 to 12.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/postcard.h"

using namespace postcard;

int main() {
  // Topology: D1 = 0, D2 = 1, D3 = 2 with the prices from Fig. 1.
  net::Topology topology(3);
  topology.set_link(1, 2, 1000.0, 10.0);  // D2 -> D3, expensive direct link
  topology.set_link(1, 0, 1000.0, 1.0);   // D2 -> D1, cheap first hop
  topology.set_link(0, 2, 1000.0, 3.0);   // D1 -> D3, cheap second hop

  core::PostcardController controller{std::move(topology)};

  // The file: (source, destination, size, max transfer time) = (D2, D3, 6 MB,
  // 3 slots), released at slot 0.
  net::FileRequest file;
  file.id = 1;
  file.source = 1;
  file.destination = 2;
  file.size = 6.0;
  file.max_transfer_slots = 3;
  file.release_slot = 0;

  const sim::ScheduleOutcome outcome = controller.schedule(0, {file});
  if (outcome.accepted_ids.empty()) {
    std::puts("file could not be scheduled");
    return 1;
  }

  std::printf("cost per interval: %.2f (direct transfer would cost 20.00)\n\n",
              controller.cost_per_interval());
  std::puts("committed store-and-forward plan:");
  for (const core::FilePlan& plan : controller.last_plans()) {
    for (const core::Transfer& t : plan.transfers) {
      if (t.storage()) {
        std::printf("  slot %d: hold %5.2f MB at D%d\n", t.slot, t.volume,
                    t.from + 1);
      } else {
        std::printf("  slot %d: send %5.2f MB D%d -> D%d\n", t.slot, t.volume,
                    t.from + 1, t.to + 1);
      }
    }
  }
  return 0;
}
