// compare_policies: a small CLI for running custom Postcard-vs-baselines
// simulations and exporting per-slot cost trajectories as CSV — the tool a
// downstream operator would use to evaluate the schedulers on their own
// parameters before deploying.
//
// Usage:
//   compare_policies [--dcs N] [--capacity GB] [--files MAX] [--slots N]
//                    [--max-deadline T] [--size-max GB] [--seed S]
//                    [--workload uniform|diurnal|hotspot] [--csv PATH]
//
// Runs Postcard (LP, column generation), the greedy store-and-forward
// heuristic, and the flow-based baseline on the identical workload and
// prints a comparison table; --csv additionally writes the trajectories.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/greedy.h"
#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/csv.h"
#include "sim/simulator.h"

using namespace postcard;

namespace {

struct CliOptions {
  int dcs = 6;
  double capacity = 40.0;
  int files_max = 5;
  int slots = 12;
  int max_deadline = 6;
  double size_max = 40.0;
  std::uint64_t seed = 1;
  std::string workload = "uniform";
  std::string csv_path;
};

bool parse(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    const char* v;
    if (flag == "--dcs" && (v = value())) {
      opts.dcs = std::atoi(v);
    } else if (flag == "--capacity" && (v = value())) {
      opts.capacity = std::atof(v);
    } else if (flag == "--files" && (v = value())) {
      opts.files_max = std::atoi(v);
    } else if (flag == "--slots" && (v = value())) {
      opts.slots = std::atoi(v);
    } else if (flag == "--max-deadline" && (v = value())) {
      opts.max_deadline = std::atoi(v);
    } else if (flag == "--size-max" && (v = value())) {
      opts.size_max = std::atof(v);
    } else if (flag == "--seed" && (v = value())) {
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (flag == "--workload" && (v = value())) {
      opts.workload = v;
    } else if (flag == "--csv" && (v = value())) {
      opts.csv_path = v;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<sim::WorkloadGenerator> make_workload(const CliOptions& o) {
  sim::WorkloadParams p;
  p.num_datacenters = o.dcs;
  p.link_capacity = o.capacity;
  p.files_per_slot_min = 1;
  p.files_per_slot_max = o.files_max;
  p.size_min = std::min(10.0, o.size_max);
  p.size_max = o.size_max;
  p.deadline_min = 1;
  p.deadline_max = o.max_deadline;
  p.num_slots = o.slots;
  p.seed = o.seed;
  if (o.workload == "diurnal") return std::make_unique<sim::DiurnalWorkload>(p);
  if (o.workload == "hotspot") return std::make_unique<sim::HotspotWorkload>(p);
  return std::make_unique<sim::UniformWorkload>(p);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse(argc, argv, opts)) return 2;
  const auto workload = make_workload(opts);

  core::PostcardController postcard{net::Topology(workload->topology())};
  core::GreedyScheduler greedy{net::Topology(workload->topology())};
  flow::FlowBaseline flow_based{net::Topology(workload->topology())};

  struct Row {
    sim::SchedulingPolicy* policy;
    sim::RunResult result;
  };
  std::vector<Row> rows = {{&postcard, {}}, {&greedy, {}}, {&flow_based, {}}};
  for (Row& r : rows) r.result = sim::run_simulation(*r.policy, *workload);

  std::printf("%-28s %14s %14s %12s %10s\n", "policy", "cost/interval",
              "mean over run", "rejected GB", "seconds");
  for (const Row& r : rows) {
    std::printf("%-28s %14.1f %14.1f %12.1f %10.2f\n", r.policy->name().c_str(),
                r.result.final_cost_per_interval, r.result.mean_cost_per_interval,
                r.result.rejected_volume, r.result.wall_seconds);
  }

  if (!opts.csv_path.empty()) {
    std::ofstream out(opts.csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", opts.csv_path.c_str());
      return 1;
    }
    sim::write_cost_series_csv(
        out, {"postcard", "greedy", "flow_based"},
        {&rows[0].result, &rows[1].result, &rows[2].result});
    std::printf("\nper-slot trajectories written to %s\n", opts.csv_path.c_str());
  }
  return 0;
}
