// Online controller: the event-driven runtime around PostcardController.
//
// The offline examples replay a fixed workload batch-by-batch. This one
// runs the src/runtime engine the way an operator would: producer threads
// submit transfer requests through the admission-controlled ingress while
// the driver ticks 5-minute slots, and halfway through the day a link
// fails — the runtime rolls back the dead link's committed (but not yet
// executed) transfers and replans the stranded volume over the surviving
// paths, failing loudly only when no deadline-respecting detour exists.
//
// Build & run:  cmake --build build && ./build/examples/online_controller
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/runtime.h"

using namespace postcard;

int main() {
  // Six datacenters, complete graph, 100 GB per 5-minute slot per link,
  // unit costs 1..10 (the Fig. 4 shape at reduced scale).
  net::Topology topology =
      net::Topology::complete(6, 100.0, [](int i, int j) {
        return 1.0 + static_cast<double>((3 * i + 5 * j) % 10);
      });

  runtime::RuntimeOptions options;
  options.worker_threads = 4;   // LP solves run on a pool of 4 workers
  options.parallel_groups = 2;  // split each slot batch into 2 group solves
  runtime::ControllerRuntime engine{std::move(topology), options};
  engine.add_postcard_backend();

  // Two producer threads submit 40 requests each, release slots spread over
  // the first 16 slots. The ingress rejects structurally hopeless requests
  // (bad endpoints, volume beyond any deadline-feasible capacity) up front.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&engine, p] {
      for (int i = 0; i < 40; ++i) {
        const int id = 100 * p + i;
        net::FileRequest f;
        f.id = id;
        f.source = id % 6;
        f.destination = (id + 1 + i % 4) % 6;
        if (f.destination == f.source) f.destination = (f.source + 1) % 6;
        f.size = 20.0 + (id % 60);
        f.max_transfer_slots = 1 + id % 3;
        f.release_slot = i % 16;
        engine.ingress().submit(f);
      }
    });
  }
  for (auto& p : producers) p.join();

  // Inject a failure: link 9 dies at slot 8 and comes back at slot 12. The
  // runtime rolls back its committed-but-unexecuted transfers, replans the
  // stranded volume over surviving paths, and books whatever cannot make
  // its deadline anymore as a loud failure.
  engine.fail_link(8, 9);
  engine.restore_link(12, 9);

  engine.run(20);

  const runtime::RuntimeStats stats = engine.stats();
  const runtime::BackendStats& b = stats.backends[0];
  std::printf("submitted            %ld\n", stats.submitted);
  std::printf("admitted             %ld  (ingress rejected %ld)\n",
              stats.admitted, stats.ingress_rejected);
  std::printf("accepted by solver   %ld  (rejected %ld)\n", b.accepted_files,
              b.rejected_files);
  std::printf("delivered volume     %.1f GB\n", b.delivered_volume);
  std::printf("link-down replans    %ld  (%.1f GB rerouted)\n", b.replans,
              b.replanned_volume);
  std::printf("failed after replan  %ld files, %.1f GB\n", b.failed_files,
              b.failed_volume);
  std::printf("mean cost/interval   %.2f\n",
              b.cost_series.empty()
                  ? 0.0
                  : [&] {
                      double s = 0.0;
                      for (double c : b.cost_series) s += c;
                      return s / static_cast<double>(b.cost_series.size());
                    }());
  std::printf("p99 slot latency     %.2f ms over %d slots\n",
              1e3 * stats.slot_latency.quantile(0.99), stats.slots_processed);
  return 0;
}
