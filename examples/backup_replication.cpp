// Cross-region backup replication under a diurnal load curve.
//
// The scenario the paper's introduction motivates: nightly backups and bulk
// update propagation are delay-tolerant (hours of slack), and inter-DC
// traffic has a strong diurnal pattern, so the already-paid peak volume of
// the busy hours can carry the backup traffic of the quiet hours for free.
//
// This example replays the same diurnal workload against the Postcard
// controller and the flow-based baseline and prints the cost trajectories.
#include <cstdio>

#include "core/postcard.h"
#include "flow/baseline.h"
#include "sim/simulator.h"

using namespace postcard;

int main() {
  sim::WorkloadParams params;
  params.num_datacenters = 6;
  params.link_capacity = 40.0;  // GB per 5-minute interval
  params.cost_min = 1.0;
  params.cost_max = 10.0;
  params.files_per_slot_min = 2;
  params.files_per_slot_max = 6;
  params.size_min = 5.0;
  params.size_max = 30.0;
  params.deadline_min = 2;   // backups tolerate hours of delay
  params.deadline_max = 6;
  params.num_slots = 24;     // one simulated "day"
  params.seed = 2026;

  const sim::DiurnalWorkload workload(params, /*period_slots=*/24,
                                      /*trough_factor=*/0.25);

  core::PostcardController postcard{net::Topology(workload.topology())};
  flow::FlowBaseline baseline{net::Topology(workload.topology())};

  const sim::RunResult pr = sim::run_simulation(postcard, workload);
  const sim::RunResult fr = sim::run_simulation(baseline, workload);

  std::puts("slot | postcard cost/interval | flow-based cost/interval");
  for (std::size_t s = 0; s < pr.cost_series.size(); ++s) {
    std::printf("%4zu | %22.1f | %24.1f\n", s, pr.cost_series[s],
                fr.cost_series[s]);
  }
  std::printf("\nfinal cost per interval: postcard %.1f vs flow-based %.1f\n",
              pr.final_cost_per_interval, fr.final_cost_per_interval);
  std::printf("offered volume %.1f GB, rejected: postcard %.1f GB, flow %.1f GB\n",
              pr.total_volume, pr.rejected_volume, fr.rejected_volume);
  std::printf("solver effort: postcard %ld LP iterations, flow %ld\n",
              pr.lp_iterations, fr.lp_iterations);
  return 0;
}
