// Sec. VI extensions: free bulk backhaul and budget-constrained transfers.
//
// After the day's interactive traffic has set the charged volumes X_ij, the
// provider can move bulk data (dataset snapshots, ML training corpora) for
// free as long as every slot stays below the already-paid volume — the
// NetStitcher-style problem, here with multiple files and heterogeneous
// deadlines. A second planner answers "how much can we move under a strict
// cost budget?" for traffic that does not fit the free headroom.
#include <cstdio>

#include "core/extensions.h"

using namespace postcard;

int main() {
  // A small US-EU-Asia triangle; the transatlantic link is expensive.
  net::Topology topology(3);
  topology.set_link(0, 1, 200.0, 8.0);  // US -> EU
  topology.set_link(1, 0, 200.0, 8.0);
  topology.set_link(0, 2, 200.0, 3.0);  // US -> Asia
  topology.set_link(2, 0, 200.0, 3.0);
  topology.set_link(2, 1, 200.0, 4.0);  // Asia -> EU
  topology.set_link(1, 2, 200.0, 4.0);

  // Daytime traffic already charged these per-slot maxima.
  charging::ChargeState charge(topology.num_links());
  charge.commit(topology.link_index(0, 1), 0, 60.0);  // US->EU paid to 60
  charge.commit(topology.link_index(0, 2), 0, 40.0);  // US->Asia paid to 40
  charge.commit(topology.link_index(2, 1), 0, 40.0);  // Asia->EU paid to 40
  std::printf("existing cost per interval: %.1f\n\n",
              charge.cost_per_interval(topology));

  // Overnight bulk jobs, released at slot 1.
  const std::vector<net::FileRequest> bulk = {
      {1, 0, 1, 800.0, 6, 1},  // 800 GB US -> EU within 6 slots
      {2, 0, 2, 400.0, 4, 1},  // 400 GB US -> Asia within 4 slots
  };

  const core::ExtensionResult free_plan =
      core::maximize_bulk_transfer(topology, charge, 1, bulk);
  std::printf("free backhaul (only already-paid capacity):\n");
  std::printf("  delivered %.1f of %.1f GB at zero extra cost\n",
              free_plan.delivered_total, 800.0 + 400.0);
  for (std::size_t k = 0; k < bulk.size(); ++k) {
    std::printf("  file %d: %.1f / %.1f GB\n", bulk[k].id,
                free_plan.delivered[k], bulk[k].size);
  }

  // The remainder needs new charges; see what a budget buys. The budget is
  // on the post-transfer cost per interval (the current cost is 760).
  for (const double budget : {800.0, 1000.0, 1400.0}) {
    const core::ExtensionResult plan =
        core::maximize_with_budget(topology, charge, 1, bulk, budget);
    std::printf(
        "budget %.0f per interval: deliver %.1f GB (cost becomes %.1f)\n",
        budget, plan.delivered_total, plan.cost_per_interval);
  }
  return 0;
}
