// Warm standby for examples/postcard_server: follows a primary started
// with --repl-listen, mirrors every committed slot by deterministic
// replay, and — when the primary goes silent — promotes itself to a
// serving PostcardServer holding the exact state the primary committed
// (DESIGN.md §14).
//
//   ./build/examples/postcard_standby --primary-repl-port P
//                                     [--primary-host H] [--serve-port P]
//                                     [--snapshot FILE]
//
// Run a pair in two terminals:
//
//   ./build/examples/postcard_server  --repl-listen 7100
//   ./build/examples/postcard_standby --primary-repl-port 7100
//
// then kill -9 the server: within a heartbeat timeout the standby prints
// the port it now serves on, and postcard_client keeps working against
// it (resubmitted in-flight files are deduplicated, not double-counted).
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "replication/standby.h"

using namespace postcard;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  replication::StandbyOptions options;
  options.primary_port = 0;
  options.promoted_snapshot_path = "postcard_standby.psnp";
  // The mirror must replay deterministically or its fingerprints would
  // diverge from the primary's on every slot.
  options.runtime.worker_threads = 0;
  options.runtime.parallel_groups = 1;
  options.runtime.dedup_submissions = true;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--primary-repl-port") == 0) {
      options.primary_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--primary-host") == 0) {
      options.primary_host = argv[i + 1];
    } else if (std::strcmp(argv[i], "--serve-port") == 0) {
      options.serve_port = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      options.promoted_snapshot_path = argv[i + 1];
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (options.primary_port <= 0) {
    std::fprintf(stderr, "usage: postcard_standby --primary-repl-port P "
                         "[--primary-host H] [--serve-port P] "
                         "[--snapshot FILE]\n");
    return 2;
  }

  // Must match the topology examples/postcard_server builds: the mirror
  // replays the primary's events against the same network.
  net::Topology topology = net::Topology::complete(
      6, 100.0,
      [](int i, int j) { return 1.0 + static_cast<double>((3 * i + 5 * j) % 10); });

  replication::ReplicationStandby standby(
      std::move(topology), {replication::BackendSpec::make_postcard()},
      options);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  standby.start();
  std::printf("postcard_standby following %s:%d\n",
              options.primary_host.c_str(), options.primary_port);
  std::fflush(stdout);

  bool announced = false;
  while (!g_stop && !standby.failed()) {
    if (standby.promoted() && !announced) {
      std::printf("primary lost — promoted, serving on port %d\n",
                  standby.serve_port());
      std::fflush(stdout);
      announced = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const replication::StandbyStats stats = standby.stats();
  standby.stop();
  if (standby.failed() && !announced) {
    std::fprintf(stderr, "standby failed before it was ever seeded — "
                         "NOT serving (an empty mirror would be data "
                         "loss)\n");
    return 1;
  }
  std::printf("standby exiting: %ld snapshots, %ld events, %ld commits "
              "(last slot %d), %ld reseeds\n",
              stats.snapshots_applied, stats.events_applied,
              stats.commits_applied, stats.last_commit_slot,
              stats.reseeds_sent);
  return 0;
}
