// Command-line client for a running postcard_server.
//
//   ./build/examples/postcard_client --port P submit SRC DST SIZE DEADLINE
//   ./build/examples/postcard_client --port P advance [SLOTS]
//   ./build/examples/postcard_client --port P plan BACKEND FILE_ID
//   ./build/examples/postcard_client --port P snapshot [PATH]
//   ./build/examples/postcard_client --port P --metrics-dump
//   ./build/examples/postcard_client --port P shutdown
//
// --metrics-dump prints the full RuntimeStats/BackendStats surface in the
// Prometheus-style text format of src/server/metrics.h — audit counters,
// degradation-rung tallies, warm-accept rates, per-session accounting —
// ready for a scraper or a diff. Every other verb is one protocol
// round-trip; admission rejections print the Backpressure reason and exit
// nonzero so shell scripts can branch on them.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unistd.h>

#include "server/client.h"
#include "server/metrics.h"

using namespace postcard;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: postcard_client [--host H] --port P <verb>\n"
               "  submit SRC DST SIZE DEADLINE   one file (id auto)\n"
               "  advance [SLOTS]                tick the slot clock\n"
               "  plan BACKEND FILE_ID           committed in-flight plan\n"
               "  snapshot [PATH]                write a snapshot now\n"
               "  --metrics-dump                 full metrics text dump\n"
               "  shutdown                       graceful drain\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  int i = 1;
  for (; i + 1 < argc && argv[i][0] == '-'; i += 2) {
    if (std::strcmp(argv[i], "--host") == 0) {
      host = argv[i + 1];
    } else if (std::strcmp(argv[i], "--port") == 0) {
      port = std::atoi(argv[i + 1]);
    } else {
      break;  // the verb (e.g. --metrics-dump) starts here
    }
  }
  if (port <= 0 || i >= argc) return usage();
  const std::string verb = argv[i];

  try {
    server::PostcardClient client(host, port);

    if (verb == "--metrics-dump") {
      std::fputs(server::format_metrics(client.query_stats()).c_str(), stdout);
      return 0;
    }
    if (verb == "submit") {
      if (i + 4 >= argc) return usage();
      net::FileRequest f;
      // Ids only need to be unique per client invocation; the server's
      // ingress rejects duplicates, so derive one from the pid.
      f.id = static_cast<int>(::getpid() % 100000) * 100 + (i % 100);
      f.source = std::atoi(argv[i + 1]);
      f.destination = std::atoi(argv[i + 2]);
      f.size = std::atof(argv[i + 3]);
      f.max_transfer_slots = std::atoi(argv[i + 4]);
      const server::SubmitVerdict v = client.submit_file(f);
      if (!v.admitted) {
        std::printf("backpressure: %s\n", v.reason.c_str());
        return 1;
      }
      std::printf("admitted file %d into slot %d\n", f.id, v.slot);
      return 0;
    }
    if (verb == "advance") {
      const int slots = (i + 1 < argc) ? std::atoi(argv[i + 1]) : 1;
      std::printf("current slot: %d\n", client.advance(slots));
      return 0;
    }
    if (verb == "plan") {
      if (i + 2 >= argc) return usage();
      const server::PlanReply r =
          client.query_plan(std::atoi(argv[i + 1]), std::atoi(argv[i + 2]));
      if (!r.found) {
        std::printf("no in-flight plan\n");
        return 1;
      }
      const int first_slot =
          r.plan.transfers.empty() ? -1 : r.plan.transfers.front().slot;
      std::printf("file %d (%.1f GB): %zu transfers, first slot %d\n",
                  r.request.id, r.request.size, r.plan.transfers.size(),
                  first_slot);
      return 0;
    }
    if (verb == "snapshot") {
      const std::string path = (i + 1 < argc) ? argv[i + 1] : "";
      std::printf("snapshot written to %s\n", client.snapshot(path).c_str());
      return 0;
    }
    if (verb == "shutdown") {
      client.shutdown();
      std::printf("server drained and stopped\n");
      return 0;
    }
    return usage();
  } catch (const server::WireError& e) {
    std::fprintf(stderr, "protocol error: %s\n", e.what());
    return 1;
  }
}
