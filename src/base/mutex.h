// Annotated mutex wrappers for Clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability attributes,
// so code using them directly cannot be checked by -Wthread-safety even
// with GUARDED_BY members. These thin wrappers add the attributes and
// nothing else: base::Mutex is a std::mutex declared as a capability,
// base::MutexLock is a scoped lock the analysis can follow. Code that must
// interoperate with std APIs (condition-variable waits) reaches the
// underlying std::mutex through native(), inside a function explicitly
// opted out of the analysis (NO_THREAD_SAFETY_ANALYSIS) — TSAN still
// checks those paths at runtime.
#pragma once

#include <mutex>

#include "base/thread_annotations.h"

namespace postcard::base {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable waits. Callers
  /// manage the capability state themselves (NO_THREAD_SAFETY_ANALYSIS).
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard equivalent the analysis understands.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace postcard::base
