#include "base/worker_pool.h"

namespace postcard::base {

WorkerPool::WorkerPool(int num_threads) {
  if (num_threads < 0) num_threads = 0;
  threads_.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    base::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::future<void> WorkerPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (threads_.empty()) {
    packaged();  // inline mode: run now, on the caller
    return future;
  }
  {
    base::MutexLock lock(mu_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void WorkerPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (auto& task : tasks) futures.push_back(submit(std::move(task)));
  for (auto& f : futures) f.get();
}

void WorkerPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_.native());
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace postcard::base
