// Fixed-size worker pool shared by the runtime dispatcher and the LP
// pricing layer.
//
// The owner creates the pool once and reuses it for every slot; tasks are
// independent units (per-policy LP solves, per-batch-group solves, pricing
// shards), so the pool needs nothing fancier than a locked queue and a
// condition variable. A pool with zero threads runs every task inline on
// the caller in submission order — the deterministic single-threaded mode.
//
// Lives in src/base (not src/runtime) so layers below the runtime — in
// particular src/core's column-generation pricing — can depend on it
// without a circular library edge.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <queue>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"

namespace postcard::base {

class WorkerPool {
 public:
  /// `num_threads` == 0 builds an inline pool: submit() and run_all()
  /// execute on the calling thread.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Schedules `task`; the future resolves when it has run (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task) EXCLUDES(mu_);

  /// Runs every task and blocks until all have finished. Inline pools
  /// execute them sequentially in index order.
  void run_all(std::vector<std::function<void()>> tasks);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  /// Opted out of the capability analysis: the condition-variable wait
  /// needs the raw std::mutex (Mutex::native()), whose lock/unlock clang
  /// cannot follow. TSAN covers this loop at runtime.
  void worker_loop() NO_THREAD_SAFETY_ANALYSIS;

  base::Mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace postcard::base
