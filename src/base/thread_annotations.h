// Portable Clang thread-safety-analysis macros.
//
// Lock contracts that used to live in comments ("guards the capacity
// view", "caller holds stats_mu_") become attributes the compiler checks:
// building with clang and -Wthread-safety -Werror (the `tidy` preset)
// turns every lock-discipline regression into a build failure. Under GCC
// (which has no such analysis) every macro expands to nothing, so the
// annotations cost nothing in the default build; TSAN remains the runtime
// detector for the patterns static analysis cannot see.
//
// The macro set follows the standard Clang vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Annotate with
// the *capability* forms: GUARDED_BY on data, REQUIRES on functions that
// expect the caller to hold the lock, EXCLUDES on functions that take the
// lock themselves (so holding it on entry would deadlock).
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside clang
#endif

#define CAPABILITY(x) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define RETURN_CAPABILITY(x) POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  POSTCARD_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
