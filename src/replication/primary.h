// ReplicationPrimary: streams a PostcardServer's committed event log to a
// standby (DESIGN.md §14).
//
// Wiring (all installed by attach(), before the server starts):
//
//   EventQueue push tap ──► bounded buffer (own leaf mutex, never the
//                           queue's) — every push, in seq order
//   post-tick hook      ──► on the driver thread at each slot commit:
//                           seed (snapshot) if needed, flush buffered
//                           events, send ReplCommit{slot, fingerprint}
//   heartbeat thread    ──► ReplHeartbeat between commits; also flushes
//                           buffered arrivals so a slow slot clock does
//                           not grow the buffer unboundedly
//   io thread           ──► accepts the standby, reads Hello/Ack/Reseed
//
// Lock order: mu_ (connection + send serialization) before buf_mu_ (tap
// buffer) before the queue's internal lock — the tap runs under the queue
// lock and takes only buf_mu_, so no cycle exists. Sends hold mu_ for
// their duration, bounded by send_timeout_ms; only the io thread closes
// fds, so a send never races a close.
//
// Failure policy: any send error or timeout DROPS the standby (it will
// reconnect and be reseeded from a fresh snapshot) — the primary never
// blocks its slot clock on a sick replica beyond the send timeout.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "replication/repl_protocol.h"
#include "server/server.h"

namespace postcard::replication {

struct PrimaryOptions {
  std::string host = "127.0.0.1";
  int port = 0;  // 0: ephemeral; bound port is port() after start()
  /// Bound on any single send to the standby; expiry drops it.
  int send_timeout_ms = 5000;
  /// Heartbeat (and between-commit event flush) period.
  int heartbeat_every_ms = 200;
  /// Tap-buffer cap. Overflow (a standby stalled across this many pushes)
  /// drops the connection for a reseed instead of buffering unboundedly.
  std::size_t buffer_cap = std::size_t{1} << 16;
  std::size_t max_frame_bytes = kReplMaxFrameBytes;
  /// Test hook: shrink the standby socket's send buffer to force
  /// WireTimeout on a non-draining peer (0 = leave the default).
  int sndbuf_bytes = 0;
};

struct PrimaryStats {
  long snapshots_shipped = 0;
  long events_shipped = 0;
  long commits_shipped = 0;
  long heartbeats_sent = 0;
  long standbys_accepted = 0;
  long standbys_dropped = 0;       // send/read errors
  long standbys_dropped_slow = 0;  // send timeouts + buffer overflow
  long reseeds_requested = 0;      // standby-reported divergence
  long acks_received = 0;
  int last_acked_slot = -1;
};

class ReplicationPrimary {
 public:
  explicit ReplicationPrimary(PrimaryOptions options);
  ~ReplicationPrimary();

  ReplicationPrimary(const ReplicationPrimary&) = delete;
  ReplicationPrimary& operator=(const ReplicationPrimary&) = delete;

  /// Installs the queue tap and post-tick hook on `server`. Must run
  /// before server.start() (and before any submission exists).
  void attach(server::PostcardServer& server);

  /// Binds the replication listener and spawns the io + heartbeat
  /// threads. Call after attach(), before or after server.start().
  void start();

  /// Graceful stop: detaches nothing on the server side (the hook checks
  /// a flag), closes the listener and connection, joins threads.
  void stop();

  /// Chaos hook: emulates the process dying mid-stream — stops shipping
  /// instantly and severs the connection WITHOUT any protocol goodbye.
  /// The standby sees a hard EOF exactly as it would after SIGKILL.
  void kill_abruptly();

  int port() const { return port_; }
  bool standby_connected() const;
  PrimaryStats stats() const;

 private:
  void io_loop();
  void heartbeat_loop();
  /// Driver-thread hook: seed/flush/commit for `slot`.
  void on_slot_committed(int slot);
  /// Sends buffered events past the watermark; returns false (and drops
  /// the standby) on error. Caller holds mu_.
  bool flush_events_locked() REQUIRES(mu_);
  /// Marks the connection for close by the io thread. Caller holds mu_.
  void drop_standby_locked(bool slow) REQUIRES(mu_);

  PrimaryOptions options_;
  server::PostcardServer* server_ = nullptr;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> killed_{false};
  std::thread io_thread_;
  std::thread heartbeat_thread_;

  mutable base::Mutex mu_;
  int conn_fd_ GUARDED_BY(mu_) = -1;
  bool conn_failed_ GUARDED_BY(mu_) = false;  // io thread closes it
  bool needs_seed_ GUARDED_BY(mu_) = true;
  std::uint64_t watermark_ GUARDED_BY(mu_) = 0;
  PrimaryStats stats_ GUARDED_BY(mu_);

  mutable base::Mutex buf_mu_;  // leaf lock; taken under the queue lock
  std::vector<runtime::Event> buffer_ GUARDED_BY(buf_mu_);
  bool overflowed_ GUARDED_BY(buf_mu_) = false;
};

}  // namespace postcard::replication
