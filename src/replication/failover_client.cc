#include "replication/failover_client.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

namespace postcard::replication {

using server::PostcardClient;
using server::WireError;

FailoverClient::FailoverClient(FailoverClientOptions options)
    : options_(std::move(options)), rng_(options_.jitter_seed) {
  if (options_.endpoints.empty()) {
    throw std::invalid_argument("FailoverClient needs at least one endpoint");
  }
}

PostcardClient& FailoverClient::ensure_client() {
  if (client_ == nullptr) {
    const FailoverEndpoint& ep =
        options_.endpoints[static_cast<std::size_t>(active_)];
    client_ = std::make_unique<PostcardClient>(
        ep.host, ep.port, options_.max_frame_bytes, options_.io_timeout_ms);
  }
  return *client_;
}

void FailoverClient::on_failure() {
  client_.reset();
  failovers_++;
  consecutive_failures_++;
  active_ = (active_ + 1) % static_cast<int>(options_.endpoints.size());
  const int shift = std::min(consecutive_failures_ - 1, 10);
  const int base =
      std::min(options_.backoff_max_ms, options_.backoff_base_ms << shift);
  const int jitter =
      static_cast<int>(rng_() % static_cast<unsigned>(base / 2 + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(base + jitter));
}

template <typename Op>
auto FailoverClient::with_retry(Op&& op)
    -> decltype(op(*static_cast<PostcardClient*>(nullptr))) {
  for (int attempt = 0;; ++attempt) {
    try {
      auto result = op(ensure_client());
      consecutive_failures_ = 0;
      return result;
    } catch (const WireError&) {
      if (attempt + 1 >= options_.max_attempts) throw;
      on_failure();
    }
  }
}

server::SubmitVerdict FailoverClient::submit_file(const net::FileRequest& file) {
  return with_retry(
      [&](PostcardClient& c) { return c.submit_file(file); });
}

std::vector<server::SubmitVerdict> FailoverClient::submit_batch(
    const std::vector<net::FileRequest>& files) {
  return with_retry(
      [&](PostcardClient& c) { return c.submit_batch(files); });
}

server::PlanReply FailoverClient::query_plan(int backend, int file_id) {
  return with_retry(
      [&](PostcardClient& c) { return c.query_plan(backend, file_id); });
}

runtime::RuntimeStats FailoverClient::query_stats() {
  return with_retry([&](PostcardClient& c) { return c.query_stats(); });
}

int FailoverClient::advance_to(int target_slot) {
  int attempt = 0;
  while (true) {
    // Re-reading the clock after every failure is what makes this
    // idempotent: we only ever request the REMAINING delta, so ticks that
    // landed before a lost reply are never re-applied.
    const int cur = with_retry(
        [&](PostcardClient& c) { return c.query_stats().slots_processed; });
    if (cur >= target_slot) return cur;
    try {
      ensure_client().advance(target_slot - cur);
    } catch (const WireError&) {
      if (++attempt >= options_.max_attempts) throw;
      on_failure();
    }
  }
}

}  // namespace postcard::replication
