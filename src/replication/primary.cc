#include "replication/primary.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <iostream>

#include "server/snapshot.h"

namespace postcard::replication {

using server::Frame;
using server::MessageType;
using server::WireError;
using server::WireTimeout;

ReplicationPrimary::ReplicationPrimary(PrimaryOptions options)
    : options_(std::move(options)) {}

ReplicationPrimary::~ReplicationPrimary() { stop(); }

void ReplicationPrimary::attach(server::PostcardServer& server) {
  server_ = &server;
  // The tap runs under the queue lock and takes only buf_mu_ (leaf lock) —
  // see the lock-order note in the header. SlotTicks are filtered out
  // here: the standby replays the tick itself on ReplCommit, so shipping
  // them would double-tick the mirror.
  server.runtime().events().set_push_tap([this](const runtime::Event& e) {
    if (std::holds_alternative<runtime::SlotTick>(e.payload)) return;
    base::MutexLock lock(buf_mu_);
    if (overflowed_) return;
    if (buffer_.size() >= options_.buffer_cap) {
      overflowed_ = true;
      return;
    }
    buffer_.push_back(e);
  });
  server.set_post_tick_hook([this](int slot) { on_slot_committed(slot); });
}

void ReplicationPrimary::start() {
  if (server_ == nullptr) {
    throw WireError("ReplicationPrimary::start() before attach()");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw WireError("replication socket() failed: errno " +
                    std::to_string(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("invalid replication listen address " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("replication bind failed: errno " + std::to_string(err));
  }
  if (::listen(listen_fd_, 4) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw WireError("replication listen failed: errno " + std::to_string(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { io_loop(); });
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

void ReplicationPrimary::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  {
    base::MutexLock lock(mu_);
    if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (io_thread_.joinable()) io_thread_.join();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  {
    base::MutexLock lock(mu_);
    if (conn_fd_ >= 0) {
      ::close(conn_fd_);
      conn_fd_ = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ReplicationPrimary::kill_abruptly() {
  // Emulates SIGKILL from the standby's point of view: no final frames,
  // no goodbye — the TCP stream just dies. The hook and heartbeat stop
  // shipping instantly; fds close later in stop().
  killed_.store(true, std::memory_order_release);
  base::MutexLock lock(mu_);
  if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

bool ReplicationPrimary::standby_connected() const {
  base::MutexLock lock(mu_);
  return conn_fd_ >= 0 && !conn_failed_;
}

PrimaryStats ReplicationPrimary::stats() const {
  base::MutexLock lock(mu_);
  return stats_;
}

void ReplicationPrimary::drop_standby_locked(bool slow) {
  if (conn_fd_ < 0 || conn_failed_) return;
  conn_failed_ = true;
  if (slow) {
    stats_.standbys_dropped_slow++;
  } else {
    stats_.standbys_dropped++;
  }
  needs_seed_ = true;
  // Wake the io thread (it owns the close) and give the standby a hard
  // EOF so it starts its reconnect clock immediately.
  ::shutdown(conn_fd_, SHUT_RDWR);
}

bool ReplicationPrimary::flush_events_locked() {
  std::vector<runtime::Event> batch;
  bool overflow = false;
  {
    base::MutexLock lock(buf_mu_);
    batch.swap(buffer_);
    overflow = overflowed_;
    overflowed_ = false;
  }
  if (overflow) {
    // The standby missed pushes; nothing we still hold can catch it up.
    drop_standby_locked(/*slow=*/true);
    return false;
  }
  // Pushes below the watermark are already inside the shipped snapshot
  // (or drained into it); shipping them again would double-apply.
  const std::uint64_t wm = watermark_;
  batch.erase(std::remove_if(
                  batch.begin(), batch.end(),
                  [wm](const runtime::Event& e) { return e.seq < wm; }),
              batch.end());
  if (batch.empty()) return true;
  ReplEvents msg;
  msg.events = std::move(batch);
  try {
    server::write_frame(conn_fd_, MessageType::kReplEvents, msg.encode(),
                        options_.send_timeout_ms);
  } catch (const WireTimeout&) {
    drop_standby_locked(/*slow=*/true);
    return false;
  } catch (const WireError&) {
    drop_standby_locked(/*slow=*/false);
    return false;
  }
  stats_.events_shipped += static_cast<long>(msg.events.size());
  return true;
}

void ReplicationPrimary::on_slot_committed(int slot) {
  if (!running_.load(std::memory_order_acquire) ||
      killed_.load(std::memory_order_acquire)) {
    return;
  }
  // Fingerprint before taking mu_: stats() is thread-safe and the state it
  // reads was committed by this very thread's tick.
  const std::uint64_t fp = runtime_fingerprint(server_->runtime().stats());
  base::MutexLock lock(mu_);
  if (conn_fd_ < 0 || conn_failed_) {
    base::MutexLock buf_lock(buf_mu_);
    buffer_.clear();
    overflowed_ = false;
    return;
  }
  if (needs_seed_) {
    runtime::RuntimeSnapshot snap;
    try {
      snap = server_->runtime().capture_snapshot();
    } catch (const std::exception& e) {
      std::cerr << "replication: snapshot capture failed: " << e.what()
                << "\n";
      drop_standby_locked(/*slow=*/false);
      return;
    }
    watermark_ = snap.event_seq_watermark;
    ReplSnapshot seed;
    seed.image = server::encode_snapshot(snap);
    try {
      server::write_frame(conn_fd_, MessageType::kReplSnapshot, seed.encode(),
                          options_.send_timeout_ms);
    } catch (const WireTimeout&) {
      drop_standby_locked(/*slow=*/true);
      return;
    } catch (const WireError&) {
      drop_standby_locked(/*slow=*/false);
      return;
    }
    needs_seed_ = false;
    stats_.snapshots_shipped++;
  }
  if (!flush_events_locked()) return;
  ReplCommit commit;
  commit.slot = slot;
  commit.fingerprint = fp;
  try {
    server::write_frame(conn_fd_, MessageType::kReplCommit, commit.encode(),
                        options_.send_timeout_ms);
  } catch (const WireTimeout&) {
    drop_standby_locked(/*slow=*/true);
    return;
  } catch (const WireError&) {
    drop_standby_locked(/*slow=*/false);
    return;
  }
  stats_.commits_shipped++;
}

void ReplicationPrimary::heartbeat_loop() {
  using Clock = std::chrono::steady_clock;
  Clock::time_point next = Clock::now();
  while (running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    if (Clock::now() < next) continue;
    next = Clock::now() + std::chrono::milliseconds(options_.heartbeat_every_ms);
    if (killed_.load(std::memory_order_acquire)) continue;
    // slots_processed is read under the runtime's stats lock — safe from
    // this thread, unlike current_slot().
    const int next_slot = server_->runtime().stats().slots_processed;
    base::MutexLock lock(mu_);
    if (conn_fd_ < 0 || conn_failed_) {
      base::MutexLock buf_lock(buf_mu_);
      buffer_.clear();
      overflowed_ = false;
      continue;
    }
    // While a seed is pending, ship ONLY the heartbeat: any event sent now
    // would also appear in the upcoming snapshot's pending set and be
    // applied twice by the standby.
    if (!needs_seed_) {
      if (!flush_events_locked()) continue;
    }
    ReplHeartbeat hb;
    hb.next_slot = next_slot;
    try {
      server::write_frame(conn_fd_, MessageType::kReplHeartbeat, hb.encode(),
                          options_.send_timeout_ms);
    } catch (const WireTimeout&) {
      drop_standby_locked(/*slow=*/true);
      continue;
    } catch (const WireError&) {
      drop_standby_locked(/*slow=*/false);
      continue;
    }
    stats_.heartbeats_sent++;
  }
}

void ReplicationPrimary::io_loop() {
  while (running_.load(std::memory_order_acquire)) {
    int conn = -1;
    {
      base::MutexLock lock(mu_);
      if (conn_fd_ >= 0 && conn_failed_) {
        ::close(conn_fd_);
        conn_fd_ = -1;
        conn_failed_ = false;
      }
      conn = conn_fd_;
    }

    struct pollfd pfds[2];
    pfds[0].fd = listen_fd_;
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = conn;
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    const int n = ::poll(pfds, conn >= 0 ? 2 : 1, 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (n == 0) continue;

    if (pfds[0].revents != 0 && !killed_.load(std::memory_order_acquire)) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        // A short SO_SNDTIMEO makes blocking sends surface EAGAIN, which
        // write_all() converts into its poll()-based deadline loop.
        struct timeval tv;
        tv.tv_sec = 0;
        tv.tv_usec = 100 * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        if (options_.sndbuf_bytes > 0) {
          ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf_bytes,
                       sizeof(options_.sndbuf_bytes));
        }
        base::MutexLock lock(mu_);
        if (conn_fd_ >= 0) {
          ::close(conn_fd_);
          stats_.standbys_dropped++;
        }
        conn_fd_ = fd;
        conn_failed_ = false;
        needs_seed_ = true;
        stats_.standbys_accepted++;
      }
    }

    if (conn >= 0 && pfds[1].revents != 0) {
      // This thread is the only closer of conn fds, so reading from the
      // unlocked copy is safe; sends (under mu_) may run concurrently,
      // which sockets permit.
      bool drop = false;
      try {
        Frame frame;
        if (!server::read_frame(conn, &frame, options_.max_frame_bytes)) {
          drop = true;  // standby went away
        } else {
          switch (frame.type) {
            case MessageType::kReplHello: {
              ReplHello::decode(frame.payload);
              base::MutexLock lock(mu_);
              needs_seed_ = true;
              break;
            }
            case MessageType::kReplAck: {
              const ReplAck ack = ReplAck::decode(frame.payload);
              base::MutexLock lock(mu_);
              stats_.acks_received++;
              stats_.last_acked_slot =
                  std::max(stats_.last_acked_slot, ack.slot);
              break;
            }
            case MessageType::kReplReseed: {
              const ReplReseed req = ReplReseed::decode(frame.payload);
              std::cerr << "replication: standby requested reseed: "
                        << req.reason << "\n";
              base::MutexLock lock(mu_);
              needs_seed_ = true;
              stats_.reseeds_requested++;
              break;
            }
            default:
              drop = true;  // protocol violation on the repl channel
          }
        }
      } catch (const WireError&) {
        drop = true;
      }
      if (drop) {
        base::MutexLock lock(mu_);
        if (conn_fd_ == conn) drop_standby_locked(/*slow=*/false);
      }
    }
  }
}

}  // namespace postcard::replication
