// Replication channel messages and the divergence fingerprint.
//
// A primary controller streams its committed event log to a standby over
// the same length-prefixed framing as the client protocol (wire.h), using
// the kRepl* message types (100+). The conversation (DESIGN.md §14):
//
//   standby  -> primary : ReplHello      (introduce; last committed slot)
//   primary  -> standby : ReplSnapshot   (full PSNP image; bootstrap/reseed)
//   primary  -> standby : ReplEvents     (ordered queue pushes since last)
//   primary  -> standby : ReplCommit     (slot tick done + fingerprint)
//   primary  -> standby : ReplHeartbeat  (liveness between commits)
//   standby  -> primary : ReplAck        (applied commit; own fingerprint)
//   standby  -> primary : ReplReseed     (diverged or gapped; ship snapshot)
//
// The fingerprint is FNV-1a 64 (audit/fingerprint.h) over the committed
// cost series and backend counters — exactly the state deterministic
// replay must reproduce. It deliberately EXCLUDES wall-clock timings
// (pricing/master/audit seconds, latency histograms) and ingress counters
// (submissions race the commit boundary on a live primary), so a digest
// mismatch always means real divergence, never timing noise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/stats.h"
#include "server/protocol.h"

namespace postcard::replication {

/// Replication frames carry whole snapshots, which outgrow the client
/// protocol's 16 MB default frame cap on large topologies.
inline constexpr std::size_t kReplMaxFrameBytes = std::size_t{1} << 26;

/// Deterministic digest of driver-committed state. Two runtimes that
/// replayed the same event prefix in deterministic mode produce the same
/// value; any divergence in a cost series, admission outcome, or ladder
/// decision flips it.
std::uint64_t runtime_fingerprint(const runtime::RuntimeStats& s);

struct ReplHello {
  int last_commit_slot = -1;  // -1: never seeded, ship a snapshot first
  std::vector<std::uint8_t> encode() const;
  static ReplHello decode(const std::vector<std::uint8_t>& payload);
};

struct ReplSnapshot {
  std::vector<std::uint8_t> image;  // complete PSNP file bytes (snapshot.h)
  std::vector<std::uint8_t> encode() const;
  static ReplSnapshot decode(const std::vector<std::uint8_t>& payload);
};

struct ReplEvents {
  std::vector<runtime::Event> events;  // primary queue-push order
  std::vector<std::uint8_t> encode() const;
  static ReplEvents decode(const std::vector<std::uint8_t>& payload);
};

struct ReplCommit {
  int slot = 0;                   // slot whose tick just committed
  std::uint64_t fingerprint = 0;  // primary's post-tick digest
  std::vector<std::uint8_t> encode() const;
  static ReplCommit decode(const std::vector<std::uint8_t>& payload);
};

struct ReplHeartbeat {
  int next_slot = 0;  // primary's slot clock, for observability
  std::vector<std::uint8_t> encode() const;
  static ReplHeartbeat decode(const std::vector<std::uint8_t>& payload);
};

struct ReplAck {
  int slot = 0;
  std::uint64_t fingerprint = 0;  // standby's post-replay digest
  std::vector<std::uint8_t> encode() const;
  static ReplAck decode(const std::vector<std::uint8_t>& payload);
};

struct ReplReseed {
  std::string reason;
  std::vector<std::uint8_t> encode() const;
  static ReplReseed decode(const std::vector<std::uint8_t>& payload);
};

}  // namespace postcard::replication
