#include "replication/standby.h"

#include <arpa/inet.h>
#include <cerrno>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <random>
#include <stdexcept>
#include <utility>

#include "server/snapshot.h"

namespace postcard::replication {

using server::Frame;
using server::MessageType;
using server::WireError;
using server::WireTimeout;

namespace {

/// Sleeps in small increments so stop() stays responsive mid-backoff.
template <typename Alive>
void interruptible_sleep_ms(int ms, Alive&& alive) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline = Clock::now() + std::chrono::milliseconds(ms);
  while (alive() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

}  // namespace

ReplicationStandby::ReplicationStandby(net::Topology topology,
                                       std::vector<BackendSpec> backends,
                                       StandbyOptions options)
    : topology_(std::move(topology)),
      backends_(std::move(backends)),
      options_(std::move(options)) {
  if (options_.runtime.worker_threads != 0 ||
      options_.runtime.parallel_groups != 1) {
    // Failover correctness IS replay determinism; a parallel mirror could
    // legitimately produce a different (still valid) cost series and every
    // commit would look diverged.
    throw std::invalid_argument(
        "replication standby requires deterministic runtime options "
        "(worker_threads == 0, parallel_groups == 1)");
  }
  if (backends_.empty()) {
    throw std::invalid_argument("replication standby needs at least one backend");
  }
  // Client retries across the failover must apply exactly once.
  options_.runtime.dedup_submissions = true;
}

ReplicationStandby::~ReplicationStandby() { stop(); }

void ReplicationStandby::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  run_thread_ = std::thread([this] { run(); });
}

void ReplicationStandby::stop() {
  running_.store(false, std::memory_order_release);
  {
    base::MutexLock lock(mu_);
    if (conn_fd_ >= 0) ::shutdown(conn_fd_, SHUT_RDWR);
  }
  if (run_thread_.joinable()) run_thread_.join();
  base::MutexLock lock(mu_);
  if (server_ != nullptr) {
    server_->request_shutdown();
    server_->wait();
  }
}

server::PostcardServer* ReplicationStandby::server() {
  base::MutexLock lock(mu_);
  return server_.get();
}

int ReplicationStandby::serve_port() {
  base::MutexLock lock(mu_);
  return server_ != nullptr ? server_->port() : 0;
}

StandbyStats ReplicationStandby::stats() const {
  base::MutexLock lock(mu_);
  return stats_;
}

bool ReplicationStandby::wait_for_commit(int slot, int timeout_ms) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    {
      base::MutexLock lock(mu_);
      if (stats_.last_commit_slot >= slot) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  base::MutexLock lock(mu_);
  return stats_.last_commit_slot >= slot;
}

bool ReplicationStandby::wait_promoted(int timeout_ms) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!promoted() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return promoted();
}

bool ReplicationStandby::wait_failed(int timeout_ms) const {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!failed() && Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return failed();
}

void ReplicationStandby::corrupt_next_event() {
  corrupt_next_.store(true, std::memory_order_release);
}

int ReplicationStandby::connect_once() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.primary_port));
  if (::inet_pton(AF_INET, options_.primary_host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  // Silence beyond the heartbeat timeout surfaces as WireTimeout from
  // read_frame — the standby's missed-heartbeat detector.
  struct timeval tv;
  tv.tv_sec = options_.heartbeat_timeout_ms / 1000;
  tv.tv_usec = (options_.heartbeat_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

std::unique_ptr<runtime::ControllerRuntime> ReplicationStandby::build_mirror() {
  auto mirror = std::make_unique<runtime::ControllerRuntime>(topology_,
                                                             options_.runtime);
  for (const BackendSpec& spec : backends_) {
    if (spec.kind == BackendSpec::Kind::kPostcard) {
      mirror->add_postcard_backend(spec.postcard);
    } else {
      mirror->add_flow_backend(spec.flow);
    }
  }
  return mirror;
}

void ReplicationStandby::register_backends(server::PostcardServer& srv) const {
  for (const BackendSpec& spec : backends_) {
    if (spec.kind == BackendSpec::Kind::kPostcard) {
      srv.add_postcard_backend(spec.postcard);
    } else {
      srv.add_flow_backend(spec.flow);
    }
  }
}

bool ReplicationStandby::handle_frame(int fd, const Frame& frame) {
  switch (frame.type) {
    case MessageType::kReplSnapshot: {
      const ReplSnapshot seed = ReplSnapshot::decode(frame.payload);
      const runtime::RuntimeSnapshot snap =
          server::decode_snapshot(seed.image);
      // Reseed = rebuild: restore_snapshot only accepts a fresh runtime,
      // and a diverged mirror has nothing worth keeping anyway.
      std::unique_ptr<runtime::ControllerRuntime> mirror = build_mirror();
      mirror->restore_snapshot(snap);
      mirror_ = std::move(mirror);
      base::MutexLock lock(mu_);
      stats_.snapshots_applied++;
      return true;
    }
    case MessageType::kReplEvents: {
      ReplEvents batch = ReplEvents::decode(frame.payload);
      if (mirror_ == nullptr) {
        // Events can only legally follow a snapshot; seeing them first
        // means we missed one — ask for a fresh seed.
        server::write_frame(fd, MessageType::kReplReseed,
                            ReplReseed{"events before snapshot"}.encode());
        base::MutexLock lock(mu_);
        stats_.reseeds_sent++;
        return true;
      }
      for (runtime::Event& e : batch.events) {
        if (std::holds_alternative<runtime::SlotTick>(e.payload)) continue;
        if (auto* arrival = std::get_if<runtime::FileArrival>(&e.payload)) {
          net::FileRequest file = arrival->file;
          if (corrupt_next_.exchange(false, std::memory_order_acq_rel)) {
            file.size += 1.0;  // chaos: one bit of divergence, loudly caught
          }
          mirror_->ingress().replicate_admit(file);
        } else {
          mirror_->events().push(e.slot, e.payload);
        }
      }
      base::MutexLock lock(mu_);
      stats_.events_applied += static_cast<long>(batch.events.size());
      return true;
    }
    case MessageType::kReplCommit: {
      const ReplCommit commit = ReplCommit::decode(frame.payload);
      if (mirror_ == nullptr) {
        server::write_frame(fd, MessageType::kReplReseed,
                            ReplReseed{"commit before snapshot"}.encode());
        base::MutexLock lock(mu_);
        stats_.reseeds_sent++;
        return true;
      }
      const int cur = mirror_->current_slot();
      std::string divergence;
      if (commit.slot > cur) {
        // A commit we never saw the events for — the stream gapped.
        divergence = "commit slot " + std::to_string(commit.slot) +
                     " ahead of mirror slot " + std::to_string(cur);
      } else if (commit.slot == cur) {
        try {
          mirror_->tick();
        } catch (const std::exception& e) {
          // A fail-fast audit abort on replayed events IS divergence.
          divergence = std::string("mirror tick failed: ") + e.what();
        }
      }
      // commit.slot < cur: the seed snapshot already contains this slot's
      // effects; the fingerprint comparison below still validates it.
      std::uint64_t fp = 0;
      if (divergence.empty()) {
        fp = runtime_fingerprint(mirror_->stats());
        if (fp != commit.fingerprint) {
          divergence = "fingerprint mismatch at slot " +
                       std::to_string(commit.slot);
        }
      }
      if (!divergence.empty()) {
        mirror_.reset();  // poisoned; only a fresh seed can recover it
        server::write_frame(fd, MessageType::kReplReseed,
                            ReplReseed{divergence}.encode());
        base::MutexLock lock(mu_);
        stats_.fingerprint_mismatches++;
        stats_.reseeds_sent++;
        return true;
      }
      server::write_frame(fd, MessageType::kReplAck,
                          ReplAck{commit.slot, fp}.encode());
      base::MutexLock lock(mu_);
      stats_.commits_applied++;
      stats_.last_commit_slot = std::max(stats_.last_commit_slot, commit.slot);
      return true;
    }
    case MessageType::kReplHeartbeat: {
      ReplHeartbeat::decode(frame.payload);  // liveness only
      {
        base::MutexLock lock(mu_);
        ++stats_.heartbeats_seen;
      }
      return true;
    }
    default:
      return false;  // protocol violation on the replication channel
  }
}

void ReplicationStandby::run() {
  std::minstd_rand rng(options_.jitter_seed);
  const auto alive = [this] {
    return running_.load(std::memory_order_acquire);
  };
  const auto backoff = [&](int failures) {
    const int shift = std::min(failures > 0 ? failures - 1 : 0, 10);
    const int base = std::min(options_.backoff_max_ms,
                              options_.backoff_base_ms << shift);
    const int jitter =
        static_cast<int>(rng() % static_cast<unsigned>(base / 2 + 1));
    interruptible_sleep_ms(base + jitter, alive);
  };

  int failures = 0;
  while (alive()) {
    const int fd = connect_once();
    if (fd < 0) {
      failures++;
      if (failures > options_.reconnect_attempts) break;
      backoff(failures);
      continue;
    }
    {
      base::MutexLock lock(mu_);
      conn_fd_ = fd;
    }
    bool saw_frame = false;
    try {
      server::write_frame(fd, MessageType::kReplHello,
                          [this] {
                            base::MutexLock lock(mu_);
                            return ReplHello{stats_.last_commit_slot};
                          }()
                              .encode());
      Frame frame;
      while (alive()) {
        if (!server::read_frame(fd, &frame, options_.max_frame_bytes)) {
          break;  // hard EOF: the primary died or dropped us
        }
        saw_frame = true;
        failures = 0;  // consecutive-failure counter: any frame is progress
        if (!handle_frame(fd, frame)) break;
      }
    } catch (const WireTimeout&) {
      // Missed heartbeat window: primary silent (crashed or partitioned).
    } catch (const WireError&) {
      // Torn frame / socket error mid-stream.
    }
    {
      base::MutexLock lock(mu_);
      conn_fd_ = -1;
      if (saw_frame) stats_.reconnects++;
    }
    ::close(fd);
    if (!alive()) return;
    failures++;
    if (failures > options_.reconnect_attempts) break;
    backoff(failures);
  }
  if (alive()) promote_or_fail();
}

void ReplicationStandby::promote_or_fail() {
  if (mirror_ == nullptr) {
    // Never seeded: promoting would serve an empty runtime as if it were
    // the primary's state. Fail loudly instead.
    std::cerr << "replication: standby never seeded; refusing to promote\n";
    failed_.store(true, std::memory_order_release);
    return;
  }
  try {
    const runtime::RuntimeSnapshot snap = mirror_->capture_snapshot();
    server::ServerOptions sopts;
    sopts.host = options_.serve_host;
    sopts.port = options_.serve_port;
    sopts.runtime = options_.runtime;  // dedup_submissions already forced on
    sopts.snapshot_path = options_.promoted_snapshot_path;
    auto srv = std::make_unique<server::PostcardServer>(topology_, sopts);
    register_backends(*srv);
    srv->runtime().restore_snapshot(snap);
    srv->start();
    {
      base::MutexLock lock(mu_);
      server_ = std::move(srv);
    }
    promoted_.store(true, std::memory_order_release);
  } catch (const std::exception& e) {
    std::cerr << "replication: standby promotion failed: " << e.what() << "\n";
    failed_.store(true, std::memory_order_release);
  }
}

}  // namespace postcard::replication
