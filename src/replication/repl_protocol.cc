#include "replication/repl_protocol.h"

#include "audit/fingerprint.h"

namespace postcard::replication {

using server::ByteReader;
using server::ByteWriter;

namespace {

template <typename Struct, typename DecodeBody>
Struct decode_payload(const std::vector<std::uint8_t>& payload,
                      DecodeBody&& body) {
  ByteReader r(payload);
  Struct out = body(r);
  r.require_done();
  return out;
}

}  // namespace

std::uint64_t runtime_fingerprint(const runtime::RuntimeStats& s) {
  audit::Fnv1a64 h;
  // Engine counters the driver alone mutates, at tick boundaries.
  h.i32(s.slots_processed);
  h.i64(s.link_events);
  h.i64(s.solver_stalls);
  h.i64(s.solver_faults);
  h.u32(static_cast<std::uint32_t>(s.backends.size()));
  for (const runtime::BackendStats& b : s.backends) {
    h.str(b.name);
    // The committed cost series is the paper's headline output; hash
    // every double's exact bit pattern so one ULP of divergence is loud.
    h.u32(static_cast<std::uint32_t>(b.cost_series.size()));
    for (double c : b.cost_series) h.f64(c);
    h.i64(b.accepted_files);
    h.f64(b.accepted_volume);
    h.i64(b.rejected_files);
    h.f64(b.rejected_volume);
    h.i64(b.delivered_files);
    h.f64(b.delivered_volume);
    h.i64(b.failed_files);
    h.f64(b.failed_volume);
    h.i64(b.replans);
    h.f64(b.replanned_volume);
    h.i64(b.conflict_resolves);
    h.i32(b.lp_solves);
    h.i64(b.lp_iterations);
    h.i64(b.warm_accepts);
    h.i64(b.cold_starts);
    h.i64(b.resumed_solves);
    h.i64(b.dual_warm_attempts);
    h.i64(b.dual_seed_columns);
    h.i64(b.charge_reduce_violations);
    h.i64(b.rung_full);
    h.i64(b.rung_truncated);
    h.i64(b.rung_greedy);
    h.i64(b.rung_dcroute);
    h.i64(b.carryover_files);
    h.f64(b.carryover_volume);
    h.i64(b.carryover_entered_files);
    h.f64(b.carryover_entered_volume);
    h.i64(b.degraded_slots);
    h.f64(b.degraded_cost_delta);
    h.i64(b.solver_failures);
    h.i64(b.gave_up_files);
    h.f64(b.gave_up_volume);
    h.i64(b.audit_checks);
    // Deliberately excluded: pricing/master/audit seconds, latency
    // histograms (wall clock), last_solver_status (free text), and the
    // ingress counters (submissions race the commit boundary).
  }
  return h.digest();
}

std::vector<std::uint8_t> ReplHello::encode() const {
  ByteWriter w;
  w.i32(last_commit_slot);
  return w.take();
}

ReplHello ReplHello::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplHello>(payload, [](ByteReader& r) {
    return ReplHello{r.i32()};
  });
}

std::vector<std::uint8_t> ReplSnapshot::encode() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(image.size()));
  w.raw(image.data(), image.size());
  return w.take();
}

ReplSnapshot ReplSnapshot::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplSnapshot>(payload, [](ByteReader& r) {
    ReplSnapshot s;
    const std::size_t n = r.length(1);
    s.image.reserve(n);
    for (std::size_t i = 0; i < n; ++i) s.image.push_back(r.u8());
    return s;
  });
}

std::vector<std::uint8_t> ReplEvents::encode() const {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const runtime::Event& e : events) server::encode_event(w, e);
  return w.take();
}

ReplEvents ReplEvents::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplEvents>(payload, [](ByteReader& r) {
    ReplEvents out;
    const std::size_t n = r.length(4 + 8 + 1);
    out.events.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      out.events.push_back(server::decode_event(r));
    }
    return out;
  });
}

std::vector<std::uint8_t> ReplCommit::encode() const {
  ByteWriter w;
  w.i32(slot);
  w.u64(fingerprint);
  return w.take();
}

ReplCommit ReplCommit::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplCommit>(payload, [](ByteReader& r) {
    ReplCommit c;
    c.slot = r.i32();
    c.fingerprint = r.u64();
    return c;
  });
}

std::vector<std::uint8_t> ReplHeartbeat::encode() const {
  ByteWriter w;
  w.i32(next_slot);
  return w.take();
}

ReplHeartbeat ReplHeartbeat::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplHeartbeat>(payload, [](ByteReader& r) {
    return ReplHeartbeat{r.i32()};
  });
}

std::vector<std::uint8_t> ReplAck::encode() const {
  ByteWriter w;
  w.i32(slot);
  w.u64(fingerprint);
  return w.take();
}

ReplAck ReplAck::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplAck>(payload, [](ByteReader& r) {
    ReplAck a;
    a.slot = r.i32();
    a.fingerprint = r.u64();
    return a;
  });
}

std::vector<std::uint8_t> ReplReseed::encode() const {
  ByteWriter w;
  w.str(reason);
  return w.take();
}

ReplReseed ReplReseed::decode(const std::vector<std::uint8_t>& payload) {
  return decode_payload<ReplReseed>(payload, [](ByteReader& r) {
    return ReplReseed{r.str()};
  });
}

}  // namespace postcard::replication
