// ReplicationStandby: a warm replica that bootstraps from a shipped
// snapshot, stays current by deterministic replay of the primary's event
// stream, and promotes itself to a serving PostcardServer when the
// primary goes silent (DESIGN.md §14).
//
// Failover state machine (single run thread):
//
//   CONNECTING ──connect+Hello──► FOLLOWING
//       ▲  │ attempts exhausted        │ snapshot → rebuild mirror
//       │  ▼                           │ events   → queue pushes
//   (backoff with jitter)              │ commit   → tick + fingerprint
//       │                              │            compare
//       │       timeout / EOF / error  │ mismatch → ReplReseed (stay)
//       └──────────────────────────────┘
//   attempts exhausted + mirror seeded ──► PROMOTED (serving server,
//   restored from the mirror; partial slots stay pending and solve at
//   the next tick — client retries + submission dedup give exactly-once)
//   attempts exhausted + never seeded  ──► FAILED (loud, no serving)
//
// Every replayed slot is checked against the primary's divergence
// fingerprint; a mismatch is detected within ONE slot commit and answered
// with a reseed request instead of silently serving wrong state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.h"
#include "base/thread_annotations.h"
#include "core/postcard.h"
#include "flow/baseline.h"
#include "net/topology.h"
#include "replication/repl_protocol.h"
#include "server/server.h"

namespace postcard::replication {

/// Backend registration recipe: the standby must register the exact same
/// backend sequence as the primary for snapshot restore to succeed.
struct BackendSpec {
  enum class Kind { kPostcard, kFlow };
  Kind kind = Kind::kPostcard;
  core::PostcardOptions postcard;
  flow::FlowBaselineOptions flow;

  static BackendSpec make_postcard(core::PostcardOptions options = {}) {
    BackendSpec s;
    s.kind = Kind::kPostcard;
    s.postcard = std::move(options);
    return s;
  }
  static BackendSpec make_flow(flow::FlowBaselineOptions options = {}) {
    BackendSpec s;
    s.kind = Kind::kFlow;
    s.flow = std::move(options);
    return s;
  }
};

struct StandbyOptions {
  std::string primary_host = "127.0.0.1";
  int primary_port = 0;
  /// Where the promoted server binds after failover.
  std::string serve_host = "127.0.0.1";
  int serve_port = 0;
  /// Runtime options for the mirror AND the promoted server. Must be
  /// deterministic (worker_threads == 0, parallel_groups == 1) — replay
  /// equivalence is what failover correctness rests on; the constructor
  /// throws otherwise. dedup_submissions is forced on so client retries
  /// across the failover apply exactly once.
  runtime::RuntimeOptions runtime;
  /// Silence longer than this on the replication socket counts as a
  /// missed heartbeat (SO_RCVTIMEO).
  int heartbeat_timeout_ms = 1000;
  /// Consecutive connect/read failures tolerated before failover.
  int reconnect_attempts = 3;
  /// Bounded exponential backoff between reconnects, with deterministic
  /// jitter (seeded; no wall-clock entropy).
  int backoff_base_ms = 25;
  int backoff_max_ms = 400;
  std::uint32_t jitter_seed = 42;
  std::size_t max_frame_bytes = kReplMaxFrameBytes;
  /// Snapshot path handed to the promoted server ("" = none).
  std::string promoted_snapshot_path;
};

struct StandbyStats {
  long snapshots_applied = 0;
  long events_applied = 0;
  long commits_applied = 0;
  long fingerprint_mismatches = 0;
  long reseeds_sent = 0;
  long reconnects = 0;
  /// Any received heartbeat proves the primary ACCEPTED this connection
  /// (it never sends to a socket still in the listen backlog) — the
  /// handshake signal tests use before driving slots when the primary
  /// lives in another process.
  long heartbeats_seen = 0;
  int last_commit_slot = -1;
};

class ReplicationStandby {
 public:
  /// Throws std::invalid_argument when options.runtime is not
  /// deterministic (see StandbyOptions::runtime).
  ReplicationStandby(net::Topology topology, std::vector<BackendSpec> backends,
                     StandbyOptions options);
  ~ReplicationStandby();

  ReplicationStandby(const ReplicationStandby&) = delete;
  ReplicationStandby& operator=(const ReplicationStandby&) = delete;

  /// Spawns the run thread (connect → follow → promote-or-fail).
  void start();

  /// Stops following / shuts the promoted server down, joins the thread.
  void stop();

  bool promoted() const { return promoted_.load(std::memory_order_acquire); }
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// The promoted server (nullptr until promoted). The standby keeps
  /// ownership; valid until stop()/destruction.
  server::PostcardServer* server();
  /// Bound port of the promoted server (0 until promoted).
  int serve_port();

  StandbyStats stats() const;

  /// Poll helpers for tests: spin until the condition or the deadline.
  bool wait_for_commit(int slot, int timeout_ms) const;
  bool wait_promoted(int timeout_ms) const;
  bool wait_failed(int timeout_ms) const;

  /// Chaos hook: corrupts the next replicated FileArrival (size += 1.0)
  /// so the following commit's fingerprint MUST mismatch.
  void corrupt_next_event();

 private:
  void run();
  int connect_once();
  /// Applies one frame; returns false when the connection must drop.
  bool handle_frame(int fd, const server::Frame& frame);
  void promote_or_fail();
  std::unique_ptr<runtime::ControllerRuntime> build_mirror();
  void register_backends(server::PostcardServer& srv) const;

  net::Topology topology_;
  std::vector<BackendSpec> backends_;
  StandbyOptions options_;

  std::thread run_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<bool> failed_{false};
  std::atomic<bool> corrupt_next_{false};

  mutable base::Mutex mu_;
  /// Opened and closed only by the run thread; published here so stop()
  /// can shutdown() it to unblock a read. Cleared under mu_ BEFORE the
  /// close so stop() never touches a recycled descriptor.
  int conn_fd_ GUARDED_BY(mu_) = -1;
  StandbyStats stats_ GUARDED_BY(mu_);
  std::unique_ptr<runtime::ControllerRuntime> mirror_;  // run thread only
  std::unique_ptr<server::PostcardServer> server_ GUARDED_BY(mu_);
};

}  // namespace postcard::replication
