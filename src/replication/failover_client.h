// FailoverClient: a PostcardClient wrapper that survives a controller
// failover (DESIGN.md §14).
//
// It holds an ordered endpoint list (primary first, promoted standby
// next), bounds every call with an io timeout, and on any transport error
// reconnects to the next endpoint with bounded exponential backoff and
// deterministic jitter. Safety rests on the server side's idempotent
// submissions (RuntimeOptions::dedup_submissions): a SubmitFile whose
// reply was lost in the crash can be resubmitted verbatim and is applied
// exactly once — the retry's verdict reports duplicate = true.
//
// advance_to() exists because plain advance(k) is NOT idempotent: if the
// reply is lost the caller cannot know whether the ticks happened. It
// re-reads slots_processed after every failure and only requests the
// remaining delta, so the slot clock lands exactly on the target no
// matter how many retries it took.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "server/client.h"

namespace postcard::replication {

struct FailoverEndpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct FailoverClientOptions {
  std::vector<FailoverEndpoint> endpoints;  // tried in order, round-robin
  /// SO_RCVTIMEO/SO_SNDTIMEO per call, so a dead primary fails the call in
  /// bounded time instead of hanging the client forever.
  int io_timeout_ms = 1000;
  /// Total transport failures tolerated per operation before rethrowing.
  int max_attempts = 8;
  int backoff_base_ms = 10;
  int backoff_max_ms = 250;
  std::uint32_t jitter_seed = 1;
  std::size_t max_frame_bytes = server::kDefaultMaxFrameBytes;
};

class FailoverClient {
 public:
  explicit FailoverClient(FailoverClientOptions options);

  FailoverClient(const FailoverClient&) = delete;
  FailoverClient& operator=(const FailoverClient&) = delete;

  /// Idempotent under server-side dedup: safe to retry across a failover.
  server::SubmitVerdict submit_file(const net::FileRequest& file);
  std::vector<server::SubmitVerdict> submit_batch(
      const std::vector<net::FileRequest>& files);

  server::PlanReply query_plan(int backend, int file_id);
  runtime::RuntimeStats query_stats();

  /// Ticks the slot clock until slots_processed reaches `target_slot`
  /// (no-op when already past). Returns the final slots_processed.
  int advance_to(int target_slot);

  /// Index into options.endpoints of the connection last used.
  int active_endpoint() const { return active_; }
  /// Transport failures that forced a reconnect/endpoint rotation.
  long failovers() const { return failovers_; }

 private:
  /// Runs `op` against a live connection, reconnecting and rotating
  /// endpoints on WireError until it succeeds or attempts run out (then
  /// rethrows the last error).
  template <typename Op>
  auto with_retry(Op&& op) -> decltype(op(*static_cast<server::PostcardClient*>(nullptr)));

  server::PostcardClient& ensure_client();
  void on_failure();

  FailoverClientOptions options_;
  std::unique_ptr<server::PostcardClient> client_;
  std::minstd_rand rng_;
  int active_ = 0;
  int consecutive_failures_ = 0;
  long failovers_ = 0;
};

}  // namespace postcard::replication
