#include "lp/ipm.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/sparse.h"

namespace postcard::lp {

namespace {

using linalg::Index;
using linalg::SparseMatrix;
using linalg::Triplet;
using linalg::Vector;

constexpr double kEqualityTol = 1e-12;

/// Equality-form problem data: min c^T x, A x = b, l <= x <= u.
struct EqForm {
  SparseMatrix a;
  Vector b, c, l, u;
  int n_struct = 0;  // leading columns that map back to model variables
};

EqForm to_equality_form(const LpModel& model) {
  EqForm eq;
  const int n = model.num_variables();
  const int m = model.num_constraints();
  eq.n_struct = n;
  eq.c.assign(model.objective().begin(), model.objective().end());
  eq.l.assign(model.col_lower().begin(), model.col_lower().end());
  eq.u.assign(model.col_upper().begin(), model.col_upper().end());
  eq.b.assign(static_cast<std::size_t>(m), 0.0);

  std::vector<Triplet> triplets(model.entries());
  int cols = n;
  for (int i = 0; i < m; ++i) {
    const double rl = model.row_lower()[i];
    const double ru = model.row_upper()[i];
    if (std::isfinite(rl) && std::isfinite(ru) && ru - rl <= kEqualityTol) {
      eq.b[i] = 0.5 * (rl + ru);  // genuine equality row, no slack
      continue;
    }
    // a^T x - s = 0 with s in [rl, ru].
    triplets.push_back({static_cast<Index>(i), static_cast<Index>(cols), -1.0});
    eq.c.push_back(0.0);
    eq.l.push_back(rl);
    eq.u.push_back(ru);
    ++cols;
  }
  eq.a = SparseMatrix::from_triplets(static_cast<Index>(m),
                                     static_cast<Index>(cols), triplets);
  return eq;
}

/// Precomputed scatter plan for assembling M = A D^{-1} A^T + delta*I with a
/// fixed pattern: each entry of M is a sum of (inv_d[col] * weight) terms.
struct NormalEquations {
  SparseMatrix pattern;              // numeric values overwritten in place
  std::vector<Index> slot;           // per term: position in pattern values
  std::vector<Index> term_col;       // per term: column j of A
  std::vector<double> term_weight;   // per term: a_rj * a_sj
  std::vector<Index> diag_slot;      // per row: diagonal position

  void build(const SparseMatrix& a) {
    const Index m = a.rows();
    std::vector<Triplet> structure;
    for (Index j = 0; j < a.cols(); ++j) {
      for (Index p = a.col_begin(j); p < a.col_end(j); ++p) {
        for (Index q = a.col_begin(j); q < a.col_end(j); ++q) {
          structure.push_back({a.row_idx()[p], a.row_idx()[q], 1.0});
        }
      }
    }
    for (Index i = 0; i < m; ++i) structure.push_back({i, i, 1.0});
    pattern = SparseMatrix::from_triplets(m, m, structure);

    // Map every (row-pair, column) term to its slot in the pattern.
    auto find_slot = [this](Index r, Index c) -> Index {
      const auto& rows = pattern.row_idx();
      Index lo = pattern.col_begin(c), hi = pattern.col_end(c);
      while (lo < hi) {
        const Index mid = (lo + hi) / 2;
        if (rows[mid] < r) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    };
    for (Index j = 0; j < a.cols(); ++j) {
      for (Index p = a.col_begin(j); p < a.col_end(j); ++p) {
        for (Index q = a.col_begin(j); q < a.col_end(j); ++q) {
          slot.push_back(find_slot(a.row_idx()[p], a.row_idx()[q]));
          term_col.push_back(j);
          term_weight.push_back(a.values()[p] * a.values()[q]);
        }
      }
    }
    diag_slot.resize(static_cast<std::size_t>(m));
    for (Index i = 0; i < m; ++i) diag_slot[i] = find_slot(i, i);
  }

  /// values(M) = sum_j inv_d[j] * a_j a_j^T + primal_reg * I.
  void assemble(const Vector& inv_d, double primal_reg,
                std::vector<double>& values) const {
    std::fill(values.begin(), values.end(), 0.0);
    for (std::size_t t = 0; t < slot.size(); ++t) {
      values[slot[t]] += inv_d[term_col[t]] * term_weight[t];
    }
    for (Index d : diag_slot) values[d] += primal_reg;
  }
};

}  // namespace

Solution InteriorPoint::solve(const LpModel& model, SolveBudget* budget) {
  if (budget && !budget->limited()) budget = nullptr;
  Solution result;
  EqForm eq = to_equality_form(model);
  const Index m = eq.a.rows();
  const Index n = eq.a.cols();

  // Defensive widening of (should-be-presolved) fixed columns.
  for (Index j = 0; j < n; ++j) {
    if (std::isfinite(eq.l[j]) && std::isfinite(eq.u[j]) &&
        eq.u[j] - eq.l[j] < 1e-10) {
      const double w = 1e-9 * (1.0 + std::abs(eq.l[j]));
      eq.l[j] -= w;
      eq.u[j] += w;
    }
  }

  std::vector<char> has_lo(static_cast<std::size_t>(n)), has_up(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    has_lo[j] = std::isfinite(eq.l[j]);
    has_up[j] = std::isfinite(eq.u[j]);
  }

  // Starting point: primal strictly inside the box, unit multipliers.
  Vector x(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    if (has_lo[j] && has_up[j]) {
      x[j] = 0.5 * (eq.l[j] + eq.u[j]);
    } else if (has_lo[j]) {
      x[j] = eq.l[j] + 1.0;
    } else if (has_up[j]) {
      x[j] = eq.u[j] - 1.0;
    }
  }
  Vector y(static_cast<std::size_t>(m), 0.0);
  Vector zl(static_cast<std::size_t>(n), 0.0), zu(static_cast<std::size_t>(n), 0.0);
  for (Index j = 0; j < n; ++j) {
    if (has_lo[j]) zl[j] = 1.0;
    if (has_up[j]) zu[j] = 1.0;
  }

  NormalEquations normal;
  normal.build(eq.a);
  linalg::LdlSolver ldl;
  ldl.analyze(normal.pattern);
  std::vector<double> mvals(normal.pattern.values());

  const double bnorm = 1.0 + linalg::norm_inf(eq.b);
  double cnorm = 1.0;
  for (double v : eq.c) cnorm = std::max(cnorm, std::abs(v));

  Vector rp(static_cast<std::size_t>(m)), rd(static_cast<std::size_t>(n));
  Vector inv_d(static_cast<std::size_t>(n));
  Vector rhat(static_cast<std::size_t>(n));
  Vector rhs(static_cast<std::size_t>(m)), tmp_m(static_cast<std::size_t>(m));
  Vector dx(static_cast<std::size_t>(n)), dy(static_cast<std::size_t>(m));
  Vector dzl(static_cast<std::size_t>(n)), dzu(static_cast<std::size_t>(n));
  Vector dx_aff(static_cast<std::size_t>(n)), dzl_aff(static_cast<std::size_t>(n)),
      dzu_aff(static_cast<std::size_t>(n));
  Vector rcl(static_cast<std::size_t>(n)), rcu(static_cast<std::size_t>(n));
  Vector ax(static_cast<std::size_t>(m)), aty(static_cast<std::size_t>(n));

  long bound_count = 0;
  for (Index j = 0; j < n; ++j) bound_count += has_lo[j] + has_up[j];
  if (bound_count == 0) bound_count = 1;

  auto solve_newton = [&]() {
    // dx = D^{-1}(A^T dy - rhat); A dx = rp  =>  M dy = rp + A D^{-1} rhat.
    for (Index j = 0; j < n; ++j) rhat[j] *= inv_d[j];
    eq.a.multiply(rhat, tmp_m);
    for (Index i = 0; i < m; ++i) rhs[i] = rp[i] + tmp_m[i];
    dy = rhs;
    ldl.solve(dy);
    eq.a.multiply_transpose(dy, aty);
    for (Index j = 0; j < n; ++j) {
      dx[j] = inv_d[j] * aty[j] - rhat[j];  // rhat already scaled by inv_d
    }
  };

  for (long iter = 0; iter < options_.max_iterations; ++iter) {
    // Cooperative cancellation before the (expensive) factorization; the
    // tail below still reports the current iterate as the best answer.
    if (budget && !budget->charge()) {
      result.status = SolveStatus::kDeadlineExceeded;
      result.iterations = iter;
      break;
    }
    // Residuals.
    eq.a.multiply(x, ax);
    for (Index i = 0; i < m; ++i) rp[i] = eq.b[i] - ax[i];
    eq.a.multiply_transpose(y, aty);
    for (Index j = 0; j < n; ++j) {
      rd[j] = eq.c[j] - aty[j] - zl[j] + zu[j];
    }
    double mu = 0.0;
    for (Index j = 0; j < n; ++j) {
      if (has_lo[j]) mu += (x[j] - eq.l[j]) * zl[j];
      if (has_up[j]) mu += (eq.u[j] - x[j]) * zu[j];
    }
    mu /= static_cast<double>(bound_count);

    const double prim_res = linalg::norm_inf(rp) / bnorm;
    const double dual_res = linalg::norm_inf(rd) / cnorm;
    double obj = 0.0;
    for (Index j = 0; j < n; ++j) obj += eq.c[j] * x[j];
    if (prim_res < options_.tol && dual_res < options_.tol &&
        mu < options_.tol * (1.0 + std::abs(obj))) {
      result.status = SolveStatus::kOptimal;
      result.iterations = iter;
      break;
    }

    // Curvatures.
    for (Index j = 0; j < n; ++j) {
      double d = options_.free_curvature;
      if (has_lo[j]) d += zl[j] / (x[j] - eq.l[j]);
      if (has_up[j]) d += zu[j] / (eq.u[j] - x[j]);
      inv_d[j] = 1.0 / d;
    }
    normal.assemble(inv_d, 1e-10, mvals);
    const SparseMatrix msys = SparseMatrix::from_csc(
        m, m, std::vector<Index>(normal.pattern.col_ptr()),
        std::vector<Index>(normal.pattern.row_idx()), mvals);
    ldl.factorize(msys);

    // Affine (predictor) step: drive complementarity toward zero.
    for (Index j = 0; j < n; ++j) {
      rcl[j] = has_lo[j] ? -(x[j] - eq.l[j]) * zl[j] : 0.0;
      rcu[j] = has_up[j] ? -(eq.u[j] - x[j]) * zu[j] : 0.0;
      rhat[j] = rd[j];
      if (has_lo[j]) rhat[j] -= rcl[j] / (x[j] - eq.l[j]);
      if (has_up[j]) rhat[j] += rcu[j] / (eq.u[j] - x[j]);
    }
    solve_newton();
    for (Index j = 0; j < n; ++j) {
      dzl_aff[j] = has_lo[j] ? (rcl[j] - zl[j] * dx[j]) / (x[j] - eq.l[j]) : 0.0;
      dzu_aff[j] = has_up[j] ? (rcu[j] + zu[j] * dx[j]) / (eq.u[j] - x[j]) : 0.0;
      dx_aff[j] = dx[j];
    }

    auto max_steps = [&](const Vector& sdx, const Vector& sdzl,
                         const Vector& sdzu) {
      double ap = 1.0, ad = 1.0;
      for (Index j = 0; j < n; ++j) {
        if (has_lo[j]) {
          if (sdx[j] < 0.0) ap = std::min(ap, -(x[j] - eq.l[j]) / sdx[j]);
          if (sdzl[j] < 0.0) ad = std::min(ad, -zl[j] / sdzl[j]);
        }
        if (has_up[j]) {
          if (sdx[j] > 0.0) ap = std::min(ap, (eq.u[j] - x[j]) / sdx[j]);
          if (sdzu[j] < 0.0) ad = std::min(ad, -zu[j] / sdzu[j]);
        }
      }
      return std::pair<double, double>(ap, ad);
    };

    const auto [ap_aff, ad_aff] = max_steps(dx_aff, dzl_aff, dzu_aff);
    double mu_aff = 0.0;
    for (Index j = 0; j < n; ++j) {
      if (has_lo[j]) {
        mu_aff += (x[j] - eq.l[j] + ap_aff * dx_aff[j]) * (zl[j] + ad_aff * dzl_aff[j]);
      }
      if (has_up[j]) {
        mu_aff += (eq.u[j] - x[j] - ap_aff * dx_aff[j]) * (zu[j] + ad_aff * dzu_aff[j]);
      }
    }
    mu_aff /= static_cast<double>(bound_count);
    const double sigma = std::pow(std::clamp(mu_aff / std::max(mu, 1e-300), 0.0, 1.0), 3);

    // Corrector step with centering sigma*mu and Mehrotra's second-order term.
    for (Index j = 0; j < n; ++j) {
      rcl[j] = has_lo[j]
                   ? sigma * mu - (x[j] - eq.l[j]) * zl[j] - dx_aff[j] * dzl_aff[j]
                   : 0.0;
      rcu[j] = has_up[j]
                   ? sigma * mu - (eq.u[j] - x[j]) * zu[j] + dx_aff[j] * dzu_aff[j]
                   : 0.0;
      rhat[j] = rd[j];
      if (has_lo[j]) rhat[j] -= rcl[j] / (x[j] - eq.l[j]);
      if (has_up[j]) rhat[j] += rcu[j] / (eq.u[j] - x[j]);
    }
    solve_newton();
    for (Index j = 0; j < n; ++j) {
      dzl[j] = has_lo[j] ? (rcl[j] - zl[j] * dx[j]) / (x[j] - eq.l[j]) : 0.0;
      dzu[j] = has_up[j] ? (rcu[j] + zu[j] * dx[j]) / (eq.u[j] - x[j]) : 0.0;
    }

    const auto [ap_max, ad_max] = max_steps(dx, dzl, dzu);
    const double ap = std::min(1.0, options_.step_fraction * ap_max);
    const double ad = std::min(1.0, options_.step_fraction * ad_max);
    for (Index j = 0; j < n; ++j) {
      x[j] += ap * dx[j];
      zl[j] += ad * dzl[j];
      zu[j] += ad * dzu[j];
    }
    for (Index i = 0; i < m; ++i) y[i] += ad * dy[i];

    if (iter + 1 == options_.max_iterations) {
      result.status = SolveStatus::kIterationLimit;
      result.iterations = iter + 1;
    }
  }

  result.x.assign(x.begin(), x.begin() + eq.n_struct);
  // Snap primal values onto their box (interior iterates sit epsilon inside).
  for (int j = 0; j < eq.n_struct; ++j) {
    result.x[j] = std::clamp(result.x[j], model.col_lower()[j], model.col_upper()[j]);
  }
  result.objective = model.objective_value(result.x);
  result.duals = y;
  result.reduced_costs.assign(static_cast<std::size_t>(eq.n_struct), 0.0);
  for (int j = 0; j < eq.n_struct; ++j) {
    result.reduced_costs[j] = zl[j] - zu[j];
  }
  return result;
}

}  // namespace postcard::lp
