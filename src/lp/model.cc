#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace postcard::lp {

int LpModel::add_variable(double lower, double upper, double objective,
                          std::string name) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  objective_.push_back(objective);
  col_lower_.push_back(lower);
  col_upper_.push_back(upper);
  col_names_.push_back(std::move(name));
  return num_variables() - 1;
}

int LpModel::add_constraint(double lower, double upper, std::string name) {
  if (lower > upper) throw std::invalid_argument("constraint bounds crossed");
  row_lower_.push_back(lower);
  row_upper_.push_back(upper);
  row_names_.push_back(std::move(name));
  return num_constraints() - 1;
}

void LpModel::add_coefficient(int row, int col, double value) {
  if (row < 0 || row >= num_constraints()) throw std::out_of_range("bad row");
  if (col < 0 || col >= num_variables()) throw std::out_of_range("bad col");
  if (value == 0.0) return;
  entries_.push_back({static_cast<linalg::Index>(row),
                      static_cast<linalg::Index>(col), value});
}

void LpModel::set_variable_bounds(int col, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument("variable bounds crossed");
  col_lower_[col] = lower;
  col_upper_[col] = upper;
}

void LpModel::set_constraint_bounds(int row, double lower, double upper) {
  if (lower > upper) throw std::invalid_argument("constraint bounds crossed");
  row_lower_[row] = lower;
  row_upper_[row] = upper;
}

linalg::SparseMatrix LpModel::build_matrix() const {
  return linalg::SparseMatrix::from_triplets(
      static_cast<linalg::Index>(num_constraints()),
      static_cast<linalg::Index>(num_variables()), entries_);
}

double LpModel::objective_value(const linalg::Vector& x) const {
  double s = 0.0;
  for (int j = 0; j < num_variables(); ++j) s += objective_[j] * x[j];
  return s;
}

double LpModel::max_violation(const linalg::Vector& x) const {
  double viol = 0.0;
  for (int j = 0; j < num_variables(); ++j) {
    viol = std::max(viol, col_lower_[j] - x[j]);
    viol = std::max(viol, x[j] - col_upper_[j]);
  }
  linalg::Vector activity(static_cast<std::size_t>(num_constraints()), 0.0);
  for (const linalg::Triplet& t : entries_) {
    activity[t.row] += t.value * x[t.col];
  }
  for (int i = 0; i < num_constraints(); ++i) {
    viol = std::max(viol, row_lower_[i] - activity[i]);
    viol = std::max(viol, activity[i] - row_upper_[i]);
  }
  return viol;
}

}  // namespace postcard::lp
