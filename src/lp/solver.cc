#include "lp/solver.h"

#include "lp/ipm.h"
#include "lp/presolve.h"
#include "lp/simplex.h"

namespace postcard::lp {

namespace {

Solution solve_direct(const LpModel& model, const SolverOptions& options,
                      SolveBudget* budget) {
  if (options.method == Method::kInteriorPoint) {
    InteriorPoint::Options opts;
    opts.tol = options.opt_tol;
    if (options.max_iterations > 0) opts.max_iterations = options.max_iterations;
    return InteriorPoint(opts).solve(model, budget);
  }
  RevisedSimplex::Options opts;
  opts.feas_tol = options.feas_tol;
  opts.opt_tol = options.opt_tol;
  opts.max_iterations = options.max_iterations;
  return RevisedSimplex(opts).solve(model, nullptr, budget);
}

}  // namespace

Solution solve(const LpModel& model, const SolverOptions& options,
               SolveBudget* budget) {
  if (!options.presolve) return solve_direct(model, options, budget);

  Presolver presolver;
  Presolver::Result reduced = presolver.reduce(model);
  if (reduced.decided.has_value()) {
    Solution s;
    s.status = *reduced.decided;
    return s;
  }
  const Solution inner = solve_direct(reduced.reduced, options, budget);
  if (inner.status == SolveStatus::kInfeasible ||
      inner.status == SolveStatus::kUnbounded ||
      inner.status == SolveStatus::kNumericalFailure) {
    Solution s;
    s.status = inner.status;
    s.iterations = inner.iterations;
    return s;
  }
  return presolver.postsolve(model, inner);
}

}  // namespace postcard::lp
