// Mehrotra predictor-corrector interior-point method.
//
// The model is brought to the equality form  A~ x~ = b,  l <= x~ <= u:
// equality rows keep their right-hand side, inequality/range rows receive a
// slack column. The Newton systems are reduced to the normal equations
//     (A~ D^{-1} A~^T) dy = r
// with D the diagonal of barrier curvatures, factorized once per iteration
// by the sparse LDL^T solver (pattern fixed, so symbolic analysis is done
// once). Free variables receive a small curvature regularization; fixed
// variables should be removed by presolve (a tiny bound widening is applied
// defensively otherwise).
//
// The paper names interior-point methods as the intended solver class for
// the Postcard problem (Sec. I, Sec. V); in this library the IPM doubles as
// an independent cross-check of the simplex and as the subject of the
// solver-ablation benchmark.
#pragma once

#include "lp/budget.h"
#include "lp/model.h"
#include "lp/status.h"

namespace postcard::lp {

class InteriorPoint {
 public:
  struct Options {
    double tol = 1e-8;          // relative residual / gap tolerance
    long max_iterations = 200;
    double free_curvature = 1e-8;
    double step_fraction = 0.9995;
  };

  InteriorPoint() : InteriorPoint(Options{}) {}
  explicit InteriorPoint(Options options) : options_(options) {}

  /// `budget`, when non-null and limited, is charged once per IPM iteration;
  /// on exhaustion the solve stops with kDeadlineExceeded and reports the
  /// current (interior, clamped-to-bounds) iterate.
  Solution solve(const LpModel& model, SolveBudget* budget = nullptr);

 private:
  Options options_;
};

}  // namespace postcard::lp
