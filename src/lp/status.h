// Solve statuses and the solution record shared by all LP algorithms.
#pragma once

#include <limits>
#include <string>

#include "linalg/dense.h"

namespace postcard::lp {

/// Positive infinity used for absent bounds.
inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kNumericalFailure,
  // A SolveBudget (lp/budget.h) ran out mid-solve: the solution holds the
  // best iterate reached so far, not a verified optimum. Distinct from
  // kIterationLimit so callers can tell a cooperative cancellation (walk
  // the degradation ladder) from a solver-local safety limit.
  kDeadlineExceeded,
};

/// Human-readable status name (for logs and test diagnostics).
inline const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration_limit";
    case SolveStatus::kNumericalFailure: return "numerical_failure";
    case SolveStatus::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

struct Solution {
  SolveStatus status = SolveStatus::kNumericalFailure;
  double objective = 0.0;
  linalg::Vector x;              // primal values, one per model variable
  linalg::Vector duals;          // one per model constraint
  linalg::Vector reduced_costs;  // one per model variable
  long iterations = 0;

  // Simplex diagnostics (zero for other methods).
  long phase1_iterations = 0;
  long degenerate_pivots = 0;  // pivots with step length ~0
  long bound_flips = 0;
  // True when a supplied warm-start basis was verified (nonsingular and
  // primal feasible) and used, skipping phase 1; false means the solve ran
  // from a cold start (none supplied, or the snapshot was rejected).
  bool warm_started = false;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

}  // namespace postcard::lp
