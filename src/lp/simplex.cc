#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace postcard::lp {

namespace {
constexpr double kDevexReset = 1e8;  // reference-weight cap before reset

bool is_fixed(double lo, double hi) {
  return std::isfinite(lo) && std::isfinite(hi) && hi - lo <= 0.0;
}
}  // namespace

namespace {
// Shared default classification used by both start paths: nonbasic at the
// bound nearest zero, or free at zero.
template <class Status>
void classify_default(double lo, double hi, Status& status, double& value,
                      Status at_lower, Status at_upper, Status free_status) {
  if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
    status = at_lower;
    value = lo;
  } else if (std::isfinite(hi)) {
    status = at_upper;
    value = hi;
  } else {
    status = free_status;
    value = 0.0;
  }
}
}  // namespace

void RevisedSimplex::cold_start() {
  art_row_.clear();
  art_sign_.clear();
  lower_.resize(static_cast<std::size_t>(n_ + m_));
  upper_.resize(static_cast<std::size_t>(n_ + m_));
  x_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  vstat_.assign(static_cast<std::size_t>(n_ + m_), VarStatus::kFree);
  basic_pos_.assign(static_cast<std::size_t>(n_ + m_), -1);
  for (int j = 0; j < n_; ++j) {
    classify_default(lower_[j], upper_[j], vstat_[j], x_[j],
                     VarStatus::kAtLower, VarStatus::kAtUpper, VarStatus::kFree);
  }

  linalg::Vector activity(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (x_[j] == 0.0) continue;
    for (linalg::Index p = a_.col_begin(j); p < a_.col_end(j); ++p) {
      activity[a_.row_idx()[p]] += a_.values()[p] * x_[j];
    }
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const int lj = n_ + i;
    const double g = activity[i];
    const double lo = lower_[lj], hi = upper_[lj];
    const double scale =
        1.0 + std::max(std::isfinite(lo) ? std::abs(lo) : 0.0,
                       std::isfinite(hi) ? std::abs(hi) : 0.0);
    if (g >= lo - options_.feas_tol * scale && g <= hi + options_.feas_tol * scale) {
      basis_[i] = lj;
      vstat_[lj] = VarStatus::kBasic;
      basic_pos_[lj] = i;
      x_[lj] = g;
      continue;
    }
    // Row infeasible at the starting point: logical pinned at its nearest
    // bound, artificial absorbs the residual and enters the basis. The row
    // reads a^T x - s + sign * t = 0, so sign = -1 absorbs a positive
    // residual (g > hi) and sign = +1 a negative one (g < lo).
    double sign, value;
    if (g > hi) {
      vstat_[lj] = VarStatus::kAtUpper;
      x_[lj] = hi;
      sign = -1.0;
      value = g - hi;
    } else {
      vstat_[lj] = VarStatus::kAtLower;
      x_[lj] = lo;
      sign = 1.0;
      value = lo - g;
    }
    art_row_.push_back(i);
    art_sign_.push_back(sign);
    const int aj = n_ + m_ + static_cast<int>(art_row_.size()) - 1;
    lower_.push_back(0.0);
    upper_.push_back(kInfinity);
    x_.push_back(value);
    vstat_.push_back(VarStatus::kBasic);
    basic_pos_.push_back(i);
    basis_[i] = aj;
  }
}

bool RevisedSimplex::try_warm_start(const WarmStart& warm) {
  static_assert(static_cast<signed char>(VarStatus::kBasic) == WarmStart::kBasic &&
                static_cast<signed char>(VarStatus::kAtLower) == WarmStart::kAtLower &&
                static_cast<signed char>(VarStatus::kAtUpper) == WarmStart::kAtUpper &&
                static_cast<signed char>(VarStatus::kFree) == WarmStart::kFree);
  if (warm.basis.size() != static_cast<std::size_t>(m_)) return false;
  if (warm.row_status.size() != static_cast<std::size_t>(m_)) return false;
  if (warm.col_status.size() > static_cast<std::size_t>(n_)) return false;

  art_row_.clear();
  art_sign_.clear();
  lower_.resize(static_cast<std::size_t>(n_ + m_));
  upper_.resize(static_cast<std::size_t>(n_ + m_));
  x_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  vstat_.assign(static_cast<std::size_t>(n_ + m_), VarStatus::kFree);
  basic_pos_.assign(static_cast<std::size_t>(n_ + m_), -1);

  // Defaults first (covers columns newer than the snapshot), then restore.
  for (int j = 0; j < n_; ++j) {
    classify_default(lower_[j], upper_[j], vstat_[j], x_[j],
                     VarStatus::kAtLower, VarStatus::kAtUpper, VarStatus::kFree);
  }
  auto restore = [&](int j, signed char saved) {
    const auto st = static_cast<VarStatus>(saved);
    switch (st) {
      case VarStatus::kAtLower:
        if (!std::isfinite(lower_[j])) return false;
        vstat_[j] = st;
        x_[j] = lower_[j];
        return true;
      case VarStatus::kAtUpper:
        if (!std::isfinite(upper_[j])) return false;
        vstat_[j] = st;
        x_[j] = upper_[j];
        return true;
      case VarStatus::kFree:
        vstat_[j] = st;
        x_[j] = 0.0;
        return true;
      case VarStatus::kBasic:
        vstat_[j] = st;  // value filled by recompute_basic_values()
        return true;
    }
    return false;
  };
  for (std::size_t j = 0; j < warm.col_status.size(); ++j) {
    if (!restore(static_cast<int>(j), warm.col_status[j])) return false;
  }
  for (int i = 0; i < m_; ++i) {
    if (!restore(n_ + i, warm.row_status[i])) return false;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const int code = warm.basis[i];
    int var;
    if (code >= 0) {
      if (code >= n_) return false;
      var = code;
    } else {
      const int row = -code - 1;
      if (row < 0 || row >= m_) return false;
      var = n_ + row;
    }
    if (basic_pos_[var] >= 0) return false;  // duplicate basic variable
    if (vstat_[var] != VarStatus::kBasic) return false;
    basis_[i] = var;
    basic_pos_[var] = i;
  }
  // Every kBasic-status variable must actually sit in the basis.
  for (int j = 0; j < n_ + m_; ++j) {
    if (vstat_[j] == VarStatus::kBasic && basic_pos_[j] < 0) return false;
  }
  return true;
}

bool RevisedSimplex::warm_point_feasible() {
  recompute_basic_values();
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    const double lo = lower_[j], hi = upper_[j];
    const double scale =
        1.0 + std::max(std::isfinite(lo) ? std::abs(lo) : 0.0,
                       std::isfinite(hi) ? std::abs(hi) : 0.0);
    if (x_[j] < lo - options_.feas_tol * scale ||
        x_[j] > hi + options_.feas_tol * scale) {
      return false;
    }
  }
  return true;
}

RevisedSimplex::WarmStart RevisedSimplex::extract_warm_start() const {
  WarmStart w;
  if (basis_.empty() && m_ > 0) return w;
  w.col_status.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    w.col_status[j] = static_cast<signed char>(vstat_[j]);
  }
  w.row_status.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    w.row_status[i] = static_cast<signed char>(vstat_[n_ + i]);
  }
  w.basis.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[i];
    if (b < n_) {
      w.basis[i] = b;
    } else if (b < n_ + m_) {
      w.basis[i] = -(b - n_ + 1);
    } else {
      w.basis.clear();  // an artificial is still basic: snapshot unusable
      break;
    }
  }
  return w;
}

Solution RevisedSimplex::solve(const LpModel& model, const WarmStart* warm,
                               SolveBudget* budget) {
  budget_ = budget && budget->limited() ? budget : nullptr;
  a_ = model.build_matrix();
  n_ = model.num_variables();
  m_ = model.num_constraints();
  art_row_.clear();
  art_sign_.clear();

  {
    linalg::LuFactorization::Options lu_opts;
    lu_opts.max_updates = options_.refactor_interval;
    lu_ = linalg::LuFactorization(lu_opts);
  }

  lower_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  upper_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  for (int j = 0; j < n_; ++j) {
    lower_[j] = model.col_lower()[j];
    upper_[j] = model.col_upper()[j];
  }
  for (int i = 0; i < m_; ++i) {
    lower_[n_ + i] = model.row_lower()[i];
    upper_[n_ + i] = model.row_upper()[i];
  }

  // A warm basis is accepted only after full verification: the statuses
  // must restore (try_warm_start), the restored basis must be nonsingular
  // (refactorize), and the implied basic point must be primal feasible —
  // phase 1 is skipped for warm starts, so an out-of-bounds basic variable
  // would otherwise corrupt the phase 2 invariant silently. Any failure
  // falls back to the cold start.
  bool started = false;
  if (warm && !warm->basis.empty()) {
    started = try_warm_start(*warm) && refactorize() && warm_point_feasible();
  }
  if (!started) {
    cold_start();
    if (!refactorize()) {
      Solution result;
      result.status = SolveStatus::kNumericalFailure;
      return result;
    }
  }

  const int total = total_variables();
  cost_.assign(static_cast<std::size_t>(total), 0.0);
  base_cost_.assign(static_cast<std::size_t>(total), 0.0);
  d_.assign(static_cast<std::size_t>(total), 0.0);
  devex_.assign(static_cast<std::size_t>(total), 1.0);
  work_y_.assign(static_cast<std::size_t>(m_), 0.0);
  work_w_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rho_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rhs_.assign(static_cast<std::size_t>(m_), 0.0);

  Solution result;
  result.warm_started = started;
  stat_degenerate_ = stat_flips_ = 0;
  recompute_basic_values();

  long iterations = 0;
  const long limit = options_.max_iterations >= 0
                         ? options_.max_iterations
                         : 2000 + 100L * (m_ + n_);

  auto finish = [&](SolveStatus status) {
    result.status = status;
    result.iterations = iterations;
    result.degenerate_pivots = stat_degenerate_;
    result.bound_flips = stat_flips_;
    result.x.assign(x_.begin(), x_.begin() + n_);
    if (status == SolveStatus::kOptimal ||
        status == SolveStatus::kIterationLimit ||
        status == SolveStatus::kDeadlineExceeded) {
      result.objective = model.objective_value(result.x);
      // Duals against the true costs.
      for (int i = 0; i < m_; ++i) work_y_[i] = base_cost_[basis_[i]];
      lu_.btran(work_y_);
      result.duals = work_y_;
      result.reduced_costs.resize(static_cast<std::size_t>(n_));
      for (int j = 0; j < n_; ++j) {
        result.reduced_costs[j] = base_cost_[j] - column_dot(j, work_y_);
      }
    }
    return result;
  };

  // A phase is first run with perturbed costs; both a claimed optimum and a
  // claimed unbounded ray are then re-verified against the true costs (the
  // perturbation gives flat directions a slope, so a zero-cost ray with an
  // infinite bound looks falsely unbounded).
  auto run_perturbed_phase = [&](unsigned seed) {
    apply_perturbation(seed);
    SolveStatus s = run_phase(&iterations, limit);
    if (s == SolveStatus::kOptimal || s == SolveStatus::kUnbounded) {
      remove_perturbation();
      s = run_phase(&iterations, limit);
    }
    return s;
  };

  // ---- Phase 1: drive the artificials to zero.
  if (!art_row_.empty()) {
    for (std::size_t k = 0; k < art_row_.size(); ++k) base_cost_[n_ + m_ + k] = 1.0;
    phase1_stop_when_feasible_ = true;
    const SolveStatus s1 = run_perturbed_phase(0x9e3779b9u);
    phase1_stop_when_feasible_ = false;
    if (s1 == SolveStatus::kUnbounded || s1 == SolveStatus::kNumericalFailure) {
      return finish(SolveStatus::kNumericalFailure);
    }
    if (s1 == SolveStatus::kIterationLimit ||
        s1 == SolveStatus::kDeadlineExceeded) {
      return finish(s1);
    }
    result.phase1_iterations = iterations;

    double infeasibility = 0.0;
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      infeasibility += std::abs(x_[n_ + m_ + k]);
    }
    if (infeasibility > options_.feas_tol * (1.0 + infeasibility)) {
      return finish(SolveStatus::kInfeasible);
    }
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      const int aj = n_ + m_ + static_cast<int>(k);
      lower_[aj] = 0.0;
      upper_[aj] = 0.0;
      base_cost_[aj] = 0.0;
      if (vstat_[aj] != VarStatus::kBasic) x_[aj] = 0.0;
    }
    // Normalize the numerical state at the phase boundary: a fresh
    // factorization of the end-of-phase-1 basis and basic values recomputed
    // from it, exactly the state a verified warm start enters phase 2 with.
    // Without this, phase 2 starts from product-form-updated LU data and
    // iteratively-updated x, and warm-started solves diverge from cold ones
    // in the last ulp — breaking the cross-slot guarantee that warm starts
    // replay cold trajectories bit for bit.
    if (!refactorize()) return finish(SolveStatus::kNumericalFailure);
    recompute_basic_values();
  }

  // ---- Phase 2: true objective.
  for (int j = 0; j < n_; ++j) base_cost_[j] = model.objective()[j];
  for (int j = n_; j < total; ++j) base_cost_[j] = 0.0;
  return finish(run_perturbed_phase(0x7f4a7c15u));
}

void RevisedSimplex::apply_perturbation(unsigned seed) {
  cost_ = base_cost_;
  if (options_.perturbation <= 0.0) return;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.5, 1.0);
  for (int j = 0; j < total_variables(); ++j) {
    if (is_fixed(lower_[j], upper_[j])) continue;
    cost_[j] += options_.perturbation * (1.0 + std::abs(cost_[j])) * u(rng);
  }
}

void RevisedSimplex::remove_perturbation() { cost_ = base_cost_; }

bool RevisedSimplex::refactorize() {
  std::vector<linalg::Triplet> triplets;
  for (int i = 0; i < m_; ++i) {
    for_column(basis_[i], [&](int row, double v) {
      triplets.push_back({static_cast<linalg::Index>(row),
                          static_cast<linalg::Index>(i), v});
    });
  }
  const auto b = linalg::SparseMatrix::from_triplets(
      static_cast<linalg::Index>(m_), static_cast<linalg::Index>(m_), triplets);
  return lu_.factorize(b) == linalg::FactorStatus::kOk;
}

void RevisedSimplex::recompute_basic_values() {
  work_rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < total_variables(); ++j) {
    if (vstat_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
    const double xj = x_[j];
    for_column(j, [&](int i, double v) { work_rhs_[i] -= v * xj; });
  }
  lu_.ftran(work_rhs_);
  for (int i = 0; i < m_; ++i) x_[basis_[i]] = work_rhs_[i];
}

void RevisedSimplex::recompute_reduced_costs() {
  for (int i = 0; i < m_; ++i) work_y_[i] = cost_[basis_[i]];
  lu_.btran(work_y_);
  double cost_scale = 1.0;
  const int total = total_variables();
  for (int j = 0; j < total; ++j) {
    cost_scale = std::max(cost_scale, std::abs(cost_[j]));
    d_[j] = vstat_[j] == VarStatus::kBasic ? 0.0
                                           : cost_[j] - column_dot(j, work_y_);
  }
  dual_tol_ = options_.opt_tol * cost_scale;
}

double RevisedSimplex::violation(int j) const {
  if (vstat_[j] == VarStatus::kBasic || is_fixed(lower_[j], upper_[j])) {
    return 0.0;
  }
  switch (vstat_[j]) {
    case VarStatus::kAtLower: return -d_[j];
    case VarStatus::kAtUpper: return d_[j];
    case VarStatus::kFree: return std::abs(d_[j]);
    case VarStatus::kBasic: break;
  }
  return 0.0;
}

int RevisedSimplex::price() const {
  int best = -1;
  double best_score = 0.0;
  const int total = total_variables();
  for (int j = 0; j < total; ++j) {
    const double v = violation(j);
    if (v <= dual_tol_) continue;
    const double score = v * v / devex_[j];
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

RevisedSimplex::StepResult RevisedSimplex::iterate() {
  if (lu_.should_refactorize()) {
    if (!refactorize()) return StepResult::kNumericalFailure;
    recompute_basic_values();
    recompute_reduced_costs();
  }

  const int q = price();
  if (q < 0) return StepResult::kOptimal;

  const double dq = d_[q];
  double sigma;
  switch (vstat_[q]) {
    case VarStatus::kAtLower: sigma = 1.0; break;
    case VarStatus::kAtUpper: sigma = -1.0; break;
    default: sigma = dq < 0.0 ? 1.0 : -1.0; break;
  }

  // w = B^{-1} a_q.
  work_w_.assign(static_cast<std::size_t>(m_), 0.0);
  for_column(q, [&](int i, double v) { work_w_[i] = v; });
  lu_.ftran(work_w_);

  // ---- Harris two-pass ratio test.
  double t_flip = kInfinity;
  if (std::isfinite(lower_[q]) && std::isfinite(upper_[q])) {
    t_flip = upper_[q] - lower_[q];
  }
  // Pass 1: step limit with bounds relaxed by the feasibility tolerance.
  double t_max = t_flip;
  for (int i = 0; i < m_; ++i) {
    const double wbar = sigma * work_w_[i];
    if (std::abs(wbar) <= options_.pivot_tol) continue;
    const int bj = basis_[i];
    double t_rel;
    if (wbar > 0.0) {
      if (!std::isfinite(lower_[bj])) continue;
      const double tau = options_.feas_tol * (1.0 + std::abs(lower_[bj]));
      t_rel = (x_[bj] - lower_[bj] + tau) / wbar;
    } else {
      if (!std::isfinite(upper_[bj])) continue;
      const double tau = options_.feas_tol * (1.0 + std::abs(upper_[bj]));
      t_rel = (x_[bj] - upper_[bj] - tau) / wbar;
    }
    if (t_rel < 0.0) t_rel = 0.0;
    t_max = std::min(t_max, t_rel);
  }
  // Pass 2: largest pivot among candidates within the relaxed limit.
  int leave_pos = -1;
  double leave_pivot = 0.0;
  double t_exact_chosen = kInfinity;
  for (int i = 0; i < m_; ++i) {
    const double wbar = sigma * work_w_[i];
    if (std::abs(wbar) <= options_.pivot_tol) continue;
    const int bj = basis_[i];
    double t_exact;
    if (wbar > 0.0) {
      if (!std::isfinite(lower_[bj])) continue;
      t_exact = (x_[bj] - lower_[bj]) / wbar;
    } else {
      if (!std::isfinite(upper_[bj])) continue;
      t_exact = (x_[bj] - upper_[bj]) / wbar;
    }
    if (t_exact < 0.0) t_exact = 0.0;
    if (t_exact <= t_max && std::abs(wbar) > std::abs(leave_pivot)) {
      leave_pivot = wbar;
      leave_pos = i;
      t_exact_chosen = t_exact;
    }
  }

  if (leave_pos < 0 && !std::isfinite(t_flip)) return StepResult::kUnbounded;

  // Bound flip when it binds strictly before the best pivot candidate. On
  // an exact tie the pivot wins: in phase 1 the tie is structural (an
  // entering variable whose range equals the row's infeasibility), and
  // flipping would leave the artificial basic at zero — a different end
  // basis than the one warm starts reconstruct, which would break the
  // cold/warm trajectory equivalence.
  if (leave_pos < 0 || t_flip < t_exact_chosen) {
    const double t = t_flip;
    for (int i = 0; i < m_; ++i) {
      if (work_w_[i] != 0.0) x_[basis_[i]] -= sigma * t * work_w_[i];
    }
    x_[q] = vstat_[q] == VarStatus::kAtLower ? upper_[q] : lower_[q];
    vstat_[q] = vstat_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                 : VarStatus::kAtLower;
    ++stat_flips_;
    return StepResult::kStep;
  }

  // EXPAND-style anti-degeneracy: force a minimum step so the entering
  // variable always moves. The leaving variable overshoots its bound by at
  // most kMinStepFraction * feas_tol; it is snapped back below, and the tiny
  // conservation error is flushed by recompute_basic_values() at the next
  // refactorization. Without this, the time-expanded network LPs stall on
  // >90% degenerate pivots.
  const double min_step =
      0.01 * options_.feas_tol / std::abs(leave_pivot);
  const double t =
      std::min(std::max(t_exact_chosen, min_step), std::max(t_max, 0.0));
  if (t_exact_chosen <= 1e-12) ++stat_degenerate_;
  if (t != 0.0) {
    for (int i = 0; i < m_; ++i) {
      if (work_w_[i] != 0.0) x_[basis_[i]] -= sigma * t * work_w_[i];
    }
  }

  const int r = basis_[leave_pos];
  const double xq_new = x_[q] + sigma * t;
  if (leave_pivot > 0.0) {
    vstat_[r] = VarStatus::kAtLower;
    x_[r] = lower_[r];
  } else {
    vstat_[r] = VarStatus::kAtUpper;
    x_[r] = upper_[r];
  }
  basic_pos_[r] = -1;

  // ---- Pivot-row pass: update reduced costs and Devex weights.
  const double alpha_q = work_w_[leave_pos];
  work_rho_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rho_[leave_pos] = 1.0;
  lu_.btran(work_rho_);
  const double d_ratio = dq / alpha_q;
  const double devex_q = devex_[q];
  bool reset_devex = false;
  const int total = total_variables();
  for (int j = 0; j < total; ++j) {
    if (vstat_[j] == VarStatus::kBasic || j == q) continue;
    const double alpha_j = column_dot(j, work_rho_);
    if (alpha_j == 0.0) continue;
    d_[j] -= d_ratio * alpha_j;
    const double candidate = (alpha_j * alpha_j) / (alpha_q * alpha_q) * devex_q;
    if (candidate > devex_[j]) devex_[j] = candidate;
    if (devex_[j] > kDevexReset) reset_devex = true;
  }
  d_[r] = -d_ratio;
  devex_[r] = std::max(devex_q / (alpha_q * alpha_q), 1.0);
  if (devex_[r] > kDevexReset) reset_devex = true;

  vstat_[q] = VarStatus::kBasic;
  d_[q] = 0.0;
  basis_[leave_pos] = q;
  basic_pos_[q] = leave_pos;
  x_[q] = xq_new;

  if (reset_devex) std::fill(devex_.begin(), devex_.end(), 1.0);

  if (!lu_.update(work_w_, static_cast<linalg::Index>(leave_pos))) {
    if (!refactorize()) return StepResult::kNumericalFailure;
    recompute_basic_values();
    recompute_reduced_costs();
  }
  return StepResult::kStep;
}

SolveStatus RevisedSimplex::run_phase(long* iterations, long iteration_limit) {
  recompute_reduced_costs();
  std::fill(devex_.begin(), devex_.end(), 1.0);
  // Phase 1 exists only to reach feasibility: once every artificial sits
  // exactly at zero the basis is primal feasible and further pivots would
  // only chase the perturbed costs of structural variables — wasted work
  // that also makes the phase-1 end basis drift unpredictably (which would
  // break the cross-slot warm-start guarantee of replaying cold
  // trajectories exactly). The exact ==0 test is deliberate: a leaving
  // artificial is set to its bound exactly, while a lingering basic
  // artificial keeps phase 1 running as before.
  auto artificials_cleared = [&] {
    if (!phase1_stop_when_feasible_) return false;
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      if (x_[n_ + m_ + static_cast<int>(k)] != 0.0) return false;
    }
    return true;
  };
  while (*iterations < iteration_limit) {
    if (artificials_cleared()) return SolveStatus::kOptimal;
    // Cooperative cancellation: charge before pivoting, so an exhausted
    // budget stops at a consistent basic point (the last completed pivot).
    if (budget_ && !budget_->charge()) return SolveStatus::kDeadlineExceeded;
    const StepResult r = iterate();
    if (r == StepResult::kOptimal) return SolveStatus::kOptimal;
    ++*iterations;
    if (r == StepResult::kUnbounded) return SolveStatus::kUnbounded;
    if (r == StepResult::kNumericalFailure) return SolveStatus::kNumericalFailure;
  }
  return SolveStatus::kIterationLimit;
}

}  // namespace postcard::lp
