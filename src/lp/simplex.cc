#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace postcard::lp {

namespace {
constexpr double kDevexReset = 1e8;  // reference-weight cap before reset

bool is_fixed(double lo, double hi) {
  return std::isfinite(lo) && std::isfinite(hi) && hi - lo <= 0.0;
}
}  // namespace

namespace {
// Shared default classification used by both start paths: nonbasic at the
// bound nearest zero, or free at zero.
template <class Status>
void classify_default(double lo, double hi, Status& status, double& value,
                      Status at_lower, Status at_upper, Status free_status) {
  if (std::isfinite(lo) && (!std::isfinite(hi) || std::abs(lo) <= std::abs(hi))) {
    status = at_lower;
    value = lo;
  } else if (std::isfinite(hi)) {
    status = at_upper;
    value = hi;
  } else {
    status = free_status;
    value = 0.0;
  }
}
}  // namespace

void RevisedSimplex::cold_start() {
  art_row_.clear();
  art_sign_.clear();
  lower_.resize(static_cast<std::size_t>(n_ + m_));
  upper_.resize(static_cast<std::size_t>(n_ + m_));
  x_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  vstat_.assign(static_cast<std::size_t>(n_ + m_), VarStatus::kFree);
  basic_pos_.assign(static_cast<std::size_t>(n_ + m_), -1);
  for (int j = 0; j < n_; ++j) {
    classify_default(lower_[j], upper_[j], vstat_[j], x_[j],
                     VarStatus::kAtLower, VarStatus::kAtUpper, VarStatus::kFree);
  }

  linalg::Vector activity(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < n_; ++j) {
    if (x_[j] == 0.0) continue;
    for (linalg::Index p = a_.col_begin(j); p < a_.col_end(j); ++p) {
      activity[a_.row_idx()[p]] += a_.values()[p] * x_[j];
    }
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const int lj = n_ + i;
    const double g = activity[i];
    const double lo = lower_[lj], hi = upper_[lj];
    const double scale =
        1.0 + std::max(std::isfinite(lo) ? std::abs(lo) : 0.0,
                       std::isfinite(hi) ? std::abs(hi) : 0.0);
    if (g >= lo - options_.feas_tol * scale && g <= hi + options_.feas_tol * scale) {
      basis_[i] = lj;
      vstat_[lj] = VarStatus::kBasic;
      basic_pos_[lj] = i;
      x_[lj] = g;
      continue;
    }
    // Row infeasible at the starting point: logical pinned at its nearest
    // bound, artificial absorbs the residual and enters the basis. The row
    // reads a^T x - s + sign * t = 0, so sign = -1 absorbs a positive
    // residual (g > hi) and sign = +1 a negative one (g < lo).
    double sign, value;
    if (g > hi) {
      vstat_[lj] = VarStatus::kAtUpper;
      x_[lj] = hi;
      sign = -1.0;
      value = g - hi;
    } else {
      vstat_[lj] = VarStatus::kAtLower;
      x_[lj] = lo;
      sign = 1.0;
      value = lo - g;
    }
    art_row_.push_back(i);
    art_sign_.push_back(sign);
    const int aj = n_ + m_ + static_cast<int>(art_row_.size()) - 1;
    lower_.push_back(0.0);
    upper_.push_back(kInfinity);
    x_.push_back(value);
    vstat_.push_back(VarStatus::kBasic);
    basic_pos_.push_back(i);
    basis_[i] = aj;
  }
}

bool RevisedSimplex::try_warm_start(const WarmStart& warm) {
  static_assert(static_cast<signed char>(VarStatus::kBasic) == WarmStart::kBasic &&
                static_cast<signed char>(VarStatus::kAtLower) == WarmStart::kAtLower &&
                static_cast<signed char>(VarStatus::kAtUpper) == WarmStart::kAtUpper &&
                static_cast<signed char>(VarStatus::kFree) == WarmStart::kFree);
  if (warm.basis.size() != static_cast<std::size_t>(m_)) return false;
  if (warm.row_status.size() != static_cast<std::size_t>(m_)) return false;
  if (warm.col_status.size() > static_cast<std::size_t>(n_)) return false;

  art_row_.clear();
  art_sign_.clear();
  lower_.resize(static_cast<std::size_t>(n_ + m_));
  upper_.resize(static_cast<std::size_t>(n_ + m_));
  x_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  vstat_.assign(static_cast<std::size_t>(n_ + m_), VarStatus::kFree);
  basic_pos_.assign(static_cast<std::size_t>(n_ + m_), -1);

  // Defaults first (covers columns newer than the snapshot), then restore.
  for (int j = 0; j < n_; ++j) {
    classify_default(lower_[j], upper_[j], vstat_[j], x_[j],
                     VarStatus::kAtLower, VarStatus::kAtUpper, VarStatus::kFree);
  }
  auto restore = [&](int j, signed char saved) {
    const auto st = static_cast<VarStatus>(saved);
    switch (st) {
      case VarStatus::kAtLower:
        if (!std::isfinite(lower_[j])) return false;
        vstat_[j] = st;
        x_[j] = lower_[j];
        return true;
      case VarStatus::kAtUpper:
        if (!std::isfinite(upper_[j])) return false;
        vstat_[j] = st;
        x_[j] = upper_[j];
        return true;
      case VarStatus::kFree:
        vstat_[j] = st;
        x_[j] = 0.0;
        return true;
      case VarStatus::kBasic:
        vstat_[j] = st;  // value filled by recompute_basic_values()
        return true;
    }
    return false;
  };
  for (std::size_t j = 0; j < warm.col_status.size(); ++j) {
    if (!restore(static_cast<int>(j), warm.col_status[j])) return false;
  }
  for (int i = 0; i < m_; ++i) {
    if (!restore(n_ + i, warm.row_status[i])) return false;
  }

  basis_.assign(static_cast<std::size_t>(m_), -1);
  for (int i = 0; i < m_; ++i) {
    const int code = warm.basis[i];
    int var;
    if (code >= 0) {
      if (code >= n_) return false;
      var = code;
    } else {
      const int row = -code - 1;
      if (row < 0 || row >= m_) return false;
      var = n_ + row;
    }
    if (basic_pos_[var] >= 0) return false;  // duplicate basic variable
    if (vstat_[var] != VarStatus::kBasic) return false;
    basis_[i] = var;
    basic_pos_[var] = i;
  }
  // Every kBasic-status variable must actually sit in the basis.
  for (int j = 0; j < n_ + m_; ++j) {
    if (vstat_[j] == VarStatus::kBasic && basic_pos_[j] < 0) return false;
  }
  return true;
}

bool RevisedSimplex::warm_point_feasible() {
  recompute_basic_values();
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    const double lo = lower_[j], hi = upper_[j];
    const double scale =
        1.0 + std::max(std::isfinite(lo) ? std::abs(lo) : 0.0,
                       std::isfinite(hi) ? std::abs(hi) : 0.0);
    if (x_[j] < lo - options_.feas_tol * scale ||
        x_[j] > hi + options_.feas_tol * scale) {
      return false;
    }
  }
  return true;
}

RevisedSimplex::WarmStart RevisedSimplex::extract_warm_start() const {
  WarmStart w;
  if (basis_.empty() && m_ > 0) return w;
  w.col_status.resize(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j) {
    w.col_status[j] = static_cast<signed char>(vstat_[j]);
  }
  w.row_status.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    w.row_status[i] = static_cast<signed char>(vstat_[n_ + i]);
  }
  w.basis.resize(static_cast<std::size_t>(m_));
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[i];
    if (b < n_) {
      w.basis[i] = b;
    } else if (b < n_ + m_) {
      w.basis[i] = -(b - n_ + 1);
    } else {
      w.basis.clear();  // an artificial is still basic: snapshot unusable
      break;
    }
  }
  return w;
}

Solution RevisedSimplex::solve(const LpModel& model, const WarmStart* warm,
                               SolveBudget* budget) {
  budget_ = budget && budget->limited() ? budget : nullptr;
  a_ = model.build_matrix();
  matrix_entries_ = model.num_entries();
  n_ = model.num_variables();
  m_ = model.num_constraints();
  rebuild_rows();
  art_row_.clear();
  art_sign_.clear();

  {
    linalg::LuFactorization::Options lu_opts;
    lu_opts.max_updates = options_.refactor_interval;
    lu_ = linalg::LuFactorization(lu_opts);
  }

  lower_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  upper_.assign(static_cast<std::size_t>(n_ + m_), 0.0);
  for (int j = 0; j < n_; ++j) {
    lower_[j] = model.col_lower()[j];
    upper_[j] = model.col_upper()[j];
  }
  for (int i = 0; i < m_; ++i) {
    lower_[n_ + i] = model.row_lower()[i];
    upper_[n_ + i] = model.row_upper()[i];
  }

  // A warm basis is accepted only after full verification: the statuses
  // must restore (try_warm_start), the restored basis must be nonsingular
  // (refactorize), and the implied basic point must be primal feasible —
  // phase 1 is skipped for warm starts, so an out-of-bounds basic variable
  // would otherwise corrupt the phase 2 invariant silently. Any failure
  // falls back to the cold start.
  bool started = false;
  if (warm && !warm->basis.empty()) {
    started = try_warm_start(*warm) && refactorize() && warm_point_feasible();
  }
  if (!started) {
    cold_start();
    if (!refactorize()) {
      Solution result;
      result.status = SolveStatus::kNumericalFailure;
      last_status_ = result.status;
      return result;
    }
  }

  const int total = total_variables();
  cost_.assign(static_cast<std::size_t>(total), 0.0);
  base_cost_.assign(static_cast<std::size_t>(total), 0.0);
  d_.assign(static_cast<std::size_t>(total), 0.0);
  devex_.assign(static_cast<std::size_t>(total), 1.0);
  work_y_.assign(static_cast<std::size_t>(m_), 0.0);
  work_w_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rho_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rhs_.assign(static_cast<std::size_t>(m_), 0.0);

  stat_degenerate_ = stat_flips_ = 0;
  recompute_basic_values();

  long iterations = 0;
  long phase1_iterations = 0;
  const long limit = options_.max_iterations >= 0
                         ? options_.max_iterations
                         : 2000 + 100L * (m_ + n_);

  // ---- Phase 1: drive the artificials to zero.
  if (!art_row_.empty()) {
    for (std::size_t k = 0; k < art_row_.size(); ++k) base_cost_[n_ + m_ + k] = 1.0;
    phase1_stop_when_feasible_ = true;
    const SolveStatus s1 = run_perturbed_phase(0x9e3779b9u, &iterations, limit);
    phase1_stop_when_feasible_ = false;
    if (s1 == SolveStatus::kUnbounded || s1 == SolveStatus::kNumericalFailure) {
      return finish_solution(model, SolveStatus::kNumericalFailure, iterations,
                             phase1_iterations, started);
    }
    if (s1 == SolveStatus::kIterationLimit ||
        s1 == SolveStatus::kDeadlineExceeded) {
      return finish_solution(model, s1, iterations, phase1_iterations, started);
    }
    phase1_iterations = iterations;

    double infeasibility = 0.0;
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      infeasibility += std::abs(x_[n_ + m_ + k]);
    }
    if (infeasibility > options_.feas_tol * (1.0 + infeasibility)) {
      return finish_solution(model, SolveStatus::kInfeasible, iterations,
                             phase1_iterations, started);
    }
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      const int aj = n_ + m_ + static_cast<int>(k);
      lower_[aj] = 0.0;
      upper_[aj] = 0.0;
      base_cost_[aj] = 0.0;
      if (vstat_[aj] != VarStatus::kBasic) x_[aj] = 0.0;
    }
    // Normalize the numerical state at the phase boundary: a fresh
    // factorization of the end-of-phase-1 basis and basic values recomputed
    // from it, exactly the state a verified warm start enters phase 2 with.
    // Without this, phase 2 starts from product-form-updated LU data and
    // iteratively-updated x, and warm-started solves diverge from cold ones
    // in the last ulp — breaking the cross-slot guarantee that warm starts
    // replay cold trajectories bit for bit.
    if (!refactorize()) {
      return finish_solution(model, SolveStatus::kNumericalFailure, iterations,
                             phase1_iterations, started);
    }
    recompute_basic_values();
  }

  // ---- Phase 2: true objective.
  for (int j = 0; j < n_; ++j) base_cost_[j] = model.objective()[j];
  for (int j = n_; j < total; ++j) base_cost_[j] = 0.0;
  const SolveStatus s2 = run_perturbed_phase(0x7f4a7c15u, &iterations, limit);
  return finish_solution(model, s2, iterations, phase1_iterations, started);
}

Solution RevisedSimplex::finish_solution(const LpModel& model,
                                         SolveStatus status, long iterations,
                                         long phase1_iterations,
                                         bool warm_started) {
  Solution result;
  result.status = status;
  result.iterations = iterations;
  result.phase1_iterations = phase1_iterations;
  result.warm_started = warm_started;
  result.degenerate_pivots = stat_degenerate_;
  result.bound_flips = stat_flips_;
  result.x.assign(x_.begin(), x_.begin() + n_);
  if (status == SolveStatus::kOptimal ||
      status == SolveStatus::kIterationLimit ||
      status == SolveStatus::kDeadlineExceeded) {
    result.objective = model.objective_value(result.x);
    // Duals against the true costs.
    for (int i = 0; i < m_; ++i) work_y_[i] = base_cost_[basis_[i]];
    lu_.btran(work_y_);
    result.duals = work_y_;
    result.reduced_costs.resize(static_cast<std::size_t>(n_));
    for (int j = 0; j < n_; ++j) {
      result.reduced_costs[j] = base_cost_[j] - column_dot(j, work_y_);
    }
  }
  last_status_ = status;
  return result;
}

// A phase is first run with perturbed costs; both a claimed optimum and a
// claimed unbounded ray are then re-verified against the true costs (the
// perturbation gives flat directions a slope, so a zero-cost ray with an
// infinite bound looks falsely unbounded).
SolveStatus RevisedSimplex::run_perturbed_phase(unsigned seed,
                                                long* iterations,
                                                long iteration_limit) {
  apply_perturbation(seed);
  SolveStatus s = run_phase(iterations, iteration_limit);
  if (s == SolveStatus::kOptimal || s == SolveStatus::kUnbounded) {
    remove_perturbation();
    s = run_phase(iterations, iteration_limit);
  }
  return s;
}

bool RevisedSimplex::can_resume(const LpModel& model) const {
  if (last_status_ != SolveStatus::kOptimal) return false;
  if (m_ <= 0 || basis_.empty()) return false;
  if (model.num_constraints() != m_) return false;
  const int new_n = model.num_variables();
  if (new_n < n_) return false;
  // An artificial still basic (degenerate phase-1 leftover at zero) would
  // have to survive the resume; dropping to a cold start instead keeps the
  // resumed state artificial-free, matching what a round-to-round warm
  // start reconstructs.
  for (int i = 0; i < m_; ++i) {
    if (basis_[i] >= n_ + m_) return false;
  }
  // Appended columns must enter at value zero, or the incumbent basic
  // point (whose activities ignore them) would no longer be feasible.
  for (int j = n_; j < new_n; ++j) {
    const double lo = model.col_lower()[j];
    const double hi = model.col_upper()[j];
    VarStatus st;
    double value;
    classify_default(lo, hi, st, value, VarStatus::kAtLower,
                     VarStatus::kAtUpper, VarStatus::kFree);
    if (value != 0.0) return false;
  }
  return true;
}

Solution RevisedSimplex::resolve(const LpModel& model, SolveBudget* budget) {
  if (!can_resume(model)) return solve(model, nullptr, budget);
  budget_ = budget && budget->limited() ? budget : nullptr;

  const int old_n = n_;
  const int delta = model.num_variables() - old_n;
  n_ = model.num_variables();

  // Append only the entry triplets past the watermark: a column-generation
  // master grows strictly append-only, so rebuilding (and re-bucket-sorting)
  // the whole CSC matrix every round is wasted work. Any triplet that lands
  // in a pre-existing column falls back to the full rebuild.
  const auto& entries = model.entries();
  bool append_only = a_.rows() == m_ && a_.cols() == old_n &&
                     matrix_entries_ <= model.num_entries();
  for (std::size_t e = static_cast<std::size_t>(matrix_entries_);
       append_only && e < entries.size(); ++e) {
    if (entries[e].col < old_n) append_only = false;
  }
  if (append_only) {
    a_.append_columns(static_cast<linalg::Index>(delta), entries,
                      static_cast<std::size_t>(matrix_entries_));
  } else {
    a_ = model.build_matrix();
  }
  rebuild_rows();
  matrix_entries_ = model.num_entries();

  // Drop the (all-nonbasic, fixed-at-zero) artificials so the resumed
  // variable set matches what a round-to-round warm start would rebuild.
  art_row_.clear();
  art_sign_.clear();
  lower_.resize(static_cast<std::size_t>(old_n + m_));
  upper_.resize(static_cast<std::size_t>(old_n + m_));
  x_.resize(static_cast<std::size_t>(old_n + m_));
  vstat_.resize(static_cast<std::size_t>(old_n + m_));

  if (delta > 0) {
    // Shift the variable-indexed state: logicals move from old_n+i to n_+i.
    lower_.insert(lower_.begin() + old_n, static_cast<std::size_t>(delta), 0.0);
    upper_.insert(upper_.begin() + old_n, static_cast<std::size_t>(delta), 0.0);
    x_.insert(x_.begin() + old_n, static_cast<std::size_t>(delta), 0.0);
    vstat_.insert(vstat_.begin() + old_n, static_cast<std::size_t>(delta),
                  VarStatus::kFree);
    for (int j = old_n; j < n_; ++j) {
      lower_[j] = model.col_lower()[j];
      upper_[j] = model.col_upper()[j];
      classify_default(lower_[j], upper_[j], vstat_[j], x_[j],
                       VarStatus::kAtLower, VarStatus::kAtUpper,
                       VarStatus::kFree);
    }
    for (int i = 0; i < m_; ++i) {
      if (basis_[i] >= old_n) basis_[i] += delta;
    }
  }
  basic_pos_.assign(static_cast<std::size_t>(n_ + m_), -1);
  for (int i = 0; i < m_; ++i) basic_pos_[basis_[i]] = i;

  // The LU factorization and its product-form updates stay valid: the basis
  // holds only pre-existing structural columns and logicals, whose
  // coefficients are untouched by an append-only model change. Phase 1 is
  // unnecessary: the incumbent basic point (new columns at zero) is the
  // previous optimum, which is feasible.
  const int total = total_variables();
  cost_.assign(static_cast<std::size_t>(total), 0.0);
  base_cost_.assign(static_cast<std::size_t>(total), 0.0);
  d_.assign(static_cast<std::size_t>(total), 0.0);
  devex_.assign(static_cast<std::size_t>(total), 1.0);
  for (int j = 0; j < n_; ++j) base_cost_[j] = model.objective()[j];

  stat_degenerate_ = stat_flips_ = 0;
  long iterations = 0;
  const long limit = options_.max_iterations >= 0
                         ? options_.max_iterations
                         : 2000 + 100L * (m_ + n_);
  // A resume extends an already-optimal trajectory by a handful of pivots.
  // The perturb-then-verify cycle solve() runs (two full phase entries, each
  // re-deriving duals and reduced costs from scratch) would roughly double
  // the fixed cost of every master round for anti-degeneracy protection the
  // EXPAND minimum step already provides on these short tails — so a resume
  // prices the true costs directly in a single phase.
  cost_ = base_cost_;
  const SolveStatus s = run_phase(&iterations, limit);
  if (s == SolveStatus::kNumericalFailure) {
    // The resumed trajectory died (e.g. a refactorization of a drifted
    // basis failed); a cold solve rebuilds everything from scratch.
    return solve(model, nullptr, budget);
  }
  return finish_solution(model, s, iterations, 0, true);
}

void RevisedSimplex::apply_perturbation(unsigned seed) {
  cost_ = base_cost_;
  if (options_.perturbation <= 0.0) return;
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> u(0.5, 1.0);
  for (int j = 0; j < total_variables(); ++j) {
    if (is_fixed(lower_[j], upper_[j])) continue;
    cost_[j] += options_.perturbation * (1.0 + std::abs(cost_[j])) * u(rng);
  }
}

void RevisedSimplex::remove_perturbation() { cost_ = base_cost_; }

// Counting-sort transpose of a_. Column order within each row is ascending
// because the fill pass walks columns ascending, so the scatter in iterate()
// accumulates per-row contributions in exactly the order the old per-column
// gather did — the pass is bit-for-bit equivalent. O(nnz), cheap enough to
// rerun after every append.
void RevisedSimplex::rebuild_rows() {
  const auto& rows = a_.row_idx();
  const auto& vals = a_.values();
  const std::size_t nnz = vals.size();
  row_ptr_.assign(static_cast<std::size_t>(m_) + 1, 0);
  row_col_.resize(nnz);
  row_val_.resize(nnz);
  for (std::size_t p = 0; p < nnz; ++p) ++row_ptr_[rows[p] + 1];
  for (int i = 0; i < m_; ++i) row_ptr_[i + 1] += row_ptr_[i];
  std::vector<int> next(row_ptr_.begin(), row_ptr_.end() - 1);
  for (int j = 0; j < n_; ++j) {
    for (linalg::Index p = a_.col_begin(j); p < a_.col_end(j); ++p) {
      const int at = next[rows[p]]++;
      row_col_[at] = j;
      row_val_[at] = vals[p];
    }
  }
}

bool RevisedSimplex::refactorize() {
  std::vector<linalg::Triplet> triplets;
  for (int i = 0; i < m_; ++i) {
    for_column(basis_[i], [&](int row, double v) {
      triplets.push_back({static_cast<linalg::Index>(row),
                          static_cast<linalg::Index>(i), v});
    });
  }
  const auto b = linalg::SparseMatrix::from_triplets(
      static_cast<linalg::Index>(m_), static_cast<linalg::Index>(m_), triplets);
  return lu_.factorize(b) == linalg::FactorStatus::kOk;
}

void RevisedSimplex::recompute_basic_values() {
  work_rhs_.assign(static_cast<std::size_t>(m_), 0.0);
  for (int j = 0; j < total_variables(); ++j) {
    if (vstat_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
    const double xj = x_[j];
    for_column(j, [&](int i, double v) { work_rhs_[i] -= v * xj; });
  }
  lu_.ftran(work_rhs_);
  for (int i = 0; i < m_; ++i) x_[basis_[i]] = work_rhs_[i];
}

void RevisedSimplex::recompute_reduced_costs() {
  for (int i = 0; i < m_; ++i) work_y_[i] = cost_[basis_[i]];
  lu_.btran(work_y_);
  double cost_scale = 1.0;
  const int total = total_variables();
  for (int j = 0; j < total; ++j) {
    cost_scale = std::max(cost_scale, std::abs(cost_[j]));
    d_[j] = vstat_[j] == VarStatus::kBasic ? 0.0
                                           : cost_[j] - column_dot(j, work_y_);
  }
  dual_tol_ = options_.opt_tol * cost_scale;
}

double RevisedSimplex::violation(int j) const {
  if (vstat_[j] == VarStatus::kBasic || is_fixed(lower_[j], upper_[j])) {
    return 0.0;
  }
  switch (vstat_[j]) {
    case VarStatus::kAtLower: return -d_[j];
    case VarStatus::kAtUpper: return d_[j];
    case VarStatus::kFree: return std::abs(d_[j]);
    case VarStatus::kBasic: break;
  }
  return 0.0;
}

int RevisedSimplex::price() const {
  // Devex score is v^2 / devex_j; the argmax is taken division-free by
  // cross-multiplying (weights are positive), which keeps the scan at one
  // multiply per candidate.
  int best = -1;
  double best_v2 = 0.0;
  double best_w = 1.0;
  const int total = total_variables();
  for (int j = 0; j < total; ++j) {
    const double v = violation(j);
    if (v <= dual_tol_) continue;
    const double v2 = v * v;
    if (v2 * best_w > best_v2 * devex_[j]) {
      best_v2 = v2;
      best_w = devex_[j];
      best = j;
    }
  }
  return best;
}

RevisedSimplex::StepResult RevisedSimplex::iterate() {
  if (lu_.should_refactorize()) {
    if (!refactorize()) return StepResult::kNumericalFailure;
    recompute_basic_values();
    recompute_reduced_costs();
  }

  const int q = price();
  if (q < 0) return StepResult::kOptimal;

  const double dq = d_[q];
  double sigma;
  switch (vstat_[q]) {
    case VarStatus::kAtLower: sigma = 1.0; break;
    case VarStatus::kAtUpper: sigma = -1.0; break;
    default: sigma = dq < 0.0 ? 1.0 : -1.0; break;
  }

  // w = B^{-1} a_q.
  work_w_.assign(static_cast<std::size_t>(m_), 0.0);
  for_column(q, [&](int i, double v) { work_w_[i] = v; });
  lu_.ftran(work_w_);

  // ---- Harris two-pass ratio test.
  double t_flip = kInfinity;
  if (std::isfinite(lower_[q]) && std::isfinite(upper_[q])) {
    t_flip = upper_[q] - lower_[q];
  }
  // Pass 1: step limit with bounds relaxed by the feasibility tolerance.
  double t_max = t_flip;
  for (int i = 0; i < m_; ++i) {
    const double wbar = sigma * work_w_[i];
    if (std::abs(wbar) <= options_.pivot_tol) continue;
    const int bj = basis_[i];
    double t_rel;
    if (wbar > 0.0) {
      if (!std::isfinite(lower_[bj])) continue;
      const double tau = options_.feas_tol * (1.0 + std::abs(lower_[bj]));
      t_rel = (x_[bj] - lower_[bj] + tau) / wbar;
    } else {
      if (!std::isfinite(upper_[bj])) continue;
      const double tau = options_.feas_tol * (1.0 + std::abs(upper_[bj]));
      t_rel = (x_[bj] - upper_[bj] - tau) / wbar;
    }
    if (t_rel < 0.0) t_rel = 0.0;
    t_max = std::min(t_max, t_rel);
  }
  // Pass 2: largest pivot among candidates within the relaxed limit.
  int leave_pos = -1;
  double leave_pivot = 0.0;
  double t_exact_chosen = kInfinity;
  for (int i = 0; i < m_; ++i) {
    const double wbar = sigma * work_w_[i];
    if (std::abs(wbar) <= options_.pivot_tol) continue;
    const int bj = basis_[i];
    double t_exact;
    if (wbar > 0.0) {
      if (!std::isfinite(lower_[bj])) continue;
      t_exact = (x_[bj] - lower_[bj]) / wbar;
    } else {
      if (!std::isfinite(upper_[bj])) continue;
      t_exact = (x_[bj] - upper_[bj]) / wbar;
    }
    if (t_exact < 0.0) t_exact = 0.0;
    if (t_exact <= t_max && std::abs(wbar) > std::abs(leave_pivot)) {
      leave_pivot = wbar;
      leave_pos = i;
      t_exact_chosen = t_exact;
    }
  }

  if (leave_pos < 0 && !std::isfinite(t_flip)) return StepResult::kUnbounded;

  // Bound flip when it binds strictly before the best pivot candidate. On
  // an exact tie the pivot wins: in phase 1 the tie is structural (an
  // entering variable whose range equals the row's infeasibility), and
  // flipping would leave the artificial basic at zero — a different end
  // basis than the one warm starts reconstruct, which would break the
  // cold/warm trajectory equivalence.
  if (leave_pos < 0 || t_flip < t_exact_chosen) {
    const double t = t_flip;
    for (int i = 0; i < m_; ++i) {
      if (work_w_[i] != 0.0) x_[basis_[i]] -= sigma * t * work_w_[i];
    }
    x_[q] = vstat_[q] == VarStatus::kAtLower ? upper_[q] : lower_[q];
    vstat_[q] = vstat_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                 : VarStatus::kAtLower;
    ++stat_flips_;
    return StepResult::kStep;
  }

  // EXPAND-style anti-degeneracy: force a minimum step so the entering
  // variable always moves. The leaving variable overshoots its bound by at
  // most kMinStepFraction * feas_tol; it is snapped back below, and the tiny
  // conservation error is flushed by recompute_basic_values() at the next
  // refactorization. Without this, the time-expanded network LPs stall on
  // >90% degenerate pivots.
  const double min_step =
      0.01 * options_.feas_tol / std::abs(leave_pivot);
  const double t =
      std::min(std::max(t_exact_chosen, min_step), std::max(t_max, 0.0));
  if (t_exact_chosen <= 1e-12) ++stat_degenerate_;
  if (t != 0.0) {
    for (int i = 0; i < m_; ++i) {
      if (work_w_[i] != 0.0) x_[basis_[i]] -= sigma * t * work_w_[i];
    }
  }

  const int r = basis_[leave_pos];
  const double xq_new = x_[q] + sigma * t;
  if (leave_pivot > 0.0) {
    vstat_[r] = VarStatus::kAtLower;
    x_[r] = lower_[r];
  } else {
    vstat_[r] = VarStatus::kAtUpper;
    x_[r] = upper_[r];
  }
  basic_pos_[r] = -1;

  // ---- Pivot-row pass: update reduced costs and Devex weights.
  const double alpha_q = work_w_[leave_pos];
  work_rho_.assign(static_cast<std::size_t>(m_), 0.0);
  work_rho_[leave_pos] = 1.0;
  lu_.btran(work_rho_);
  const double d_ratio = dq / alpha_q;
  const double devex_q = devex_[q];
  bool reset_devex = false;
  const int total = total_variables();
  // Assemble the pivot row alpha = rho^T [A | -I | art] by scattering the
  // nonzeros of rho across the matrix rows they touch — O(nnz of the rows
  // rho hits) instead of a dot product against every column. Rows scatter
  // in ascending index, so each alpha_j accumulates its terms in exactly
  // the order column_dot would: the results are bit-for-bit identical.
  work_alpha_.assign(static_cast<std::size_t>(total), 0.0);
  for (int i = 0; i < m_; ++i) {
    const double rho = work_rho_[i];
    if (rho == 0.0) continue;
    for (int p = row_ptr_[i]; p < row_ptr_[i + 1]; ++p) {
      work_alpha_[row_col_[p]] += row_val_[p] * rho;
    }
    work_alpha_[n_ + i] = -rho;
  }
  for (std::size_t k = 0; k < art_row_.size(); ++k) {
    work_alpha_[n_ + m_ + k] = art_sign_[k] * work_rho_[art_row_[k]];
  }
  for (int j = 0; j < total; ++j) {
    if (vstat_[j] == VarStatus::kBasic || j == q) continue;
    const double alpha_j = work_alpha_[j];
    if (alpha_j == 0.0) continue;
    d_[j] -= d_ratio * alpha_j;
    const double candidate = (alpha_j * alpha_j) / (alpha_q * alpha_q) * devex_q;
    if (candidate > devex_[j]) devex_[j] = candidate;
    if (devex_[j] > kDevexReset) reset_devex = true;
  }
  d_[r] = -d_ratio;
  devex_[r] = std::max(devex_q / (alpha_q * alpha_q), 1.0);
  if (devex_[r] > kDevexReset) reset_devex = true;

  vstat_[q] = VarStatus::kBasic;
  d_[q] = 0.0;
  basis_[leave_pos] = q;
  basic_pos_[q] = leave_pos;
  x_[q] = xq_new;

  if (reset_devex) std::fill(devex_.begin(), devex_.end(), 1.0);

  if (!lu_.update(work_w_, static_cast<linalg::Index>(leave_pos))) {
    if (!refactorize()) return StepResult::kNumericalFailure;
    recompute_basic_values();
    recompute_reduced_costs();
  }
  return StepResult::kStep;
}

SolveStatus RevisedSimplex::run_phase(long* iterations, long iteration_limit) {
  recompute_reduced_costs();
  std::fill(devex_.begin(), devex_.end(), 1.0);
  // Phase 1 exists only to reach feasibility: once every artificial sits
  // exactly at zero the basis is primal feasible and further pivots would
  // only chase the perturbed costs of structural variables — wasted work
  // that also makes the phase-1 end basis drift unpredictably (which would
  // break the cross-slot warm-start guarantee of replaying cold
  // trajectories exactly). The exact ==0 test is deliberate: a leaving
  // artificial is set to its bound exactly, while a lingering basic
  // artificial keeps phase 1 running as before.
  auto artificials_cleared = [&] {
    if (!phase1_stop_when_feasible_) return false;
    for (std::size_t k = 0; k < art_row_.size(); ++k) {
      if (x_[n_ + m_ + static_cast<int>(k)] != 0.0) return false;
    }
    return true;
  };
  while (*iterations < iteration_limit) {
    if (artificials_cleared()) return SolveStatus::kOptimal;
    // Cooperative cancellation: charge before pivoting, so an exhausted
    // budget stops at a consistent basic point (the last completed pivot).
    if (budget_ && !budget_->charge()) return SolveStatus::kDeadlineExceeded;
    const StepResult r = iterate();
    if (r == StepResult::kOptimal) return SolveStatus::kOptimal;
    ++*iterations;
    if (r == StepResult::kUnbounded) return SolveStatus::kUnbounded;
    if (r == StepResult::kNumericalFailure) return SolveStatus::kNumericalFailure;
  }
  return SolveStatus::kIterationLimit;
}

}  // namespace postcard::lp
