// Presolve: cheap, exact reductions applied before the LP algorithms.
//
// Implemented reductions (iterated to a fixpoint):
//   * fixed variables (lower == upper) are substituted into rows,
//   * empty rows are checked for feasibility and dropped,
//   * singleton rows are converted into variable bound tightenings,
//   * empty columns are fixed at their objective-optimal bound.
//
// Postsolve restores a full-length primal vector. Duals for *removed* rows
// are reported as zero; this is exact for empty rows but a best-effort
// convention for singleton rows whose implied bound is active. Postcard's
// algorithms only consume primal solutions and objective values.
#pragma once

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/status.h"

namespace postcard::lp {

class Presolver {
 public:
  /// Outcome of a presolve pass. When `decided` is set, the original model
  /// was solved (or proved infeasible/unbounded) outright by the reductions
  /// and `reduced` must not be solved.
  struct Result {
    std::optional<SolveStatus> decided;
    LpModel reduced;
  };

  /// Reduces `model`. The presolver instance keeps the reduction stack needed
  /// by postsolve(), so it must outlive the solve of the reduced model.
  Result reduce(const LpModel& model);

  /// Maps a solution of the reduced model back onto the original model.
  Solution postsolve(const LpModel& original, const Solution& reduced) const;

  int removed_rows() const { return removed_rows_; }
  int removed_cols() const { return removed_cols_; }

 private:
  // Original-index bookkeeping captured during reduce().
  std::vector<int> col_map_;        // original col -> reduced col or -1
  std::vector<int> row_map_;        // original row -> reduced row or -1
  std::vector<double> fixed_value_; // original col -> value if removed
  int removed_rows_ = 0;
  int removed_cols_ = 0;
};

}  // namespace postcard::lp
