#include "lp/mps.h"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace postcard::lp {

namespace {

std::string row_name(int i) { return "R" + std::to_string(i); }
std::string col_name(int j) { return "C" + std::to_string(j); }

struct RowKind {
  char type;      // 'E', 'L', 'G', or 'N' (free row)
  double rhs;     // canonical right-hand side
  double range;   // 0 when not ranged
};

/// Classifies a model row into MPS row type + RHS + RANGES entry.
RowKind classify(double lo, double hi) {
  const bool has_lo = std::isfinite(lo);
  const bool has_hi = std::isfinite(hi);
  if (has_lo && has_hi) {
    if (hi - lo == 0.0) return {'E', lo, 0.0};
    return {'L', hi, hi - lo};  // L row with a range covers [lo, hi]
  }
  if (has_hi) return {'L', hi, 0.0};
  if (has_lo) return {'G', lo, 0.0};
  return {'N', 0.0, 0.0};
}

}  // namespace

void write_mps(const LpModel& model, std::ostream& out, const std::string& name) {
  out << "NAME " << name << "\n";
  out << "ROWS\n";
  out << " N COST\n";
  std::vector<RowKind> kinds;
  kinds.reserve(model.num_constraints());
  for (int i = 0; i < model.num_constraints(); ++i) {
    const RowKind k = classify(model.row_lower()[i], model.row_upper()[i]);
    kinds.push_back(k);
    out << ' ' << k.type << ' ' << row_name(i) << "\n";
  }

  // COLUMNS needs entries grouped per column: go through the CSC matrix.
  const linalg::SparseMatrix a = model.build_matrix();
  out << "COLUMNS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const double c = model.objective()[j];
    if (c != 0.0) {
      out << "    " << col_name(j) << " COST " << c << "\n";
    }
    for (linalg::Index p = a.col_begin(j); p < a.col_end(j); ++p) {
      out << "    " << col_name(j) << ' ' << row_name(a.row_idx()[p]) << ' '
          << a.values()[p] << "\n";
    }
  }

  out << "RHS\n";
  for (int i = 0; i < model.num_constraints(); ++i) {
    if (kinds[i].type != 'N' && kinds[i].rhs != 0.0) {
      out << "    RHS1 " << row_name(i) << ' ' << kinds[i].rhs << "\n";
    }
  }
  bool any_range = false;
  for (const RowKind& k : kinds) any_range |= k.range != 0.0;
  if (any_range) {
    out << "RANGES\n";
    for (int i = 0; i < model.num_constraints(); ++i) {
      if (kinds[i].range != 0.0) {
        out << "    RNG1 " << row_name(i) << ' ' << kinds[i].range << "\n";
      }
    }
  }

  out << "BOUNDS\n";
  for (int j = 0; j < model.num_variables(); ++j) {
    const double lo = model.col_lower()[j];
    const double hi = model.col_upper()[j];
    const bool has_lo = std::isfinite(lo);
    const bool has_hi = std::isfinite(hi);
    if (has_lo && has_hi && hi - lo == 0.0) {
      out << " FX BND1 " << col_name(j) << ' ' << lo << "\n";
      continue;
    }
    if (!has_lo && !has_hi) {
      out << " FR BND1 " << col_name(j) << "\n";
      continue;
    }
    if (!has_lo) {
      out << " MI BND1 " << col_name(j) << "\n";
    } else if (lo != 0.0) {
      out << " LO BND1 " << col_name(j) << ' ' << lo << "\n";
    }
    if (has_hi) {
      out << " UP BND1 " << col_name(j) << ' ' << hi << "\n";
    }
  }
  out << "ENDATA\n";
}

namespace {

struct Tokenized {
  std::vector<std::string> tokens;
  bool section_header = false;  // token started in column 1
};

bool next_line(std::istream& in, Tokenized& out, int& line_no) {
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line[0] == '*') continue;  // comment
    std::istringstream ss(line);
    out.tokens.clear();
    std::string tok;
    while (ss >> tok) out.tokens.push_back(tok);
    if (out.tokens.empty()) continue;
    out.section_header = !line.empty() && line[0] != ' ' && line[0] != '\t';
    return true;
  }
  return false;
}

[[noreturn]] void fail(int line_no, const std::string& what) {
  throw std::runtime_error("MPS line " + std::to_string(line_no) + ": " + what);
}

double parse_number(const std::string& tok, int line_no) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size()) fail(line_no, "malformed number '" + tok + "'");
    return v;
  } catch (const std::logic_error&) {
    fail(line_no, "malformed number '" + tok + "'");
  }
}

}  // namespace

LpModel read_mps(std::istream& in) {
  enum class Section { kNone, kRows, kColumns, kRhs, kRanges, kBounds, kDone };
  Section section = Section::kNone;
  int line_no = 0;

  std::string objective_row;
  std::map<std::string, int> rows;  // constraint rows only
  std::map<std::string, int> cols;
  // Deferred data: the LpModel is assembled at the end so bounds/RHS can
  // arrive in any order.
  struct ColData {
    double objective = 0.0;
    double lo = 0.0, hi = kInfinity;
    bool lo_set = false, hi_set = false;
    std::vector<std::pair<int, double>> entries;
  };
  std::vector<ColData> col_data;
  std::vector<char> types;
  std::vector<double> rhs;
  std::vector<double> range;

  Tokenized t;
  while (next_line(in, t, line_no)) {
    if (t.section_header) {
      const std::string& head = t.tokens[0];
      if (head == "NAME") {
        continue;
      } else if (head == "ROWS") {
        section = Section::kRows;
      } else if (head == "COLUMNS") {
        section = Section::kColumns;
      } else if (head == "RHS") {
        section = Section::kRhs;
      } else if (head == "RANGES") {
        section = Section::kRanges;
      } else if (head == "BOUNDS") {
        section = Section::kBounds;
      } else if (head == "ENDATA") {
        section = Section::kDone;
        break;
      } else {
        fail(line_no, "unknown section '" + head + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kRows: {
        if (t.tokens.size() != 2) fail(line_no, "ROWS entry needs 'type name'");
        const char type = static_cast<char>(std::toupper(t.tokens[0][0]));
        const std::string& rname = t.tokens[1];
        if (type == 'N') {
          if (objective_row.empty()) objective_row = rname;
          // additional free rows are ignored (standard practice)
          break;
        }
        if (type != 'E' && type != 'L' && type != 'G') {
          fail(line_no, "unknown row type");
        }
        if (rows.count(rname)) fail(line_no, "duplicate row '" + rname + "'");
        rows[rname] = static_cast<int>(types.size());
        types.push_back(type);
        rhs.push_back(0.0);
        range.push_back(0.0);
        break;
      }
      case Section::kColumns: {
        // "col row value [row value]"
        if (t.tokens.size() < 3 || t.tokens.size() % 2 == 0) {
          fail(line_no, "COLUMNS entry needs 'col row value [row value]'");
        }
        const std::string& cname = t.tokens[0];
        auto [it, inserted] = cols.try_emplace(cname, static_cast<int>(col_data.size()));
        if (inserted) col_data.emplace_back();
        ColData& cd = col_data[it->second];
        for (std::size_t k = 1; k + 1 < t.tokens.size(); k += 2) {
          const std::string& rname = t.tokens[k];
          const double value = parse_number(t.tokens[k + 1], line_no);
          if (rname == objective_row) {
            cd.objective += value;
          } else {
            const auto rit = rows.find(rname);
            if (rit == rows.end()) fail(line_no, "unknown row '" + rname + "'");
            cd.entries.emplace_back(rit->second, value);
          }
        }
        break;
      }
      case Section::kRhs: {
        if (t.tokens.size() < 3 || t.tokens.size() % 2 == 0) {
          fail(line_no, "RHS entry needs 'set row value [row value]'");
        }
        for (std::size_t k = 1; k + 1 < t.tokens.size(); k += 2) {
          if (t.tokens[k] == objective_row) continue;  // objective offset: skip
          const auto rit = rows.find(t.tokens[k]);
          if (rit == rows.end()) fail(line_no, "unknown row '" + t.tokens[k] + "'");
          rhs[rit->second] = parse_number(t.tokens[k + 1], line_no);
        }
        break;
      }
      case Section::kRanges: {
        if (t.tokens.size() < 3 || t.tokens.size() % 2 == 0) {
          fail(line_no, "RANGES entry needs 'set row value [row value]'");
        }
        for (std::size_t k = 1; k + 1 < t.tokens.size(); k += 2) {
          const auto rit = rows.find(t.tokens[k]);
          if (rit == rows.end()) fail(line_no, "unknown row '" + t.tokens[k] + "'");
          range[rit->second] = parse_number(t.tokens[k + 1], line_no);
        }
        break;
      }
      case Section::kBounds: {
        if (t.tokens.size() < 3) fail(line_no, "BOUNDS entry too short");
        const std::string kind = t.tokens[0];
        const std::string& cname = t.tokens[2];
        const auto cit = cols.find(cname);
        if (cit == cols.end()) fail(line_no, "unknown column '" + cname + "'");
        ColData& cd = col_data[cit->second];
        auto value = [&]() {
          if (t.tokens.size() < 4) fail(line_no, kind + " bound needs a value");
          return parse_number(t.tokens[3], line_no);
        };
        if (kind == "LO") {
          cd.lo = value();
          cd.lo_set = true;
        } else if (kind == "UP") {
          cd.hi = value();
          cd.hi_set = true;
        } else if (kind == "FX") {
          cd.lo = cd.hi = value();
          cd.lo_set = cd.hi_set = true;
        } else if (kind == "FR") {
          cd.lo = -kInfinity;
          cd.hi = kInfinity;
          cd.lo_set = cd.hi_set = true;
        } else if (kind == "MI") {
          cd.lo = -kInfinity;
          cd.lo_set = true;
        } else if (kind == "PL") {
          cd.hi = kInfinity;
          cd.hi_set = true;
        } else {
          fail(line_no, "unsupported bound type '" + kind + "'");
        }
        break;
      }
      case Section::kNone:
      case Section::kDone:
        fail(line_no, "data outside any section");
    }
  }
  if (section != Section::kDone) {
    fail(line_no, "missing ENDATA");
  }

  // Assemble the model: rows first (bounds from type/rhs/range), then cols.
  LpModel model;
  for (std::size_t i = 0; i < types.size(); ++i) {
    double lo, hi;
    const double r = range[i];
    switch (types[i]) {
      case 'E':
        lo = rhs[i] + std::min(0.0, r);
        hi = rhs[i] + std::max(0.0, r);
        break;
      case 'L':
        hi = rhs[i];
        lo = r != 0.0 ? rhs[i] - std::abs(r) : -kInfinity;
        break;
      default:  // 'G'
        lo = rhs[i];
        hi = r != 0.0 ? rhs[i] + std::abs(r) : kInfinity;
        break;
    }
    model.add_constraint(lo, hi);
  }
  // Columns must be added in index order (cols map is name-ordered).
  std::vector<const std::string*> by_index(col_data.size());
  for (const auto& [cname, j] : cols) by_index[j] = &cname;
  for (std::size_t j = 0; j < col_data.size(); ++j) {
    const ColData& cd = col_data[j];
    const int var = model.add_variable(cd.lo, cd.hi, cd.objective, *by_index[j]);
    for (const auto& [row, value] : cd.entries) {
      model.add_coefficient(row, var, value);
    }
  }
  return model;
}

}  // namespace postcard::lp
