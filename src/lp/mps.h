// MPS model interchange (free format).
//
// Lets the LP substrate talk to the rest of the optimization world: models
// built by LpModel can be dumped for debugging with external solvers, and
// externally produced MPS files can be solved by this library. Supported
// sections: NAME, ROWS (N/E/L/G), COLUMNS, RHS, RANGES, BOUNDS
// (LO/UP/FX/FR/MI/PL), ENDATA. Continuous variables only; the first N row
// is the objective. Row/column identifiers are generated on write (R0, R1,
// ... / C0, C1, ...) since LpModel names are optional and not unique.
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.h"

namespace postcard::lp {

/// Writes `model` as free-format MPS.
void write_mps(const LpModel& model, std::ostream& out,
               const std::string& name = "POSTCARD");

/// Parses a free-format MPS stream. Throws std::runtime_error with a line
/// number on malformed input.
LpModel read_mps(std::istream& in);

}  // namespace postcard::lp
