// Bounded-variable two-phase revised simplex.
//
// The model  min c^T x,  rl <= Ax <= ru,  l <= x <= u  is solved in the
// computational form  [A | -I] [x; s] = 0,  l <= x <= u,  rl <= s <= ru:
// every row gets a logical variable equal to its activity. Phase 1 appends
// one artificial (+/- unit column) per infeasible row and minimizes their
// sum; phase 2 minimizes the true objective from the feasible basis.
//
// Techniques (the network LPs Postcard produces are massively degenerate,
// so the textbook Dantzig iteration stalls):
//   * Devex pricing (Forrest-Goldfarb reference weights), with reduced
//     costs maintained incrementally from the pivot row and recomputed at
//     every refactorization,
//   * two-pass Harris ratio test: pass one relaxes bounds by the feasibility
//     tolerance to find the step limit, pass two picks the largest pivot
//     among the candidates within it,
//   * deterministic cost perturbation per phase (removed before reporting;
//     optimality is re-verified against the true costs and iterations resume
//     if the perturbation changed the answer),
//   * sparse LU basis (linalg::LuFactorization) with product-form updates
//     and periodic refactorization.
#pragma once

#include <utility>
#include <vector>

#include "linalg/lu.h"
#include "lp/budget.h"
#include "lp/model.h"
#include "lp/status.h"

namespace postcard::lp {

class RevisedSimplex {
 public:
  struct Options {
    double feas_tol = 1e-7;    // bound violation tolerance
    double opt_tol = 1e-7;     // reduced-cost tolerance
    double pivot_tol = 1e-7;   // smallest |w_i| eligible in the ratio test
    double perturbation = 1e-7;  // relative cost perturbation (0 disables)
    long max_iterations = -1;  // -1: 2000 + 100 * (rows + cols)
    int refactor_interval = 100;
  };

  /// Basis snapshot for warm starts. Valid to reuse on a model with the SAME
  /// rows (same bounds and coefficients for existing columns) and possibly
  /// MORE columns appended at the end — the column-generation pattern. An
  /// empty `basis` means "no usable snapshot". Snapshots may also be
  /// constructed externally (the cross-slot remap in core/column_generation
  /// does); solve() verifies nonsingularity and primal feasibility before
  /// trusting any snapshot, so a stale or hand-built basis can only cost a
  /// cold fallback, never a wrong answer.
  struct WarmStart {
    /// Status codes stored in col_status/row_status (the solver's internal
    /// VarStatus encoding, public so external builders can speak it).
    static constexpr signed char kBasic = 0;
    static constexpr signed char kAtLower = 1;
    static constexpr signed char kAtUpper = 2;
    static constexpr signed char kFree = 3;

    std::vector<signed char> col_status;  // per structural column
    std::vector<signed char> row_status;  // per row (logical variable)
    // Per row: basic variable. Values >= 0 index structural columns;
    // value -(row+1) denotes the row's own logical.
    std::vector<int> basis;
  };

  RevisedSimplex() : RevisedSimplex(Options{}) {}
  explicit RevisedSimplex(Options options) : options_(options) {}

  /// Solves the model. When `warm` holds a basis compatible with the model
  /// — the statuses restore, the basis factorizes (nonsingular), and the
  /// implied basic point is primal feasible — phase 1 is skipped entirely;
  /// otherwise the solver falls back to the cold start. The path taken is
  /// reported in Solution::warm_started.
  ///
  /// `budget`, when non-null and limited, is charged one unit per pivot;
  /// on exhaustion the solve stops with kDeadlineExceeded and the best
  /// basic point reached so far (objective and duals are still reported).
  Solution solve(const LpModel& model, const WarmStart* warm = nullptr,
                 SolveBudget* budget = nullptr);

  /// True when resolve() can continue in place from the last solve on this
  /// object: it ended kOptimal, `model` has the same rows and at least as
  /// many columns (existing columns and row bounds unchanged — the caller's
  /// contract), every appended column starts at value zero (so the incumbent
  /// basic point stays feasible), and no artificial variable is still basic.
  bool can_resume(const LpModel& model) const;

  /// Hot restart for the column-generation inner loop: re-optimizes `model`
  /// from the incumbent basis, keeping the LU factorization and its
  /// product-form updates (the basis columns' coefficients are unchanged
  /// when columns are only appended), so no refactorization and no phase 1
  /// are paid. Falls back to a full cold solve() when can_resume() is false
  /// or the resumed run hits a numerical failure. The trajectory is
  /// deterministic but intentionally cheaper than solve()'s: the matrix is
  /// extended in place (append_columns) instead of rebuilt, and the short
  /// resumed tail prices the true costs in a single phase — no perturbation
  /// cycle, whose anti-degeneracy role the EXPAND minimum step covers.
  Solution resolve(const LpModel& model, SolveBudget* budget = nullptr);

  /// Captures the final basis of the last solve() for reuse. Returns an
  /// unusable (empty-basis) snapshot when an artificial variable is still
  /// basic or no solve has run.
  WarmStart extract_warm_start() const;

 private:
  enum class VarStatus : unsigned char { kBasic, kAtLower, kAtUpper, kFree };
  enum class StepResult { kStep, kOptimal, kUnbounded, kNumericalFailure };

  /// Visits the nonzero (row, value) entries of variable j's column in the
  /// computational matrix [A | -I | artificials].
  template <class Fn>
  void for_column(int j, Fn&& fn) const {
    if (j < n_) {
      for (linalg::Index p = a_.col_begin(j); p < a_.col_end(j); ++p) {
        fn(static_cast<int>(a_.row_idx()[p]), a_.values()[p]);
      }
    } else if (j < n_ + m_) {
      fn(j - n_, -1.0);
    } else {
      fn(art_row_[j - n_ - m_], art_sign_[j - n_ - m_]);
    }
  }

  double column_dot(int j, const linalg::Vector& y) const {
    double s = 0.0;
    for_column(j, [&](int i, double v) { s += v * y[i]; });
    return s;
  }

  bool refactorize();
  /// Installs statuses/basis from a snapshot; false when incompatible.
  bool try_warm_start(const WarmStart& warm);
  /// After a warm basis factorized: computes the implied basic values and
  /// verifies every basic variable sits within its bounds (phase 1 is
  /// skipped for warm starts, so an infeasible start must be rejected).
  bool warm_point_feasible();
  void cold_start();
  void recompute_basic_values();
  /// Recomputes duals y and the full reduced-cost vector d from scratch.
  void recompute_reduced_costs();
  /// Devex-scored entering variable, or -1 when dual-feasible.
  int price() const;
  StepResult iterate();
  SolveStatus run_phase(long* iterations, long iteration_limit);
  /// Runs one phase with perturbed costs, then re-verifies a claimed
  /// optimum/unbounded ray against the true costs (see solve()).
  SolveStatus run_perturbed_phase(unsigned seed, long* iterations,
                                  long iteration_limit);
  /// Assembles the Solution record from the final solver state (primal
  /// values, objective, duals, reduced costs) and records last_status_.
  Solution finish_solution(const LpModel& model, SolveStatus status,
                           long iterations, long phase1_iterations,
                           bool warm_started);
  void apply_perturbation(unsigned seed);
  void remove_perturbation();
  int total_variables() const {
    return n_ + m_ + static_cast<int>(art_row_.size());
  }
  /// Signed attractiveness of nonbasic j: positive means entering improves.
  double violation(int j) const;

  Options options_;
  SolveBudget* budget_ = nullptr;  // per-solve cancellation token, may be null
  // Outcome of the last solve()/resolve(); resolve() requires kOptimal.
  SolveStatus last_status_ = SolveStatus::kNumericalFailure;

  // Problem data in computational form.
  linalg::SparseMatrix a_;             // structural columns
  // Row-wise (CSR) view of a_: row i's (column, value) entries live at
  // [row_ptr_[i], row_ptr_[i+1]), columns ascending. Kept in lockstep with
  // a_ (rebuilt whenever it changes) so the pivot-row pass can scatter the
  // btran'd unit vector across the rows it actually touches instead of
  // gathering a dot product for every column.
  std::vector<int> row_ptr_, row_col_;
  std::vector<double> row_val_;
  // Model entry count already folded into a_; resolve() appends only the
  // triplets past this watermark instead of rebuilding the whole matrix.
  int matrix_entries_ = 0;
  int n_ = 0;                          // structural count
  int m_ = 0;                          // row count
  std::vector<int> art_row_;           // artificial -> row
  std::vector<double> art_sign_;       // artificial column value (+/-1)
  std::vector<double> cost_;           // current-phase (perturbed) costs
  std::vector<double> base_cost_;      // current-phase true costs
  std::vector<double> lower_, upper_;  // bounds, all variables

  // Basis state.
  std::vector<int> basis_;        // row position -> variable
  std::vector<VarStatus> vstat_;  // variable -> status
  std::vector<int> basic_pos_;    // variable -> row position or -1
  linalg::Vector x_;              // values of all variables
  linalg::LuFactorization lu_;

  // Pricing state.
  std::vector<double> d_;       // reduced costs, maintained incrementally
  std::vector<double> devex_;   // Devex reference weights
  double dual_tol_ = 1e-7;
  // Set during phase 1: run_phase() returns optimal as soon as every
  // artificial is exactly zero (feasibility is phase 1's only goal).
  bool phase1_stop_when_feasible_ = false;

  /// Rebuilds the CSR row view (row_ptr_/row_col_/row_val_) from a_.
  void rebuild_rows();

  // Scratch.
  linalg::Vector work_y_, work_w_, work_rho_, work_rhs_;
  linalg::Vector work_alpha_;  // pivot-row values, all variables
  long stat_degenerate_ = 0;
  long stat_flips_ = 0;
};

}  // namespace postcard::lp
