#include "lp/presolve.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace postcard::lp {

namespace {
constexpr double kFeasTol = 1e-9;
constexpr double kFixTol = 1e-12;
}  // namespace

Presolver::Result Presolver::reduce(const LpModel& model) {
  const int n = model.num_variables();
  const int m = model.num_constraints();
  const linalg::SparseMatrix a = model.build_matrix();   // columns
  const linalg::SparseMatrix at = a.transpose();         // rows

  std::vector<double> cl = model.col_lower();
  std::vector<double> cu = model.col_upper();
  std::vector<double> rl = model.row_lower();
  std::vector<double> ru = model.row_upper();

  std::vector<char> col_alive(static_cast<std::size_t>(n), 1);
  std::vector<char> row_alive(static_cast<std::size_t>(m), 1);
  fixed_value_.assign(static_cast<std::size_t>(n), 0.0);

  // Alive-entry counters maintained incrementally as the other side dies.
  std::vector<int> row_count(static_cast<std::size_t>(m), 0);
  std::vector<int> col_count(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < m; ++i) row_count[i] = at.col_end(i) - at.col_begin(i);
  for (int j = 0; j < n; ++j) col_count[j] = a.col_end(j) - a.col_begin(j);

  Result result;

  auto kill_column = [&](int j, double value) {
    col_alive[j] = 0;
    fixed_value_[j] = value;
    for (linalg::Index p = a.col_begin(j); p < a.col_end(j); ++p) {
      const int i = a.row_idx()[p];
      if (!row_alive[i]) continue;
      const double shift = a.values()[p] * value;
      if (std::isfinite(rl[i])) rl[i] -= shift;
      if (std::isfinite(ru[i])) ru[i] -= shift;
      --row_count[i];
    }
  };
  auto kill_row = [&](int i) {
    row_alive[i] = 0;
    for (linalg::Index p = at.col_begin(i); p < at.col_end(i); ++p) {
      const int j = at.row_idx()[p];
      if (col_alive[j]) --col_count[j];
    }
  };

  bool changed = true;
  for (int round = 0; round < 16 && changed; ++round) {
    changed = false;

    // Fixed variables.
    for (int j = 0; j < n; ++j) {
      if (!col_alive[j]) continue;
      if (std::isfinite(cl[j]) && std::isfinite(cu[j]) &&
          cu[j] - cl[j] <= kFixTol * (1.0 + std::abs(cl[j]))) {
        kill_column(j, 0.5 * (cl[j] + cu[j]));
        changed = true;
      }
    }

    // Empty and singleton rows.
    for (int i = 0; i < m; ++i) {
      if (!row_alive[i]) continue;
      if (row_count[i] == 0) {
        const double scale = 1.0 + std::max(std::isfinite(rl[i]) ? std::abs(rl[i]) : 0.0,
                                            std::isfinite(ru[i]) ? std::abs(ru[i]) : 0.0);
        if (rl[i] > kFeasTol * scale || ru[i] < -kFeasTol * scale) {
          result.decided = SolveStatus::kInfeasible;
          return result;
        }
        kill_row(i);
        changed = true;
      } else if (row_count[i] == 1) {
        // Locate the single alive entry.
        int j = -1;
        double coef = 0.0;
        for (linalg::Index p = at.col_begin(i); p < at.col_end(i); ++p) {
          if (col_alive[at.row_idx()[p]]) {
            j = at.row_idx()[p];
            coef = at.values()[p];
            break;
          }
        }
        assert(j >= 0);
        double lo, hi;
        if (coef > 0.0) {
          lo = std::isfinite(rl[i]) ? rl[i] / coef : -kInfinity;
          hi = std::isfinite(ru[i]) ? ru[i] / coef : kInfinity;
        } else {
          lo = std::isfinite(ru[i]) ? ru[i] / coef : -kInfinity;
          hi = std::isfinite(rl[i]) ? rl[i] / coef : kInfinity;
        }
        cl[j] = std::max(cl[j], lo);
        cu[j] = std::min(cu[j], hi);
        if (cl[j] > cu[j] + kFeasTol * (1.0 + std::abs(cl[j]))) {
          result.decided = SolveStatus::kInfeasible;
          return result;
        }
        // Repair tiny crossings introduced by the tolerance.
        if (cl[j] > cu[j]) cl[j] = cu[j];
        kill_row(i);
        changed = true;
      }
    }

    // Empty columns.
    for (int j = 0; j < n; ++j) {
      if (!col_alive[j] || col_count[j] != 0) continue;
      const double c = model.objective()[j];
      double value;
      if (c > kFeasTol) {
        if (!std::isfinite(cl[j])) {
          result.decided = SolveStatus::kUnbounded;
          return result;
        }
        value = cl[j];
      } else if (c < -kFeasTol) {
        if (!std::isfinite(cu[j])) {
          result.decided = SolveStatus::kUnbounded;
          return result;
        }
        value = cu[j];
      } else if (std::isfinite(cl[j]) && cl[j] <= 0.0 &&
                 (!std::isfinite(cu[j]) || cu[j] >= 0.0)) {
        value = 0.0;  // zero is inside the box
      } else if (std::isfinite(cl[j]) && cl[j] > 0.0) {
        value = cl[j];
      } else {
        value = std::isfinite(cu[j]) ? cu[j] : 0.0;
      }
      col_alive[j] = 0;
      fixed_value_[j] = value;
      changed = true;
    }
  }

  // Assemble the reduced model.
  col_map_.assign(static_cast<std::size_t>(n), -1);
  row_map_.assign(static_cast<std::size_t>(m), -1);
  for (int j = 0; j < n; ++j) {
    if (col_alive[j]) {
      col_map_[j] = result.reduced.add_variable(cl[j], cu[j], model.objective()[j]);
    }
  }
  for (int i = 0; i < m; ++i) {
    if (row_alive[i]) {
      row_map_[i] = result.reduced.add_constraint(rl[i], ru[i]);
    }
  }
  for (int j = 0; j < n; ++j) {
    if (!col_alive[j]) continue;
    for (linalg::Index p = a.col_begin(j); p < a.col_end(j); ++p) {
      const int i = a.row_idx()[p];
      if (row_alive[i]) {
        result.reduced.add_coefficient(row_map_[i], col_map_[j], a.values()[p]);
      }
    }
  }
  removed_rows_ = m - result.reduced.num_constraints();
  removed_cols_ = n - result.reduced.num_variables();
  return result;
}

Solution Presolver::postsolve(const LpModel& original,
                              const Solution& reduced) const {
  Solution full;
  full.status = reduced.status;
  full.iterations = reduced.iterations;
  const int n = original.num_variables();
  const int m = original.num_constraints();

  full.x.assign(static_cast<std::size_t>(n), 0.0);
  for (int j = 0; j < n; ++j) {
    full.x[j] = col_map_[j] >= 0 && col_map_[j] < static_cast<int>(reduced.x.size())
                    ? reduced.x[col_map_[j]]
                    : fixed_value_[j];
  }
  full.objective = original.objective_value(full.x);

  if (!reduced.duals.empty()) {
    full.duals.assign(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      if (row_map_[i] >= 0) full.duals[i] = reduced.duals[row_map_[i]];
    }
    full.reduced_costs.assign(static_cast<std::size_t>(n), 0.0);
    for (int j = 0; j < n; ++j) {
      full.reduced_costs[j] = original.objective()[j];
    }
    for (const linalg::Triplet& t : original.entries()) {
      full.reduced_costs[t.col] -= t.value * full.duals[t.row];
    }
  }
  return full;
}

}  // namespace postcard::lp
