// Unified entry point for solving LpModel instances.
//
// Dispatches to the revised simplex (default) or the Mehrotra interior-point
// method. The simplex returns vertex solutions, which Postcard's plan
// extraction prefers (sparser transfer schedules); the IPM is kept as an
// independent cross-check and for the solver ablation benchmark.
#pragma once

#include "lp/model.h"
#include "lp/status.h"

namespace postcard::lp {

enum class Method {
  kSimplex,
  kInteriorPoint,
};

struct SolverOptions {
  Method method = Method::kSimplex;
  double feas_tol = 1e-7;
  double opt_tol = 1e-7;
  long max_iterations = -1;  // -1: method-specific automatic limit
  bool presolve = true;
};

/// Solves the model with the selected method. Never throws on numerical
/// trouble; inspect Solution::status.
Solution solve(const LpModel& model, const SolverOptions& options = {});

}  // namespace postcard::lp
