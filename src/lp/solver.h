// Unified entry point for solving LpModel instances.
//
// Dispatches to the revised simplex (default) or the Mehrotra interior-point
// method. The simplex returns vertex solutions, which Postcard's plan
// extraction prefers (sparser transfer schedules); the IPM is kept as an
// independent cross-check and for the solver ablation benchmark.
#pragma once

#include "lp/budget.h"
#include "lp/model.h"
#include "lp/status.h"

namespace postcard::lp {

enum class Method {
  kSimplex,
  kInteriorPoint,
};

struct SolverOptions {
  Method method = Method::kSimplex;
  double feas_tol = 1e-7;
  double opt_tol = 1e-7;
  long max_iterations = -1;  // -1: method-specific automatic limit
  bool presolve = true;
};

/// Solves the model with the selected method. Never throws on numerical
/// trouble; inspect Solution::status. A limited `budget` is charged per
/// pivot/iteration; exhaustion yields kDeadlineExceeded with the best
/// iterate so far (postsolved like any interrupted solution).
Solution solve(const LpModel& model, const SolverOptions& options = {},
               SolveBudget* budget = nullptr);

}  // namespace postcard::lp
