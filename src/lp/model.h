// Row/column LP model builder.
//
// Represents  min c^T x  subject to  row_lower <= A x <= row_upper,
//                                    col_lower <=   x <= col_upper.
// Equalities are rows with row_lower == row_upper; one-sided rows use
// +/- lp::kInfinity. Coefficients are collected as triplets and frozen into
// a CSC matrix on demand.
#pragma once

#include <string>
#include <vector>

#include "linalg/sparse.h"
#include "lp/status.h"

namespace postcard::lp {

class LpModel {
 public:
  /// Adds a variable; returns its index. Bounds may be +/-kInfinity.
  int add_variable(double lower, double upper, double objective,
                   std::string name = {});

  /// Adds a constraint row; returns its index.
  int add_constraint(double lower, double upper, std::string name = {});

  /// Adds (or accumulates) coefficient A[row, col] += value.
  void add_coefficient(int row, int col, double value);

  /// Changes the objective coefficient of an existing variable.
  void set_objective(int col, double value) { objective_[col] = value; }
  /// Changes the bounds of an existing variable.
  void set_variable_bounds(int col, double lower, double upper);
  /// Changes the bounds of an existing row.
  void set_constraint_bounds(int row, double lower, double upper);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(row_lower_.size()); }
  int num_entries() const { return static_cast<int>(entries_.size()); }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& col_lower() const { return col_lower_; }
  const std::vector<double>& col_upper() const { return col_upper_; }
  const std::vector<double>& row_lower() const { return row_lower_; }
  const std::vector<double>& row_upper() const { return row_upper_; }
  const std::vector<linalg::Triplet>& entries() const { return entries_; }
  const std::string& variable_name(int col) const { return col_names_[col]; }
  const std::string& constraint_name(int row) const { return row_names_[row]; }

  /// Freezes the coefficient triplets into a CSC matrix
  /// (num_constraints x num_variables).
  linalg::SparseMatrix build_matrix() const;

  /// Evaluates c^T x for a full-length primal vector.
  double objective_value(const linalg::Vector& x) const;

  /// Maximum violation of row and column bounds at x (feasibility check).
  double max_violation(const linalg::Vector& x) const;

 private:
  std::vector<double> objective_;
  std::vector<double> col_lower_, col_upper_;
  std::vector<double> row_lower_, row_upper_;
  std::vector<std::string> col_names_, row_names_;
  std::vector<linalg::Triplet> entries_;
};

}  // namespace postcard::lp
