// Cooperative cancellation budget for the LP algorithms.
//
// Postcard's online controller must commit a plan every slot; a degenerate
// or numerically sick master that blocks past the slot boundary is worse
// than a suboptimal answer delivered on time (DCRoute makes the same
// argument for allocation latency). SolveBudget is the cancellation token
// every solver checks at pivot (simplex) or iteration (IPM) granularity:
// when it runs out the solver stops and reports kDeadlineExceeded with the
// best iterate reached so far instead of blocking.
//
// Two limits, combinable:
//   * pivot budget — a deterministic count of simplex pivots / IPM
//     iterations. Charging is pure arithmetic, so a replay with the same
//     budget exhausts at the same pivot and produces bit-for-bit identical
//     results (the runtime's deterministic-mode contract).
//   * wall-clock deadline — a steady_clock horizon for production, where
//     the real constraint is the slot boundary, not a pivot count.
//
// One budget is shared across every solve of a logical unit of work (all
// column-generation rounds and admission retries of one slot solve), so
// the unit as a whole respects the limit, not each solve individually.
// Not thread-safe: each concurrent solve task builds its own budget.
#pragma once

#include <chrono>

namespace postcard::lp {

class SolveBudget {
 public:
  SolveBudget() = default;

  /// Deterministic budget: at most `pivots` charges succeed. 0 exhausts on
  /// the first charge (useful to force an immediate degradation rung).
  static SolveBudget pivot_limit(long pivots) {
    SolveBudget b;
    b.set_pivot_limit(pivots);
    return b;
  }

  /// Wall-clock budget: charges fail once `seconds` have elapsed from now.
  static SolveBudget deadline(double seconds) {
    SolveBudget b;
    b.set_deadline_seconds(seconds);
    return b;
  }

  void set_pivot_limit(long pivots) { max_pivots_ = pivots < 0 ? -1 : pivots; }
  void set_deadline_seconds(double seconds) {
    if (seconds < 0.0) return;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }

  /// True when any limit is armed; an unlimited budget never exhausts.
  bool limited() const { return max_pivots_ >= 0 || has_deadline_; }

  /// Charges one pivot/iteration. Returns false when the budget is (now)
  /// exhausted; exhaustion is sticky and the failing unit of work is not
  /// performed by the caller.
  bool charge() {
    if (exhausted_) return false;
    if (max_pivots_ >= 0 && charged_ >= max_pivots_) {
      exhausted_ = true;
      return false;
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      exhausted_ = true;
      return false;
    }
    ++charged_;
    return true;
  }

  /// Non-charging check (used between column-generation rounds).
  bool exhausted() {
    if (!exhausted_ && has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      exhausted_ = true;
    }
    if (!exhausted_ && max_pivots_ >= 0 && charged_ >= max_pivots_) {
      exhausted_ = true;
    }
    return exhausted_;
  }

  long charged() const { return charged_; }

 private:
  long max_pivots_ = -1;  // -1: no pivot limit
  long charged_ = 0;
  bool has_deadline_ = false;
  bool exhausted_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace postcard::lp
