// Dinic's maximum-flow algorithm on a FlowGraph.
//
// Level graph + blocking flows; O(V^2 E) in general, far better on the
// unit-ish networks used here. Flow is left on the graph so callers can read
// the per-arc decomposition afterwards.
#pragma once

#include "flow/graph.h"

namespace postcard::flow {

/// Computes the maximum s-t flow; returns its value. Existing flow on the
/// graph is treated as a (valid) starting point.
double max_flow(FlowGraph& graph, int source, int sink);

}  // namespace postcard::flow
