// Residual flow graph shared by the combinatorial algorithms.
//
// Arcs are stored in pairs (arc, reverse arc) so residual updates are O(1):
// arc 2k and 2k+1 are mutual reverses (xor trick). Capacities are doubles —
// the algorithms below are used on LP-scale data, so tolerant comparisons
// are applied where emptiness matters.
#pragma once

#include <vector>

namespace postcard::flow {

class FlowGraph {
 public:
  explicit FlowGraph(int num_nodes);

  /// Adds a directed arc u -> v; returns the arc id. The reverse residual
  /// arc (id ^ 1) is created automatically with zero capacity.
  int add_arc(int from, int to, double capacity, double cost = 0.0);

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }
  int num_arcs() const { return static_cast<int>(to_.size()); }

  const std::vector<int>& out_arcs(int node) const { return adjacency_[node]; }
  int head(int arc) const { return to_[arc]; }
  int tail(int arc) const { return to_[arc ^ 1]; }
  double residual(int arc) const { return capacity_[arc] - flow_[arc]; }
  double capacity(int arc) const { return capacity_[arc]; }
  double cost(int arc) const { return cost_[arc]; }

  /// Net flow on a forward arc (negative values appear on reverse arcs).
  double flow(int arc) const { return flow_[arc]; }

  /// Pushes `amount` through `arc`, pulling it back on the reverse arc.
  void push(int arc, double amount) {
    flow_[arc] += amount;
    flow_[arc ^ 1] -= amount;
  }

  /// Clears all flow, keeping the structure.
  void reset_flow();

 private:
  std::vector<std::vector<int>> adjacency_;
  std::vector<int> to_;
  std::vector<double> capacity_;
  std::vector<double> cost_;
  std::vector<double> flow_;
};

}  // namespace postcard::flow
