// Shortest paths over the residual graph.
//
// Dijkstra with non-negative (potential-reduced) costs, operating on
// FlowGraph residual arcs: arcs with residual capacity below `kresidualEps`
// are treated as absent. Returns per-node distances and the predecessor arc
// of the shortest-path tree.
#pragma once

#include <limits>
#include <vector>

#include "flow/graph.h"

namespace postcard::flow {

inline constexpr double kResidualEps = 1e-9;
inline constexpr double kUnreachable = std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  std::vector<double> distance;  // kUnreachable when not reached
  std::vector<int> parent_arc;   // -1 at the source / unreached nodes

  bool reached(int node) const { return distance[node] < kUnreachable; }
};

/// Dijkstra from `source` on residual arcs with reduced costs
/// cost(arc) + potential[tail] - potential[head] (potentials optional).
/// All reduced costs must be non-negative (standard SSP invariant).
ShortestPathTree dijkstra(const FlowGraph& graph, int source,
                          const std::vector<double>* potential = nullptr);

/// Extracts the arc sequence of the tree path source -> target, in path
/// order (empty when target is unreachable or equals the source).
std::vector<int> tree_path(const FlowGraph& graph, const ShortestPathTree& tree,
                           int target);

}  // namespace postcard::flow
