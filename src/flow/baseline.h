// Flow-based baseline (Sec. II-B): no store-and-forward.
//
// Every file k becomes a *flow* with fixed rate r_k = F_k / T_k that stays in
// the network for exactly T_k slots. Routing may split a flow across
// multiple multi-hop paths, but nothing is ever held at an intermediate
// datacenter: the rate pattern on every chosen link is constant over the
// flow's lifetime.
//
// Two solution modes:
//   * two_stage = true (paper-faithful): first a maximum concurrent flow
//     packs the largest common fraction lambda of all demands into "free"
//     capacity (volume below the already-charged X_ij), then a min-cost
//     multicommodity flow routes the residual (1-lambda) fraction minimizing
//     the charge increase.
//   * two_stage = false: one LP solves the flow model exactly (the epigraph
//     trick linearizes the charge objective). Used by the ablation bench to
//     quantify how much the paper's decomposition gives away.
//
// When a batch cannot be scheduled (link capacities cannot support all
// rates), the policy drops the file with the largest rate and retries —
// dropped volume is reported in the ScheduleOutcome.
#pragma once

#include <stdexcept>
#include <utility>
#include <vector>

#include "charging/charge_state.h"
#include "lp/solver.h"
#include "net/file_request.h"
#include "net/topology.h"
#include "sim/policy.h"

namespace postcard::flow {

struct FlowBaselineOptions {
  lp::SolverOptions lp;
  bool two_stage = true;
};

/// Routing decision for one file: constant link rates over its lifetime.
struct FlowAssignment {
  int file_id = 0;
  double rate = 0.0;  // r_k = F_k / T_k (GB per slot)
  int start_slot = 0;
  int duration = 0;  // T_k slots
  std::vector<std::pair<int, double>> link_rates;  // (topology link, rate)
};

class FlowBaseline : public sim::SchedulingPolicy {
 public:
  explicit FlowBaseline(net::Topology topology,
                        FlowBaselineOptions options = FlowBaselineOptions{});

  sim::ScheduleOutcome schedule(
      int slot, const std::vector<net::FileRequest>& files) override;
  double cost_per_interval() const override {
    return charge_.cost_per_interval(topology_);
  }
  const charging::ChargeState& charge_state() const override { return charge_; }
  std::string name() const override {
    return options_.two_stage ? "flow-based (two-stage)" : "flow-based (exact)";
  }

  /// Assignments produced by the most recent schedule() call.
  const std::vector<FlowAssignment>& last_assignments() const {
    return last_assignments_;
  }

  const net::Topology& topology() const { return topology_; }

  // --- Online-runtime hooks (src/runtime) -------------------------------

  /// Live capacity override; 0 marks the link down. Committed assignments
  /// are NOT revalidated — the runtime invalidates and replans them.
  bool set_link_capacity(int link, double capacity) override;

  /// Arms the slot watchdog. The flow model has no store-and-forward
  /// fallback rungs: on budget exhaustion or an injected fault the whole
  /// batch is deferred (ScheduleOutcome::deferred_ids) instead of being
  /// silently dropped by the admission loop.
  bool set_solve_controls(const sim::SolveControls& controls) override {
    controls_ = controls;
    return true;
  }

  /// Arms the plan auditor: every subsequent schedule() re-verifies the
  /// committed assignments against the paper invariants (src/audit) and
  /// reports through ScheduleOutcome::audit_*; kFailFast throws
  /// std::logic_error on the first violating slot.
  bool set_audit_controls(const sim::AuditControls& controls) override {
    audit_controls_ = controls;
    return true;
  }

  /// Snapshot restore (src/runtime capture/restore): replaces the charge
  /// ledger wholesale; see PostcardController::restore_charge_state.
  void restore_charge_state(charging::ChargeState state) {
    if (state.num_links() != topology_.num_links()) {
      throw std::invalid_argument("charge state / topology link mismatch");
    }
    charge_ = std::move(state);
  }

  /// Rolls the committed tail of `assignment` (slots >= from_slot) back
  /// out of the charge state: a link failure stopped the flow before its
  /// remaining volume was carried.
  void uncommit_future(const FlowAssignment& assignment, int from_slot);

 private:
  /// Residual physical capacity of `link` during `slot`.
  double residual_capacity(int link, int slot) const;

  /// schedule() minus the audit: the admission loop has several exits, so
  /// the audit wraps this instead of guarding every return.
  sim::ScheduleOutcome schedule_impl(int slot,
                                     const std::vector<net::FileRequest>& files);

  /// Post-commit audit of last_assignments_ + the charge state.
  void run_audit(int slot, const std::vector<net::FileRequest>& files,
                 sim::ScheduleOutcome& outcome) const;

  /// Attempts to schedule the whole batch; fills `assignments` and returns
  /// true on success. No state is committed on failure. `status` reports
  /// the final LP status of the failing (or last) stage so callers can
  /// tell capacity infeasibility from solver trouble.
  bool try_schedule(int slot, const std::vector<net::FileRequest>& files,
                    std::vector<FlowAssignment>& assignments,
                    sim::ScheduleOutcome& outcome, lp::SolveBudget* budget,
                    lp::SolveStatus* status);

  net::Topology topology_;
  FlowBaselineOptions options_;
  charging::ChargeState charge_;
  std::vector<FlowAssignment> last_assignments_;
  sim::SolveControls controls_;
  sim::AuditControls audit_controls_;
};

}  // namespace postcard::flow
