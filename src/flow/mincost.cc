#include "flow/mincost.h"

#include <algorithm>
#include <stdexcept>

#include "flow/shortest_path.h"

namespace postcard::flow {

MinCostFlowResult min_cost_flow(FlowGraph& graph, int source, int sink,
                                double demand) {
  if (demand < 0.0) throw std::invalid_argument("negative demand");
  for (int a = 0; a < graph.num_arcs(); a += 2) {
    if (graph.cost(a) < 0.0) {
      throw std::invalid_argument("negative arc costs are not supported");
    }
  }

  MinCostFlowResult result;
  std::vector<double> potential(static_cast<std::size_t>(graph.num_nodes()), 0.0);
  while (result.flow < demand - kResidualEps) {
    const ShortestPathTree tree = dijkstra(graph, source, &potential);
    if (!tree.reached(sink)) break;
    // Update potentials with the new distances (unreached nodes keep theirs).
    for (int v = 0; v < graph.num_nodes(); ++v) {
      if (tree.reached(v)) potential[v] += tree.distance[v];
    }
    const std::vector<int> path = tree_path(graph, tree, sink);
    double bottleneck = demand - result.flow;
    for (int arc : path) bottleneck = std::min(bottleneck, graph.residual(arc));
    if (bottleneck <= kResidualEps) break;
    double path_cost = 0.0;
    for (int arc : path) {
      graph.push(arc, bottleneck);
      path_cost += graph.cost(arc);
    }
    result.flow += bottleneck;
    result.cost += path_cost * bottleneck;
  }
  result.satisfied = result.flow >= demand - 1e-7 * (1.0 + demand);
  return result;
}

}  // namespace postcard::flow
