#include "flow/baseline.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "audit/flow_audit.h"

namespace postcard::flow {

namespace {
constexpr double kRateEps = 1e-9;
}  // namespace

FlowBaseline::FlowBaseline(net::Topology topology, FlowBaselineOptions options)
    : topology_(std::move(topology)),
      options_(options),
      charge_(topology_.num_links()) {}

bool FlowBaseline::set_link_capacity(int link, double capacity) {
  topology_.set_capacity(link, capacity);
  return true;
}

void FlowBaseline::uncommit_future(const FlowAssignment& assignment,
                                   int from_slot) {
  const int end = assignment.start_slot + assignment.duration;
  for (const auto& [link, rate] : assignment.link_rates) {
    for (int n = std::max(from_slot, assignment.start_slot); n < end; ++n) {
      charge_.uncommit(link, n, rate);
    }
  }
}

double FlowBaseline::residual_capacity(int link, int slot) const {
  return std::max(0.0,
                  topology_.link(link).capacity - charge_.committed(link, slot));
}

sim::ScheduleOutcome FlowBaseline::schedule(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome = schedule_impl(slot, files);
  if (audit_controls_.active()) run_audit(slot, files, outcome);
  return outcome;
}

void FlowBaseline::run_audit(int slot,
                             const std::vector<net::FileRequest>& files,
                             sim::ScheduleOutcome& outcome) const {
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto t0 = std::chrono::steady_clock::now();
  audit::AuditOptions options;
  options.tolerance = audit_controls_.tolerance;
  options.check_charge_consistency = audit_controls_.check_charge_consistency;

  std::vector<audit::PlannedFlow> planned;
  planned.reserve(last_assignments_.size());
  for (const FlowAssignment& a : last_assignments_) {
    const auto it = std::find_if(files.begin(), files.end(),
                                 [&](const net::FileRequest& f) {
                                   return f.id == a.file_id;
                                 });
    if (it == files.end()) continue;
    planned.push_back({*it, &a});
  }
  audit::AuditReport report =
      audit::audit_flow_assignments(slot, planned, topology_, charge_, options);
  report.merge(audit::audit_charge_state(charge_, topology_, options));

  ++outcome.audit_checks;
  outcome.audit_violations += static_cast<long>(report.violations.size());
  for (const audit::Violation& v : report.violations) {
    if (static_cast<int>(outcome.audit_reports.size()) >=
        audit_controls_.max_reports) {
      break;
    }
    outcome.audit_reports.push_back(v.format());
  }
  outcome.audit_seconds +=
      // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (report.ok()) return;
  if (audit_controls_.mode == sim::AuditControls::Mode::kFailFast) {
    throw std::logic_error(name() + " slot " + std::to_string(slot) + " " +
                           report.summary());
  }
  std::fprintf(stderr, "[audit] %s slot %d %s\n", name().c_str(), slot,
               report.summary().c_str());
}

sim::ScheduleOutcome FlowBaseline::schedule_impl(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome;
  last_assignments_.clear();
  std::vector<net::FileRequest> batch = files;
  for (const net::FileRequest& f : batch) validate(f, topology_);

  // Watchdog budget for the whole slot (shared across admission retries);
  // inactive controls leave the legacy behavior untouched.
  const bool ladder = controls_.active();
  lp::SolveBudget budget;
  if (controls_.max_pivots >= 0) budget.set_pivot_limit(controls_.max_pivots);
  if (controls_.deadline_seconds >= 0.0) {
    budget.set_deadline_seconds(controls_.deadline_seconds);
  }
  lp::SolveBudget* bp = budget.limited() ? &budget : nullptr;

  if (ladder && controls_.disable_rungs >= 1) {
    ++outcome.solver_failures;
    outcome.solver_status = "fault_injected";
    for (const net::FileRequest& f : batch) {
      outcome.deferred_ids.push_back(f.id);
      outcome.deferred_volume += f.size;
    }
    return outcome;
  }

  // Drop-heaviest admission loop: shrink the batch until it fits.
  while (!batch.empty()) {
    std::vector<FlowAssignment> assignments;
    lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
    if (try_schedule(slot, batch, assignments, outcome, bp, &status)) {
      for (const FlowAssignment& a : assignments) {
        for (const auto& [link, rate] : a.link_rates) {
          for (int n = a.start_slot; n < a.start_slot + a.duration; ++n) {
            charge_.commit(link, n, rate);  // volume per slot == rate * tbar(=1)
          }
        }
        outcome.accepted_ids.push_back(a.file_id);
      }
      last_assignments_ = std::move(assignments);
      return outcome;
    }
    // Under the watchdog, a non-capacity failure (budget exhausted or
    // numeric trouble) defers the batch instead of re-burning the budget
    // on drop-and-retry; only genuine infeasibility keeps dropping.
    if (ladder && status != lp::SolveStatus::kInfeasible) {
      for (const net::FileRequest& f : batch) {
        outcome.deferred_ids.push_back(f.id);
        outcome.deferred_volume += f.size;
      }
      return outcome;
    }
    const int drop = net::heaviest_file(batch);
    outcome.rejected_ids.push_back(batch[drop].id);
    outcome.rejected_volume += batch[drop].size;
    batch.erase(batch.begin() + drop);
  }
  return outcome;
}

bool FlowBaseline::try_schedule(int slot,
                                const std::vector<net::FileRequest>& files,
                                std::vector<FlowAssignment>& assignments,
                                sim::ScheduleOutcome& outcome,
                                lp::SolveBudget* budget,
                                lp::SolveStatus* status) {
  const int num_files = static_cast<int>(files.size());
  const int num_links = topology_.num_links();
  const int num_nodes = topology_.num_datacenters();
  const int window = net::max_deadline(files);

  std::vector<double> rate(files.size());
  for (int k = 0; k < num_files; ++k) {
    rate[k] = files[k].size / files[k].max_transfer_slots;
  }
  auto active = [&](int k, int n) {  // is file k's flow alive during slot n?
    return n >= slot && n < slot + files[k].max_transfer_slots;
  };

  // Stage-1 rates (zero when running the exact single-LP mode).
  std::vector<std::vector<double>> f1(files.size(),
                                      std::vector<double>(num_links, 0.0));
  double lambda = 0.0;

  if (options_.two_stage) {
    // ---- Stage 1: maximum concurrent flow into free (already-paid)
    // capacity. max lambda s.t. each file routes lambda * r_k through volume
    // that neither exceeds physical residual capacity nor raises any X_ij.
    lp::LpModel m1;
    const int lam = m1.add_variable(0.0, 1.0, -1.0, "lambda");
    std::vector<int> fv(files.size() * num_links);
    for (int k = 0; k < num_files; ++k) {
      for (int l = 0; l < num_links; ++l) {
        fv[k * num_links + l] = m1.add_variable(0.0, lp::kInfinity, 0.0);
      }
    }
    for (int k = 0; k < num_files; ++k) {
      for (int i = 0; i < num_nodes; ++i) {
        const int row = m1.add_constraint(0.0, 0.0);
        for (int l = 0; l < num_links; ++l) {
          const net::Link& link = topology_.link(l);
          if (link.from == i) m1.add_coefficient(row, fv[k * num_links + l], 1.0);
          if (link.to == i) m1.add_coefficient(row, fv[k * num_links + l], -1.0);
        }
        if (i == files[k].source) m1.add_coefficient(row, lam, -rate[k]);
        if (i == files[k].destination) m1.add_coefficient(row, lam, rate[k]);
      }
    }
    for (int l = 0; l < num_links; ++l) {
      for (int n = slot; n < slot + window; ++n) {
        const double free = std::min(residual_capacity(l, n),
                                     charge_.free_headroom(l, n));
        const int row = m1.add_constraint(-lp::kInfinity, free);
        for (int k = 0; k < num_files; ++k) {
          if (active(k, n)) m1.add_coefficient(row, fv[k * num_links + l], 1.0);
        }
      }
    }
    const lp::Solution s1 = lp::solve(m1, options_.lp, budget);
    outcome.lp_iterations += s1.iterations;
    ++outcome.lp_solves;
    *status = s1.status;
    if (!s1.optimal()) {
      // lambda=0 is always feasible here, so any failure is solver trouble
      // (numeric breakdown or an exhausted budget) — count it loudly
      // instead of letting the admission loop mask it as a capacity drop.
      ++outcome.solver_failures;
      outcome.solver_status = lp::to_string(s1.status);
      return false;
    }
    lambda = std::clamp(s1.x[lam], 0.0, 1.0);
    for (int k = 0; k < num_files; ++k) {
      for (int l = 0; l < num_links; ++l) {
        f1[k][l] = std::max(0.0, s1.x[fv[k * num_links + l]]);
      }
    }
  }

  // ---- Stage 2 (or the whole problem when two_stage == false): route the
  // residual demand minimizing the charged-volume increase.
  const double residual_fraction = 1.0 - lambda;
  lp::LpModel m2;
  std::vector<int> fv2(files.size() * num_links);
  for (int k = 0; k < num_files; ++k) {
    for (int l = 0; l < num_links; ++l) {
      fv2[k * num_links + l] = m2.add_variable(0.0, lp::kInfinity, 0.0);
    }
  }
  std::vector<int> xv(num_links);
  for (int l = 0; l < num_links; ++l) {
    xv[l] = m2.add_variable(charge_.charged(l), lp::kInfinity,
                            topology_.link(l).unit_cost);
  }
  for (int k = 0; k < num_files; ++k) {
    const double demand = residual_fraction * rate[k];
    for (int i = 0; i < num_nodes; ++i) {
      double rhs = 0.0;
      if (i == files[k].source) rhs = demand;
      if (i == files[k].destination) rhs = -demand;
      const int row = m2.add_constraint(rhs, rhs);
      for (int l = 0; l < num_links; ++l) {
        const net::Link& link = topology_.link(l);
        if (link.from == i) m2.add_coefficient(row, fv2[k * num_links + l], 1.0);
        if (link.to == i) m2.add_coefficient(row, fv2[k * num_links + l], -1.0);
      }
    }
  }
  for (int l = 0; l < num_links; ++l) {
    for (int n = slot; n < slot + window; ++n) {
      double stage1_usage = 0.0;
      for (int k = 0; k < num_files; ++k) {
        if (active(k, n)) stage1_usage += f1[k][l];
      }
      // Physical capacity left after older commitments and stage 1.
      const int cap_row = m2.add_constraint(
          -lp::kInfinity, std::max(0.0, residual_capacity(l, n) - stage1_usage));
      // Charge epigraph: X'_l >= committed + stage1 + stage2 on every slot.
      const int chg_row =
          m2.add_constraint(charge_.committed(l, n) + stage1_usage, lp::kInfinity);
      m2.add_coefficient(chg_row, xv[l], 1.0);
      for (int k = 0; k < num_files; ++k) {
        if (active(k, n)) {
          m2.add_coefficient(cap_row, fv2[k * num_links + l], 1.0);
          m2.add_coefficient(chg_row, fv2[k * num_links + l], -1.0);
        }
      }
    }
  }
  const lp::Solution s2 = lp::solve(m2, options_.lp, budget);
  outcome.lp_iterations += s2.iterations;
  ++outcome.lp_solves;
  *status = s2.status;
  if (!s2.optimal()) {
    // Stage 2 CAN be genuinely infeasible (the batch does not fit); only a
    // non-infeasible failure is solver trouble worth a loud counter.
    if (s2.status != lp::SolveStatus::kInfeasible) {
      ++outcome.solver_failures;
      outcome.solver_status = lp::to_string(s2.status);
    }
    return false;
  }

  assignments.clear();
  for (int k = 0; k < num_files; ++k) {
    FlowAssignment a;
    a.file_id = files[k].id;
    a.rate = rate[k];
    a.start_slot = slot;
    a.duration = files[k].max_transfer_slots;
    for (int l = 0; l < num_links; ++l) {
      const double r = f1[k][l] + std::max(0.0, s2.x[fv2[k * num_links + l]]);
      if (r > kRateEps) a.link_rates.emplace_back(l, r);
    }
    assignments.push_back(std::move(a));
  }
  return true;
}

}  // namespace postcard::flow
