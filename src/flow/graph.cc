#include "flow/graph.h"

#include <stdexcept>

namespace postcard::flow {

FlowGraph::FlowGraph(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
  adjacency_.resize(static_cast<std::size_t>(num_nodes));
}

int FlowGraph::add_arc(int from, int to, double capacity, double cost) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::out_of_range("arc endpoint outside graph");
  }
  if (capacity < 0.0) throw std::invalid_argument("negative capacity");
  const int id = num_arcs();
  to_.push_back(to);
  capacity_.push_back(capacity);
  cost_.push_back(cost);
  flow_.push_back(0.0);
  adjacency_[from].push_back(id);
  // Reverse residual arc.
  to_.push_back(from);
  capacity_.push_back(0.0);
  cost_.push_back(-cost);
  flow_.push_back(0.0);
  adjacency_[to].push_back(id + 1);
  return id;
}

void FlowGraph::reset_flow() {
  for (double& f : flow_) f = 0.0;
}

}  // namespace postcard::flow
