#include "flow/dynamic_flow.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flow/shortest_path.h"

namespace postcard::flow {

DynamicFlowResult max_dynamic_flow(FlowGraph& graph, int source, int sink,
                                   int horizon) {
  if (horizon < 0) throw std::invalid_argument("negative horizon");
  DynamicFlowResult result;
  std::vector<double> potential(static_cast<std::size_t>(graph.num_nodes()), 0.0);
  for (;;) {
    const ShortestPathTree tree = dijkstra(graph, source, &potential);
    if (!tree.reached(sink)) break;
    for (int v = 0; v < graph.num_nodes(); ++v) {
      if (tree.reached(v)) potential[v] += tree.distance[v];
    }
    // True transit time of the path = potential difference.
    const double transit = potential[sink] - potential[source];
    const int hops = static_cast<int>(std::llround(transit));
    if (hops > horizon) break;  // arrives too late even if started first

    const std::vector<int> path = tree_path(graph, tree, sink);
    double bottleneck = kUnreachable;
    for (int arc : path) bottleneck = std::min(bottleneck, graph.residual(arc));
    if (bottleneck <= kResidualEps) break;
    for (int arc : path) graph.push(arc, bottleneck);

    TemporalPath tp;
    tp.arcs = path;
    tp.rate = bottleneck;
    tp.transit = hops;
    tp.repetitions = horizon - hops + 1;
    result.value += bottleneck * tp.repetitions;
    result.paths.push_back(std::move(tp));
  }
  return result;
}

}  // namespace postcard::flow
