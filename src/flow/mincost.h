// Successive-shortest-path minimum-cost flow (Goldberg/Tarjan family,
// potential-based variant).
//
// Requires non-negative arc costs on the initial graph (true for all uses in
// this project: ISP prices and hop counts). Node potentials keep the reduced
// costs non-negative so Dijkstra drives every augmentation.
#pragma once

#include "flow/graph.h"

namespace postcard::flow {

struct MinCostFlowResult {
  double flow = 0.0;  // amount actually routed (== demand when feasible)
  double cost = 0.0;  // total cost of the routed flow
  bool satisfied = false;
};

/// Sends up to `demand` units from source to sink at minimum cost; stops
/// early when the sink becomes unreachable. Flow is left on the graph.
MinCostFlowResult min_cost_flow(FlowGraph& graph, int source, int sink,
                                double demand);

}  // namespace postcard::flow
