#include "flow/maxflow.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "flow/shortest_path.h"

namespace postcard::flow {
namespace {

bool build_levels(const FlowGraph& g, int source, int sink,
                  std::vector<int>& level) {
  level.assign(static_cast<std::size_t>(g.num_nodes()), -1);
  std::queue<int> q;
  q.push(source);
  level[source] = 0;
  while (!q.empty()) {
    const int u = q.front();
    q.pop();
    for (int arc : g.out_arcs(u)) {
      const int v = g.head(arc);
      if (level[v] < 0 && g.residual(arc) > kResidualEps) {
        level[v] = level[u] + 1;
        q.push(v);
      }
    }
  }
  return level[sink] >= 0;
}

double blocking_dfs(FlowGraph& g, int u, int sink, double pushed,
                    const std::vector<int>& level, std::vector<std::size_t>& next) {
  if (u == sink) return pushed;
  for (std::size_t& i = next[u]; i < g.out_arcs(u).size(); ++i) {
    const int arc = g.out_arcs(u)[i];
    const int v = g.head(arc);
    if (level[v] != level[u] + 1 || g.residual(arc) <= kResidualEps) continue;
    const double got = blocking_dfs(g, v, sink,
                                    std::min(pushed, g.residual(arc)), level, next);
    if (got > 0.0) {
      g.push(arc, got);
      return got;
    }
  }
  return 0.0;
}

}  // namespace

double max_flow(FlowGraph& graph, int source, int sink) {
  if (source == sink) throw std::invalid_argument("source equals sink");
  double total = 0.0;
  std::vector<int> level;
  std::vector<std::size_t> next;
  while (build_levels(graph, source, sink, level)) {
    next.assign(static_cast<std::size_t>(graph.num_nodes()), 0);
    for (;;) {
      const double pushed = blocking_dfs(
          graph, source, sink, std::numeric_limits<double>::infinity(), level, next);
      if (pushed <= 0.0) break;
      total += pushed;
    }
  }
  return total;
}

}  // namespace postcard::flow
