#include "flow/shortest_path.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace postcard::flow {

ShortestPathTree dijkstra(const FlowGraph& graph, int source,
                          const std::vector<double>* potential) {
  const int n = graph.num_nodes();
  if (source < 0 || source >= n) throw std::out_of_range("bad source");
  ShortestPathTree tree;
  tree.distance.assign(static_cast<std::size_t>(n), kUnreachable);
  tree.parent_arc.assign(static_cast<std::size_t>(n), -1);
  tree.distance[source] = 0.0;

  using Item = std::pair<double, int>;  // (distance, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > tree.distance[u]) continue;  // stale entry
    for (int arc : graph.out_arcs(u)) {
      if (graph.residual(arc) <= kResidualEps) continue;
      double w = graph.cost(arc);
      if (potential) w += (*potential)[u] - (*potential)[graph.head(arc)];
      // Clamp tiny negative reduced costs from floating-point noise.
      if (w < 0.0) {
        if (w < -1e-6) throw std::logic_error("negative reduced cost in dijkstra");
        w = 0.0;
      }
      const int v = graph.head(arc);
      if (d + w < tree.distance[v] - 1e-15) {
        tree.distance[v] = d + w;
        tree.parent_arc[v] = arc;
        heap.push({tree.distance[v], v});
      }
    }
  }
  return tree;
}

std::vector<int> tree_path(const FlowGraph& graph, const ShortestPathTree& tree,
                           int target) {
  std::vector<int> path;
  if (!tree.reached(target)) return path;
  int node = target;
  while (tree.parent_arc[node] >= 0) {
    const int arc = tree.parent_arc[node];
    path.push_back(arc);
    node = graph.tail(arc);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace postcard::flow
