// Maximum dynamic flow via temporally repeated flows (Ford & Fulkerson 1958).
//
// The dynamic flow problem (Sec. IV's inspiration): how much traffic can move
// from s to d within T time intervals when each arc has a capacity per
// interval and a transit time? Ford-Fulkerson showed the optimum is attained
// by a *temporally repeated* static flow: decompose a static flow into paths
// and resend each path-flow every interval for as long as it still arrives
// in time. A path of transit h repeated from interval 0 yields (T - h + 1)
// useful repetitions.
//
// Implementation: successive shortest augmenting paths by transit time
// (Dijkstra + potentials); a path found at distance h contributes
// (T - h + 1) * bottleneck and augmentation stops once h > T. This greedy is
// exactly the classical algorithm (it computes a min-cost flow whose cost is
// transit time).
//
// In this library the module is a cross-check: for a single commodity, the
// maximum dynamic flow equals the LP maximum on the time-expanded graph —
// storage cannot raise single-commodity throughput (tests/flow assert this).
#pragma once

#include <vector>

#include "flow/graph.h"

namespace postcard::flow {

struct TemporalPath {
  std::vector<int> arcs;   // static path, arc ids of the input graph
  double rate = 0.0;       // flow sent per interval along this path
  int transit = 0;         // hops (total transit time)
  int repetitions = 0;     // T - transit + 1
};

struct DynamicFlowResult {
  double value = 0.0;                // total volume delivered within T
  std::vector<TemporalPath> paths;   // temporally repeated decomposition
};

/// Maximum s->d dynamic flow within `horizon` intervals. Arc costs of
/// `graph` are interpreted as integral transit times (>= 0); arcs with zero
/// transit are allowed. The graph is left holding the chosen static flow.
DynamicFlowResult max_dynamic_flow(FlowGraph& graph, int source, int sink,
                                   int horizon);

}  // namespace postcard::flow
