#include "audit/flow_audit.h"

#include <cmath>
#include <set>
#include <sstream>
#include <utility>

namespace postcard::audit {

using detail::add_violation;
using detail::scaled;

AuditReport audit_flow_assignments(int slot,
                                   const std::vector<PlannedFlow>& flows,
                                   const net::Topology& topology,
                                   const charging::ChargeState& charge,
                                   const AuditOptions& options) {
  AuditReport report;
  const double tol = options.tolerance;
  std::set<std::pair<int, int>> arcs;
  for (const PlannedFlow& pf : flows) {
    if (pf.assignment == nullptr) continue;
    ++report.files_checked;
    const net::FileRequest& file = pf.request;
    const flow::FlowAssignment& a = *pf.assignment;

    // Structural deadline (eq. 10 analogue): the flow starts at the batch
    // slot and lives at most T_k slots; afterwards its rate is zero by
    // construction, so any longer lifetime is out-of-window traffic.
    if (a.start_slot != slot || a.duration > file.max_transfer_slots ||
        a.duration < 1) {
      std::ostringstream os;
      os << "assignment window [" << a.start_slot << ", "
         << a.start_slot + a.duration << ") vs batch slot " << slot
         << " and deadline " << file.max_transfer_slots;
      add_violation(report, ViolationClass::kDeadline, file.id, -1,
                    a.start_slot, file.source,
                    static_cast<double>(a.duration - file.max_transfer_slots),
                    os.str());
    }

    // Conservation of the constant rate pattern: net egress at the source
    // and net ingress at the destination equal r_k; other nodes balance.
    std::vector<double> net_out(
        static_cast<std::size_t>(topology.num_datacenters()), 0.0);
    for (const auto& [link, rate] : a.link_rates) {
      ++report.transfers_checked;
      if (link < 0 || link >= topology.num_links()) {
        add_violation(report, ViolationClass::kUnknownLink, file.id, link,
                      a.start_slot, -1, rate,
                      "assignment rate on a link outside the topology");
        continue;
      }
      if (rate < -tol) {
        add_violation(report, ViolationClass::kNonNegativity, file.id, link,
                      a.start_slot, topology.link(link).from, -rate,
                      "negative assignment rate");
      }
      net_out[static_cast<std::size_t>(topology.link(link).from)] += rate;
      net_out[static_cast<std::size_t>(topology.link(link).to)] -= rate;
      for (int n = a.start_slot; n < a.start_slot + a.duration; ++n) {
        arcs.emplace(link, n);
      }
    }
    for (int node = 0; node < topology.num_datacenters(); ++node) {
      double expected = 0.0;
      if (node == file.source) expected = a.rate;
      if (node == file.destination) expected = -a.rate;
      const double imbalance =
          net_out[static_cast<std::size_t>(node)] - expected;
      if (std::abs(imbalance) > scaled(tol, a.rate)) {
        std::ostringstream os;
        os << "node rate imbalance " << imbalance << " (net out "
           << net_out[static_cast<std::size_t>(node)] << ", expected "
           << expected << ")";
        add_violation(report, ViolationClass::kFlowConservation, file.id, -1,
                      a.start_slot, node, std::abs(imbalance), os.str());
      }
    }

    // Demand satisfaction: rate * duration carries the whole file.
    const double carried = a.rate * a.duration;
    if (carried < file.size - scaled(tol, file.size)) {
      std::ostringstream os;
      os << "assignment carries " << carried << " of " << file.size << " GB";
      add_violation(report, ViolationClass::kDemandSatisfaction, file.id, -1,
                    a.start_slot, file.destination, file.size - carried,
                    os.str());
    }
  }
  detail::audit_arc_capacity(slot, arcs, topology, charge, options, report);
  return report;
}

}  // namespace postcard::audit
