// FNV-1a 64-bit hashing, shared by every integrity check in the tree.
//
// The snapshot file trailer (src/server/snapshot.cc) and the replication
// divergence fingerprint (src/replication) both need the same tiny,
// dependency-free hash; it lives here in src/audit because the auditor is
// the lowest layer concerned with state integrity and links nothing above
// postcard_net/postcard_charging. One-shot hashing over a byte range uses
// fnv1a64(); incremental hashing over typed fields (counters, doubles as
// IEEE-754 bit patterns, strings) uses the streaming Fnv1a64 class — two
// states that hashed the same field sequence produce the same digest, so a
// digest mismatch pinpoints real divergence, never encoding noise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace postcard::audit {

inline constexpr std::uint64_t kFnv1a64Offset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001b3ULL;

/// One-shot FNV-1a 64 over a byte range.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n);

/// Streaming FNV-1a 64 over typed fields. Integers hash as fixed-width
/// little-endian bytes, doubles as their IEEE-754 bit patterns (so a
/// bit-for-bit identical cost series hashes identically and any ULP of
/// divergence flips the digest), strings as length + bytes (so "ab","c"
/// and "a","bc" never collide).
class Fnv1a64 {
 public:
  void bytes(const std::uint8_t* data, std::size_t n);
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i32(std::int32_t v) { fixed(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(const std::string& s);

  std::uint64_t digest() const { return hash_; }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t buf[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    bytes(buf, sizeof(T));
  }

  std::uint64_t hash_ = kFnv1a64Offset;
};

}  // namespace postcard::audit
