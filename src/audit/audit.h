// Plan auditor: machine-checked paper invariants for committed plans.
//
// The controllers commit plans through four degradation rungs, warm-started
// masters and rollback/replan paths — exactly the code shape where a
// silently infeasible plan can slip past cost-only tests. This library
// re-verifies, independently of the LP that produced them, every invariant
// of formulation (6)-(10) on what was actually committed:
//
//   * flow conservation per node and slot on the time-expanded graph (7)-(8),
//   * per-arc capacity c_ij(n) * t-bar, checked against the full committed
//     ledger, not just the new batch (9),
//   * the structural deadline constraint M^k_ij(n) = 0 for n > t + T_k (10)
//     — no transfer may move outside the file's [t, t + T_k) window,
//   * nonnegativity of every transfer volume,
//   * demand satisfaction: every accepted file's full size reaches its
//     destination by the deadline,
//   * charge-state consistency: the incremental order-statistic treap
//     agrees with the copy+sort oracle, X_ij equals the per-slot maximum,
//     and the ledger saw no reduce() accounting violations.
//
// DCRoute (PAPERS.md) motivates the core check: deadline-guaranteed
// allocations must be *provably* feasible per slot, not merely cheap.
// Violations come back as structured records (class, file, link, slot,
// node, magnitude) so tests can assert on exact violation classes and the
// runtime can surface per-class counters in BackendStats.
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "charging/charge_state.h"
#include "core/plan.h"
#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::audit {

enum class ViolationClass {
  kNonNegativity = 0,   // transfer or rate below zero
  kDeadline,            // traffic outside [t, t + T_k)  (eq. 10)
  kUnknownLink,         // transfer over a link the topology does not have
  kFlowConservation,    // node moves more than it holds / leaks volume
  kDemandSatisfaction,  // accepted file not fully delivered by the deadline
  kArcCapacity,         // committed ledger exceeds c_ij(n) * t-bar  (eq. 9)
  kChargeConsistency,   // treap vs copy+sort oracle / X_ij vs max desync
  kChargeLedger,        // reduce() saw an uncommit of never-committed volume
};
inline constexpr int kNumViolationClasses = 8;

const char* to_string(ViolationClass cls);

/// One violated invariant, with enough structure to assert on in tests.
struct Violation {
  ViolationClass cls = ViolationClass::kNonNegativity;
  int file_id = -1;  // -1 when not attributable to a single file
  int link = -1;
  int slot = -1;
  int node = -1;
  double magnitude = 0.0;  // by how much the constraint is violated
  std::string detail;      // human-readable specifics

  /// One structured line: "class=arc_capacity link=3 slot=12 ... detail".
  std::string format() const;
};

struct AuditOptions {
  /// Base tolerance for LP-produced volumes. Capacity and demand checks
  /// scale it by (1 + bound magnitude) so large instances are not flagged
  /// for simplex-level rounding noise. 1e-4 matches the bound the plan
  /// verification tests have always used for LP output.
  double tolerance = 1e-4;
  /// Run the treap-vs-oracle charge consistency sweep (O(L * T log T)).
  bool check_charge_consistency = true;
  /// Percentile used for the treap-vs-oracle comparison (the paper's
  /// simplification charges the maximum).
  double percentile_q = 100.0;
};

struct AuditReport {
  std::vector<Violation> violations;
  int files_checked = 0;
  int transfers_checked = 0;
  int links_checked = 0;

  bool ok() const { return violations.empty(); }
  long count(ViolationClass cls) const;
  void merge(AuditReport&& other);
  /// Multi-line summary, at most `max_lines` violation lines.
  std::string summary(std::size_t max_lines = 16) const;
};

/// One accepted file together with its committed store-and-forward plan.
/// The plan pointer must outlive the audit call; no ownership is taken.
struct PlannedFile {
  net::FileRequest request;
  const core::FilePlan* plan = nullptr;
};

/// Audits the store-and-forward plans committed at `slot` against the live
/// topology and the *post-commit* charge state: per-file checks run on the
/// plan alone, the arc-capacity check runs on the full committed ledger for
/// every (link, n >= slot) the plans touch, so older commitments sharing an
/// arc are included.
AuditReport audit_slot_plans(int slot, const std::vector<PlannedFile>& files,
                             const net::Topology& topology,
                             const charging::ChargeState& charge,
                             const AuditOptions& options = {});

/// Charge-state consistency: per link, the incremental treap percentile
/// must match the copy+sort oracle, X_ij must equal the per-slot maximum,
/// and the recorder must have seen zero reduce() accounting violations.
AuditReport audit_charge_state(const charging::ChargeState& charge,
                               const net::Topology& topology,
                               const AuditOptions& options = {});

namespace detail {

/// Absolute `tolerance` plus the same amount per unit of `bound`, so large
/// capacity/demand rows tolerate the rounding noise the LP itself does.
double scaled(double tolerance, double bound);

void add_violation(AuditReport& report, ViolationClass cls, int file_id,
                   int link, int slot, int node, double magnitude,
                   std::string detail);

/// Shared capacity leg (eq. 9): every (link, n >= slot) pair in `arcs`
/// must keep the committed ledger within c_ij(n) * t-bar.
void audit_arc_capacity(int slot, const std::set<std::pair<int, int>>& arcs,
                        const net::Topology& topology,
                        const charging::ChargeState& charge,
                        const AuditOptions& options, AuditReport& report);

}  // namespace detail

}  // namespace postcard::audit
