// Flow-baseline leg of the plan auditor (see audit/audit.h).
//
// Kept in its own header so the Postcard side of the auditor does not pull
// flow/baseline.h into core translation units: each policy library
// includes only the audit entry points for its own plan type.
#pragma once

#include <vector>

#include "audit/audit.h"
#include "charging/charge_state.h"
#include "flow/baseline.h"
#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::audit {

/// One accepted file together with its committed constant-rate assignment.
/// The assignment pointer must outlive the audit call; no ownership taken.
struct PlannedFlow {
  net::FileRequest request;
  const flow::FlowAssignment* assignment = nullptr;
};

/// Flow-baseline analogue of audit_slot_plans: conservation is checked on
/// the static per-file rate pattern, capacity on the committed ledger over
/// each assignment's lifetime, the deadline structurally (the flow must
/// start at `slot` and live at most T_k slots).
AuditReport audit_flow_assignments(int slot,
                                   const std::vector<PlannedFlow>& flows,
                                   const net::Topology& topology,
                                   const charging::ChargeState& charge,
                                   const AuditOptions& options = {});

}  // namespace postcard::audit
