#include "audit/audit.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>

namespace postcard::audit {

namespace detail {

double scaled(double tolerance, double bound) {
  return tolerance * (1.0 + std::abs(bound));
}

void add_violation(AuditReport& report, ViolationClass cls, int file_id,
                   int link, int slot, int node, double magnitude,
                   std::string detail) {
  Violation v;
  v.cls = cls;
  v.file_id = file_id;
  v.link = link;
  v.slot = slot;
  v.node = node;
  v.magnitude = magnitude;
  v.detail = std::move(detail);
  report.violations.push_back(std::move(v));
}

void audit_arc_capacity(int slot, const std::set<std::pair<int, int>>& arcs,
                        const net::Topology& topology,
                        const charging::ChargeState& charge,
                        const AuditOptions& options, AuditReport& report) {
  for (const auto& [link, n] : arcs) {
    if (n < slot) continue;  // past traffic; capacities may have changed
    if (link < 0 || link >= topology.num_links()) continue;  // kUnknownLink
    const double capacity = topology.link(link).capacity;
    const double committed = charge.committed(link, n);
    if (committed > capacity + scaled(options.tolerance, capacity)) {
      std::ostringstream os;
      os << "committed " << committed << " GB on link " << link << " slot "
         << n << " exceeds capacity " << capacity;
      add_violation(report, ViolationClass::kArcCapacity, -1, link, n,
                    topology.link(link).from, committed - capacity, os.str());
    }
  }
}

}  // namespace detail

namespace {

using detail::add_violation;
using detail::scaled;

/// Per-file checks shared by every transfer: nonnegativity, the eq. 10
/// window, link existence, conservation via re-simulated holdings, and
/// demand satisfaction. `slot` is the batch slot the plan was committed
/// at; eq. 10 zeroes all M^k_ij(n) with n outside [slot, slot + T_k).
void audit_file_plan(int slot, const PlannedFile& pf,
                     const net::Topology& topology,
                     const AuditOptions& options, AuditReport& report) {
  const net::FileRequest& file = pf.request;
  const core::FilePlan& plan = *pf.plan;
  const double tol = options.tolerance;
  const int first_slot = slot;
  const int last_slot = slot + file.max_transfer_slots - 1;

  for (const core::Transfer& t : plan.transfers) {
    ++report.transfers_checked;
    if (t.volume < -tol) {
      add_violation(report, ViolationClass::kNonNegativity, file.id, t.link,
                    t.slot, t.from, -t.volume, "negative transfer volume");
    }
    if (t.slot < first_slot || t.slot > last_slot) {
      std::ostringstream os;
      os << "transfer at slot " << t.slot << " outside [" << first_slot << ", "
         << last_slot << "] (eq. 10)";
      add_violation(report, ViolationClass::kDeadline, file.id, t.link, t.slot,
                    t.from, static_cast<double>(t.slot - last_slot), os.str());
    }
    if (t.storage()) {
      if (t.from != t.to) {
        add_violation(report, ViolationClass::kFlowConservation, file.id, -1,
                      t.slot, t.from, t.volume,
                      "storage transfer is not a self-loop");
      }
      continue;
    }
    const int index = topology.link_index(t.from, t.to);
    if (index < 0 || index != t.link) {
      std::ostringstream os;
      os << "transfer D" << t.from << "->D" << t.to << " claims link "
         << t.link << " but topology says " << index;
      add_violation(report, ViolationClass::kUnknownLink, file.id, t.link,
                    t.slot, t.from, t.volume, os.str());
    }
  }

  // Re-simulate holdings slot by slot (time-expanded conservation, (7)-(8)).
  // holdings[node] = this file's volume at the node at the slot's start.
  std::map<int, double> holdings;
  holdings[file.source] = file.size;
  for (int n = first_slot; n <= last_slot; ++n) {
    std::map<int, double> outgoing;
    std::map<int, double> next;
    for (const core::Transfer& t : plan.transfers) {
      if (t.slot != n) continue;
      outgoing[t.from] += t.volume;
      next[t.to] += t.volume;
    }
    for (const auto& [node, moved] : outgoing) {
      const auto it = holdings.find(node);
      const double have = it != holdings.end() ? it->second : 0.0;
      if (moved > have + scaled(options.tolerance, have)) {
        std::ostringstream os;
        os << "D" << node << " moves " << moved << " GB in slot " << n
           << " but holds " << have;
        add_violation(report, ViolationClass::kFlowConservation, file.id, -1,
                      n, node, moved - have, os.str());
      }
    }
    for (const auto& [node, have] : holdings) {
      const auto it = outgoing.find(node);
      const double moved = it != outgoing.end() ? it->second : 0.0;
      if (node == file.destination) {
        next[node] += have - moved;
        continue;
      }
      // Volume neither forwarded nor stored silently leaves the network —
      // a conservation leak, not mere under-delivery.
      if (std::abs(moved - have) > scaled(options.tolerance, have)) {
        std::ostringstream os;
        os << "D" << node << " holds " << have << " GB at slot " << n
           << " but moves " << moved << " (must forward or store all of it)";
        add_violation(report, ViolationClass::kFlowConservation, file.id, -1,
                      n, node, std::abs(moved - have), os.str());
      }
    }
    holdings = std::move(next);
  }

  const auto it = holdings.find(file.destination);
  const double delivered = it != holdings.end() ? it->second : 0.0;
  if (std::abs(delivered - file.size) > scaled(tol, file.size)) {
    std::ostringstream os;
    os << "delivered " << delivered << " of " << file.size
       << " GB by the deadline";
    add_violation(report, ViolationClass::kDemandSatisfaction, file.id, -1,
                  last_slot, file.destination, file.size - delivered,
                  os.str());
  }
  for (const auto& [node, volume] : holdings) {
    if (node == file.destination) continue;
    if (volume > scaled(tol, file.size)) {
      std::ostringstream os;
      os << volume << " GB stranded at D" << node << " after the deadline";
      add_violation(report, ViolationClass::kDemandSatisfaction, file.id, -1,
                    last_slot, node, volume, os.str());
    }
  }
}

}  // namespace

const char* to_string(ViolationClass cls) {
  switch (cls) {
    case ViolationClass::kNonNegativity: return "non_negativity";
    case ViolationClass::kDeadline: return "deadline";
    case ViolationClass::kUnknownLink: return "unknown_link";
    case ViolationClass::kFlowConservation: return "flow_conservation";
    case ViolationClass::kDemandSatisfaction: return "demand_satisfaction";
    case ViolationClass::kArcCapacity: return "arc_capacity";
    case ViolationClass::kChargeConsistency: return "charge_consistency";
    case ViolationClass::kChargeLedger: return "charge_ledger";
  }
  return "unknown";
}

std::string Violation::format() const {
  std::ostringstream os;
  os << "class=" << to_string(cls);
  if (file_id >= 0) os << " file=" << file_id;
  if (link >= 0) os << " link=" << link;
  if (slot >= 0) os << " slot=" << slot;
  if (node >= 0) os << " node=" << node;
  os << " magnitude=" << magnitude << " :: " << detail;
  return os.str();
}

long AuditReport::count(ViolationClass cls) const {
  return std::count_if(violations.begin(), violations.end(),
                       [cls](const Violation& v) { return v.cls == cls; });
}

void AuditReport::merge(AuditReport&& other) {
  violations.insert(violations.end(),
                    std::make_move_iterator(other.violations.begin()),
                    std::make_move_iterator(other.violations.end()));
  files_checked += other.files_checked;
  transfers_checked += other.transfers_checked;
  links_checked += other.links_checked;
}

std::string AuditReport::summary(std::size_t max_lines) const {
  std::ostringstream os;
  os << "plan audit: " << violations.size() << " violation(s) across "
     << files_checked << " file(s), " << transfers_checked
     << " transfer(s), " << links_checked << " link(s)";
  const std::size_t shown = std::min(max_lines, violations.size());
  for (std::size_t i = 0; i < shown; ++i) {
    os << "\n  " << violations[i].format();
  }
  if (shown < violations.size()) {
    os << "\n  ... " << (violations.size() - shown) << " more";
  }
  return os.str();
}

AuditReport audit_slot_plans(int slot, const std::vector<PlannedFile>& files,
                             const net::Topology& topology,
                             const charging::ChargeState& charge,
                             const AuditOptions& options) {
  AuditReport report;
  std::set<std::pair<int, int>> arcs;  // (link, slot) pairs the plans touch
  for (const PlannedFile& pf : files) {
    if (pf.plan == nullptr) continue;
    ++report.files_checked;
    audit_file_plan(slot, pf, topology, options, report);
    for (const core::Transfer& t : pf.plan->transfers) {
      if (!t.storage()) arcs.emplace(t.link, t.slot);
    }
  }
  detail::audit_arc_capacity(slot, arcs, topology, charge, options, report);
  return report;
}

AuditReport audit_charge_state(const charging::ChargeState& charge,
                               const net::Topology& topology,
                               const AuditOptions& options) {
  AuditReport report;
  const charging::PercentileRecorder& recorder = charge.recorder();
  if (recorder.reduce_violations() > 0) {
    std::ostringstream os;
    os << recorder.reduce_violations()
       << " reduce() call(s) uncommitted volume that was never recorded";
    add_violation(report, ViolationClass::kChargeLedger, -1, -1, -1, -1,
                  static_cast<double>(recorder.reduce_violations()), os.str());
  }
  if (!options.check_charge_consistency) return report;
  const int period = recorder.num_slots();
  for (int link = 0; link < charge.num_links(); ++link) {
    ++report.links_checked;
    // X_ij must be the running per-slot maximum the treap reports: commit()
    // only ever raises it to that maximum and uncommit() recomputes it.
    const double charged = charge.charged(link);
    const double tree_max = recorder.max_volume(link);
    if (std::abs(charged - tree_max) > scaled(options.tolerance, tree_max)) {
      std::ostringstream os;
      os << "X_ij " << charged << " vs treap max " << tree_max;
      add_violation(report, ViolationClass::kChargeConsistency, -1, link, -1,
                    topology.num_links() > link ? topology.link(link).from : -1,
                    std::abs(charged - tree_max), os.str());
    }
    if (period == 0) continue;
    const double incremental =
        recorder.charged_volume(link, options.percentile_q, period);
    const double oracle =
        recorder.charged_volume_sorted(link, options.percentile_q, period);
    if (std::abs(incremental - oracle) > scaled(options.tolerance, oracle)) {
      std::ostringstream os;
      os << "treap charged_volume " << incremental << " vs sorted oracle "
         << oracle << " at q=" << options.percentile_q;
      add_violation(report, ViolationClass::kChargeConsistency, -1, link, -1,
                    -1, std::abs(incremental - oracle), os.str());
    }
  }
  return report;
}

}  // namespace postcard::audit
