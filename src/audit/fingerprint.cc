#include "audit/fingerprint.h"

#include <cstring>

namespace postcard::audit {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t hash = kFnv1a64Offset;
  for (std::size_t i = 0; i < n; ++i) {
    hash ^= data[i];
    hash *= kFnv1a64Prime;
  }
  return hash;
}

void Fnv1a64::bytes(const std::uint8_t* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= data[i];
    hash_ *= kFnv1a64Prime;
  }
}

void Fnv1a64::f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fnv1a64::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

}  // namespace postcard::audit
