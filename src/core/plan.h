// Transfer plans: the routing and scheduling decisions Postcard commits.
//
// A plan lists, per time slot, which fraction of a file moves over which
// overlay link and which fraction is held over (stored) at which datacenter.
// verify_plan() checks the store-and-forward invariants independently of the
// LP that produced the plan — it re-simulates holdings slot by slot.
#pragma once

#include <string>
#include <vector>

#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::core {

/// One movement of part of a file during one slot. from == to (link == -1)
/// is a holdover: the volume stays stored at the datacenter for this slot.
struct Transfer {
  int slot = 0;
  int from = 0;
  int to = 0;
  double volume = 0.0;  // GB
  int link = -1;        // topology link index; -1 for storage
  bool storage() const { return link < 0; }
};

struct FilePlan {
  int file_id = 0;
  std::vector<Transfer> transfers;  // ordered by slot

  /// Volume arriving at `node` at the *end* of `slot` (start of slot+1).
  double arriving(int node, int slot) const {
    double v = 0.0;
    for (const Transfer& t : transfers) {
      if (t.slot == slot && t.to == node && !t.storage()) v += t.volume;
    }
    return v;
  }
};

/// Re-simulates the plan and checks the store-and-forward invariants:
///   * transfers stay within [release, release + T_k),
///   * volume moved out of a datacenter never exceeds what it holds,
///   * everything held is either forwarded or explicitly stored each slot,
///   * the full file size reaches the destination by the deadline,
///   * only existing topology links are used.
/// Returns true when valid; otherwise false with a diagnostic in `error`.
bool verify_plan(const FilePlan& plan, const net::FileRequest& file,
                 const net::Topology& topology, double tolerance,
                 std::string* error = nullptr);

}  // namespace postcard::core
