// DCRoute-style fast allocation heuristic (see PAPERS.md).
//
// DCRoute's premise is that a per-slot LP is too slow for online
// inter-datacenter transfer admission, so it allocates each arrival on a
// single precomputed path with deadline-aware capacity reservation. This
// module reproduces that allocation style against Postcard's model: one
// cheapest-by-current-charge spatial path per file (no chunking, no
// re-pricing between chunks — the structural difference from
// core/greedy.h), then a slot-by-slot reservation of the whole file's
// volume along that path within the deadline window.
//
// It serves three roles:
//   * a SchedulingPolicy baseline the LP has to beat on cost,
//   * a degradation-ladder rung between truncated CG and the greedy
//     chunker (PostcardOptions::use_dcroute_rung): ~one DP per file,
//     so it absorbs load spikes the pivot budget cannot,
//   * a speed yardstick in bench_solver_hotpath.
#pragma once

#include <string>
#include <vector>

#include "charging/charge_state.h"
#include "core/plan.h"
#include "net/file_request.h"
#include "net/topology.h"
#include "sim/policy.h"

namespace postcard::core {

struct DCRouteOptions {
  // Storage ablation mirror (greedy/Postcard share it): when false, volume
  // may wait only at the file's endpoints, so the reservation runs the
  // whole path as a staggered pipeline instead of hop-by-hop.
  bool allow_storage = true;
};

/// Why dcroute_route_file declined a file.
enum class DCRouteResult {
  kRouted,      // plan built, state updated
  kNoPath,      // no deadline-feasible spatial path with usable capacity
  kNoCapacity,  // the chosen path cannot carry the full size in the window
};

/// Routes one file on the single cheapest currently-chargeable spatial path
/// (links already charged above their committed volume price at zero), with
/// deadline-aware reservation: transfers are packed earliest-first hop by
/// hop, waiting volume is explicitly stored, and the full size must arrive
/// by the deadline or the state is left untouched. One shortest-path DP and
/// one reservation sweep per file — no LP, no per-chunk re-pricing.
DCRouteResult dcroute_route_file(const net::Topology& topology,
                                 const DCRouteOptions& options,
                                 const net::FileRequest& file,
                                 charging::ChargeState& state, FilePlan& plan);

/// DCRoute as a standalone policy: most-urgent-first admission, one
/// single-path reservation per file, rejects on kNoPath/kNoCapacity.
class DCRouteScheduler : public sim::SchedulingPolicy {
 public:
  explicit DCRouteScheduler(net::Topology topology,
                            DCRouteOptions options = DCRouteOptions{});

  sim::ScheduleOutcome schedule(
      int slot, const std::vector<net::FileRequest>& files) override;
  double cost_per_interval() const override {
    return charge_.cost_per_interval(topology_);
  }
  const charging::ChargeState& charge_state() const override { return charge_; }
  std::string name() const override { return "dcroute single-path"; }

  const std::vector<FilePlan>& last_plans() const { return last_plans_; }

 private:
  net::Topology topology_;
  DCRouteOptions options_;
  charging::ChargeState charge_;
  std::vector<FilePlan> last_plans_;
};

}  // namespace postcard::core
