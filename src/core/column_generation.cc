#include "core/column_generation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "base/worker_pool.h"
#include "lp/simplex.h"
#include "net/sparse_time_expanded.h"
#include "net/time_expanded.h"

namespace postcard::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kFlowEps = 1e-7;

// Minimum estimated DP work (files x arcs, i.e. arc relaxations per pricing
// pass) before the per-file sweeps shard across the worker pool. Waking and
// joining the pool costs tens of microseconds; below this floor the serial
// sweep finishes first. The column merge is file-index ascending either way,
// so the gate never changes the emitted column sequence.
constexpr long kParallelPricingMinWork = 1L << 18;

// FNV-style hash over a (file, arc sequence) pair for the seen-path set.
// Equality stays exact (the full key is stored), so a hash collision costs
// a comparison, never a wrong dedup verdict — and membership tests have no
// ordering for iteration to depend on.
struct PathSeenHash {
  std::size_t operator()(const std::pair<int, std::vector<int>>& p) const {
    std::size_t h =
        1469598103934665603ull ^ static_cast<std::size_t>(p.first);
    for (int a : p.second) {
      h ^= static_cast<std::size_t>(a) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
    }
    return h;
  }
};
}  // namespace

namespace {

/// Builds the first-round warm basis from a prior slot's cache. The default
/// (canonical) remap reproduces the basis cold phase 1 terminates in on the
/// round-0 master — every z_k basic at F_k in its demand row, every other
/// row on its own logical, X at lower bound — so accepting it changes no
/// downstream pivot, only skips the phase-1 work. With `carry`, surviving
/// (link, absolute slot) capacity/epigraph rows additionally restore their
/// cached basic X variable and logical status.
lp::RevisedSimplex::WarmStart remap_warm_basis(
    const MasterWarmCache& cache, const lp::LpModel& master,
    const std::vector<net::TimeArc>& arcs, int slot,
    const std::vector<int>& xv, const std::vector<int>& zv,
    const std::vector<int>& demand_row, const std::vector<int>& cap_row,
    const std::vector<int>& chg_row, bool carry) {
  using WS = lp::RevisedSimplex::WarmStart;
  WS ws;
  const int rows = master.num_constraints();
  ws.col_status.assign(static_cast<std::size_t>(master.num_variables()),
                       WS::kAtLower);
  ws.row_status.assign(static_cast<std::size_t>(rows), WS::kBasic);
  ws.basis.resize(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) ws.basis[i] = -(i + 1);
  // Demand rows are new every slot: phase 1 always ends with z_k basic
  // (the only column in an equality row violated at the all-lower point).
  for (std::size_t k = 0; k < zv.size(); ++k) {
    ws.col_status[zv[k]] = WS::kBasic;
    ws.row_status[demand_row[k]] = WS::kAtLower;  // fixed logical (rl == ru)
    ws.basis[demand_row[k]] = zv[k];
  }
  if (!carry) return ws;
  // Carry mode: restore surviving capacity/epigraph row states. An X
  // variable can be basic in at most one row; first surviving key wins.
  std::vector<char> x_placed(xv.size(), 0);
  auto place = [&](int row, int cached_basic, signed char cached_status) {
    if (cached_basic < 0 || cached_basic >= static_cast<int>(xv.size())) {
      return;  // kLogical / kDropped / corrupt: keep the logical basic
    }
    if (x_placed[cached_basic] || cached_status == WS::kBasic) return;
    x_placed[cached_basic] = 1;
    ws.col_status[xv[cached_basic]] = WS::kBasic;
    ws.basis[row] = xv[cached_basic];
    ws.row_status[row] = cached_status;
  };
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    if (cap_row[a] < 0) continue;
    const net::TimeArc& arc = arcs[a];
    const auto it =
        cache.arc_rows.find({arc.link_index, slot + arc.layer});
    if (it == cache.arc_rows.end()) continue;
    place(cap_row[a], it->second.cap_basic, it->second.cap_status);
    place(chg_row[a], it->second.chg_basic, it->second.chg_status);
  }
  return ws;
}

/// Captures the final master basis into the cache, keyed by the (link,
/// absolute slot) identity of each capacity/epigraph row pair.
void capture_warm_basis(const lp::RevisedSimplex::WarmStart& warm,
                        const std::vector<net::TimeArc>& arcs, int slot,
                        int num_links, const std::vector<int>& cap_row,
                        const std::vector<int>& chg_row,
                        MasterWarmCache* cache) {
  cache->arc_rows.clear();
  auto classify = [&](int row) {
    const int b = warm.basis[row];
    if (b < 0) return MasterWarmCache::kLogical;
    if (b < num_links) return b;  // X columns are the first num_links vars
    return MasterWarmCache::kDropped;  // z or path column: gone next slot
  };
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    if (cap_row[a] < 0) continue;
    const net::TimeArc& arc = arcs[a];
    MasterWarmCache::ArcRowState st;
    st.cap_basic = classify(cap_row[a]);
    st.chg_basic = classify(chg_row[a]);
    st.cap_status = warm.row_status[cap_row[a]];
    st.chg_status = warm.row_status[chg_row[a]];
    cache->arc_rows.insert_or_assign({arc.link_index, slot + arc.layer}, st);
  }
  cache->valid = true;
  ++cache->captured_solves;
}

}  // namespace

PathSolveResult solve_postcard_by_paths(const net::Topology& topology,
                                        const charging::ChargeState& charge,
                                        int slot,
                                        const std::vector<net::FileRequest>& files,
                                        const PathSolveOptions& options,
                                        MasterWarmCache* warm_cache,
                                        lp::SolveBudget* budget,
                                        net::SparseTimeGraph* sparse_graph) {
  PathSolveResult result;
  if (files.empty()) {
    result.ok = true;
    result.feasible = true;
    result.objective = charge.cost_per_interval(topology);
    return result;
  }
  for (const net::FileRequest& f : files) {
    validate(f, topology);
  }

  const int horizon = net::max_deadline(files);
  const auto residual_fn = [&](int link, int s) {
    return std::max(0.0,
                    topology.link(link).capacity - charge.committed(link, s));
  };
  // Graph backend: a caller-owned sparse arena advanced in place, or the
  // legacy dense rebuild. Both expose the identical arc sequence (same
  // layer-block layout), so everything below is backend-agnostic.
  std::optional<net::TimeExpandedGraph> dense;
  if (sparse_graph != nullptr) {
    sparse_graph->advance_to(topology, slot, horizon, residual_fn);
  } else {
    dense.emplace(topology, slot, horizon, residual_fn);
  }
  const std::vector<net::TimeArc>& arcs =
      sparse_graph != nullptr ? sparse_graph->arcs() : dense->arcs();
  std::vector<std::pair<int, int>> layer_ranges(
      static_cast<std::size_t>(horizon));
  for (int layer = 0; layer < horizon; ++layer) {
    layer_ranges[layer] = sparse_graph != nullptr
                              ? sparse_graph->layer_arc_range(layer)
                              : dense->layer_arc_range(layer);
  }
  const int n = topology.num_datacenters();
  const int num_files = static_cast<int>(files.size());
  const int num_arcs = static_cast<int>(arcs.size());

  // ---- Restricted master: X, z, and the fixed row structure.
  lp::LpModel master;
  std::vector<int> xv(topology.num_links());
  for (int l = 0; l < topology.num_links(); ++l) {
    xv[l] = master.add_variable(charge.charged(l), lp::kInfinity,
                                topology.link(l).unit_cost);
  }
  std::vector<int> zv(files.size());
  std::vector<int> demand_row(files.size());
  for (int k = 0; k < num_files; ++k) {
    zv[k] = master.add_variable(0.0, files[k].size, options.unrouted_cost);
    demand_row[k] = master.add_constraint(files[k].size, files[k].size);
    master.add_coefficient(demand_row[k], zv[k], 1.0);
  }
  std::vector<int> cap_row(num_arcs, -1), chg_row(num_arcs, -1);
  for (int a = 0; a < num_arcs; ++a) {
    const net::TimeArc& arc = arcs[a];
    if (arc.storage()) continue;
    cap_row[a] = master.add_constraint(-lp::kInfinity, arc.capacity);
    chg_row[a] = master.add_constraint(
        -lp::kInfinity, -charge.committed(arc.link_index, slot + arc.layer));
    master.add_coefficient(chg_row[a], xv[arc.link_index], -1.0);
  }

  struct PathColumn {
    int var;
    int file;
    std::vector<int> arcs;
  };
  std::vector<PathColumn> columns;
  // Degenerate master duals can re-price an existing path negative without
  // any possible improvement; adding it again would loop forever.
  std::unordered_set<std::pair<int, std::vector<int>>, PathSeenHash>
      seen_paths;

  // ---- Per-commodity reachability pruning (sparse backend only).
  //
  // A commodity is a distinct (source, destination, deadline): its pricing
  // DP can only ever use an arc at layer L whose tail is reachable from the
  // source within L links AND whose head can still reach the destination in
  // the remaining deadline - L - 1 layers (structural hops; storage does
  // not move). Each commodity gets a compact per-layer arc list holding
  // exactly those arcs, in the block order of the full sweep, built once
  // per solve and reused across every pricing round.
  //
  // Bit-for-bit safety: a tail-pruned arc relaxes from a cell the DP can
  // never make finite (dist stays -inf), and head-pruned arcs only write
  // cells that are closed under forward arcs away from the destination —
  // the reconstruction walk from (destination, deadline) never enters
  // them. Every dist/pred cell the walk reads is therefore identical to
  // the full sweep's, so the generated columns (and the master, and the
  // plans) do not change.
  struct CommodityView {
    std::vector<int> arc_ids;
    std::vector<int> layer_begin;  // deadline + 1 offsets into arc_ids
  };
  std::vector<CommodityView> views;
  constexpr int kFullSweep = -1;   // dense backend: price over every arc
  constexpr int kUnreachable = -2; // no path within the deadline: skip file
  std::vector<int> file_view(static_cast<std::size_t>(num_files), kFullSweep);
  if (sparse_graph != nullptr) {
    std::map<std::tuple<int, int, int>, int> by_commodity;
    for (int k = 0; k < num_files; ++k) {
      const int src = files[k].source;
      const int dst = files[k].destination;
      const int deadline = files[k].max_transfer_slots;
      if (sparse_graph->hops(src, dst) > deadline) {
        file_view[k] = kUnreachable;
        continue;
      }
      const auto [it, inserted] =
          by_commodity.try_emplace({src, dst, deadline},
                                   static_cast<int>(views.size()));
      file_view[k] = it->second;
      if (!inserted) continue;
      CommodityView view;
      const int* fwd = sparse_graph->hops_from(src);
      view.layer_begin.reserve(static_cast<std::size_t>(deadline) + 1);
      for (int layer = 0; layer < deadline; ++layer) {
        view.layer_begin.push_back(static_cast<int>(view.arc_ids.size()));
        const auto [begin, end] = layer_ranges[layer];
        const int remaining = deadline - layer - 1;
        for (int a = begin; a < end; ++a) {
          const net::TimeArc& arc = arcs[a];
          if (arc.storage() && !options.allow_storage &&
              arc.from_node != src && arc.from_node != dst) {
            continue;
          }
          if (fwd[arc.from_node] > layer) continue;
          if (sparse_graph->hops(arc.to_node, dst) > remaining) continue;
          view.arc_ids.push_back(a);
        }
      }
      view.layer_begin.push_back(static_cast<int>(view.arc_ids.size()));
      views.push_back(std::move(view));
    }
  }

  // ---- Pricing data layout: structure-of-arrays over the arc blocks.
  //
  // The reduced-cost sweep is the pricing inner loop; pulling the four
  // fields it reads out of the 40+-byte TimeArc records into flat arrays
  // lets the relaxation stream through memory, and pre-offsetting tails and
  // heads into the (layer, node) DP grid removes the index arithmetic from
  // the loop entirely: arc a relaxes dist[arc_tail[a]] + arc_weight[a]
  // against dist[arc_head[a]]. The weight array is filled once per pricing
  // pass — one add per arc instead of one per (arc, file).
  std::vector<int> arc_tail(num_arcs), arc_head(num_arcs), arc_from(num_arcs);
  std::vector<unsigned char> arc_storage(num_arcs);
  for (int a = 0; a < num_arcs; ++a) {
    const net::TimeArc& arc = arcs[a];
    arc_tail[a] = arc.layer * n + arc.from_node;
    arc_head[a] = (arc.layer + 1) * n + arc.to_node;
    arc_from[a] = arc.from_node;
    arc_storage[a] = arc.storage() ? 1 : 0;
  }
  std::vector<double> arc_weight(static_cast<std::size_t>(num_arcs), 0.0);

  // Per-worker DP scratch, slot 0 doubling as the serial path's; sized once
  // and reused across every pricing round.
  struct DpScratch {
    std::vector<double> dist;
    std::vector<int> pred;
  };
  const int pricing_shards =
      options.pricing_pool != nullptr
          ? std::max(1, options.pricing_pool->num_threads())
          : 1;
  const bool shard_pricing =
      pricing_shards > 1 && num_files >= 2 * pricing_shards &&
      static_cast<long>(num_files) * static_cast<long>(num_arcs) >=
          kParallelPricingMinWork;
  const std::size_t grid =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(horizon + 1);
  std::vector<DpScratch> scratch(
      static_cast<std::size_t>(shard_pricing ? pricing_shards : 1));
  for (DpScratch& s : scratch) {
    s.dist.resize(grid);
    s.pred.resize(grid);
  }

  // Longest-path DP for file k against the current arc_weight array.
  // Returns the best total weight at (destination, deadline), kNegInf when
  // no path exists within the deadline.
  auto run_dp = [&](int k, DpScratch& s) {
    const int deadline = files[k].max_transfer_slots;
    std::fill(s.dist.begin(), s.dist.end(), kNegInf);
    std::fill(s.pred.begin(), s.pred.end(), -1);
    s.dist[files[k].source] = 0.0;  // (source, layer 0)
    if (file_view[k] == kFullSweep) {
      const int src = files[k].source;
      const int dst = files[k].destination;
      for (int layer = 0; layer < deadline; ++layer) {
        const auto [begin, end] = layer_ranges[layer];
        if (options.allow_storage) {
          for (int a = begin; a < end; ++a) {
            const double from = s.dist[arc_tail[a]];
            if (from == kNegInf) continue;
            const double cand = from + arc_weight[a];
            if (cand > s.dist[arc_head[a]]) {
              s.dist[arc_head[a]] = cand;
              s.pred[arc_head[a]] = a;
            }
          }
        } else {
          // Storage ablation: holding is only allowed at the endpoints.
          for (int a = begin; a < end; ++a) {
            if (arc_storage[a] && arc_from[a] != src && arc_from[a] != dst) {
              continue;
            }
            const double from = s.dist[arc_tail[a]];
            if (from == kNegInf) continue;
            const double cand = from + arc_weight[a];
            if (cand > s.dist[arc_head[a]]) {
              s.dist[arc_head[a]] = cand;
              s.pred[arc_head[a]] = a;
            }
          }
        }
      }
    } else {
      // Pruned subproblem: same relaxation order over the commodity's
      // surviving arcs only (deadline and ablation checks are baked into
      // the view).
      const CommodityView& view = views[file_view[k]];
      for (int layer = 0; layer < deadline; ++layer) {
        const int vb = view.layer_begin[layer];
        const int ve = view.layer_begin[layer + 1];
        for (int i = vb; i < ve; ++i) {
          const int a = view.arc_ids[i];
          const double from = s.dist[arc_tail[a]];
          if (from == kNegInf) continue;
          const double cand = from + arc_weight[a];
          if (cand > s.dist[arc_head[a]]) {
            s.dist[arc_head[a]] = cand;
            s.pred[arc_head[a]] = a;
          }
        }
      }
    }
    return s.dist[static_cast<std::size_t>(files[k].max_transfer_slots) * n +
                  files[k].destination];
  };

  // Walks the predecessor grid back from (destination, deadline).
  auto reconstruct = [&](int k, const DpScratch& s) {
    std::vector<int> path;
    int node = files[k].destination;
    int layer = files[k].max_transfer_slots;
    path.reserve(static_cast<std::size_t>(layer));
    while (layer > 0) {
      const int a = s.pred[static_cast<std::size_t>(layer) * n + node];
      path.push_back(a);
      node = arc_from[a];
      --layer;
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  // Adds a priced path as a master column unless the path was seen before.
  auto append_column = [&](int k, std::vector<int>&& path_arcs) {
    if (!seen_paths.insert({k, path_arcs}).second) return false;
    PathColumn col;
    col.file = k;
    col.arcs = std::move(path_arcs);
    col.var = master.add_variable(0.0, lp::kInfinity, 0.0);
    master.add_coefficient(demand_row[k], col.var, 1.0);
    for (int a : col.arcs) {
      if (cap_row[a] >= 0) {
        master.add_coefficient(cap_row[a], col.var, 1.0);
        master.add_coefficient(chg_row[a], col.var, 1.0);
      }
    }
    columns.push_back(std::move(col));
    return true;
  };

  lp::RevisedSimplex::Options simplex_opts;
  simplex_opts.feas_tol = options.master_lp.feas_tol;
  simplex_opts.opt_tol = options.master_lp.opt_tol;
  if (options.master_lp.max_iterations > 0) {
    simplex_opts.max_iterations = options.master_lp.max_iterations;
  }
  lp::RevisedSimplex simplex(simplex_opts);
  lp::RevisedSimplex::WarmStart warm;  // reused across pricing rounds
  if (options.cross_slot_warm && warm_cache && warm_cache->valid) {
    warm = remap_warm_basis(*warm_cache, master, arcs, slot, xv, zv,
                            demand_row, cap_row, chg_row, options.carry_basis);
    result.warm_attempted = true;
  }

  // ---- Dual warm start: price every file once against the previous slot's
  // final duals (keyed by absolute (link, slot), so surviving arcs keep
  // yesterday's price and new frontier arcs price at zero) and seed the
  // master with the winners before the first solve. Purely additive — the
  // master's optimum is unchanged — but on slowly-drifting instances the
  // seeded columns are exactly the ones CG would spend its first rounds
  // discovering. The basis remap above stays valid: try_warm_start treats
  // columns newer than the snapshot as default-nonbasic.
  // With no previous-slot duals (the first slot, or an invalidated cache)
  // the same sweep runs against zero prices, seeding each file's best
  // uncongested path — the column round 0 would otherwise spend a full
  // master solve discovering.
  const bool have_prev_duals =
      warm_cache && warm_cache->valid && !warm_cache->arc_weights.empty();
  if (options.dual_warm) {
    if (have_prev_duals) result.dual_warm_attempted = true;
    // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
    const auto t0 = std::chrono::steady_clock::now();
    for (int a = 0; a < num_arcs; ++a) {
      arc_weight[a] = 0.0;
      if (cap_row[a] < 0 || !have_prev_duals) continue;
      const auto& weights = warm_cache->arc_weights;
      const auto it =
          weights.find({arcs[a].link_index, slot + arcs[a].layer});
      if (it != weights.end()) arc_weight[a] = it->second;
    }
    for (int k = 0; k < num_files; ++k) {
      if (file_view[k] == kUnreachable) continue;
      if (run_dp(k, scratch[0]) == kNegInf) continue;
      if (append_column(k, reconstruct(k, scratch[0]))) {
        ++result.dual_seed_columns;
      }
    }
    result.pricing_seconds +=
        // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  lp::Solution sol;
  // Last fully solved restricted master: optimal for its column set, hence
  // primal feasible for the slot problem (unrouted volume parked on z).
  // This is what a budget-truncated run commits.
  lp::Solution incumbent_sol;
  linalg::Vector incumbent_duals;  // duals at the best Lagrangian bound
  double best_objective = std::numeric_limits<double>::infinity();
  int stalled = 0;
  // Pricing results, one slot per file: workers fill disjoint slots, the
  // caller merges in file-index order (bit-for-bit the serial sweep).
  struct FilePrice {
    double reduced_cost = 0.0;
    bool found = false;
    bool add = false;
    std::vector<int> arcs;
  };
  std::vector<FilePrice> priced(static_cast<std::size_t>(num_files));
  // In-place master resumes (RevisedSimplex::resolve) are sound only while
  // the master grows append-only from a solved-to-optimality state; any
  // other outcome forces the next round back through a full solve.
  bool resume_ready = false;

  // POSTCARD_CG_TRACE=1 prints per-round progress to stderr (debug aid).
  const bool trace = std::getenv("POSTCARD_CG_TRACE") != nullptr;

  for (result.rounds = 0; result.rounds < options.max_rounds; ++result.rounds) {
    // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
    const auto t0 = std::chrono::steady_clock::now();
    // Direct simplex call (no presolve): exact duals for every master row.
    // Rounds after an optimal one resume in place — same basis, same LU
    // factorization, no phase 1 — since the master only gained columns;
    // otherwise the solve warm-starts from the previous round's basis.
    const bool resume = options.reuse_factorization && resume_ready &&
                        simplex.can_resume(master);
    // The warm basis is only ever read by a full solve, so it is extracted
    // lazily right before one (and once after the loop for the cross-slot
    // capture) — the simplex still holds the state the per-round snapshot
    // would have recorded, and resumed rounds skip the copy entirely.
    if (!resume && result.rounds > 0) warm = simplex.extract_warm_start();
    sol = resume
              ? simplex.resolve(master, budget)
              : simplex.solve(master, warm.basis.empty() ? nullptr : &warm,
                              budget);
    result.master_seconds +=
        // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (resume) ++result.resumed_solves;
    if (result.rounds == 0) result.warm_accepted = sol.warm_started;
    resume_ready = sol.optimal();
    result.lp_iterations += sol.iterations;
    result.master_status = sol.status;
    if (trace) {
      std::fprintf(
          stderr, "cg round %d: cols=%zu status=%s iters=%ld obj=%.4f %.2fs\n",
          result.rounds, columns.size(), lp::to_string(sol.status),
          sol.iterations, sol.objective,
          // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (sol.status == lp::SolveStatus::kDeadlineExceeded) {
      // Budget ran out mid-solve. The interrupted iterate may be primal
      // infeasible (a phase 1 cut short), so discard it and fall back to
      // the incumbent. Round-0 exhaustion has no incumbent: ok stays
      // false and the caller walks down its degradation ladder.
      if (incumbent_sol.optimal()) {
        sol = std::move(incumbent_sol);
        result.truncated = true;
        break;
      }
      return result;
    }
    if (!sol.optimal()) return result;  // ok stays false
    incumbent_sol = sol;

    // ---- Pricing: per file, the path maximizing the dual arc weights under
    // the supplied duals. Returns the Lagrangian slack sum_k F_k*min(0,rc_k)
    // and appends any new (deduplicated) improving columns. The per-file DPs
    // are independent — they read the shared weight array and write disjoint
    // priced[] slots — so they shard across the pricing pool; the merge
    // below runs on the caller in file-index order, making the emitted
    // column sequence (and every downstream plan) bit-for-bit the serial
    // sweep's.
    auto price = [&](const linalg::Vector& duals, bool* any_added) {
      // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
      const auto tp = std::chrono::steady_clock::now();
      double dual_scale = 1.0;
      for (double y : duals) dual_scale = std::max(dual_scale, std::abs(y));
      for (int a = 0; a < num_arcs; ++a) {
        arc_weight[a] =
            cap_row[a] < 0 ? 0.0 : duals[cap_row[a]] + duals[chg_row[a]];
      }
      const double threshold = -options.pricing_tol * dual_scale;
      auto price_range = [&](int k_begin, int k_end, DpScratch& s) {
        for (int k = k_begin; k < k_end; ++k) {
          FilePrice& out = priced[static_cast<std::size_t>(k)];
          out.found = out.add = false;
          out.arcs.clear();
          if (file_view[k] == kUnreachable) continue;  // no path can exist
          const double best = run_dp(k, s);
          if (best == kNegInf) continue;  // no path within the deadline
          out.found = true;
          out.reduced_cost = -duals[demand_row[k]] - best;
          if (out.reduced_cost >= threshold) continue;
          out.add = true;
          out.arcs = reconstruct(k, s);
        }
      };
      if (shard_pricing) {
        const int chunk = (num_files + pricing_shards - 1) / pricing_shards;
        std::vector<std::function<void()>> tasks;
        for (int t = 0; t < pricing_shards && t * chunk < num_files; ++t) {
          const int k_begin = t * chunk;
          const int k_end = std::min(num_files, k_begin + chunk);
          tasks.push_back([&price_range, &scratch, k_begin, k_end, t] {
            price_range(k_begin, k_end, scratch[static_cast<std::size_t>(t)]);
          });
        }
        options.pricing_pool->run_all(std::move(tasks));
      } else {
        price_range(0, num_files, scratch[0]);
      }
      // Deterministic merge, ascending file index.
      double slack = 0.0;
      for (int k = 0; k < num_files; ++k) {
        FilePrice& out = priced[static_cast<std::size_t>(k)];
        if (!out.found) continue;
        if (out.reduced_cost < 0.0) slack += files[k].size * out.reduced_cost;
        if (!out.add) continue;
        if (append_column(k, std::move(out.arcs))) *any_added = true;
      }
      result.pricing_seconds +=
          // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
          std::chrono::duration<double>(std::chrono::steady_clock::now() - tp)
              .count();
      return slack;
    };

    // True-dual pricing drives the Lagrangian bound (valid for any duals,
    // tightest at an optimum); incumbent-smoothed pricing (Wentges) damps
    // the dual oscillation that otherwise drags out degenerate tails.
    bool added = false;
    const double slack = price(sol.duals, &added);
    const double lb = sol.objective + slack;
    if (lb > result.lower_bound) {
      result.lower_bound = lb;
      incumbent_duals = sol.duals;
    }
    if (!incumbent_duals.empty()) {
      // Several smoothing weights per round: each yields a different path
      // family, multiplying the columns gathered per master solve.
      for (const double alpha : {0.5, 0.8, 0.95}) {
        linalg::Vector smoothed(sol.duals.size());
        for (std::size_t i = 0; i < smoothed.size(); ++i) {
          smoothed[i] =
              alpha * incumbent_duals[i] + (1.0 - alpha) * sol.duals[i];
        }
        price(smoothed, &added);
      }
    }

    if (!added) break;  // no improving path anywhere: LP optimum reached
    // Budget gone between rounds: keep the just-solved (optimal) master
    // instead of letting the next solve fail at its first pivot.
    if (budget && budget->exhausted()) {
      result.truncated = true;
      ++result.rounds;
      break;
    }
    if (sol.objective - result.lower_bound <=
        options.relative_gap * (1.0 + std::abs(sol.objective))) {
      ++result.rounds;
      break;  // provably within the requested gap
    }
    // Stall detection on the monotone master objective.
    if (!std::isfinite(best_objective) ||
        sol.objective < best_objective -
                            options.stall_tol * (1.0 + std::abs(best_objective))) {
      best_objective = sol.objective;
      stalled = 0;
    } else if (options.stall_rounds > 0 && ++stalled >= options.stall_rounds) {
      ++result.rounds;
      break;
    }
  }
  result.path_columns = static_cast<int>(columns.size());
  // Capture the final basis for the next slot. A failed round leaves the
  // cache untouched (it is only a hint); an artificial still basic makes
  // extract_warm_start return an empty basis, which we also skip.
  if (options.cross_slot_warm && warm_cache) {
    warm = simplex.extract_warm_start();  // lazy: see the solve loop
    if (!warm.basis.empty()) {
      capture_warm_basis(warm, arcs, slot, topology.num_links(), cap_row,
                         chg_row, warm_cache);
    }
  }
  // Capture the final duals as next slot's dual-warm pricing weights. Keyed
  // by absolute (link, slot) like the basis capture; the (rare) non-optimal
  // exit keeps last slot's weights instead of caching garbage.
  if (options.dual_warm && warm_cache && sol.optimal() && !sol.duals.empty()) {
    warm_cache->arc_weights.clear();
    for (int a = 0; a < num_arcs; ++a) {
      if (cap_row[a] < 0) continue;
      warm_cache->arc_weights.insert_or_assign(
          {arcs[a].link_index, slot + arcs[a].layer},
          sol.duals[cap_row[a]] + sol.duals[chg_row[a]]);
    }
    warm_cache->valid = true;
  }

  // ---- Extract plans and the objective.
  result.ok = true;
  result.feasible = true;
  result.unrouted.resize(files.size(), 0.0);
  for (int k = 0; k < num_files; ++k) {
    result.unrouted[k] = std::max(0.0, sol.x[zv[k]]);
    if (result.unrouted[k] > kFlowEps * (1.0 + files[k].size)) {
      result.feasible = false;
    }
  }
  result.objective = 0.0;
  for (int l = 0; l < topology.num_links(); ++l) {
    result.objective += topology.link(l).unit_cost * sol.x[xv[l]];
  }

  std::vector<std::map<int, double>> per_file_arc(files.size());
  for (const PathColumn& col : columns) {
    // Columns priced in after the last master solve have no entry in sol.x
    // (the gap- and stall-exits break between pricing and the next solve);
    // their flow is zero by definition.
    if (static_cast<std::size_t>(col.var) >= sol.x.size()) continue;
    const double flow = sol.x[col.var];
    if (flow <= kFlowEps) continue;
    for (int a : col.arcs) per_file_arc[col.file][a] += flow;
  }
  for (int k = 0; k < num_files; ++k) {
    FilePlan plan;
    plan.file_id = files[k].id;
    for (const auto& [a, volume] : per_file_arc[k]) {
      const net::TimeArc& arc = arcs[a];
      plan.transfers.push_back({slot + arc.layer, arc.from_node, arc.to_node,
                                volume, arc.link_index});
    }
    std::sort(plan.transfers.begin(), plan.transfers.end(),
              [](const Transfer& a, const Transfer& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
    result.plans.push_back(std::move(plan));
  }
  return result;
}

}  // namespace postcard::core
