#include "core/column_generation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "lp/simplex.h"
#include "net/sparse_time_expanded.h"
#include "net/time_expanded.h"

namespace postcard::core {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kFlowEps = 1e-7;
}  // namespace

namespace {

/// Builds the first-round warm basis from a prior slot's cache. The default
/// (canonical) remap reproduces the basis cold phase 1 terminates in on the
/// round-0 master — every z_k basic at F_k in its demand row, every other
/// row on its own logical, X at lower bound — so accepting it changes no
/// downstream pivot, only skips the phase-1 work. With `carry`, surviving
/// (link, absolute slot) capacity/epigraph rows additionally restore their
/// cached basic X variable and logical status.
lp::RevisedSimplex::WarmStart remap_warm_basis(
    const MasterWarmCache& cache, const lp::LpModel& master,
    const std::vector<net::TimeArc>& arcs, int slot,
    const std::vector<int>& xv, const std::vector<int>& zv,
    const std::vector<int>& demand_row, const std::vector<int>& cap_row,
    const std::vector<int>& chg_row, bool carry) {
  using WS = lp::RevisedSimplex::WarmStart;
  WS ws;
  const int rows = master.num_constraints();
  ws.col_status.assign(static_cast<std::size_t>(master.num_variables()),
                       WS::kAtLower);
  ws.row_status.assign(static_cast<std::size_t>(rows), WS::kBasic);
  ws.basis.resize(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) ws.basis[i] = -(i + 1);
  // Demand rows are new every slot: phase 1 always ends with z_k basic
  // (the only column in an equality row violated at the all-lower point).
  for (std::size_t k = 0; k < zv.size(); ++k) {
    ws.col_status[zv[k]] = WS::kBasic;
    ws.row_status[demand_row[k]] = WS::kAtLower;  // fixed logical (rl == ru)
    ws.basis[demand_row[k]] = zv[k];
  }
  if (!carry) return ws;
  // Carry mode: restore surviving capacity/epigraph row states. An X
  // variable can be basic in at most one row; first surviving key wins.
  std::vector<char> x_placed(xv.size(), 0);
  auto place = [&](int row, int cached_basic, signed char cached_status) {
    if (cached_basic < 0 || cached_basic >= static_cast<int>(xv.size())) {
      return;  // kLogical / kDropped / corrupt: keep the logical basic
    }
    if (x_placed[cached_basic] || cached_status == WS::kBasic) return;
    x_placed[cached_basic] = 1;
    ws.col_status[xv[cached_basic]] = WS::kBasic;
    ws.basis[row] = xv[cached_basic];
    ws.row_status[row] = cached_status;
  };
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    if (cap_row[a] < 0) continue;
    const net::TimeArc& arc = arcs[a];
    const auto it =
        cache.arc_rows.find({arc.link_index, slot + arc.layer});
    if (it == cache.arc_rows.end()) continue;
    place(cap_row[a], it->second.cap_basic, it->second.cap_status);
    place(chg_row[a], it->second.chg_basic, it->second.chg_status);
  }
  return ws;
}

/// Captures the final master basis into the cache, keyed by the (link,
/// absolute slot) identity of each capacity/epigraph row pair.
void capture_warm_basis(const lp::RevisedSimplex::WarmStart& warm,
                        const std::vector<net::TimeArc>& arcs, int slot,
                        int num_links, const std::vector<int>& cap_row,
                        const std::vector<int>& chg_row,
                        MasterWarmCache* cache) {
  cache->arc_rows.clear();
  auto classify = [&](int row) {
    const int b = warm.basis[row];
    if (b < 0) return MasterWarmCache::kLogical;
    if (b < num_links) return b;  // X columns are the first num_links vars
    return MasterWarmCache::kDropped;  // z or path column: gone next slot
  };
  for (std::size_t a = 0; a < arcs.size(); ++a) {
    if (cap_row[a] < 0) continue;
    const net::TimeArc& arc = arcs[a];
    MasterWarmCache::ArcRowState st;
    st.cap_basic = classify(cap_row[a]);
    st.chg_basic = classify(chg_row[a]);
    st.cap_status = warm.row_status[cap_row[a]];
    st.chg_status = warm.row_status[chg_row[a]];
    cache->arc_rows.insert_or_assign({arc.link_index, slot + arc.layer}, st);
  }
  cache->valid = true;
  ++cache->captured_solves;
}

}  // namespace

PathSolveResult solve_postcard_by_paths(const net::Topology& topology,
                                        const charging::ChargeState& charge,
                                        int slot,
                                        const std::vector<net::FileRequest>& files,
                                        const PathSolveOptions& options,
                                        MasterWarmCache* warm_cache,
                                        lp::SolveBudget* budget,
                                        net::SparseTimeGraph* sparse_graph) {
  PathSolveResult result;
  if (files.empty()) {
    result.ok = true;
    result.feasible = true;
    result.objective = charge.cost_per_interval(topology);
    return result;
  }
  for (const net::FileRequest& f : files) {
    validate(f, topology);
  }

  const int horizon = net::max_deadline(files);
  const auto residual_fn = [&](int link, int s) {
    return std::max(0.0,
                    topology.link(link).capacity - charge.committed(link, s));
  };
  // Graph backend: a caller-owned sparse arena advanced in place, or the
  // legacy dense rebuild. Both expose the identical arc sequence (same
  // layer-block layout), so everything below is backend-agnostic.
  std::optional<net::TimeExpandedGraph> dense;
  if (sparse_graph != nullptr) {
    sparse_graph->advance_to(topology, slot, horizon, residual_fn);
  } else {
    dense.emplace(topology, slot, horizon, residual_fn);
  }
  const std::vector<net::TimeArc>& arcs =
      sparse_graph != nullptr ? sparse_graph->arcs() : dense->arcs();
  std::vector<std::pair<int, int>> layer_ranges(
      static_cast<std::size_t>(horizon));
  for (int layer = 0; layer < horizon; ++layer) {
    layer_ranges[layer] = sparse_graph != nullptr
                              ? sparse_graph->layer_arc_range(layer)
                              : dense->layer_arc_range(layer);
  }
  const int n = topology.num_datacenters();
  const int num_files = static_cast<int>(files.size());
  const int num_arcs = static_cast<int>(arcs.size());

  // ---- Restricted master: X, z, and the fixed row structure.
  lp::LpModel master;
  std::vector<int> xv(topology.num_links());
  for (int l = 0; l < topology.num_links(); ++l) {
    xv[l] = master.add_variable(charge.charged(l), lp::kInfinity,
                                topology.link(l).unit_cost);
  }
  std::vector<int> zv(files.size());
  std::vector<int> demand_row(files.size());
  for (int k = 0; k < num_files; ++k) {
    zv[k] = master.add_variable(0.0, files[k].size, options.unrouted_cost);
    demand_row[k] = master.add_constraint(files[k].size, files[k].size);
    master.add_coefficient(demand_row[k], zv[k], 1.0);
  }
  std::vector<int> cap_row(num_arcs, -1), chg_row(num_arcs, -1);
  for (int a = 0; a < num_arcs; ++a) {
    const net::TimeArc& arc = arcs[a];
    if (arc.storage()) continue;
    cap_row[a] = master.add_constraint(-lp::kInfinity, arc.capacity);
    chg_row[a] = master.add_constraint(
        -lp::kInfinity, -charge.committed(arc.link_index, slot + arc.layer));
    master.add_coefficient(chg_row[a], xv[arc.link_index], -1.0);
  }

  struct PathColumn {
    int var;
    int file;
    std::vector<int> arcs;
  };
  std::vector<PathColumn> columns;
  // Degenerate master duals can re-price an existing path negative without
  // any possible improvement; adding it again would loop forever.
  std::set<std::pair<int, std::vector<int>>> seen_paths;

  // Per-file arc usability (deadline subgraph + storage ablation).
  auto usable = [&](int k, const net::TimeArc& arc) {
    if (arc.layer >= files[k].max_transfer_slots) return false;
    if (arc.storage() && !options.allow_storage &&
        arc.from_node != files[k].source &&
        arc.from_node != files[k].destination) {
      return false;
    }
    return true;
  };

  // ---- Per-commodity reachability pruning (sparse backend only).
  //
  // A commodity is a distinct (source, destination, deadline): its pricing
  // DP can only ever use an arc at layer L whose tail is reachable from the
  // source within L links AND whose head can still reach the destination in
  // the remaining deadline - L - 1 layers (structural hops; storage does
  // not move). Each commodity gets a compact per-layer arc list holding
  // exactly those arcs, in the block order of the full sweep, built once
  // per solve and reused across every pricing round.
  //
  // Bit-for-bit safety: a tail-pruned arc relaxes from a cell the DP can
  // never make finite (dist stays -inf), and head-pruned arcs only write
  // cells that are closed under forward arcs away from the destination —
  // the reconstruction walk from (destination, deadline) never enters
  // them. Every dist/pred cell the walk reads is therefore identical to
  // the full sweep's, so the generated columns (and the master, and the
  // plans) do not change.
  struct CommodityView {
    std::vector<int> arc_ids;
    std::vector<int> layer_begin;  // deadline + 1 offsets into arc_ids
  };
  std::vector<CommodityView> views;
  constexpr int kFullSweep = -1;   // dense backend: price over every arc
  constexpr int kUnreachable = -2; // no path within the deadline: skip file
  std::vector<int> file_view(static_cast<std::size_t>(num_files), kFullSweep);
  if (sparse_graph != nullptr) {
    std::map<std::tuple<int, int, int>, int> by_commodity;
    for (int k = 0; k < num_files; ++k) {
      const int src = files[k].source;
      const int dst = files[k].destination;
      const int deadline = files[k].max_transfer_slots;
      if (sparse_graph->hops(src, dst) > deadline) {
        file_view[k] = kUnreachable;
        continue;
      }
      const auto [it, inserted] =
          by_commodity.try_emplace({src, dst, deadline},
                                   static_cast<int>(views.size()));
      file_view[k] = it->second;
      if (!inserted) continue;
      CommodityView view;
      const int* fwd = sparse_graph->hops_from(src);
      view.layer_begin.reserve(static_cast<std::size_t>(deadline) + 1);
      for (int layer = 0; layer < deadline; ++layer) {
        view.layer_begin.push_back(static_cast<int>(view.arc_ids.size()));
        const auto [begin, end] = layer_ranges[layer];
        const int remaining = deadline - layer - 1;
        for (int a = begin; a < end; ++a) {
          const net::TimeArc& arc = arcs[a];
          if (arc.storage() && !options.allow_storage &&
              arc.from_node != src && arc.from_node != dst) {
            continue;
          }
          if (fwd[arc.from_node] > layer) continue;
          if (sparse_graph->hops(arc.to_node, dst) > remaining) continue;
          view.arc_ids.push_back(a);
        }
      }
      view.layer_begin.push_back(static_cast<int>(view.arc_ids.size()));
      views.push_back(std::move(view));
    }
  }

  lp::RevisedSimplex::Options simplex_opts;
  simplex_opts.feas_tol = options.master_lp.feas_tol;
  simplex_opts.opt_tol = options.master_lp.opt_tol;
  if (options.master_lp.max_iterations > 0) {
    simplex_opts.max_iterations = options.master_lp.max_iterations;
  }
  lp::RevisedSimplex simplex(simplex_opts);
  lp::RevisedSimplex::WarmStart warm;  // reused across pricing rounds
  if (options.cross_slot_warm && warm_cache && warm_cache->valid) {
    warm = remap_warm_basis(*warm_cache, master, arcs, slot, xv, zv,
                            demand_row, cap_row, chg_row, options.carry_basis);
    result.warm_attempted = true;
  }

  lp::Solution sol;
  // Last fully solved restricted master: optimal for its column set, hence
  // primal feasible for the slot problem (unrouted volume parked on z).
  // This is what a budget-truncated run commits.
  lp::Solution incumbent_sol;
  linalg::Vector incumbent_duals;  // duals at the best Lagrangian bound
  double best_objective = std::numeric_limits<double>::infinity();
  int stalled = 0;
  std::vector<double> dist(static_cast<std::size_t>(n) * (horizon + 1));
  std::vector<int> pred(static_cast<std::size_t>(n) * (horizon + 1));

  // POSTCARD_CG_TRACE=1 prints per-round progress to stderr (debug aid).
  const bool trace = std::getenv("POSTCARD_CG_TRACE") != nullptr;

  for (result.rounds = 0; result.rounds < options.max_rounds; ++result.rounds) {
    const auto t0 = std::chrono::steady_clock::now();
    // Direct simplex call (no presolve): exact duals for every master row
    // plus a warm start from the previous round's basis.
    sol = simplex.solve(master, warm.basis.empty() ? nullptr : &warm, budget);
    if (result.rounds == 0) result.warm_accepted = sol.warm_started;
    warm = simplex.extract_warm_start();
    result.lp_iterations += sol.iterations;
    result.master_status = sol.status;
    if (trace) {
      std::fprintf(
          stderr, "cg round %d: cols=%zu status=%s iters=%ld obj=%.4f %.2fs\n",
          result.rounds, columns.size(), lp::to_string(sol.status),
          sol.iterations, sol.objective,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count());
    }
    if (sol.status == lp::SolveStatus::kDeadlineExceeded) {
      // Budget ran out mid-solve. The interrupted iterate may be primal
      // infeasible (a phase 1 cut short), so discard it and fall back to
      // the incumbent. Round-0 exhaustion has no incumbent: ok stays
      // false and the caller walks down its degradation ladder.
      if (incumbent_sol.optimal()) {
        sol = std::move(incumbent_sol);
        result.truncated = true;
        break;
      }
      return result;
    }
    if (!sol.optimal()) return result;  // ok stays false
    incumbent_sol = sol;

    // ---- Pricing: per file, the path maximizing the dual arc weights under
    // the supplied duals. Returns the Lagrangian slack sum_k F_k*min(0,rc_k)
    // and appends any new (deduplicated) improving columns.
    auto price = [&](const linalg::Vector& duals, bool* any_added) {
      double slack = 0.0;
      double dual_scale = 1.0;
      for (double y : duals) dual_scale = std::max(dual_scale, std::abs(y));
      for (int k = 0; k < num_files; ++k) {
        if (file_view[k] == kUnreachable) continue;  // no path can exist
        const int deadline = files[k].max_transfer_slots;
        std::fill(dist.begin(), dist.end(), kNegInf);
        std::fill(pred.begin(), pred.end(), -1);
        dist[files[k].source] = 0.0;  // (source, layer 0)
        if (file_view[k] == kFullSweep) {
          for (int layer = 0; layer < deadline; ++layer) {
            const auto [begin, end] = layer_ranges[layer];
            for (int a = begin; a < end; ++a) {
              const net::TimeArc& arc = arcs[a];
              if (!usable(k, arc)) continue;
              const double from = dist[layer * n + arc.from_node];
              if (from == kNegInf) continue;
              const double w =
                  arc.storage() ? 0.0 : duals[cap_row[a]] + duals[chg_row[a]];
              double& to = dist[(layer + 1) * n + arc.to_node];
              if (from + w > to) {
                to = from + w;
                pred[(layer + 1) * n + arc.to_node] = a;
              }
            }
          }
        } else {
          // Pruned subproblem: same relaxation order over the commodity's
          // surviving arcs only (deadline and ablation checks are baked
          // into the view).
          const CommodityView& view = views[file_view[k]];
          for (int layer = 0; layer < deadline; ++layer) {
            const int begin = view.layer_begin[layer];
            const int end = view.layer_begin[layer + 1];
            for (int i = begin; i < end; ++i) {
              const int a = view.arc_ids[i];
              const net::TimeArc& arc = arcs[a];
              const double from = dist[layer * n + arc.from_node];
              if (from == kNegInf) continue;
              const double w =
                  arc.storage() ? 0.0 : duals[cap_row[a]] + duals[chg_row[a]];
              double& to = dist[(layer + 1) * n + arc.to_node];
              if (from + w > to) {
                to = from + w;
                pred[(layer + 1) * n + arc.to_node] = a;
              }
            }
          }
        }
        const double best = dist[deadline * n + files[k].destination];
        if (best == kNegInf) continue;  // no path within the deadline
        const double reduced_cost = -duals[demand_row[k]] - best;
        if (reduced_cost < 0.0) slack += files[k].size * reduced_cost;
        if (reduced_cost >= -options.pricing_tol * dual_scale) continue;

        PathColumn col;
        col.file = k;
        int node = files[k].destination, layer = deadline;
        while (layer > 0) {
          const int a = pred[layer * n + node];
          col.arcs.push_back(a);
          node = arcs[a].from_node;
          --layer;
        }
        std::reverse(col.arcs.begin(), col.arcs.end());
        if (!seen_paths.insert({k, col.arcs}).second) continue;  // duplicate
        col.var = master.add_variable(0.0, lp::kInfinity, 0.0);
        master.add_coefficient(demand_row[k], col.var, 1.0);
        for (int a : col.arcs) {
          if (cap_row[a] >= 0) {
            master.add_coefficient(cap_row[a], col.var, 1.0);
            master.add_coefficient(chg_row[a], col.var, 1.0);
          }
        }
        columns.push_back(std::move(col));
        *any_added = true;
      }
      return slack;
    };

    // True-dual pricing drives the Lagrangian bound (valid for any duals,
    // tightest at an optimum); incumbent-smoothed pricing (Wentges) damps
    // the dual oscillation that otherwise drags out degenerate tails.
    bool added = false;
    const double slack = price(sol.duals, &added);
    const double lb = sol.objective + slack;
    if (lb > result.lower_bound) {
      result.lower_bound = lb;
      incumbent_duals = sol.duals;
    }
    if (!incumbent_duals.empty()) {
      // Several smoothing weights per round: each yields a different path
      // family, multiplying the columns gathered per master solve.
      for (const double alpha : {0.5, 0.8, 0.95}) {
        linalg::Vector smoothed(sol.duals.size());
        for (std::size_t i = 0; i < smoothed.size(); ++i) {
          smoothed[i] =
              alpha * incumbent_duals[i] + (1.0 - alpha) * sol.duals[i];
        }
        price(smoothed, &added);
      }
    }

    if (!added) break;  // no improving path anywhere: LP optimum reached
    // Budget gone between rounds: keep the just-solved (optimal) master
    // instead of letting the next solve fail at its first pivot.
    if (budget && budget->exhausted()) {
      result.truncated = true;
      ++result.rounds;
      break;
    }
    if (sol.objective - result.lower_bound <=
        options.relative_gap * (1.0 + std::abs(sol.objective))) {
      ++result.rounds;
      break;  // provably within the requested gap
    }
    // Stall detection on the monotone master objective.
    if (!std::isfinite(best_objective) ||
        sol.objective < best_objective -
                            options.stall_tol * (1.0 + std::abs(best_objective))) {
      best_objective = sol.objective;
      stalled = 0;
    } else if (options.stall_rounds > 0 && ++stalled >= options.stall_rounds) {
      ++result.rounds;
      break;
    }
  }
  result.path_columns = static_cast<int>(columns.size());
  // Capture the final basis for the next slot. A failed round leaves the
  // cache untouched (it is only a hint); an artificial still basic makes
  // extract_warm_start return an empty basis, which we also skip.
  if (options.cross_slot_warm && warm_cache && !warm.basis.empty()) {
    capture_warm_basis(warm, arcs, slot, topology.num_links(), cap_row,
                       chg_row, warm_cache);
  }

  // ---- Extract plans and the objective.
  result.ok = true;
  result.feasible = true;
  result.unrouted.resize(files.size(), 0.0);
  for (int k = 0; k < num_files; ++k) {
    result.unrouted[k] = std::max(0.0, sol.x[zv[k]]);
    if (result.unrouted[k] > kFlowEps * (1.0 + files[k].size)) {
      result.feasible = false;
    }
  }
  result.objective = 0.0;
  for (int l = 0; l < topology.num_links(); ++l) {
    result.objective += topology.link(l).unit_cost * sol.x[xv[l]];
  }

  std::vector<std::map<int, double>> per_file_arc(files.size());
  for (const PathColumn& col : columns) {
    // Columns priced in after the last master solve have no entry in sol.x
    // (the gap- and stall-exits break between pricing and the next solve);
    // their flow is zero by definition.
    if (static_cast<std::size_t>(col.var) >= sol.x.size()) continue;
    const double flow = sol.x[col.var];
    if (flow <= kFlowEps) continue;
    for (int a : col.arcs) per_file_arc[col.file][a] += flow;
  }
  for (int k = 0; k < num_files; ++k) {
    FilePlan plan;
    plan.file_id = files[k].id;
    for (const auto& [a, volume] : per_file_arc[k]) {
      const net::TimeArc& arc = arcs[a];
      plan.transfers.push_back({slot + arc.layer, arc.from_node, arc.to_node,
                                volume, arc.link_index});
    }
    std::sort(plan.transfers.begin(), plan.transfers.end(),
              [](const Transfer& a, const Transfer& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
    result.plans.push_back(std::move(plan));
  }
  return result;
}

}  // namespace postcard::core
