// Path-based Dantzig-Wolfe column generation for the Postcard LP.
//
// The arc-flow formulation (core/formulation.h) is exact but hands the
// simplex a massively degenerate conservation system: per-file flow balance
// at every virtual node stalls the iteration on >90% zero-length pivots.
// The path reformulation eliminates conservation entirely:
//
//   variables  f_p    flow on a source->destination path p through the
//                     time-expanded DAG (storage arcs included), per file
//              X_l    charged volume per link (epigraph), lb X_l(t-1)
//              z_k    unrouted volume, big-M cost (keeps the restricted
//                     master feasible; z_k > 0 at the end => infeasible)
//   rows       demand      sum_p f_p + z_k = F_k            (K rows)
//              capacity    sum_{p over (l,n)} f_p <= residual_{l,n}
//              epigraph    sum_{p over (l,n)} f_p - X_l <= -committed_{l,n}
//   objective  min sum_l a_l X_l + M sum_k z_k
//
// Pricing: a path column for file k has reduced cost
//   -sigma_k - sum_{(l,n) in p} (mu_{l,n} + nu_{l,n}),
// so the most attractive path maximizes the sum of (mu + nu) arc weights —
// a longest-path DP over the layered DAG, O(arcs) per file. Columns are
// added until no path prices negative; the result is the exact LP optimum
// of the same polytope (every DAG flow decomposes into path flows).
//
// Restrictions vs the direct formulation: storage must be uncapped (finite
// storage_capacity would need storage rows in the master); elastic/pinned
// modes are not provided here (the Sec. VI extensions run at small scale on
// the direct formulation).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "charging/charge_state.h"
#include "core/formulation.h"
#include "core/plan.h"
#include "lp/budget.h"
#include "lp/simplex.h"
#include "lp/solver.h"
#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::base {
class WorkerPool;
}  // namespace postcard::base

namespace postcard::net {
class SparseTimeGraph;
}  // namespace postcard::net

namespace postcard::core {

/// Cross-slot warm-start cache for the restricted master.
///
/// The controller solves a nearly identical master every slot: the X (one
/// per link) columns persist, while the demand rows, z columns and path
/// columns are rebuilt for the new batch, and the capacity/epigraph row
/// pairs shift with the horizon window. The cache captures the final basis
/// of a slot's last master solve keyed by what survives — the (link,
/// absolute slot) identity of every capacity/epigraph row pair — so the
/// next slot's first master solve can be seeded without a phase 1:
///
///   * demand rows are new: each file's z column is made basic at F_k,
///     which is exactly the basis cold phase 1 terminates in;
///   * capacity/epigraph rows whose (link, absolute slot) key survives the
///     window shift keep their logical statuses (carry mode only), rows
///     whose basic variable was a dropped per-slot column (z or path)
///     revert to their own logical;
///   * rows that expired out of the window are dropped, new rows default.
///
/// The remapped snapshot is only a hint: RevisedSimplex verifies it
/// (nonsingular + primal feasible) and falls back to a cold start
/// otherwise, so a stale cache can never change the optimum.
struct MasterWarmCache {
  static constexpr int kLogical = -1;  // a row logical was basic here
  static constexpr int kDropped = -2;  // a per-slot column (z/path) was basic

  struct ArcRowState {
    int cap_basic = kLogical;    // kLogical, kDropped, or >= 0: X of that link
    int chg_basic = kLogical;
    signed char cap_status = 0;  // row-logical status (WarmStart::k* codes)
    signed char chg_status = 0;
  };

  bool valid = false;
  long captured_solves = 0;  // diagnostics: snapshots taken so far
  std::map<std::pair<int, int>, ArcRowState> arc_rows;  // (link, abs slot)
  // Dual warm starts (PathSolveOptions::dual_warm): the final master duals,
  // reduced to the per-arc pricing weight mu + nu and keyed by the same
  // (link, absolute slot) identity that survives the window shift. The next
  // slot prices each file once against yesterday's weights before its first
  // master solve and seeds the master with the resulting best paths — a
  // cheaper use of the previous slot than the basis remap (no verification
  // solve can reject it; extra columns never change the optimum).
  std::map<std::pair<int, int>, double> arc_weights;  // (link, abs slot)
};

struct PathSolveOptions {
  lp::SolverOptions master_lp;
  int max_rounds = 2000;       // pricing rounds before giving up
  double pricing_tol = 1e-7;   // reduced-cost threshold for new columns
  double unrouted_cost = 1e6;  // big-M on z_k
  bool allow_storage = true;   // mirror of FormulationOptions::allow_storage
  // Convergence: stop once the Lagrangian bound proves the master objective
  // is within this relative gap of the true LP optimum. CG objectives have a
  // long tail of vanishing improvements; the bound cuts it off with a
  // certificate instead of an arbitrary round limit.
  double relative_gap = 1e-5;
  // Secondary stop: the master objective is monotone, so a long run of
  // rounds without relative improvement beyond `stall_tol` means the
  // remaining columns only re-express alternative optima. 0 disables.
  int stall_rounds = 40;
  double stall_tol = 1e-9;
  // Cross-slot warm starts: seed the first master solve from a caller-kept
  // MasterWarmCache (no-op without one). The default canonical remap
  // reproduces the basis cold phase 1 terminates in, so the solve
  // trajectory — and every downstream plan — is bit-for-bit identical to a
  // cold start, minus the phase-1 work.
  bool cross_slot_warm = true;
  // Carry surviving (link, slot) row statuses and basic X variables from
  // the cached basis instead of the canonical remap. Starts closer to the
  // optimum on slowly-drifting instances but may land degenerate masters
  // on a different alternate optimum than a cold start would (identical
  // per-slot objective, possibly different plans).
  bool carry_basis = false;
  // Resume the restricted master in place between pricing rounds
  // (RevisedSimplex::resolve): the master only ever grows by appended
  // columns within a slot, so the incumbent basis, its LU factorization and
  // its product-form updates all stay valid — rounds after the first pay
  // neither a refactorization nor a phase 1. Deterministic: the resumed
  // trajectory is a pure function of the master and the incumbent state.
  bool reuse_factorization = true;
  // Seed the first master solve with each file's best path priced against
  // the previous slot's final duals (cached in MasterWarmCache). Changes
  // which columns the master starts with — same optimum, possibly a
  // different (cheaper-to-reach) trajectory — so it defaults off where
  // bit-for-bit replay against older baselines matters.
  bool dual_warm = false;
  // Shards the per-file pricing DP across this pool (null or zero threads =
  // serial). Results are merged in file-index order, so the generated
  // columns, the master and every downstream plan are bit-for-bit identical
  // to the serial sweep.
  base::WorkerPool* pricing_pool = nullptr;
};

struct PathSolveResult {
  bool ok = false;             // master solved and all demand routed
  bool feasible = false;       // z == 0 (all files fully routed)
  double objective = 0.0;      // sum a_l X_l at the optimum
  std::vector<double> unrouted;  // per file (input order): z_k volume
  std::vector<FilePlan> plans;
  long lp_iterations = 0;      // summed across master solves
  int rounds = 0;
  int path_columns = 0;
  double lower_bound = 0.0;    // Lagrangian bound on the LP optimum
  lp::SolveStatus master_status = lp::SolveStatus::kNumericalFailure;
  // A SolveBudget ran out before CG converged and the result holds the
  // incumbent restricted-master optimum instead of the full LP optimum.
  // ok is still true: the incumbent is primal feasible for the slot
  // problem (unrouted volume sits on the z columns, reported as usual).
  bool truncated = false;
  // Cross-slot warm-start outcome of the first master solve: attempted is
  // true when a valid cache was remapped in, accepted when the solver's
  // verification kept it (vs. falling back to a cold start).
  bool warm_attempted = false;
  bool warm_accepted = false;
  // Hot-path split: wall time inside the pricing DP (every pass, including
  // the dual-warm seeding) vs. inside the restricted-master solves.
  double pricing_seconds = 0.0;
  double master_seconds = 0.0;
  // Master solves resumed in place (factorization kept, no phase 1).
  int resumed_solves = 0;
  // Dual warm start outcome: attempted when cached weights existed for this
  // slot, seeded counts the columns they contributed before round 0.
  bool dual_warm_attempted = false;
  int dual_seed_columns = 0;
};

/// Solves the slot-t Postcard problem for `files` against `charge` by column
/// generation. Read-only with respect to the charge state. When
/// `warm_cache` is supplied, the first master solve is seeded from it (see
/// MasterWarmCache) and the final basis is captured back into it for the
/// next slot.
///
/// A limited `budget` is shared by every master solve (charged per pivot)
/// and checked between pricing rounds. On exhaustion the incumbent
/// restricted-master optimum is returned with `truncated` set; exhaustion
/// before any master solved leaves ok false with kDeadlineExceeded.
///
/// With a caller-owned `sparse_graph`, the time-expanded expansion is
/// advanced incrementally inside the arena instead of rebuilt dense
/// (net::SparseTimeGraph), and pricing runs over per-commodity
/// reachability-pruned subproblems: only the arcs a file can traverse
/// within its deadline window appear in its DP. The arena layout matches
/// the dense build arc for arc, and pruning removes only arcs that cannot
/// influence the DP cells the path reconstruction reads, so plans — and
/// every downstream cost series — are bit-for-bit identical either way.
PathSolveResult solve_postcard_by_paths(const net::Topology& topology,
                                        const charging::ChargeState& charge,
                                        int slot,
                                        const std::vector<net::FileRequest>& files,
                                        const PathSolveOptions& options = {},
                                        MasterWarmCache* warm_cache = nullptr,
                                        lp::SolveBudget* budget = nullptr,
                                        net::SparseTimeGraph* sparse_graph = nullptr);

}  // namespace postcard::core
