#include "core/greedy.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace postcard::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

GreedyScheduler::GreedyScheduler(net::Topology topology, GreedyOptions options)
    : topology_(std::move(topology)),
      options_(options),
      charge_(topology_.num_links()) {}

sim::ScheduleOutcome GreedyScheduler::schedule(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome;
  last_plans_.clear();
  std::vector<net::FileRequest> batch = files;
  for (const net::FileRequest& f : batch) validate(f, topology_);
  // Most-urgent-first: smallest deadline, largest size breaking ties.
  std::stable_sort(batch.begin(), batch.end(), [](const auto& a, const auto& b) {
    if (a.max_transfer_slots != b.max_transfer_slots) {
      return a.max_transfer_slots < b.max_transfer_slots;
    }
    return a.size > b.size;
  });

  for (const net::FileRequest& file : batch) {
    FilePlan plan;
    double gave_up = 0.0;
    const GreedyRoute r =
        greedy_route_file(topology_, options_, file, charge_, plan, &gave_up);
    if (r == GreedyRoute::kRouted) {
      outcome.accepted_ids.push_back(file.id);
      last_plans_.push_back(std::move(plan));
    } else {
      outcome.rejected_ids.push_back(file.id);
      outcome.rejected_volume += file.size;
      if (r == GreedyRoute::kChunkLimit) {
        // The chunk budget, not the network, stopped this file — count the
        // abandoned volume loudly instead of folding it into a plain reject.
        ++outcome.gave_up_files;
        outcome.gave_up_volume += gave_up;
      }
    }
  }
  (void)slot;
  return outcome;
}

GreedyRoute greedy_route_file(const net::Topology& topology,
                              const GreedyOptions& options,
                              const net::FileRequest& file,
                              charging::ChargeState& state, FilePlan& plan,
                              double* gave_up_volume) {
  charging::ChargeState scratch = state;  // roll back on failure
  const int n = topology.num_datacenters();
  const int deadline = file.max_transfer_slots;
  const int t0 = file.release_slot;
  plan.file_id = file.id;
  // Aggregated volumes per (layer, from, to, link) for the final plan.
  std::map<std::tuple<int, int, int, int>, double> moved;

  double remaining = file.size;
  for (int chunk_round = 0;
       remaining > kEps && chunk_round < options.max_chunks_per_file;
       ++chunk_round) {
    // Cheapest 1-GB path by marginal charge: DP over (dc, layer).
    std::vector<double> dist(static_cast<std::size_t>(n) * (deadline + 1), kInf);
    // Predecessor: encodes (prev_dc, link or -1 for storage).
    std::vector<std::pair<int, int>> pred(
        static_cast<std::size_t>(n) * (deadline + 1), {-1, -2});
    dist[file.source] = 0.0;
    for (int layer = 0; layer < deadline; ++layer) {
      for (int from = 0; from < n; ++from) {
        const double base = dist[layer * n + from];
        if (base == kInf) continue;
        // Storage arc (self-loop), free and uncapped.
        const bool storage_ok =
            options.allow_storage || from == file.source ||
            from == file.destination;
        if (storage_ok && base < dist[(layer + 1) * n + from]) {
          dist[(layer + 1) * n + from] = base;
          pred[(layer + 1) * n + from] = {from, -1};
        }
        // Adjacency list in ascending-destination order: the identical
        // relaxation order as the old `to = 0..n-1` dense-index scan, so
        // cost ties break the same way, at O(out-degree) per node.
        for (const int link : topology.out_links(from)) {
          const int to = topology.link(link).to;
          const int s = t0 + layer;
          if (topology.link(link).capacity - scratch.committed(link, s) <=
              kEps) {
            continue;  // slot full
          }
          const double marginal = scratch.free_headroom(link, s) > kEps
                                      ? 0.0
                                      : topology.link(link).unit_cost;
          if (base + marginal < dist[(layer + 1) * n + to] - 1e-15) {
            dist[(layer + 1) * n + to] = base + marginal;
            pred[(layer + 1) * n + to] = {from, link};
          }
        }
      }
    }
    if (dist[deadline * n + file.destination] == kInf) {
      return GreedyRoute::kNoPath;
    }

    // Walk the path backwards, collecting arcs and the feasible chunk size.
    std::vector<std::tuple<int, int, int, int>> path;  // (layer, from, to, link)
    double chunk = remaining;
    int hops = 0;
    int node = file.destination;
    for (int layer = deadline; layer > 0; --layer) {
      const auto [prev, link] = pred[layer * n + node];
      path.emplace_back(layer - 1, prev, node, link);
      if (link >= 0) {
        ++hops;
        const int s = t0 + layer - 1;
        chunk = std::min(chunk, topology.link(link).capacity -
                                    scratch.committed(link, s));
        // Keep "free" arcs free for the whole chunk so the path cost
        // estimate stays valid.
        const double headroom = scratch.free_headroom(link, s);
        if (headroom > kEps) chunk = std::min(chunk, headroom);
      }
      node = prev;
    }
    // Spreading heuristic: this spatial path can be restarted in
    // deadline - hops + 1 different slots; under 100-th percentile charging
    // the charge tracks the per-slot MAX, so splitting the remaining volume
    // evenly across the possible starts is strictly cheaper than bursting.
    const int starts = std::max(1, deadline - hops + 1);
    chunk = std::min(chunk, std::max(remaining / starts, kEps * 10.0));
    if (chunk <= kEps) return GreedyRoute::kNoPath;

    for (const auto& [layer, from, to, link] : path) {
      moved[{layer, from, to, link}] += chunk;
      if (link >= 0) scratch.commit(link, t0 + layer, chunk);
    }
    remaining -= chunk;
  }
  if (remaining > kEps * (1.0 + file.size)) {
    if (gave_up_volume) *gave_up_volume = remaining;
    return GreedyRoute::kChunkLimit;
  }

  for (const auto& [key, volume] : moved) {
    const auto& [layer, from, to, link] = key;
    plan.transfers.push_back({t0 + layer, from, to, volume, link});
  }
  std::sort(plan.transfers.begin(), plan.transfers.end(),
            [](const Transfer& a, const Transfer& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  state = std::move(scratch);
  return GreedyRoute::kRouted;
}

}  // namespace postcard::core
