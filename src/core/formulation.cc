#include "core/formulation.h"

#include <algorithm>
#include <stdexcept>

#include "net/sparse_time_expanded.h"

namespace postcard::core {

TimeExpandedFormulation::TimeExpandedFormulation(
    const net::Topology& topology, const charging::ChargeState& charge,
    int slot, const std::vector<net::FileRequest>& files,
    const FormulationOptions& options)
    : topology_(topology),
      files_(files),
      slot_(slot),
      options_(options),
      graph_(topology, slot, std::max(1, net::max_deadline(files)),
             [&topology, &charge](int link, int s) {
               return std::max(0.0, topology.link(link).capacity -
                                        charge.committed(link, s));
             },
             options.storage_capacity, /*enable_storage=*/true) {
  if (files_.empty()) throw std::invalid_argument("empty file batch");
  for (const net::FileRequest& f : files_) {
    validate(f, topology);
    if (f.release_slot != slot) {
      throw std::invalid_argument("file release slot differs from batch slot");
    }
  }

  const int num_files = static_cast<int>(files_.size());
  const int num_arcs = graph_.num_arcs();
  const int num_nodes = topology.num_datacenters();

  // ---- Variables.
  // Opt-in reachability pruning: conservation forces M^k to zero on any
  // arc whose tail s_k cannot reach in time or whose head cannot reach d_k
  // in the remaining layers, so those variables can be dropped without
  // changing the feasible flows (see FormulationOptions::prune_unreachable).
  std::vector<int> hops;
  if (options_.prune_unreachable) hops = net::all_pairs_hops(topology);
  flow_vars_.assign(num_files, std::vector<int>(num_arcs, -1));
  for (int k = 0; k < num_files; ++k) {
    const net::FileRequest& f = files_[k];
    const int deadline = f.max_transfer_slots;  // layers 0..deadline
    for (int a = 0; a < num_arcs; ++a) {
      const net::TimeArc& arc = graph_.arcs()[a];
      if (arc.layer >= deadline) continue;  // constraint (10)
      // The no-storage ablation forbids holdovers at intermediate DCs only:
      // the source can always pace its own data and the destination is the
      // file's final resting place.
      if (arc.storage() && !options_.allow_storage &&
          arc.from_node != f.source && arc.from_node != f.destination) {
        continue;
      }
      if (options_.prune_unreachable) {
        if (hops[f.source * num_nodes + arc.from_node] > arc.layer) continue;
        if (hops[arc.to_node * num_nodes + f.destination] >
            deadline - arc.layer - 1) {
          continue;
        }
      }
      flow_vars_[k][a] = model_.add_variable(0.0, lp::kInfinity, 0.0);
    }
  }
  charge_vars_.resize(topology.num_links());
  for (int l = 0; l < topology.num_links(); ++l) {
    const double current = charge.charged(l);
    const double upper = options_.pin_charge ? current : lp::kInfinity;
    // Elastic mode maximizes delivery only; pricing X there would make a
    // unit of charge exactly cancel the delivery it enables (degenerate
    // ties), so the budget/pin constraints alone bound the charge.
    const double cost =
        options_.elastic_demand ? 0.0 : topology.link(l).unit_cost;
    charge_vars_[l] = model_.add_variable(current, upper, cost);
  }
  supply_vars_.assign(num_files, -1);
  if (options_.elastic_demand) {
    for (int k = 0; k < num_files; ++k) {
      supply_vars_[k] = model_.add_variable(0.0, files_[k].size, -1.0);
    }
  }

  // ---- Conservation (8) per file, per virtual node.
  for (int k = 0; k < num_files; ++k) {
    const net::FileRequest& f = files_[k];
    const int deadline = f.max_transfer_slots;
    std::vector<int> rows(static_cast<std::size_t>(num_nodes) * (deadline + 1));
    for (int layer = 0; layer <= deadline; ++layer) {
      for (int i = 0; i < num_nodes; ++i) {
        double rhs = 0.0;
        if (!options_.elastic_demand) {
          if (layer == 0 && i == f.source) rhs = f.size;
          if (layer == deadline && i == f.destination) rhs = -f.size;
        }
        rows[layer * num_nodes + i] = model_.add_constraint(rhs, rhs);
      }
    }
    if (options_.elastic_demand) {
      model_.add_coefficient(rows[f.source], supply_vars_[k], -1.0);
      model_.add_coefficient(rows[deadline * num_nodes + f.destination],
                             supply_vars_[k], 1.0);
    }
    for (int a = 0; a < num_arcs; ++a) {
      const int var = flow_vars_[k][a];
      if (var < 0) continue;
      const net::TimeArc& arc = graph_.arcs()[a];
      model_.add_coefficient(rows[arc.layer * num_nodes + arc.from_node], var, 1.0);
      model_.add_coefficient(rows[(arc.layer + 1) * num_nodes + arc.to_node], var,
                             -1.0);
    }
  }

  // ---- Capacity (7) and charge epigraph rows, shared across files.
  for (int a = 0; a < num_arcs; ++a) {
    const net::TimeArc& arc = graph_.arcs()[a];
    const bool capacity_row = !arc.storage() || arc.capacity < lp::kInfinity;
    int cap_row = -1;
    if (capacity_row) {
      cap_row = model_.add_constraint(-lp::kInfinity, arc.capacity);
    }
    int chg_row = -1;
    if (!arc.storage()) {
      const double committed = charge.committed(arc.link_index, slot_ + arc.layer);
      chg_row = model_.add_constraint(committed, lp::kInfinity);
      model_.add_coefficient(chg_row, charge_vars_[arc.link_index], 1.0);
    }
    for (int k = 0; k < num_files; ++k) {
      const int var = flow_vars_[k][a];
      if (var < 0) continue;
      if (cap_row >= 0) model_.add_coefficient(cap_row, var, 1.0);
      if (chg_row >= 0) model_.add_coefficient(chg_row, var, -1.0);
    }
  }
}

std::vector<FilePlan> TimeExpandedFormulation::extract_plans(
    const lp::Solution& solution, double volume_eps) const {
  std::vector<FilePlan> plans;
  plans.reserve(files_.size());
  for (int k = 0; k < num_files(); ++k) {
    FilePlan plan;
    plan.file_id = files_[k].id;
    for (int a = 0; a < graph_.num_arcs(); ++a) {
      const int var = flow_vars_[k][a];
      if (var < 0) continue;
      const double v = solution.x[var];
      if (v > volume_eps) {
        const net::TimeArc& arc = graph_.arcs()[a];
        plan.transfers.push_back({slot_ + arc.layer, arc.from_node, arc.to_node,
                                  v, arc.link_index});
      }
    }
    std::sort(plan.transfers.begin(), plan.transfers.end(),
              [](const Transfer& a, const Transfer& b) {
                if (a.slot != b.slot) return a.slot < b.slot;
                if (a.from != b.from) return a.from < b.from;
                return a.to < b.to;
              });
    plans.push_back(std::move(plan));
  }
  return plans;
}

double TimeExpandedFormulation::delivered(const lp::Solution& solution,
                                          int file_index) const {
  if (supply_vars_[file_index] >= 0) return solution.x[supply_vars_[file_index]];
  return files_[file_index].size;
}

}  // namespace postcard::core
