// The Postcard LP on the time-expanded graph — problem (6)-(10) of Sec. V.
//
// Variables
//   M^k_ijn  volume of file k moved over arc i^n -> j^{n+1}   (>= 0)   (9)
//            created only for layers n < T_k, which *is* constraint (10)
//   X_ij     charged volume per link, epigraph of the max in (6), with
//            lower bound X_ij(t-1) — the monotone charge state
//   z_k      (elastic mode only) delivered volume of file k in [0, F_k]
//
// Constraints
//   capacity (7):      sum_k M^k_ijn <= residual capacity of {i,j} at slot n
//   conservation (8):  per file, per virtual node i^n — flow out at layer n
//                      equals flow in at layer n-1, with +/-F_k (or z_k) at
//                      the source/destination copies
//   charge epigraph:   X_ij >= committed_ij(n) + sum_k M^k_ijn   for all n
//
// Objective: min sum_ij a_ij X_ij (the constant period length I only scales
// the objective). The elastic mode replaces it with max sum_k z_k — the
// Sec. VI extensions — optionally pinning X to its current value (bulk
// backhaul: only already-paid volume may be used) or adding a budget row.
#pragma once

#include <vector>

#include "charging/charge_state.h"
#include "core/plan.h"
#include "lp/model.h"
#include "lp/status.h"
#include "net/file_request.h"
#include "net/time_expanded.h"
#include "net/topology.h"

namespace postcard::core {

struct FormulationOptions {
  // false forbids holdovers at *intermediate* datacenters (the ablation of
  // the paper's store-and-forward idea). A file's own source may still send
  // later and its destination accumulates early arrivals — removing those
  // self-arcs would force every path to arrive exactly at the deadline.
  bool allow_storage = true;
  double storage_capacity = lp::kInfinity;  // per DC per slot, GB
  bool elastic_demand = false;  // deliver z_k in [0, F_k], maximize sum z_k
  bool pin_charge = false;      // X_ij fixed at X_ij(t-1): free capacity only
  // Drop M^k variables on arcs file k provably cannot use: the arc's tail
  // is not reachable from s_k within its layer, or its head cannot reach
  // d_k in the remaining layers (structural hops — capacity-independent).
  // Conservation forces every such variable to zero in EVERY feasible
  // solution, so the optimum value is unchanged; the smaller basis may
  // land on a DIFFERENT optimal vertex though, so deterministic replays
  // that pin exact plans must leave this off. Default off.
  bool prune_unreachable = false;
};

class TimeExpandedFormulation {
 public:
  TimeExpandedFormulation(const net::Topology& topology,
                          const charging::ChargeState& charge, int slot,
                          const std::vector<net::FileRequest>& files,
                          const FormulationOptions& options);

  lp::LpModel& model() { return model_; }
  const lp::LpModel& model() const { return model_; }
  const net::TimeExpandedGraph& graph() const { return graph_; }

  /// LP variable of M^k for arc `arc` of graph(), or -1 beyond file k's
  /// deadline subgraph.
  int flow_var(int file_index, int arc) const {
    return flow_vars_[file_index][arc];
  }
  /// LP variable of X for topology link `link`.
  int charge_var(int link) const { return charge_vars_[link]; }
  /// LP variable of z_k (elastic mode only; -1 otherwise).
  int supply_var(int file_index) const { return supply_vars_[file_index]; }

  /// Reads the per-file transfer plans out of a solution.
  std::vector<FilePlan> extract_plans(const lp::Solution& solution,
                                      double volume_eps = 1e-6) const;

  /// Delivered volume of file k in an elastic solution (== F_k otherwise).
  double delivered(const lp::Solution& solution, int file_index) const;

  int num_files() const { return static_cast<int>(files_.size()); }

 private:
  const net::Topology& topology_;
  std::vector<net::FileRequest> files_;
  int slot_;
  FormulationOptions options_;
  net::TimeExpandedGraph graph_;
  lp::LpModel model_;
  std::vector<std::vector<int>> flow_vars_;  // [file][arc] -> var or -1
  std::vector<int> charge_vars_;             // [link] -> var
  std::vector<int> supply_vars_;             // [file] -> var or -1
};

}  // namespace postcard::core
