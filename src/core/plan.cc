#include "core/plan.h"

#include <cmath>
#include <map>
#include <sstream>

namespace postcard::core {

namespace {
std::string describe(const Transfer& t) {
  std::ostringstream os;
  if (t.storage()) {
    os << "store " << t.volume << " GB at D" << t.from << " during slot " << t.slot;
  } else {
    os << "send " << t.volume << " GB D" << t.from << "->D" << t.to
       << " during slot " << t.slot;
  }
  return os.str();
}
}  // namespace

bool verify_plan(const FilePlan& plan, const net::FileRequest& file,
                 const net::Topology& topology, double tolerance,
                 std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };

  const int first_slot = file.release_slot;
  const int last_slot = file.release_slot + file.max_transfer_slots - 1;

  for (const Transfer& t : plan.transfers) {
    if (t.volume < -tolerance) return fail("negative volume: " + describe(t));
    if (t.slot < first_slot || t.slot > last_slot) {
      return fail("transfer outside deadline window: " + describe(t));
    }
    if (t.storage()) {
      if (t.from != t.to) return fail("storage transfer must be a self-loop");
    } else {
      if (!topology.has_link(t.from, t.to)) {
        return fail("transfer over a non-existent link: " + describe(t));
      }
    }
  }

  // Re-simulate holdings. holdings[node] = volume of this file present at
  // the node at the *start* of the current slot.
  std::map<int, double> holdings;
  holdings[file.source] = file.size;
  for (int slot = first_slot; slot <= last_slot; ++slot) {
    std::map<int, double> outgoing;  // per node, total moved this slot
    std::map<int, double> next;      // holdings at start of slot+1
    for (const Transfer& t : plan.transfers) {
      if (t.slot != slot) continue;
      outgoing[t.from] += t.volume;
      next[t.to] += t.volume;
    }
    for (const auto& [node, vol] : outgoing) {
      const double have = holdings.count(node) ? holdings[node] : 0.0;
      if (vol > have + tolerance) {
        std::ostringstream os;
        os << "D" << node << " moves " << vol << " GB in slot " << slot
           << " but holds only " << have;
        return fail(os.str());
      }
    }
    // Store-and-forward: whatever is held must be moved or stored; volume
    // left unmentioned would silently vanish from the network. The
    // destination is exempt — delivered data rests there implicitly.
    for (const auto& [node, have] : holdings) {
      const double moved = outgoing.count(node) ? outgoing[node] : 0.0;
      if (node == file.destination) {
        next[node] += have - moved;
        continue;
      }
      if (std::abs(moved - have) > tolerance) {
        std::ostringstream os;
        os << "D" << node << " holds " << have << " GB at slot " << slot
           << " but moves " << moved << " (must forward or store all of it)";
        return fail(os.str());
      }
    }
    holdings = std::move(next);
  }

  const double delivered =
      holdings.count(file.destination) ? holdings[file.destination] : 0.0;
  if (std::abs(delivered - file.size) > tolerance * (1.0 + file.size)) {
    std::ostringstream os;
    os << "delivered " << delivered << " of " << file.size
       << " GB by the deadline";
    return fail(os.str());
  }
  for (const auto& [node, vol] : holdings) {
    if (node != file.destination && vol > tolerance) {
      std::ostringstream os;
      os << vol << " GB stranded at D" << node << " after the deadline";
      return fail(os.str());
    }
  }
  if (error) error->clear();
  return true;
}

}  // namespace postcard::core
