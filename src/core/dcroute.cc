#include "core/dcroute.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace postcard::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

DCRouteScheduler::DCRouteScheduler(net::Topology topology,
                                   DCRouteOptions options)
    : topology_(std::move(topology)),
      options_(options),
      charge_(topology_.num_links()) {}

sim::ScheduleOutcome DCRouteScheduler::schedule(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome;
  last_plans_.clear();
  std::vector<net::FileRequest> batch = files;
  for (const net::FileRequest& f : batch) validate(f, topology_);
  // Most-urgent-first, same admission order as the greedy baseline.
  std::stable_sort(batch.begin(), batch.end(),
                   [](const auto& a, const auto& b) {
                     if (a.max_transfer_slots != b.max_transfer_slots) {
                       return a.max_transfer_slots < b.max_transfer_slots;
                     }
                     return a.size > b.size;
                   });
  for (const net::FileRequest& file : batch) {
    FilePlan plan;
    if (dcroute_route_file(topology_, options_, file, charge_, plan) ==
        DCRouteResult::kRouted) {
      outcome.accepted_ids.push_back(file.id);
      last_plans_.push_back(std::move(plan));
    } else {
      outcome.rejected_ids.push_back(file.id);
      outcome.rejected_volume += file.size;
    }
  }
  (void)slot;
  return outcome;
}

DCRouteResult dcroute_route_file(const net::Topology& topology,
                                 const DCRouteOptions& options,
                                 const net::FileRequest& file,
                                 charging::ChargeState& state, FilePlan& plan) {
  const int n = topology.num_datacenters();
  const int deadline = file.max_transfer_slots;
  const int t0 = file.release_slot;
  plan.file_id = file.id;
  plan.transfers.clear();
  if (file.source == file.destination) {
    return DCRouteResult::kRouted;  // nothing to move
  }

  // ---- 1. The single cheapest currently-chargeable spatial path.
  //
  // Link price under the current charge state: zero while any slot of the
  // file's window still has headroom below the charged volume X_l (traffic
  // there is already paid for), a_l per GB otherwise. Links with no
  // residual capacity anywhere in the window are unusable. Hop-bounded DP
  // (paths longer than the deadline cannot finish even with storage),
  // links relaxed in index order with strict improvement — deterministic.
  std::vector<double> price(static_cast<std::size_t>(topology.num_links()));
  std::vector<char> usable(static_cast<std::size_t>(topology.num_links()), 0);
  for (int l = 0; l < topology.num_links(); ++l) {
    bool free_slot = false, open_slot = false;
    for (int s = 0; s < deadline; ++s) {
      if (state.free_headroom(l, t0 + s) > kEps) free_slot = true;
      if (topology.link(l).capacity - state.committed(l, t0 + s) > kEps) {
        open_slot = true;
      }
    }
    usable[l] = open_slot ? 1 : 0;
    price[l] = free_slot ? 0.0 : topology.link(l).unit_cost;
  }
  const int max_hops = std::min(deadline, n - 1);
  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  std::vector<int> hops(static_cast<std::size_t>(n), 0);
  std::vector<int> pred_link(static_cast<std::size_t>(n), -1);
  dist[file.source] = 0.0;
  for (int round = 0; round < max_hops; ++round) {
    bool changed = false;
    for (int l = 0; l < topology.num_links(); ++l) {
      if (!usable[l]) continue;
      const net::Link& link = topology.link(l);
      if (dist[link.from] == kInf || hops[link.from] != round) continue;
      const double cand = dist[link.from] + price[l];
      // Strict improvement (or first arrival): ties keep the earlier,
      // shorter path, so the walk below is loop-free and deterministic.
      if (cand < dist[link.to] - 1e-15) {
        dist[link.to] = cand;
        hops[link.to] = round + 1;
        pred_link[link.to] = l;
        changed = true;
      }
    }
    if (!changed) break;
  }
  if (dist[file.destination] == kInf) return DCRouteResult::kNoPath;

  std::vector<int> path;  // link indices, source -> destination
  for (int node = file.destination; node != file.source;) {
    const int l = pred_link[node];
    path.push_back(l);
    node = topology.link(l).from;
  }
  std::reverse(path.begin(), path.end());
  const int H = static_cast<int>(path.size());

  // ---- 2. Deadline-aware reservation along the path.
  //
  // send[h][s]: volume crossing hop h (0-based) during layer s. Packed
  // earliest-first against the residual (link, slot) capacities; waiting
  // volume becomes explicit storage transfers so the plan auditor's
  // conservation re-simulation accepts the plan.
  charging::ChargeState scratch = state;  // roll back on failure
  std::vector<std::vector<double>> send(
      static_cast<std::size_t>(H),
      std::vector<double>(static_cast<std::size_t>(deadline), 0.0));
  if (options.allow_storage) {
    // Hop-by-hop: hop h may move whatever has already arrived at its tail
    // and still meet the deadline (H - 1 - h hops must follow).
    std::vector<double> arrived_cum(static_cast<std::size_t>(deadline) + 1,
                                    0.0);  // at hop h's tail, by layer start
    for (int s = 0; s <= deadline; ++s) arrived_cum[s] = file.size;
    for (int h = 0; h < H; ++h) {
      const int l = path[h];
      double sent_cum = 0.0;
      std::vector<double> next_arrived(static_cast<std::size_t>(deadline) + 1,
                                       0.0);
      for (int s = h; s <= deadline - (H - h); ++s) {
        const double residual =
            topology.link(l).capacity - scratch.committed(l, t0 + s);
        const double amount =
            std::min(residual, arrived_cum[s] - sent_cum);
        if (amount > kEps) {
          send[h][s] = amount;
          scratch.commit(l, t0 + s, amount);
          sent_cum += amount;
        }
        next_arrived[s + 1] = sent_cum;  // arrives at the head end-of-layer
      }
      if (sent_cum < file.size - kEps * (1.0 + file.size)) {
        return DCRouteResult::kNoCapacity;
      }
      // Volume keeps accumulating at the head after the last send layer.
      for (int s = deadline - (H - h) + 1; s <= deadline; ++s) {
        next_arrived[s + 1 <= deadline ? s + 1 : deadline] =
            std::max(next_arrived[s], sent_cum);
      }
      for (int s = 1; s <= deadline; ++s) {
        next_arrived[s] = std::max(next_arrived[s], next_arrived[s - 1]);
      }
      arrived_cum = std::move(next_arrived);
    }
  } else {
    // Storage ablation: no waiting at intermediate nodes, so volume leaving
    // the source at layer s crosses hop h at layer s + h exactly — the
    // feasible amount per start layer is the min staggered residual.
    for (int s = 0; s + H <= deadline; ++s) {
      double amount = file.size;
      for (int h = 0; h < H; ++h) {
        const int l = path[h];
        amount = std::min(amount, topology.link(l).capacity -
                                      scratch.committed(l, t0 + s + h));
      }
      double placed = 0.0;
      for (int u = 0; u < s; ++u) placed += send[0][u];
      amount = std::min(amount, file.size - placed);
      if (amount <= kEps) continue;
      for (int h = 0; h < H; ++h) {
        send[h][s + h] = amount;
        scratch.commit(path[h], t0 + s + h, amount);
      }
    }
    double placed = 0.0;
    for (int s = 0; s < deadline; ++s) placed += send[0][s];
    if (placed < file.size - kEps * (1.0 + file.size)) {
      return DCRouteResult::kNoCapacity;
    }
  }

  // ---- 3. Emit transfers + explicit storage for held volume. Node h on
  // the path (0 = source .. H = destination) holds in_cum - out_cum during
  // each layer; every held GB gets a storage record, every moved GB a link
  // record, so each unit of volume is accounted at every layer — the same
  // shape greedy and the LP emit and verify_plan re-simulates.
  std::vector<int> nodes(static_cast<std::size_t>(H) + 1);
  nodes[0] = file.source;
  for (int h = 0; h < H; ++h) nodes[h + 1] = topology.link(path[h]).to;
  for (int h = 0; h <= H; ++h) {
    double in_cum = h == 0 ? file.size : 0.0;   // by start of layer s
    double out_cum = 0.0;                        // by end of layer s
    for (int s = 0; s < deadline; ++s) {
      if (h > 0 && s > 0) in_cum += send[h - 1][s - 1];
      if (h < H) out_cum += send[h][s];
      const double held = in_cum - out_cum;
      if (held > kEps) {
        plan.transfers.push_back({t0 + s, nodes[h], nodes[h], held, -1});
      }
      if (h < H && send[h][s] > kEps) {
        plan.transfers.push_back(
            {t0 + s, nodes[h], nodes[h + 1], send[h][s], path[h]});
      }
    }
  }
  std::sort(plan.transfers.begin(), plan.transfers.end(),
            [](const Transfer& a, const Transfer& b) {
              if (a.slot != b.slot) return a.slot < b.slot;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  state = std::move(scratch);
  return DCRouteResult::kRouted;
}

}  // namespace postcard::core
