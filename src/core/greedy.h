// Greedy store-and-forward heuristic (non-LP baseline).
//
// A natural engineering alternative to Postcard's per-slot LP: route each
// file independently, chunk by chunk, along the currently cheapest path
// through the time-expanded graph, where an arc is "free" when the link
// still has headroom below its charged volume X_ij in that slot and costs
// a_ij per GB otherwise. Files are processed most-urgent-first (smallest
// deadline, then largest size).
//
// The heuristic shares Postcard's model exactly (same slotted transfers,
// same storage arcs, same charge state) but replaces joint optimization
// with sequential shortest paths — the bench_greedy_ablation binary
// measures how much the LP's coordination is worth.
#pragma once

#include <vector>

#include "charging/charge_state.h"
#include "core/plan.h"
#include "net/file_request.h"
#include "net/topology.h"
#include "sim/policy.h"

namespace postcard::core {

struct GreedyOptions {
  int max_chunks_per_file = 256;  // path augmentations before giving up
  bool allow_storage = true;      // mirror of the Postcard ablation knob
};

/// Why greedy_route_file declined a file.
enum class GreedyRoute {
  kRouted,      // plan built, state updated
  kNoPath,      // no deadline-feasible path with usable capacity remains
  kChunkLimit,  // max_chunks_per_file exhausted with volume remaining
};

/// Routes one file along cheapest marginal-charge paths through the
/// time-expanded graph, chunk by chunk. On kRouted the plan holds the
/// transfers and `state` the updated charge ledger; on any failure `state`
/// is left untouched and, for kChunkLimit, `gave_up_volume` (when non-null)
/// receives the volume still unrouted when the chunk budget ran out.
///
/// Exposed as a free function so the runtime's degradation ladder can run
/// the same heuristic against the Postcard controller's own charge state
/// when the LP is out of budget.
GreedyRoute greedy_route_file(const net::Topology& topology,
                              const GreedyOptions& options,
                              const net::FileRequest& file,
                              charging::ChargeState& state, FilePlan& plan,
                              double* gave_up_volume = nullptr);

class GreedyScheduler : public sim::SchedulingPolicy {
 public:
  explicit GreedyScheduler(net::Topology topology,
                           GreedyOptions options = GreedyOptions{});

  sim::ScheduleOutcome schedule(
      int slot, const std::vector<net::FileRequest>& files) override;
  double cost_per_interval() const override {
    return charge_.cost_per_interval(topology_);
  }
  const charging::ChargeState& charge_state() const override { return charge_; }
  std::string name() const override { return "greedy store-and-forward"; }

  const std::vector<FilePlan>& last_plans() const { return last_plans_; }

 private:
  net::Topology topology_;
  GreedyOptions options_;
  charging::ChargeState charge_;
  std::vector<FilePlan> last_plans_;
};

}  // namespace postcard::core
