#include "core/extensions.h"

#include <map>

namespace postcard::core {

namespace {

ExtensionResult run_elastic(const net::Topology& topology,
                            const charging::ChargeState& charge, int slot,
                            const std::vector<net::FileRequest>& files,
                            const lp::SolverOptions& lp_options,
                            bool pin_charge, double budget_per_interval) {
  ExtensionResult result;
  if (files.empty()) {
    result.ok = true;
    result.cost_per_interval = charge.cost_per_interval(topology);
    return result;
  }

  FormulationOptions opts;
  opts.elastic_demand = true;
  opts.pin_charge = pin_charge;
  TimeExpandedFormulation formulation(topology, charge, slot, files, opts);

  if (budget_per_interval >= 0.0) {
    const int row = formulation.model().add_constraint(-lp::kInfinity,
                                                       budget_per_interval);
    for (int l = 0; l < topology.num_links(); ++l) {
      formulation.model().add_coefficient(row, formulation.charge_var(l),
                                          topology.link(l).unit_cost);
    }
  }

  const lp::Solution solution = lp::solve(formulation.model(), lp_options);
  result.lp_iterations = solution.iterations;
  if (!solution.optimal()) return result;

  result.ok = true;
  result.delivered.resize(files.size());
  for (int k = 0; k < formulation.num_files(); ++k) {
    result.delivered[k] = formulation.delivered(solution, k);
    result.delivered_total += result.delivered[k];
  }
  result.plans = formulation.extract_plans(solution);
  // Cost implied by the plans themselves: the unpriced X variables may sit
  // anywhere above the true charge, so recompute max slot volumes directly.
  std::vector<double> implied(static_cast<std::size_t>(topology.num_links()));
  for (int l = 0; l < topology.num_links(); ++l) implied[l] = charge.charged(l);
  std::map<std::pair<int, int>, double> slot_volume;  // (link, slot) -> GB
  for (const FilePlan& plan : result.plans) {
    for (const Transfer& t : plan.transfers) {
      if (!t.storage()) slot_volume[{t.link, t.slot}] += t.volume;
    }
  }
  for (const auto& [key, volume] : slot_volume) {
    const auto& [link, s] = key;
    implied[link] = std::max(implied[link], charge.committed(link, s) + volume);
  }
  result.cost_per_interval = 0.0;
  for (int l = 0; l < topology.num_links(); ++l) {
    result.cost_per_interval += topology.link(l).unit_cost * implied[l];
  }
  return result;
}

}  // namespace

ExtensionResult maximize_bulk_transfer(const net::Topology& topology,
                                       const charging::ChargeState& charge,
                                       int slot,
                                       const std::vector<net::FileRequest>& files,
                                       const lp::SolverOptions& lp_options) {
  return run_elastic(topology, charge, slot, files, lp_options,
                     /*pin_charge=*/true, /*budget_per_interval=*/-1.0);
}

ExtensionResult maximize_with_budget(const net::Topology& topology,
                                     const charging::ChargeState& charge,
                                     int slot,
                                     const std::vector<net::FileRequest>& files,
                                     double budget_per_interval,
                                     const lp::SolverOptions& lp_options) {
  return run_elastic(topology, charge, slot, files, lp_options,
                     /*pin_charge=*/false, budget_per_interval);
}

}  // namespace postcard::core
