// The Sec. VI extensions built on the same time-expansion approach.
//
// 1. Bulk backhaul (NetStitcher-style, objective (11)): transfer as much
//    delay-tolerant bulk data as possible using ONLY capacity that is
//    already paid for — per-slot volume on every link may not exceed the
//    current charged volume X_ij, so the transfers are free. Unlike
//    Laoutaris et al., multiple files with *different* deadlines are
//    scheduled jointly.
//
//    Note on fidelity: objective (11) as printed maximizes the total volume
//    crossing all arcs, which (with the equality conservation constraints
//    kept "the same") is either fixed or rewards circulation through
//    storage. We implement the evident intent: each file may deliver any
//    z_k in [0, F_k] and the objective maximizes total delivered volume.
//
// 2. Budget-constrained transfers: maximize delivered volume subject to a
//    per-interval cost budget sum_ij a_ij X_ij <= B (the paper's budget
//    constraint divided by the constant period length I).
#pragma once

#include <vector>

#include "charging/charge_state.h"
#include "core/formulation.h"
#include "core/plan.h"
#include "lp/solver.h"
#include "net/file_request.h"
#include "net/topology.h"

namespace postcard::core {

struct ExtensionResult {
  bool ok = false;                    // LP solved to optimality
  double delivered_total = 0.0;       // GB delivered across files
  std::vector<double> delivered;      // per file, in input order
  std::vector<FilePlan> plans;        // partial-delivery plans
  double cost_per_interval = 0.0;     // sum a_ij X_ij after the plans
  long lp_iterations = 0;
};

/// Bulk backhaul: maximize delivered volume over already-paid capacity.
/// The charge state is read, not modified — callers commit plans themselves
/// if they accept them.
ExtensionResult maximize_bulk_transfer(
    const net::Topology& topology, const charging::ChargeState& charge,
    int slot, const std::vector<net::FileRequest>& files,
    const lp::SolverOptions& lp_options = {});

/// Budget-constrained scheduling: maximize delivered volume subject to
/// sum_ij a_ij X_ij <= budget_per_interval (which must be at least the
/// current cost; otherwise the result is infeasible-by-construction and
/// ok == false).
ExtensionResult maximize_with_budget(
    const net::Topology& topology, const charging::ChargeState& charge,
    int slot, const std::vector<net::FileRequest>& files,
    double budget_per_interval, const lp::SolverOptions& lp_options = {});

}  // namespace postcard::core
