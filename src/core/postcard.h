// The Postcard online controller (Sec. III & V).
//
// At every slot t the controller receives the newly released batch K(t),
// builds the time-expanded LP (6)-(10) against the residual capacities and
// charged volumes left by all previous plans, solves it, and commits the
// resulting store-and-forward plans: the planned M^k_ij(n) volumes are
// entered into the commitment ledger (so later batches see reduced
// capacities, the "available link capacity" c_ij(t) of Sec. III) and into
// the charge state (raising X_ij where a slot's volume exceeds the previous
// maximum).
//
// The paper assumes every batch is schedulable; when a batch is not (tight
// capacities + deadlines), the controller drops the file with the largest
// required rate and retries, reporting the rejected volume.
#pragma once

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "charging/charge_state.h"
#include "core/column_generation.h"
#include "core/formulation.h"
#include "core/plan.h"
#include "lp/solver.h"
#include "net/file_request.h"
#include "net/sparse_time_expanded.h"
#include "net/topology.h"
#include "sim/policy.h"

namespace postcard::base {
class WorkerPool;
}  // namespace postcard::base

namespace postcard::core {

struct PostcardOptions {
  lp::SolverOptions lp;
  FormulationOptions formulation;  // storage knobs for the ablations
  // Solve each slot by path-based column generation (core/column_generation.h)
  // instead of the direct arc-flow LP. Identical optimum, far faster on the
  // degenerate time-expanded systems; automatically falls back to the direct
  // formulation when the storage capacity is capped (the path master has no
  // storage rows).
  bool use_column_generation = true;
  // Column-generation stopping knobs (see PathSolveOptions).
  double cg_relative_gap = 1e-4;
  int cg_stall_rounds = 30;
  // Keep a basis snapshot across slot boundaries and seed each slot's first
  // master solve from it (see MasterWarmCache). The default canonical remap
  // is trajectory-identical to a cold start — same plans bit for bit —
  // while skipping phase 1, so it is safe to leave on everywhere.
  bool warm_start = true;
  // Carry surviving row/X statuses from the cached basis instead of the
  // canonical remap (PathSolveOptions::carry_basis). Same per-slot optimum,
  // possibly a different optimal basis on degenerate masters — off by
  // default because deterministic replays must match cold-start plans.
  bool warm_start_carry_basis = false;
  // Maintain the time-expanded graph incrementally in a per-controller
  // sparse arena (net::SparseTimeGraph) with per-commodity reachability
  // pruning in pricing, instead of rebuilding the dense expansion on every
  // solve. Plans are bit-for-bit identical either way (see DESIGN.md §12);
  // the toggle exists for the equivalence tests and as a debugging aid.
  bool use_sparse_graph = true;
  // Resume the restricted master across pricing rounds on the incumbent
  // basis and factorization (PathSolveOptions::reuse_factorization): rounds
  // after the first pay neither a refactorization nor a phase 1.
  // Deterministic; safe to leave on everywhere.
  bool cg_reuse_factorization = true;
  // Seed each slot's first master with columns priced against the previous
  // slot's final duals (PathSolveOptions::dual_warm). Same per-slot optimum,
  // possibly different alternate-optimal plans — off by default because
  // deterministic replays must match the no-seed trajectory.
  bool cg_dual_warm = false;
  // Shard the pricing DP across this many persistent worker threads
  // (0 = serial). The merge is file-index-ordered, so plans are bit-for-bit
  // identical at any thread count.
  int pricing_threads = 0;
  // Insert the DCRoute single-path rung (core/dcroute.h) between the
  // truncated-CG and greedy rungs of the degradation ladder: files the
  // budget-cut master left unrouted first try one cheapest-path reservation
  // (~one DP per file) before falling to the greedy chunker. Off by default
  // to keep ladder replays against older baselines bit-for-bit.
  bool use_dcroute_rung = false;
};

class PostcardController : public sim::SchedulingPolicy {
 public:
  explicit PostcardController(net::Topology topology,
                              PostcardOptions options = PostcardOptions{});

  sim::ScheduleOutcome schedule(
      int slot, const std::vector<net::FileRequest>& files) override;
  double cost_per_interval() const override {
    return charge_.cost_per_interval(topology_);
  }
  const charging::ChargeState& charge_state() const override { return charge_; }
  std::string name() const override {
    return options_.formulation.allow_storage ? "postcard"
                                              : "postcard (no storage)";
  }

  /// Plans committed by the most recent schedule() call.
  const std::vector<FilePlan>& last_plans() const { return last_plans_; }

  const net::Topology& topology() const { return topology_; }

  // --- Online-runtime hooks (src/runtime) -------------------------------

  /// Live capacity override; 0 marks the link down. Future solves price
  /// against the new capacity. Committed plans are NOT revalidated here —
  /// the runtime owns invalidation and replanning (uncommit_future).
  bool set_link_capacity(int link, double capacity) override;

  /// Arms the slot watchdog: every subsequent schedule() builds a
  /// SolveBudget from these controls and walks the degradation ladder on
  /// exhaustion (full CG -> truncated CG -> greedy fallback -> deferral,
  /// reported through ScheduleOutcome::deferred_ids). With inactive
  /// controls (the default) behavior is the legacy drop-and-retry
  /// admission, bit for bit.
  bool set_solve_controls(const sim::SolveControls& controls) override {
    controls_ = controls;
    return true;
  }

  /// Arms the plan auditor: every subsequent schedule() re-verifies the
  /// committed plans against the paper invariants (src/audit) and reports
  /// through ScheduleOutcome::audit_*; kFailFast throws std::logic_error
  /// on the first violating slot.
  bool set_audit_controls(const sim::AuditControls& controls) override {
    audit_controls_ = controls;
    return true;
  }

  /// Deep copy sharing nothing with *this: the runtime's parallel
  /// split-batch mode solves sub-batches on snapshot clones while the live
  /// controller keeps sole write ownership of the charge state.
  PostcardController snapshot_clone() const { return *this; }

  /// Commits plans produced on a snapshot clone into the live charge
  /// state. The caller (the runtime's single writer) is responsible for
  /// validating residual capacity before committing.
  void commit_plans(const std::vector<FilePlan>& plans);

  /// Rolls the committed tail of `plan` (transfers at slots >= from_slot)
  /// back out of the charge state — a link failure invalidated the plan
  /// before that traffic flowed.
  void uncommit_future(const FilePlan& plan, int from_slot);

  /// Snapshot restore (src/runtime capture/restore): replaces the charge
  /// ledger wholesale so a restarted controller prices future batches
  /// against exactly the committed volumes the captured one saw. Throws
  /// std::invalid_argument when the state's link count does not match the
  /// topology.
  void restore_charge_state(charging::ChargeState state) {
    if (state.num_links() != topology_.num_links()) {
      throw std::invalid_argument("charge state / topology link mismatch");
    }
    charge_ = std::move(state);
  }

  /// Cross-slot warm-start cache (diagnostics, and the runtime's per-group
  /// cache hand-off: snapshot clones are transient, so the runtime moves
  /// the cache out of a finished clone and back into the next slot's).
  const MasterWarmCache& warm_cache() const { return warm_cache_; }
  void set_warm_cache(MasterWarmCache cache) { warm_cache_ = std::move(cache); }
  MasterWarmCache release_warm_cache() { return std::move(warm_cache_); }

 private:
  /// Attempts to schedule the whole batch. On infeasibility, fills
  /// `unroutable_ids` with the files the column-generation master could not
  /// route (empty when the direct formulation was used, which only reports
  /// infeasible/feasible). `status` reports the final master status and
  /// `truncated` whether a budget cut column generation short; a true
  /// return with non-empty `unroutable_ids` means a truncated master whose
  /// routed subset (already filtered into consistency by the caller) is
  /// commit-worthy while the listed files need the next rung.
  bool try_schedule(int slot, const std::vector<net::FileRequest>& files,
                    std::vector<FilePlan>& plans, sim::ScheduleOutcome& outcome,
                    std::vector<int>& unroutable_ids, lp::SolveBudget* budget,
                    bool* truncated, lp::SolveStatus* status);

  /// Post-commit audit of last_plans_ + the charge state (see AuditControls).
  void run_audit(int slot, const std::vector<net::FileRequest>& files,
                 sim::ScheduleOutcome& outcome) const;

  net::Topology topology_;
  PostcardOptions options_;
  charging::ChargeState charge_;
  std::vector<FilePlan> last_plans_;
  MasterWarmCache warm_cache_;
  // Persistent arena for the incremental time-expanded graph; advanced in
  // place by each solve. Copied by snapshot_clone with everything else, so
  // clones keep their own arena (plain vectors, nothing shared).
  net::SparseTimeGraph sparse_graph_;
  // Pricing worker pool (pricing_threads > 0). Shared — not deep-copied —
  // by snapshot_clone: the pool is stateless between run_all() calls and
  // its queue is internally locked, so clones solving in parallel reuse the
  // same threads instead of each spawning their own.
  std::shared_ptr<base::WorkerPool> pricing_pool_;
  sim::SolveControls controls_;
  sim::AuditControls audit_controls_;
};

}  // namespace postcard::core
