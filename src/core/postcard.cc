#include "core/postcard.h"

#include <algorithm>
#include <cmath>

#include "core/column_generation.h"

namespace postcard::core {

PostcardController::PostcardController(net::Topology topology,
                                       PostcardOptions options)
    : topology_(std::move(topology)),
      options_(options),
      charge_(topology_.num_links()) {
  if (options_.formulation.elastic_demand || options_.formulation.pin_charge) {
    throw std::invalid_argument(
        "elastic/pinned formulations belong to the Sec. VI extensions, not "
        "the online controller");
  }
}

bool PostcardController::set_link_capacity(int link, double capacity) {
  topology_.set_capacity(link, capacity);
  return true;
}

void PostcardController::commit_plans(const std::vector<FilePlan>& plans) {
  for (const FilePlan& plan : plans) {
    for (const Transfer& t : plan.transfers) {
      if (!t.storage()) charge_.commit(t.link, t.slot, t.volume);
    }
  }
}

void PostcardController::uncommit_future(const FilePlan& plan, int from_slot) {
  for (const Transfer& t : plan.transfers) {
    if (!t.storage() && t.slot >= from_slot) {
      charge_.uncommit(t.link, t.slot, t.volume);
    }
  }
}

sim::ScheduleOutcome PostcardController::schedule(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome;
  last_plans_.clear();
  std::vector<net::FileRequest> batch = files;
  for (const net::FileRequest& f : batch) validate(f, topology_);

  while (!batch.empty()) {
    std::vector<FilePlan> plans;
    std::vector<int> unroutable;
    if (try_schedule(slot, batch, plans, outcome, unroutable)) {
      for (const FilePlan& plan : plans) {
        for (const Transfer& t : plan.transfers) {
          if (!t.storage()) charge_.commit(t.link, t.slot, t.volume);
        }
        outcome.accepted_ids.push_back(plan.file_id);
      }
      last_plans_ = std::move(plans);
      return outcome;
    }
    // Admission: drop exactly the files the relaxed master could not route
    // (known when column generation ran), otherwise fall back to dropping
    // the file with the steepest rate requirement.
    if (unroutable.empty()) {
      unroutable.push_back(batch[net::heaviest_file(batch)].id);
    }
    for (int id : unroutable) {
      const auto it = std::find_if(batch.begin(), batch.end(),
                                   [id](const net::FileRequest& f) {
                                     return f.id == id;
                                   });
      if (it == batch.end()) continue;
      outcome.rejected_ids.push_back(it->id);
      outcome.rejected_volume += it->size;
      batch.erase(it);
    }
  }
  return outcome;
}

bool PostcardController::try_schedule(int slot,
                                      const std::vector<net::FileRequest>& files,
                                      std::vector<FilePlan>& plans,
                                      sim::ScheduleOutcome& outcome,
                                      std::vector<int>& unroutable_ids) {
  const bool can_use_paths =
      options_.use_column_generation &&
      !std::isfinite(options_.formulation.storage_capacity);
  if (can_use_paths) {
    PathSolveOptions popts;
    popts.master_lp = options_.lp;
    popts.allow_storage = options_.formulation.allow_storage;
    popts.relative_gap = options_.cg_relative_gap;
    popts.stall_rounds = options_.cg_stall_rounds;
    popts.cross_slot_warm = options_.warm_start;
    popts.carry_basis = options_.warm_start_carry_basis;
    const PathSolveResult r = solve_postcard_by_paths(
        topology_, charge_, slot, files, popts,
        options_.warm_start ? &warm_cache_ : nullptr);
    outcome.lp_iterations += r.lp_iterations;
    ++outcome.lp_solves;
    if (r.warm_attempted && r.warm_accepted) {
      ++outcome.warm_accepts;
    } else {
      ++outcome.cold_starts;
    }
    if (!r.ok) return false;
    if (!r.feasible) {
      for (std::size_t k = 0; k < files.size(); ++k) {
        if (r.unrouted[k] > 1e-6 * (1.0 + files[k].size)) {
          unroutable_ids.push_back(files[k].id);
        }
      }
      return false;
    }
    plans = r.plans;
    return true;
  }
  TimeExpandedFormulation formulation(topology_, charge_, slot, files,
                                      options_.formulation);
  const lp::Solution solution = lp::solve(formulation.model(), options_.lp);
  outcome.lp_iterations += solution.iterations;
  ++outcome.lp_solves;
  ++outcome.cold_starts;  // the direct formulation has no cross-slot cache
  if (!solution.optimal()) return false;
  plans = formulation.extract_plans(solution);
  return true;
}

}  // namespace postcard::core
