#include "core/postcard.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

// NOLINTNEXTLINE(postcard-layering: sanctioned self-audit edge — the controller re-verifies its own plans; audit/audit.h only includes downward (core/plan.h), so no cycle forms)
#include "audit/audit.h"
#include "base/worker_pool.h"
#include "core/column_generation.h"
#include "core/dcroute.h"
#include "core/greedy.h"

namespace postcard::core {

PostcardController::PostcardController(net::Topology topology,
                                       PostcardOptions options)
    : topology_(std::move(topology)),
      options_(options),
      charge_(topology_.num_links()) {
  if (options_.formulation.elastic_demand || options_.formulation.pin_charge) {
    throw std::invalid_argument(
        "elastic/pinned formulations belong to the Sec. VI extensions, not "
        "the online controller");
  }
  if (options_.pricing_threads > 0) {
    pricing_pool_ = std::make_shared<base::WorkerPool>(options_.pricing_threads);
  }
}

bool PostcardController::set_link_capacity(int link, double capacity) {
  topology_.set_capacity(link, capacity);
  return true;
}

void PostcardController::commit_plans(const std::vector<FilePlan>& plans) {
  for (const FilePlan& plan : plans) {
    for (const Transfer& t : plan.transfers) {
      if (!t.storage()) charge_.commit(t.link, t.slot, t.volume);
    }
  }
}

void PostcardController::uncommit_future(const FilePlan& plan, int from_slot) {
  for (const Transfer& t : plan.transfers) {
    if (!t.storage() && t.slot >= from_slot) {
      charge_.uncommit(t.link, t.slot, t.volume);
    }
  }
}

sim::ScheduleOutcome PostcardController::schedule(
    int slot, const std::vector<net::FileRequest>& files) {
  sim::ScheduleOutcome outcome;
  last_plans_.clear();
  std::vector<net::FileRequest> batch = files;
  for (const net::FileRequest& f : batch) validate(f, topology_);

  // Watchdog budget for the whole slot: one SolveBudget shared by every
  // master solve and admission retry, so the slot as a whole respects the
  // limit. With inactive controls (`ladder` false) everything below is the
  // legacy drop-and-retry admission, bit for bit.
  const bool ladder = controls_.active();
  lp::SolveBudget budget;
  if (controls_.max_pivots >= 0) budget.set_pivot_limit(controls_.max_pivots);
  if (controls_.deadline_seconds >= 0.0) {
    budget.set_deadline_seconds(controls_.deadline_seconds);
  }
  lp::SolveBudget* bp = budget.limited() ? &budget : nullptr;

  // Files the LP rungs could not place; handed to the greedy rung below.
  std::vector<net::FileRequest> pending;

  if (ladder && controls_.disable_rungs >= 1) {
    // Injected solver fault: the CG rungs are gone before the first solve.
    ++outcome.solver_failures;
    outcome.solver_status = "fault_injected";
    pending = std::move(batch);
    batch.clear();
  }

  while (!batch.empty()) {
    std::vector<FilePlan> plans;
    std::vector<int> unroutable;
    bool truncated = false;
    lp::SolveStatus status = lp::SolveStatus::kNumericalFailure;
    if (try_schedule(slot, batch, plans, outcome, unroutable, bp, &truncated,
                     &status)) {
      // Commit-worthy master solution. Under a truncated master, files the
      // incumbent left (partially) unrouted are NOT committed — a partial
      // delivery spends capacity without completing anything — they move
      // to the greedy rung instead, and dropping their flow keeps the
      // remaining plans capacity-feasible.
      if (!unroutable.empty()) {
        std::vector<FilePlan> kept;
        for (FilePlan& plan : plans) {
          if (std::find(unroutable.begin(), unroutable.end(), plan.file_id) ==
              unroutable.end()) {
            kept.push_back(std::move(plan));
          }
        }
        plans = std::move(kept);
        for (int id : unroutable) {
          const auto it = std::find_if(
              batch.begin(), batch.end(),
              [id](const net::FileRequest& f) { return f.id == id; });
          if (it != batch.end()) pending.push_back(*it);
        }
      }
      for (const FilePlan& plan : plans) {
        for (const Transfer& t : plan.transfers) {
          if (!t.storage()) charge_.commit(t.link, t.slot, t.volume);
        }
        outcome.accepted_ids.push_back(plan.file_id);
      }
      last_plans_ = std::move(plans);
      if (ladder) {
        if (truncated) {
          ++outcome.rung_truncated;
        } else {
          ++outcome.rung_full;
        }
      }
      break;
    }
    // The master failed outright. Under the ladder, anything that is not a
    // capacity verdict (kOptimal with z > 0 reports unroutable files;
    // kInfeasible comes from the direct formulation) walks the whole batch
    // down to the greedy rung instead of re-burning the exhausted budget.
    if (ladder && unroutable.empty() &&
        status != lp::SolveStatus::kInfeasible) {
      pending.insert(pending.end(), batch.begin(), batch.end());
      batch.clear();
      break;
    }
    // Admission: drop exactly the files the relaxed master could not route
    // (known when column generation ran), otherwise fall back to dropping
    // the file with the steepest rate requirement.
    if (unroutable.empty()) {
      unroutable.push_back(batch[net::heaviest_file(batch)].id);
    }
    for (int id : unroutable) {
      const auto it = std::find_if(batch.begin(), batch.end(),
                                   [id](const net::FileRequest& f) {
                                     return f.id == id;
                                   });
      if (it == batch.end()) continue;
      outcome.rejected_ids.push_back(it->id);
      outcome.rejected_volume += it->size;
      batch.erase(it);
    }
  }

  // ---- Greedy rung: route leftovers by sequential shortest paths against
  // the live charge state (same graph, same marginal-charge arc costs).
  // Files it cannot place are deferred — neither accepted nor rejected —
  // for the runtime to carry over or fail loudly.
  if (!pending.empty()) {
    GreedyOptions gopts;
    gopts.allow_storage = options_.formulation.allow_storage;
    DCRouteOptions dopts;
    dopts.allow_storage = options_.formulation.allow_storage;
    for (const net::FileRequest& file : pending) {
      if (controls_.disable_rungs >= 2) {
        outcome.deferred_ids.push_back(file.id);
        outcome.deferred_volume += file.size;
        continue;
      }
      // DCRoute rung: one cheapest-path reservation before the greedy
      // chunker. disable_rungs >= 2 already deferred above, so the chaos
      // semantics "only store-in-place remains" are unchanged.
      if (options_.use_dcroute_rung) {
        FilePlan dplan;
        if (dcroute_route_file(topology_, dopts, file, charge_, dplan) ==
            DCRouteResult::kRouted) {
          outcome.accepted_ids.push_back(file.id);
          ++outcome.rung_dcroute;
          last_plans_.push_back(std::move(dplan));
          continue;
        }
      }
      FilePlan plan;
      double gave_up = 0.0;
      const GreedyRoute r =
          greedy_route_file(topology_, gopts, file, charge_, plan, &gave_up);
      if (r == GreedyRoute::kRouted) {
        outcome.accepted_ids.push_back(file.id);
        ++outcome.rung_greedy;
        last_plans_.push_back(std::move(plan));
      } else {
        if (r == GreedyRoute::kChunkLimit) {
          ++outcome.gave_up_files;
          outcome.gave_up_volume += gave_up;
        }
        outcome.deferred_ids.push_back(file.id);
        outcome.deferred_volume += file.size;
      }
    }
  }

  if (audit_controls_.active()) run_audit(slot, files, outcome);
  return outcome;
}

void PostcardController::run_audit(int slot,
                                   const std::vector<net::FileRequest>& files,
                                   sim::ScheduleOutcome& outcome) const {
  // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
  const auto t0 = std::chrono::steady_clock::now();
  audit::AuditOptions options;
  options.tolerance = audit_controls_.tolerance;
  options.check_charge_consistency = audit_controls_.check_charge_consistency;

  std::vector<audit::PlannedFile> planned;
  planned.reserve(last_plans_.size());
  for (const FilePlan& plan : last_plans_) {
    const auto it = std::find_if(files.begin(), files.end(),
                                 [&](const net::FileRequest& f) {
                                   return f.id == plan.file_id;
                                 });
    if (it == files.end()) continue;
    planned.push_back({*it, &plan});
  }
  audit::AuditReport report =
      audit::audit_slot_plans(slot, planned, topology_, charge_, options);
  report.merge(audit::audit_charge_state(charge_, topology_, options));

  ++outcome.audit_checks;
  outcome.audit_violations += static_cast<long>(report.violations.size());
  for (const audit::Violation& v : report.violations) {
    if (static_cast<int>(outcome.audit_reports.size()) >=
        audit_controls_.max_reports) {
      break;
    }
    outcome.audit_reports.push_back(v.format());
  }
  outcome.audit_seconds +=
      // NOLINTNEXTLINE(postcard-determinism: wall-clock read is seconds telemetry for operator stats; it never feeds plans, ids, or serialized bytes)
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (report.ok()) return;
  if (audit_controls_.mode == sim::AuditControls::Mode::kFailFast) {
    throw std::logic_error(name() + " slot " + std::to_string(slot) + " " +
                           report.summary());
  }
  std::fprintf(stderr, "[audit] %s slot %d %s\n", name().c_str(), slot,
               report.summary().c_str());
}

bool PostcardController::try_schedule(int slot,
                                      const std::vector<net::FileRequest>& files,
                                      std::vector<FilePlan>& plans,
                                      sim::ScheduleOutcome& outcome,
                                      std::vector<int>& unroutable_ids,
                                      lp::SolveBudget* budget, bool* truncated,
                                      lp::SolveStatus* status) {
  const bool can_use_paths =
      options_.use_column_generation &&
      !std::isfinite(options_.formulation.storage_capacity);
  if (can_use_paths) {
    PathSolveOptions popts;
    popts.master_lp = options_.lp;
    popts.allow_storage = options_.formulation.allow_storage;
    popts.relative_gap = options_.cg_relative_gap;
    popts.stall_rounds = options_.cg_stall_rounds;
    popts.cross_slot_warm = options_.warm_start;
    popts.carry_basis = options_.warm_start_carry_basis;
    popts.reuse_factorization = options_.cg_reuse_factorization;
    popts.dual_warm = options_.cg_dual_warm;
    popts.pricing_pool = pricing_pool_.get();
    const PathSolveResult r = solve_postcard_by_paths(
        topology_, charge_, slot, files, popts,
        options_.warm_start || options_.cg_dual_warm ? &warm_cache_ : nullptr,
        budget, options_.use_sparse_graph ? &sparse_graph_ : nullptr);
    outcome.lp_iterations += r.lp_iterations;
    ++outcome.lp_solves;
    outcome.pricing_seconds += r.pricing_seconds;
    outcome.master_seconds += r.master_seconds;
    outcome.resumed_solves += r.resumed_solves;
    if (r.dual_warm_attempted) ++outcome.dual_warm_attempts;
    outcome.dual_seed_columns += r.dual_seed_columns;
    if (r.warm_attempted && r.warm_accepted) {
      ++outcome.warm_accepts;
    } else {
      ++outcome.cold_starts;
    }
    *status = r.master_status;
    *truncated = r.truncated;
    // The path master is never infeasible (z absorbs unrouted demand), so
    // any non-optimal final status is a solver failure worth counting.
    if (r.master_status != lp::SolveStatus::kOptimal) {
      ++outcome.solver_failures;
      outcome.solver_status = lp::to_string(r.master_status);
    }
    if (!r.ok) return false;
    if (!r.feasible) {
      for (std::size_t k = 0; k < files.size(); ++k) {
        if (r.unrouted[k] > 1e-6 * (1.0 + files[k].size)) {
          unroutable_ids.push_back(files[k].id);
        }
      }
      // A truncated master is still commit-worthy for the files it DID
      // route; the caller filters out the unroutable ones. Re-solving
      // after dropping files would just re-burn the exhausted budget.
      if (r.truncated) {
        plans = r.plans;
        return true;
      }
      return false;
    }
    plans = r.plans;
    return true;
  }
  TimeExpandedFormulation formulation(topology_, charge_, slot, files,
                                      options_.formulation);
  const lp::Solution solution =
      lp::solve(formulation.model(), options_.lp, budget);
  outcome.lp_iterations += solution.iterations;
  ++outcome.lp_solves;
  ++outcome.cold_starts;  // the direct formulation has no cross-slot cache
  *status = solution.status;
  if (solution.status != lp::SolveStatus::kOptimal &&
      solution.status != lp::SolveStatus::kInfeasible) {
    ++outcome.solver_failures;
    outcome.solver_status = lp::to_string(solution.status);
  }
  if (!solution.optimal()) return false;
  plans = formulation.extract_plans(solution);
  return true;
}

}  // namespace postcard::core
