// Inter-datacenter overlay network model.
//
// Datacenters of one cloud provider are vertices; every ordered pair can hold
// a directed overlay link with a per-slot capacity (GB per time interval)
// and a unit cost a_ij (dollars per GB) charged by the transit ISPs. The
// paper's evaluation uses a complete graph; arbitrary subgraphs are supported
// (absent links simply cannot carry traffic).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace postcard::net {

/// Directed overlay link between two datacenters.
struct Link {
  int from = 0;
  int to = 0;
  double capacity = 0.0;   // GB per time interval (t-bar)
  double unit_cost = 0.0;  // cost per GB
};

class Topology {
 public:
  explicit Topology(int num_datacenters);

  /// Builds the paper's evaluation topology: a complete directed graph with
  /// uniform capacity and per-link unit costs provided by `cost_fn(i, j)`.
  static Topology complete(int num_datacenters, double capacity,
                           const std::function<double(int, int)>& cost_fn);

  /// Adds or replaces the directed link i -> j. Self-links are rejected
  /// (storage is modelled by the time-expanded graph, not the topology).
  void set_link(int from, int to, double capacity, double unit_cost);

  /// Updates the capacity of an existing link by index, keeping its unit
  /// cost. Capacity 0 models a failed link (the link still exists but can
  /// carry no traffic) — the runtime's LinkDown/LinkUp/CapacityChange
  /// events land here.
  void set_capacity(int link_index, double capacity);

  int num_datacenters() const { return n_; }
  int num_links() const { return static_cast<int>(links_.size()); }
  const std::vector<Link>& links() const { return links_; }
  const Link& link(int index) const { return links_[index]; }

  bool has_link(int from, int to) const { return link_index(from, to) >= 0; }
  /// Dense (from, to) -> link index map; -1 when the link does not exist.
  int link_index(int from, int to) const;
  double capacity(int from, int to) const;
  double unit_cost(int from, int to) const;

  /// Indices of the links leaving `from`, ordered by ascending destination.
  /// The ordering matters: shortest-path relaxations that used to scan
  /// `to = 0..n-1` against the dense index iterate this list instead and
  /// must visit candidates in the identical order to break cost ties the
  /// same way. On sparse topologies (Fat-Tree, leaf-spine) this turns the
  /// O(n) per-node scan into O(out-degree).
  const std::vector<int>& out_links(int from) const {
    return out_[static_cast<std::size_t>(from)];
  }

 private:
  int n_;
  std::vector<Link> links_;
  std::vector<int> index_;  // n*n dense map into links_
  std::vector<std::vector<int>> out_;  // per DC, link indices by ascending to
};

}  // namespace postcard::net
