// Sparse, incrementally maintained time-expanded graph (see DESIGN.md §12).
//
// TimeExpandedGraph rebuilds the whole expansion from scratch every solve:
// at 100+ datacenters and horizons of several slots that is hundreds of
// thousands of arc constructions per slot, all but one layer of which are
// identical to the previous slot's. SparseTimeGraph keeps the arcs in a
// persistent arena and advances it instead:
//
//   * same slot, shorter/equal horizon  -> capacity refresh only;
//   * slot advanced by s               -> the s expired layer blocks are
//     retired by shifting the survivors down (their layer fields decrement)
//     and the new frontier layers are appended structurally;
//   * anything else (topology reshape, slot jump backwards) -> rebuild.
//
// Residual capacities change after every commit, so every advance_to()
// refreshes all arc capacities; the incremental win is skipping the
// structural work (allocation, from/to/layer/link wiring) for surviving
// layers.
//
// Layout parity: the arena uses the exact layer-block layout of
// TimeExpandedGraph — per layer, one arc per topology link in link-index
// order, then one storage self-arc per datacenter in DC order — with the
// uniform block size B = num_links + n. Arc id = layer * B + offset. Every
// consumer that is bit-for-bit sensitive (column-generation pricing, warm
// basis remap/capture, plan extraction) therefore sees the identical arc
// sequence whether it reads a dense or a sparse graph.
//
// The graph additionally carries the structural hop matrix (all-pairs
// minimum link count, capacity-independent — a downed link keeps its hops)
// powering per-commodity reachability pruning: file k can use link l at
// layer n only if hops(source, l.from) <= n and hops(l.to, destination)
// <= T_k - n - 1. Pruned arcs provably relax nothing the full sweep's
// answer depends on, so pruning preserves the cost series bit for bit.
#pragma once

#include <limits>
#include <utility>
#include <vector>

#include "net/time_expanded.h"
#include "net/topology.h"

namespace postcard::net {

/// Structural all-pairs hop counts (minimum number of links on any directed
/// path, ignoring capacities); kUnreachableHops where no path exists.
/// Row-major n*n: result[from * n + to].
inline constexpr int kUnreachableHops = 1 << 29;
std::vector<int> all_pairs_hops(const Topology& topology);

class SparseTimeGraph {
 public:
  SparseTimeGraph() = default;

  /// Advances the arena to cover layers [start_slot, start_slot + horizon]
  /// against `topology`, refreshing every arc's residual capacity via
  /// `residual` (null = full topology capacity). Reuses the surviving layer
  /// structure when the window moved forward; rebuilds otherwise. The hop
  /// matrix is recomputed only when the link structure changed.
  void advance_to(const Topology& topology, int start_slot, int horizon,
                  const ResidualCapacityFn& residual = nullptr,
                  double storage_capacity =
                      std::numeric_limits<double>::infinity(),
                  bool enable_storage = true);

  // --- TimeExpandedGraph-compatible read surface -------------------------
  int num_datacenters() const { return n_; }
  int start_slot() const { return start_slot_; }
  int horizon() const { return horizon_; }
  int num_layers() const { return horizon_ + 1; }
  const std::vector<TimeArc>& arcs() const { return arcs_; }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }
  std::pair<int, int> layer_arc_range(int layer) const {
    return {layer * block_, (layer + 1) * block_};
  }
  int node_id(int dc, int layer) const { return layer * n_ + dc; }
  int num_nodes() const { return n_ * num_layers(); }

  // --- Sparse-specific surface -------------------------------------------
  /// Uniform per-layer arc count: num_links (+ n storage arcs).
  int block_size() const { return block_; }
  /// Minimum link count from `from` to `to`; kUnreachableHops if none.
  int hops(int from, int to) const {
    return hops_[static_cast<std::size_t>(from) * n_ + to];
  }
  /// Row of the hop matrix: hops_from(s)[v] == hops(s, v).
  const int* hops_from(int from) const {
    return hops_.data() + static_cast<std::size_t>(from) * n_;
  }
  /// Diagnostics: how many layer blocks the last advance_to reused intact
  /// (structure untouched, capacities refreshed in place).
  long layers_reused() const { return layers_reused_; }
  long layers_built() const { return layers_built_; }

 private:
  /// Appends layer block `layer` structurally (capacities zeroed; the
  /// refresh pass fills them).
  void append_layer(const Topology& topology, int layer);
  bool structure_matches(const Topology& topology, bool enable_storage) const;

  int n_ = 0;
  int num_links_ = 0;
  int block_ = 0;
  int start_slot_ = -1;  // -1 = never built
  int horizon_ = 0;
  bool enable_storage_ = true;
  std::vector<TimeArc> arcs_;
  std::vector<int> hops_;
  long layers_reused_ = 0;
  long layers_built_ = 0;
};

}  // namespace postcard::net
