// Topology generators beyond the paper's complete graph.
//
// The evaluation of Sec. VII uses a complete inter-datacenter overlay
// (Topology::complete). Scaling the controller to 100+ datacenters needs
// sparser shapes whose link count grows sub-quadratically:
//
//   * fat_tree(k)    — the standard k-ary Fat-Tree switching fabric with
//                      every switch treated as a datacenter site: k pods of
//                      k/2 edge + k/2 aggregation switches plus (k/2)^2
//                      core switches, so k=10 yields 125 sites and ~1000
//                      directed links (vs ~15500 for the complete graph).
//   * l2_switch      — a two-tier leaf-spine LAN: every leaf connects to
//                      every spine and traffic between leaves transits a
//                      spine (no leaf-leaf or spine-spine links).
//   * random_sparse  — a directed ring (guaranteeing strong connectivity)
//                      plus seeded random chords up to a target average
//                      out-degree; the shape used for soak-style sweeps.
//
// Every generator takes uniform link capacity and a per-link cost callback
// so workloads can overlay the paper's U[cost_min, cost_max] unit costs.
// All links are installed in a deterministic order (and the cost callback is
// invoked once per directed link in that order), so a fixed seed reproduces
// the identical topology.
#pragma once

#include <cstdint>
#include <functional>

#include "net/topology.h"

namespace postcard::net {

/// Per-link unit cost: cost_fn(from, to) -> dollars per GB.
using LinkCostFn = std::function<double(int, int)>;

/// k-ary Fat-Tree (k even, >= 2): k pods x (k/2 edge + k/2 agg) + (k/2)^2
/// core switches = k^2 + (k/2)^2 sites. Edge i of a pod links to every agg
/// of the same pod; agg j of a pod links to core switches j*(k/2) ..
/// j*(k/2)+k/2-1. All links are installed in both directions. Node ids:
/// pods first (edge then agg within each pod), cores last.
Topology fat_tree(int k, double capacity, const LinkCostFn& cost_fn);

/// Two-tier leaf-spine ("l2 switch") fabric: `leaves` + `spines` sites,
/// leaf l <-> spine s for every pair, no other links. Leaves are nodes
/// [0, leaves), spines [leaves, leaves + spines).
Topology l2_switch(int leaves, int spines, double capacity,
                   const LinkCostFn& cost_fn);

/// Strongly connected sparse digraph: the directed ring 0->1->...->0 plus
/// seeded random chords until the average out-degree reaches `avg_degree`
/// (clamped to [1, n-1]). Deterministic for a fixed (n, avg_degree, seed).
Topology random_sparse(int n, double avg_degree, std::uint64_t seed,
                       double capacity, const LinkCostFn& cost_fn);

}  // namespace postcard::net
