#include "net/generators.h"

#include <random>
#include <stdexcept>

namespace postcard::net {

namespace {

/// Installs the directed pair a<->b, invoking the cost callback once per
/// direction (a->b first) so generation order is deterministic.
void add_pair(Topology& t, int a, int b, double capacity,
              const LinkCostFn& cost_fn) {
  t.set_link(a, b, capacity, cost_fn(a, b));
  t.set_link(b, a, capacity, cost_fn(b, a));
}

}  // namespace

Topology fat_tree(int k, double capacity, const LinkCostFn& cost_fn) {
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat_tree arity must be even and >= 2");
  }
  const int half = k / 2;
  const int pod_size = k;             // k/2 edge + k/2 agg per pod
  const int num_cores = half * half;
  const int n = k * pod_size + num_cores;
  Topology t(n);
  const int core_base = k * pod_size;
  for (int pod = 0; pod < k; ++pod) {
    const int base = pod * pod_size;  // edges [base, base+half), aggs after
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        add_pair(t, base + e, base + half + a, capacity, cost_fn);
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        add_pair(t, base + half + a, core_base + a * half + c, capacity,
                 cost_fn);
      }
    }
  }
  return t;
}

Topology l2_switch(int leaves, int spines, double capacity,
                   const LinkCostFn& cost_fn) {
  if (leaves < 1 || spines < 1) {
    throw std::invalid_argument("l2_switch needs at least one leaf and spine");
  }
  Topology t(leaves + spines);
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      add_pair(t, l, leaves + s, capacity, cost_fn);
    }
  }
  return t;
}

Topology random_sparse(int n, double avg_degree, std::uint64_t seed,
                       double capacity, const LinkCostFn& cost_fn) {
  if (n < 2) throw std::invalid_argument("random_sparse needs >= 2 nodes");
  Topology t(n);
  for (int i = 0; i < n; ++i) {
    const int next = (i + 1) % n;
    t.set_link(i, next, capacity, cost_fn(i, next));
  }
  const double clamped =
      std::min(static_cast<double>(n - 1), std::max(1.0, avg_degree));
  const long target = static_cast<long>(clamped * n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  // Rejection-sample chords; the attempt cap keeps dense requests (target
  // near n*(n-1)) from spinning on the last few missing pairs.
  long attempts = 8 * target + 64;
  while (t.num_links() < target && attempts-- > 0) {
    const int from = pick(rng);
    const int to = pick(rng);
    if (from == to || t.has_link(from, to)) continue;
    t.set_link(from, to, capacity, cost_fn(from, to));
  }
  return t;
}

}  // namespace postcard::net
